/**
 * @file
 * Frequent Pattern Compression (FPC).
 *
 * The significance-based scheme of Alameldeen & Wood (the paper's
 * cache-compression citations [2, 3]): each 32-bit word is encoded
 * with a 3-bit prefix naming one of eight patterns — zero runs,
 * sign-extended small values, halfword patterns, repeated bytes, or
 * uncompressed.  The compressor here is a real codec (encode and
 * decode round-trip bit-exactly); the cache and link models only
 * consume its size accounting.
 */

#ifndef BWWALL_COMPRESS_FPC_HH
#define BWWALL_COMPRESS_FPC_HH

#include <cstdint>
#include <span>
#include <vector>

namespace bwwall {

/** The eight FPC word patterns (3-bit prefixes). */
enum class FpcPattern : std::uint8_t
{
    ZeroRun = 0,        ///< run of 1..8 zero words (3-bit run length)
    Sign4 = 1,          ///< 4-bit sign-extended
    Sign8 = 2,          ///< one sign-extended byte
    Sign16 = 3,         ///< one sign-extended halfword
    HighZeroHalf = 4,   ///< halfword padded with a zero halfword
    TwoSignedHalves = 5,///< two halfwords, each a sign-extended byte
    RepeatedByte = 6,   ///< four identical bytes
    Uncompressed = 7,   ///< full 32-bit word
};

/** One line compressed by FPC. */
struct FpcEncodedLine
{
    std::vector<bool> bits;

    /** Encoded size in bits. */
    std::size_t sizeBits() const { return bits.size(); }

    /** Encoded size in whole bytes. */
    std::size_t sizeBytes() const { return (bits.size() + 7) / 8; }
};

/** Stateless FPC codec over cache-line payloads. */
class FpcCompressor
{
  public:
    /**
     * Encodes a line (length must be a multiple of 4 bytes).
     */
    static FpcEncodedLine encode(std::span<const std::uint8_t> line);

    /**
     * Decodes an encoded line back to original_bytes bytes;
     * panics on malformed input.
     */
    static std::vector<std::uint8_t> decode(const FpcEncodedLine &encoded,
                                            std::size_t original_bytes);

    /**
     * Compressed size in bytes, clamped to the uncompressed size (a
     * real implementation stores incompressible lines raw).
     */
    static std::size_t compressedSizeBytes(
        std::span<const std::uint8_t> line);

    /** Classifies one 32-bit word (ignoring zero-run batching). */
    static FpcPattern classify(std::uint32_t word);

    /** Payload bits for a pattern (prefix excluded). */
    static unsigned payloadBits(FpcPattern pattern);
};

} // namespace bwwall

#endif // BWWALL_COMPRESS_FPC_HH
