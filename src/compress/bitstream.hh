/**
 * @file
 * Minimal bit-granular writer/reader used by the compression codecs.
 */

#ifndef BWWALL_COMPRESS_BITSTREAM_HH
#define BWWALL_COMPRESS_BITSTREAM_HH

#include <cstdint>
#include <vector>

#include "util/logging.hh"

namespace bwwall {

/** Appends variable-width fields to a bit buffer (LSB-first). */
class BitWriter
{
  public:
    /** Appends the low `bits` bits of value. */
    void
    write(std::uint64_t value, unsigned bits)
    {
        if (bits > 64)
            panic("BitWriter field wider than 64 bits");
        for (unsigned i = 0; i < bits; ++i)
            bits_.push_back(((value >> i) & 1) != 0);
    }

    std::size_t bitCount() const { return bits_.size(); }

    /** Size in whole bytes (rounded up). */
    std::size_t byteCount() const { return (bits_.size() + 7) / 8; }

    const std::vector<bool> &bits() const { return bits_; }

  private:
    std::vector<bool> bits_;
};

/** Reads fields back out of a BitWriter's buffer. */
class BitReader
{
  public:
    explicit BitReader(const std::vector<bool> &bits) : bits_(bits) {}

    /** Reads the next `bits` bits (LSB-first). */
    std::uint64_t
    read(unsigned bits)
    {
        if (bits > 64)
            panic("BitReader field wider than 64 bits");
        if (position_ + bits > bits_.size())
            panic("BitReader read past the end of the stream");
        std::uint64_t value = 0;
        for (unsigned i = 0; i < bits; ++i, ++position_) {
            if (bits_[position_])
                value |= std::uint64_t{1} << i;
        }
        return value;
    }

    std::size_t remaining() const { return bits_.size() - position_; }

  private:
    const std::vector<bool> &bits_;
    std::size_t position_ = 0;
};

} // namespace bwwall

#endif // BWWALL_COMPRESS_BITSTREAM_HH
