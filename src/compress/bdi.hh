/**
 * @file
 * Base-Delta-Immediate (BDI) compression.
 *
 * Pekhimenko et al.'s scheme: a line is stored as one base value plus
 * an array of narrow deltas when all values in the line sit close to
 * the base.  Eight encodings are tried (zeros, repeated value, and
 * base+delta at the granularities 8:1, 8:2, 8:4, 4:1, 4:2, 2:1) and
 * the smallest applicable one wins.  Provided alongside FPC so the
 * compression-technique experiments can ground their ratio parameters
 * in more than one real codec.
 */

#ifndef BWWALL_COMPRESS_BDI_HH
#define BWWALL_COMPRESS_BDI_HH

#include <cstdint>
#include <span>
#include <string>
#include <vector>

namespace bwwall {

/** BDI encodings, in the order they are attempted. */
enum class BdiEncoding : std::uint8_t
{
    Zeros,      ///< all-zero line: 1 byte
    Repeated,   ///< one 8-byte value repeated: 8 bytes
    Base8Delta1,///< 8-byte base, 1-byte deltas
    Base8Delta2,///< 8-byte base, 2-byte deltas
    Base8Delta4,///< 8-byte base, 4-byte deltas
    Base4Delta1,///< 4-byte base, 1-byte deltas
    Base4Delta2,///< 4-byte base, 2-byte deltas
    Base2Delta1,///< 2-byte base, 1-byte deltas
    Uncompressed,
};

/** Name of an encoding for reports. */
std::string bdiEncodingName(BdiEncoding encoding);

/** Result of compressing one line with BDI. */
struct BdiResult
{
    BdiEncoding encoding = BdiEncoding::Uncompressed;
    std::size_t sizeBytes = 0;
};

/** Stateless BDI codec over cache-line payloads. */
class BdiCompressor
{
  public:
    /** Picks the best encoding (line length: multiple of 8 bytes). */
    static BdiResult compress(std::span<const std::uint8_t> line);

    /** Compressed size in bytes under the best encoding. */
    static std::size_t compressedSizeBytes(
        std::span<const std::uint8_t> line);

    /**
     * Encodes and decodes through the chosen representation,
     * returning the reconstructed line (for round-trip validation).
     */
    static std::vector<std::uint8_t> roundTrip(
        std::span<const std::uint8_t> line);
};

} // namespace bwwall

#endif // BWWALL_COMPRESS_BDI_HH
