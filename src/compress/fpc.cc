#include "compress/fpc.hh"

#include <algorithm>
#include <cstring>

#include "compress/bitstream.hh"
#include "util/logging.hh"

namespace bwwall {

namespace {

constexpr unsigned kPrefixBits = 3;
constexpr unsigned kZeroRunBits = 3;
constexpr unsigned kMaxZeroRun = 8;

/** True when the word is a sign-extension of its low `bits` bits. */
bool
signExtends(std::uint32_t word, unsigned bits)
{
    const auto value = static_cast<std::int32_t>(word);
    const std::int32_t shifted =
        static_cast<std::int32_t>(value << (32 - bits)) >>
        static_cast<std::int32_t>(32 - bits);
    return shifted == value;
}

std::uint32_t
wordAt(std::span<const std::uint8_t> line, std::size_t index)
{
    std::uint32_t word;
    std::memcpy(&word, line.data() + index * 4, 4);
    return word;
}

} // namespace

FpcPattern
FpcCompressor::classify(std::uint32_t word)
{
    if (word == 0)
        return FpcPattern::ZeroRun;
    if (signExtends(word, 4))
        return FpcPattern::Sign4;
    if (signExtends(word, 8))
        return FpcPattern::Sign8;
    if (signExtends(word, 16))
        return FpcPattern::Sign16;
    if ((word & 0xFFFFu) == 0)
        return FpcPattern::HighZeroHalf;
    const std::uint32_t low_half = word & 0xFFFFu;
    const std::uint32_t high_half = word >> 16;
    if (signExtends(low_half | (low_half & 0x8000u ? 0xFFFF0000u : 0u),
                    8) &&
        signExtends(high_half | (high_half & 0x8000u ? 0xFFFF0000u : 0u),
                    8)) {
        return FpcPattern::TwoSignedHalves;
    }
    const std::uint32_t byte = word & 0xFFu;
    if (word == byte * 0x01010101u)
        return FpcPattern::RepeatedByte;
    return FpcPattern::Uncompressed;
}

unsigned
FpcCompressor::payloadBits(FpcPattern pattern)
{
    switch (pattern) {
      case FpcPattern::ZeroRun:
        return kZeroRunBits;
      case FpcPattern::Sign4:
        return 4;
      case FpcPattern::Sign8:
        return 8;
      case FpcPattern::Sign16:
        return 16;
      case FpcPattern::HighZeroHalf:
        return 16;
      case FpcPattern::TwoSignedHalves:
        return 16;
      case FpcPattern::RepeatedByte:
        return 8;
      case FpcPattern::Uncompressed:
        return 32;
    }
    panic("unknown FPC pattern");
}

FpcEncodedLine
FpcCompressor::encode(std::span<const std::uint8_t> line)
{
    if (line.size() % 4 != 0)
        fatal("FPC lines must be a multiple of 4 bytes, got ",
              line.size());
    const std::size_t words = line.size() / 4;

    BitWriter writer;
    std::size_t index = 0;
    while (index < words) {
        const std::uint32_t word = wordAt(line, index);
        const FpcPattern pattern = classify(word);
        writer.write(static_cast<std::uint64_t>(pattern), kPrefixBits);
        switch (pattern) {
          case FpcPattern::ZeroRun: {
            std::size_t run = 1;
            while (index + run < words && run < kMaxZeroRun &&
                   wordAt(line, index + run) == 0) {
                ++run;
            }
            writer.write(run - 1, kZeroRunBits);
            index += run;
            continue;
          }
          case FpcPattern::Sign4:
            writer.write(word & 0xFu, 4);
            break;
          case FpcPattern::Sign8:
            writer.write(word & 0xFFu, 8);
            break;
          case FpcPattern::Sign16:
            writer.write(word & 0xFFFFu, 16);
            break;
          case FpcPattern::HighZeroHalf:
            writer.write(word >> 16, 16);
            break;
          case FpcPattern::TwoSignedHalves:
            writer.write(word & 0xFFu, 8);
            writer.write((word >> 16) & 0xFFu, 8);
            break;
          case FpcPattern::RepeatedByte:
            writer.write(word & 0xFFu, 8);
            break;
          case FpcPattern::Uncompressed:
            writer.write(word, 32);
            break;
        }
        ++index;
    }

    FpcEncodedLine encoded;
    encoded.bits = writer.bits();
    return encoded;
}

std::vector<std::uint8_t>
FpcCompressor::decode(const FpcEncodedLine &encoded,
                      std::size_t original_bytes)
{
    if (original_bytes % 4 != 0)
        fatal("FPC lines must be a multiple of 4 bytes");
    const std::size_t words = original_bytes / 4;

    BitReader reader(encoded.bits);
    std::vector<std::uint8_t> line(original_bytes, 0);
    std::size_t index = 0;

    auto emit = [&line](std::size_t word_index, std::uint32_t word) {
        std::memcpy(line.data() + word_index * 4, &word, 4);
    };

    while (index < words) {
        const auto pattern =
            static_cast<FpcPattern>(reader.read(kPrefixBits));
        switch (pattern) {
          case FpcPattern::ZeroRun: {
            const std::uint64_t run = reader.read(kZeroRunBits) + 1;
            for (std::uint64_t i = 0; i < run; ++i)
                emit(index++, 0);
            continue;
          }
          case FpcPattern::Sign4: {
            const auto raw =
                static_cast<std::uint32_t>(reader.read(4));
            const std::uint32_t word =
                raw & 0x8u ? raw | 0xFFFFFFF0u : raw;
            emit(index++, word);
            break;
          }
          case FpcPattern::Sign8: {
            const auto raw =
                static_cast<std::uint32_t>(reader.read(8));
            const std::uint32_t word =
                raw & 0x80u ? raw | 0xFFFFFF00u : raw;
            emit(index++, word);
            break;
          }
          case FpcPattern::Sign16: {
            const auto raw =
                static_cast<std::uint32_t>(reader.read(16));
            const std::uint32_t word =
                raw & 0x8000u ? raw | 0xFFFF0000u : raw;
            emit(index++, word);
            break;
          }
          case FpcPattern::HighZeroHalf: {
            const auto raw =
                static_cast<std::uint32_t>(reader.read(16));
            emit(index++, raw << 16);
            break;
          }
          case FpcPattern::TwoSignedHalves: {
            const auto low_byte =
                static_cast<std::uint32_t>(reader.read(8));
            const auto high_byte =
                static_cast<std::uint32_t>(reader.read(8));
            const std::uint32_t low_half =
                low_byte & 0x80u ? (low_byte | 0xFF00u) : low_byte;
            const std::uint32_t high_half =
                high_byte & 0x80u ? (high_byte | 0xFF00u) : high_byte;
            emit(index++, (high_half << 16) | low_half);
            break;
          }
          case FpcPattern::RepeatedByte: {
            const auto byte =
                static_cast<std::uint32_t>(reader.read(8));
            emit(index++, byte * 0x01010101u);
            break;
          }
          case FpcPattern::Uncompressed:
            emit(index++,
                 static_cast<std::uint32_t>(reader.read(32)));
            break;
          default:
            panic("corrupt FPC stream");
        }
    }
    return line;
}

std::size_t
FpcCompressor::compressedSizeBytes(std::span<const std::uint8_t> line)
{
    const FpcEncodedLine encoded = encode(line);
    return std::min(encoded.sizeBytes(), line.size());
}

} // namespace bwwall
