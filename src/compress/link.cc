#include "compress/link.hh"

#include <algorithm>
#include <cstring>

#include "compress/fpc.hh"
#include "util/logging.hh"
#include "util/units.hh"

namespace bwwall {

std::string
linkSchemeName(LinkScheme scheme)
{
    switch (scheme) {
      case LinkScheme::Fpc:
        return "fpc";
      case LinkScheme::FrequentValue:
        return "frequent-value";
      case LinkScheme::Hybrid:
        return "hybrid";
    }
    panic("unknown link scheme");
}

LinkCompressor::LinkCompressor(const LinkCompressorConfig &config)
    : config_(config)
{
    if (!isPowerOfTwo(config_.dictionaryEntries))
        fatal("link dictionary size must be a power of two, got ",
              config_.dictionaryEntries);
    indexBits_ = floorLog2(config_.dictionaryEntries);
    dictionary_.reserve(config_.dictionaryEntries);
}

bool
LinkCompressor::dictionaryLookup(std::uint64_t value) const
{
    return std::find(dictionary_.begin(), dictionary_.end(), value) !=
           dictionary_.end();
}

void
LinkCompressor::dictionaryInsert(std::uint64_t value)
{
    const auto it =
        std::find(dictionary_.begin(), dictionary_.end(), value);
    if (it != dictionary_.end())
        dictionary_.erase(it);
    dictionary_.insert(dictionary_.begin(), value);
    if (dictionary_.size() > config_.dictionaryEntries)
        dictionary_.pop_back();
}

std::size_t
LinkCompressor::frequentValueBits(std::span<const std::uint8_t> line,
                                  bool update_dictionary)
{
    std::size_t bits = 0;
    for (std::size_t offset = 0; offset < line.size(); offset += 8) {
        std::uint64_t value;
        std::memcpy(&value, line.data() + offset, 8);
        if (dictionaryLookup(value))
            bits += 1 + indexBits_;
        else
            bits += 1 + 64;
        if (update_dictionary)
            dictionaryInsert(value);
    }
    return bits;
}

std::size_t
LinkCompressor::transferLine(std::span<const std::uint8_t> line)
{
    if (line.size() % 8 != 0)
        fatal("link transfers must be a multiple of 8 bytes, got ",
              line.size());
    bytesIn_ += line.size();

    std::size_t wire_bits = 0;
    switch (config_.scheme) {
      case LinkScheme::Fpc:
        wire_bits = FpcCompressor::encode(line).sizeBits();
        break;
      case LinkScheme::FrequentValue:
        wire_bits = frequentValueBits(line, true);
        break;
      case LinkScheme::Hybrid: {
        const std::size_t fpc_bits =
            FpcCompressor::encode(line).sizeBits();
        // Probe the dictionary without updating, pick the smaller
        // representation, then update — both ends see the decoded
        // words either way, so their dictionaries stay in sync.
        const std::size_t fv_bits = frequentValueBits(line, false);
        wire_bits = 1 + std::min(fpc_bits, fv_bits);
        frequentValueBits(line, true);
        break;
      }
    }
    // Never send more than the raw line (real links fall back).
    wire_bits = std::min(wire_bits, line.size() * 8 + 1);
    bitsOut_ += wire_bits;
    return wire_bits;
}

double
LinkCompressor::compressionRatio() const
{
    if (bitsOut_ == 0)
        return 1.0;
    return static_cast<double>(bytesIn_ * 8) /
           static_cast<double>(bitsOut_);
}

void
LinkCompressor::resetStats()
{
    bytesIn_ = 0;
    bitsOut_ = 0;
}

void
LinkCompressor::resetDictionary()
{
    dictionary_.clear();
}

} // namespace bwwall
