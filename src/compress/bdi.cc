#include "compress/bdi.hh"

#include <cstring>
#include <limits>

#include "util/logging.hh"

namespace bwwall {

std::string
bdiEncodingName(BdiEncoding encoding)
{
    switch (encoding) {
      case BdiEncoding::Zeros:
        return "zeros";
      case BdiEncoding::Repeated:
        return "repeated";
      case BdiEncoding::Base8Delta1:
        return "base8-delta1";
      case BdiEncoding::Base8Delta2:
        return "base8-delta2";
      case BdiEncoding::Base8Delta4:
        return "base8-delta4";
      case BdiEncoding::Base4Delta1:
        return "base4-delta1";
      case BdiEncoding::Base4Delta2:
        return "base4-delta2";
      case BdiEncoding::Base2Delta1:
        return "base2-delta1";
      case BdiEncoding::Uncompressed:
        return "uncompressed";
    }
    panic("unknown BDI encoding");
}

namespace {

/** Reads an unsigned value of `bytes` width at an offset. */
std::uint64_t
valueAt(std::span<const std::uint8_t> line, std::size_t offset,
        std::size_t bytes)
{
    std::uint64_t value = 0;
    std::memcpy(&value, line.data() + offset, bytes);
    return value;
}

/** True when delta fits a signed width of delta_bytes. */
bool
deltaFits(std::int64_t delta, std::size_t delta_bytes)
{
    const std::int64_t half =
        std::int64_t{1} << (delta_bytes * 8 - 1);
    return delta >= -half && delta < half;
}

/**
 * Checks base+delta feasibility at the given granularities using the
 * first value as the base (the hardware-friendly choice).
 */
bool
baseDeltaApplies(std::span<const std::uint8_t> line,
                 std::size_t base_bytes, std::size_t delta_bytes)
{
    const auto base =
        static_cast<std::int64_t>(valueAt(line, 0, base_bytes));
    for (std::size_t offset = 0; offset < line.size();
         offset += base_bytes) {
        const auto value = static_cast<std::int64_t>(
            valueAt(line, offset, base_bytes));
        if (!deltaFits(value - base, delta_bytes))
            return false;
    }
    return true;
}

std::size_t
baseDeltaSize(std::size_t line_bytes, std::size_t base_bytes,
              std::size_t delta_bytes)
{
    return base_bytes + (line_bytes / base_bytes) * delta_bytes;
}

} // namespace

BdiResult
BdiCompressor::compress(std::span<const std::uint8_t> line)
{
    if (line.size() % 8 != 0)
        fatal("BDI lines must be a multiple of 8 bytes, got ",
              line.size());

    bool all_zero = true;
    for (const std::uint8_t byte : line) {
        if (byte != 0) {
            all_zero = false;
            break;
        }
    }
    if (all_zero)
        return {BdiEncoding::Zeros, 1};

    const std::uint64_t first = valueAt(line, 0, 8);
    bool repeated = true;
    for (std::size_t offset = 8; offset < line.size(); offset += 8) {
        if (valueAt(line, offset, 8) != first) {
            repeated = false;
            break;
        }
    }
    if (repeated)
        return {BdiEncoding::Repeated, 8};

    struct Candidate
    {
        BdiEncoding encoding;
        std::size_t baseBytes;
        std::size_t deltaBytes;
    };
    constexpr Candidate candidates[] = {
        {BdiEncoding::Base8Delta1, 8, 1},
        {BdiEncoding::Base8Delta2, 8, 2},
        {BdiEncoding::Base8Delta4, 8, 4},
        {BdiEncoding::Base4Delta1, 4, 1},
        {BdiEncoding::Base4Delta2, 4, 2},
        {BdiEncoding::Base2Delta1, 2, 1},
    };

    BdiResult best{BdiEncoding::Uncompressed, line.size()};
    for (const Candidate &candidate : candidates) {
        if (!baseDeltaApplies(line, candidate.baseBytes,
                              candidate.deltaBytes)) {
            continue;
        }
        const std::size_t size = baseDeltaSize(
            line.size(), candidate.baseBytes, candidate.deltaBytes);
        if (size < best.sizeBytes)
            best = {candidate.encoding, size};
    }
    return best;
}

std::size_t
BdiCompressor::compressedSizeBytes(std::span<const std::uint8_t> line)
{
    return compress(line).sizeBytes;
}

std::vector<std::uint8_t>
BdiCompressor::roundTrip(std::span<const std::uint8_t> line)
{
    const BdiResult result = compress(line);
    std::vector<std::uint8_t> reconstructed(line.size(), 0);

    switch (result.encoding) {
      case BdiEncoding::Zeros:
        return reconstructed;
      case BdiEncoding::Repeated: {
        const std::uint64_t value = valueAt(line, 0, 8);
        for (std::size_t offset = 0; offset < line.size(); offset += 8)
            std::memcpy(reconstructed.data() + offset, &value, 8);
        return reconstructed;
      }
      case BdiEncoding::Uncompressed:
        return {line.begin(), line.end()};
      default:
        break;
    }

    // Base+delta: rebuild from the stored base and deltas.
    std::size_t base_bytes = 0, delta_bytes = 0;
    switch (result.encoding) {
      case BdiEncoding::Base8Delta1: base_bytes = 8; delta_bytes = 1; break;
      case BdiEncoding::Base8Delta2: base_bytes = 8; delta_bytes = 2; break;
      case BdiEncoding::Base8Delta4: base_bytes = 8; delta_bytes = 4; break;
      case BdiEncoding::Base4Delta1: base_bytes = 4; delta_bytes = 1; break;
      case BdiEncoding::Base4Delta2: base_bytes = 4; delta_bytes = 2; break;
      case BdiEncoding::Base2Delta1: base_bytes = 2; delta_bytes = 1; break;
      default:
        panic("unexpected BDI encoding in roundTrip");
    }

    const auto base =
        static_cast<std::int64_t>(valueAt(line, 0, base_bytes));
    for (std::size_t offset = 0; offset < line.size();
         offset += base_bytes) {
        const auto value = static_cast<std::int64_t>(
            valueAt(line, offset, base_bytes));
        const std::int64_t delta = value - base;
        // Encode then decode the delta through its narrow width.
        const auto mask_bits = delta_bytes * 8;
        std::uint64_t narrow = static_cast<std::uint64_t>(delta);
        if (mask_bits < 64)
            narrow &= (std::uint64_t{1} << mask_bits) - 1;
        std::int64_t restored = static_cast<std::int64_t>(narrow);
        if (mask_bits < 64 &&
            (narrow & (std::uint64_t{1} << (mask_bits - 1)))) {
            restored -= std::int64_t{1} << mask_bits;
        }
        // Unsigned addition wraps defined-ly even at the int64 edges.
        std::uint64_t rebuilt = static_cast<std::uint64_t>(base) +
            static_cast<std::uint64_t>(restored);
        if (base_bytes < 8)
            rebuilt &= (std::uint64_t{1} << (base_bytes * 8)) - 1;
        std::memcpy(reconstructed.data() + offset, &rebuilt,
                    base_bytes);
    }
    return reconstructed;
}

} // namespace bwwall
