/**
 * @file
 * Off-chip link compression model.
 *
 * Implements the value-locality family of memory-link compression
 * schemes the paper cites (Thuresson et al. [25]): both ends of the
 * link keep a small synchronised dictionary of recently transferred
 * 64-bit values, and words that hit the dictionary travel as short
 * indices.  An FPC-encoded alternative is also computed; the hybrid
 * scheme sends whichever representation of the line is smaller (plus
 * a one-bit selector).  The achieved ratio over synthetic value
 * streams grounds the paper's 2x "realistic" link-compression factor.
 */

#ifndef BWWALL_COMPRESS_LINK_HH
#define BWWALL_COMPRESS_LINK_HH

#include <cstdint>
#include <span>
#include <string>
#include <vector>

namespace bwwall {

/** Which per-line encoder the link uses. */
enum class LinkScheme : std::uint8_t
{
    Fpc,           ///< FPC-encode every line
    FrequentValue, ///< dictionary hits as indices, misses raw
    Hybrid,        ///< smaller of the two, +1 selector bit per line
};

/** Returns the scheme's short name. */
std::string linkSchemeName(LinkScheme scheme);

/** Static parameters of a LinkCompressor. */
struct LinkCompressorConfig
{
    LinkScheme scheme = LinkScheme::Hybrid;

    /** Dictionary entries (power of two). */
    unsigned dictionaryEntries = 64;
};

/** Stateful line-by-line link compressor with traffic accounting. */
class LinkCompressor
{
  public:
    explicit LinkCompressor(const LinkCompressorConfig &config);

    /**
     * Transfers one line (multiple of 8 bytes) over the link and
     * returns the bits used on the wire.
     */
    std::size_t transferLine(std::span<const std::uint8_t> line);

    /** Uncompressed bytes presented to the link so far. */
    std::uint64_t bytesIn() const { return bytesIn_; }

    /** Compressed bits actually transferred. */
    std::uint64_t bitsOut() const { return bitsOut_; }

    /** Achieved compression ratio (uncompressed / compressed). */
    double compressionRatio() const;

    /** Clears the traffic counters (dictionary state is kept). */
    void resetStats();

    /** Clears the value dictionary. */
    void resetDictionary();

    const LinkCompressorConfig &config() const { return config_; }

  private:
    std::size_t frequentValueBits(std::span<const std::uint8_t> line,
                                  bool update_dictionary);
    bool dictionaryLookup(std::uint64_t value) const;
    void dictionaryInsert(std::uint64_t value);

    LinkCompressorConfig config_;
    unsigned indexBits_;
    std::vector<std::uint64_t> dictionary_; // front = most recent
    std::uint64_t bytesIn_ = 0;
    std::uint64_t bitsOut_ = 0;
};

} // namespace bwwall

#endif // BWWALL_COMPRESS_LINK_HH
