#include "trace/reuse_analyzer.hh"

#include "util/logging.hh"
#include "util/units.hh"

namespace bwwall {

ReuseDistanceAnalyzer::ReuseDistanceAnalyzer(
    std::uint32_t line_bytes, std::size_t max_tracked_distance)
    : lineBytes_(line_bytes), maxTrackedDistance_(max_tracked_distance)
{
    if (!isPowerOfTwo(line_bytes))
        fatal("ReuseDistanceAnalyzer line size must be a power of two");
    if (max_tracked_distance == 0)
        fatal("ReuseDistanceAnalyzer needs a positive tracked distance");
    lineShift_ = floorLog2(line_bytes);
}

void
ReuseDistanceAnalyzer::observe(const MemoryAccess &access)
{
    observeAddress(access.address);
}

void
ReuseDistanceAnalyzer::observeAddress(Address address)
{
    ++totalAccesses_;
    const std::uint64_t line = address >> lineShift_;
    const std::size_t depth = stack_.touch(line);
    if (depth == LruStack::kNotFound) {
        ++coldAccesses_;
        stack_.push(line);
        // Bound memory: lines deeper than the tracked horizon can only
        // yield distances we lump with compulsory misses anyway.
        if (stack_.size() > maxTrackedDistance_)
            stack_.popLru();
        return;
    }
    if (depth > maxTrackedDistance_) {
        ++coldAccesses_;
        return;
    }
    if (distanceHistogram_.size() <= depth)
        distanceHistogram_.resize(depth + 1, 0);
    ++distanceHistogram_[depth];
}

double
ReuseDistanceAnalyzer::missRateAtCapacity(std::size_t capacity_lines) const
{
    if (totalAccesses_ == 0)
        return 0.0;
    std::uint64_t misses = coldAccesses_;
    for (std::size_t d = capacity_lines + 1;
         d < distanceHistogram_.size(); ++d) {
        misses += distanceHistogram_[d];
    }
    return static_cast<double>(misses) /
           static_cast<double>(totalAccesses_);
}

std::uint64_t
ReuseDistanceAnalyzer::distanceCount(std::size_t distance) const
{
    if (distance >= distanceHistogram_.size())
        return 0;
    return distanceHistogram_[distance];
}

std::size_t
ReuseDistanceAnalyzer::maxObservedDistance() const
{
    for (std::size_t d = distanceHistogram_.size(); d > 0; --d) {
        if (distanceHistogram_[d - 1] != 0)
            return d - 1;
    }
    return 0;
}

void
ReuseDistanceAnalyzer::reset()
{
    stack_.clear();
    resetCounters();
}

void
ReuseDistanceAnalyzer::resetCounters()
{
    distanceHistogram_.clear();
    coldAccesses_ = 0;
    totalAccesses_ = 0;
}

} // namespace bwwall
