#include "trace/lru_stack.hh"

#include <algorithm>

#include "util/logging.hh"
#include "util/units.hh"

namespace bwwall {

LruStack::LruStack(std::size_t capacity_hint)
{
    slotCapacity_ = std::max<std::size_t>(
        ceilPowerOfTwo(std::max<std::size_t>(capacity_hint, 16)) * 2, 32);
    occupancy_ = std::make_unique<FenwickTree>(slotCapacity_);
    slotLine_.assign(slotCapacity_, 0);
    lineToSlot_.reserve(capacity_hint);
}

bool
LruStack::contains(std::uint64_t line) const
{
    return lineToSlot_.find(line) != lineToSlot_.end();
}

void
LruStack::placeAtTop(std::uint64_t line)
{
    if (nextSlot_ == slotCapacity_)
        compact(lineToSlot_.size() + 1);
    const std::size_t slot = nextSlot_++;
    slotLine_[slot] = line;
    occupancy_->add(slot, +1);
    lineToSlot_[line] = slot;
}

void
LruStack::push(std::uint64_t line)
{
    if (contains(line))
        panic("LruStack::push of a line already present");
    placeAtTop(line);
}

void
LruStack::moveToTop(std::uint64_t line, std::size_t slot)
{
    occupancy_->add(slot, -1);
    lineToSlot_.erase(line);
    placeAtTop(line);
}

std::size_t
LruStack::touch(std::uint64_t line)
{
    const auto it = lineToSlot_.find(line);
    if (it == lineToSlot_.end())
        return kNotFound;
    const std::size_t slot = it->second;
    // Depth = lines strictly more recent than this one, plus one.
    const auto at_or_below = occupancy_->prefixSum(slot);
    const std::size_t depth = static_cast<std::size_t>(
        occupancy_->total() - at_or_below) + 1;
    moveToTop(line, slot);
    return depth;
}

std::size_t
LruStack::slotOfDepth(std::size_t depth) const
{
    if (depth == 0 || depth > size())
        panic("LruStack depth out of range: ", depth, " of ", size());
    // The d-th most recent line is the (size - d + 1)-th occupied slot
    // counting from the bottom of the time axis.
    const auto rank = static_cast<std::int64_t>(size() - depth + 1);
    return occupancy_->select(rank);
}

std::uint64_t
LruStack::touchAtDepth(std::size_t depth)
{
    const std::size_t slot = slotOfDepth(depth);
    const std::uint64_t line = slotLine_[slot];
    moveToTop(line, slot);
    return line;
}

std::uint64_t
LruStack::peekAtDepth(std::size_t depth) const
{
    return slotLine_[slotOfDepth(depth)];
}

std::uint64_t
LruStack::popLru()
{
    if (empty())
        panic("LruStack::popLru on an empty stack");
    const std::size_t slot = occupancy_->select(1);
    const std::uint64_t line = slotLine_[slot];
    occupancy_->add(slot, -1);
    lineToSlot_.erase(line);
    return line;
}

bool
LruStack::remove(std::uint64_t line)
{
    const auto it = lineToSlot_.find(line);
    if (it == lineToSlot_.end())
        return false;
    occupancy_->add(it->second, -1);
    lineToSlot_.erase(it);
    return true;
}

void
LruStack::clear()
{
    nextSlot_ = 0;
    occupancy_ = std::make_unique<FenwickTree>(slotCapacity_);
    lineToSlot_.clear();
}

void
LruStack::compact(std::size_t min_capacity)
{
    // Gather resident lines from least to most recent.
    std::vector<std::uint64_t> ordered;
    ordered.reserve(lineToSlot_.size());
    for (std::size_t slot = 0; slot < nextSlot_; ++slot) {
        const auto it = lineToSlot_.find(slotLine_[slot]);
        if (it != lineToSlot_.end() && it->second == slot)
            ordered.push_back(slotLine_[slot]);
    }

    std::size_t new_capacity = slotCapacity_;
    while (new_capacity < std::max(min_capacity * 2, ordered.size() * 2))
        new_capacity *= 2;

    slotCapacity_ = new_capacity;
    occupancy_ = std::make_unique<FenwickTree>(slotCapacity_);
    slotLine_.assign(slotCapacity_, 0);
    lineToSlot_.clear();
    nextSlot_ = 0;
    for (std::uint64_t line : ordered) {
        slotLine_[nextSlot_] = line;
        occupancy_->add(nextSlot_, +1);
        lineToSlot_[line] = nextSlot_;
        ++nextSlot_;
    }
}

} // namespace bwwall
