/**
 * @file
 * Synthetic cache-line *contents* with controllable value locality.
 *
 * The paper's compression techniques (cache compression, link
 * compression, cache+link compression) assume compression ratios taken
 * from prior work: roughly 1.4-2.1x for commercial workloads and
 * higher for integer codes.  To ground those parameters rather than
 * assert them, this generator synthesises 64-bit words from the value
 * classes that frequent-pattern compression exploits — zeros, small
 * sign-extended integers, repeated bytes, pointer-like values sharing
 * a common base — mixed per a workload class, and the real FPC/BDI
 * compressors in src/compress measure the resulting ratios.
 */

#ifndef BWWALL_TRACE_VALUE_PATTERN_HH
#define BWWALL_TRACE_VALUE_PATTERN_HH

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "util/distributions.hh"
#include "util/rng.hh"

namespace bwwall {

/** Value classes a generated word can belong to. */
enum class ValueClass : std::uint8_t
{
    Zero,          ///< the all-zero word
    SmallInt,      ///< sign-extended small magnitude integer
    RepeatedByte,  ///< one byte value repeated eight times
    PointerLike,   ///< shared high bits, varying low bits
    HalfWordPair,  ///< two identical 32-bit halves
    Random,        ///< incompressible noise
};

/** Mixture weights over the value classes. */
struct ValueMix
{
    double zero = 0.0;
    double smallInt = 0.0;
    double repeatedByte = 0.0;
    double pointerLike = 0.0;
    double halfWordPair = 0.0;
    double random = 1.0;
};

/** Named default mixes for the paper's workload classes. */
ValueMix commercialValueMix();
ValueMix integerValueMix();
ValueMix floatingPointValueMix();

/** Generates words/lines from a ValueMix. */
class ValuePatternGenerator
{
  public:
    ValuePatternGenerator(const ValueMix &mix, std::uint64_t seed);

    /** Draws one 64-bit word. */
    std::uint64_t nextWord();

    /** Fills a line of line_bytes (multiple of 8) with words. */
    std::vector<std::uint8_t> nextLine(std::size_t line_bytes);

    /** Restarts the generator stream. */
    void reset();

  private:
    std::uint64_t makeWord(ValueClass cls);

    ValueMix mix_;
    std::uint64_t seed_;
    Rng rng_;
    std::unique_ptr<AliasTable> classPicker_;
    std::uint64_t pointerBase_;
};

} // namespace bwwall

#endif // BWWALL_TRACE_VALUE_PATTERN_HH
