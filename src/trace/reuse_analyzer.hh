/**
 * @file
 * Exact LRU reuse-distance (stack-distance) profiling.
 *
 * Feeding a trace through the analyzer yields, in a single pass, the
 * fully-associative LRU miss rate at *every* capacity simultaneously
 * (Mattson's stack algorithm): an access with stack distance D misses
 * in any LRU cache smaller than D lines.  The Figure 1 harness uses it
 * to cross-check the set-associative simulator, and the property tests
 * use it to verify that PowerLawTrace really produces its configured
 * exponent.
 */

#ifndef BWWALL_TRACE_REUSE_ANALYZER_HH
#define BWWALL_TRACE_REUSE_ANALYZER_HH

#include <cstdint>
#include <vector>

#include "trace/access.hh"
#include "trace/lru_stack.hh"

namespace bwwall {

/** Single-pass Mattson stack-distance profiler. */
class ReuseDistanceAnalyzer
{
  public:
    /**
     * @param line_bytes Cache-line granularity at which addresses are
     * collapsed before profiling.
     * @param max_tracked_distance Distances above this are lumped with
     * compulsory misses (they miss at every capacity of interest).
     */
    explicit ReuseDistanceAnalyzer(
        std::uint32_t line_bytes = 64,
        std::size_t max_tracked_distance = std::size_t(1) << 22);

    /** Profiles one access. */
    void observe(const MemoryAccess &access);

    /** Profiles a raw byte address (read). */
    void observeAddress(Address address);

    /** Total accesses profiled. */
    std::uint64_t accessCount() const { return totalAccesses_; }

    /** First-touch accesses (infinite stack distance). */
    std::uint64_t coldAccesses() const { return coldAccesses_; }

    /**
     * Miss rate of a fully-associative LRU cache holding
     * capacity_lines lines: P(distance > capacity) + cold fraction.
     */
    double missRateAtCapacity(std::size_t capacity_lines) const;

    /**
     * Number of profiled accesses with stack distance exactly
     * distance (1-based).
     */
    std::uint64_t distanceCount(std::size_t distance) const;

    /** Largest distance with a non-zero count. */
    std::size_t maxObservedDistance() const;

    /** Clears all profile state. */
    void reset();

    /**
     * Clears the counters but keeps the recency stack.  Call after a
     * warm-up pass so that lines already resident are not counted as
     * compulsory misses during the measured window — the same cache
     * warming every trace-driven simulation study performs.
     */
    void resetCounters();

  private:
    std::uint32_t lineBytes_;
    unsigned lineShift_;
    std::size_t maxTrackedDistance_;
    LruStack stack_;
    std::vector<std::uint64_t> distanceHistogram_; // index = distance
    std::uint64_t coldAccesses_ = 0;
    std::uint64_t totalAccesses_ = 0;
};

} // namespace bwwall

#endif // BWWALL_TRACE_REUSE_ANALYZER_HH
