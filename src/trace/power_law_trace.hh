/**
 * @file
 * Synthetic trace whose LRU miss curve follows the power law of cache
 * misses (paper Equation 1).
 *
 * The generator keeps an LRU recency stack of resident lines and, for
 * each access, samples a reuse (stack) distance D from an unbounded
 * discrete Pareto distribution with tail P(D > d) = d^-alpha.  An LRU
 * cache holding C lines misses exactly when D > C, so the resulting
 * miss curve is m(C) = C^-alpha by construction — the mechanism behind
 * the sqrt(2) rule the paper builds on.  Distances that exceed the
 * current stack depth become compulsory accesses to brand-new lines.
 *
 * Per-line properties (byte address, store/load behaviour, which words
 * of the line the program actually touches) derive deterministically
 * from the line identifier, so write-back ratios and word footprints
 * are stable application characteristics rather than per-access noise,
 * matching the paper's empirical observations in Sections 4.2 and 6.
 */

#ifndef BWWALL_TRACE_POWER_LAW_TRACE_HH
#define BWWALL_TRACE_POWER_LAW_TRACE_HH

#include <cstdint>
#include <string>

#include "trace/lru_stack.hh"
#include "trace/trace_source.hh"
#include "util/rng.hh"

namespace bwwall {

/** Configuration of a PowerLawTrace. */
struct PowerLawTraceParams
{
    /** Reuse-distance tail exponent; the fitted miss-curve alpha. */
    double alpha = 0.5;

    /**
     * Extra probability of touching a brand-new line regardless of
     * the sampled distance (adds a constant compulsory-miss floor).
     */
    double coldMissProbability = 0.0;

    /**
     * Resident-line cap; the LRU tail beyond it is discarded.  Purely
     * a memory bound — reuses that deep would miss in every cache size
     * of interest anyway.
     */
    std::size_t maxResidentLines = std::size_t(1) << 21;

    /**
     * Lines pre-populated at reset.  Reuse distances can only reach
     * the current stack depth, so the stack must be at least as deep
     * as the largest cache capacity (in lines) being measured or the
     * top of the miss curve truncates and steepens.  The default
     * covers an 8 MiB cache of 64-byte lines with headroom.
     */
    std::size_t warmLines = std::size_t(1) << 18;

    /** Fraction of lines that are store-behaviour lines. */
    double writeLineFraction = 0.25;

    /** Probability that an access to a store line is a write. */
    double writeProbability = 1.0;

    /** Mean fraction of each line's words the program ever touches. */
    double usedWordFraction = 1.0;

    std::uint32_t lineBytes = 64;
    std::uint32_t wordBytes = 8;

    ThreadId thread = 0;

    /** Stream seed; also salts all per-line derived properties. */
    std::uint64_t seed = 1;

    /** Stream label reported by name(). */
    std::string label = "power-law";
};

/** Power-law reuse-distance trace generator. */
class PowerLawTrace : public TraceSource
{
  public:
    explicit PowerLawTrace(const PowerLawTraceParams &params);

    MemoryAccess next() override;
    void reset() override;
    std::string name() const override { return params_.label; }

    const PowerLawTraceParams &params() const { return params_; }

    /** Distinct lines ever generated (cold accesses). */
    std::uint64_t coldLines() const { return nextLineId_; }

    /**
     * The number of words of the given line that the program ever
     * touches (the line's spatial footprint).
     */
    unsigned footprintWords(std::uint64_t line_id) const;

    /** True when accesses to this line are stores. */
    bool isStoreLine(std::uint64_t line_id) const;

    /** Byte address of the start of the identified line. */
    Address lineAddress(std::uint64_t line_id) const;

  private:
    std::uint64_t newLine();
    std::uint64_t sampleLine();
    unsigned sampleWord(std::uint64_t line_id);

    PowerLawTraceParams params_;
    unsigned wordsPerLine_;
    unsigned lineShift_;
    Rng rng_;
    LruStack stack_;
    std::uint64_t nextLineId_ = 0;
};

} // namespace bwwall

#endif // BWWALL_TRACE_POWER_LAW_TRACE_HH
