/**
 * @file
 * Incremental (streaming) SHARDS miss-curve estimation.
 *
 * The one-shot estimators in cache/miss_curve_estimator.hh replay a
 * TraceSource they control; the ingestion path instead receives a
 * reference stream in arbitrary chunks over the network and must be
 * able to produce a miss curve *between* chunks.  Because the
 * underlying StackDistanceProfiler is a pure fold over the access
 * sequence, feeding it chunk by chunk is bit-identical to feeding it
 * the concatenated trace — provided the warm-up boundary and the
 * per-capacity readout are computed the same way.  This header owns
 * both pieces so the streaming and one-shot paths cannot drift:
 *
 *  - correctedStackMass() is the binomial set-conflict correction
 *    (previously private to miss_curve_estimator.cc); the one-shot
 *    estimators now call it too.
 *  - streamingProfilerConfig() derives the profiler configuration
 *    (notably maxTrackedDistance) with the same formula the one-shot
 *    stack estimators use.
 *
 * Memory is bounded regardless of stream length: SHARDS fixed-size
 * (R_max) mode caps resident sampled lines, and maxTrackedDistance
 * caps the histogram and recency-stack footprint.
 */

#ifndef BWWALL_TRACE_STREAMING_ESTIMATOR_HH
#define BWWALL_TRACE_STREAMING_ESTIMATOR_HH

#include <cstdint>
#include <vector>

#include "trace/access.hh"
#include "trace/stack_distance.hh"

namespace bwwall {

/** Per-capacity miss and write-back mass after set-conflict correction. */
struct StackCurveMass
{
    double misses = 0.0;
    double writebacks = 0.0;
};

/**
 * Per-capacity miss and write-back mass from the profiler's weighted
 * histograms, with the binomial set-conflict correction.
 *
 * An access with stack distance d sees d-1 distinct intervening
 * lines.  With S sets and uniformly hashed addresses each intervener
 * lands in the access's set with probability 1/S, so under LRU the
 * access misses with probability P(Binomial(d-1, 1/S) >= A).  For a
 * fully associative cache (S == 1, i.e. @p associativity 0 or >=
 * capacity) this degenerates to the exact threshold d > capacity,
 * keeping the estimator bit-exact against the simulator there.  The
 * same eviction probability weights the write-back windows.
 */
StackCurveMass correctedStackMass(const StackDistanceProfiler &profiler,
                                  std::uint64_t capacity_lines,
                                  std::uint32_t associativity);

/**
 * The profiler configuration both the one-shot stack estimators and
 * the streaming estimator build from the same inputs.  Distances past
 * 4x the largest grid capacity saturate the miss probability at every
 * grid point, so lumping them with the compulsory misses loses
 * nothing and bounds memory.
 */
StackDistanceProfilerConfig
streamingProfilerConfig(std::uint32_t line_bytes,
                        std::uint64_t max_capacity_lines,
                        double sample_rate,
                        std::size_t max_sampled_lines,
                        std::uint64_t seed);

/** Configuration of a StreamingMissCurveEstimator. */
struct StreamingEstimatorConfig
{
    /** Cache-line granularity at which addresses are collapsed. */
    std::uint32_t lineBytes = 64;

    /** Ways per set; 0 models a fully associative cache. */
    std::uint32_t associativity = 0;

    /** Capacity grid in bytes (each a multiple of lineBytes). */
    std::vector<std::uint64_t> capacities;

    /**
     * Records at the front of the stream that warm the recency stack
     * without counting toward the histograms (the streaming analogue
     * of MissCurveSpec::warmupAccesses).
     */
    std::uint64_t warmupAccesses = 0;

    /** SHARDS fixed-rate sampling rate in (0, 1]; 1.0 is exact. */
    double sampleRate = 1.0;

    /**
     * When non-zero: SHARDS fixed-size (R_max) mode — at most this
     * many sampled lines stay resident, giving a hard memory bound
     * for unbounded streams.
     */
    std::size_t maxSampledLines = 0;

    /** Salt of the spatial sampling hash. */
    std::uint64_t seed = 1;
};

/** One point of a streamed miss curve (trace-layer mirror of
 * MissCurvePoint; src/trace cannot depend on src/cache). */
struct StreamingCurvePoint
{
    std::uint64_t capacityBytes = 0;
    double missRate = 0.0;
    double writebackRatio = 0.0;
    double trafficBytesPerAccess = 0.0;
};

/** A snapshot of the live curve after some number of chunks. */
struct StreamingSnapshot
{
    std::vector<StreamingCurvePoint> points;

    /** True when the power-law fit below is meaningful (>= 2 grid
     * points, every miss rate positive). */
    bool fitValid = false;
    /** Paper's alpha (= -exponent of the power-law fit). */
    double alpha = 0.0;
    double fitRSquared = 0.0;

    /** Every record appended so far, warm-up included. */
    std::uint64_t recordsSeen = 0;
    /** Records counted by the histograms (post warm-up). */
    std::uint64_t profiledAccesses = 0;
    /** Of those, records that passed the spatial sampling filter. */
    std::uint64_t sampledAccesses = 0;
    /** Current SHARDS rate (decays in fixed-size mode). */
    double currentSampleRate = 1.0;
};

/**
 * Incremental SHARDS engine: append access records in chunks of any
 * size (including empty), snapshot the miss curve at any point.
 *
 * Invariant (unit-tested): for any partition of a trace into chunks,
 * snapshot() after appending them all is bit-identical to one-shot
 * SHARDS (SampledStackDistanceEstimator) over the concatenated trace
 * with the same configuration.
 */
class StreamingMissCurveEstimator
{
  public:
    /** Validates the configuration with fatal() on nonsense (empty
     * capacity grid, capacity not a line multiple, bad rate). */
    explicit StreamingMissCurveEstimator(
        const StreamingEstimatorConfig &config);

    /** Appends one chunk of records (count may be zero). */
    void append(const MemoryAccess *records, std::size_t count);

    void append(const std::vector<MemoryAccess> &records)
    {
        append(records.data(), records.size());
    }

    /**
     * Reads out the current curve without disturbing the stream;
     * append() can continue afterwards and later snapshots remain
     * bit-identical to one-shot runs over the longer prefix.
     */
    StreamingSnapshot snapshot() const;

    /** Every record appended so far, warm-up included. */
    std::uint64_t recordsSeen() const { return recordsSeen_; }

    const StreamingEstimatorConfig &config() const { return config_; }

  private:
    StreamingEstimatorConfig config_;
    StackDistanceProfiler profiler_;
    std::uint64_t recordsSeen_ = 0;
};

} // namespace bwwall

#endif // BWWALL_TRACE_STREAMING_ESTIMATOR_HH
