#include "trace/streaming_estimator.hh"

#include <algorithm>

#include "util/linear_fit.hh"
#include "util/logging.hh"

namespace bwwall {

namespace {

StreamingEstimatorConfig
validated(StreamingEstimatorConfig config)
{
    if (config.capacities.empty())
        fatal("streaming estimator requires at least one capacity");
    if (config.lineBytes == 0)
        fatal("streaming estimator requires a nonzero line size");
    for (const std::uint64_t capacity : config.capacities) {
        if (capacity < config.lineBytes ||
            capacity % config.lineBytes != 0) {
            fatal("streaming-curve capacity ", capacity,
                  " is not a multiple of the ", config.lineBytes,
                  "-byte line size");
        }
    }
    if (config.sampleRate <= 0.0 || config.sampleRate > 1.0)
        fatal("streaming estimator requires a sample rate in (0, 1], "
              "got ",
              config.sampleRate);
    return config;
}

StackDistanceProfilerConfig
profilerConfigFor(const StreamingEstimatorConfig &config)
{
    std::uint64_t max_capacity_lines = 0;
    for (const std::uint64_t capacity : config.capacities)
        max_capacity_lines = std::max(max_capacity_lines,
                                      capacity / config.lineBytes);
    return streamingProfilerConfig(config.lineBytes,
                                   max_capacity_lines,
                                   config.sampleRate,
                                   config.maxSampledLines,
                                   config.seed);
}

} // namespace

StackCurveMass
correctedStackMass(const StackDistanceProfiler &profiler,
                   std::uint64_t capacity_lines,
                   std::uint32_t associativity)
{
    const std::vector<double> &dist = profiler.distanceWeights();
    const std::vector<double> &wb = profiler.writebackWeights();

    StackCurveMass mass;
    mass.misses = profiler.coldWeight();
    mass.writebacks = profiler.coldWritebackWeight();

    std::uint64_t ways = associativity == 0
                             ? capacity_lines
                             : std::min<std::uint64_t>(associativity,
                                                       capacity_lines);
    ways = std::max<std::uint64_t>(ways, 1);
    const std::uint64_t sets = std::max<std::uint64_t>(
        capacity_lines / ways, 1);

    if (sets == 1) {
        // Fully associative: exact LRU threshold at the capacity.
        for (std::size_t d = static_cast<std::size_t>(capacity_lines) + 1;
             d < dist.size(); ++d)
            mass.misses += dist[d];
        for (std::size_t g = static_cast<std::size_t>(capacity_lines) + 1;
             g < wb.size(); ++g)
            mass.writebacks += wb[g];
        return mass;
    }

    // Suffix sums let the scan stop once the miss probability has
    // saturated without losing the histogram tails.
    const std::size_t length = std::max(dist.size(), wb.size());
    std::vector<double> dist_suffix(length + 1, 0.0);
    std::vector<double> wb_suffix(length + 1, 0.0);
    for (std::size_t d = length; d > 0; --d) {
        dist_suffix[d - 1] =
            dist_suffix[d] + (d - 1 < dist.size() ? dist[d - 1] : 0.0);
        wb_suffix[d - 1] =
            wb_suffix[d] + (d - 1 < wb.size() ? wb[d - 1] : 0.0);
    }

    const double p = 1.0 / static_cast<double>(sets);
    // pmf[k] = P(Binomial(d-1, p) == k) for k < ways, maintained
    // incrementally as d grows; the miss probability is 1 - sum(pmf).
    std::vector<double> pmf(static_cast<std::size_t>(ways), 0.0);
    pmf[0] = 1.0;
    double hit_probability = 1.0;

    for (std::size_t d = 1; d < length; ++d) {
        const double miss_probability = 1.0 - hit_probability;
        if (miss_probability > 1.0 - 1e-12) {
            mass.misses += dist_suffix[d];
            mass.writebacks += wb_suffix[d];
            return mass;
        }
        if (d < dist.size())
            mass.misses += dist[d] * miss_probability;
        if (d < wb.size())
            mass.writebacks += wb[d] * miss_probability;

        // Advance the binomial from d-1 to d intervening lines.
        for (std::size_t k = pmf.size(); k-- > 1;)
            pmf[k] = pmf[k] * (1.0 - p) + pmf[k - 1] * p;
        pmf[0] *= 1.0 - p;
        hit_probability = 0.0;
        for (const double mass_k : pmf)
            hit_probability += mass_k;
    }
    return mass;
}

StackDistanceProfilerConfig
streamingProfilerConfig(std::uint32_t line_bytes,
                        std::uint64_t max_capacity_lines,
                        double sample_rate,
                        std::size_t max_sampled_lines,
                        std::uint64_t seed)
{
    StackDistanceProfilerConfig profiler_config;
    profiler_config.lineBytes = line_bytes;
    profiler_config.maxTrackedDistance = std::max<std::size_t>(
        static_cast<std::size_t>(max_capacity_lines) * 4, 1024);
    profiler_config.sampleRate = sample_rate;
    profiler_config.maxSampledLines = max_sampled_lines;
    profiler_config.seed = seed;
    return profiler_config;
}

StreamingMissCurveEstimator::StreamingMissCurveEstimator(
    const StreamingEstimatorConfig &config)
    : config_(validated(config)), profiler_(profilerConfigFor(config_))
{
}

void
StreamingMissCurveEstimator::append(const MemoryAccess *records,
                                    std::size_t count)
{
    for (std::size_t i = 0; i < count; ++i) {
        profiler_.observe(records[i]);
        ++recordsSeen_;
        // The warm-up boundary depends only on the absolute stream
        // position, never on chunk framing, so any chunking of the
        // same trace resets the counters at the same record.
        if (recordsSeen_ == config_.warmupAccesses)
            profiler_.resetCounters();
    }
}

StreamingSnapshot
StreamingMissCurveEstimator::snapshot() const
{
    StreamingSnapshot snap;
    snap.recordsSeen = recordsSeen_;
    snap.profiledAccesses = profiler_.totalAccesses();
    snap.sampledAccesses = profiler_.sampledAccesses();
    snap.currentSampleRate = profiler_.currentSampleRate();

    // Identical readout to the one-shot stackEstimate(): the exact
    // access count N is the denominator (SHARDS_adj — distance-1
    // accesses can never miss, so topping that bucket up to N only
    // fixes the denominator, which using N directly already does).
    const auto accesses =
        static_cast<double>(profiler_.totalAccesses());

    snap.points.reserve(config_.capacities.size());
    for (const std::uint64_t capacity : config_.capacities) {
        const StackCurveMass mass = correctedStackMass(
            profiler_, capacity / config_.lineBytes,
            config_.associativity);
        StreamingCurvePoint point;
        point.capacityBytes = capacity;
        point.missRate = accesses == 0.0 ? 0.0
                                         : mass.misses / accesses;
        point.writebackRatio =
            mass.misses == 0.0 ? 0.0 : mass.writebacks / mass.misses;
        point.trafficBytesPerAccess =
            accesses == 0.0
                ? 0.0
                : (mass.misses + mass.writebacks) *
                      static_cast<double>(config_.lineBytes) /
                      accesses;
        snap.points.push_back(point);
    }

    // fitPowerLaw (the same fit MissCurve::fit() runs) requires
    // positive values, so a snapshot taken before any measured miss
    // mass exists reports fitValid = false instead of dying.
    bool fittable = snap.points.size() >= 2;
    for (const StreamingCurvePoint &point : snap.points)
        if (point.missRate <= 0.0)
            fittable = false;
    if (fittable) {
        std::vector<double> sizes, rates;
        sizes.reserve(snap.points.size());
        rates.reserve(snap.points.size());
        for (const StreamingCurvePoint &point : snap.points) {
            sizes.push_back(static_cast<double>(point.capacityBytes));
            rates.push_back(point.missRate);
        }
        const PowerLawFit fit = fitPowerLaw(sizes, rates);
        snap.fitValid = true;
        snap.alpha = -fit.exponent;
        snap.fitRSquared = fit.rSquared;
    }
    return snap;
}

} // namespace bwwall
