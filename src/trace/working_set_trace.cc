#include "trace/working_set_trace.hh"

#include "trace/hashing.hh"
#include "util/logging.hh"
#include "util/units.hh"

namespace bwwall {

WorkingSetTrace::WorkingSetTrace(const WorkingSetTraceParams &params)
    : params_(params), rng_(params.seed)
{
    if (params_.regions.empty())
        fatal("WorkingSetTrace requires at least one region");
    if (!isPowerOfTwo(params_.lineBytes) || !isPowerOfTwo(params_.wordBytes))
        fatal("WorkingSetTrace line/word sizes must be powers of two");
    if (params_.wordBytes > params_.lineBytes)
        fatal("WorkingSetTrace word size exceeds line size");

    std::vector<double> weights;
    weights.reserve(params_.regions.size());
    std::uint64_t base = 0;
    for (const auto &region : params_.regions) {
        if (region.lines == 0)
            fatal("WorkingSetTrace region must have at least one line");
        if (region.weight < 0.0)
            fatal("WorkingSetTrace region weight must be non-negative");
        weights.push_back(region.weight);
        regionBase_.push_back(base);
        base += region.lines;
    }
    regionPicker_ = std::make_unique<AliasTable>(weights);
    lineShift_ = floorLog2(params_.lineBytes);
    wordsPerLine_ = params_.lineBytes / params_.wordBytes;
    reset();
}

void
WorkingSetTrace::reset()
{
    rng_.seed(params_.seed);
    cursors_.assign(params_.regions.size(), 0);
}

std::uint64_t
WorkingSetTrace::totalLines() const
{
    std::uint64_t total = 0;
    for (const auto &region : params_.regions)
        total += region.lines;
    return total;
}

MemoryAccess
WorkingSetTrace::next()
{
    const std::size_t region_index = regionPicker_->sample(rng_);
    const auto &region = params_.regions[region_index];

    const std::uint64_t line_in_region = cursors_[region_index];
    cursors_[region_index] = (line_in_region + 1) % region.lines;

    const std::uint64_t line_id = regionBase_[region_index] + line_in_region;
    // Contiguous mode lays regions out back to back from a large
    // seed-derived base; scrambled mode spreads lines uniformly.
    const std::uint64_t line_number = params_.contiguousAddresses
        ? ((mix64(params_.seed) & 0x0000FFFFFF000000ULL) >>
           lineShift_) + line_id
        : mix64(line_id, params_.seed ^ 0xA11D5EEDULL) >> 6;

    MemoryAccess access;
    const auto word =
        static_cast<Address>(rng_.nextBounded(wordsPerLine_));
    access.address =
        (line_number << lineShift_) + word * params_.wordBytes;
    access.thread = params_.thread;
    access.type = rng_.nextBernoulli(region.writeFraction)
                      ? AccessType::Write
                      : AccessType::Read;
    return access;
}

} // namespace bwwall
