/**
 * @file
 * Single-pass stack-distance histogram accumulation with optional
 * SHARDS spatial sampling.
 *
 * One pass over a reference stream yields, via Mattson's stack
 * algorithm, the fully-associative LRU miss count at *every* capacity
 * simultaneously.  This profiler extends the plain analyzer
 * (trace/reuse_analyzer.hh) in three ways the miss-curve engine
 * needs:
 *
 *  - **weighted histograms** so spatially sampled accesses can stand
 *    in for 1/R accesses each;
 *  - **SHARDS sampling** (Waldspurger et al., FAST'15): a line is
 *    profiled only when hash(line) < T.  Fixed-rate keeps T constant
 *    (R = T / 2^64); fixed-size starts at R = 1 and lowers T whenever
 *    more than `maxSampledLines` sampled lines are resident, evicting
 *    lines whose hash rises above the new threshold — bounded memory
 *    for unbounded streams;
 *  - a **write-back histogram**: for each write, the maximum stack
 *    distance reached since the previous write to the same line tells
 *    exactly which capacities will eventually write the line back
 *    (the line fell out of any smaller cache while dirty), giving the
 *    per-capacity write-back curve from the same single pass.
 *
 * Distances measured in the sampled stack are scaled by 1/R back to
 * full-stream line distances, so histogram indices are always in
 * unsampled units.
 */

#ifndef BWWALL_TRACE_STACK_DISTANCE_HH
#define BWWALL_TRACE_STACK_DISTANCE_HH

#include <cstdint>
#include <set>
#include <unordered_map>
#include <utility>
#include <vector>

#include "trace/access.hh"
#include "trace/lru_stack.hh"

namespace bwwall {

/** Configuration of a StackDistanceProfiler. */
struct StackDistanceProfilerConfig
{
    /** Cache-line granularity at which addresses are collapsed. */
    std::uint32_t lineBytes = 64;

    /**
     * Distances above this (in full-stream lines) are lumped with
     * compulsory misses — they miss at every capacity of interest.
     * Also bounds the recency stack's memory.
     */
    std::size_t maxTrackedDistance = std::size_t(1) << 22;

    /**
     * SHARDS spatial sampling rate in (0, 1]; 1.0 profiles every
     * access (exact Mattson).
     */
    double sampleRate = 1.0;

    /**
     * When non-zero: SHARDS fixed-size mode.  Sampling starts at
     * rate 1 and the threshold decays so that at most this many
     * sampled lines are resident (the paper's R_max variant).
     * Overrides sampleRate as the stream grows.
     */
    std::size_t maxSampledLines = 0;

    /** Salt of the spatial hash (pick per experiment, not per size). */
    std::uint64_t seed = 1;
};

/** Single-pass weighted stack-distance and write-back profiler. */
class StackDistanceProfiler
{
  public:
    explicit StackDistanceProfiler(
        const StackDistanceProfilerConfig &config);

    /** Profiles one access (reads and writes). */
    void observe(const MemoryAccess &access);

    const StackDistanceProfilerConfig &config() const
    {
        return config_;
    }

    /** Total accesses seen, sampled or not. */
    std::uint64_t totalAccesses() const { return totalAccesses_; }

    /** Accesses that passed the spatial filter. */
    std::uint64_t sampledAccesses() const { return sampledAccesses_; }

    /** Current sampling rate (decays in fixed-size mode). */
    double currentSampleRate() const;

    /**
     * Estimated access count at each stack distance (index is the
     * 1-based distance in full-stream lines; index 0 is unused).
     */
    const std::vector<double> &distanceWeights() const
    {
        return distanceWeights_;
    }

    /**
     * Estimated accesses with infinite or beyond-horizon distance —
     * misses at every capacity.
     */
    double coldWeight() const { return coldWeight_; }

    /**
     * Estimated write count whose dirty window spans each stack
     * distance: an entry at index G becomes a write-back in every
     * cache smaller than G lines.
     */
    const std::vector<double> &writebackWeights() const
    {
        return writebackWeights_;
    }

    /** Writes whose dirty window is unbounded (write-back anywhere). */
    double coldWritebackWeight() const { return coldWritebackWeight_; }

    /**
     * Estimated fully-associative LRU miss rate at the capacity, in
     * lines: (cold + sum of weights beyond the capacity) / accesses.
     */
    double missRateAtCapacity(std::size_t capacity_lines) const;

    /** Clears profile state including the recency stack. */
    void reset();

    /**
     * Clears the histograms and counters but keeps the recency stack,
     * per-line dirty windows, and sampling threshold — call after a
     * warm-up pass, exactly like SetAssociativeCache::resetStats().
     */
    void resetCounters();

  private:
    /** Per-line dirty-window state, in full-stream line distances. */
    struct LineState
    {
        /**
         * Maximum estimated distance reached since the last write to
         * the line; kUnbounded when the line was never written while
         * tracked (its first write-back window extends to infinity).
         */
        double maxDistanceSinceWrite = 0.0;
    };

    static constexpr double kUnbounded = -1.0;

    bool sampled(std::uint64_t line) const;
    void recordDistance(double estimated, double weight);
    void recordWriteback(double window_max, double weight);
    void evictLine(std::uint64_t line);
    void enforceBounds();

    StackDistanceProfilerConfig config_;
    unsigned lineShift_;
    bool sampleAll_;
    std::uint64_t threshold_ = 0; ///< sample iff hash < threshold_
    LruStack stack_;
    std::unordered_map<std::uint64_t, LineState> lineState_;
    /** Resident sampled lines ordered by hash (fixed-size mode). */
    std::set<std::pair<std::uint64_t, std::uint64_t>> byHash_;

    std::vector<double> distanceWeights_; // index = distance
    std::vector<double> writebackWeights_;
    double coldWeight_ = 0.0;
    double coldWritebackWeight_ = 0.0;
    std::uint64_t totalAccesses_ = 0;
    std::uint64_t sampledAccesses_ = 0;
};

} // namespace bwwall

#endif // BWWALL_TRACE_STACK_DISTANCE_HH
