/**
 * @file
 * Multithreaded synthetic workload with a shared region and per-thread
 * private working sets.
 *
 * Models the PARSEC-style behaviour the paper measures in its Figure
 * 14: "while the shared data set size remains somewhat constant, each
 * new thread requires its own private working set", so the fraction of
 * shared lines in a shared cache *declines* as threads are added.
 * Private references follow the same power-law reuse mechanism as
 * PowerLawTrace; shared references pick lines from a fixed-size region
 * under a Zipf popularity distribution common to all threads.
 */

#ifndef BWWALL_TRACE_SHARED_TRACE_HH
#define BWWALL_TRACE_SHARED_TRACE_HH

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "trace/power_law_trace.hh"
#include "trace/trace_source.hh"
#include "util/distributions.hh"
#include "util/rng.hh"

namespace bwwall {

/** Configuration of a SharedWorkloadTrace. */
struct SharedWorkloadTraceParams
{
    /** Number of threads; accesses interleave round-robin. */
    unsigned threads = 4;

    /** Size of the shared region in lines (constant across threads). */
    std::uint64_t sharedLines = 32 * 1024;

    /** Zipf popularity exponent within the shared region. */
    double sharedZipfExponent = 0.6;

    /**
     * Probability that any single reference targets the shared
     * region.
     */
    double sharedAccessFraction = 0.2;

    /** Reuse exponent of each thread's private stream. */
    double privateAlpha = 0.5;

    /** Resident-line cap per private stream. */
    std::size_t privateMaxResidentLines = std::size_t(1) << 18;

    /** Fraction of store-behaviour lines in private streams. */
    double writeLineFraction = 0.25;

    std::uint32_t lineBytes = 64;
    std::uint32_t wordBytes = 8;
    std::uint64_t seed = 1;
    std::string label = "shared-workload";
};

/** Interleaved multithreaded trace with shared and private data. */
class SharedWorkloadTrace : public TraceSource
{
  public:
    explicit SharedWorkloadTrace(const SharedWorkloadTraceParams &params);

    MemoryAccess next() override;
    void reset() override;
    std::string name() const override { return params_.label; }

    const SharedWorkloadTraceParams &params() const { return params_; }

    /** True when an address belongs to the shared region. */
    bool isSharedAddress(Address address) const;

  private:
    Address sharedLineAddress(std::uint64_t line_index) const;

    SharedWorkloadTraceParams params_;
    Rng rng_;
    std::unique_ptr<ZipfSampler> sharedPicker_;
    std::vector<std::unique_ptr<PowerLawTrace>> privateStreams_;
    unsigned nextThread_ = 0;
    unsigned lineShift_;
    unsigned wordsPerLine_;
    Address sharedRegionBase_;
};

} // namespace bwwall

#endif // BWWALL_TRACE_SHARED_TRACE_HH
