/**
 * @file
 * Abstract interface for synthetic memory-reference streams.
 */

#ifndef BWWALL_TRACE_TRACE_SOURCE_HH
#define BWWALL_TRACE_TRACE_SOURCE_HH

#include <string>

#include "trace/access.hh"

namespace bwwall {

/**
 * An unbounded, deterministic stream of memory accesses.
 *
 * Generators are infinite; the consumer decides how many references to
 * draw.  reset() restores the stream to its initial state so the same
 * trace can be replayed against several cache configurations — the
 * miss-curve sweeps rely on byte-identical replay.
 */
class TraceSource
{
  public:
    virtual ~TraceSource() = default;

    /** Produces the next access in the stream. */
    virtual MemoryAccess next() = 0;

    /** Rewinds the stream to its initial state. */
    virtual void reset() = 0;

    /** Human-readable stream name for reports. */
    virtual std::string name() const = 0;
};

} // namespace bwwall

#endif // BWWALL_TRACE_TRACE_SOURCE_HH
