#include "trace/profiles.hh"

#include "trace/hashing.hh"
#include "trace/power_law_trace.hh"

namespace bwwall {

const std::vector<WorkloadProfileSpec> &
commercialProfiles()
{
    // Exponents are the paper's fitted per-application values where it
    // reports them (OLTP-2 min 0.36, OLTP-4 max 0.62) and values
    // consistent with the fitted 0.48 commercial average elsewhere.
    static const std::vector<WorkloadProfileSpec> profiles = {
        {"SPECjbb-linux", 0.50, 0.28, 0.60},
        {"SPECjbb-aix", 0.53, 0.28, 0.60},
        {"SPECpower", 0.45, 0.22, 0.60},
        {"OLTP-1", 0.42, 0.35, 0.55},
        {"OLTP-2", 0.36, 0.35, 0.55},
        {"OLTP-3", 0.52, 0.32, 0.55},
        {"OLTP-4", 0.62, 0.30, 0.55},
    };
    return profiles;
}

WorkloadProfileSpec
commercialAverageProfile()
{
    return {"Commercial-AVG", 0.48, 0.30, 0.58};
}

WorkloadProfileSpec
spec2006AverageProfile()
{
    return {"SPEC2006-AVG", 0.25, 0.20, 0.65};
}

std::vector<WorkloadProfileSpec>
figure1Profiles()
{
    std::vector<WorkloadProfileSpec> all = commercialProfiles();
    all.push_back(commercialAverageProfile());
    all.push_back(spec2006AverageProfile());
    return all;
}

std::unique_ptr<TraceSource>
makeProfileTrace(const WorkloadProfileSpec &spec, std::uint64_t seed,
                 std::uint32_t line_bytes)
{
    PowerLawTraceParams params;
    params.alpha = spec.alpha;
    params.writeLineFraction = spec.writeLineFraction;
    params.usedWordFraction = spec.usedWordFraction;
    params.lineBytes = line_bytes;
    params.seed = mix64(seed, std::hash<std::string>{}(spec.name));
    params.label = spec.name;
    return std::make_unique<PowerLawTrace>(params);
}

std::vector<WorkingSetTraceParams>
specDiscreteAppParams(std::uint64_t seed)
{
    // Three archetypes: a small-footprint compute kernel, a
    // medium-footprint pointer chaser, and a streaming application
    // whose working set exceeds any cache of interest.  Sizes are in
    // 64-byte lines (e.g. 4096 lines = 256 KiB).
    std::vector<WorkingSetTraceParams> apps;

    WorkingSetTraceParams kernel;
    kernel.label = "spec-kernel-like";
    kernel.regions = {
        {512, 0.70, 0.30},   // hot 32 KiB inner arrays
        {4096, 0.25, 0.10},  // 256 KiB table
        {262144, 0.05, 0.0}, // 16 MiB cold sweep
    };
    kernel.seed = mix64(seed, 101);
    apps.push_back(kernel);

    WorkingSetTraceParams pointer_chaser;
    pointer_chaser.label = "spec-pointer-like";
    pointer_chaser.regions = {
        {2048, 0.45, 0.20},   // 128 KiB node pool
        {32768, 0.40, 0.15},  // 2 MiB graph
        {524288, 0.15, 0.05}, // 32 MiB backing store
    };
    pointer_chaser.seed = mix64(seed, 202);
    apps.push_back(pointer_chaser);

    WorkingSetTraceParams streaming;
    streaming.label = "spec-stream-like";
    streaming.regions = {
        {256, 0.30, 0.40},     // 16 KiB stack/temporaries
        {1048576, 0.70, 0.30}, // 64 MiB streamed arrays
    };
    streaming.seed = mix64(seed, 303);
    apps.push_back(streaming);

    return apps;
}

} // namespace bwwall
