#include "trace/value_pattern.hh"

#include <cstring>

#include "util/logging.hh"

namespace bwwall {

ValueMix
commercialValueMix()
{
    // Commercial/OLTP data: many nulls and flags, modest integers,
    // heap pointers — the mix prior compression studies report as
    // yielding roughly 2x.
    ValueMix mix;
    mix.zero = 0.28;
    mix.smallInt = 0.22;
    mix.repeatedByte = 0.06;
    mix.pointerLike = 0.16;
    mix.halfWordPair = 0.05;
    mix.random = 0.23;
    return mix;
}

ValueMix
integerValueMix()
{
    // SPECint-like: dominated by small integers and zeros.
    ValueMix mix;
    mix.zero = 0.33;
    mix.smallInt = 0.34;
    mix.repeatedByte = 0.08;
    mix.pointerLike = 0.10;
    mix.halfWordPair = 0.05;
    mix.random = 0.10;
    return mix;
}

ValueMix
floatingPointValueMix()
{
    // SPECfp-like: mantissa noise dominates; little value locality.
    ValueMix mix;
    mix.zero = 0.08;
    mix.smallInt = 0.04;
    mix.repeatedByte = 0.02;
    mix.pointerLike = 0.02;
    mix.halfWordPair = 0.04;
    mix.random = 0.80;
    return mix;
}

ValuePatternGenerator::ValuePatternGenerator(const ValueMix &mix,
                                             std::uint64_t seed)
    : mix_(mix), seed_(seed), rng_(seed)
{
    const std::vector<double> weights = {
        mix.zero,         mix.smallInt,    mix.repeatedByte,
        mix.pointerLike,  mix.halfWordPair, mix.random,
    };
    double total = 0.0;
    for (double w : weights)
        total += w;
    if (total <= 0.0)
        fatal("ValuePatternGenerator requires a positive total weight");
    classPicker_ = std::make_unique<AliasTable>(weights);
    pointerBase_ = (rng_.next() & 0x0000FFFFFF000000ULL);
}

void
ValuePatternGenerator::reset()
{
    rng_.seed(seed_);
    pointerBase_ = (rng_.next() & 0x0000FFFFFF000000ULL);
}

std::uint64_t
ValuePatternGenerator::makeWord(ValueClass cls)
{
    switch (cls) {
      case ValueClass::Zero:
        return 0;
      case ValueClass::SmallInt: {
        // Sign-extended value within +/- 2^15.
        const std::int64_t v = rng_.nextRange(-32768, 32767);
        return static_cast<std::uint64_t>(v);
      }
      case ValueClass::RepeatedByte: {
        const std::uint64_t b = rng_.nextBounded(256);
        return b * 0x0101010101010101ULL;
      }
      case ValueClass::PointerLike:
        return pointerBase_ | (rng_.next() & 0xFFFFFFULL);
      case ValueClass::HalfWordPair: {
        const std::uint64_t half = rng_.next() & 0xFFFFFFFFULL;
        return (half << 32) | half;
      }
      case ValueClass::Random:
        return rng_.next();
    }
    panic("unreachable value class");
}

std::uint64_t
ValuePatternGenerator::nextWord()
{
    const auto cls = static_cast<ValueClass>(classPicker_->sample(rng_));
    return makeWord(cls);
}

std::vector<std::uint8_t>
ValuePatternGenerator::nextLine(std::size_t line_bytes)
{
    if (line_bytes % 8 != 0)
        fatal("ValuePatternGenerator line size must be a multiple of 8");
    std::vector<std::uint8_t> line(line_bytes);
    for (std::size_t offset = 0; offset < line_bytes; offset += 8) {
        const std::uint64_t word = nextWord();
        std::memcpy(line.data() + offset, &word, 8);
    }
    return line;
}

} // namespace bwwall
