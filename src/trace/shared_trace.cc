#include "trace/shared_trace.hh"

#include "trace/hashing.hh"
#include "util/logging.hh"
#include "util/units.hh"

namespace bwwall {

namespace {

// The shared region lives in a dedicated high window so shared and
// private references are distinguishable by address.
constexpr Address kSharedWindowBase = 0xFFFF000000000000ULL;

} // namespace

SharedWorkloadTrace::SharedWorkloadTrace(
    const SharedWorkloadTraceParams &params)
    : params_(params), rng_(params.seed),
      sharedRegionBase_(kSharedWindowBase)
{
    if (params_.threads == 0)
        fatal("SharedWorkloadTrace requires at least one thread");
    if (params_.sharedLines == 0)
        fatal("SharedWorkloadTrace requires a non-empty shared region");
    if (params_.sharedAccessFraction < 0.0 ||
        params_.sharedAccessFraction > 1.0) {
        fatal("SharedWorkloadTrace sharedAccessFraction must be in [0,1]");
    }
    if (!isPowerOfTwo(params_.lineBytes) || !isPowerOfTwo(params_.wordBytes))
        fatal("SharedWorkloadTrace line/word sizes must be powers of two");

    lineShift_ = floorLog2(params_.lineBytes);
    wordsPerLine_ = params_.lineBytes / params_.wordBytes;

    sharedPicker_ = std::make_unique<ZipfSampler>(
        params_.sharedLines, params_.sharedZipfExponent);

    for (unsigned t = 0; t < params_.threads; ++t) {
        PowerLawTraceParams private_params;
        private_params.alpha = params_.privateAlpha;
        private_params.maxResidentLines = params_.privateMaxResidentLines;
        private_params.warmLines = std::min<std::size_t>(
            params_.privateMaxResidentLines, std::size_t(1) << 15);
        private_params.writeLineFraction = params_.writeLineFraction;
        private_params.lineBytes = params_.lineBytes;
        private_params.wordBytes = params_.wordBytes;
        private_params.thread = t;
        private_params.seed = mix64(params_.seed, 0x7ead0000ULL + t);
        private_params.label = params_.label + "-private-" +
            std::to_string(t);
        privateStreams_.push_back(
            std::make_unique<PowerLawTrace>(private_params));
    }
    reset();
}

void
SharedWorkloadTrace::reset()
{
    rng_.seed(params_.seed);
    nextThread_ = 0;
    for (auto &stream : privateStreams_)
        stream->reset();
}

Address
SharedWorkloadTrace::sharedLineAddress(std::uint64_t line_index) const
{
    return sharedRegionBase_ +
        (line_index << static_cast<Address>(lineShift_));
}

bool
SharedWorkloadTrace::isSharedAddress(Address address) const
{
    return address >= sharedRegionBase_ &&
           address < sharedLineAddress(params_.sharedLines);
}

MemoryAccess
SharedWorkloadTrace::next()
{
    const unsigned thread = nextThread_;
    nextThread_ = (nextThread_ + 1) % params_.threads;

    if (rng_.nextBernoulli(params_.sharedAccessFraction)) {
        // Shared reference: Zipf-popular line, uniform word within.
        const std::uint64_t rank = sharedPicker_->sample(rng_) - 1;
        MemoryAccess access;
        access.address = sharedLineAddress(rank) +
            rng_.nextBounded(wordsPerLine_) * params_.wordBytes;
        access.thread = thread;
        // Shared data is read-mostly: producers write, consumers read.
        access.type = rng_.nextBernoulli(0.1) ? AccessType::Write
                                              : AccessType::Read;
        return access;
    }

    MemoryAccess access = privateStreams_[thread]->next();
    access.thread = thread;
    return access;
}

} // namespace bwwall
