/**
 * @file
 * Named synthetic workload profiles standing in for the paper's
 * Figure 1 benchmark suite.
 *
 * The paper fit the power law to seven commercial traces (SPECjbb on
 * Linux and AIX, SPECpower, OLTP-1..4) plus the SPEC 2006 average, and
 * reports: commercial average alpha 0.48, minimum 0.36 (OLTP-2),
 * maximum 0.62 (OLTP-4), SPEC 2006 average 0.25.  Those traces are
 * proprietary; each profile here configures a PowerLawTrace with the
 * paper's fitted exponent (see DESIGN.md, substitution table), along
 * with write intensity and word-footprint parameters consistent with
 * the literature the paper cites (roughly 40% of words unused; write
 * backs a constant fraction of misses).
 */

#ifndef BWWALL_TRACE_PROFILES_HH
#define BWWALL_TRACE_PROFILES_HH

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "trace/trace_source.hh"
#include "trace/working_set_trace.hh"

namespace bwwall {

/** Parameters of one named workload. */
struct WorkloadProfileSpec
{
    std::string name;
    /** Target miss-curve exponent. */
    double alpha = 0.5;
    /** Fraction of store-behaviour lines (sets the write-back ratio). */
    double writeLineFraction = 0.25;
    /** Mean fraction of each line's words the workload touches. */
    double usedWordFraction = 0.6;
};

/**
 * The seven commercial profiles of Figure 1, in the paper's order:
 * SPECjbb (linux), SPECjbb (aix), SPECpower, OLTP-1..OLTP-4.
 */
const std::vector<WorkloadProfileSpec> &commercialProfiles();

/** The fitted commercial average (alpha = 0.48). */
WorkloadProfileSpec commercialAverageProfile();

/** The SPEC 2006 suite average (alpha = 0.25). */
WorkloadProfileSpec spec2006AverageProfile();

/** Every Figure 1 series: the seven commercial + the two averages. */
std::vector<WorkloadProfileSpec> figure1Profiles();

/**
 * Builds the trace source for a profile.
 *
 * @param spec Profile parameters.
 * @param seed Stream seed (determines the whole trace).
 * @param line_bytes Cache-line granularity of generated addresses.
 */
std::unique_ptr<TraceSource> makeProfileTrace(
    const WorkloadProfileSpec &spec, std::uint64_t seed,
    std::uint32_t line_bytes = 64);

/**
 * SPEC-2006-like *individual* applications with discrete working
 * sets — the staircase miss curves the paper notes fit the power law
 * poorly in isolation.  Returned ready to construct WorkingSetTrace.
 */
std::vector<WorkingSetTraceParams> specDiscreteAppParams(
    std::uint64_t seed);

} // namespace bwwall

#endif // BWWALL_TRACE_PROFILES_HH
