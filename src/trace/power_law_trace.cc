#include "trace/power_law_trace.hh"

#include <algorithm>
#include <cmath>

#include "trace/hashing.hh"
#include "util/logging.hh"
#include "util/units.hh"

namespace bwwall {

namespace {

// Salt constants keep the independent per-line property streams
// (address, store behaviour, footprint) decorrelated.
constexpr std::uint64_t kAddressSalt = 0xA11D5EEDULL;
constexpr std::uint64_t kStoreSalt = 0x57025EEDULL;
constexpr std::uint64_t kFootprintSalt = 0xF007F00DULL;
constexpr std::uint64_t kWordSalt = 0x30BD5EEDULL;

} // namespace

PowerLawTrace::PowerLawTrace(const PowerLawTraceParams &params)
    : params_(params),
      rng_(params.seed),
      stack_(std::min<std::size_t>(params.maxResidentLines, 1 << 16))
{
    if (params_.alpha <= 0.0)
        fatal("PowerLawTrace requires alpha > 0, got ", params_.alpha);
    if (!isPowerOfTwo(params_.lineBytes) || !isPowerOfTwo(params_.wordBytes))
        fatal("PowerLawTrace line/word sizes must be powers of two");
    if (params_.wordBytes > params_.lineBytes)
        fatal("PowerLawTrace word size exceeds line size");
    if (params_.usedWordFraction <= 0.0 || params_.usedWordFraction > 1.0)
        fatal("PowerLawTrace usedWordFraction must be in (0, 1]");
    if (params_.maxResidentLines < 2)
        fatal("PowerLawTrace needs at least two resident lines");

    wordsPerLine_ = params_.lineBytes / params_.wordBytes;
    lineShift_ = floorLog2(params_.lineBytes);
    reset();
}

void
PowerLawTrace::reset()
{
    rng_.seed(params_.seed);
    stack_.clear();
    nextLineId_ = 0;
    const std::size_t warm =
        std::min(params_.warmLines, params_.maxResidentLines);
    for (std::size_t i = 0; i < warm; ++i)
        newLine();
}

Address
PowerLawTrace::lineAddress(std::uint64_t line_id) const
{
    // Bijective scramble spreads line identifiers uniformly over the
    // cache index space; keeping 58 bits of line number makes
    // collisions between distinct identifiers negligible.
    const std::uint64_t scrambled =
        mix64(line_id, params_.seed ^ kAddressSalt) >> 6;
    return scrambled << lineShift_;
}

bool
PowerLawTrace::isStoreLine(std::uint64_t line_id) const
{
    const std::uint64_t h = mix64(line_id, params_.seed ^ kStoreSalt);
    return hashToUnit(h) < params_.writeLineFraction;
}

unsigned
PowerLawTrace::footprintWords(std::uint64_t line_id) const
{
    if (params_.usedWordFraction >= 1.0)
        return wordsPerLine_;
    // Footprint sizes are distributed around the configured mean:
    // floor(mean * words) or the next integer up, mixed so the average
    // over many lines equals mean * words, with at least one word.
    const double target =
        params_.usedWordFraction * static_cast<double>(wordsPerLine_);
    const double base = std::floor(target);
    const double frac = target - base;
    const std::uint64_t h = mix64(line_id, params_.seed ^ kFootprintSalt);
    double words = base + (hashToUnit(h) < frac ? 1.0 : 0.0);
    words = std::clamp(words, 1.0, static_cast<double>(wordsPerLine_));
    return static_cast<unsigned>(words);
}

std::uint64_t
PowerLawTrace::newLine()
{
    const std::uint64_t line = nextLineId_++;
    stack_.push(line);
    if (stack_.size() > params_.maxResidentLines)
        stack_.popLru();
    return line;
}

std::uint64_t
PowerLawTrace::sampleLine()
{
    if (stack_.size() < 2 ||
        rng_.nextBernoulli(params_.coldMissProbability)) {
        return newLine();
    }
    // Unbounded discrete Pareto: P(D > d) = d^-alpha exactly for
    // integer d >= 1, via D = floor(u^(-1/alpha)).
    const double u = 1.0 - rng_.nextDouble(); // in (0, 1]
    const double x = std::pow(u, -1.0 / params_.alpha);
    std::uint64_t depth;
    if (x >= static_cast<double>(params_.maxResidentLines) * 2.0) {
        depth = ~0ULL; // deep reuse: treated as compulsory below
    } else {
        depth = static_cast<std::uint64_t>(x);
        if (depth < 1)
            depth = 1;
    }
    if (depth > stack_.size())
        return newLine();
    return stack_.touchAtDepth(static_cast<std::size_t>(depth));
}

unsigned
PowerLawTrace::sampleWord(std::uint64_t line_id)
{
    const unsigned footprint = footprintWords(line_id);
    if (footprint >= wordsPerLine_ && wordsPerLine_ == 1)
        return 0;
    // The line's used words are those whose per-(line, word) hash
    // ranks among the footprint smallest; sample uniformly from them.
    // wordsPerLine_ is small (<= 32), so a linear selection is cheap.
    const std::uint64_t base = mix64(line_id, params_.seed ^ kWordSalt);
    const std::uint64_t pick = rng_.nextBounded(footprint) + 1;
    std::uint64_t chosen_hash = 0;
    unsigned chosen_word = 0;
    // Find the pick-th smallest hash among the words.
    for (std::uint64_t round = 0; round < pick; ++round) {
        std::uint64_t best_hash = ~0ULL;
        unsigned best_word = 0;
        for (unsigned w = 0; w < wordsPerLine_; ++w) {
            const std::uint64_t h = mix64(base, w);
            if (h > chosen_hash && h < best_hash) {
                best_hash = h;
                best_word = w;
            }
        }
        chosen_hash = best_hash;
        chosen_word = best_word;
    }
    return chosen_word;
}

MemoryAccess
PowerLawTrace::next()
{
    const std::uint64_t line = sampleLine();

    MemoryAccess access;
    const unsigned word =
        params_.usedWordFraction >= 1.0 && wordsPerLine_ > 0
            ? static_cast<unsigned>(rng_.nextBounded(wordsPerLine_))
            : sampleWord(line);
    access.address = lineAddress(line) +
        static_cast<Address>(word) * params_.wordBytes;
    access.thread = params_.thread;
    const bool store = isStoreLine(line) &&
        rng_.nextBernoulli(params_.writeProbability);
    access.type = store ? AccessType::Write : AccessType::Read;
    return access;
}

} // namespace bwwall
