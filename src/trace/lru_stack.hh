/**
 * @file
 * An LRU recency stack with O(log n) depth queries and updates.
 *
 * This single structure serves two roles:
 *  - the power-law trace generator *samples* a depth and asks which
 *    line lives there (touchAtDepth), and
 *  - the reuse-distance analyzer asks at which depth a given line
 *    currently lives (touch).
 *
 * Internally lines occupy "time slots"; a Fenwick tree over slot
 * occupancy answers rank and select queries.  Slots are compacted when
 * the time axis fills, giving amortised O(log n) per operation.
 */

#ifndef BWWALL_TRACE_LRU_STACK_HH
#define BWWALL_TRACE_LRU_STACK_HH

#include <cstdint>
#include <memory>
#include <unordered_map>
#include <vector>

#include "util/fenwick.hh"

namespace bwwall {

/** Move-to-front stack over 64-bit line identifiers. */
class LruStack
{
  public:
    /** Depth value reported for lines not present in the stack. */
    static constexpr std::size_t kNotFound = 0;

    /**
     * @param capacity_hint Expected number of resident lines; purely a
     * performance hint, the stack grows beyond it as needed.
     */
    explicit LruStack(std::size_t capacity_hint = 1024);

    /** Number of distinct lines currently in the stack. */
    std::size_t size() const { return lineToSlot_.size(); }

    bool empty() const { return lineToSlot_.empty(); }

    /** True when the line is present. */
    bool contains(std::uint64_t line) const;

    /**
     * Inserts a line that must not already be present at the top
     * (most-recent) position.
     */
    void push(std::uint64_t line);

    /**
     * Looks up the 1-based recency depth of the line (1 = most
     * recent), moves it to the top, and returns the depth.  Returns
     * kNotFound and changes nothing when the line is absent.
     */
    std::size_t touch(std::uint64_t line);

    /**
     * Returns the line at 1-based depth (1 = most recent) and moves it
     * to the top.  depth must be in [1, size()].
     */
    std::uint64_t touchAtDepth(std::size_t depth);

    /** Reads the line at a depth without reordering the stack. */
    std::uint64_t peekAtDepth(std::size_t depth) const;

    /** Removes and returns the least-recently-used line. */
    std::uint64_t popLru();

    /**
     * Removes the line regardless of its depth, keeping the relative
     * order of every other line.  Returns whether it was present.
     * Used by the SHARDS fixed-size sampler, which must drop lines
     * whose spatial hash rises above the shrinking threshold.
     */
    bool remove(std::uint64_t line);

    /** Removes every line. */
    void clear();

  private:
    void moveToTop(std::uint64_t line, std::size_t slot);
    void placeAtTop(std::uint64_t line);
    void compact(std::size_t min_capacity);
    std::size_t slotOfDepth(std::size_t depth) const;

    std::size_t slotCapacity_;
    std::size_t nextSlot_ = 0;
    std::unique_ptr<FenwickTree> occupancy_;
    std::vector<std::uint64_t> slotLine_;
    std::unordered_map<std::uint64_t, std::size_t> lineToSlot_;
};

} // namespace bwwall

#endif // BWWALL_TRACE_LRU_STACK_HH
