#include "trace/stack_distance.hh"

#include <cmath>
#include <limits>

#include "trace/hashing.hh"
#include "util/logging.hh"
#include "util/units.hh"

namespace bwwall {

namespace {

/** Salt separating the spatial-sampling hash from other mix64 uses. */
constexpr std::uint64_t kShardsSalt = 0x53484152'44530001ULL;

std::uint64_t
spatialHash(std::uint64_t line, std::uint64_t seed)
{
    return mix64(line, seed ^ kShardsSalt);
}

/** Threshold encoding a sampling rate as a 64-bit hash bound. */
std::uint64_t
rateToThreshold(double rate)
{
    if (rate >= 1.0)
        return std::numeric_limits<std::uint64_t>::max();
    return static_cast<std::uint64_t>(rate * 0x1.0p64);
}

} // namespace

StackDistanceProfiler::StackDistanceProfiler(
    const StackDistanceProfilerConfig &config)
    : config_(config)
{
    if (!isPowerOfTwo(config.lineBytes))
        fatal("StackDistanceProfiler line size must be a power of two");
    if (config.maxTrackedDistance == 0)
        fatal("StackDistanceProfiler needs a positive tracked "
              "distance");
    if (config.sampleRate <= 0.0 || config.sampleRate > 1.0)
        fatal("StackDistanceProfiler sample rate must be in (0, 1], "
              "got ", config.sampleRate);
    lineShift_ = floorLog2(config.lineBytes);
    sampleAll_ =
        config.sampleRate >= 1.0 && config.maxSampledLines == 0;
    threshold_ = rateToThreshold(config.sampleRate);
}

bool
StackDistanceProfiler::sampled(std::uint64_t line) const
{
    return sampleAll_ ||
           spatialHash(line, config_.seed) < threshold_;
}

double
StackDistanceProfiler::currentSampleRate() const
{
    if (sampleAll_ ||
        threshold_ == std::numeric_limits<std::uint64_t>::max())
        return 1.0;
    return std::ldexp(static_cast<double>(threshold_), -64);
}

void
StackDistanceProfiler::recordDistance(double estimated, double weight)
{
    const auto bucket = static_cast<std::size_t>(estimated);
    if (bucket > config_.maxTrackedDistance) {
        coldWeight_ += weight;
        return;
    }
    if (distanceWeights_.size() <= bucket)
        distanceWeights_.resize(bucket + 1, 0.0);
    distanceWeights_[bucket] += weight;
}

void
StackDistanceProfiler::recordWriteback(double window_max,
                                       double weight)
{
    if (window_max == kUnbounded ||
        window_max >
            static_cast<double>(config_.maxTrackedDistance)) {
        coldWritebackWeight_ += weight;
        return;
    }
    const auto bucket = static_cast<std::size_t>(window_max);
    if (writebackWeights_.size() <= bucket)
        writebackWeights_.resize(bucket + 1, 0.0);
    writebackWeights_[bucket] += weight;
}

void
StackDistanceProfiler::evictLine(std::uint64_t line)
{
    stack_.remove(line);
    lineState_.erase(line);
    if (config_.maxSampledLines != 0)
        byHash_.erase({spatialHash(line, config_.seed), line});
}

void
StackDistanceProfiler::enforceBounds()
{
    // SHARDS fixed-size: lower the threshold until at most
    // maxSampledLines sampled lines remain, evicting every line whose
    // hash no longer qualifies (ties on the boundary hash included).
    while (config_.maxSampledLines != 0 &&
           byHash_.size() > config_.maxSampledLines) {
        threshold_ = byHash_.rbegin()->first;
        while (!byHash_.empty() &&
               byHash_.rbegin()->first >= threshold_) {
            const std::uint64_t line = byHash_.rbegin()->second;
            evictLine(line);
        }
    }

    // Bound the recency stack: a line deeper than the scaled horizon
    // can only yield distances lumped with compulsory misses anyway.
    const double max_depth =
        static_cast<double>(config_.maxTrackedDistance) *
            currentSampleRate() +
        1.0;
    while (static_cast<double>(stack_.size()) > max_depth) {
        const std::uint64_t victim = stack_.popLru();
        lineState_.erase(victim);
        if (config_.maxSampledLines != 0)
            byHash_.erase({spatialHash(victim, config_.seed), victim});
    }
}

void
StackDistanceProfiler::observe(const MemoryAccess &access)
{
    ++totalAccesses_;
    const std::uint64_t line = access.address >> lineShift_;
    if (!sampled(line))
        return;
    ++sampledAccesses_;

    const double rate = currentSampleRate();
    const double weight = 1.0 / rate;
    const bool is_write = access.type == AccessType::Write;
    const std::size_t depth = stack_.touch(line);

    if (depth == LruStack::kNotFound) {
        // First touch (or re-touch past the horizon): a compulsory
        // miss at every capacity, and an unbounded dirty window when
        // it is a write.
        coldWeight_ += weight;
        stack_.push(line);
        if (config_.maxSampledLines != 0)
            byHash_.insert({spatialHash(line, config_.seed), line});
        LineState state;
        if (is_write) {
            coldWritebackWeight_ += weight;
            state.maxDistanceSinceWrite = 0.0;
        } else {
            state.maxDistanceSinceWrite = kUnbounded;
        }
        lineState_[line] = state;
        enforceBounds();
        return;
    }

    // Depth within the sampled stack estimates rate * true distance.
    double estimated = static_cast<double>(depth);
    if (!sampleAll_ && rate < 1.0) {
        estimated = std::max(1.0, std::round(estimated / rate));
    }
    recordDistance(estimated, weight);

    LineState &state = lineState_[line];
    if (is_write) {
        const double window =
            state.maxDistanceSinceWrite == kUnbounded
                ? kUnbounded
                : std::max(state.maxDistanceSinceWrite, estimated);
        recordWriteback(window, weight);
        state.maxDistanceSinceWrite = 0.0;
    } else if (state.maxDistanceSinceWrite != kUnbounded) {
        state.maxDistanceSinceWrite =
            std::max(state.maxDistanceSinceWrite, estimated);
    }
}

double
StackDistanceProfiler::missRateAtCapacity(
    std::size_t capacity_lines) const
{
    if (totalAccesses_ == 0)
        return 0.0;
    double misses = coldWeight_;
    for (std::size_t d = capacity_lines + 1;
         d < distanceWeights_.size(); ++d) {
        misses += distanceWeights_[d];
    }
    return misses / static_cast<double>(totalAccesses_);
}

void
StackDistanceProfiler::reset()
{
    stack_.clear();
    lineState_.clear();
    byHash_.clear();
    threshold_ = rateToThreshold(config_.sampleRate);
    resetCounters();
}

void
StackDistanceProfiler::resetCounters()
{
    distanceWeights_.clear();
    writebackWeights_.clear();
    coldWeight_ = 0.0;
    coldWritebackWeight_ = 0.0;
    totalAccesses_ = 0;
    sampledAccesses_ = 0;
}

} // namespace bwwall
