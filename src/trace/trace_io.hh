/**
 * @file
 * Binary trace recording and replay.
 *
 * Synthetic generators are deterministic, but users integrating the
 * library with real systems need to capture reference streams (e.g.
 * from a binary-instrumentation tool) and replay them through the
 * simulators.  The format is a fixed 16-byte header ("BWTR", version,
 * line-size hint) followed by packed 12-byte little-endian records:
 * u64 address, u16 thread, u8 type, u8 reserved.
 *
 * Two loading paths share one parser: readTraceFile() classifies
 * every failure (missing file, bad magic, implausible header,
 * truncated record) as a structured Error without throwing or
 * over-reading, for callers that must degrade gracefully (bwwalld,
 * cachesim_cli); FileTraceSource keeps the historical contract of a
 * fatal() one-liner for scripts that want any bad input to stop the
 * run.
 */

#ifndef BWWALL_TRACE_TRACE_IO_HH
#define BWWALL_TRACE_TRACE_IO_HH

#include <cstdint>
#include <fstream>
#include <string>
#include <vector>

#include "trace/trace_source.hh"
#include "util/error.hh"

namespace bwwall {

/** A fully-loaded trace file: the header hint plus every record. */
struct TraceFileData
{
    std::uint32_t lineBytesHint = 64;
    std::vector<MemoryAccess> records;
};

/** BWTR wire-format geometry, shared with the streaming decoder. */
constexpr std::size_t kTraceHeaderBytes = 16;
constexpr std::size_t kTraceRecordBytes = 12;

/**
 * Incremental decoder for access-record streams delivered in
 * arbitrary chunks (the ingestion endpoints feed it network reads).
 *
 * Two wire formats share the decoder:
 *
 *  - **binary**: the BWTR trace-file format byte for byte (16-byte
 *    header, packed 12-byte records), so a recorded trace file can be
 *    streamed as-is;
 *  - **text**: one record per line, `R <address> [thread]` or
 *    `W <address> [thread]` with decimal or 0x-prefixed hex
 *    addresses; blank lines and `#` comments are skipped.
 *
 * Format::Auto sniffs the first four bytes ("BWTR" selects binary)
 * and needs at most one chunk of lookahead.  Chunk boundaries are
 * arbitrary: headers, records, and lines may split anywhere.  Errors
 * are InvalidInput and poison the decoder; feeding after an error
 * keeps failing.
 */
class StreamingTraceDecoder
{
  public:
    enum class Format { Auto, Binary, Text };

    explicit StreamingTraceDecoder(Format format = Format::Auto);

    /**
     * Consumes one chunk, appending every record that completed to
     * @p out.  Returns the number of records appended.
     */
    Expected<std::size_t> feed(const char *data, std::size_t count,
                               std::vector<MemoryAccess> *out);

    /**
     * Declares end of stream: fails if the stream stopped mid-header
     * or mid-record (binary) and flushes a final unterminated line
     * (text).  Returns the records appended by the flush.
     */
    Expected<std::size_t> finish(std::vector<MemoryAccess> *out);

    /** Records decoded over the decoder's lifetime. */
    std::uint64_t recordsDecoded() const { return records_; }

    /** Line-size hint from a binary header (64 until one arrives). */
    std::uint32_t lineBytesHint() const { return lineBytesHint_; }

  private:
    Expected<std::size_t> drainBinary(std::vector<MemoryAccess> *out);
    Expected<std::size_t> drainText(bool flush_tail,
                                    std::vector<MemoryAccess> *out);
    Error poison(const std::string &message);

    Format format_;
    bool headerDone_ = false;
    bool poisoned_ = false;
    std::uint32_t lineBytesHint_ = 64;
    std::uint64_t records_ = 0;
    std::string buffer_;
};

/**
 * Loads and validates @p path.  Errors are classified: a file that
 * cannot be opened or is truncated mid-record is Io; a bad magic, an
 * unsupported version, nonzero reserved header bytes, an implausible
 * declared line size (0 or > 1 MiB), or an empty trace is
 * InvalidInput.  Never throws and never reads past the declared
 * record grid.
 */
Expected<TraceFileData> readTraceFile(const std::string &path);

/** Streams MemoryAccess records to a trace file. */
class TraceWriter
{
  public:
    /**
     * Opens (truncates) the file and writes the header.
     * @param line_bytes_hint Line granularity recorded for readers.
     */
    TraceWriter(const std::string &path,
                std::uint32_t line_bytes_hint = 64);
    ~TraceWriter();

    TraceWriter(const TraceWriter &) = delete;
    TraceWriter &operator=(const TraceWriter &) = delete;

    /** Appends one access. */
    void write(const MemoryAccess &access);

    /** Appends many accesses. */
    void writeAll(const std::vector<MemoryAccess> &accesses);

    /** Flushes and closes; further writes are invalid. */
    void close();

    std::uint64_t recordsWritten() const { return records_; }

  private:
    std::ofstream out_;
    std::uint64_t records_ = 0;
    bool open_ = false;
};

/**
 * Replays a recorded trace file as a TraceSource.  The stream can
 * loop so finite recordings drive arbitrarily long simulations.
 */
class FileTraceSource : public TraceSource
{
  public:
    /**
     * @param loop When true, reaching the end rewinds to the first
     * record; when false, next() past the end is a fatal error (use
     * size() to bound the replay).
     */
    explicit FileTraceSource(const std::string &path, bool loop = true);

    /** Wraps records already loaded by readTraceFile(). */
    FileTraceSource(TraceFileData data, std::string name,
                    bool loop = true);

    MemoryAccess next() override;
    void reset() override;
    std::string name() const override;

    /** Number of records in the file. */
    std::uint64_t size() const { return records_.size(); }

    /** True when a non-looping source has replayed every record. */
    bool exhausted() const;

    /** Line-size hint stored by the writer. */
    std::uint32_t lineBytesHint() const { return lineBytesHint_; }

  private:
    std::string path_;
    bool loop_;
    std::uint32_t lineBytesHint_ = 64;
    std::vector<MemoryAccess> records_;
    std::size_t position_ = 0;
};

/** Records `count` accesses from any source into a file. */
void recordTrace(TraceSource &source, const std::string &path,
                 std::uint64_t count,
                 std::uint32_t line_bytes_hint = 64);

} // namespace bwwall

#endif // BWWALL_TRACE_TRACE_IO_HH
