/**
 * @file
 * Binary trace recording and replay.
 *
 * Synthetic generators are deterministic, but users integrating the
 * library with real systems need to capture reference streams (e.g.
 * from a binary-instrumentation tool) and replay them through the
 * simulators.  The format is a fixed 16-byte header ("BWTR", version,
 * line-size hint) followed by packed 12-byte little-endian records:
 * u64 address, u16 thread, u8 type, u8 reserved.
 *
 * Two loading paths share one parser: readTraceFile() classifies
 * every failure (missing file, bad magic, implausible header,
 * truncated record) as a structured Error without throwing or
 * over-reading, for callers that must degrade gracefully (bwwalld,
 * cachesim_cli); FileTraceSource keeps the historical contract of a
 * fatal() one-liner for scripts that want any bad input to stop the
 * run.
 */

#ifndef BWWALL_TRACE_TRACE_IO_HH
#define BWWALL_TRACE_TRACE_IO_HH

#include <cstdint>
#include <fstream>
#include <string>
#include <vector>

#include "trace/trace_source.hh"
#include "util/error.hh"

namespace bwwall {

/** A fully-loaded trace file: the header hint plus every record. */
struct TraceFileData
{
    std::uint32_t lineBytesHint = 64;
    std::vector<MemoryAccess> records;
};

/**
 * Loads and validates @p path.  Errors are classified: a file that
 * cannot be opened or is truncated mid-record is Io; a bad magic, an
 * unsupported version, nonzero reserved header bytes, an implausible
 * declared line size (0 or > 1 MiB), or an empty trace is
 * InvalidInput.  Never throws and never reads past the declared
 * record grid.
 */
Expected<TraceFileData> readTraceFile(const std::string &path);

/** Streams MemoryAccess records to a trace file. */
class TraceWriter
{
  public:
    /**
     * Opens (truncates) the file and writes the header.
     * @param line_bytes_hint Line granularity recorded for readers.
     */
    TraceWriter(const std::string &path,
                std::uint32_t line_bytes_hint = 64);
    ~TraceWriter();

    TraceWriter(const TraceWriter &) = delete;
    TraceWriter &operator=(const TraceWriter &) = delete;

    /** Appends one access. */
    void write(const MemoryAccess &access);

    /** Appends many accesses. */
    void writeAll(const std::vector<MemoryAccess> &accesses);

    /** Flushes and closes; further writes are invalid. */
    void close();

    std::uint64_t recordsWritten() const { return records_; }

  private:
    std::ofstream out_;
    std::uint64_t records_ = 0;
    bool open_ = false;
};

/**
 * Replays a recorded trace file as a TraceSource.  The stream can
 * loop so finite recordings drive arbitrarily long simulations.
 */
class FileTraceSource : public TraceSource
{
  public:
    /**
     * @param loop When true, reaching the end rewinds to the first
     * record; when false, next() past the end is a fatal error (use
     * size() to bound the replay).
     */
    explicit FileTraceSource(const std::string &path, bool loop = true);

    /** Wraps records already loaded by readTraceFile(). */
    FileTraceSource(TraceFileData data, std::string name,
                    bool loop = true);

    MemoryAccess next() override;
    void reset() override;
    std::string name() const override;

    /** Number of records in the file. */
    std::uint64_t size() const { return records_.size(); }

    /** True when a non-looping source has replayed every record. */
    bool exhausted() const;

    /** Line-size hint stored by the writer. */
    std::uint32_t lineBytesHint() const { return lineBytesHint_; }

  private:
    std::string path_;
    bool loop_;
    std::uint32_t lineBytesHint_ = 64;
    std::vector<MemoryAccess> records_;
    std::size_t position_ = 0;
};

/** Records `count` accesses from any source into a file. */
void recordTrace(TraceSource &source, const std::string &path,
                 std::uint64_t count,
                 std::uint32_t line_bytes_hint = 64);

} // namespace bwwall

#endif // BWWALL_TRACE_TRACE_IO_HH
