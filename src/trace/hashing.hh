/**
 * @file
 * Small deterministic mixing functions used to derive per-line
 * properties (address layout, store/load behaviour, word footprints)
 * from line identifiers, independent of access order.
 */

#ifndef BWWALL_TRACE_HASHING_HH
#define BWWALL_TRACE_HASHING_HH

#include <cstdint>

namespace bwwall {

/** SplitMix64 finaliser; a bijective 64-bit mixer. */
constexpr std::uint64_t
mix64(std::uint64_t x)
{
    x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
    x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
    return x ^ (x >> 31);
}

/** Mixes two words into one (order-sensitive). */
constexpr std::uint64_t
mix64(std::uint64_t a, std::uint64_t b)
{
    return mix64(a ^ (mix64(b) + 0x9e3779b97f4a7c15ULL));
}

/** Maps a hash to a double uniform in [0, 1). */
constexpr double
hashToUnit(std::uint64_t h)
{
    return static_cast<double>(h >> 11) * 0x1.0p-53;
}

} // namespace bwwall

#endif // BWWALL_TRACE_HASHING_HH
