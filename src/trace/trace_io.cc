#include "trace/trace_io.hh"

#include <array>
#include <cerrno>
#include <cstdlib>
#include <cstring>
#include <utility>

#include "util/fault.hh"
#include "util/logging.hh"

namespace bwwall {

namespace {

constexpr char kMagic[4] = {'B', 'W', 'T', 'R'};
constexpr std::uint32_t kVersion = 1;
constexpr std::size_t kHeaderBytes = kTraceHeaderBytes;
constexpr std::size_t kRecordBytes = kTraceRecordBytes;
/** Declared line sizes above this are treated as corruption. */
constexpr std::uint32_t kMaxPlausibleLineBytes = 1u << 20;

void
packU32(std::uint8_t *dest, std::uint32_t value)
{
    std::memcpy(dest, &value, 4);
}

std::uint32_t
unpackU32(const std::uint8_t *src)
{
    std::uint32_t value;
    std::memcpy(&value, src, 4);
    return value;
}

/** Unpacks one packed 12-byte record (shared by the file reader and
 * the streaming decoder so the two paths cannot diverge). */
MemoryAccess
unpackRecord(const std::uint8_t *record)
{
    MemoryAccess access;
    std::memcpy(&access.address, record, 8);
    std::uint16_t thread;
    std::memcpy(&thread, record + 8, 2);
    access.thread = thread;
    access.type = record[10] == 0 ? AccessType::Read
                                  : AccessType::Write;
    return access;
}

/** Validates a 16-byte BWTR header; on success stores the line-size
 * hint.  @p origin names the stream for error messages. */
Expected<std::uint32_t>
validateHeader(const std::uint8_t *header, const std::string &origin)
{
    if (std::memcmp(header, kMagic, 4) != 0) {
        return Error{ErrorCategory::InvalidInput,
                     origin + " is not a bwwall trace stream"};
    }
    const std::uint32_t version = unpackU32(header + 4);
    if (version != kVersion) {
        return Error{ErrorCategory::InvalidInput,
                     origin + " has unsupported trace version " +
                         std::to_string(version)};
    }
    if (unpackU32(header + 12) != 0) {
        return Error{ErrorCategory::InvalidInput,
                     origin + " has a corrupt header (reserved bytes "
                              "are not zero)"};
    }
    const std::uint32_t hint = unpackU32(header + 8);
    if (hint == 0 || hint > kMaxPlausibleLineBytes) {
        return Error{ErrorCategory::InvalidInput,
                     origin +
                         " declares an implausible line size of " +
                         std::to_string(hint) + " bytes"};
    }
    return hint;
}

} // namespace

TraceWriter::TraceWriter(const std::string &path,
                         std::uint32_t line_bytes_hint)
    : out_(path, std::ios::binary | std::ios::trunc)
{
    if (!out_)
        fatal("TraceWriter cannot open '", path, "'");
    std::array<std::uint8_t, kHeaderBytes> header{};
    std::memcpy(header.data(), kMagic, 4);
    packU32(header.data() + 4, kVersion);
    packU32(header.data() + 8, line_bytes_hint);
    // Bytes 12..15 reserved (zero).
    out_.write(reinterpret_cast<const char *>(header.data()),
               static_cast<std::streamsize>(header.size()));
    open_ = true;
}

TraceWriter::~TraceWriter()
{
    if (open_)
        close();
}

void
TraceWriter::write(const MemoryAccess &access)
{
    if (!open_)
        fatal("TraceWriter::write after close");
    std::array<std::uint8_t, kRecordBytes> record{};
    std::memcpy(record.data(), &access.address, 8);
    const auto thread = static_cast<std::uint16_t>(access.thread);
    std::memcpy(record.data() + 8, &thread, 2);
    record[10] = static_cast<std::uint8_t>(access.type);
    record[11] = 0;
    out_.write(reinterpret_cast<const char *>(record.data()),
               static_cast<std::streamsize>(record.size()));
    if (FAULT_POINT("trace.write"))
        out_.setstate(std::ios::failbit);
    if (!out_)
        fatal("TraceWriter: write failed (disk full?)");
    ++records_;
}

void
TraceWriter::writeAll(const std::vector<MemoryAccess> &accesses)
{
    for (const MemoryAccess &access : accesses)
        write(access);
}

void
TraceWriter::close()
{
    if (!open_)
        return;
    out_.flush();
    out_.close();
    open_ = false;
    if (out_.fail())
        fatal("TraceWriter: close failed");
}

Expected<TraceFileData>
readTraceFile(const std::string &path)
{
    if (FAULT_POINT("trace.read")) {
        return Error{ErrorCategory::Faulted,
                     "injected fault 'trace.read' while loading '" +
                         path + "'"};
    }
    std::ifstream in(path, std::ios::binary);
    if (!in) {
        return Error{ErrorCategory::Io,
                     "cannot open trace file '" + path + "'"};
    }

    std::array<std::uint8_t, kHeaderBytes> header{};
    in.read(reinterpret_cast<char *>(header.data()),
            static_cast<std::streamsize>(header.size()));
    if (in.gcount() != static_cast<std::streamsize>(kHeaderBytes)) {
        return Error{ErrorCategory::InvalidInput,
                     "'" + path + "' is not a bwwall trace file"};
    }
    Expected<std::uint32_t> hint =
        validateHeader(header.data(), "'" + path + "'");
    if (!hint)
        return hint.error();
    TraceFileData data;
    data.lineBytesHint = hint.value();

    std::array<std::uint8_t, kRecordBytes> record{};
    for (;;) {
        in.read(reinterpret_cast<char *>(record.data()),
                static_cast<std::streamsize>(record.size()));
        if (in.gcount() == 0 && in.eof())
            break;
        if (in.gcount() !=
            static_cast<std::streamsize>(kRecordBytes)) {
            return Error{ErrorCategory::Io,
                         "'" + path + "' is truncated mid-record"};
        }
        data.records.push_back(unpackRecord(record.data()));
    }
    if (data.records.empty()) {
        return Error{ErrorCategory::InvalidInput,
                     "'" + path + "' contains no records"};
    }
    return data;
}

StreamingTraceDecoder::StreamingTraceDecoder(Format format)
    : format_(format)
{
}

Error
StreamingTraceDecoder::poison(const std::string &message)
{
    poisoned_ = true;
    return Error{ErrorCategory::InvalidInput, message};
}

Expected<std::size_t>
StreamingTraceDecoder::drainBinary(std::vector<MemoryAccess> *out)
{
    std::size_t appended = 0;
    std::size_t offset = 0;
    if (!headerDone_) {
        if (buffer_.size() < kHeaderBytes)
            return appended;
        Expected<std::uint32_t> hint = validateHeader(
            reinterpret_cast<const std::uint8_t *>(buffer_.data()),
            "the streamed trace");
        if (!hint)
            return poison(hint.error().message);
        lineBytesHint_ = hint.value();
        headerDone_ = true;
        offset = kHeaderBytes;
    }
    while (buffer_.size() - offset >= kRecordBytes) {
        out->push_back(unpackRecord(
            reinterpret_cast<const std::uint8_t *>(buffer_.data()) +
            offset));
        offset += kRecordBytes;
        ++appended;
    }
    buffer_.erase(0, offset);
    records_ += appended;
    return appended;
}

Expected<std::size_t>
StreamingTraceDecoder::drainText(bool flush_tail,
                                 std::vector<MemoryAccess> *out)
{
    std::size_t appended = 0;
    std::size_t start = 0;
    for (;;) {
        std::size_t end = buffer_.find('\n', start);
        bool tail = end == std::string::npos;
        if (tail && !flush_tail)
            break;
        if (tail && start >= buffer_.size())
            break;
        std::string line = buffer_.substr(
            start, tail ? std::string::npos : end - start);
        start = tail ? buffer_.size() : end + 1;

        // Trim, then skip blank lines and # comments.
        const char *ws = " \t\r";
        const std::size_t first = line.find_first_not_of(ws);
        if (first == std::string::npos) {
            if (tail)
                break;
            continue;
        }
        line = line.substr(first,
                           line.find_last_not_of(ws) - first + 1);
        if (line[0] == '#') {
            if (tail)
                break;
            continue;
        }

        MemoryAccess access;
        const char type = line[0];
        if (type == 'R' || type == 'r')
            access.type = AccessType::Read;
        else if (type == 'W' || type == 'w')
            access.type = AccessType::Write;
        else {
            buffer_.erase(0, start);
            return poison("text trace record must start with R or W: '" +
                          line + "'");
        }
        const char *cursor = line.c_str() + 1;
        if (*cursor != ' ' && *cursor != '\t') {
            buffer_.erase(0, start);
            return poison("text trace record lacks an address: '" +
                          line + "'");
        }
        char *after = nullptr;
        errno = 0;
        access.address = std::strtoull(cursor, &after, 0);
        if (after == cursor || errno == ERANGE) {
            buffer_.erase(0, start);
            return poison("unparseable address in text trace record '" +
                          line + "'");
        }
        cursor = after;
        while (*cursor == ' ' || *cursor == '\t')
            ++cursor;
        if (*cursor != '\0') {
            errno = 0;
            const unsigned long thread =
                std::strtoul(cursor, &after, 0);
            if (after == cursor || errno == ERANGE ||
                thread > 0xffff || *after != '\0') {
                buffer_.erase(0, start);
                return poison(
                    "unparseable thread in text trace record '" +
                    line + "'");
            }
            access.thread = static_cast<ThreadId>(thread);
        }
        out->push_back(access);
        ++appended;
        if (tail)
            break;
    }
    buffer_.erase(0, start);
    records_ += appended;
    return appended;
}

Expected<std::size_t>
StreamingTraceDecoder::feed(const char *data, std::size_t count,
                            std::vector<MemoryAccess> *out)
{
    if (poisoned_) {
        return Error{ErrorCategory::InvalidInput,
                     "trace decoder already failed; stream aborted"};
    }
    buffer_.append(data, count);
    if (format_ == Format::Auto) {
        if (buffer_.size() < 4)
            return std::size_t(0); // need more lookahead to sniff
        format_ = std::memcmp(buffer_.data(), kMagic, 4) == 0
                      ? Format::Binary
                      : Format::Text;
    }
    return format_ == Format::Binary ? drainBinary(out)
                                     : drainText(false, out);
}

Expected<std::size_t>
StreamingTraceDecoder::finish(std::vector<MemoryAccess> *out)
{
    if (poisoned_) {
        return Error{ErrorCategory::InvalidInput,
                     "trace decoder already failed; stream aborted"};
    }
    if (format_ == Format::Auto) {
        // Too short to sniff: only an empty stream is acceptable.
        if (buffer_.empty())
            return std::size_t(0);
        format_ = Format::Text;
    }
    if (format_ == Format::Binary) {
        if (!headerDone_ && !buffer_.empty())
            return poison("streamed trace ended mid-header");
        if (!buffer_.empty())
            return poison("streamed trace ended mid-record");
        return std::size_t(0);
    }
    return drainText(true, out);
}

FileTraceSource::FileTraceSource(const std::string &path, bool loop)
    : path_(path), loop_(loop)
{
    Expected<TraceFileData> loaded = readTraceFile(path);
    if (!loaded)
        fatal("FileTraceSource: ", loaded.error().toString());
    lineBytesHint_ = loaded.value().lineBytesHint;
    records_ = std::move(loaded.value().records);
}

FileTraceSource::FileTraceSource(TraceFileData data, std::string name,
                                 bool loop)
    : path_(std::move(name)), loop_(loop),
      lineBytesHint_(data.lineBytesHint),
      records_(std::move(data.records))
{
    if (records_.empty())
        fatal("FileTraceSource: empty trace data for '", path_, "'");
}

MemoryAccess
FileTraceSource::next()
{
    if (position_ >= records_.size()) {
        if (!loop_)
            fatal("FileTraceSource '", path_,
                  "' exhausted (size ", records_.size(), ")");
        position_ = 0;
    }
    return records_[position_++];
}

void
FileTraceSource::reset()
{
    position_ = 0;
}

std::string
FileTraceSource::name() const
{
    return "file:" + path_;
}

bool
FileTraceSource::exhausted() const
{
    return !loop_ && position_ >= records_.size();
}

void
recordTrace(TraceSource &source, const std::string &path,
            std::uint64_t count, std::uint32_t line_bytes_hint)
{
    TraceWriter writer(path, line_bytes_hint);
    for (std::uint64_t i = 0; i < count; ++i)
        writer.write(source.next());
    writer.close();
}

} // namespace bwwall
