#include "trace/trace_io.hh"

#include <array>
#include <cstring>
#include <utility>

#include "util/fault.hh"
#include "util/logging.hh"

namespace bwwall {

namespace {

constexpr char kMagic[4] = {'B', 'W', 'T', 'R'};
constexpr std::uint32_t kVersion = 1;
constexpr std::size_t kHeaderBytes = 16;
constexpr std::size_t kRecordBytes = 12;
/** Declared line sizes above this are treated as corruption. */
constexpr std::uint32_t kMaxPlausibleLineBytes = 1u << 20;

void
packU32(std::uint8_t *dest, std::uint32_t value)
{
    std::memcpy(dest, &value, 4);
}

std::uint32_t
unpackU32(const std::uint8_t *src)
{
    std::uint32_t value;
    std::memcpy(&value, src, 4);
    return value;
}

} // namespace

TraceWriter::TraceWriter(const std::string &path,
                         std::uint32_t line_bytes_hint)
    : out_(path, std::ios::binary | std::ios::trunc)
{
    if (!out_)
        fatal("TraceWriter cannot open '", path, "'");
    std::array<std::uint8_t, kHeaderBytes> header{};
    std::memcpy(header.data(), kMagic, 4);
    packU32(header.data() + 4, kVersion);
    packU32(header.data() + 8, line_bytes_hint);
    // Bytes 12..15 reserved (zero).
    out_.write(reinterpret_cast<const char *>(header.data()),
               static_cast<std::streamsize>(header.size()));
    open_ = true;
}

TraceWriter::~TraceWriter()
{
    if (open_)
        close();
}

void
TraceWriter::write(const MemoryAccess &access)
{
    if (!open_)
        fatal("TraceWriter::write after close");
    std::array<std::uint8_t, kRecordBytes> record{};
    std::memcpy(record.data(), &access.address, 8);
    const auto thread = static_cast<std::uint16_t>(access.thread);
    std::memcpy(record.data() + 8, &thread, 2);
    record[10] = static_cast<std::uint8_t>(access.type);
    record[11] = 0;
    out_.write(reinterpret_cast<const char *>(record.data()),
               static_cast<std::streamsize>(record.size()));
    if (FAULT_POINT("trace.write"))
        out_.setstate(std::ios::failbit);
    if (!out_)
        fatal("TraceWriter: write failed (disk full?)");
    ++records_;
}

void
TraceWriter::writeAll(const std::vector<MemoryAccess> &accesses)
{
    for (const MemoryAccess &access : accesses)
        write(access);
}

void
TraceWriter::close()
{
    if (!open_)
        return;
    out_.flush();
    out_.close();
    open_ = false;
    if (out_.fail())
        fatal("TraceWriter: close failed");
}

Expected<TraceFileData>
readTraceFile(const std::string &path)
{
    if (FAULT_POINT("trace.read")) {
        return Error{ErrorCategory::Faulted,
                     "injected fault 'trace.read' while loading '" +
                         path + "'"};
    }
    std::ifstream in(path, std::ios::binary);
    if (!in) {
        return Error{ErrorCategory::Io,
                     "cannot open trace file '" + path + "'"};
    }

    std::array<std::uint8_t, kHeaderBytes> header{};
    in.read(reinterpret_cast<char *>(header.data()),
            static_cast<std::streamsize>(header.size()));
    if (in.gcount() != static_cast<std::streamsize>(kHeaderBytes) ||
        std::memcmp(header.data(), kMagic, 4) != 0) {
        return Error{ErrorCategory::InvalidInput,
                     "'" + path + "' is not a bwwall trace file"};
    }
    const std::uint32_t version = unpackU32(header.data() + 4);
    if (version != kVersion) {
        return Error{ErrorCategory::InvalidInput,
                     "'" + path + "' has unsupported trace version " +
                         std::to_string(version)};
    }
    if (unpackU32(header.data() + 12) != 0) {
        return Error{ErrorCategory::InvalidInput,
                     "'" + path +
                         "' has a corrupt header (reserved bytes "
                         "are not zero)"};
    }
    TraceFileData data;
    data.lineBytesHint = unpackU32(header.data() + 8);
    if (data.lineBytesHint == 0 ||
        data.lineBytesHint > kMaxPlausibleLineBytes) {
        return Error{ErrorCategory::InvalidInput,
                     "'" + path +
                         "' declares an implausible line size of " +
                         std::to_string(data.lineBytesHint) +
                         " bytes"};
    }

    std::array<std::uint8_t, kRecordBytes> record{};
    for (;;) {
        in.read(reinterpret_cast<char *>(record.data()),
                static_cast<std::streamsize>(record.size()));
        if (in.gcount() == 0 && in.eof())
            break;
        if (in.gcount() !=
            static_cast<std::streamsize>(kRecordBytes)) {
            return Error{ErrorCategory::Io,
                         "'" + path + "' is truncated mid-record"};
        }
        MemoryAccess access;
        std::memcpy(&access.address, record.data(), 8);
        std::uint16_t thread;
        std::memcpy(&thread, record.data() + 8, 2);
        access.thread = thread;
        access.type = record[10] == 0 ? AccessType::Read
                                      : AccessType::Write;
        data.records.push_back(access);
    }
    if (data.records.empty()) {
        return Error{ErrorCategory::InvalidInput,
                     "'" + path + "' contains no records"};
    }
    return data;
}

FileTraceSource::FileTraceSource(const std::string &path, bool loop)
    : path_(path), loop_(loop)
{
    Expected<TraceFileData> loaded = readTraceFile(path);
    if (!loaded)
        fatal("FileTraceSource: ", loaded.error().toString());
    lineBytesHint_ = loaded.value().lineBytesHint;
    records_ = std::move(loaded.value().records);
}

FileTraceSource::FileTraceSource(TraceFileData data, std::string name,
                                 bool loop)
    : path_(std::move(name)), loop_(loop),
      lineBytesHint_(data.lineBytesHint),
      records_(std::move(data.records))
{
    if (records_.empty())
        fatal("FileTraceSource: empty trace data for '", path_, "'");
}

MemoryAccess
FileTraceSource::next()
{
    if (position_ >= records_.size()) {
        if (!loop_)
            fatal("FileTraceSource '", path_,
                  "' exhausted (size ", records_.size(), ")");
        position_ = 0;
    }
    return records_[position_++];
}

void
FileTraceSource::reset()
{
    position_ = 0;
}

std::string
FileTraceSource::name() const
{
    return "file:" + path_;
}

bool
FileTraceSource::exhausted() const
{
    return !loop_ && position_ >= records_.size();
}

void
recordTrace(TraceSource &source, const std::string &path,
            std::uint64_t count, std::uint32_t line_bytes_hint)
{
    TraceWriter writer(path, line_bytes_hint);
    for (std::uint64_t i = 0; i < count; ++i)
        writer.write(source.next());
    writer.close();
}

} // namespace bwwall
