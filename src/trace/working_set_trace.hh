/**
 * @file
 * Synthetic trace with discrete working sets.
 *
 * The paper observes (Section 4.1) that individual SPEC 2006
 * applications "exhibit more discrete working set sizes (i.e. once the
 * cache is large enough for the working set, the miss rate declines to
 * a constant value), and hence they fit less well with the power law.
 * However, together their average fits the power law well."  This
 * generator produces exactly that staircase behaviour: a mixture of
 * cyclically-scanned regions of fixed sizes.  A region whose resident
 * span fits in the cache hits on every touch; one that does not
 * thrashes.
 */

#ifndef BWWALL_TRACE_WORKING_SET_TRACE_HH
#define BWWALL_TRACE_WORKING_SET_TRACE_HH

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "trace/trace_source.hh"
#include "util/distributions.hh"
#include "util/rng.hh"

namespace bwwall {

/** One cyclically-scanned region of a WorkingSetTrace. */
struct WorkingSetRegion
{
    /** Region size in cache lines. */
    std::uint64_t lines = 1;
    /** Relative access weight of this region. */
    double weight = 1.0;
    /** Fraction of accesses to this region that are stores. */
    double writeFraction = 0.0;
};

/** Configuration of a WorkingSetTrace. */
struct WorkingSetTraceParams
{
    std::vector<WorkingSetRegion> regions;

    /**
     * When true, each region occupies a contiguous, page-aligned
     * address range (like a real array), preserving spatial
     * sequentiality for prefetcher and DRAM row-locality studies.
     * When false (default), line addresses are scrambled so that
     * set-index behaviour is unbiased.
     */
    bool contiguousAddresses = false;

    std::uint32_t lineBytes = 64;
    std::uint32_t wordBytes = 8;
    ThreadId thread = 0;
    std::uint64_t seed = 1;
    std::string label = "working-set";
};

/** Mixture-of-scans trace with a staircase LRU miss curve. */
class WorkingSetTrace : public TraceSource
{
  public:
    explicit WorkingSetTrace(const WorkingSetTraceParams &params);

    MemoryAccess next() override;
    void reset() override;
    std::string name() const override { return params_.label; }

    const WorkingSetTraceParams &params() const { return params_; }

    /** Total footprint over all regions, in lines. */
    std::uint64_t totalLines() const;

  private:
    WorkingSetTraceParams params_;
    Rng rng_;
    std::unique_ptr<AliasTable> regionPicker_;
    std::vector<std::uint64_t> cursors_;
    std::vector<std::uint64_t> regionBase_;
    unsigned lineShift_;
    unsigned wordsPerLine_;
};

} // namespace bwwall

#endif // BWWALL_TRACE_WORKING_SET_TRACE_HH
