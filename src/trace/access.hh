/**
 * @file
 * Fundamental memory-access types shared by the trace generators and
 * the cache simulator.
 */

#ifndef BWWALL_TRACE_ACCESS_HH
#define BWWALL_TRACE_ACCESS_HH

#include <cstdint>

namespace bwwall {

/** Byte address in a flat 64-bit physical address space. */
using Address = std::uint64_t;

/** Identifies the requesting core/thread. */
using ThreadId = std::uint32_t;

/** Kind of memory operation. */
enum class AccessType : std::uint8_t { Read, Write };

/** One record of a memory-reference trace. */
struct MemoryAccess
{
    Address address = 0;
    AccessType type = AccessType::Read;
    ThreadId thread = 0;
};

/** True for store operations. */
constexpr bool
isWrite(const MemoryAccess &access)
{
    return access.type == AccessType::Write;
}

} // namespace bwwall

#endif // BWWALL_TRACE_ACCESS_HH
