/**
 * @file
 * Deterministic, seeded fault injection behind near-free guards.
 *
 * A fault *point* is a named site in production code —
 * FAULT_POINT("http.read") — that normally does nothing and costs
 * one relaxed atomic load plus a branch (the trace_span discipline;
 * bench/perf_trace_overhead's < 2 % disabled-overhead gate covers
 * the same pattern).  When a fault plan is installed, each hit of an
 * armed point is counted and the plan decides whether the point
 * *fires*; the call site then simulates its local failure (a short
 * read, a dropped connection, a solver error) through the exact
 * error path real hardware would take.
 *
 * Plans are text, from --faults or the BWWALL_FAULTS environment
 * variable, as ';'-separated entries:
 *
 *   http.read=prob:0.01      fire ~1 % of hits
 *   cache.compute=nth:3      fire exactly on the 3rd hit
 *   http.write.short=every:2 fire on every 2nd hit (2, 4, 6, ...)
 *   server.accept=sched:1,5  fire on hits 1 and 5
 *   seed=42                  the plan-wide RNG seed
 *
 * Determinism: probability decisions hash (seed, point name, hit
 * index) through SplitMix64 — no shared RNG stream, no locks on the
 * armed path, and the same plan replays the same firing pattern for
 * the same per-point hit sequence regardless of thread interleaving
 * across points.
 *
 * Installation is process-wide and follows TraceRecorder's
 * lifecycle rules: install/uninstall only while fault points are
 * quiescent (daemon startup, test setup).  Fired points count into
 * faults.fired.<point> on an optional MetricsRegistry so chaos runs
 * can assert coverage.
 */

#ifndef BWWALL_UTIL_FAULT_HH
#define BWWALL_UTIL_FAULT_HH

#include <atomic>
#include <cstdint>
#include <string>
#include <vector>

namespace bwwall {

class MetricsRegistry;

namespace fault_detail {

/** Process-wide arm switch; set only while a plan is installed. */
extern std::atomic<bool> g_armed;

/** The slow path: counts the hit and decides whether to fire. */
bool shouldFire(const char *point);

} // namespace fault_detail

/** True when any fault plan is installed (one relaxed load). */
inline bool
faultsArmed()
{
    return fault_detail::g_armed.load(std::memory_order_relaxed);
}

/**
 * The guard every wired site calls: false (and nearly free) with no
 * plan installed; otherwise true when this hit of @p point fires.
 * Pass a string literal.
 */
inline bool
faultPoint(const char *point)
{
    if (!faultsArmed())
        return false;
    return fault_detail::shouldFire(point);
}

/** The conventional spelling at injection sites. */
#define FAULT_POINT(point) ::bwwall::faultPoint(point)

/** How one armed point decides to fire. */
struct FaultSpec
{
    enum class Mode
    {
        Probability, ///< fire each hit with probability `probability`
        Nth,         ///< fire exactly on hit number `n` (1-based)
        Every,       ///< fire on hits n, 2n, 3n, ...
        Schedule,    ///< fire on the listed 1-based hit numbers
    };

    std::string point;
    Mode mode = Mode::Probability;
    double probability = 0.0;
    std::uint64_t n = 0;
    std::vector<std::uint64_t> schedule; ///< sorted, Schedule mode
};

/** A parsed fault plan: the seed plus one spec per armed point. */
struct FaultConfig
{
    std::uint64_t seed = 1;
    std::vector<FaultSpec> specs;
};

/**
 * Parses the plan grammar described in the file comment.  Returns
 * false and sets *error (a one-line diagnostic naming the bad entry)
 * on malformed text; an empty string parses to an empty plan.
 */
bool parseFaultConfig(const std::string &text, FaultConfig *config,
                      std::string *error);

/**
 * Installs @p config process-wide, replacing any previous plan; an
 * empty plan disarms.  Fired points count into
 * faults.fired.<point> on @p metrics when non-null.  Call only while
 * fault points are quiescent.
 */
void installFaults(const FaultConfig &config,
                   MetricsRegistry *metrics = nullptr);

/** Disarms and discards the installed plan (quiescence required). */
void uninstallFaults();

/**
 * Installs a plan from BWWALL_FAULTS when set and non-empty;
 * fatal() on a malformed value.  Returns true when a plan was
 * installed.
 */
bool installFaultsFromEnv(MetricsRegistry *metrics = nullptr);

/** Hits of @p point under the installed plan (0 when not armed). */
std::uint64_t faultHitCount(const std::string &point);

/** Fires of @p point under the installed plan (0 when not armed). */
std::uint64_t faultFiredCount(const std::string &point);

/**
 * Test helper: parses and installs a plan for the enclosing scope,
 * uninstalling on destruction.  fatal() on a malformed plan.
 */
class ScopedFaultInjection
{
  public:
    explicit ScopedFaultInjection(const std::string &plan,
                                  MetricsRegistry *metrics = nullptr);
    ~ScopedFaultInjection();

    ScopedFaultInjection(const ScopedFaultInjection &) = delete;
    ScopedFaultInjection &
    operator=(const ScopedFaultInjection &) = delete;
};

} // namespace bwwall

#endif // BWWALL_UTIL_FAULT_HH
