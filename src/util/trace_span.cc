#include "util/trace_span.hh"

#include <algorithm>
#include <chrono>
#include <cinttypes>
#include <cmath>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <map>
#include <sstream>

#include "util/logging.hh"

namespace bwwall {

namespace trace_detail {

std::atomic<TraceRecorder *> g_recorder{nullptr};
std::atomic<bool> g_enabled{false};
thread_local bool t_threadEnabled = false;

namespace {

/** Sentinel for "no logical lane pinned yet". */
constexpr std::uint32_t kAutoTid = ~std::uint32_t{0};

/** First lane handed to threads that never pinned one. */
constexpr std::uint32_t kFirstAutoTid = 256;

thread_local std::uint32_t t_tid = kAutoTid;
thread_local std::uint32_t t_depth = 0;

/** Monotonically identifies recorder instances across reuse of the
 * same heap address, so per-thread buffer caches never go stale. */
std::atomic<std::uint64_t> g_recorderSerial{0};

std::uint64_t
steadyNowNs()
{
    return static_cast<std::uint64_t>(
        std::chrono::duration_cast<std::chrono::nanoseconds>(
            std::chrono::steady_clock::now().time_since_epoch())
            .count());
}

} // namespace

std::uint64_t
beginSpan()
{
    ++t_depth;
    TraceRecorder *recorder =
        g_recorder.load(std::memory_order_acquire);
    return recorder == nullptr ? 0 : recorder->nanosSinceEpoch();
}

void
endSpan(const char *name, bool has_arg, std::uint64_t arg,
        std::uint64_t start_ns)
{
    --t_depth;
    TraceRecorder *recorder =
        g_recorder.load(std::memory_order_acquire);
    if (recorder == nullptr)
        return;
    TraceEvent event;
    event.kind = TraceEvent::Kind::Span;
    event.name = name;
    event.depth = t_depth;
    event.hasArg = has_arg;
    event.arg = arg;
    event.startNs = start_ns;
    const std::uint64_t now = recorder->nanosSinceEpoch();
    event.durationNs = now > start_ns ? now - start_ns : 0;
    recorder->append(event);
}

void
recordInstant(const char *name, bool has_arg, std::uint64_t arg)
{
    TraceRecorder *recorder =
        g_recorder.load(std::memory_order_acquire);
    if (recorder == nullptr)
        return;
    TraceEvent event;
    event.kind = TraceEvent::Kind::Instant;
    event.name = name;
    event.depth = t_depth;
    event.hasArg = has_arg;
    event.arg = arg;
    event.startNs = recorder->nanosSinceEpoch();
    recorder->append(event);
}

void
recordCounter(const char *name, double value)
{
    TraceRecorder *recorder =
        g_recorder.load(std::memory_order_acquire);
    if (recorder == nullptr)
        return;
    TraceEvent event;
    event.kind = TraceEvent::Kind::Counter;
    event.name = name;
    event.depth = t_depth;
    event.startNs = recorder->nanosSinceEpoch();
    event.value = value;
    recorder->append(event);
}

} // namespace trace_detail

void
setTraceThreadId(std::uint32_t tid)
{
    trace_detail::t_tid = tid;
}

/**
 * Single-producer bounded event buffer.  Only the owning thread
 * appends; readers snapshot the published prefix.  A slot becomes
 * visible via the release store of count_, after which it is never
 * rewritten (drop-newest on overflow), so snapshots never tear.
 * Storage grows in fixed chunks so an idle thread costs nothing and
 * a deep capacity is never zeroed up front; chunk pointers are
 * stable, and the chunk list itself is the only shared mutable
 * state, guarded by a mutex the producer takes once per chunk.
 */
class TraceRecorder::ThreadBuffer
{
  public:
    ThreadBuffer(std::size_t capacity, std::uint32_t tid)
        : capacity_(capacity), tid_(tid)
    {}

    void
    append(const TraceEvent &event)
    {
        const std::size_t n = count_.load(std::memory_order_relaxed);
        if (n >= capacity_) {
            dropped_.fetch_add(1, std::memory_order_relaxed);
            return;
        }
        const std::size_t offset = n % kChunkEvents;
        if (offset == 0 && n / kChunkEvents == chunks_.size()) {
            auto chunk = std::make_unique<std::vector<TraceEvent>>(
                kChunkEvents);
            std::lock_guard<std::mutex> lock(chunksMutex_);
            chunks_.push_back(std::move(chunk));
        }
        (*chunks_[n / kChunkEvents])[offset] = event;
        count_.store(n + 1, std::memory_order_release);
    }

    void
    snapshotInto(std::vector<TraceEvent> *out) const
    {
        std::lock_guard<std::mutex> lock(chunksMutex_);
        const std::size_t n = count_.load(std::memory_order_acquire);
        out->reserve(out->size() + n);
        for (std::size_t i = 0; i < n; ++i)
            out->push_back(
                (*chunks_[i / kChunkEvents])[i % kChunkEvents]);
    }

    std::uint64_t
    dropped() const
    {
        return dropped_.load(std::memory_order_relaxed);
    }

    void
    reset()
    {
        count_.store(0, std::memory_order_relaxed);
        dropped_.store(0, std::memory_order_relaxed);
    }

    std::uint32_t tid() const { return tid_; }

  private:
    static constexpr std::size_t kChunkEvents = 4096;

    std::size_t capacity_;
    std::uint32_t tid_;
    mutable std::mutex chunksMutex_;
    std::vector<std::unique_ptr<std::vector<TraceEvent>>> chunks_;
    std::atomic<std::size_t> count_{0};
    std::atomic<std::uint64_t> dropped_{0};
};

namespace {

/** Total order making collect() deterministic given equal inputs. */
bool
canonicalLess(const TraceEvent &a, const TraceEvent &b)
{
    if (a.startNs != b.startNs)
        return a.startNs < b.startNs;
    if (a.tid != b.tid)
        return a.tid < b.tid;
    if (a.depth != b.depth)
        return a.depth < b.depth;
    const int name_order = std::strcmp(a.name, b.name);
    if (name_order != 0)
        return name_order < 0;
    if (a.kind != b.kind)
        return static_cast<int>(a.kind) < static_cast<int>(b.kind);
    if (a.arg != b.arg)
        return a.arg < b.arg;
    return a.durationNs > b.durationNs;
}

/** The serial_ member lives here so ThreadBuffer stays header-free. */
thread_local std::uint64_t t_cachedSerial = 0;

std::string
traceThreadName(std::uint32_t tid)
{
    if (tid == 0)
        return "main";
    char buffer[32];
    if (tid < 256)
        std::snprintf(buffer, sizeof(buffer), "worker-%" PRIu32,
                      tid - 1);
    else
        std::snprintf(buffer, sizeof(buffer), "thread-%" PRIu32, tid);
    return buffer;
}

/** Nanoseconds rendered as plain-decimal microseconds ("12.345"). */
std::string
microsText(std::uint64_t ns)
{
    char buffer[40];
    std::snprintf(buffer, sizeof(buffer),
                  "%" PRIu64 ".%03" PRIu64, ns / 1000, ns % 1000);
    return buffer;
}

/** Doubles as strict-JSON number text (counters only). */
std::string
jsonDoubleText(double value)
{
    if (!std::isfinite(value))
        return "0";
    char buffer[40];
    if (value == std::floor(value) && std::fabs(value) < 1e15) {
        std::snprintf(buffer, sizeof(buffer), "%.0f", value);
        return buffer;
    }
    std::snprintf(buffer, sizeof(buffer), "%.17g", value);
    return buffer;
}

/** Span names are literals, but escape defensively anyway. */
std::string
jsonStringText(const std::string &text)
{
    std::string out = "\"";
    for (const char c : text) {
        switch (c) {
          case '"':
            out += "\\\"";
            break;
          case '\\':
            out += "\\\\";
            break;
          case '\n':
            out += "\\n";
            break;
          case '\t':
            out += "\\t";
            break;
          default:
            if (static_cast<unsigned char>(c) < 0x20) {
                char buffer[8];
                std::snprintf(buffer, sizeof(buffer), "\\u%04x",
                              static_cast<unsigned>(c));
                out += buffer;
            } else {
                out += c;
            }
        }
    }
    out += '"';
    return out;
}

} // namespace

TraceRecorder::TraceRecorder(TraceRecorderConfig config)
    : config_(config),
      epochNs_(trace_detail::steadyNowNs()),
      nextAutoTid_(trace_detail::kFirstAutoTid)
{
    if (config_.bufferCapacity == 0)
        config_.bufferCapacity = 1;
    serial_ = trace_detail::g_recorderSerial.fetch_add(
                  1, std::memory_order_relaxed) +
              1;
}

TraceRecorder::~TraceRecorder()
{
    uninstall();
}

void
TraceRecorder::install(bool enabled)
{
    TraceRecorder *previous =
        trace_detail::g_recorder.exchange(this,
                                          std::memory_order_acq_rel);
    if (previous != nullptr && previous != this)
        warn("TraceRecorder::install replaced an installed recorder");
    trace_detail::g_enabled.store(enabled,
                                  std::memory_order_relaxed);
    if (trace_detail::t_tid == trace_detail::kAutoTid)
        trace_detail::t_tid = 0;
}

void
TraceRecorder::uninstall()
{
    TraceRecorder *expected = this;
    if (trace_detail::g_recorder.compare_exchange_strong(
            expected, nullptr, std::memory_order_acq_rel)) {
        trace_detail::g_enabled.store(false,
                                      std::memory_order_relaxed);
    }
}

void
TraceRecorder::setEnabled(bool enabled)
{
    if (installed())
        trace_detail::g_enabled.store(enabled,
                                      std::memory_order_relaxed);
}

bool
TraceRecorder::installed() const
{
    return trace_detail::g_recorder.load(
               std::memory_order_relaxed) == this;
}

std::uint64_t
TraceRecorder::nanosSinceEpoch() const
{
    const std::uint64_t now = trace_detail::steadyNowNs();
    return now > epochNs_ ? now - epochNs_ : 0;
}

void
TraceRecorder::append(TraceEvent event)
{
    static thread_local ThreadBuffer *cached_buffer = nullptr;
    if (t_cachedSerial != serial_ || cached_buffer == nullptr) {
        cached_buffer = registerThreadBuffer();
        t_cachedSerial = serial_;
    }
    event.tid = cached_buffer->tid();
    cached_buffer->append(event);
}

TraceRecorder::ThreadBuffer *
TraceRecorder::registerThreadBuffer()
{
    if (trace_detail::t_tid == trace_detail::kAutoTid) {
        trace_detail::t_tid =
            nextAutoTid_.fetch_add(1, std::memory_order_relaxed);
    }
    std::lock_guard<std::mutex> lock(mutex_);
    buffers_.push_back(std::make_unique<ThreadBuffer>(
        config_.bufferCapacity, trace_detail::t_tid));
    return buffers_.back().get();
}

std::vector<TraceEvent>
TraceRecorder::collect() const
{
    std::vector<TraceEvent> events;
    {
        std::lock_guard<std::mutex> lock(mutex_);
        for (const auto &buffer : buffers_)
            buffer->snapshotInto(&events);
    }
    std::sort(events.begin(), events.end(), canonicalLess);
    return events;
}

std::uint64_t
TraceRecorder::droppedEvents() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    std::uint64_t total = 0;
    for (const auto &buffer : buffers_)
        total += buffer->dropped();
    return total;
}

std::size_t
TraceRecorder::threadBufferCount() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    return buffers_.size();
}

void
TraceRecorder::clear()
{
    std::lock_guard<std::mutex> lock(mutex_);
    for (const auto &buffer : buffers_)
        buffer->reset();
}

std::string
TraceRecorder::chromeTraceJson() const
{
    const std::vector<TraceEvent> events = collect();

    std::vector<std::uint32_t> tids;
    for (const TraceEvent &event : events)
        tids.push_back(event.tid);
    std::sort(tids.begin(), tids.end());
    tids.erase(std::unique(tids.begin(), tids.end()), tids.end());

    // Keys inside every event object are emitted in sorted order so
    // the output is byte-identical to a canonical JsonValue dump.
    std::string out = "{\"displayTimeUnit\":\"ms\",\"traceEvents\":[";
    bool first = true;
    for (const std::uint32_t tid : tids) {
        if (!first)
            out += ',';
        first = false;
        out += "{\"args\":{\"name\":";
        out += jsonStringText(traceThreadName(tid));
        out += "},\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":1,"
               "\"tid\":";
        out += std::to_string(tid);
        out += '}';
    }
    for (const TraceEvent &event : events) {
        if (!first)
            out += ',';
        first = false;
        out += '{';
        switch (event.kind) {
          case TraceEvent::Kind::Span:
            if (event.hasArg) {
                out += "\"args\":{\"arg\":";
                out += std::to_string(event.arg);
                out += "},";
            }
            out += "\"cat\":\"bwwall\",\"dur\":";
            out += microsText(event.durationNs);
            out += ",\"name\":";
            out += jsonStringText(event.name);
            out += ",\"ph\":\"X\",\"pid\":1,\"tid\":";
            out += std::to_string(event.tid);
            out += ",\"ts\":";
            out += microsText(event.startNs);
            break;
          case TraceEvent::Kind::Instant:
            if (event.hasArg) {
                out += "\"args\":{\"arg\":";
                out += std::to_string(event.arg);
                out += "},";
            }
            out += "\"cat\":\"bwwall\",\"name\":";
            out += jsonStringText(event.name);
            out += ",\"ph\":\"i\",\"pid\":1,\"s\":\"t\",\"tid\":";
            out += std::to_string(event.tid);
            out += ",\"ts\":";
            out += microsText(event.startNs);
            break;
          case TraceEvent::Kind::Counter:
            out += "\"args\":{\"value\":";
            out += jsonDoubleText(event.value);
            out += "},\"cat\":\"bwwall\",\"name\":";
            out += jsonStringText(event.name);
            out += ",\"ph\":\"C\",\"pid\":1,\"tid\":";
            out += std::to_string(event.tid);
            out += ",\"ts\":";
            out += microsText(event.startNs);
            break;
        }
        out += '}';
    }
    out += "]}";
    return out;
}

void
TraceRecorder::writeChromeTrace(std::ostream &os) const
{
    os << chromeTraceJson() << '\n';
}

void
TraceRecorder::writeChromeTraceFile(const std::string &path) const
{
    std::ofstream out(path);
    if (!out)
        fatal("cannot write trace file '", path, "'");
    writeChromeTrace(out);
    out.flush();
    if (!out)
        fatal("failed writing trace file '", path, "'");
}

std::string
TraceRecorder::selfTimeSummary(std::size_t top_n) const
{
    const std::vector<TraceEvent> events = collect();

    struct NameTotals
    {
        std::uint64_t count = 0;
        std::uint64_t inclusiveNs = 0;
        std::uint64_t exclusiveNs = 0;
    };
    std::map<std::string, NameTotals> totals;

    struct OpenSpan
    {
        std::uint64_t endNs;
        std::uint64_t childNs;
        const TraceEvent *event;
    };

    // collect() orders by start time then lane then depth, so within
    // one lane a parent precedes its children; a per-lane stack of
    // open spans attributes each child's time to its direct parent.
    std::map<std::uint32_t, std::vector<OpenSpan>> stacks;
    const auto close_top = [&totals](std::vector<OpenSpan> *stack) {
        const OpenSpan top = stack->back();
        stack->pop_back();
        const std::uint64_t inclusive = top.event->durationNs;
        const std::uint64_t child =
            std::min(top.childNs, inclusive);
        NameTotals &row = totals[top.event->name];
        ++row.count;
        row.inclusiveNs += inclusive;
        row.exclusiveNs += inclusive - child;
        if (!stack->empty())
            stack->back().childNs += inclusive;
    };

    for (const TraceEvent &event : events) {
        if (event.kind != TraceEvent::Kind::Span)
            continue;
        std::vector<OpenSpan> &stack = stacks[event.tid];
        while (!stack.empty() &&
               stack.back().endNs <= event.startNs) {
            close_top(&stack);
        }
        stack.push_back(
            {event.startNs + event.durationNs, 0, &event});
    }
    for (auto &[tid, stack] : stacks) {
        (void)tid;
        while (!stack.empty())
            close_top(&stack);
    }

    std::vector<std::pair<std::string, NameTotals>> rows(
        totals.begin(), totals.end());
    std::sort(rows.begin(), rows.end(),
              [](const auto &a, const auto &b) {
                  if (a.second.exclusiveNs != b.second.exclusiveNs)
                      return a.second.exclusiveNs >
                             b.second.exclusiveNs;
                  return a.first < b.first;
              });
    if (rows.size() > top_n)
        rows.resize(top_n);

    std::uint64_t total_exclusive = 0;
    for (const auto &[name, row] : totals) {
        (void)name;
        total_exclusive += row.exclusiveNs;
    }

    std::ostringstream os;
    char line[160];
    std::snprintf(line, sizeof(line), "%-32s %10s %12s %12s %7s\n",
                  "span", "count", "self ms", "total ms", "self%");
    os << line;
    for (const auto &[name, row] : rows) {
        const double self_ms =
            static_cast<double>(row.exclusiveNs) / 1e6;
        const double total_ms =
            static_cast<double>(row.inclusiveNs) / 1e6;
        const double share =
            total_exclusive == 0
                ? 0.0
                : 100.0 * static_cast<double>(row.exclusiveNs) /
                      static_cast<double>(total_exclusive);
        std::snprintf(line, sizeof(line),
                      "%-32s %10" PRIu64 " %12.3f %12.3f %6.1f%%\n",
                      name.c_str(), row.count, self_ms, total_ms,
                      share);
        os << line;
    }
    return os.str();
}

ScopedTraceFile::ScopedTraceFile(std::string path,
                                 TraceRecorderConfig config)
    : path_(std::move(path))
{
    if (path_.empty())
        return;
    recorder_ = std::make_unique<TraceRecorder>(config);
    recorder_->install(true);
}

ScopedTraceFile::~ScopedTraceFile()
{
    if (!recorder_)
        return;
    recorder_->uninstall();
    const std::uint64_t dropped = recorder_->droppedEvents();
    if (dropped > 0) {
        warn("trace: ", dropped, " event(s) dropped; raise "
             "TraceRecorderConfig::bufferCapacity");
    }
    recorder_->writeChromeTraceFile(path_);
    inform("trace: wrote ", recorder_->collect().size(),
           " event(s) to ", path_);
}

} // namespace bwwall
