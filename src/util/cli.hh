/**
 * @file
 * Shared command-line parsing for the bench harnesses and examples.
 *
 * Every runnable in this repository used to hand-roll its own argv
 * loop; this header centralises the idiom.  CliParser registers typed
 * flags and options, produces a usage text from their help strings,
 * and rejects unknown arguments (usage to stderr, nonzero exit) so a
 * typo never silently runs the default experiment.  parseKnown()
 * supports the google-benchmark mains, which must extract this
 * repository's flags and forward everything else untouched.
 *
 * BenchOptions bundles the flags every harness shares
 * (--csv --jobs --json --seed --estimator --sample-rate
 * --trace-out).
 */

#ifndef BWWALL_UTIL_CLI_HH
#define BWWALL_UTIL_CLI_HH

#include <cstdint>
#include <functional>
#include <ostream>
#include <string>
#include <vector>

namespace bwwall {

/** Declarative argv parser with generated usage text. */
class CliParser
{
  public:
    /** Outcome of a parse() call. */
    enum class Status
    {
        Ok,    ///< every argument consumed
        Help,  ///< --help requested; caller should exit 0
        Error, ///< unknown flag / bad value; caller should exit nonzero
    };

    /**
     * @param program Name shown in the usage line.
     * @param summary One-line description shown under the usage line.
     */
    explicit CliParser(std::string program, std::string summary = "");

    /** Registers a valueless boolean flag; sets *target when seen. */
    void addFlag(const std::string &name, bool *target,
                 const std::string &help);

    /** Registers a string-valued option (--name VALUE). */
    void addOption(const std::string &name, std::string *target,
                   const std::string &value_name,
                   const std::string &help);

    /** Registers an unsigned-integer-valued option. */
    void addOption(const std::string &name, std::uint64_t *target,
                   const std::string &value_name,
                   const std::string &help);

    /** Registers an unsigned-valued option (thread counts, sizes). */
    void addOption(const std::string &name, std::uint32_t *target,
                   const std::string &value_name,
                   const std::string &help);

    /** Registers a double-valued option. */
    void addOption(const std::string &name, double *target,
                   const std::string &value_name,
                   const std::string &help);

    /**
     * Registers a positional argument, filled in registration order.
     * Optional positionals may be left empty.
     */
    void addPositional(const std::string &name, std::string *target,
                       const std::string &help, bool required = true);

    /**
     * Strict parse: every argument must be a registered flag, a
     * registered option with a valid value, or an expected
     * positional.  On Error the diagnostic and usage text have been
     * written to stderr; on Help the usage text went to stdout.
     */
    Status parse(int argc, char **argv);

    /**
     * Lenient parse for mains that forward unrecognised arguments to
     * another library (google-benchmark): consumes registered
     * flags/options in place, keeps everything else (including
     * argv[0]) in order, and returns the new argc.  Bad values for
     * *registered* options still produce Error via *status when the
     * pointer is non-null, and --help/-h prints the usage text and
     * reports Help, exactly as parse() does.
     */
    int parseKnown(int argc, char **argv, Status *status = nullptr);

    /** Writes the generated usage text. */
    void printUsage(std::ostream &os) const;

    /**
     * parse() and exit on anything but Ok: usage-to-stdout/exit 0 for
     * --help, exit 1 for errors.  The common main() prologue.
     */
    void parseOrExit(int argc, char **argv);

    /**
     * Reports a usage error found *after* parsing — contradictory
     * flag combinations, values that only make sense together —
     * with the same diagnostic-plus-usage format as a parse error,
     * and exits with status 1.
     */
    [[noreturn]] void usageError(const std::string &message) const;

  private:
    struct Spec
    {
        std::string name;       ///< including leading dashes
        std::string valueName;  ///< empty for flags
        std::string help;
        std::function<bool(const std::string &)> apply;
        bool isFlag = false;
    };

    struct Positional
    {
        std::string name;
        std::string *target = nullptr;
        std::string help;
        bool required = true;
    };

    const Spec *find(const std::string &name) const;
    bool fail(const std::string &message) const;

    std::string program_;
    std::string summary_;
    std::vector<Spec> specs_;
    std::vector<Positional> positionals_;
};

/** Command-line options common to all harnesses. */
struct BenchOptions
{
    /** Emit tables as CSV instead of aligned text. */
    bool csv = false;

    /** Worker threads for parallel sweeps (0 = BWWALL_JOBS / auto). */
    unsigned jobs = 0;

    /** When non-empty, run metrics are written here as JSON. */
    std::string jsonPath;

    /** Trace/stream seed; 0 keeps each harness's default. */
    std::uint64_t seed = 0;

    /**
     * Miss-curve estimator name ("exact", "stack", "sampled");
     * empty keeps each harness's default.
     */
    std::string estimator;

    /** SHARDS sampling rate in (0, 1]; 0 keeps the default. */
    double sampleRate = 0.0;

    /**
     * When non-empty, a process-wide TraceRecorder is installed and
     * the Chrome trace is written here at exit (util/trace_span.hh).
     */
    std::string traceOut;

    /** Registers the shared flags on an existing parser. */
    void registerWith(CliParser &parser);

    /**
     * Honors traceOut: installs a process-lifetime trace session
     * whose Chrome JSON is written to the file at exit.  No-op when
     * traceOut is empty.  BenchOptions::parse calls this; mains that
     * use parseKnown/registerWith directly must call it themselves.
     */
    void startTraceExport() const;

    /**
     * Strict parse of the shared flags only; exits on unknown flags
     * (usage + status 1) and on --help (usage + status 0).
     */
    static BenchOptions parse(int argc, char **argv);

    /**
     * Strict parse with harness-specific flags pre-registered on
     * @p parser (the shared flags are added here); exits like
     * parse(argc, argv).
     */
    static BenchOptions parse(int argc, char **argv,
                              CliParser &parser);

    /** seed when set, otherwise the harness default. */
    std::uint64_t
    seedOr(std::uint64_t fallback) const
    {
        return seed == 0 ? fallback : seed;
    }

    /** sampleRate when set, otherwise the harness default. */
    double
    sampleRateOr(double fallback) const
    {
        return sampleRate == 0.0 ? fallback : sampleRate;
    }
};

} // namespace bwwall

#endif // BWWALL_UTIL_CLI_HH
