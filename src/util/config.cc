#include "util/config.hh"

#include <cctype>
#include <fstream>
#include <sstream>

#include "util/logging.hh"

namespace bwwall {

namespace {

std::string
trim(const std::string &text)
{
    std::size_t begin = 0;
    std::size_t end = text.size();
    while (begin < end &&
           std::isspace(static_cast<unsigned char>(text[begin]))) {
        ++begin;
    }
    while (end > begin &&
           std::isspace(static_cast<unsigned char>(text[end - 1]))) {
        --end;
    }
    return text.substr(begin, end - begin);
}

} // namespace

ConfigFile
ConfigFile::parseFile(const std::string &path)
{
    Expected<ConfigFile> parsed = tryParseFile(path);
    if (!parsed.ok())
        fatal(parsed.error().message);
    return parsed.value();
}

Expected<ConfigFile>
ConfigFile::tryParseFile(const std::string &path)
{
    std::ifstream in(path);
    if (!in) {
        return Error{ErrorCategory::Io,
                     "cannot open configuration file '" + path +
                         "'"};
    }
    std::ostringstream buffer;
    buffer << in.rdbuf();
    Expected<ConfigFile> parsed = tryParseString(buffer.str());
    if (!parsed.ok()) {
        return Error{parsed.error().category,
                     "'" + path + "': " + parsed.error().message};
    }
    return parsed;
}

Expected<ConfigFile>
ConfigFile::tryParseString(const std::string &text)
{
    ConfigFile config;
    std::istringstream in(text);
    std::string line;
    int line_number = 0;
    while (std::getline(in, line)) {
        ++line_number;
        const std::size_t hash = line.find('#');
        if (hash != std::string::npos)
            line.erase(hash);
        const std::string trimmed = trim(line);
        if (trimmed.empty())
            continue;
        const std::size_t equals = trimmed.find('=');
        if (equals == std::string::npos) {
            return Error{ErrorCategory::InvalidInput,
                         "configuration line " +
                             std::to_string(line_number) +
                             " is not 'key = value': '" + trimmed +
                             "'"};
        }
        const std::string key = trim(trimmed.substr(0, equals));
        const std::string value = trim(trimmed.substr(equals + 1));
        if (key.empty()) {
            return Error{ErrorCategory::InvalidInput,
                         "configuration line " +
                             std::to_string(line_number) +
                             " has an empty key"};
        }
        config.values_[key] = value;
    }
    return config;
}

ConfigFile
ConfigFile::parseString(const std::string &text)
{
    Expected<ConfigFile> parsed = tryParseString(text);
    if (!parsed.ok())
        fatal(parsed.error().message);
    return parsed.value();
}

bool
ConfigFile::has(const std::string &key) const
{
    return values_.find(key) != values_.end();
}

std::string
ConfigFile::getString(const std::string &key,
                      const std::string &fallback) const
{
    const auto it = values_.find(key);
    return it == values_.end() ? fallback : it->second;
}

double
ConfigFile::getDouble(const std::string &key, double fallback) const
{
    const auto it = values_.find(key);
    if (it == values_.end())
        return fallback;
    try {
        std::size_t used = 0;
        const double value = std::stod(it->second, &used);
        if (used != it->second.size())
            throw std::invalid_argument("trailing characters");
        return value;
    } catch (const std::exception &) {
        fatal("configuration key '", key, "' is not a number: '",
              it->second, "'");
    }
}

std::int64_t
ConfigFile::getInt(const std::string &key, std::int64_t fallback) const
{
    const auto it = values_.find(key);
    if (it == values_.end())
        return fallback;
    try {
        std::size_t used = 0;
        const long long value = std::stoll(it->second, &used);
        if (used != it->second.size())
            throw std::invalid_argument("trailing characters");
        return value;
    } catch (const std::exception &) {
        fatal("configuration key '", key, "' is not an integer: '",
              it->second, "'");
    }
}

bool
ConfigFile::getBool(const std::string &key, bool fallback) const
{
    const auto it = values_.find(key);
    if (it == values_.end())
        return fallback;
    const std::string &value = it->second;
    if (value == "true" || value == "yes" || value == "1")
        return true;
    if (value == "false" || value == "no" || value == "0")
        return false;
    fatal("configuration key '", key, "' is not a boolean: '", value,
          "'");
}

std::vector<std::string>
ConfigFile::getList(const std::string &key) const
{
    std::vector<std::string> items;
    const auto it = values_.find(key);
    if (it == values_.end())
        return items;
    std::istringstream in(it->second);
    std::string item;
    while (std::getline(in, item, ',')) {
        const std::string trimmed = trim(item);
        if (!trimmed.empty())
            items.push_back(trimmed);
    }
    return items;
}

std::vector<std::string>
ConfigFile::keys() const
{
    std::vector<std::string> result;
    result.reserve(values_.size());
    for (const auto &[key, value] : values_)
        result.push_back(key);
    return result;
}

} // namespace bwwall
