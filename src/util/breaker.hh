/**
 * @file
 * A reusable circuit breaker: closed / open / half-open.
 *
 * Extracted from the per-endpoint breaker that grew inside
 * server/overload.cc so the same lifecycle can guard any repeatedly
 * failing dependency — an HTTP endpoint's handler, a cluster peer,
 * a downstream service.  The state machine is the classic one:
 *
 *   Closed    every call allowed; consecutive failures (and,
 *             optionally, a windowed failure rate or
 *             slower-than-threshold latencies) count against the
 *             breaker, and reaching the threshold opens it.
 *   Open      calls denied while the cooldown runs.  The cooldown
 *             is capped-jitter exponential: each re-open stretches
 *             it by cooldownGrowth up to maxCooldownSeconds, with a
 *             deterministic jitter fraction so a fleet of breakers
 *             guarding one dead peer does not probe in lockstep.
 *   HalfOpen  after the cooldown one probe call is allowed; its
 *             success closes the breaker (and resets the cooldown
 *             ladder), its failure re-opens it on the next rung.
 *
 * Callers that do not want probabilistic recovery can drive the
 * breaker externally: trip() forces it open (a failed health
 * probe), reset() forces it closed (a successful one).  Every
 * mutator returns the transition it caused so callers can count
 * opened/reopened/closed events in their own metric namespace.
 *
 * Deliberately not thread-safe: every current holder (the overload
 * controller's breaker map, the cluster's peer-health map) already
 * serializes access under its own mutex, and time is passed in so
 * tests can drive the lifecycle without sleeping.
 */

#ifndef BWWALL_UTIL_BREAKER_HH
#define BWWALL_UTIL_BREAKER_HH

#include <chrono>
#include <cstddef>
#include <cstdint>
#include <vector>

namespace bwwall {

/** Tuning of one Breaker. */
struct BreakerConfig
{
    /** Consecutive failures that open the breaker. */
    unsigned failureThreshold = 5;

    /**
     * Also open once the failure rate over the last failureWindow
     * outcomes reaches this fraction (0 disables rate tracking).
     * Catches a dependency that fails often but never consecutively.
     */
    double failureRateThreshold = 0.0;

    /** Outcomes in the failure-rate window. */
    std::size_t failureWindow = 16;

    /**
     * Observations slower than this many seconds count as failures
     * in observe() even when the call nominally succeeded (0
     * disables latency observation).
     */
    double latencyThresholdSeconds = 0.0;

    /** Base cooldown before the first half-open probe, seconds. */
    double cooldownSeconds = 1.0;

    /**
     * Cooldown multiplier per re-open, so a flapping dependency is
     * probed less and less often (1.0 = fixed cooldown).
     */
    double cooldownGrowth = 2.0;

    /** Ceiling of the grown cooldown, seconds. */
    double maxCooldownSeconds = 30.0;

    /**
     * Jitter as a fraction of the cooldown, in [0, 1), drawn from a
     * deterministic per-breaker stream (seeded below) so runs are
     * reproducible but breakers do not re-probe in lockstep.
     */
    double jitter = 0.0;

    /** Jitter stream seed. */
    std::uint64_t seed = 1;
};

/** Where the breaker is in its lifecycle. */
enum class BreakerState
{
    Closed,   ///< calls flow; failures are being counted
    Open,     ///< calls denied until the cooldown elapses
    HalfOpen, ///< one probe is in flight; its outcome decides
};

/** The transition (if any) a mutator caused, for callers' metrics. */
enum class BreakerEvent
{
    None,
    Opened,   ///< Closed -> Open
    Reopened, ///< HalfOpen -> Open (a failed probe)
    Closed,   ///< Open/HalfOpen -> Closed
};

/** One circuit breaker.  Not thread-safe; callers lock. */
class Breaker
{
  public:
    using Clock = std::chrono::steady_clock;

    explicit Breaker(BreakerConfig config = BreakerConfig{});

    /**
     * True when a call may proceed now.  In the Open state this is
     * the transition point: once the cooldown has elapsed the
     * breaker moves to HalfOpen and admits exactly one probe;
     * further calls are denied until that probe reports back.
     */
    bool allow(Clock::time_point now);

    /**
     * Records one successful call: clears the consecutive-failure
     * count and closes the breaker from any state (the dependency
     * answered, whatever the breaker believed).
     */
    BreakerEvent recordSuccess(Clock::time_point now);

    /** Records one failed call. */
    BreakerEvent recordFailure(Clock::time_point now);

    /**
     * recordSuccess/recordFailure with latency classification: a
     * nominally successful call slower than latencyThresholdSeconds
     * is treated as a failure.
     */
    BreakerEvent observe(Clock::time_point now, double seconds,
                         bool failure);

    /**
     * Forces the breaker open — an out-of-band signal (a failed
     * health probe) established the dependency is down.  Restarts
     * the cooldown when already open.
     */
    BreakerEvent trip(Clock::time_point now);

    /**
     * Forces the breaker closed and forgets all failure history —
     * an out-of-band signal established the dependency is healthy.
     */
    BreakerEvent reset(Clock::time_point now);

    BreakerState state() const { return state_; }

    unsigned consecutiveFailures() const
    {
        return consecutiveFailures_;
    }

    /** The cooldown currently in force (grown and jittered). */
    double cooldownSeconds() const { return cooldown_; }

    const BreakerConfig &config() const { return config_; }

  private:
    void pushOutcome(bool failure);
    bool rateTripped() const;
    BreakerEvent openNow(Clock::time_point now,
                         BreakerEvent event);
    double nextCooldown();

    BreakerConfig config_;
    BreakerState state_ = BreakerState::Closed;
    unsigned consecutiveFailures_ = 0;
    /** Re-opens since the last close (the cooldown ladder rung). */
    unsigned reopenCount_ = 0;
    Clock::time_point openedAt_{};
    double cooldown_ = 0.0;
    std::uint64_t jitterState_;

    /** Ring of recent outcomes (true = failure) for the rate. */
    std::vector<char> window_;
    std::size_t windowNext_ = 0;
    std::size_t windowCount_ = 0;
    std::size_t windowFailures_ = 0;
};

/** Human-readable state name ("closed" / "open" / "half_open"). */
const char *breakerStateName(BreakerState state);

} // namespace bwwall

#endif // BWWALL_UTIL_BREAKER_HH
