/**
 * @file
 * Status and error reporting helpers.
 *
 * The severity split follows the gem5 convention: fatal() is for user
 * errors (bad configuration, invalid arguments) and exits cleanly with
 * an error code; panic() is for internal invariant violations and
 * aborts.  inform() and warn() never stop execution.
 */

#ifndef BWWALL_UTIL_LOGGING_HH
#define BWWALL_UTIL_LOGGING_HH

#include <cstdlib>
#include <sstream>
#include <string>

namespace bwwall {

namespace detail {

/** Appends each argument's stream representation to a string. */
template <typename... Args>
std::string
formatMessage(Args &&...args)
{
    std::ostringstream oss;
    (oss << ... << std::forward<Args>(args));
    return oss.str();
}

/** Writes a tagged line to stderr. */
void emitLine(const char *tag, const std::string &message);

} // namespace detail

/** Prints a normal status message. */
template <typename... Args>
void
inform(Args &&...args)
{
    detail::emitLine("info", detail::formatMessage(
        std::forward<Args>(args)...));
}

/** Prints a message about suspicious but survivable conditions. */
template <typename... Args>
void
warn(Args &&...args)
{
    detail::emitLine("warn", detail::formatMessage(
        std::forward<Args>(args)...));
}

/**
 * Reports an unrecoverable user error (bad parameters, impossible
 * configuration) and exits with status 1.
 */
template <typename... Args>
[[noreturn]] void
fatal(Args &&...args)
{
    detail::emitLine("fatal", detail::formatMessage(
        std::forward<Args>(args)...));
    std::exit(1);
}

/**
 * Reports an internal logic error (a bug in this library, not in its
 * caller) and aborts so a debugger or core dump can capture state.
 */
template <typename... Args>
[[noreturn]] void
panic(Args &&...args)
{
    detail::emitLine("panic", detail::formatMessage(
        std::forward<Args>(args)...));
    std::abort();
}

} // namespace bwwall

#endif // BWWALL_UTIL_LOGGING_HH
