/**
 * @file
 * Status and error reporting helpers.
 *
 * The severity split follows the gem5 convention: fatal() is for user
 * errors (bad configuration, invalid arguments) and exits cleanly with
 * an error code; panic() is for internal invariant violations and
 * aborts.  inform() and warn() never stop execution.
 *
 * Emission is thread-safe: every message is assembled into one buffer
 * and handed to the kernel as a single write(2) per line, so lines
 * from concurrent threads (the server's worker pool, parallel sweeps)
 * never interleave mid-line.  The BWWALL_LOG_LEVEL environment
 * variable (debug | info | warn | error | silent) raises the emission
 * threshold; fatal() and panic() always report before terminating.
 */

#ifndef BWWALL_UTIL_LOGGING_HH
#define BWWALL_UTIL_LOGGING_HH

#include <cstdlib>
#include <sstream>
#include <string>

namespace bwwall {

/** Message severities, least to most severe. */
enum class LogLevel
{
    Debug,
    Info,
    Warn,
    Error,
};

/**
 * Parses a level name ("debug", "info", "warn"/"warning", "error",
 * "silent"/"off"); returns false and leaves *level untouched on an
 * unknown name.  "silent" maps to Error: fatal/panic still report.
 */
bool parseLogLevel(const std::string &name, LogLevel *level);

/**
 * The current emission threshold: messages below it are dropped.
 * Defaults to Info, overridable by BWWALL_LOG_LEVEL (bad values are
 * ignored with a one-time warning) and by setLogLevel().
 */
LogLevel logLevel();

/** Programmatic threshold override (wins over the environment). */
void setLogLevel(LogLevel level);

namespace detail {

/** Appends each argument's stream representation to a string. */
template <typename... Args>
std::string
formatMessage(Args &&...args)
{
    std::ostringstream oss;
    (oss << ... << std::forward<Args>(args));
    return oss.str();
}

/**
 * Writes a tagged line to stderr in one write(2) call when the
 * severity clears the threshold.
 */
void emitLine(LogLevel severity, const char *tag,
              const std::string &message);

} // namespace detail

/** Prints a verbose diagnostic message. */
template <typename... Args>
void
logDebug(Args &&...args)
{
    detail::emitLine(LogLevel::Debug, "debug",
                     detail::formatMessage(
                         std::forward<Args>(args)...));
}

/** Prints a normal status message. */
template <typename... Args>
void
inform(Args &&...args)
{
    detail::emitLine(LogLevel::Info, "info",
                     detail::formatMessage(
                         std::forward<Args>(args)...));
}

/** Prints a message about suspicious but survivable conditions. */
template <typename... Args>
void
warn(Args &&...args)
{
    detail::emitLine(LogLevel::Warn, "warn",
                     detail::formatMessage(
                         std::forward<Args>(args)...));
}

/**
 * Reports an unrecoverable user error (bad parameters, impossible
 * configuration) and exits with status 1.
 */
template <typename... Args>
[[noreturn]] void
fatal(Args &&...args)
{
    detail::emitLine(LogLevel::Error, "fatal",
                     detail::formatMessage(
                         std::forward<Args>(args)...));
    std::exit(1);
}

/**
 * Reports an internal logic error (a bug in this library, not in its
 * caller) and aborts so a debugger or core dump can capture state.
 */
template <typename... Args>
[[noreturn]] void
panic(Args &&...args)
{
    detail::emitLine(LogLevel::Error, "panic",
                     detail::formatMessage(
                         std::forward<Args>(args)...));
    std::abort();
}

} // namespace bwwall

#endif // BWWALL_UTIL_LOGGING_HH
