/**
 * @file
 * Descriptive statistics used throughout the experiment harnesses.
 */

#ifndef BWWALL_UTIL_STATS_HH
#define BWWALL_UTIL_STATS_HH

#include <cstdint>
#include <vector>

namespace bwwall {

/**
 * Single-pass running mean/variance/extremes (Welford's algorithm).
 * Numerically stable for long event streams.
 */
class RunningStats
{
  public:
    /** Incorporates one observation. */
    void add(double value);

    /** Merges another accumulator into this one. */
    void merge(const RunningStats &other);

    /** Discards all observations. */
    void reset();

    std::uint64_t count() const { return count_; }
    double mean() const { return mean_; }
    /** Population variance; 0 when fewer than two samples. */
    double variance() const;
    /** Unbiased sample variance; 0 when fewer than two samples. */
    double sampleVariance() const;
    double stddev() const;
    double min() const;
    double max() const;
    double sum() const { return mean_ * static_cast<double>(count_); }

  private:
    std::uint64_t count_ = 0;
    double mean_ = 0.0;
    double m2_ = 0.0;
    double min_ = 0.0;
    double max_ = 0.0;
};

/**
 * Fixed-width histogram over [lo, hi) with overflow/underflow buckets.
 */
class Histogram
{
  public:
    Histogram(double lo, double hi, std::size_t bucket_count);

    void add(double value);

    std::size_t bucketCount() const { return buckets_.size(); }
    std::uint64_t bucket(std::size_t index) const;
    std::uint64_t underflow() const { return underflow_; }
    std::uint64_t overflow() const { return overflow_; }
    std::uint64_t total() const { return total_; }

    /** Lower edge of bucket index. */
    double bucketLowerEdge(std::size_t index) const;

    /**
     * Approximate quantile (q in [0,1]) by linear interpolation within
     * the containing bucket.  Returns lo/hi bounds for empty data.
     */
    double quantile(double q) const;

  private:
    double lo_;
    double hi_;
    double width_;
    std::vector<std::uint64_t> buckets_;
    std::uint64_t underflow_ = 0;
    std::uint64_t overflow_ = 0;
    std::uint64_t total_ = 0;
};

/** Exact percentile of a sample set (sorts a copy; linear interp). */
double percentile(std::vector<double> values, double q);

/** Geometric mean; all values must be positive. */
double geometricMean(const std::vector<double> &values);

} // namespace bwwall

#endif // BWWALL_UTIL_STATS_HH
