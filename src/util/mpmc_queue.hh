/**
 * @file
 * Bounded lock-free multi-producer/multi-consumer queue.
 *
 * The reactor's handoff primitive: I/O shards push parsed requests
 * to the compute pool and compute workers push serialized responses
 * back to the owning shard without ever taking a lock on the hot
 * path.  The design is Dmitry Vyukov's array-based MPMC queue: a
 * power-of-two ring of cells, each carrying a sequence number that
 * encodes whether the cell is free to produce into or ready to
 * consume from.  Producers and consumers claim cells with one CAS on
 * their own cursor; the per-cell sequence (release-published,
 * acquire-read) hands the payload across threads.
 *
 * Properties that matter here:
 *  - tryPush/tryPop never block and never allocate; a full queue
 *    refuses the push (the caller sheds — bounded queues are the
 *    server's backpressure), an empty queue refuses the pop.
 *  - FIFO per producer, and no consumer can observe a cell before
 *    the producer's release store to its sequence.
 *  - capacity is fixed at construction and rounded up to a power of
 *    two so index masking is one AND.
 *
 * Blocking/wakeup policy deliberately lives outside: callers pair
 * the queue with an eventfd (reactor shards) or a semaphore-style
 * eventfd (compute pool) so sleeping is explicit and the queue stays
 * portable across those uses.
 */

#ifndef BWWALL_UTIL_MPMC_QUEUE_HH
#define BWWALL_UTIL_MPMC_QUEUE_HH

#include <atomic>
#include <cstddef>
#include <memory>
#include <utility>

namespace bwwall {

template <typename T>
class MpmcQueue
{
  public:
    /** Ring of at least @p capacity cells (rounded up to 2^k). */
    explicit MpmcQueue(std::size_t capacity)
    {
        std::size_t size = 2;
        while (size < capacity)
            size *= 2;
        mask_ = size - 1;
        cells_ = std::make_unique<Cell[]>(size);
        for (std::size_t i = 0; i < size; ++i)
            cells_[i].sequence.store(i,
                                     std::memory_order_relaxed);
        head_.store(0, std::memory_order_relaxed);
        tail_.store(0, std::memory_order_relaxed);
    }

    MpmcQueue(const MpmcQueue &) = delete;
    MpmcQueue &operator=(const MpmcQueue &) = delete;

    std::size_t capacity() const { return mask_ + 1; }

    /** Enqueues by move; false when the ring is full. */
    bool
    tryPush(T &&value)
    {
        std::size_t pos = tail_.load(std::memory_order_relaxed);
        for (;;) {
            Cell &cell = cells_[pos & mask_];
            const std::size_t sequence =
                cell.sequence.load(std::memory_order_acquire);
            const std::ptrdiff_t delta =
                static_cast<std::ptrdiff_t>(sequence) -
                static_cast<std::ptrdiff_t>(pos);
            if (delta == 0) {
                if (tail_.compare_exchange_weak(
                        pos, pos + 1,
                        std::memory_order_relaxed))
                {
                    cell.value = std::move(value);
                    cell.sequence.store(
                        pos + 1, std::memory_order_release);
                    return true;
                }
            } else if (delta < 0) {
                return false; // the cell is still being consumed
            } else {
                pos = tail_.load(std::memory_order_relaxed);
            }
        }
    }

    /** Dequeues into *out; false when the ring is empty. */
    bool
    tryPop(T *out)
    {
        std::size_t pos = head_.load(std::memory_order_relaxed);
        for (;;) {
            Cell &cell = cells_[pos & mask_];
            const std::size_t sequence =
                cell.sequence.load(std::memory_order_acquire);
            const std::ptrdiff_t delta =
                static_cast<std::ptrdiff_t>(sequence) -
                static_cast<std::ptrdiff_t>(pos + 1);
            if (delta == 0) {
                if (head_.compare_exchange_weak(
                        pos, pos + 1,
                        std::memory_order_relaxed))
                {
                    *out = std::move(cell.value);
                    cell.sequence.store(
                        pos + mask_ + 1,
                        std::memory_order_release);
                    return true;
                }
            } else if (delta < 0) {
                return false; // the cell has not been produced yet
            } else {
                pos = head_.load(std::memory_order_relaxed);
            }
        }
    }

  private:
    struct Cell
    {
        std::atomic<std::size_t> sequence{0};
        T value{};
    };

    /** Cells on their own cache lines would be overkill here; the
     *  cursors are what producers and consumers actually contend
     *  on, so only those are padded apart. */
    std::unique_ptr<Cell[]> cells_;
    std::size_t mask_ = 0;
    alignas(64) std::atomic<std::size_t> head_{0};
    alignas(64) std::atomic<std::size_t> tail_{0};
};

} // namespace bwwall

#endif // BWWALL_UTIL_MPMC_QUEUE_HH
