/**
 * @file
 * Least-squares fitting, including the log-log power-law fit used to
 * extract the cache-miss exponent alpha (paper Figure 1).
 */

#ifndef BWWALL_UTIL_LINEAR_FIT_HH
#define BWWALL_UTIL_LINEAR_FIT_HH

#include <vector>

namespace bwwall {

/** Result of an ordinary least-squares line fit y = slope*x + intercept. */
struct LineFit
{
    double slope = 0.0;
    double intercept = 0.0;
    /** Coefficient of determination in [0, 1]. */
    double rSquared = 0.0;
};

/**
 * Fits y = slope*x + intercept by ordinary least squares.
 * Requires at least two points with distinct x values.
 */
LineFit fitLine(const std::vector<double> &x, const std::vector<double> &y);

/** Result of a power-law fit y = coefficient * x^exponent. */
struct PowerLawFit
{
    double exponent = 0.0;
    double coefficient = 0.0;
    /** R^2 of the underlying log-log line fit. */
    double rSquared = 0.0;

    /** Evaluates the fitted curve. */
    double evaluate(double x) const;
};

/**
 * Fits y = coefficient * x^exponent by linear regression in log-log
 * space.  All x and y values must be positive.  For a miss-rate-vs-
 * cache-size curve the paper's alpha is -exponent.
 */
PowerLawFit fitPowerLaw(const std::vector<double> &x,
                        const std::vector<double> &y);

} // namespace bwwall

#endif // BWWALL_UTIL_LINEAR_FIT_HH
