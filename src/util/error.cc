#include "util/error.hh"

#include <cstdio>
#include <cstdlib>

namespace bwwall {

const char *
errorCategoryName(ErrorCategory category)
{
    switch (category) {
      case ErrorCategory::InvalidInput:
        return "invalid_input";
      case ErrorCategory::NonFinite:
        return "non_finite";
      case ErrorCategory::NonConvergence:
        return "non_convergence";
      case ErrorCategory::Io:
        return "io";
      case ErrorCategory::Overload:
        return "overload";
      case ErrorCategory::Faulted:
        return "faulted";
    }
    return "unknown";
}

int
httpStatusFor(ErrorCategory category)
{
    switch (category) {
      case ErrorCategory::InvalidInput:
        return 400;
      case ErrorCategory::NonFinite:
        return 422;
      case ErrorCategory::NonConvergence:
        return 424;
      case ErrorCategory::Io:
        return 502;
      case ErrorCategory::Overload:
        return 503;
      case ErrorCategory::Faulted:
        return 500;
    }
    return 500;
}

std::string
Error::toString() const
{
    std::string text = errorCategoryName(category);
    text += ": ";
    text += message;
    return text;
}

int
failWithError(const std::string &tool, const Error &error)
{
    std::string line = tool;
    line += ": error: ";
    line += error.toString();
    line += "\n";
    // One write(2) so concurrent log lines never interleave mid-line,
    // matching the logging.cc discipline.
    std::fwrite(line.data(), 1, line.size(), stderr);
    std::fflush(stderr);
    return EXIT_FAILURE;
}

} // namespace bwwall
