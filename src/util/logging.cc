#include "util/logging.hh"

#include <iostream>

namespace bwwall {
namespace detail {

void
emitLine(const char *tag, const std::string &message)
{
    std::cerr << tag << ": " << message << std::endl;
}

} // namespace detail
} // namespace bwwall
