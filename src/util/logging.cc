#include "util/logging.hh"

#include <unistd.h>

#include <atomic>
#include <cerrno>

namespace bwwall {

namespace {

/** Programmatic override; -1 while only the environment applies. */
std::atomic<int> g_override{-1};

LogLevel
levelFromEnvironment()
{
    const char *env = std::getenv("BWWALL_LOG_LEVEL");
    if (env == nullptr || *env == '\0')
        return LogLevel::Info;
    LogLevel level = LogLevel::Info;
    if (!parseLogLevel(env, &level)) {
        detail::emitLine(LogLevel::Warn, "warn",
                         detail::formatMessage(
                             "ignoring unknown BWWALL_LOG_LEVEL '",
                             env, "'"));
    }
    return level;
}

} // namespace

bool
parseLogLevel(const std::string &name, LogLevel *level)
{
    if (name == "debug") {
        *level = LogLevel::Debug;
    } else if (name == "info") {
        *level = LogLevel::Info;
    } else if (name == "warn" || name == "warning") {
        *level = LogLevel::Warn;
    } else if (name == "error" || name == "silent" ||
               name == "off") {
        // fatal/panic always report, so "silent" is Error.
        *level = LogLevel::Error;
    } else {
        return false;
    }
    return true;
}

LogLevel
logLevel()
{
    const int forced = g_override.load(std::memory_order_relaxed);
    if (forced >= 0)
        return static_cast<LogLevel>(forced);
    static const LogLevel from_env = levelFromEnvironment();
    return from_env;
}

void
setLogLevel(LogLevel level)
{
    g_override.store(static_cast<int>(level),
                     std::memory_order_relaxed);
}

namespace detail {

void
emitLine(LogLevel severity, const char *tag,
         const std::string &message)
{
    if (severity < logLevel())
        return;
    // One pre-assembled buffer, one write(2): concurrent threads
    // (the server's worker pool) never interleave within a line.
    std::string line;
    line.reserve(message.size() + 16);
    line += tag;
    line += ": ";
    line += message;
    line += '\n';
    const char *data = line.data();
    std::size_t remaining = line.size();
    while (remaining > 0) {
        const ssize_t wrote = ::write(STDERR_FILENO, data,
                                      remaining);
        if (wrote < 0) {
            if (errno == EINTR)
                continue;
            break; // stderr is gone; nothing sensible left to do
        }
        data += wrote;
        remaining -= static_cast<std::size_t>(wrote);
    }
}

} // namespace detail
} // namespace bwwall
