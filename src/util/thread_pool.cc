#include "util/thread_pool.hh"

#include <cstdlib>

#include "util/logging.hh"
#include "util/trace_span.hh"

namespace bwwall {

namespace {

constexpr std::size_t kNoFailure = ~std::size_t{0};

} // namespace

unsigned
hardwareJobs()
{
    const unsigned hw = std::thread::hardware_concurrency();
    return hw == 0 ? 1u : hw;
}

unsigned
defaultJobs()
{
    const char *env = std::getenv("BWWALL_JOBS");
    if (env == nullptr || *env == '\0')
        return hardwareJobs();
    char *end = nullptr;
    const long value = std::strtol(env, &end, 10);
    if (end == env || *end != '\0' || value <= 0)
        fatal("BWWALL_JOBS must be a positive integer, got '", env,
              "'");
    return static_cast<unsigned>(value);
}

unsigned
resolveJobs(unsigned requested)
{
    return requested != 0 ? requested : defaultJobs();
}

ThreadPool::ThreadPool(unsigned threads)
{
    const unsigned count = threads == 0 ? 1u : threads;
    workers_.reserve(count);
    for (unsigned i = 0; i < count; ++i) {
        // Worker i records on logical trace lane i + 1; lane 0 is
        // the thread that installed the recorder.
        workers_.emplace_back([this, i] {
            setTraceThreadId(i + 1);
            workerLoop();
        });
    }
}

ThreadPool::~ThreadPool()
{
    {
        std::lock_guard<std::mutex> lock(mutex_);
        stop_ = true;
    }
    workCv_.notify_all();
    for (std::thread &worker : workers_)
        worker.join();
}

void
ThreadPool::run(std::size_t task_count,
                const std::function<void(std::size_t)> &body)
{
    if (task_count == 0)
        return;

    std::unique_lock<std::mutex> lock(mutex_);
    // Wait out stragglers from a previous batch so resetting the
    // dispenser below can never be observed with stale batch state.
    doneCv_.wait(lock, [this] { return busy_ == 0; });

    taskCount_ = task_count;
    body_ = &body;
    nextIndex_.store(0, std::memory_order_relaxed);
    finished_ = 0;
    failedIndex_.store(kNoFailure, std::memory_order_relaxed);
    error_ = nullptr;
    errorIndex_ = 0;
    ++generation_;
    workCv_.notify_all();

    doneCv_.wait(lock, [this] {
        return finished_ == taskCount_ && busy_ == 0;
    });
    body_ = nullptr;
    if (error_) {
        const std::exception_ptr error = error_;
        error_ = nullptr;
        lock.unlock();
        std::rethrow_exception(error);
    }
}

void
ThreadPool::workerLoop()
{
    std::uint64_t seen = 0;
    std::unique_lock<std::mutex> lock(mutex_);
    for (;;) {
        workCv_.wait(lock, [this, seen] {
            return stop_ || generation_ != seen;
        });
        if (stop_)
            return;
        seen = generation_;
        const std::size_t count = taskCount_;
        const std::function<void(std::size_t)> *body = body_;
        ++busy_;
        lock.unlock();

        for (;;) {
            const std::size_t index =
                nextIndex_.fetch_add(1, std::memory_order_relaxed);
            if (index >= count)
                break;

            // Skip only indices above the lowest failure; running
            // everything below it keeps the rethrown exception equal
            // to the one a serial loop would throw first.
            if (index <=
                failedIndex_.load(std::memory_order_acquire)) {
                try {
                    (*body)(index);
                } catch (...) {
                    std::size_t prev = failedIndex_.load(
                        std::memory_order_relaxed);
                    while (index < prev &&
                           !failedIndex_.compare_exchange_weak(
                               prev, index,
                               std::memory_order_acq_rel)) {
                    }
                    std::lock_guard<std::mutex> error_lock(mutex_);
                    if (!error_ || index < errorIndex_) {
                        error_ = std::current_exception();
                        errorIndex_ = index;
                    }
                }
            }

            std::lock_guard<std::mutex> finish_lock(mutex_);
            ++finished_;
        }

        lock.lock();
        if (--busy_ == 0)
            doneCv_.notify_all();
    }
}

} // namespace bwwall
