#include "util/fault.hh"

#include <algorithm>
#include <cstdlib>
#include <memory>
#include <unordered_map>

#include "util/logging.hh"
#include "util/metrics.hh"

namespace bwwall {
namespace fault_detail {

std::atomic<bool> g_armed{false};

namespace {

/** SplitMix64 finalizer: the per-hit decision hash. */
std::uint64_t
mix64(std::uint64_t x)
{
    x += 0x9e3779b97f4a7c15ULL;
    x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
    x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
    return x ^ (x >> 31);
}

/** FNV-1a over the point name; folded into the decision hash. */
std::uint64_t
hashName(const std::string &name)
{
    std::uint64_t h = 0xcbf29ce484222325ULL;
    for (unsigned char c : name) {
        h ^= c;
        h *= 0x100000001b3ULL;
    }
    return h;
}

struct PointState
{
    FaultSpec spec;
    std::uint64_t seed = 0; ///< plan seed ^ hashName(point)
    std::string metricName; ///< "faults.fired.<point>"
    std::atomic<std::uint64_t> hits{0};
    std::atomic<std::uint64_t> fired{0};
};

struct Plan
{
    std::unordered_map<std::string, std::unique_ptr<PointState>>
        points;
    MetricsRegistry *metrics = nullptr;
};

/**
 * The installed plan.  Mirrors trace_detail::g_recorder: swapped
 * only while fault points are quiescent, so the armed fast path may
 * read it with a relaxed load and no reclamation protocol.
 */
std::atomic<Plan *> g_plan{nullptr};

bool
decide(PointState &state, std::uint64_t hit)
{
    const FaultSpec &spec = state.spec;
    switch (spec.mode) {
      case FaultSpec::Mode::Probability: {
        // Hash (seed, point, hit) to a uniform in [0, 1).
        const double unit =
            static_cast<double>(mix64(state.seed ^ hit) >> 11) *
            0x1.0p-53;
        return unit < spec.probability;
      }
      case FaultSpec::Mode::Nth:
        return hit == spec.n;
      case FaultSpec::Mode::Every:
        return spec.n != 0 && hit % spec.n == 0;
      case FaultSpec::Mode::Schedule:
        return std::binary_search(spec.schedule.begin(),
                                  spec.schedule.end(), hit);
    }
    return false;
}

} // namespace

bool
shouldFire(const char *point)
{
    Plan *plan = g_plan.load(std::memory_order_acquire);
    if (plan == nullptr)
        return false;
    auto it = plan->points.find(point);
    if (it == plan->points.end())
        return false;
    PointState &state = *it->second;
    const std::uint64_t hit =
        state.hits.fetch_add(1, std::memory_order_relaxed) + 1;
    if (!decide(state, hit))
        return false;
    state.fired.fetch_add(1, std::memory_order_relaxed);
    if (plan->metrics != nullptr)
        plan->metrics->addCounter(state.metricName);
    return true;
}

} // namespace fault_detail

namespace {

using fault_detail::g_armed;
using fault_detail::g_plan;

/** Retired plans; kept alive so a racing reader never frees under. */
std::vector<std::unique_ptr<fault_detail::Plan>> &
retiredPlans()
{
    static std::vector<std::unique_ptr<fault_detail::Plan>> plans;
    return plans;
}

bool
parseUint(const std::string &text, std::uint64_t *value)
{
    if (text.empty())
        return false;
    std::uint64_t parsed = 0;
    for (char c : text) {
        if (c < '0' || c > '9')
            return false;
        parsed = parsed * 10 + static_cast<std::uint64_t>(c - '0');
    }
    *value = parsed;
    return true;
}

bool
parseEntry(const std::string &entry, FaultConfig *config,
           std::string *error)
{
    const std::size_t eq = entry.find('=');
    if (eq == std::string::npos || eq == 0) {
        *error = "fault entry '" + entry +
                 "' is not of the form point=mode:value";
        return false;
    }
    const std::string point = entry.substr(0, eq);
    const std::string rest = entry.substr(eq + 1);
    if (point == "seed") {
        if (!parseUint(rest, &config->seed)) {
            *error = "fault seed '" + rest +
                     "' is not an unsigned integer";
            return false;
        }
        return true;
    }
    const std::size_t colon = rest.find(':');
    if (colon == std::string::npos) {
        *error = "fault entry '" + entry +
                 "' is missing the mode (prob:|nth:|every:|sched:)";
        return false;
    }
    const std::string mode = rest.substr(0, colon);
    const std::string value = rest.substr(colon + 1);
    FaultSpec spec;
    spec.point = point;
    if (mode == "prob") {
        char *end = nullptr;
        spec.mode = FaultSpec::Mode::Probability;
        spec.probability = std::strtod(value.c_str(), &end);
        if (value.empty() || end == nullptr || *end != '\0' ||
            !(spec.probability >= 0.0) || spec.probability > 1.0) {
            *error = "fault probability '" + value +
                     "' for point '" + point +
                     "' is not in [0, 1]";
            return false;
        }
    } else if (mode == "nth" || mode == "every") {
        spec.mode = mode == "nth" ? FaultSpec::Mode::Nth
                                  : FaultSpec::Mode::Every;
        if (!parseUint(value, &spec.n) || spec.n == 0) {
            *error = "fault count '" + value + "' for point '" +
                     point + "' is not a positive integer";
            return false;
        }
    } else if (mode == "sched") {
        spec.mode = FaultSpec::Mode::Schedule;
        std::size_t start = 0;
        while (start <= value.size()) {
            const std::size_t comma = value.find(',', start);
            const std::string item =
                value.substr(start, comma == std::string::npos
                                        ? std::string::npos
                                        : comma - start);
            std::uint64_t hit = 0;
            if (!parseUint(item, &hit) || hit == 0) {
                *error = "fault schedule item '" + item +
                         "' for point '" + point +
                         "' is not a positive integer";
                return false;
            }
            spec.schedule.push_back(hit);
            if (comma == std::string::npos)
                break;
            start = comma + 1;
        }
        std::sort(spec.schedule.begin(), spec.schedule.end());
    } else {
        *error = "unknown fault mode '" + mode + "' for point '" +
                 point + "' (expected prob, nth, every, or sched)";
        return false;
    }
    config->specs.push_back(std::move(spec));
    return true;
}

} // namespace

bool
parseFaultConfig(const std::string &text, FaultConfig *config,
                 std::string *error)
{
    *config = FaultConfig{};
    std::size_t start = 0;
    while (start <= text.size()) {
        const std::size_t semi = text.find(';', start);
        const std::string entry =
            text.substr(start, semi == std::string::npos
                                   ? std::string::npos
                                   : semi - start);
        if (!entry.empty() && !parseEntry(entry, config, error))
            return false;
        if (semi == std::string::npos)
            break;
        start = semi + 1;
    }
    return true;
}

void
installFaults(const FaultConfig &config, MetricsRegistry *metrics)
{
    uninstallFaults();
    if (config.specs.empty())
        return;
    auto plan = std::make_unique<fault_detail::Plan>();
    plan->metrics = metrics;
    for (const FaultSpec &spec : config.specs) {
        auto state = std::make_unique<fault_detail::PointState>();
        state->spec = spec;
        state->seed =
            config.seed ^ fault_detail::hashName(spec.point);
        state->metricName = "faults.fired." + spec.point;
        plan->points[spec.point] = std::move(state);
    }
    g_plan.store(plan.get(), std::memory_order_release);
    g_armed.store(true, std::memory_order_relaxed);
    retiredPlans().push_back(std::move(plan));
}

void
uninstallFaults()
{
    g_armed.store(false, std::memory_order_relaxed);
    g_plan.store(nullptr, std::memory_order_release);
}

bool
installFaultsFromEnv(MetricsRegistry *metrics)
{
    const char *env = std::getenv("BWWALL_FAULTS");
    if (env == nullptr || env[0] == '\0')
        return false;
    FaultConfig config;
    std::string error;
    if (!parseFaultConfig(env, &config, &error))
        fatal("BWWALL_FAULTS: ", error);
    if (config.specs.empty())
        return false;
    installFaults(config, metrics);
    return true;
}

namespace {

std::uint64_t
pointCount(const std::string &point, bool fired)
{
    fault_detail::Plan *plan =
        g_plan.load(std::memory_order_acquire);
    if (plan == nullptr)
        return 0;
    auto it = plan->points.find(point);
    if (it == plan->points.end())
        return 0;
    const auto &state = *it->second;
    return fired ? state.fired.load(std::memory_order_relaxed)
                 : state.hits.load(std::memory_order_relaxed);
}

} // namespace

std::uint64_t
faultHitCount(const std::string &point)
{
    return pointCount(point, false);
}

std::uint64_t
faultFiredCount(const std::string &point)
{
    return pointCount(point, true);
}

ScopedFaultInjection::ScopedFaultInjection(const std::string &plan,
                                           MetricsRegistry *metrics)
{
    FaultConfig config;
    std::string error;
    if (!parseFaultConfig(plan, &config, &error))
        fatal("fault plan: ", error);
    installFaults(config, metrics);
}

ScopedFaultInjection::~ScopedFaultInjection()
{
    uninstallFaults();
}

} // namespace bwwall
