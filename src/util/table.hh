/**
 * @file
 * ASCII table and CSV emission for the experiment harnesses.
 *
 * Every bench binary prints its reproduced paper table/figure series
 * through this class so the output format is uniform and diffable.
 */

#ifndef BWWALL_UTIL_TABLE_HH
#define BWWALL_UTIL_TABLE_HH

#include <ostream>
#include <string>
#include <vector>

namespace bwwall {

/**
 * A simple column-aligned text table.  Cells are strings; numeric
 * helpers format doubles with a fixed precision.
 */
class Table
{
  public:
    /** Creates a table with the given column headers. */
    explicit Table(std::vector<std::string> headers);

    /** Appends a fully-formed row; must match the header count. */
    void addRow(std::vector<std::string> cells);

    /** Formats a double with the given number of decimals. */
    static std::string num(double value, int decimals = 3);

    /** Formats an integer. */
    static std::string num(long long value);

    std::size_t rowCount() const { return rows_.size(); }
    std::size_t columnCount() const { return headers_.size(); }

    /** Returns a cell (row, column); bounds are checked. */
    const std::string &cell(std::size_t row, std::size_t column) const;

    /** Writes the table with aligned columns and a header rule. */
    void print(std::ostream &os) const;

    /** Writes RFC-4180-style CSV (quotes cells containing , " or \n). */
    void printCsv(std::ostream &os) const;

  private:
    std::vector<std::string> headers_;
    std::vector<std::vector<std::string>> rows_;
};

/** Prints a section banner used to delimit experiment output blocks. */
void printBanner(std::ostream &os, const std::string &title);

} // namespace bwwall

#endif // BWWALL_UTIL_TABLE_HH
