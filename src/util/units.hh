/**
 * @file
 * Size literals and small unit helpers.
 */

#ifndef BWWALL_UTIL_UNITS_HH
#define BWWALL_UTIL_UNITS_HH

#include <cstdint>

namespace bwwall {

inline constexpr std::uint64_t kKiB = 1024ULL;
inline constexpr std::uint64_t kMiB = 1024ULL * kKiB;
inline constexpr std::uint64_t kGiB = 1024ULL * kMiB;

/** True when value is a power of two (zero is not). */
constexpr bool
isPowerOfTwo(std::uint64_t value)
{
    return value != 0 && (value & (value - 1)) == 0;
}

/** floor(log2(value)); value must be non-zero. */
constexpr unsigned
floorLog2(std::uint64_t value)
{
    unsigned result = 0;
    while (value >>= 1)
        ++result;
    return result;
}

/** Smallest power of two >= value (value >= 1). */
constexpr std::uint64_t
ceilPowerOfTwo(std::uint64_t value)
{
    std::uint64_t p = 1;
    while (p < value)
        p <<= 1;
    return p;
}

} // namespace bwwall

#endif // BWWALL_UTIL_UNITS_HH
