#include "util/breaker.hh"

#include <algorithm>

namespace bwwall {

Breaker::Breaker(BreakerConfig config)
    : config_(config), jitterState_(config.seed | 1)
{
    if (config_.failureThreshold == 0)
        config_.failureThreshold = 1;
    if (config_.failureRateThreshold > 0.0)
        window_.resize(
            std::max<std::size_t>(config_.failureWindow, 1), 0);
}

const char *
breakerStateName(BreakerState state)
{
    switch (state) {
      case BreakerState::Closed:
        return "closed";
      case BreakerState::Open:
        return "open";
      case BreakerState::HalfOpen:
        return "half_open";
    }
    return "unknown";
}

void
Breaker::pushOutcome(bool failure)
{
    if (window_.empty())
        return;
    if (windowCount_ == window_.size() &&
        window_[windowNext_] != 0)
        --windowFailures_;
    window_[windowNext_] = failure ? 1 : 0;
    if (failure)
        ++windowFailures_;
    windowNext_ = (windowNext_ + 1) % window_.size();
    windowCount_ = std::min(windowCount_ + 1, window_.size());
}

bool
Breaker::rateTripped() const
{
    if (window_.empty() || windowCount_ < window_.size())
        return false;
    return static_cast<double>(windowFailures_) >=
           config_.failureRateThreshold *
               static_cast<double>(window_.size());
}

double
Breaker::nextCooldown()
{
    double base = config_.cooldownSeconds;
    for (unsigned i = 0;
         i < reopenCount_ && base < config_.maxCooldownSeconds;
         ++i)
        base *= config_.cooldownGrowth;
    base = std::min(base, config_.maxCooldownSeconds);
    if (config_.jitter > 0.0) {
        jitterState_ = jitterState_ * 6364136223846793005ULL +
                       1442695040888963407ULL;
        const double unit =
            static_cast<double>(jitterState_ >> 11) * 0x1.0p-53;
        base *= 1.0 + config_.jitter * (2.0 * unit - 1.0);
    }
    return base;
}

BreakerEvent
Breaker::openNow(Clock::time_point now, BreakerEvent event)
{
    state_ = BreakerState::Open;
    openedAt_ = now;
    cooldown_ = nextCooldown();
    return event;
}

bool
Breaker::allow(Clock::time_point now)
{
    switch (state_) {
      case BreakerState::Closed:
        return true;
      case BreakerState::Open: {
        const double since =
            std::chrono::duration<double>(now - openedAt_)
                .count();
        if (since < cooldown_)
            return false;
        // Half-open: exactly one probe; its outcome
        // (recordSuccess/recordFailure) closes or re-opens.
        state_ = BreakerState::HalfOpen;
        return true;
      }
      case BreakerState::HalfOpen:
        return false;
    }
    return false;
}

BreakerEvent
Breaker::recordSuccess(Clock::time_point)
{
    pushOutcome(false);
    consecutiveFailures_ = 0;
    if (state_ == BreakerState::Closed)
        return BreakerEvent::None;
    state_ = BreakerState::Closed;
    reopenCount_ = 0;
    return BreakerEvent::Closed;
}

BreakerEvent
Breaker::recordFailure(Clock::time_point now)
{
    pushOutcome(true);
    ++consecutiveFailures_;
    switch (state_) {
      case BreakerState::HalfOpen:
        // Failed probe: back to cooling, one rung up the ladder.
        ++reopenCount_;
        return openNow(now, BreakerEvent::Reopened);
      case BreakerState::Closed:
        if (consecutiveFailures_ >= config_.failureThreshold ||
            rateTripped())
            return openNow(now, BreakerEvent::Opened);
        return BreakerEvent::None;
      case BreakerState::Open:
        return BreakerEvent::None;
    }
    return BreakerEvent::None;
}

BreakerEvent
Breaker::observe(Clock::time_point now, double seconds,
                 bool failure)
{
    const bool slow = config_.latencyThresholdSeconds > 0.0 &&
                      seconds > config_.latencyThresholdSeconds;
    return failure || slow ? recordFailure(now)
                           : recordSuccess(now);
}

BreakerEvent
Breaker::trip(Clock::time_point now)
{
    consecutiveFailures_ =
        std::max(consecutiveFailures_, config_.failureThreshold);
    switch (state_) {
      case BreakerState::Closed:
        return openNow(now, BreakerEvent::Opened);
      case BreakerState::HalfOpen:
        ++reopenCount_;
        return openNow(now, BreakerEvent::Reopened);
      case BreakerState::Open:
        // Already down; restart the cooldown so a probe that
        // keeps failing keeps the breaker firmly open.
        openedAt_ = now;
        return BreakerEvent::None;
    }
    return BreakerEvent::None;
}

BreakerEvent
Breaker::reset(Clock::time_point now)
{
    std::fill(window_.begin(), window_.end(), 0);
    windowNext_ = 0;
    windowCount_ = 0;
    windowFailures_ = 0;
    return recordSuccess(now);
}

} // namespace bwwall
