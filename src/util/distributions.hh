/**
 * @file
 * Random samplers used by the synthetic workload generators.
 *
 * The central sampler is BoundedParetoSampler: a reuse-distance
 * distribution whose tail decays as d^-alpha provably yields an LRU
 * miss curve proportional to C^-alpha, which is the power law of cache
 * misses the paper builds on (its Equation 1).
 */

#ifndef BWWALL_UTIL_DISTRIBUTIONS_HH
#define BWWALL_UTIL_DISTRIBUTIONS_HH

#include <cstdint>
#include <vector>

#include "util/rng.hh"

namespace bwwall {

/**
 * Bounded (truncated) Pareto distribution over [1, maximum].
 *
 * The complementary CDF is
 *   P(X > x) = (x^-alpha - max^-alpha) / (1 - max^-alpha),
 * i.e. proportional to x^-alpha far from the truncation point.
 * Sampling uses exact inverse-CDF inversion.
 */
class BoundedParetoSampler
{
  public:
    /**
     * @param alpha Tail exponent, must be > 0.
     * @param maximum Upper truncation bound, must be >= 1.
     */
    BoundedParetoSampler(double alpha, double maximum);

    /** Draws a continuous sample in [1, maximum]. */
    double sample(Rng &rng) const;

    /** Draws floor(sample) as an integer in [1, maximum]. */
    std::uint64_t sampleInteger(Rng &rng) const;

    /** Exact complementary CDF P(X > x). */
    double complementaryCdf(double x) const;

    double alpha() const { return alpha_; }
    double maximum() const { return maximum_; }

  private:
    double alpha_;
    double maximum_;
    double maxPowNegAlpha_; // maximum^-alpha, cached
};

/**
 * Zipf distribution over ranks {1, ..., n} with exponent s >= 0:
 * P(X = k) proportional to k^-s.
 *
 * Uses Hoermann's rejection-inversion method, so construction is O(1)
 * and sampling is O(1) expected time for any n.
 */
class ZipfSampler
{
  public:
    ZipfSampler(std::uint64_t n, double s);

    /** Draws a rank in [1, n]. */
    std::uint64_t sample(Rng &rng) const;

    std::uint64_t n() const { return n_; }
    double s() const { return s_; }

  private:
    double hIntegral(double x) const;
    double hIntegralInverse(double x) const;

    std::uint64_t n_;
    double s_;
    double hIntegralX1_;
    double hIntegralN_;
    double acceptThreshold_;
};

/**
 * O(1) sampler for an arbitrary finite discrete distribution
 * (Walker/Vose alias method).
 */
class AliasTable
{
  public:
    /**
     * @param weights Non-negative weights; at least one must be
     * positive.  They are normalised internally.
     */
    explicit AliasTable(const std::vector<double> &weights);

    /** Draws an index in [0, size()). */
    std::size_t sample(Rng &rng) const;

    std::size_t size() const { return probability_.size(); }

  private:
    std::vector<double> probability_;
    std::vector<std::size_t> alias_;
};

} // namespace bwwall

#endif // BWWALL_UTIL_DISTRIBUTIONS_HH
