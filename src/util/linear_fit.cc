#include "util/linear_fit.hh"

#include <cmath>

#include "util/logging.hh"

namespace bwwall {

LineFit
fitLine(const std::vector<double> &x, const std::vector<double> &y)
{
    if (x.size() != y.size())
        fatal("fitLine: x and y differ in length");
    if (x.size() < 2)
        fatal("fitLine: need at least two points");

    const double n = static_cast<double>(x.size());
    double sum_x = 0.0, sum_y = 0.0;
    for (std::size_t i = 0; i < x.size(); ++i) {
        sum_x += x[i];
        sum_y += y[i];
    }
    const double mean_x = sum_x / n;
    const double mean_y = sum_y / n;

    double sxx = 0.0, sxy = 0.0, syy = 0.0;
    for (std::size_t i = 0; i < x.size(); ++i) {
        const double dx = x[i] - mean_x;
        const double dy = y[i] - mean_y;
        sxx += dx * dx;
        sxy += dx * dy;
        syy += dy * dy;
    }
    if (sxx == 0.0)
        fatal("fitLine: all x values are identical");

    LineFit fit;
    fit.slope = sxy / sxx;
    fit.intercept = mean_y - fit.slope * mean_x;
    if (syy == 0.0) {
        fit.rSquared = 1.0; // perfectly flat data, perfectly fit
    } else {
        double ss_res = 0.0;
        for (std::size_t i = 0; i < x.size(); ++i) {
            const double r = y[i] - (fit.slope * x[i] + fit.intercept);
            ss_res += r * r;
        }
        fit.rSquared = 1.0 - ss_res / syy;
    }
    return fit;
}

double
PowerLawFit::evaluate(double x) const
{
    return coefficient * std::pow(x, exponent);
}

PowerLawFit
fitPowerLaw(const std::vector<double> &x, const std::vector<double> &y)
{
    if (x.size() != y.size())
        fatal("fitPowerLaw: x and y differ in length");

    std::vector<double> log_x, log_y;
    log_x.reserve(x.size());
    log_y.reserve(y.size());
    for (std::size_t i = 0; i < x.size(); ++i) {
        if (x[i] <= 0.0 || y[i] <= 0.0)
            fatal("fitPowerLaw: values must be positive");
        log_x.push_back(std::log(x[i]));
        log_y.push_back(std::log(y[i]));
    }

    const LineFit line = fitLine(log_x, log_y);
    PowerLawFit fit;
    fit.exponent = line.slope;
    fit.coefficient = std::exp(line.intercept);
    fit.rSquared = line.rSquared;
    return fit;
}

} // namespace bwwall
