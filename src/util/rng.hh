/**
 * @file
 * Deterministic pseudo-random number generation.
 *
 * All stochastic components of the library (trace generators, random
 * replacement, value synthesis) draw from Rng so that every experiment
 * is reproducible from a single 64-bit seed.  The generator is
 * xoshiro256** seeded through SplitMix64, which is fast, has a 2^256-1
 * period, and passes BigCrush.
 */

#ifndef BWWALL_UTIL_RNG_HH
#define BWWALL_UTIL_RNG_HH

#include <array>
#include <cstdint>

namespace bwwall {

/**
 * xoshiro256** pseudo-random generator with convenience draws.
 *
 * Satisfies the UniformRandomBitGenerator concept so it can also be
 * plugged into <random> distributions when needed.
 */
class Rng
{
  public:
    using result_type = std::uint64_t;

    /** Constructs a generator whose entire state derives from seed. */
    explicit Rng(std::uint64_t seed = 0x9e3779b97f4a7c15ULL);

    /** Reseeds the generator, discarding all previous state. */
    void seed(std::uint64_t seed);

    /** Returns the next raw 64-bit output. */
    std::uint64_t next();

    /** UniformRandomBitGenerator interface. */
    result_type operator()() { return next(); }
    static constexpr result_type min() { return 0; }
    static constexpr result_type max() { return ~0ULL; }

    /** Returns a double uniform in [0, 1). */
    double nextDouble();

    /** Returns an integer uniform in [0, bound), bound > 0. */
    std::uint64_t nextBounded(std::uint64_t bound);

    /** Returns an integer uniform in [lo, hi] inclusive, lo <= hi. */
    std::int64_t nextRange(std::int64_t lo, std::int64_t hi);

    /** Returns true with the given probability (clamped to [0,1]). */
    bool nextBernoulli(double probability);

    /** Returns a standard-normal draw (Marsaglia polar method). */
    double nextGaussian();

    /**
     * Returns a geometrically distributed trial count >= 1 with
     * success probability p in (0, 1].
     */
    std::uint64_t nextGeometric(double p);

    /**
     * Splits off an independent generator.  The child is seeded from
     * the parent stream, so distinct children never share sequences.
     */
    Rng split();

  private:
    std::array<std::uint64_t, 4> state_;
    double cachedGaussian_ = 0.0;
    bool hasCachedGaussian_ = false;
};

} // namespace bwwall

#endif // BWWALL_UTIL_RNG_HH
