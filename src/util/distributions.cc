#include "util/distributions.hh"

#include <cmath>
#include <deque>

#include "util/logging.hh"

namespace bwwall {

BoundedParetoSampler::BoundedParetoSampler(double alpha, double maximum)
    : alpha_(alpha), maximum_(maximum),
      maxPowNegAlpha_(std::pow(maximum, -alpha))
{
    if (alpha <= 0.0)
        fatal("BoundedParetoSampler requires alpha > 0, got ", alpha);
    if (maximum < 1.0)
        fatal("BoundedParetoSampler requires maximum >= 1, got ", maximum);
}

double
BoundedParetoSampler::sample(Rng &rng) const
{
    // Inverse CDF: x = (1 - u * (1 - max^-alpha))^(-1/alpha).
    const double u = rng.nextDouble();
    const double base = 1.0 - u * (1.0 - maxPowNegAlpha_);
    return std::pow(base, -1.0 / alpha_);
}

std::uint64_t
BoundedParetoSampler::sampleInteger(Rng &rng) const
{
    const double x = sample(rng);
    const double floored = std::floor(x);
    if (floored >= maximum_)
        return static_cast<std::uint64_t>(maximum_);
    return static_cast<std::uint64_t>(floored);
}

double
BoundedParetoSampler::complementaryCdf(double x) const
{
    if (x <= 1.0)
        return 1.0;
    if (x >= maximum_)
        return 0.0;
    return (std::pow(x, -alpha_) - maxPowNegAlpha_) /
           (1.0 - maxPowNegAlpha_);
}

ZipfSampler::ZipfSampler(std::uint64_t n, double s) : n_(n), s_(s)
{
    if (n == 0)
        fatal("ZipfSampler requires n >= 1");
    if (s < 0.0)
        fatal("ZipfSampler requires s >= 0, got ", s);
    // Hoermann & Derflinger rejection-inversion setup; the sampled
    // support is [0.5, n + 0.5] with rounding to the nearest rank.
    hIntegralX1_ = hIntegral(1.5) - 1.0;
    hIntegralN_ = hIntegral(static_cast<double>(n_) + 0.5);
    acceptThreshold_ =
        2.0 - hIntegralInverse(hIntegral(2.5) - std::pow(2.0, -s_));
}

double
ZipfSampler::hIntegral(double x) const
{
    // Integral of t^-s from 1 to x.
    if (s_ == 1.0)
        return std::log(x);
    return (std::pow(x, 1.0 - s_) - 1.0) / (1.0 - s_);
}

double
ZipfSampler::hIntegralInverse(double x) const
{
    if (s_ == 1.0)
        return std::exp(x);
    return std::pow(1.0 + x * (1.0 - s_), 1.0 / (1.0 - s_));
}

std::uint64_t
ZipfSampler::sample(Rng &rng) const
{
    if (n_ == 1)
        return 1;
    if (s_ == 0.0)
        return rng.nextBounded(n_) + 1;
    for (;;) {
        const double u = hIntegralN_ +
            rng.nextDouble() * (hIntegralX1_ - hIntegralN_);
        const double x = hIntegralInverse(u);
        std::uint64_t k = x < 1.0
            ? 1
            : static_cast<std::uint64_t>(x + 0.5);
        if (k > n_)
            k = n_;
        const double kd = static_cast<double>(k);
        // Quick accept within the uniform acceptance band, otherwise
        // the exact rejection test against the hat function.
        if (kd - x <= acceptThreshold_ ||
            u >= hIntegral(kd + 0.5) - std::pow(kd, -s_)) {
            return k;
        }
    }
}

AliasTable::AliasTable(const std::vector<double> &weights)
{
    if (weights.empty())
        fatal("AliasTable requires a non-empty weight vector");

    double total = 0.0;
    for (double w : weights) {
        if (w < 0.0)
            fatal("AliasTable weights must be non-negative");
        total += w;
    }
    if (total <= 0.0)
        fatal("AliasTable requires at least one positive weight");

    const std::size_t n = weights.size();
    probability_.assign(n, 0.0);
    alias_.assign(n, 0);

    std::vector<double> scaled(n);
    for (std::size_t i = 0; i < n; ++i)
        scaled[i] = weights[i] * static_cast<double>(n) / total;

    std::deque<std::size_t> small, large;
    for (std::size_t i = 0; i < n; ++i)
        (scaled[i] < 1.0 ? small : large).push_back(i);

    while (!small.empty() && !large.empty()) {
        const std::size_t s = small.front();
        small.pop_front();
        const std::size_t l = large.front();
        large.pop_front();
        probability_[s] = scaled[s];
        alias_[s] = l;
        scaled[l] = (scaled[l] + scaled[s]) - 1.0;
        (scaled[l] < 1.0 ? small : large).push_back(l);
    }
    for (std::size_t i : large)
        probability_[i] = 1.0;
    for (std::size_t i : small)
        probability_[i] = 1.0; // numerical leftovers
}

std::size_t
AliasTable::sample(Rng &rng) const
{
    const std::size_t column = rng.nextBounded(probability_.size());
    return rng.nextDouble() < probability_[column] ? column
                                                   : alias_[column];
}

} // namespace bwwall
