/**
 * @file
 * Structured run metrics for the experiment harnesses.
 *
 * Every sweep driver can report what it did — points run, wall time,
 * simulated cycles per second, channel utilization — into a
 * MetricsRegistry, and every bench/example can serialize that
 * registry as JSON (`--json out.json`) next to its human-readable
 * table, so CI diffs and gates runs mechanically instead of by
 * eyeball.
 *
 * The registry holds three metric kinds under dot-separated names:
 * counters (monotonic integer event counts), gauges (last-value
 * doubles), and timers (accumulated wall seconds with an observation
 * count).  All mutation is thread-safe; serialization is
 * deterministic (names sorted, fixed formatting) so two identical
 * runs emit identical bytes.
 */

#ifndef BWWALL_UTIL_METRICS_HH
#define BWWALL_UTIL_METRICS_HH

#include <chrono>
#include <cstdint>
#include <map>
#include <mutex>
#include <ostream>
#include <string>

namespace bwwall {

/** Thread-safe registry of named counters, gauges, and timers. */
class MetricsRegistry
{
  public:
    /** Adds `delta` to a counter, creating it at zero first. */
    void addCounter(const std::string &name, std::uint64_t delta = 1);

    /** Sets a gauge to the given value (last write wins). */
    void setGauge(const std::string &name, double value);

    /** Accumulates one timed observation, in seconds. */
    void observeTimer(const std::string &name, double seconds);

    /** Current counter value; 0 when never touched. */
    std::uint64_t counter(const std::string &name) const;

    /** Current gauge value; 0.0 when never set. */
    double gauge(const std::string &name) const;

    /** Accumulated seconds of a timer; 0.0 when never observed. */
    double timerSeconds(const std::string &name) const;

    /** Number of observations of a timer. */
    std::uint64_t timerCount(const std::string &name) const;

    /** True when no metric of any kind has been recorded. */
    bool empty() const;

    /** Discards every metric. */
    void clear();

    /**
     * Writes the registry as a JSON object:
     * {"counters": {...}, "gauges": {...}, "timers":
     * {"name": {"count": N, "seconds": S}, ...}}.
     */
    void writeJson(std::ostream &os) const;

    /** writeJson into a file; fatal when the file cannot be written. */
    void writeJsonFile(const std::string &path) const;

  private:
    struct TimerCell
    {
        std::uint64_t count = 0;
        double seconds = 0.0;
    };

    mutable std::mutex mutex_;
    std::map<std::string, std::uint64_t> counters_;
    std::map<std::string, double> gauges_;
    std::map<std::string, TimerCell> timers_;
};

/**
 * RAII timer: observes the elapsed wall time into the registry's
 * named timer on destruction.
 */
class ScopedTimer
{
  public:
    ScopedTimer(MetricsRegistry &registry, std::string name)
        : registry_(registry), name_(std::move(name)),
          start_(std::chrono::steady_clock::now())
    {}

    ~ScopedTimer()
    {
        const auto elapsed =
            std::chrono::steady_clock::now() - start_;
        registry_.observeTimer(
            name_,
            std::chrono::duration<double>(elapsed).count());
    }

    ScopedTimer(const ScopedTimer &) = delete;
    ScopedTimer &operator=(const ScopedTimer &) = delete;

  private:
    MetricsRegistry &registry_;
    std::string name_;
    std::chrono::steady_clock::time_point start_;
};

} // namespace bwwall

#endif // BWWALL_UTIL_METRICS_HH
