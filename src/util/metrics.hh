/**
 * @file
 * Structured run metrics for the experiment harnesses.
 *
 * Every sweep driver can report what it did — points run, wall time,
 * simulated cycles per second, channel utilization — into a
 * MetricsRegistry, and every bench/example can serialize that
 * registry as JSON (`--json out.json`) next to its human-readable
 * table, so CI diffs and gates runs mechanically instead of by
 * eyeball.
 *
 * The registry holds four metric kinds under dot-separated names:
 * counters (monotonic integer event counts), gauges (last-value
 * doubles), timers (accumulated wall seconds with an observation
 * count), and histograms (log-scale bucketed distributions with
 * quantile estimation, for request latencies).  All mutation is
 * thread-safe; serialization is deterministic (names sorted, fixed
 * formatting) so two identical runs emit identical bytes.
 */

#ifndef BWWALL_UTIL_METRICS_HH
#define BWWALL_UTIL_METRICS_HH

#include <chrono>
#include <cstdint>
#include <map>
#include <mutex>
#include <ostream>
#include <string>
#include <vector>

namespace bwwall {

/** Thread-safe registry of named counters, gauges, and timers. */
class MetricsRegistry
{
  public:
    /** Adds `delta` to a counter, creating it at zero first. */
    void addCounter(const std::string &name, std::uint64_t delta = 1);

    /** Sets a gauge to the given value (last write wins). */
    void setGauge(const std::string &name, double value);

    /** Accumulates one timed observation, in seconds. */
    void observeTimer(const std::string &name, double seconds);

    /** Current counter value; 0 when never touched. */
    std::uint64_t counter(const std::string &name) const;

    /** Current gauge value; 0.0 when never set. */
    double gauge(const std::string &name) const;

    /** Accumulated seconds of a timer; 0.0 when never observed. */
    double timerSeconds(const std::string &name) const;

    /** Number of observations of a timer. */
    std::uint64_t timerCount(const std::string &name) const;

    /**
     * Adds one observation to a histogram, creating it on first
     * touch.  Buckets are a fixed geometric ladder (see
     * histogramBucketBounds()) sized for wall times from one
     * microsecond to minutes; values beyond the ladder land in an
     * overflow bucket.
     */
    void observeHistogram(const std::string &name, double value);

    /** Number of observations of a histogram. */
    std::uint64_t histogramCount(const std::string &name) const;

    /** Sum of a histogram's observations. */
    double histogramSum(const std::string &name) const;

    /**
     * Estimated quantile (q in [0, 1]) by linear interpolation
     * within the containing bucket; 0.0 for empty histograms.
     * Overflow observations report the top bucket bound.
     */
    double histogramQuantile(const std::string &name,
                             double q) const;

    /**
     * The shared bucket upper bounds: a geometric ladder from 1e-6
     * by a factor of sqrt(2) up past 100 (54 finite buckets plus
     * overflow).
     */
    static const std::vector<double> &histogramBucketBounds();

    /** True when no metric of any kind has been recorded. */
    bool empty() const;

    /** Discards every metric. */
    void clear();

    /**
     * Writes the registry as a JSON object:
     * {"counters": {...}, "gauges": {...}, "timers":
     * {"name": {"count": N, "seconds": S}, ...}, "histograms":
     * {"name": {"count": N, "sum": S, "p50": ..., "p99": ...,
     * "buckets": [[le, count], ...]}, ...}} (non-empty buckets
     * only).
     */
    void writeJson(std::ostream &os) const;

    /** writeJson into a file; fatal when the file cannot be written. */
    void writeJsonFile(const std::string &path) const;

    /**
     * Writes the registry as plain text, one metric per line
     * (`counter NAME VALUE`, `gauge NAME VALUE`, `timer NAME COUNT
     * SECONDS`, `histogram NAME COUNT SUM P50 P99`), sorted by name
     * within each kind — the server's /metrics text format.
     */
    void writeText(std::ostream &os) const;

  private:
    struct TimerCell
    {
        std::uint64_t count = 0;
        double seconds = 0.0;
    };

    struct HistogramCell
    {
        /** One slot per finite bound plus a trailing overflow slot. */
        std::vector<std::uint64_t> buckets;
        std::uint64_t count = 0;
        double sum = 0.0;
    };

    static double quantileOf(const HistogramCell &cell, double q);

    mutable std::mutex mutex_;
    std::map<std::string, std::uint64_t> counters_;
    std::map<std::string, double> gauges_;
    std::map<std::string, TimerCell> timers_;
    std::map<std::string, HistogramCell> histograms_;
};

/**
 * RAII timer: observes the elapsed wall time into the registry's
 * named timer on destruction.
 */
class ScopedTimer
{
  public:
    ScopedTimer(MetricsRegistry &registry, std::string name)
        : registry_(registry), name_(std::move(name)),
          start_(std::chrono::steady_clock::now())
    {}

    ~ScopedTimer()
    {
        const auto elapsed =
            std::chrono::steady_clock::now() - start_;
        registry_.observeTimer(
            name_,
            std::chrono::duration<double>(elapsed).count());
    }

    ScopedTimer(const ScopedTimer &) = delete;
    ScopedTimer &operator=(const ScopedTimer &) = delete;

  private:
    MetricsRegistry &registry_;
    std::string name_;
    std::chrono::steady_clock::time_point start_;
};

} // namespace bwwall

#endif // BWWALL_UTIL_METRICS_HH
