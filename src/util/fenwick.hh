/**
 * @file
 * Binary indexed (Fenwick) tree with prefix sums and rank select.
 *
 * Used by the LRU stack structures to locate and update entries at an
 * arbitrary recency depth in O(log n).
 */

#ifndef BWWALL_UTIL_FENWICK_HH
#define BWWALL_UTIL_FENWICK_HH

#include <cstdint>
#include <vector>

#include "util/logging.hh"

namespace bwwall {

/** Fenwick tree over non-negative integer counts. */
class FenwickTree
{
  public:
    /** Creates a tree of the given fixed size, all counts zero. */
    explicit FenwickTree(std::size_t size)
        : tree_(size + 1, 0), size_(size)
    {}

    std::size_t size() const { return size_; }

    /** Adds delta to position index (0-based). */
    void
    add(std::size_t index, std::int64_t delta)
    {
        if (index >= size_)
            panic("FenwickTree::add index out of range");
        for (std::size_t i = index + 1; i <= size_; i += i & (~i + 1))
            tree_[i] += delta;
    }

    /** Sum of positions [0, index] (0-based, inclusive). */
    std::int64_t
    prefixSum(std::size_t index) const
    {
        if (index >= size_)
            panic("FenwickTree::prefixSum index out of range");
        std::int64_t sum = 0;
        for (std::size_t i = index + 1; i > 0; i -= i & (~i + 1))
            sum += tree_[i];
        return sum;
    }

    /** Sum over the whole array. */
    std::int64_t
    total() const
    {
        return size_ == 0 ? 0 : prefixSum(size_ - 1);
    }

    /**
     * Smallest index whose prefix sum reaches target (select).
     * All counts must be non-negative and target must satisfy
     * 1 <= target <= total().
     */
    std::size_t
    select(std::int64_t target) const
    {
        if (target < 1 || target > total())
            panic("FenwickTree::select target out of range");
        std::size_t position = 0;
        std::size_t mask = 1;
        while ((mask << 1) <= size_)
            mask <<= 1;
        for (; mask > 0; mask >>= 1) {
            const std::size_t next = position + mask;
            if (next <= size_ && tree_[next] < target) {
                position = next;
                target -= tree_[next];
            }
        }
        return position; // 0-based index of the selected element
    }

  private:
    std::vector<std::int64_t> tree_;
    std::size_t size_;
};

} // namespace bwwall

#endif // BWWALL_UTIL_FENWICK_HH
