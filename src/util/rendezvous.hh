/**
 * @file
 * Rendezvous (highest-random-weight) hashing: the pure shard map
 * underneath bwwalld's cluster mode.
 *
 * Every node scores every key independently —
 * score(node, key) = mix(seed, hash(node), hash(key)) — and the
 * node with the highest score owns the key.  Two properties make
 * this the right consistent hash for a small, mostly static peer
 * set:
 *
 *  - **Agreement without coordination.**  Any process holding the
 *    same (node list, seed) computes the same owner for every key,
 *    regardless of the order the nodes were listed in.  The router,
 *    every bwwalld instance, and the tests all agree by
 *    construction.
 *  - **Minimal movement.**  Removing a node reassigns exactly the
 *    keys it owned (each survivor's score is unchanged); adding a
 *    node steals only the keys the newcomer now wins, ~K/N of them
 *    in expectation.  No virtual-node ring bookkeeping required.
 *
 * Determinism: scores mix through the same SplitMix64 finaliser the
 * rest of the tree uses, but defined locally — util/ is the
 * dependency floor and may not include trace/hashing.hh.  The seed
 * is part of the map: clusters with different seeds shard
 * differently, and every member must be started with the same one.
 */

#ifndef BWWALL_UTIL_RENDEZVOUS_HH
#define BWWALL_UTIL_RENDEZVOUS_HH

#include <cstddef>
#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

namespace bwwall {

/** Default cluster hash seed ("BWWL" | "CLST"). */
constexpr std::uint64_t kRendezvousSeed = 0x4257574c434c5354ull;

/**
 * SplitMix64 finaliser: a cheap, well-mixed bijection on 64-bit
 * words (identical mixing to trace/hashing.hh, restated here
 * because util/ sits below trace/).
 */
constexpr std::uint64_t
rendezvousMix(std::uint64_t x)
{
    x += 0x9e3779b97f4a7c15ull;
    x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ull;
    x = (x ^ (x >> 27)) * 0x94d049bb133111ebull;
    return x ^ (x >> 31);
}

/** FNV-1a over @p bytes, finalised through rendezvousMix. */
std::uint64_t rendezvousHash(std::string_view bytes,
                             std::uint64_t seed = kRendezvousSeed);

/**
 * The HRW score of @p node for @p key under @p seed.  Pure: equal
 * arguments always produce equal scores, across processes and
 * platforms.
 */
std::uint64_t rendezvousScore(std::string_view node,
                              std::string_view key,
                              std::uint64_t seed = kRendezvousSeed);

/**
 * Index into @p nodes of the owner of @p key: the highest-scoring
 * node, ties broken toward the lexicographically smallest name so
 * duplicate-free node lists in any order agree.  Returns npos for
 * an empty node list.
 */
std::size_t
rendezvousOwner(const std::vector<std::string> &nodes,
                std::string_view key,
                std::uint64_t seed = kRendezvousSeed);

/**
 * All node indices ordered by descending score (the owner first).
 * The failover order: when nodes[order[0]] is unreachable, the
 * next-preferred node is order[1], and removing the owner from the
 * list promotes exactly that node — so routing through the order
 * agrees with the map the survivors compute among themselves.
 */
std::vector<std::size_t>
rendezvousOrder(const std::vector<std::string> &nodes,
                std::string_view key,
                std::uint64_t seed = kRendezvousSeed);

} // namespace bwwall

#endif // BWWALL_UTIL_RENDEZVOUS_HH
