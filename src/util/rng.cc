#include "util/rng.hh"

#include <cmath>

#include "util/logging.hh"

namespace bwwall {

namespace {

/** SplitMix64 step, used for seeding only. */
std::uint64_t
splitMix64(std::uint64_t &x)
{
    x += 0x9e3779b97f4a7c15ULL;
    std::uint64_t z = x;
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    return z ^ (z >> 31);
}

std::uint64_t
rotl(std::uint64_t x, int k)
{
    return (x << k) | (x >> (64 - k));
}

} // namespace

Rng::Rng(std::uint64_t seed_value)
{
    seed(seed_value);
}

void
Rng::seed(std::uint64_t seed_value)
{
    std::uint64_t sm = seed_value;
    for (auto &word : state_)
        word = splitMix64(sm);
    // xoshiro must not start from the all-zero state; SplitMix64 of any
    // seed cannot produce four zero words, but guard anyway.
    if (state_[0] == 0 && state_[1] == 0 && state_[2] == 0 &&
        state_[3] == 0) {
        state_[0] = 1;
    }
    hasCachedGaussian_ = false;
}

std::uint64_t
Rng::next()
{
    const std::uint64_t result = rotl(state_[1] * 5, 7) * 9;
    const std::uint64_t t = state_[1] << 17;

    state_[2] ^= state_[0];
    state_[3] ^= state_[1];
    state_[1] ^= state_[2];
    state_[0] ^= state_[3];
    state_[2] ^= t;
    state_[3] = rotl(state_[3], 45);

    return result;
}

double
Rng::nextDouble()
{
    // 53 high bits give a uniform dyadic rational in [0, 1).
    return static_cast<double>(next() >> 11) * 0x1.0p-53;
}

std::uint64_t
Rng::nextBounded(std::uint64_t bound)
{
    if (bound == 0)
        panic("Rng::nextBounded requires bound > 0");
    // Debiased modulo (Lemire-style rejection on the low range).
    const std::uint64_t threshold = -bound % bound;
    for (;;) {
        const std::uint64_t r = next();
        if (r >= threshold)
            return r % bound;
    }
}

std::int64_t
Rng::nextRange(std::int64_t lo, std::int64_t hi)
{
    if (lo > hi)
        panic("Rng::nextRange requires lo <= hi");
    const auto span = static_cast<std::uint64_t>(hi - lo) + 1;
    // span == 0 means the full 64-bit range.
    const std::uint64_t draw = (span == 0) ? next() : nextBounded(span);
    return lo + static_cast<std::int64_t>(draw);
}

bool
Rng::nextBernoulli(double probability)
{
    if (probability <= 0.0)
        return false;
    if (probability >= 1.0)
        return true;
    return nextDouble() < probability;
}

double
Rng::nextGaussian()
{
    if (hasCachedGaussian_) {
        hasCachedGaussian_ = false;
        return cachedGaussian_;
    }
    double u, v, s;
    do {
        u = 2.0 * nextDouble() - 1.0;
        v = 2.0 * nextDouble() - 1.0;
        s = u * u + v * v;
    } while (s >= 1.0 || s == 0.0);
    const double factor = std::sqrt(-2.0 * std::log(s) / s);
    cachedGaussian_ = v * factor;
    hasCachedGaussian_ = true;
    return u * factor;
}

std::uint64_t
Rng::nextGeometric(double p)
{
    if (p <= 0.0 || p > 1.0)
        panic("Rng::nextGeometric requires p in (0, 1]");
    if (p == 1.0)
        return 1;
    const double u = 1.0 - nextDouble(); // in (0, 1]
    const double trials = std::ceil(std::log(u) / std::log1p(-p));
    return trials < 1.0 ? 1 : static_cast<std::uint64_t>(trials);
}

Rng
Rng::split()
{
    return Rng(next());
}

} // namespace bwwall
