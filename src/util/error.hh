/**
 * @file
 * Structured error taxonomy shared by the solvers, trace I/O, the
 * server, and the CLI tools.
 *
 * Every recoverable failure in bwwall falls into one of six
 * categories, and each category has exactly one HTTP status, so a
 * failure classified once deep in the library surfaces with the same
 * meaning at every boundary: a solver returns
 * Expected<T>{Error{NonFinite, ...}}, the model service rethrows it
 * as Errored, bwwalld maps it to a 422 JSON body naming the
 * category, and a CLI tool prints a one-line
 * "tool: error: non_finite: ..." and exits 1.
 *
 * The mapping (kept in lockstep with docs/SERVER.md):
 *
 *   InvalidInput   -> 400  caller passed a malformed request
 *   NonFinite      -> 422  inputs were well-formed but produced NaN
 *   NonConvergence -> 424  a solver failed to reach a fixed point
 *   Io             -> 502  a file or stream could not be read/written
 *   Overload       -> 503  shed by admission control; retry later
 *   Faulted        -> 500  an injected or internal fault fired
 *
 * Expected<T> is the hand-rolled value-or-Error carrier (the
 * toolchain predates std::expected): functions that used to fatal()
 * on bad input grow a try* twin returning Expected so servers and
 * tools can degrade instead of dying.
 */

#ifndef BWWALL_UTIL_ERROR_HH
#define BWWALL_UTIL_ERROR_HH

#include <stdexcept>
#include <string>
#include <utility>
#include <variant>

#include "util/logging.hh"

namespace bwwall {

/** The failure classes; see the file comment for the HTTP mapping. */
enum class ErrorCategory
{
    InvalidInput,   ///< malformed or out-of-range caller input
    NonFinite,      ///< well-formed input produced NaN or infinity
    NonConvergence, ///< a solver exhausted its iteration budget
    Io,             ///< a file or stream failed mid-operation
    Overload,       ///< shed by admission control; safe to retry
    Faulted,        ///< an injected or internal fault fired
};

/** Stable snake_case name ("invalid_input", "io", ...) for JSON. */
const char *errorCategoryName(ErrorCategory category);

/** The one HTTP status each category maps to (400/422/424/502/503/500). */
int httpStatusFor(ErrorCategory category);

/** A classified failure: what kind, and a human-readable why. */
struct Error
{
    ErrorCategory category = ErrorCategory::InvalidInput;
    std::string message;

    /** "category_name: message" — the CLI / log rendering. */
    std::string toString() const;
};

/**
 * Exception carrier for layers that communicate by throw (the server
 * worker path): wraps an Error so a catch site can recover the
 * category instead of pattern-matching what() strings.
 */
class Errored : public std::runtime_error
{
  public:
    explicit Errored(Error error)
        : std::runtime_error(error.toString()), error_(std::move(error))
    {}

    Errored(ErrorCategory category, std::string message)
        : Errored(Error{category, std::move(message)})
    {}

    const Error &error() const { return error_; }

  private:
    Error error_;
};

/**
 * Value-or-Error result.  Construct from a T or an Error; test with
 * ok() / operator bool; value() and error() panic() when called on
 * the wrong alternative, because that is a caller bug, not an input
 * error.
 */
template <typename T>
class Expected
{
  public:
    Expected(T value) : state_(std::move(value)) {}
    Expected(Error error) : state_(std::move(error)) {}

    bool ok() const { return std::holds_alternative<T>(state_); }
    explicit operator bool() const { return ok(); }

    T &
    value()
    {
        if (!ok())
            panic("Expected::value() on an error: ", error().toString());
        return std::get<T>(state_);
    }

    const T &
    value() const
    {
        if (!ok())
            panic("Expected::value() on an error: ", error().toString());
        return std::get<T>(state_);
    }

    const Error &
    error() const
    {
        if (ok())
            panic("Expected::error() on a value");
        return std::get<Error>(state_);
    }

    /** The value, or throws the error wrapped in Errored. */
    T
    valueOrThrow() &&
    {
        if (!ok())
            throw Errored(std::get<Error>(state_));
        return std::move(std::get<T>(state_));
    }

  private:
    std::variant<T, Error> state_;
};

/**
 * Prints "tool: error: category: message" to stderr as one line and
 * returns EXIT_FAILURE — the uniform way cachesim_cli and
 * experiment_runner turn an Error into a process exit status.
 */
int failWithError(const std::string &tool, const Error &error);

} // namespace bwwall

#endif // BWWALL_UTIL_ERROR_HH
