#include "util/stats.hh"

#include <algorithm>
#include <cmath>

#include "util/logging.hh"

namespace bwwall {

void
RunningStats::add(double value)
{
    if (count_ == 0) {
        min_ = value;
        max_ = value;
    } else {
        min_ = std::min(min_, value);
        max_ = std::max(max_, value);
    }
    ++count_;
    const double delta = value - mean_;
    mean_ += delta / static_cast<double>(count_);
    m2_ += delta * (value - mean_);
}

void
RunningStats::merge(const RunningStats &other)
{
    if (other.count_ == 0)
        return;
    if (count_ == 0) {
        *this = other;
        return;
    }
    const double na = static_cast<double>(count_);
    const double nb = static_cast<double>(other.count_);
    const double delta = other.mean_ - mean_;
    const double n = na + nb;
    mean_ += delta * nb / n;
    m2_ += other.m2_ + delta * delta * na * nb / n;
    count_ += other.count_;
    min_ = std::min(min_, other.min_);
    max_ = std::max(max_, other.max_);
}

void
RunningStats::reset()
{
    *this = RunningStats();
}

double
RunningStats::variance() const
{
    if (count_ < 2)
        return 0.0;
    return m2_ / static_cast<double>(count_);
}

double
RunningStats::sampleVariance() const
{
    if (count_ < 2)
        return 0.0;
    return m2_ / static_cast<double>(count_ - 1);
}

double
RunningStats::stddev() const
{
    return std::sqrt(variance());
}

double
RunningStats::min() const
{
    return count_ == 0 ? 0.0 : min_;
}

double
RunningStats::max() const
{
    return count_ == 0 ? 0.0 : max_;
}

Histogram::Histogram(double lo, double hi, std::size_t bucket_count)
    : lo_(lo), hi_(hi),
      width_((hi - lo) / static_cast<double>(bucket_count)),
      buckets_(bucket_count, 0)
{
    if (bucket_count == 0)
        fatal("Histogram requires at least one bucket");
    if (!(hi > lo))
        fatal("Histogram requires hi > lo");
}

void
Histogram::add(double value)
{
    ++total_;
    if (value < lo_) {
        ++underflow_;
    } else if (value >= hi_) {
        ++overflow_;
    } else {
        auto index = static_cast<std::size_t>((value - lo_) / width_);
        if (index >= buckets_.size())
            index = buckets_.size() - 1; // fp rounding at the edge
        ++buckets_[index];
    }
}

std::uint64_t
Histogram::bucket(std::size_t index) const
{
    if (index >= buckets_.size())
        panic("Histogram bucket index out of range");
    return buckets_[index];
}

double
Histogram::bucketLowerEdge(std::size_t index) const
{
    return lo_ + width_ * static_cast<double>(index);
}

double
Histogram::quantile(double q) const
{
    if (total_ == 0)
        return lo_;
    q = std::clamp(q, 0.0, 1.0);
    const double target = q * static_cast<double>(total_);
    double cumulative = static_cast<double>(underflow_);
    if (target <= cumulative)
        return lo_;
    for (std::size_t i = 0; i < buckets_.size(); ++i) {
        const double in_bucket = static_cast<double>(buckets_[i]);
        if (cumulative + in_bucket >= target && in_bucket > 0.0) {
            const double frac = (target - cumulative) / in_bucket;
            return bucketLowerEdge(i) + frac * width_;
        }
        cumulative += in_bucket;
    }
    return hi_;
}

double
percentile(std::vector<double> values, double q)
{
    if (values.empty())
        fatal("percentile of an empty sample set");
    q = std::clamp(q, 0.0, 1.0);
    std::sort(values.begin(), values.end());
    const double rank = q * static_cast<double>(values.size() - 1);
    const auto below = static_cast<std::size_t>(rank);
    const std::size_t above = std::min(below + 1, values.size() - 1);
    const double frac = rank - static_cast<double>(below);
    return values[below] * (1.0 - frac) + values[above] * frac;
}

double
geometricMean(const std::vector<double> &values)
{
    if (values.empty())
        fatal("geometricMean of an empty sample set");
    double log_sum = 0.0;
    for (double v : values) {
        if (v <= 0.0)
            fatal("geometricMean requires positive values, got ", v);
        log_sum += std::log(v);
    }
    return std::exp(log_sum / static_cast<double>(values.size()));
}

} // namespace bwwall
