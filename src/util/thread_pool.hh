/**
 * @file
 * Deterministic parallel execution for the sweep drivers.
 *
 * Every experiment in this suite decomposes into independent design
 * points (one core count, one generation, one trace shard) whose
 * results land in pre-assigned output slots, so running them on N
 * threads is bit-identical to running them serially.  ThreadPool is
 * deliberately work-stealing-free: tasks are dispensed from a single
 * monotonic counter in submission order, each task owns its output
 * slot, and no task ever observes another's state.  parallelFor /
 * parallelMap are the facade the sweep drivers use.
 *
 * The worker count comes from (in priority order) the caller's
 * explicit request, the BWWALL_JOBS environment variable, and
 * std::thread::hardware_concurrency().
 */

#ifndef BWWALL_UTIL_THREAD_POOL_HH
#define BWWALL_UTIL_THREAD_POOL_HH

#include <algorithm>
#include <atomic>
#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <exception>
#include <functional>
#include <mutex>
#include <thread>
#include <type_traits>
#include <utility>
#include <vector>

#include "util/trace_span.hh"

namespace bwwall {

/** Usable hardware threads; at least 1 even when unknown. */
unsigned hardwareJobs();

/**
 * The default worker count: BWWALL_JOBS when set (fatal if it is not
 * a positive integer), otherwise hardwareJobs().
 */
unsigned defaultJobs();

/** Maps the conventional "0 = auto" job request to a real count. */
unsigned resolveJobs(unsigned requested);

/**
 * Fixed-size pool executing batches of index-addressed tasks.
 *
 * run(count, body) executes body(0) .. body(count - 1) exactly once
 * each.  Indices are dispensed in increasing order from an atomic
 * counter (no stealing, no per-thread queues), and the lowest-index
 * failure wins deterministically: the exception rethrown by run() is
 * the one a serial loop would have thrown first.  Tasks whose index
 * exceeds the lowest failing index are skipped; lower-index tasks
 * still run, exactly as they would have under a serial loop.
 */
class ThreadPool
{
  public:
    /** Spawns `threads` workers (at least one). */
    explicit ThreadPool(unsigned threads);

    /** Joins all workers; pending batches must have completed. */
    ~ThreadPool();

    ThreadPool(const ThreadPool &) = delete;
    ThreadPool &operator=(const ThreadPool &) = delete;

    unsigned threadCount() const
    {
        return static_cast<unsigned>(workers_.size());
    }

    /**
     * Runs one batch to completion on the pool's workers, blocking
     * the caller.  Rethrows the lowest-index task exception, if any.
     */
    void run(std::size_t task_count,
             const std::function<void(std::size_t)> &body);

  private:
    void workerLoop();

    std::mutex mutex_;
    std::condition_variable workCv_;
    std::condition_variable doneCv_;
    std::vector<std::thread> workers_;
    bool stop_ = false;

    // State of the in-flight batch, guarded as commented.
    std::uint64_t generation_ = 0;             ///< guarded by mutex_
    std::size_t taskCount_ = 0;                ///< set before wakeup
    const std::function<void(std::size_t)> *body_ = nullptr;
    std::atomic<std::size_t> nextIndex_{0};
    std::size_t finished_ = 0;                 ///< guarded by mutex_
    /** Workers currently inside a batch's task loop. */
    std::size_t busy_ = 0;                     ///< guarded by mutex_
    /** Lowest failing task index so far; SIZE_MAX when none. */
    std::atomic<std::size_t> failedIndex_{~std::size_t{0}};
    std::exception_ptr error_;                 ///< guarded by mutex_
    std::size_t errorIndex_ = 0;               ///< guarded by mutex_
};

/**
 * Runs body(0) .. body(count - 1), each exactly once, on up to
 * `jobs` threads (0 = defaultJobs()).  Serial when jobs resolves to
 * 1 or the batch has a single task; parallel execution is
 * result-identical to serial for self-contained tasks.
 */
template <typename Body>
void
parallelFor(std::size_t count, unsigned jobs, Body &&body)
{
    if (count == 0)
        return;
    const unsigned resolved = resolveJobs(jobs);
    if (resolved <= 1 || count == 1) {
        for (std::size_t i = 0; i < count; ++i) {
            Span task_span("parallel_for.task", i);
            body(i);
        }
        return;
    }
    const auto threads = static_cast<unsigned>(
        std::min<std::size_t>(resolved, count));
    ThreadPool pool(threads);
    const std::function<void(std::size_t)> fn =
        [&body](std::size_t i) {
            Span task_span("parallel_for.task", i);
            body(i);
        };
    pool.run(count, fn);
}

/**
 * Maps index i to body(i) and returns the results in index order.
 * Each task writes only its own slot, so the returned vector is
 * bit-identical whatever the thread count.
 */
template <typename Body>
auto
parallelMap(std::size_t count, unsigned jobs, Body &&body)
    -> std::vector<std::decay_t<decltype(body(std::size_t{0}))>>
{
    using Result = std::decay_t<decltype(body(std::size_t{0}))>;
    std::vector<Result> results(count);
    parallelFor(count, jobs,
                [&results, &body](std::size_t i) {
                    results[i] = body(i);
                });
    return results;
}

} // namespace bwwall

#endif // BWWALL_UTIL_THREAD_POOL_HH
