#include "util/rendezvous.hh"

#include <algorithm>
#include <numeric>

namespace bwwall {

std::uint64_t
rendezvousHash(std::string_view bytes, std::uint64_t seed)
{
    // FNV-1a, seed folded into the offset basis, then finalised:
    // FNV alone mixes low bits poorly and HRW compares raw scores.
    std::uint64_t hash = 1469598103934665603ull ^ seed;
    for (const char c : bytes) {
        hash ^= static_cast<unsigned char>(c);
        hash *= 1099511628211ull;
    }
    return rendezvousMix(hash);
}

std::uint64_t
rendezvousScore(std::string_view node, std::string_view key,
                std::uint64_t seed)
{
    // Hash node and key separately so "ab"+"c" and "a"+"bc" cannot
    // collide, then mix the pair; the seed rides in both hashes.
    const std::uint64_t node_hash = rendezvousHash(node, seed);
    const std::uint64_t key_hash = rendezvousHash(key, seed);
    return rendezvousMix(node_hash ^
                         (key_hash + 0x9e3779b97f4a7c15ull +
                          (node_hash << 6) + (node_hash >> 2)));
}

std::size_t
rendezvousOwner(const std::vector<std::string> &nodes,
                std::string_view key, std::uint64_t seed)
{
    std::size_t best = std::string::npos;
    std::uint64_t best_score = 0;
    for (std::size_t i = 0; i < nodes.size(); ++i) {
        const std::uint64_t score =
            rendezvousScore(nodes[i], key, seed);
        if (best == std::string::npos || score > best_score ||
            (score == best_score && nodes[i] < nodes[best])) {
            best = i;
            best_score = score;
        }
    }
    return best;
}

std::vector<std::size_t>
rendezvousOrder(const std::vector<std::string> &nodes,
                std::string_view key, std::uint64_t seed)
{
    std::vector<std::uint64_t> scores(nodes.size());
    for (std::size_t i = 0; i < nodes.size(); ++i)
        scores[i] = rendezvousScore(nodes[i], key, seed);
    std::vector<std::size_t> order(nodes.size());
    std::iota(order.begin(), order.end(), std::size_t{0});
    std::sort(order.begin(), order.end(),
              [&](std::size_t a, std::size_t b) {
                  if (scores[a] != scores[b])
                      return scores[a] > scores[b];
                  return nodes[a] < nodes[b];
              });
    return order;
}

} // namespace bwwall
