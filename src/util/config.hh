/**
 * @file
 * Minimal key = value configuration files.
 *
 * Experiment definitions (see examples/experiment_runner) live in
 * flat text files: one `key = value` per line, `#` comments, blank
 * lines ignored.  Values are fetched typed, with defaults; unknown
 * keys can be enumerated so tools can reject typos.
 */

#ifndef BWWALL_UTIL_CONFIG_HH
#define BWWALL_UTIL_CONFIG_HH

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "util/error.hh"

namespace bwwall {

/** Parsed key/value configuration. */
class ConfigFile
{
  public:
    /** Parses a file; fatal on unreadable files or malformed lines. */
    static ConfigFile parseFile(const std::string &path);

    /**
     * Non-fatal parseFile for tools that own their exit path:
     * unreadable files are Io errors, malformed lines InvalidInput.
     */
    static Expected<ConfigFile>
    tryParseFile(const std::string &path);

    /** Non-fatal parseString (malformed lines are InvalidInput). */
    static Expected<ConfigFile>
    tryParseString(const std::string &text);

    /** Parses configuration text directly (for tests/tools). */
    static ConfigFile parseString(const std::string &text);

    bool has(const std::string &key) const;

    /** Typed getters; fall back to the default when absent and are
     *  fatal on unparseable values. */
    std::string getString(const std::string &key,
                          const std::string &fallback = "") const;
    double getDouble(const std::string &key, double fallback) const;
    std::int64_t getInt(const std::string &key,
                        std::int64_t fallback) const;
    bool getBool(const std::string &key, bool fallback) const;

    /**
     * Splits a comma-separated value into trimmed items; empty when
     * the key is absent.
     */
    std::vector<std::string> getList(const std::string &key) const;

    /** All keys, sorted (for unknown-key validation). */
    std::vector<std::string> keys() const;

  private:
    std::map<std::string, std::string> values_;
};

} // namespace bwwall

#endif // BWWALL_UTIL_CONFIG_HH
