#include "util/table.hh"

#include <algorithm>
#include <iomanip>
#include <sstream>

#include "util/logging.hh"

namespace bwwall {

Table::Table(std::vector<std::string> headers)
    : headers_(std::move(headers))
{
    if (headers_.empty())
        fatal("Table requires at least one column");
}

void
Table::addRow(std::vector<std::string> cells)
{
    if (cells.size() != headers_.size()) {
        fatal("Table row has ", cells.size(), " cells, expected ",
              headers_.size());
    }
    rows_.push_back(std::move(cells));
}

std::string
Table::num(double value, int decimals)
{
    std::ostringstream oss;
    oss << std::fixed << std::setprecision(decimals) << value;
    return oss.str();
}

std::string
Table::num(long long value)
{
    return std::to_string(value);
}

const std::string &
Table::cell(std::size_t row, std::size_t column) const
{
    if (row >= rows_.size() || column >= headers_.size())
        panic("Table::cell index out of range");
    return rows_[row][column];
}

void
Table::print(std::ostream &os) const
{
    std::vector<std::size_t> widths(headers_.size());
    for (std::size_t c = 0; c < headers_.size(); ++c)
        widths[c] = headers_[c].size();
    for (const auto &row : rows_)
        for (std::size_t c = 0; c < row.size(); ++c)
            widths[c] = std::max(widths[c], row[c].size());

    auto emit_row = [&](const std::vector<std::string> &row) {
        for (std::size_t c = 0; c < row.size(); ++c) {
            os << (c == 0 ? "" : "  ")
               << std::setw(static_cast<int>(widths[c])) << row[c];
        }
        os << '\n';
    };

    os << std::left;
    emit_row(headers_);
    std::size_t rule_width = 0;
    for (std::size_t c = 0; c < widths.size(); ++c)
        rule_width += widths[c] + (c == 0 ? 0 : 2);
    os << std::string(rule_width, '-') << '\n';
    for (const auto &row : rows_)
        emit_row(row);
    os.flush();
}

namespace {

std::string
csvEscape(const std::string &cell)
{
    if (cell.find_first_of(",\"\n") == std::string::npos)
        return cell;
    std::string out = "\"";
    for (char ch : cell) {
        if (ch == '"')
            out += '"';
        out += ch;
    }
    out += '"';
    return out;
}

} // namespace

void
Table::printCsv(std::ostream &os) const
{
    auto emit = [&](const std::vector<std::string> &row) {
        for (std::size_t c = 0; c < row.size(); ++c)
            os << (c == 0 ? "" : ",") << csvEscape(row[c]);
        os << '\n';
    };
    emit(headers_);
    for (const auto &row : rows_)
        emit(row);
    os.flush();
}

void
printBanner(std::ostream &os, const std::string &title)
{
    os << '\n' << "== " << title << " ==\n\n";
}

} // namespace bwwall
