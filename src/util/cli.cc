#include "util/cli.hh"

#include <cstdlib>
#include <iostream>
#include <memory>

#include "util/trace_span.hh"

namespace bwwall {

namespace {

/** Parses a non-negative integer; false on any trailing garbage. */
bool
parseUint(const std::string &text, std::uint64_t *out)
{
    // std::stoull would silently wrap a negative value.
    if (text.empty() || text.front() == '-')
        return false;
    try {
        std::size_t used = 0;
        const unsigned long long value = std::stoull(text, &used);
        if (used != text.size())
            return false;
        *out = value;
        return true;
    } catch (...) {
        return false;
    }
}

bool
parseDouble(const std::string &text, double *out)
{
    if (text.empty())
        return false;
    try {
        std::size_t used = 0;
        const double value = std::stod(text, &used);
        if (used != text.size())
            return false;
        *out = value;
        return true;
    } catch (...) {
        return false;
    }
}

} // namespace

CliParser::CliParser(std::string program, std::string summary)
    : program_(std::move(program)), summary_(std::move(summary))
{}

void
CliParser::addFlag(const std::string &name, bool *target,
                   const std::string &help)
{
    Spec spec;
    spec.name = name;
    spec.help = help;
    spec.isFlag = true;
    spec.apply = [target](const std::string &) {
        *target = true;
        return true;
    };
    specs_.push_back(std::move(spec));
}

void
CliParser::addOption(const std::string &name, std::string *target,
                     const std::string &value_name,
                     const std::string &help)
{
    Spec spec;
    spec.name = name;
    spec.valueName = value_name;
    spec.help = help;
    spec.apply = [target](const std::string &value) {
        *target = value;
        return true;
    };
    specs_.push_back(std::move(spec));
}

void
CliParser::addOption(const std::string &name, std::uint64_t *target,
                     const std::string &value_name,
                     const std::string &help)
{
    Spec spec;
    spec.name = name;
    spec.valueName = value_name;
    spec.help = help;
    spec.apply = [target](const std::string &value) {
        return parseUint(value, target);
    };
    specs_.push_back(std::move(spec));
}

void
CliParser::addOption(const std::string &name, std::uint32_t *target,
                     const std::string &value_name,
                     const std::string &help)
{
    Spec spec;
    spec.name = name;
    spec.valueName = value_name;
    spec.help = help;
    spec.apply = [target](const std::string &value) {
        std::uint64_t wide = 0;
        if (!parseUint(value, &wide) || wide > 0xffffffffULL)
            return false;
        *target = static_cast<std::uint32_t>(wide);
        return true;
    };
    specs_.push_back(std::move(spec));
}

void
CliParser::addOption(const std::string &name, double *target,
                     const std::string &value_name,
                     const std::string &help)
{
    Spec spec;
    spec.name = name;
    spec.valueName = value_name;
    spec.help = help;
    spec.apply = [target](const std::string &value) {
        return parseDouble(value, target);
    };
    specs_.push_back(std::move(spec));
}

void
CliParser::addPositional(const std::string &name, std::string *target,
                         const std::string &help, bool required)
{
    positionals_.push_back({name, target, help, required});
}

const CliParser::Spec *
CliParser::find(const std::string &name) const
{
    for (const Spec &spec : specs_) {
        if (spec.name == name)
            return &spec;
    }
    return nullptr;
}

bool
CliParser::fail(const std::string &message) const
{
    std::cerr << program_ << ": " << message << '\n';
    printUsage(std::cerr);
    return false;
}

void
CliParser::usageError(const std::string &message) const
{
    fail(message);
    std::exit(1);
}

CliParser::Status
CliParser::parse(int argc, char **argv)
{
    std::size_t positional = 0;
    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        if (arg == "--help" || arg == "-h") {
            printUsage(std::cout);
            return Status::Help;
        }
        if (const Spec *spec = find(arg)) {
            if (spec->isFlag) {
                spec->apply("");
                continue;
            }
            if (i + 1 >= argc) {
                fail("missing value for " + arg);
                return Status::Error;
            }
            const std::string value = argv[++i];
            if (!spec->apply(value)) {
                fail("bad value '" + value + "' for " + arg);
                return Status::Error;
            }
            continue;
        }
        if (!arg.empty() && arg.front() == '-') {
            fail("unknown flag '" + arg + "'");
            return Status::Error;
        }
        if (positional >= positionals_.size()) {
            fail("unexpected argument '" + arg + "'");
            return Status::Error;
        }
        *positionals_[positional++].target = arg;
    }
    for (std::size_t p = positional; p < positionals_.size(); ++p) {
        if (positionals_[p].required) {
            fail("missing required argument <" + positionals_[p].name +
                 ">");
            return Status::Error;
        }
    }
    return Status::Ok;
}

int
CliParser::parseKnown(int argc, char **argv, Status *status)
{
    if (status != nullptr)
        *status = Status::Ok;
    int kept = 1; // argv[0] always survives
    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        if (arg == "--help" || arg == "-h") {
            printUsage(std::cout);
            if (status != nullptr)
                *status = Status::Help;
            return kept;
        }
        if (const Spec *spec = find(arg)) {
            if (spec->isFlag) {
                spec->apply("");
                continue;
            }
            if (i + 1 >= argc) {
                fail("missing value for " + arg);
                if (status != nullptr)
                    *status = Status::Error;
                continue;
            }
            const std::string value = argv[++i];
            if (!spec->apply(value)) {
                fail("bad value '" + value + "' for " + arg);
                if (status != nullptr)
                    *status = Status::Error;
            }
            continue;
        }
        argv[kept++] = argv[i];
    }
    return kept;
}

void
CliParser::printUsage(std::ostream &os) const
{
    os << "usage: " << program_ << " [options]";
    for (const Positional &positional : positionals_) {
        os << (positional.required ? " <" : " [<") << positional.name
           << (positional.required ? ">" : ">]");
    }
    os << '\n';
    if (!summary_.empty())
        os << "  " << summary_ << '\n';
    for (const Positional &positional : positionals_) {
        os << "  <" << positional.name << ">  " << positional.help
           << '\n';
    }
    for (const Spec &spec : specs_) {
        os << "  " << spec.name;
        if (!spec.valueName.empty())
            os << ' ' << spec.valueName;
        os << "  " << spec.help << '\n';
    }
    os << "  --help  show this message\n";
}

void
CliParser::parseOrExit(int argc, char **argv)
{
    switch (parse(argc, argv)) {
      case Status::Ok:
        return;
      case Status::Help:
        std::exit(0);
      case Status::Error:
        std::exit(1);
    }
}

void
BenchOptions::registerWith(CliParser &parser)
{
    parser.addFlag("--csv", &csv, "emit tables as CSV");
    parser.addOption("--jobs", &jobs, "N",
                     "worker threads for parallel sweeps (0 = auto)");
    parser.addOption("--json", &jsonPath, "FILE",
                     "write run metrics as JSON");
    parser.addOption("--seed", &seed, "S",
                     "trace seed (0 = harness default)");
    parser.addOption("--estimator", &estimator, "KIND",
                     "miss-curve estimator: exact | stack | sampled");
    parser.addOption("--sample-rate", &sampleRate, "R",
                     "SHARDS sampling rate in (0, 1]");
    parser.addOption("--trace-out", &traceOut, "FILE",
                     "record spans; write Chrome trace JSON here");
}

void
BenchOptions::startTraceExport() const
{
    if (traceOut.empty())
        return;
    // Destroyed during static teardown, after main() has joined all
    // workers — which uninstalls the recorder and writes the file.
    static std::unique_ptr<ScopedTraceFile> session;
    if (session != nullptr)
        return;
    session = std::make_unique<ScopedTraceFile>(traceOut);
}

BenchOptions
BenchOptions::parse(int argc, char **argv)
{
    CliParser parser(argc > 0 ? argv[0] : "bench");
    return parse(argc, argv, parser);
}

BenchOptions
BenchOptions::parse(int argc, char **argv, CliParser &parser)
{
    BenchOptions options;
    options.registerWith(parser);
    parser.parseOrExit(argc, argv);
    options.startTraceExport();
    return options;
}

} // namespace bwwall
