/**
 * @file
 * Low-overhead thread-aware span tracing with Chrome trace export.
 *
 * The sweep drivers, the miss-curve engine, and bwwalld all funnel
 * through a handful of hot loops; MetricsRegistry says how much total
 * time they took, this tracer says *where* it went.  A Span is an
 * RAII scope: construction stamps a start time, destruction appends a
 * completed event — name, thread lane, nesting depth, duration — to a
 * per-thread bounded buffer owned by the installed TraceRecorder.
 * Buffers are single-producer (the owning thread) and drop-newest on
 * overflow, so recording never blocks, never allocates on the hot
 * path after warm-up, and never loses the events that frame a run.
 *
 * The recorder exports two views: Chrome `trace_event` JSON (load the
 * file in chrome://tracing or https://ui.perfetto.dev) and a text
 * self-time summary ranking spans by *exclusive* time — the signal
 * that turns "the sweep took 3 s" into "readout is the bottleneck".
 *
 * Cost model: with no recorder installed, Span construction is one
 * relaxed atomic load and a branch (see bench/perf_trace_overhead.cc;
 * CI gates the disabled overhead at < 2 % of a full figure-15 study).
 * Tracing is armed per-process via TraceRecorder::install() and can
 * additionally be scoped to one thread (ScopedThreadTrace) so bwwalld
 * can trace a single opted-in request without paying for the rest.
 *
 * Determinism: span names are string literals and args are stable
 * task indices, thread lanes are logical ids (main = 0, pool worker
 * i = i + 1 via setTraceThreadId), and collect() orders events
 * canonically — so two runs of the same workload differ only in the
 * recorded wall times, at any --jobs count.
 */

#ifndef BWWALL_UTIL_TRACE_SPAN_HH
#define BWWALL_UTIL_TRACE_SPAN_HH

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <memory>
#include <mutex>
#include <ostream>
#include <string>
#include <vector>

namespace bwwall {

class TraceRecorder;

namespace trace_detail {

/** The process-wide recorder; null when tracing is torn down. */
extern std::atomic<TraceRecorder *> g_recorder;

/** Process-wide arm switch, owned by the installed recorder. */
extern std::atomic<bool> g_enabled;

/** Per-thread arm switch (bwwalld's per-request opt-in). */
extern thread_local bool t_threadEnabled;

/** Stamps a span start: returns ns since the recorder epoch. */
std::uint64_t beginSpan();

/** Completes a span started by beginSpan() and records it. */
void endSpan(const char *name, bool has_arg, std::uint64_t arg,
             std::uint64_t start_ns);

void recordInstant(const char *name, bool has_arg, std::uint64_t arg);
void recordCounter(const char *name, double value);

} // namespace trace_detail

/**
 * True when a recorder is installed *and* armed for this thread —
 * the inlined guard every recording call sites checks first.
 */
inline bool
tracingActive()
{
    if (trace_detail::g_recorder.load(std::memory_order_relaxed) ==
        nullptr) {
        return false;
    }
    return trace_detail::g_enabled.load(std::memory_order_relaxed) ||
           trace_detail::t_threadEnabled;
}

/**
 * Pins the calling thread's logical trace lane.  The main thread is
 * lane 0 (claimed by TraceRecorder::install()), ThreadPool workers
 * are lanes 1..N in worker order, and threads that never call this
 * get automatic lanes from 256 up.  Call before recording any event
 * on the thread; later calls only affect future recorders.
 */
void setTraceThreadId(std::uint32_t tid);

/** One recorded event, in recorder-epoch-relative nanoseconds. */
struct TraceEvent
{
    enum class Kind : std::uint8_t
    {
        Span,    ///< closed interval with a duration
        Instant, ///< point-in-time marker
        Counter, ///< sampled value series
    };

    Kind kind = Kind::Span;
    /** Static-storage name (call sites pass string literals). */
    const char *name = "";
    std::uint32_t tid = 0;   ///< logical lane, see setTraceThreadId()
    std::uint32_t depth = 0; ///< nesting depth, outermost span = 0
    bool hasArg = false;
    std::uint64_t arg = 0;   ///< task/shard/point index when hasArg
    std::uint64_t startNs = 0;
    std::uint64_t durationNs = 0; ///< spans only
    double value = 0.0;           ///< counters only
};

/** Sizing knobs for a TraceRecorder. */
struct TraceRecorderConfig
{
    /**
     * Events retained per thread; appends beyond this are counted in
     * droppedEvents() and discarded (drop-newest), keeping the
     * earliest — structurally outermost — spans of a run.
     */
    std::size_t bufferCapacity = std::size_t{1} << 16;
};

/**
 * Owns the per-thread event buffers and the export paths.
 *
 * Lifecycle: construct, install() (arms the process-wide fast path),
 * run the workload, then collect()/chromeTraceJson()/
 * selfTimeSummary() any number of times, then uninstall() (or let the
 * destructor do it).  collect() and clear() may race with recording
 * threads only in the trivial sense: a concurrently-appended event is
 * either fully visible or not yet visible, never torn.  Destroying
 * the recorder while other threads still record is a data race —
 * uninstall() first and quiesce them, exactly like joining a thread.
 */
class TraceRecorder
{
  public:
    explicit TraceRecorder(TraceRecorderConfig config = {});
    ~TraceRecorder();

    TraceRecorder(const TraceRecorder &) = delete;
    TraceRecorder &operator=(const TraceRecorder &) = delete;

    /**
     * Makes this the process-wide recorder and claims lane 0 for the
     * calling thread if it has no lane yet.  @p enabled arms tracing
     * for every thread; pass false for standby mode, where only
     * threads inside a ScopedThreadTrace record (bwwalld's
     * per-request opt-in).  Replaces (with a warning) any previously
     * installed recorder.
     */
    void install(bool enabled = true);

    /** Detaches from the process-wide slot if currently installed. */
    void uninstall();

    /** Flips the process-wide arm switch (only while installed). */
    void setEnabled(bool enabled);

    bool installed() const;

    /**
     * All events recorded so far, canonically ordered: by start time,
     * then lane, then depth, then name.  Safe to call while threads
     * are still recording; late events simply miss the snapshot.
     */
    std::vector<TraceEvent> collect() const;

    /** Events discarded because a thread buffer filled up. */
    std::uint64_t droppedEvents() const;

    /** Number of per-thread buffers registered so far. */
    std::size_t threadBufferCount() const;

    /**
     * Discards all recorded events and the dropped counter.  Call
     * only while recording threads are quiescent (between batches):
     * a clear concurrent with an append may resurrect stale events.
     */
    void clear();

    /**
     * The trace as Chrome `trace_event` JSON — an object with
     * displayTimeUnit and a traceEvents array of thread-name
     * metadata, complete ("X"), instant ("i"), and counter ("C")
     * events, canonically ordered and strict-parser clean.  Load in
     * chrome://tracing or https://ui.perfetto.dev.
     */
    std::string chromeTraceJson() const;

    /** Writes chromeTraceJson() plus a trailing newline. */
    void writeChromeTrace(std::ostream &os) const;

    /** Writes the Chrome trace to @p path; fatal() when it cannot. */
    void writeChromeTraceFile(const std::string &path) const;

    /**
     * Text table of the top @p top_n span names by *exclusive* time
     * (total minus time inside child spans), with call counts and
     * inclusive totals — the profile view of the trace.
     */
    std::string selfTimeSummary(std::size_t top_n = 10) const;

  private:
    friend std::uint64_t trace_detail::beginSpan();
    friend void trace_detail::endSpan(const char *, bool,
                                      std::uint64_t, std::uint64_t);
    friend void trace_detail::recordInstant(const char *, bool,
                                            std::uint64_t);
    friend void trace_detail::recordCounter(const char *, double);

    class ThreadBuffer;

    /** Ns elapsed since this recorder's construction. */
    std::uint64_t nanosSinceEpoch() const;

    /** Appends to the calling thread's buffer, registering it once. */
    void append(TraceEvent event);

    ThreadBuffer *registerThreadBuffer();

    TraceRecorderConfig config_;
    std::uint64_t epochNs_;
    /** Process-unique instance id; keys per-thread buffer caches. */
    std::uint64_t serial_ = 0;
    mutable std::mutex mutex_;
    std::vector<std::unique_ptr<ThreadBuffer>> buffers_;
    std::atomic<std::uint32_t> nextAutoTid_;
};

/**
 * RAII span.  Construction is nearly free when tracing is off; when
 * on, the destructor records one complete event covering the scope.
 * Pass a string literal name; the optional arg labels the task/shard
 * index so parallel lanes stay tellable apart in the viewer.
 */
class Span
{
  public:
    explicit Span(const char *name) : Span(name, false, 0) {}

    Span(const char *name, std::uint64_t arg) : Span(name, true, arg)
    {}

    ~Span()
    {
        if (active_)
            trace_detail::endSpan(name_, hasArg_, arg_, startNs_);
    }

    Span(const Span &) = delete;
    Span &operator=(const Span &) = delete;

  private:
    Span(const char *name, bool has_arg, std::uint64_t arg)
        : name_(name), arg_(arg), hasArg_(has_arg)
    {
        if (tracingActive()) {
            startNs_ = trace_detail::beginSpan();
            active_ = true;
        }
    }

    const char *name_;
    std::uint64_t startNs_ = 0;
    std::uint64_t arg_;
    bool hasArg_;
    bool active_ = false;
};

/** Records a point-in-time marker (e.g. a cache hit). */
inline void
traceInstant(const char *name)
{
    if (tracingActive())
        trace_detail::recordInstant(name, false, 0);
}

/** Records a point-in-time marker with an index argument. */
inline void
traceInstant(const char *name, std::uint64_t arg)
{
    if (tracingActive())
        trace_detail::recordInstant(name, true, arg);
}

/** Records a sample of a named counter series. */
inline void
traceCounter(const char *name, double value)
{
    if (tracingActive())
        trace_detail::recordCounter(name, value);
}

/**
 * Arms tracing for the current thread for the enclosing scope —
 * bwwalld wraps each X-BWWall-Trace request in one of these so the
 * standby recorder captures exactly that request's spans.
 */
class ScopedThreadTrace
{
  public:
    explicit ScopedThreadTrace(bool enable = true)
        : previous_(trace_detail::t_threadEnabled)
    {
        if (enable)
            trace_detail::t_threadEnabled = true;
    }

    ~ScopedThreadTrace() { trace_detail::t_threadEnabled = previous_; }

    ScopedThreadTrace(const ScopedThreadTrace &) = delete;
    ScopedThreadTrace &operator=(const ScopedThreadTrace &) = delete;

  private:
    bool previous_;
};

/**
 * Process-level trace session: installs a recorder on construction
 * and, on destruction, uninstalls it and writes the Chrome trace to
 * @p path (plus an informational log line).  An empty path makes the
 * whole object a no-op — which is how --trace-out wires through
 * BenchOptions without conditional code at every call site.
 */
class ScopedTraceFile
{
  public:
    explicit ScopedTraceFile(std::string path,
                             TraceRecorderConfig config = {});
    ~ScopedTraceFile();

    ScopedTraceFile(const ScopedTraceFile &) = delete;
    ScopedTraceFile &operator=(const ScopedTraceFile &) = delete;

    /** The owned recorder; null when constructed with "". */
    TraceRecorder *recorder() { return recorder_.get(); }

  private:
    std::string path_;
    std::unique_ptr<TraceRecorder> recorder_;
};

} // namespace bwwall

#endif // BWWALL_UTIL_TRACE_SPAN_HH
