#include "util/metrics.hh"

#include <algorithm>
#include <cmath>
#include <fstream>
#include <iomanip>
#include <limits>
#include <sstream>

#include "util/logging.hh"

namespace bwwall {

namespace {

/** Escapes a string for inclusion in a JSON string literal. */
std::string
jsonEscape(const std::string &text)
{
    std::string out;
    out.reserve(text.size());
    for (const char c : text) {
        switch (c) {
          case '"':
            out += "\\\"";
            break;
          case '\\':
            out += "\\\\";
            break;
          case '\n':
            out += "\\n";
            break;
          case '\r':
            out += "\\r";
            break;
          case '\t':
            out += "\\t";
            break;
          default:
            if (static_cast<unsigned char>(c) < 0x20) {
                std::ostringstream hex;
                hex << "\\u" << std::hex << std::setw(4)
                    << std::setfill('0') << static_cast<int>(c);
                out += hex.str();
            } else {
                out += c;
            }
        }
    }
    return out;
}

/**
 * Formats a double with enough digits to round-trip, using a fixed
 * style so serialization is deterministic.
 */
std::string
jsonNumber(double value)
{
    std::ostringstream oss;
    oss << std::setprecision(17) << value;
    const std::string text = oss.str();
    // JSON has no inf/nan literals; report them as null.
    if (text.find("inf") != std::string::npos ||
        text.find("nan") != std::string::npos)
        return "null";
    return text;
}

} // namespace

void
MetricsRegistry::addCounter(const std::string &name,
                            std::uint64_t delta)
{
    std::lock_guard<std::mutex> lock(mutex_);
    counters_[name] += delta;
}

void
MetricsRegistry::setGauge(const std::string &name, double value)
{
    std::lock_guard<std::mutex> lock(mutex_);
    gauges_[name] = value;
}

void
MetricsRegistry::observeTimer(const std::string &name, double seconds)
{
    std::lock_guard<std::mutex> lock(mutex_);
    TimerCell &cell = timers_[name];
    ++cell.count;
    cell.seconds += seconds;
}

std::uint64_t
MetricsRegistry::counter(const std::string &name) const
{
    std::lock_guard<std::mutex> lock(mutex_);
    const auto it = counters_.find(name);
    return it == counters_.end() ? 0 : it->second;
}

double
MetricsRegistry::gauge(const std::string &name) const
{
    std::lock_guard<std::mutex> lock(mutex_);
    const auto it = gauges_.find(name);
    return it == gauges_.end() ? 0.0 : it->second;
}

double
MetricsRegistry::timerSeconds(const std::string &name) const
{
    std::lock_guard<std::mutex> lock(mutex_);
    const auto it = timers_.find(name);
    return it == timers_.end() ? 0.0 : it->second.seconds;
}

std::uint64_t
MetricsRegistry::timerCount(const std::string &name) const
{
    std::lock_guard<std::mutex> lock(mutex_);
    const auto it = timers_.find(name);
    return it == timers_.end() ? 0 : it->second.count;
}

const std::vector<double> &
MetricsRegistry::histogramBucketBounds()
{
    static const std::vector<double> bounds = [] {
        std::vector<double> ladder;
        for (double bound = 1e-6; bound <= 141.0;
             bound *= std::sqrt(2.0))
            ladder.push_back(bound);
        return ladder;
    }();
    return bounds;
}

void
MetricsRegistry::observeHistogram(const std::string &name,
                                  double value)
{
    const std::vector<double> &bounds = histogramBucketBounds();
    const auto slot = static_cast<std::size_t>(
        std::lower_bound(bounds.begin(), bounds.end(), value) -
        bounds.begin());
    std::lock_guard<std::mutex> lock(mutex_);
    HistogramCell &cell = histograms_[name];
    if (cell.buckets.empty())
        cell.buckets.assign(bounds.size() + 1, 0);
    ++cell.buckets[slot];
    ++cell.count;
    cell.sum += value;
}

std::uint64_t
MetricsRegistry::histogramCount(const std::string &name) const
{
    std::lock_guard<std::mutex> lock(mutex_);
    const auto it = histograms_.find(name);
    return it == histograms_.end() ? 0 : it->second.count;
}

double
MetricsRegistry::histogramSum(const std::string &name) const
{
    std::lock_guard<std::mutex> lock(mutex_);
    const auto it = histograms_.find(name);
    return it == histograms_.end() ? 0.0 : it->second.sum;
}

double
MetricsRegistry::quantileOf(const HistogramCell &cell, double q)
{
    if (cell.count == 0)
        return 0.0;
    const std::vector<double> &bounds = histogramBucketBounds();
    const double clamped = std::min(std::max(q, 0.0), 1.0);
    const double rank =
        clamped * static_cast<double>(cell.count);
    double cumulative = 0.0;
    for (std::size_t slot = 0; slot < cell.buckets.size();
         ++slot) {
        const double in_bucket =
            static_cast<double>(cell.buckets[slot]);
        if (in_bucket == 0.0)
            continue;
        if (cumulative + in_bucket >= rank) {
            if (slot >= bounds.size())
                return bounds.back(); // overflow bucket
            const double hi = bounds[slot];
            const double lo = slot == 0 ? 0.0 : bounds[slot - 1];
            const double fraction =
                (rank - cumulative) / in_bucket;
            return lo + (hi - lo) * fraction;
        }
        cumulative += in_bucket;
    }
    return bounds.back();
}

double
MetricsRegistry::histogramQuantile(const std::string &name,
                                   double q) const
{
    std::lock_guard<std::mutex> lock(mutex_);
    const auto it = histograms_.find(name);
    return it == histograms_.end() ? 0.0
                                   : quantileOf(it->second, q);
}

bool
MetricsRegistry::empty() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    return counters_.empty() && gauges_.empty() &&
           timers_.empty() && histograms_.empty();
}

void
MetricsRegistry::clear()
{
    std::lock_guard<std::mutex> lock(mutex_);
    counters_.clear();
    gauges_.clear();
    timers_.clear();
    histograms_.clear();
}

void
MetricsRegistry::writeJson(std::ostream &os) const
{
    std::lock_guard<std::mutex> lock(mutex_);
    os << "{\n  \"counters\": {";
    bool first = true;
    for (const auto &[name, value] : counters_) {
        os << (first ? "" : ",") << "\n    \"" << jsonEscape(name)
           << "\": " << value;
        first = false;
    }
    os << (first ? "" : "\n  ") << "},\n  \"gauges\": {";
    first = true;
    for (const auto &[name, value] : gauges_) {
        os << (first ? "" : ",") << "\n    \"" << jsonEscape(name)
           << "\": " << jsonNumber(value);
        first = false;
    }
    os << (first ? "" : "\n  ") << "},\n  \"timers\": {";
    first = true;
    for (const auto &[name, cell] : timers_) {
        os << (first ? "" : ",") << "\n    \"" << jsonEscape(name)
           << "\": {\"count\": " << cell.count
           << ", \"seconds\": " << jsonNumber(cell.seconds) << "}";
        first = false;
    }
    os << (first ? "" : "\n  ") << "},\n  \"histograms\": {";
    first = true;
    const std::vector<double> &bounds = histogramBucketBounds();
    for (const auto &[name, cell] : histograms_) {
        os << (first ? "" : ",") << "\n    \"" << jsonEscape(name)
           << "\": {\"count\": " << cell.count << ", \"sum\": "
           << jsonNumber(cell.sum)
           << ", \"p50\": " << jsonNumber(quantileOf(cell, 0.50))
           << ", \"p99\": " << jsonNumber(quantileOf(cell, 0.99))
           << ", \"buckets\": [";
        bool first_bucket = true;
        for (std::size_t slot = 0; slot < cell.buckets.size();
             ++slot) {
            if (cell.buckets[slot] == 0)
                continue;
            const double le = slot < bounds.size()
                                  ? bounds[slot]
                                  : std::numeric_limits<
                                        double>::infinity();
            os << (first_bucket ? "" : ", ") << "["
               << jsonNumber(le) << ", " << cell.buckets[slot]
               << "]";
            first_bucket = false;
        }
        os << "]}";
        first = false;
    }
    os << (first ? "" : "\n  ") << "}\n}\n";
}

void
MetricsRegistry::writeText(std::ostream &os) const
{
    std::lock_guard<std::mutex> lock(mutex_);
    for (const auto &[name, value] : counters_)
        os << "counter " << name << ' ' << value << '\n';
    for (const auto &[name, value] : gauges_)
        os << "gauge " << name << ' ' << jsonNumber(value) << '\n';
    for (const auto &[name, cell] : timers_)
        os << "timer " << name << ' ' << cell.count << ' '
           << jsonNumber(cell.seconds) << '\n';
    for (const auto &[name, cell] : histograms_)
        os << "histogram " << name << ' ' << cell.count << ' '
           << jsonNumber(cell.sum) << ' '
           << jsonNumber(quantileOf(cell, 0.50)) << ' '
           << jsonNumber(quantileOf(cell, 0.99)) << '\n';
}

void
MetricsRegistry::writeJsonFile(const std::string &path) const
{
    std::ofstream out(path);
    if (!out)
        fatal("cannot write metrics file '", path, "'");
    writeJson(out);
    out.flush();
    if (!out)
        fatal("failed writing metrics file '", path, "'");
}

} // namespace bwwall
