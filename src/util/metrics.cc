#include "util/metrics.hh"

#include <fstream>
#include <iomanip>
#include <sstream>

#include "util/logging.hh"

namespace bwwall {

namespace {

/** Escapes a string for inclusion in a JSON string literal. */
std::string
jsonEscape(const std::string &text)
{
    std::string out;
    out.reserve(text.size());
    for (const char c : text) {
        switch (c) {
          case '"':
            out += "\\\"";
            break;
          case '\\':
            out += "\\\\";
            break;
          case '\n':
            out += "\\n";
            break;
          case '\r':
            out += "\\r";
            break;
          case '\t':
            out += "\\t";
            break;
          default:
            if (static_cast<unsigned char>(c) < 0x20) {
                std::ostringstream hex;
                hex << "\\u" << std::hex << std::setw(4)
                    << std::setfill('0') << static_cast<int>(c);
                out += hex.str();
            } else {
                out += c;
            }
        }
    }
    return out;
}

/**
 * Formats a double with enough digits to round-trip, using a fixed
 * style so serialization is deterministic.
 */
std::string
jsonNumber(double value)
{
    std::ostringstream oss;
    oss << std::setprecision(17) << value;
    const std::string text = oss.str();
    // JSON has no inf/nan literals; report them as null.
    if (text.find("inf") != std::string::npos ||
        text.find("nan") != std::string::npos)
        return "null";
    return text;
}

} // namespace

void
MetricsRegistry::addCounter(const std::string &name,
                            std::uint64_t delta)
{
    std::lock_guard<std::mutex> lock(mutex_);
    counters_[name] += delta;
}

void
MetricsRegistry::setGauge(const std::string &name, double value)
{
    std::lock_guard<std::mutex> lock(mutex_);
    gauges_[name] = value;
}

void
MetricsRegistry::observeTimer(const std::string &name, double seconds)
{
    std::lock_guard<std::mutex> lock(mutex_);
    TimerCell &cell = timers_[name];
    ++cell.count;
    cell.seconds += seconds;
}

std::uint64_t
MetricsRegistry::counter(const std::string &name) const
{
    std::lock_guard<std::mutex> lock(mutex_);
    const auto it = counters_.find(name);
    return it == counters_.end() ? 0 : it->second;
}

double
MetricsRegistry::gauge(const std::string &name) const
{
    std::lock_guard<std::mutex> lock(mutex_);
    const auto it = gauges_.find(name);
    return it == gauges_.end() ? 0.0 : it->second;
}

double
MetricsRegistry::timerSeconds(const std::string &name) const
{
    std::lock_guard<std::mutex> lock(mutex_);
    const auto it = timers_.find(name);
    return it == timers_.end() ? 0.0 : it->second.seconds;
}

std::uint64_t
MetricsRegistry::timerCount(const std::string &name) const
{
    std::lock_guard<std::mutex> lock(mutex_);
    const auto it = timers_.find(name);
    return it == timers_.end() ? 0 : it->second.count;
}

bool
MetricsRegistry::empty() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    return counters_.empty() && gauges_.empty() && timers_.empty();
}

void
MetricsRegistry::clear()
{
    std::lock_guard<std::mutex> lock(mutex_);
    counters_.clear();
    gauges_.clear();
    timers_.clear();
}

void
MetricsRegistry::writeJson(std::ostream &os) const
{
    std::lock_guard<std::mutex> lock(mutex_);
    os << "{\n  \"counters\": {";
    bool first = true;
    for (const auto &[name, value] : counters_) {
        os << (first ? "" : ",") << "\n    \"" << jsonEscape(name)
           << "\": " << value;
        first = false;
    }
    os << (first ? "" : "\n  ") << "},\n  \"gauges\": {";
    first = true;
    for (const auto &[name, value] : gauges_) {
        os << (first ? "" : ",") << "\n    \"" << jsonEscape(name)
           << "\": " << jsonNumber(value);
        first = false;
    }
    os << (first ? "" : "\n  ") << "},\n  \"timers\": {";
    first = true;
    for (const auto &[name, cell] : timers_) {
        os << (first ? "" : ",") << "\n    \"" << jsonEscape(name)
           << "\": {\"count\": " << cell.count
           << ", \"seconds\": " << jsonNumber(cell.seconds) << "}";
        first = false;
    }
    os << (first ? "" : "\n  ") << "}\n}\n";
}

void
MetricsRegistry::writeJsonFile(const std::string &path) const
{
    std::ofstream out(path);
    if (!out)
        fatal("cannot write metrics file '", path, "'");
    writeJson(out);
    out.flush();
    if (!out)
        fatal("failed writing metrics file '", path, "'");
}

} // namespace bwwall
