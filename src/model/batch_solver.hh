/**
 * @file
 * Structure-of-arrays batch evaluation of the Eq. 1-14 solver hot
 * path.
 *
 * The paper's results section is thousands of evaluations of the
 * same analytical pipeline swept over generations × area
 * allocations.  The scalar entry points (relativeTraffic,
 * solveSupportableCores, solveThroughputOptimal) pay per-point costs
 * that are invariant across any one sweep: scenario construction
 * (a std::vector<Technique> copy with strings), validation,
 * technique composition (combineEffects), and PowerLaw setup.  The
 * batch API hoists all of that out of the inner loop:
 *
 *  - BatchGrid holds the sweep as flat SoA columns (alpha, totalCeas,
 *    trafficBudget) plus one shared baseline + technique set; pushing
 *    a point is three doubles, not a scenario copy.
 *  - BatchSolver binds the per-grid invariants once (combined
 *    technique effects, baseline S1, validation) and solves single
 *    points scalar-identically, so parallel sweeps can shard a grid
 *    across tasks.
 *  - solveSupportableBatch / solveThroughputBatch evaluate a whole
 *    grid per call into caller-owned contiguous buffers with no
 *    per-point allocation.
 *
 * Bit-identity contract: every batch result is bit-identical to the
 * scalar path (PR 3's byte-identical-response and cache-key
 * invariants depend on this).  The kernel replicates the scalar
 * expressions term for term — same operand order, same association —
 * and its only deviations are provably value-preserving:
 *
 *  1. Hoisting: combineEffects(), baseline.cachePerCore(), and
 *     validation are deterministic pure computations, so computing
 *     them once per grid instead of once per traffic evaluation
 *     yields the same bits.
 *  2. Fractional-bisection fixed point: the scalar solver always runs
 *     100 halving iterations; once `mid == flo || mid == fhi` the
 *     interval can no longer change (the loop invariants pin which
 *     side `mid` joins), so every remaining iteration is a no-op and
 *     the batch path breaks out early.
 *  3. Memoized re-evaluation: relativeTraffic is pure, so reusing the
 *     value computed during bisection for `trafficAtSolution` equals
 *     the scalar path's recomputation.
 *  4. Budget-cutoff bisection (throughput): the scalar scan breaks at
 *     the first finite over-budget traffic, which under the traffic
 *     monotonicity the scalar solver itself already relies on equals
 *     the largest within-budget core count; the batch path finds that
 *     cutoff by bisection and then skips the per-core traffic
 *     evaluation (and its std::pow) inside the scan entirely.
 *
 * The scalar entry points remain the readable reference oracle; the
 * property tests in tests/model/batch_solver_test.cc assert bitwise
 * equality between the two on randomized grids.  See
 * docs/PERFORMANCE.md for layout, usage, and measured speedups.
 */

#ifndef BWWALL_MODEL_BATCH_SOLVER_HH
#define BWWALL_MODEL_BATCH_SOLVER_HH

#include <cstddef>
#include <cstdint>
#include <vector>

#include "model/throughput.hh"

namespace bwwall {

/**
 * A sweep grid in structure-of-arrays form: one shared baseline and
 * technique set, and three flat columns indexed by point.  Columns
 * always have equal length; use push() to grow them together.
 */
struct BatchGrid
{
    /** Reference configuration shared by every point. */
    CmpConfig baseline = niagara2Baseline();

    /** Techniques in effect at every point. */
    std::vector<Technique> techniques;

    /** @name SoA columns (parallel arrays, one entry per point)
     *  @{ */
    std::vector<double> alpha;
    std::vector<double> totalCeas;
    std::vector<double> trafficBudget;
    /** @} */

    std::size_t
    points() const
    {
        return alpha.size();
    }

    void
    reserve(std::size_t count)
    {
        alpha.reserve(count);
        totalCeas.reserve(count);
        trafficBudget.reserve(count);
    }

    /** Appends one sweep point. */
    void
    push(double point_alpha, double point_total_ceas,
         double point_traffic_budget)
    {
        alpha.push_back(point_alpha);
        totalCeas.push_back(point_total_ceas);
        trafficBudget.push_back(point_traffic_budget);
    }

    /** Point i as a scalar-API scenario (copies the techniques). */
    ScalingScenario scenarioAt(std::size_t i) const;
};

/**
 * Caller-owned output columns of a supportable-cores batch solve.
 * Every pointer must reference at least grid.points() elements.
 * Field meanings match SolveResult member for member.
 */
struct SupportableBatchOut
{
    int *supportableCores = nullptr;
    double *fractionalCores = nullptr;
    double *trafficAtSolution = nullptr;
    double *coreAreaFraction = nullptr;
    double *cachePerCore = nullptr;
};

/**
 * Caller-owned output columns of a throughput batch solve.  Field
 * meanings match ThroughputSolveResult member for member
 * (bandwidthLimited as 0/1).
 */
struct ThroughputBatchOut
{
    int *cores = nullptr;
    double *throughput = nullptr;
    double *traffic = nullptr;
    std::uint8_t *bandwidthLimited = nullptr;
};

/**
 * Caller-owned per-point status columns for the try* batch variants:
 * ok[i] is 1 when point i solved (its output columns are valid) and
 * 0 when it failed (errors[i] holds the classification the scalar
 * try* twin would have returned).
 */
struct BatchPointStatus
{
    std::uint8_t *ok = nullptr;
    Error *errors = nullptr;
};

/**
 * The Eq. 5-14 traffic expression with every grid-invariant input
 * pre-bound: combined technique effects, baseline core CEAs, and the
 * baseline cache per core S1.  trafficAt() is expression-identical
 * to relativeTraffic() — the scalar entry point delegates here so
 * there is exactly one copy of the model math.
 */
class TrafficKernel
{
  public:
    /** @pre baseline.validate() holds. */
    TrafficKernel(const CmpConfig &baseline,
                  const TechniqueEffects &effects);

    /**
     * Relative traffic M2/M1 at `cores` cores on a `total_ceas` die
     * for a workload with exponent -neg_alpha (pass the negated
     * alpha; the power law raises to -alpha and negation is exact).
     * Returns +infinity for infeasible configurations.
     */
    double trafficAt(double total_ceas, double neg_alpha,
                     double cores) const;

    const TechniqueEffects &
    effects() const
    {
        return effects_;
    }

    /** Baseline cache per core S1. */
    double
    baselineCachePerCore() const
    {
        return s1_;
    }

  private:
    TechniqueEffects effects_;
    double base_core_ceas_;
    double s1_;
};

/**
 * Per-grid solver: validates the shared baseline and composes the
 * techniques once, then solves individual points bit-identically to
 * the scalar entry points.  Point solves are const and touch no
 * shared mutable state, so a parallel sweep can share one solver
 * across tasks.
 */
class BatchSolver
{
  public:
    /** Binds grid invariants; fatal on an invalid baseline. */
    BatchSolver(const CmpConfig &baseline,
                const std::vector<Technique> &techniques);

    /** Bit-identical twin of solveSupportableCores() for one point. */
    SolveResult solveSupportable(double alpha, double total_ceas,
                                 double traffic_budget) const;

    /** Bit-identical twin of solveThroughputOptimal() (enforce =
     *  true) / solveThroughputUnconstrained() (enforce = false). */
    ThroughputSolveResult
    solveThroughput(const ThroughputModelParams &params, double alpha,
                    double total_ceas, double traffic_budget,
                    bool enforce_budget) const;

    /** Bit-identical twin of relativeTraffic() for one point. */
    double traffic(double alpha, double total_ceas,
                   double traffic_budget, double cores) const;

    const TrafficKernel &
    kernel() const
    {
        return kernel_;
    }

  private:
    /** Scalar validateScenario() for one point (fatal on failure). */
    void validatePoint(double alpha, double total_ceas,
                       double traffic_budget) const;

    CmpConfig baseline_;
    TrafficKernel kernel_;
};

/**
 * Evaluates relativeTraffic over the whole grid at the given
 * per-point core counts into the caller-owned `traffic_out` column —
 * the flat-loop building block for traffic-surface sweeps.
 */
void evaluateTrafficBatch(const BatchGrid &grid, const double *cores,
                          double *traffic_out);

/** solveSupportableCores() over the whole grid, one call. */
void solveSupportableBatch(const BatchGrid &grid,
                           const SupportableBatchOut &out);

/** solveThroughputOptimal() over the whole grid, one call. */
void solveThroughputBatch(const BatchGrid &grid,
                          const ThroughputModelParams &params,
                          const ThroughputBatchOut &out);

/** solveThroughputUnconstrained() over the whole grid, one call. */
void solveThroughputUnconstrainedBatch(
    const BatchGrid &grid, const ThroughputModelParams &params,
    const ThroughputBatchOut &out);

/**
 * trySolveSupportableCores() over the whole grid: per-point
 * Expected<T> semantics (scenario classification, the
 * FAULT_POINT("model.solve") injection point, and the inconsistency
 * check) land in `status`; output columns are written only for ok
 * points.  Returns the number of ok points.
 */
std::size_t trySolveSupportableBatch(const BatchGrid &grid,
                                     const SupportableBatchOut &out,
                                     const BatchPointStatus &status);

/**
 * trySolveThroughputOptimal() over the whole grid with per-point
 * status, mirroring trySolveSupportableBatch().  Returns the number
 * of ok points.
 */
std::size_t trySolveThroughputBatch(const BatchGrid &grid,
                                    const ThroughputModelParams &params,
                                    const ThroughputBatchOut &out,
                                    const BatchPointStatus &status);

} // namespace bwwall

#endif // BWWALL_MODEL_BATCH_SOLVER_HH
