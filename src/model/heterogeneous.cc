#include "model/heterogeneous.hh"

#include <cmath>
#include <limits>

#include "model/power_law.hh"
#include "util/logging.hh"

namespace bwwall {

namespace {

constexpr double kInfinity = std::numeric_limits<double>::infinity();

void
validate(const HeterogeneousScenario &scenario)
{
    scenario.baseline.validate();
    if (scenario.alpha <= 0.0)
        fatal("heterogeneous scenario requires alpha > 0");
    if (scenario.totalCeas <= 0.0)
        fatal("heterogeneous scenario requires a positive die");
    if (scenario.trafficBudget <= 0.0)
        fatal("heterogeneous scenario requires a positive budget");
    for (const CoreClass *core_class :
         {&scenario.big, &scenario.little}) {
        if (core_class->areaCeas <= 0.0)
            fatal("core class '", core_class->name,
                  "' requires positive area");
        if (core_class->performance <= 0.0)
            fatal("core class '", core_class->name,
                  "' requires positive performance");
        if (core_class->trafficRate <= 0.0)
            fatal("core class '", core_class->name,
                  "' requires a positive traffic rate");
    }
}

} // namespace

CoreClass
baselineCoreClass()
{
    return {"big", 1.0, 1.0, 1.0};
}

CoreClass
littleCoreClass()
{
    // Kumar et al. (the paper's smaller-core citations): EV5-class
    // cores are roughly an order of magnitude smaller than EV8-class
    // at roughly half the throughput; slower cores stretch their
    // traffic over time proportionally.
    return {"little", 1.0 / 9.0, 0.5, 0.5};
}

double
heterogeneousTraffic(const HeterogeneousScenario &scenario,
                     double big_cores, double little_cores)
{
    validate(scenario);
    if (big_cores < 0.0 || little_cores < 0.0)
        fatal("core counts must be non-negative");
    if (big_cores + little_cores <= 0.0)
        fatal("heterogeneousTraffic requires at least one core");

    const TechniqueEffects effects =
        combineEffects(scenario.techniques);
    if (effects.sharedFraction >= 0.0)
        fatal("data sharing is not supported in the heterogeneous "
              "extension");

    const double core_area = effects.coreAreaFraction *
        (big_cores * scenario.big.areaCeas +
         little_cores * scenario.little.areaCeas);
    if (core_area > scenario.totalCeas)
        return kInfinity;

    const double cache_ceas =
        (scenario.totalCeas - core_area) * effects.cacheDensity +
        effects.stackedLayers * scenario.totalCeas *
            effects.stackedDensity;
    if (cache_ceas <= 0.0)
        return kInfinity;

    // Traffic-equivalent cores: each class weighted by its rate.
    const double equivalent_cores =
        big_cores * scenario.big.trafficRate +
        little_cores * scenario.little.trafficRate;

    const double effective_cache_per_core =
        cache_ceas * effects.capacityFactor / equivalent_cores;

    const PowerLaw law(scenario.alpha);
    return (equivalent_cores / scenario.baseline.coreCeas) *
           law.trafficScale(effective_cache_per_core /
                            scenario.baseline.cachePerCore()) *
           effects.directFactor;
}

Expected<HeterogeneousResult>
trySolveHeterogeneous(const HeterogeneousScenario &scenario)
{
    if (!std::isfinite(scenario.alpha) ||
        !std::isfinite(scenario.totalCeas) ||
        !std::isfinite(scenario.trafficBudget) ||
        !std::isfinite(scenario.baseline.totalCeas) ||
        !std::isfinite(scenario.baseline.coreCeas)) {
        return Error{ErrorCategory::NonFinite,
                     "heterogeneous scenario contains a non-finite "
                     "field"};
    }
    if (scenario.baseline.totalCeas <= 0.0 ||
        scenario.baseline.coreCeas <= 0.0 ||
        scenario.baseline.cacheCeas() < 0.0) {
        return Error{ErrorCategory::InvalidInput,
                     "heterogeneous scenario baseline is invalid"};
    }
    if (scenario.alpha <= 0.0 || scenario.totalCeas <= 0.0 ||
        scenario.trafficBudget <= 0.0) {
        return Error{ErrorCategory::InvalidInput,
                     "heterogeneous scenario requires positive "
                     "alpha, die area, and budget"};
    }
    for (const CoreClass *core_class :
         {&scenario.big, &scenario.little}) {
        if (!std::isfinite(core_class->areaCeas) ||
            !std::isfinite(core_class->performance) ||
            !std::isfinite(core_class->trafficRate)) {
            return Error{ErrorCategory::NonFinite,
                         "core class '" + core_class->name +
                             "' contains a non-finite field"};
        }
        if (core_class->areaCeas <= 0.0 ||
            core_class->performance <= 0.0 ||
            core_class->trafficRate <= 0.0) {
            return Error{ErrorCategory::InvalidInput,
                         "core class '" + core_class->name +
                             "' requires positive area, "
                             "performance, and traffic rate"};
        }
    }
    if (combineEffects(scenario.techniques).sharedFraction >= 0.0) {
        return Error{ErrorCategory::InvalidInput,
                     "data sharing is not supported in the "
                     "heterogeneous extension"};
    }
    HeterogeneousResult result = solveHeterogeneous(scenario);
    if (result.bigCores + result.littleCores > 0 &&
        (!std::isfinite(result.throughput) ||
         !std::isfinite(result.traffic))) {
        return Error{ErrorCategory::NonConvergence,
                     "heterogeneous search produced a non-finite "
                     "optimum"};
    }
    return result;
}

HeterogeneousResult
solveHeterogeneous(const HeterogeneousScenario &scenario)
{
    validate(scenario);
    const TechniqueEffects effects =
        combineEffects(scenario.techniques);

    const double effective_big_area =
        scenario.big.areaCeas * effects.coreAreaFraction;
    const double effective_little_area =
        scenario.little.areaCeas * effects.coreAreaFraction;
    const int max_big = static_cast<int>(
        std::floor(scenario.totalCeas / effective_big_area + 1e-9));

    HeterogeneousResult best;
    for (int big = 0; big <= max_big; ++big) {
        // For fixed big count, traffic is monotone increasing in the
        // little count: binary-search the largest feasible count
        // instead of scanning.
        const double big_area = big * effective_big_area;
        if (big_area > scenario.totalCeas)
            break;
        int lo = (big == 0) ? 1 : 0;
        int hi = static_cast<int>(std::floor(
            (scenario.totalCeas - big_area) / effective_little_area +
            1e-9));
        if (lo > hi)
            continue;
        auto feasible = [&](int little) {
            return heterogeneousTraffic(
                       scenario, static_cast<double>(big),
                       static_cast<double>(little)) <=
                   scenario.trafficBudget;
        };
        if (!feasible(lo))
            continue;
        while (lo < hi) {
            const int mid = lo + (hi - lo + 1) / 2;
            if (feasible(mid))
                lo = mid;
            else
                hi = mid - 1;
        }
        const int little = lo;
        const double throughput = big * scenario.big.performance +
            little * scenario.little.performance;
        const bool better = throughput > best.throughput + 1e-12 ||
            (std::abs(throughput - best.throughput) <= 1e-12 &&
             big + little < best.bigCores + best.littleCores);
        if (better) {
            best.bigCores = big;
            best.littleCores = little;
            best.throughput = throughput;
            best.traffic = heterogeneousTraffic(
                scenario, static_cast<double>(big),
                static_cast<double>(little));
            best.cacheCeas = scenario.totalCeas - big_area -
                little * effective_little_area;
        }
    }
    return best;
}

} // namespace bwwall
