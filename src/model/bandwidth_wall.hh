/**
 * @file
 * The bandwidth-wall scaling model: relative memory traffic of a
 * candidate CMP configuration (paper Equations 5-14) and the solver
 * for the supportable core count under a traffic budget.
 */

#ifndef BWWALL_MODEL_BANDWIDTH_WALL_HH
#define BWWALL_MODEL_BANDWIDTH_WALL_HH

#include <optional>
#include <vector>

#include "model/cmp_config.hh"
#include "model/technique.hh"
#include "util/error.hh"

namespace bwwall {

/** One what-if: a die budget, workload, and technique set. */
struct ScalingScenario
{
    /** Reference configuration M1 is measured on (paper Sec. 5.1). */
    CmpConfig baseline = niagara2Baseline();

    /** Workload cache-sensitivity exponent. */
    double alpha = 0.5;

    /** Die area of the candidate configuration in CEAs (paper's N2). */
    double totalCeas = 32.0;

    /**
     * Allowed traffic relative to the baseline (paper's B); 1 keeps
     * the memory traffic envelope fixed.
     */
    double trafficBudget = 1.0;

    /** Bandwidth-conservation techniques in effect. */
    std::vector<Technique> techniques;
};

/**
 * Relative memory traffic M2/M1 of the scenario with `cores` cores
 * (paper Eq. 5 extended per technique).  Returns +infinity for
 * infeasible configurations (no cache left, cores exceed the die).
 */
double relativeTraffic(const ScalingScenario &scenario, double cores);

/** Solution of a supportable-core-count query. */
struct SolveResult
{
    /** Largest whole core count within the budget (0 if none). */
    int supportableCores = 0;

    /** Real-valued solution of M(P) = budget (for smooth curves). */
    double fractionalCores = 0.0;

    /** M2/M1 at the integer solution. */
    double trafficAtSolution = 0.0;

    /** Fraction of the base die occupied by cores at the solution. */
    double coreAreaFraction = 0.0;

    /** Physical cache CEAs per core at the integer solution. */
    double cachePerCore = 0.0;
};

/**
 * Finds the largest core count whose traffic stays within the budget.
 * Uses the monotonicity of M2/M1 in the core count.
 */
SolveResult solveSupportableCores(const ScalingScenario &scenario);

/**
 * Classifies a bad scenario without terminating: non-finite fields
 * are NonFinite, range violations are InvalidInput, and a healthy
 * scenario is nullopt.  The fatal() path (validateScenario inside
 * the solvers) keeps its contract for CLI-style callers.
 */
std::optional<Error> scenarioError(const ScalingScenario &scenario);

/**
 * scenarioError() on decomposed fields — the batch solver's per-point
 * classification.  scenarioError() delegates here so the scalar and
 * SoA paths share one check order and one set of messages.
 */
std::optional<Error> scenarioPointError(const CmpConfig &baseline,
                                        double alpha,
                                        double total_ceas,
                                        double traffic_budget);

/**
 * Non-fatal twin of solveSupportableCores() for servers and tools
 * that must degrade instead of exiting: scenarioError() failures
 * come back as Expected errors, and a solver that produces a
 * non-finite or budget-violating solution (or an injected
 * FAULT_POINT("model.solve") firing) reports NonConvergence.
 */
Expected<SolveResult>
trySolveSupportableCores(const ScalingScenario &scenario);

/** Largest physically placeable core count for the scenario. */
double maxPlaceableCores(const ScalingScenario &scenario);

/**
 * Smallest shared-data fraction that brings the scenario's traffic
 * with `cores` cores inside the budget (paper Figure 13 inverted).
 * Returns a value > 1 when even full sharing is not enough.
 */
double requiredSharedFraction(const ScalingScenario &scenario,
                              double cores);

} // namespace bwwall

#endif // BWWALL_MODEL_BANDWIDTH_WALL_HH
