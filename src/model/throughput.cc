#include "model/throughput.hh"

#include <cmath>

#include "model/power_law.hh"
#include "util/logging.hh"

namespace bwwall {

double
relativeCorePerformance(const ThroughputModelParams &params,
                        double alpha, double cache_per_core_ratio)
{
    if (params.memoryStallShare < 0.0 ||
        params.memoryStallShare >= 1.0) {
        fatal("memory stall share must be in [0, 1)");
    }
    if (cache_per_core_ratio <= 0.0)
        fatal("cache-per-core ratio must be positive");
    const PowerLaw law(alpha);
    // Stall time scales with the miss (traffic) rate; compute time is
    // the remaining (1 - k) share and does not change with S.
    const double k =
        params.memoryStallShare / (1.0 - params.memoryStallShare);
    return (1.0 + k) /
           (1.0 + k * law.trafficScale(cache_per_core_ratio));
}

namespace {

ThroughputSolveResult
solveImpl(const ScalingScenario &scenario,
          const ThroughputModelParams &params, bool enforce_budget)
{
    const TechniqueEffects effects =
        combineEffects(scenario.techniques);
    const double max_cores = maxPlaceableCores(scenario);
    const int max_whole =
        static_cast<int>(std::floor(max_cores + 1e-9));

    ThroughputSolveResult best;
    for (int cores = 1; cores <= max_whole; ++cores) {
        const double traffic =
            relativeTraffic(scenario, static_cast<double>(cores));
        if (!std::isfinite(traffic))
            continue;
        if (enforce_budget && traffic > scenario.trafficBudget)
            break; // traffic is monotone in cores: nothing above fits

        // Effective cache per core, consistent with the traffic
        // model (capacity factors included).
        const double core_area = cores * effects.coreAreaFraction;
        const double cache_ceas =
            (scenario.totalCeas - core_area) * effects.cacheDensity +
            effects.stackedLayers * scenario.totalCeas *
                effects.stackedDensity;
        if (cache_ceas <= 0.0)
            continue;
        const double ratio = cache_ceas * effects.capacityFactor /
            (static_cast<double>(cores) *
             scenario.baseline.cachePerCore());
        const double throughput = static_cast<double>(cores) *
            relativeCorePerformance(params, scenario.alpha, ratio);
        if (throughput > best.throughput) {
            best.cores = cores;
            best.throughput = throughput;
            best.traffic = traffic;
        }
    }

    if (enforce_budget && best.cores > 0 &&
        best.cores < max_whole) {
        // Budget-limited iff one more core would break the budget
        // while still improving raw throughput.
        const double next_traffic = relativeTraffic(
            scenario, static_cast<double>(best.cores + 1));
        best.bandwidthLimited =
            next_traffic > scenario.trafficBudget;
    }
    return best;
}

} // namespace

ThroughputSolveResult
solveThroughputOptimal(const ScalingScenario &scenario,
                       const ThroughputModelParams &params)
{
    return solveImpl(scenario, params, true);
}

Expected<ThroughputSolveResult>
trySolveThroughputOptimal(const ScalingScenario &scenario,
                          const ThroughputModelParams &params)
{
    if (std::optional<Error> bad = scenarioError(scenario))
        return *bad;
    if (!std::isfinite(params.memoryStallShare)) {
        return Error{ErrorCategory::NonFinite,
                     "memory stall share is not finite"};
    }
    if (params.memoryStallShare < 0.0 ||
        params.memoryStallShare >= 1.0) {
        return Error{ErrorCategory::InvalidInput,
                     "memory stall share must be in [0, 1)"};
    }
    ThroughputSolveResult result =
        solveImpl(scenario, params, true);
    if (result.cores > 0 && (!std::isfinite(result.throughput) ||
                             !std::isfinite(result.traffic))) {
        return Error{ErrorCategory::NonConvergence,
                     "throughput search produced a non-finite "
                     "optimum"};
    }
    return result;
}

ThroughputSolveResult
solveThroughputUnconstrained(const ScalingScenario &scenario,
                             const ThroughputModelParams &params)
{
    return solveImpl(scenario, params, false);
}

} // namespace bwwall
