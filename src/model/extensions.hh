/**
 * @file
 * Model extensions beyond the paper's evaluated configuration space,
 * each motivated by a caveat the paper itself states (its Section 3):
 *
 *  - multithreaded (SMT) cores: "our study tends to underestimate
 *    the severity of the bandwidth wall problem compared to a system
 *    with multithreaded cores" — smtCores() models a core that keeps
 *    the memory system busier per unit area;
 *  - workload drift: "past trends point to the contrary, as the
 *    working set of the average workload has been increasing" —
 *    WorkloadDrift grows the per-core traffic baseline each
 *    generation;
 *  - bandwidth envelopes: the paper quotes the ITRS projection of
 *    ~10% pin growth per year; BandwidthEnvelope captures named
 *    budget-growth models instead of a bare constant.
 */

#ifndef BWWALL_MODEL_EXTENSIONS_HH
#define BWWALL_MODEL_EXTENSIONS_HH

#include <string>
#include <vector>

#include "model/scaling_study.hh"
#include "model/technique.hh"

namespace bwwall {

/**
 * Simultaneous multithreading: threads_per_core threads share one
 * core.  Utilisation rises (the core idles less, generating more
 * traffic per unit time) but sub-linearly — each extra thread
 * contributes marginal_traffic of a full thread's traffic.  The
 * result is an anti-technique: a direct factor > 1.
 *
 * @param threads_per_core >= 1.
 * @param marginal_traffic in (0, 1]: traffic contribution of each
 * thread beyond the first, relative to the first.
 */
Technique smtCores(unsigned threads_per_core,
                   double marginal_traffic = 0.7);

/**
 * Smaller cores with an explicit interconnect charge.  The paper's
 * Section 6.1 warns that "with increasingly smaller cores, the
 * interconnection between cores (routers, links, buses, etc.)
 * becomes increasingly larger and more complex" — this variant
 * charges every core a fixed router/link area on top of its shrunken
 * logic, so the cache reclaim saturates and the technique's already
 * weak benefit erodes further.
 *
 * @param core_area_fraction Logic area of one small core relative to
 * the baseline core, in (0, 1].
 * @param router_area_ceas Interconnect area charged per core, in
 * CEAs (>= 0).
 */
Technique smallerCoresWithInterconnect(double core_area_fraction,
                                       double router_area_ceas);

/** How the per-core traffic baseline drifts across generations. */
struct WorkloadDrift
{
    /**
     * Multiplier on generated traffic per generation (1 = the
     * paper's stationary-workload assumption; > 1 = growing working
     * sets).
     */
    double trafficGrowthPerGeneration = 1.0;

    /** Additive drift of alpha per generation (usually <= 0). */
    double alphaDriftPerGeneration = 0.0;
};

/** A named off-chip bandwidth growth model. */
struct BandwidthEnvelope
{
    std::string name;
    /** Budget multiplier per technology generation. */
    double growthPerGeneration = 1.0;
};

/** Constant traffic: the paper's default envelope. */
BandwidthEnvelope constantEnvelope();

/**
 * ITRS-like pins: ~10%/year pin growth over an 18-month generation
 * (the paper's quoted projection), ~1.15x per generation.
 */
BandwidthEnvelope itrsPinEnvelope();

/** Optimistic envelope: 1.5x per generation (paper Section 5.1). */
BandwidthEnvelope optimisticEnvelope();

/** Parameters of an extended multi-generation study. */
struct ExtendedStudyParams
{
    ScalingStudyParams base;
    WorkloadDrift drift;
    BandwidthEnvelope envelope = constantEnvelope();
};

/**
 * Runs the study with drift and envelope applied per generation.
 * With default drift and the constant envelope this reduces exactly
 * to runScalingStudy().
 */
std::vector<GenerationResult> runExtendedStudy(
    const ExtendedStudyParams &params);

} // namespace bwwall

#endif // BWWALL_MODEL_EXTENSIONS_HH
