#include "model/technique.hh"

#include <algorithm>
#include <sstream>

#include "util/logging.hh"

namespace bwwall {

namespace {

std::string
withParameter(const char *prefix, double value, const char *suffix)
{
    std::ostringstream oss;
    oss << prefix << value << suffix;
    return oss.str();
}

void
requireRatio(double ratio, const char *what)
{
    if (ratio < 1.0)
        fatal(what, " requires a ratio >= 1, got ", ratio);
}

void
requireFraction(double fraction, const char *what)
{
    if (fraction < 0.0 || fraction >= 1.0)
        fatal(what, " requires a fraction in [0, 1), got ", fraction);
}

} // namespace

Technique
cacheCompression(double compression_ratio)
{
    requireRatio(compression_ratio, "cache compression");
    TechniqueEffects effects;
    effects.capacityFactor = compression_ratio;
    return {withParameter("cache compression ", compression_ratio, "x"),
            "CC", effects};
}

Technique
dramCache(double density)
{
    requireRatio(density, "DRAM cache");
    TechniqueEffects effects;
    effects.cacheDensity = density;
    return {withParameter("DRAM cache ", density, "x"), "DRAM",
            effects};
}

Technique
stackedCache(double layer_density, double layers)
{
    requireRatio(layer_density, "3D-stacked cache density");
    if (layers <= 0.0)
        fatal("3D-stacked cache requires at least one layer");
    TechniqueEffects effects;
    effects.stackedLayers = layers;
    effects.stackedDensity = layer_density;
    return {withParameter("3D-stacked cache ", layer_density,
                          "x-density layer"),
            "3D", effects};
}

Technique
unusedDataFilter(double unused_fraction)
{
    requireFraction(unused_fraction, "unused-data filtering");
    TechniqueEffects effects;
    effects.capacityFactor = 1.0 / (1.0 - unused_fraction);
    return {withParameter("unused-data filtering ",
                          unused_fraction * 100.0, "% unused"),
            "Fltr", effects};
}

Technique
smallerCores(double area_fraction)
{
    if (area_fraction <= 0.0 || area_fraction > 1.0)
        fatal("smaller cores require an area fraction in (0, 1]");
    TechniqueEffects effects;
    effects.coreAreaFraction = area_fraction;
    return {withParameter("smaller cores ", 1.0 / area_fraction,
                          "x smaller"),
            "SmCo", effects};
}

Technique
linkCompression(double compression_ratio)
{
    requireRatio(compression_ratio, "link compression");
    TechniqueEffects effects;
    effects.directFactor = 1.0 / compression_ratio;
    return {withParameter("link compression ", compression_ratio, "x"),
            "LC", effects};
}

Technique
sectoredCache(double unused_fraction)
{
    requireFraction(unused_fraction, "sectored cache");
    TechniqueEffects effects;
    effects.directFactor = 1.0 - unused_fraction;
    return {withParameter("sectored cache ", unused_fraction * 100.0,
                          "% unused"),
            "Sect", effects};
}

Technique
smallCacheLines(double unused_fraction)
{
    requireFraction(unused_fraction, "small cache lines");
    TechniqueEffects effects;
    effects.capacityFactor = 1.0 / (1.0 - unused_fraction);
    effects.directFactor = 1.0 - unused_fraction;
    return {withParameter("small cache lines ",
                          unused_fraction * 100.0, "% unused"),
            "SmCl", effects};
}

Technique
cacheLinkCompression(double compression_ratio)
{
    requireRatio(compression_ratio, "cache+link compression");
    TechniqueEffects effects;
    effects.capacityFactor = compression_ratio;
    effects.directFactor = 1.0 / compression_ratio;
    return {withParameter("cache+link compression ", compression_ratio,
                          "x"),
            "CC/LC", effects};
}

Technique
dataSharing(double shared_fraction)
{
    if (shared_fraction < 0.0 || shared_fraction > 1.0)
        fatal("data sharing requires a fraction in [0, 1]");
    TechniqueEffects effects;
    effects.sharedFraction = shared_fraction;
    return {withParameter("data sharing ", shared_fraction * 100.0,
                          "% shared"),
            "Share", effects};
}

Technique
dataSharingPrivateCaches(double shared_fraction)
{
    if (shared_fraction < 0.0 || shared_fraction > 1.0)
        fatal("data sharing requires a fraction in [0, 1]");
    TechniqueEffects effects;
    effects.sharedFraction = shared_fraction;
    effects.sharingPoolsCache = false;
    return {withParameter("data sharing (private caches) ",
                          shared_fraction * 100.0, "% shared"),
            "Share/priv", effects};
}

TechniqueEffects
combineEffects(const std::vector<Technique> &techniques)
{
    TechniqueEffects combined;
    bool any_dram = false;
    double dram_density = 1.0;
    double standalone_stack_density = 1.0;

    for (const Technique &technique : techniques) {
        const TechniqueEffects &effects = technique.effects();
        combined.capacityFactor *= effects.capacityFactor;
        combined.directFactor *= effects.directFactor;
        combined.coreAreaFraction *= effects.coreAreaFraction;
        combined.stackedLayers += effects.stackedLayers;
        if (effects.cacheDensity > 1.0) {
            any_dram = true;
            dram_density = std::max(dram_density, effects.cacheDensity);
        }
        standalone_stack_density =
            std::max(standalone_stack_density, effects.stackedDensity);
        if (effects.sharedFraction >= 0.0) {
            if (combined.sharedFraction >= 0.0)
                fatal("at most one data-sharing technique can be "
                      "combined");
            combined.sharedFraction = effects.sharedFraction;
            combined.sharingPoolsCache = effects.sharingPoolsCache;
        }
    }

    combined.cacheDensity = any_dram ? dram_density : 1.0;
    // Paper composition rule: a stacked die is built in the densest
    // memory technology available in the configuration.
    combined.stackedDensity =
        any_dram ? std::max(dram_density, standalone_stack_density)
                 : standalone_stack_density;
    return combined;
}

} // namespace bwwall
