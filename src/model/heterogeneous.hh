/**
 * @file
 * Heterogeneous-CMP extension of the bandwidth-wall model.
 *
 * The paper restricts itself to uniform cores, noting that "a
 * heterogeneous CMP has the potential of being more area efficient
 * overall, and this allows caches to be larger and generates less
 * memory traffic" but that the design space was too large for its
 * model (its Section 3).  This extension covers the two-class case:
 * big cores (the paper's 1-CEA baseline core) plus little cores with
 * configurable area, performance, and traffic rate.  Traffic follows
 * the same power law with the cache shared per traffic-equivalent
 * core; the solver maximises aggregate throughput subject to the
 * traffic budget.
 */

#ifndef BWWALL_MODEL_HETEROGENEOUS_HH
#define BWWALL_MODEL_HETEROGENEOUS_HH

#include <string>
#include <vector>

#include "model/cmp_config.hh"
#include "model/technique.hh"
#include "util/error.hh"

namespace bwwall {

/** One core class of a heterogeneous CMP. */
struct CoreClass
{
    std::string name = "core";

    /** Die area in CEAs (the baseline big core is 1). */
    double areaCeas = 1.0;

    /** Throughput relative to the baseline core. */
    double performance = 1.0;

    /**
     * Memory traffic generated per unit of time relative to the
     * baseline core.  Slower cores stretch their traffic over time,
     * so trafficRate typically tracks performance.
     */
    double trafficRate = 1.0;
};

/** The baseline 1-CEA core. */
CoreClass baselineCoreClass();

/**
 * A Kumar-style little core: ~9x smaller, ~half the performance,
 * traffic stretched accordingly (the paper's Section 6.1 argument
 * that simpler cores "naturally fit within a lower bandwidth
 * envelope").
 */
CoreClass littleCoreClass();

/** A heterogeneous what-if. */
struct HeterogeneousScenario
{
    CmpConfig baseline = niagara2Baseline();
    double alpha = 0.5;
    double totalCeas = 32.0;
    double trafficBudget = 1.0;

    CoreClass big = baselineCoreClass();
    CoreClass little = littleCoreClass();

    /** Bandwidth-conservation techniques, as in ScalingScenario. */
    std::vector<Technique> techniques;
};

/**
 * Relative traffic of a mix of big_cores and little_cores: the
 * uniform model (paper Eq. 5) evaluated at the traffic-equivalent
 * core count, with the cache shared per traffic-equivalent core.
 * Returns +infinity when the mix does not fit on the die.
 */
double heterogeneousTraffic(const HeterogeneousScenario &scenario,
                            double big_cores, double little_cores);

/** Best mix found for a heterogeneous scenario. */
struct HeterogeneousResult
{
    int bigCores = 0;
    int littleCores = 0;

    /** Aggregate throughput in baseline-core units. */
    double throughput = 0.0;

    /** Relative traffic at the chosen mix. */
    double traffic = 0.0;

    /** Physical cache CEAs remaining on the base die. */
    double cacheCeas = 0.0;
};

/**
 * Exhaustively searches integer mixes maximising throughput subject
 * to the traffic budget.  Ties prefer fewer total cores (cheaper).
 */
HeterogeneousResult solveHeterogeneous(
    const HeterogeneousScenario &scenario);

/**
 * Non-fatal twin of solveHeterogeneous(): non-finite fields are
 * NonFinite; range violations, and the unsupported data-sharing
 * technique, are InvalidInput; a search ending on a non-finite
 * optimum is NonConvergence.
 */
Expected<HeterogeneousResult>
trySolveHeterogeneous(const HeterogeneousScenario &scenario);

} // namespace bwwall

#endif // BWWALL_MODEL_HETEROGENEOUS_HH
