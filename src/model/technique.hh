/**
 * @file
 * Bandwidth-conservation techniques as composable model transforms
 * (paper Section 6).
 *
 * Every technique decomposes into a handful of orthogonal effects on
 * the traffic equation M2/M1 = (P2/P1) * (S2_eff/S1)^-alpha * direct:
 *
 *  - capacityFactor   multiplies the effective cache per core
 *                     ("indirect" techniques: CC, Fltr, SmCl's
 *                     capacity side, paper Eq. 8);
 *  - directFactor     multiplies the traffic itself ("direct"
 *                     techniques: LC, Sect, SmCl's traffic side);
 *  - cacheDensity     multiplies on-die cache area (DRAM caches);
 *  - stackedLayers    adds whole dies of cache area (3D stacking,
 *                     paper Eq. 9) at stackedDensity — unless a DRAM
 *                     technique is also present, in which case the
 *                     stacked die inherits the DRAM density (the
 *                     composition that reproduces the paper's
 *                     183-core combined result);
 *  - coreAreaFraction shrinks cores, freeing die area for cache
 *                     (paper Eq. 11);
 *  - sharedFraction   models inter-thread data sharing with a shared
 *                     cache (paper Eq. 13-14).
 */

#ifndef BWWALL_MODEL_TECHNIQUE_HH
#define BWWALL_MODEL_TECHNIQUE_HH

#include <string>
#include <vector>

namespace bwwall {

/** Raw effect parameters of one technique. */
struct TechniqueEffects
{
    /** Multiplier on effective cache capacity per core. */
    double capacityFactor = 1.0;

    /** Multiplier on generated off-chip traffic. */
    double directFactor = 1.0;

    /** Density multiplier of on-die cache storage. */
    double cacheDensity = 1.0;

    /** Extra cache-only dies stacked on top (usually 0 or 1). */
    double stackedLayers = 0.0;

    /** Density of the stacked dies when no DRAM technique is present. */
    double stackedDensity = 1.0;

    /** Relative area of one core (1 = unchanged, <1 = smaller). */
    double coreAreaFraction = 1.0;

    /** Fraction of cached data shared by all threads; <0 disables. */
    double sharedFraction = -1.0;

    /**
     * Whether sharing pools the cache (shared L2: one copy serves
     * all threads) or private caches replicate shared lines and
     * forfeit the capacity benefit (the paper's footnote 1).
     */
    bool sharingPoolsCache = true;
};

/** A named, parameterised bandwidth-conservation technique. */
class Technique
{
  public:
    Technique(std::string name, std::string label,
              TechniqueEffects effects)
        : name_(std::move(name)), label_(std::move(label)),
          effects_(effects)
    {}

    /** Full descriptive name, e.g. "cache compression 2.0x". */
    const std::string &name() const { return name_; }

    /** Paper's short label, e.g. "CC" (its Table 2). */
    const std::string &label() const { return label_; }

    const TechniqueEffects &effects() const { return effects_; }

  private:
    std::string name_;
    std::string label_;
    TechniqueEffects effects_;
};

/** @name Technique factories (paper Section 6)
 *  @{ */

/** Cache compression with the given compression ratio (Sec. 6.1). */
Technique cacheCompression(double compression_ratio);

/** DRAM (eDRAM) L2 with a density gain over SRAM (Sec. 6.1). */
Technique dramCache(double density);

/**
 * One stacked cache-only die (Sec. 6.1).  layer_density = 1 for an
 * SRAM layer, 8 or 16 for a DRAM layer (used when no on-die DRAM
 * technique is combined in).
 */
Technique stackedCache(double layer_density = 1.0,
                       double layers = 1.0);

/** Unused-data filtering; unused_fraction of words never used. */
Technique unusedDataFilter(double unused_fraction);

/** Smaller cores occupying area_fraction of a baseline core. */
Technique smallerCores(double area_fraction);

/** Link compression with the given ratio (Sec. 6.2). */
Technique linkCompression(double compression_ratio);

/** Sectored cache fetching only used sectors (Sec. 6.2). */
Technique sectoredCache(double unused_fraction);

/** Word-sized cache lines: dual capacity+traffic effect (Sec. 6.3). */
Technique smallCacheLines(double unused_fraction);

/** Combined cache+link compression (Sec. 6.3). */
Technique cacheLinkCompression(double compression_ratio);

/** Data sharing across threads with a shared cache (Sec. 6.3). */
Technique dataSharing(double shared_fraction);

/**
 * Data sharing with *private* per-core caches (the paper's footnote
 * 1): shared blocks are replicated in every sharer's cache, so only
 * the direct fetch reduction survives — the cache capacity per core
 * is unchanged.
 */
Technique dataSharingPrivateCaches(double shared_fraction);

/** @} */

/**
 * The combined effects of a set of techniques under the paper's
 * composition rules: capacity and direct factors multiply; core area
 * fractions multiply; stacked layers add; on-die density is the max
 * of the DRAM densities; the stacked die uses the DRAM density when
 * any DRAM technique is present, otherwise its own configured
 * density; at most one data-sharing fraction may be present.
 */
TechniqueEffects combineEffects(const std::vector<Technique> &techniques);

} // namespace bwwall

#endif // BWWALL_MODEL_TECHNIQUE_HH
