/**
 * @file
 * Multi-generation scaling studies (paper Figures 3 and 15-17).
 *
 * Each technology generation doubles the transistor budget (the die
 * area in CEAs); the study asks, generation by generation, how many
 * cores a technique set can support without exceeding the memory
 * traffic budget.
 */

#ifndef BWWALL_MODEL_SCALING_STUDY_HH
#define BWWALL_MODEL_SCALING_STUDY_HH

#include <string>
#include <vector>

#include "model/assumptions.hh"
#include "model/bandwidth_wall.hh"

namespace bwwall {

class MetricsRegistry;

/** One generation's outcome for one configuration. */
struct GenerationResult
{
    /** Transistor scaling relative to the baseline (2, 4, 8, 16...). */
    double scale = 1.0;

    /** Die area in CEAs at this generation. */
    double totalCeas = 0.0;

    /** Supportable cores within the traffic budget. */
    int cores = 0;

    /** Fraction of the base die spent on cores. */
    double coreAreaFraction = 0.0;
};

/** Parameters of a multi-generation study. */
struct ScalingStudyParams
{
    CmpConfig baseline = niagara2Baseline();
    double alpha = 0.5;

    /** Number of future generations (die doubles each time). */
    int generations = 4;

    /**
     * Growth of the traffic budget per generation (1 = constant
     * traffic; 1.1 would allow 10% more traffic each generation).
     */
    double bandwidthGrowthPerGeneration = 1.0;

    /** Techniques applied in every generation. */
    std::vector<Technique> techniques;

    /**
     * Worker threads evaluating generations (and, in figure15Study,
     * technique×assumption cells) concurrently; 0 defers to
     * BWWALL_JOBS / hardware_concurrency().  Every cell is a pure
     * function of the parameters, so the results are bit-identical
     * for any job count.
     */
    unsigned jobs = 0;

    /** Optional sink for run metrics ("scaling.*"); may be null. */
    MetricsRegistry *metrics = nullptr;
};

/** Runs the study; result[g] is generation g+1 (scale 2^(g+1)). */
std::vector<GenerationResult> runScalingStudy(
    const ScalingStudyParams &params);

/** Proportional ("IDEAL") scaling: cores double with the die. */
std::vector<GenerationResult> idealScaling(const CmpConfig &baseline,
                                           int generations);

/** One technique evaluated at all three assumption levels. */
struct TechniqueCandle
{
    std::string label;
    std::vector<GenerationResult> pessimistic;
    std::vector<GenerationResult> realistic;
    std::vector<GenerationResult> optimistic;
};

/**
 * Figure 15: every Table 2 technique across the generations with its
 * pessimistic/realistic/optimistic candle.
 */
std::vector<TechniqueCandle> figure15Study(
    const ScalingStudyParams &base_params);

/** A named technique combination (paper Figure 16 x-axis). */
struct TechniqueCombination
{
    std::string name;
    /** Table 2 labels combined, e.g. {"CC/LC", "DRAM", "3D"}. */
    std::vector<std::string> labels;
};

/** The paper's Figure 16 combinations, in x-axis order. */
const std::vector<TechniqueCombination> &figure16Combinations();

/** Builds a combination's techniques at an assumption level. */
std::vector<Technique> makeCombination(
    const TechniqueCombination &combination, Assumption assumption);

} // namespace bwwall

#endif // BWWALL_MODEL_SCALING_STUDY_HH
