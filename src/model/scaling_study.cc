#include "model/scaling_study.hh"

#include <cmath>

#include "util/logging.hh"

namespace bwwall {

std::vector<GenerationResult>
runScalingStudy(const ScalingStudyParams &params)
{
    if (params.generations < 1)
        fatal("scaling study requires at least one generation");

    std::vector<GenerationResult> results;
    results.reserve(static_cast<std::size_t>(params.generations));

    for (int generation = 1; generation <= params.generations;
         ++generation) {
        const double scale = std::pow(2.0, generation);

        ScalingScenario scenario;
        scenario.baseline = params.baseline;
        scenario.alpha = params.alpha;
        scenario.totalCeas = params.baseline.totalCeas * scale;
        scenario.trafficBudget =
            std::pow(params.bandwidthGrowthPerGeneration, generation);
        scenario.techniques = params.techniques;

        const SolveResult solved = solveSupportableCores(scenario);

        GenerationResult result;
        result.scale = scale;
        result.totalCeas = scenario.totalCeas;
        result.cores = solved.supportableCores;
        result.coreAreaFraction = solved.coreAreaFraction;
        results.push_back(result);
    }
    return results;
}

std::vector<GenerationResult>
idealScaling(const CmpConfig &baseline, int generations)
{
    baseline.validate();
    std::vector<GenerationResult> results;
    for (int generation = 1; generation <= generations; ++generation) {
        const double scale = std::pow(2.0, generation);
        GenerationResult result;
        result.scale = scale;
        result.totalCeas = baseline.totalCeas * scale;
        result.cores = static_cast<int>(baseline.coreCeas * scale);
        result.coreAreaFraction = baseline.coreAreaFraction();
        results.push_back(result);
    }
    return results;
}

std::vector<TechniqueCandle>
figure15Study(const ScalingStudyParams &base_params)
{
    std::vector<TechniqueCandle> candles;
    for (const TechniqueAssumption &row : table2Assumptions()) {
        TechniqueCandle candle;
        candle.label = row.label;
        for (const Assumption assumption :
             {Assumption::Pessimistic, Assumption::Realistic,
              Assumption::Optimistic}) {
            ScalingStudyParams params = base_params;
            params.techniques = {row.make(assumption)};
            auto results = runScalingStudy(params);
            switch (assumption) {
              case Assumption::Pessimistic:
                candle.pessimistic = std::move(results);
                break;
              case Assumption::Realistic:
                candle.realistic = std::move(results);
                break;
              case Assumption::Optimistic:
                candle.optimistic = std::move(results);
                break;
            }
        }
        candles.push_back(std::move(candle));
    }
    return candles;
}

const std::vector<TechniqueCombination> &
figure16Combinations()
{
    // The paper's Figure 16 x-axis, left to right.
    static const std::vector<TechniqueCombination> combinations = {
        {"CC + DRAM + 3D", {"CC", "DRAM", "3D"}},
        {"CC/LC + DRAM", {"CC/LC", "DRAM"}},
        {"CC + 3D + Fltr", {"CC", "3D", "Fltr"}},
        {"CC/LC + Fltr", {"CC/LC", "Fltr"}},
        {"DRAM + 3D + LC", {"DRAM", "3D", "LC"}},
        {"DRAM + Fltr + LC", {"DRAM", "Fltr", "LC"}},
        {"DRAM + LC + Sect", {"DRAM", "LC", "Sect"}},
        {"3D + Fltr + LC", {"3D", "Fltr", "LC"}},
        {"SmCl + LC", {"SmCl", "LC"}},
        {"CC/LC + SmCl", {"CC/LC", "SmCl"}},
        {"DRAM + 3D + SmCl", {"DRAM", "3D", "SmCl"}},
        {"CC/LC + DRAM + SmCl", {"CC/LC", "DRAM", "SmCl"}},
        {"CC/LC + 3D + SmCl", {"CC/LC", "3D", "SmCl"}},
        {"CC/LC + DRAM + 3D", {"CC/LC", "DRAM", "3D"}},
        {"CC/LC + DRAM + 3D + SmCl", {"CC/LC", "DRAM", "3D", "SmCl"}},
    };
    return combinations;
}

std::vector<Technique>
makeCombination(const TechniqueCombination &combination,
                Assumption assumption)
{
    std::vector<Technique> techniques;
    techniques.reserve(combination.labels.size());
    for (const std::string &label : combination.labels)
        techniques.push_back(makeTechnique(label, assumption));
    return techniques;
}

} // namespace bwwall
