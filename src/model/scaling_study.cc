#include "model/scaling_study.hh"

#include <chrono>
#include <cmath>

#include "model/batch_solver.hh"
#include "util/logging.hh"
#include "util/metrics.hh"
#include "util/thread_pool.hh"
#include "util/trace_span.hh"

namespace bwwall {

namespace {

/** The study's generation × budget grid in SoA form. */
BatchGrid
studyGrid(const ScalingStudyParams &params)
{
    BatchGrid grid;
    grid.baseline = params.baseline;
    grid.techniques = params.techniques;
    grid.reserve(static_cast<std::size_t>(params.generations));
    for (int generation = 1; generation <= params.generations;
         ++generation) {
        const double scale = std::pow(2.0, generation);
        grid.push(params.alpha, params.baseline.totalCeas * scale,
                  std::pow(params.bandwidthGrowthPerGeneration,
                           generation));
    }
    return grid;
}

} // namespace

std::vector<GenerationResult>
runScalingStudy(const ScalingStudyParams &params)
{
    if (params.generations < 1)
        fatal("scaling study requires at least one generation");

    Span span("scaling.study");
    const auto start = std::chrono::steady_clock::now();
    // Build the grid and bind the per-study invariants (technique
    // composition, baseline validation) once; each task then solves
    // its point through the shared BatchSolver.  Point solves are
    // pure and bit-identical to solveSupportableCores(), so the
    // parallel study matches the serial one bit for bit.
    const BatchGrid grid = studyGrid(params);
    const BatchSolver solver(grid.baseline, grid.techniques);
    std::vector<GenerationResult> results = parallelMap(
        grid.points(), params.jobs,
        [&grid, &solver](std::size_t g) {
            Span generation_span("scaling.generation", g + 1);
            const SolveResult solved = solver.solveSupportable(
                grid.alpha[g], grid.totalCeas[g],
                grid.trafficBudget[g]);
            GenerationResult result;
            result.scale =
                std::pow(2.0, static_cast<int>(g) + 1);
            result.totalCeas = grid.totalCeas[g];
            result.cores = solved.supportableCores;
            result.coreAreaFraction = solved.coreAreaFraction;
            return result;
        });

    if (params.metrics != nullptr) {
        params.metrics->addCounter("scaling.generations",
                                   results.size());
        params.metrics->observeTimer(
            "scaling.study",
            std::chrono::duration<double>(
                std::chrono::steady_clock::now() - start).count());
        params.metrics->setGauge(
            "scaling.cores_at_final_generation",
            static_cast<double>(results.back().cores));
    }
    return results;
}

std::vector<GenerationResult>
idealScaling(const CmpConfig &baseline, int generations)
{
    baseline.validate();
    std::vector<GenerationResult> results;
    for (int generation = 1; generation <= generations; ++generation) {
        const double scale = std::pow(2.0, generation);
        GenerationResult result;
        result.scale = scale;
        result.totalCeas = baseline.totalCeas * scale;
        result.cores = static_cast<int>(baseline.coreCeas * scale);
        result.coreAreaFraction = baseline.coreAreaFraction();
        results.push_back(result);
    }
    return results;
}

std::vector<TechniqueCandle>
figure15Study(const ScalingStudyParams &base_params)
{
    static constexpr Assumption kAssumptions[] = {
        Assumption::Pessimistic, Assumption::Realistic,
        Assumption::Optimistic};
    static constexpr std::size_t kLevels = 3;

    const std::vector<TechniqueAssumption> &rows =
        table2Assumptions();
    Span span("scaling.figure15");
    const auto start = std::chrono::steady_clock::now();

    // One task per technique×assumption cell.  Each cell runs its
    // own serial study (jobs = 1) so the cell grid, not nested
    // pools, carries the parallelism.
    const auto cells = parallelMap(
        rows.size() * kLevels, base_params.jobs,
        [&base_params, &rows](std::size_t cell) {
            Span cell_span("scaling.cell", cell);
            ScalingStudyParams params = base_params;
            params.jobs = 1;
            params.metrics = nullptr;
            params.techniques = {rows[cell / kLevels].make(
                kAssumptions[cell % kLevels])};
            return runScalingStudy(params);
        });

    std::vector<TechniqueCandle> candles;
    candles.reserve(rows.size());
    for (std::size_t r = 0; r < rows.size(); ++r) {
        TechniqueCandle candle;
        candle.label = rows[r].label;
        candle.pessimistic = cells[r * kLevels + 0];
        candle.realistic = cells[r * kLevels + 1];
        candle.optimistic = cells[r * kLevels + 2];
        candles.push_back(std::move(candle));
    }

    if (base_params.metrics != nullptr) {
        base_params.metrics->addCounter("scaling.cells",
                                        rows.size() * kLevels);
        base_params.metrics->observeTimer(
            "scaling.figure15_study",
            std::chrono::duration<double>(
                std::chrono::steady_clock::now() - start).count());
    }
    return candles;
}

const std::vector<TechniqueCombination> &
figure16Combinations()
{
    // The paper's Figure 16 x-axis, left to right.
    static const std::vector<TechniqueCombination> combinations = {
        {"CC + DRAM + 3D", {"CC", "DRAM", "3D"}},
        {"CC/LC + DRAM", {"CC/LC", "DRAM"}},
        {"CC + 3D + Fltr", {"CC", "3D", "Fltr"}},
        {"CC/LC + Fltr", {"CC/LC", "Fltr"}},
        {"DRAM + 3D + LC", {"DRAM", "3D", "LC"}},
        {"DRAM + Fltr + LC", {"DRAM", "Fltr", "LC"}},
        {"DRAM + LC + Sect", {"DRAM", "LC", "Sect"}},
        {"3D + Fltr + LC", {"3D", "Fltr", "LC"}},
        {"SmCl + LC", {"SmCl", "LC"}},
        {"CC/LC + SmCl", {"CC/LC", "SmCl"}},
        {"DRAM + 3D + SmCl", {"DRAM", "3D", "SmCl"}},
        {"CC/LC + DRAM + SmCl", {"CC/LC", "DRAM", "SmCl"}},
        {"CC/LC + 3D + SmCl", {"CC/LC", "3D", "SmCl"}},
        {"CC/LC + DRAM + 3D", {"CC/LC", "DRAM", "3D"}},
        {"CC/LC + DRAM + 3D + SmCl", {"CC/LC", "DRAM", "3D", "SmCl"}},
    };
    return combinations;
}

std::vector<Technique>
makeCombination(const TechniqueCombination &combination,
                Assumption assumption)
{
    std::vector<Technique> techniques;
    techniques.reserve(combination.labels.size());
    for (const std::string &label : combination.labels)
        techniques.push_back(makeTechnique(label, assumption));
    return techniques;
}

} // namespace bwwall
