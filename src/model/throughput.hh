/**
 * @file
 * Throughput-oriented die allocation.
 *
 * The paper maximises the *core count* under a traffic budget; its
 * related-work section contrasts this with Alameldeen's approach of
 * balancing cores, caches, and communication to maximise IPC.  This
 * extension adds that view: per-core performance falls as cache per
 * core shrinks (through the memory stalls the power law predicts),
 * so chip throughput P * perf(S) has an interior optimum even
 * without a bandwidth limit — and the wall then caps how much of it
 * is reachable.
 */

#ifndef BWWALL_MODEL_THROUGHPUT_HH
#define BWWALL_MODEL_THROUGHPUT_HH

#include "model/bandwidth_wall.hh"

namespace bwwall {

/** Parameters of the per-core performance model. */
struct ThroughputModelParams
{
    /**
     * Fraction of baseline execution time spent stalled on memory
     * (at the baseline cache per core S1).  Per-core performance is
     * perf(S) = (1 + k) / (1 + k * (S/S1)^-alpha), normalised so
     * perf(S1) = 1.
     */
    double memoryStallShare = 0.3;
};

/**
 * Relative per-core performance at cache_per_core_ratio = S/S1 for a
 * workload with the given alpha.
 */
double relativeCorePerformance(const ThroughputModelParams &params,
                               double alpha,
                               double cache_per_core_ratio);

/** Result of a throughput-optimal allocation query. */
struct ThroughputSolveResult
{
    /** Best core count. */
    int cores = 0;

    /** Chip throughput in baseline-core units at that count. */
    double throughput = 0.0;

    /** Relative traffic at that count. */
    double traffic = 0.0;

    /** Whether the traffic budget (not the perf curve) was binding. */
    bool bandwidthLimited = false;
};

/**
 * Maximises P * perf(S(P)) subject to the scenario's traffic budget.
 * Techniques apply as usual (their capacity factors also improve
 * per-core performance through the effective S).
 */
ThroughputSolveResult solveThroughputOptimal(
    const ScalingScenario &scenario,
    const ThroughputModelParams &params);

/**
 * Non-fatal twin of solveThroughputOptimal(): scenario problems are
 * classified by scenarioError(), a non-finite or out-of-range stall
 * share is NonFinite/InvalidInput, and a search that ends on a
 * non-finite throughput is NonConvergence.
 */
Expected<ThroughputSolveResult>
trySolveThroughputOptimal(const ScalingScenario &scenario,
                          const ThroughputModelParams &params);

/**
 * The same maximisation with the traffic budget ignored — what the
 * chip could do if bandwidth were free.  Comparing against the
 * constrained result prices the wall in throughput terms.
 */
ThroughputSolveResult solveThroughputUnconstrained(
    const ScalingScenario &scenario,
    const ThroughputModelParams &params);

} // namespace bwwall

#endif // BWWALL_MODEL_THROUGHPUT_HH
