/**
 * @file
 * The power law of cache misses (paper Equation 1).
 */

#ifndef BWWALL_MODEL_POWER_LAW_HH
#define BWWALL_MODEL_POWER_LAW_HH

#include <cmath>

#include "util/logging.hh"

namespace bwwall {

/**
 * m = m0 * (C / C0)^-alpha — the empirical law (Hartstein et al.)
 * that miss rate falls as a power of cache size, with alpha around
 * 0.5 for commercial workloads (the "sqrt(2) rule").
 *
 * Because write backs are an application-constant fraction of misses
 * (paper Section 4.2), the same law governs total memory traffic
 * (paper Equation 2).
 */
class PowerLaw
{
  public:
    /** @param alpha Cache-sensitivity exponent; must be positive. */
    explicit PowerLaw(double alpha) : alpha_(alpha)
    {
        if (alpha <= 0.0)
            fatal("PowerLaw requires alpha > 0, got ", alpha);
    }

    double alpha() const { return alpha_; }

    /** Miss rate at cache size c given reference (m0, c0). */
    double
    missRate(double m0, double c0, double c) const
    {
        if (m0 < 0.0 || c0 <= 0.0 || c <= 0.0)
            fatal("PowerLaw::missRate requires positive sizes");
        return m0 * std::pow(c / c0, -alpha_);
    }

    /**
     * Relative traffic (or miss) scale when the cache-per-core ratio
     * changes by capacity_ratio = S2/S1: the (S2/S1)^-alpha term of
     * paper Equation 5.
     */
    double
    trafficScale(double capacity_ratio) const
    {
        if (capacity_ratio <= 0.0)
            fatal("PowerLaw::trafficScale requires a positive ratio");
        return std::pow(capacity_ratio, -alpha_);
    }

    /**
     * Cache growth factor needed to scale traffic by traffic_ratio
     * (< 1 reduces traffic): the inverse of trafficScale.
     */
    double
    capacityRatioForTraffic(double traffic_ratio) const
    {
        if (traffic_ratio <= 0.0)
            fatal("PowerLaw::capacityRatioForTraffic requires a "
                  "positive ratio");
        return std::pow(traffic_ratio, -1.0 / alpha_);
    }

  private:
    double alpha_;
};

/**
 * Kernel form of PowerLaw::trafficScale() for pre-negated exponents:
 * pow(capacity_ratio, neg_alpha) with no checks.  Negation is exact
 * in IEEE arithmetic, so for neg_alpha = -alpha this is bit-identical
 * to trafficScale(capacity_ratio); the batch solver hoists the
 * negation (and the positive-ratio precondition check) out of its
 * inner loops.
 */
inline double
powerLawTrafficScale(double capacity_ratio, double neg_alpha)
{
    return std::pow(capacity_ratio, neg_alpha);
}

} // namespace bwwall

#endif // BWWALL_MODEL_POWER_LAW_HH
