#include "model/assumptions.hh"

#include "util/logging.hh"

namespace bwwall {

std::string
assumptionName(Assumption assumption)
{
    switch (assumption) {
      case Assumption::Pessimistic:
        return "pessimistic";
      case Assumption::Realistic:
        return "realistic";
      case Assumption::Optimistic:
        return "optimistic";
    }
    panic("unknown assumption level");
}

namespace {

// Paper Table 2 parameter points.

double
pick(Assumption assumption, double pessimistic, double realistic,
     double optimistic)
{
    switch (assumption) {
      case Assumption::Pessimistic:
        return pessimistic;
      case Assumption::Realistic:
        return realistic;
      case Assumption::Optimistic:
        return optimistic;
    }
    panic("unknown assumption level");
}

Technique
makeCc(Assumption assumption)
{
    return cacheCompression(pick(assumption, 1.25, 2.0, 3.5));
}

Technique
makeDram(Assumption assumption)
{
    return dramCache(pick(assumption, 4.0, 8.0, 16.0));
}

Technique
makeStacked(Assumption)
{
    // The paper evaluates a single point here: one SRAM layer.
    return stackedCache(1.0);
}

Technique
makeFltr(Assumption assumption)
{
    return unusedDataFilter(pick(assumption, 0.10, 0.40, 0.80));
}

Technique
makeSmCo(Assumption assumption)
{
    return smallerCores(1.0 / pick(assumption, 9.0, 40.0, 80.0));
}

Technique
makeLc(Assumption assumption)
{
    return linkCompression(pick(assumption, 1.25, 2.0, 3.5));
}

Technique
makeSect(Assumption assumption)
{
    return sectoredCache(pick(assumption, 0.10, 0.40, 0.80));
}

Technique
makeCcLc(Assumption assumption)
{
    return cacheLinkCompression(pick(assumption, 1.25, 2.0, 3.5));
}

Technique
makeSmCl(Assumption assumption)
{
    return smallCacheLines(pick(assumption, 0.10, 0.40, 0.80));
}

} // namespace

const std::vector<TechniqueAssumption> &
table2Assumptions()
{
    static const std::vector<TechniqueAssumption> rows = {
        {"CC", "Cache Compress", "1.25x compr.", "2x compr.",
         "3.5x compr.", "Med.", "Low", "Med.", &makeCc},
        {"DRAM", "DRAM Cache", "4x density", "8x density",
         "16x density", "High", "Med.", "Low", &makeDram},
        {"3D", "3D-stacked Cache", "3D SRAM layer", "3D SRAM layer",
         "3D SRAM layer", "Med.", "Low", "High", &makeStacked},
        {"Fltr", "Unused Data Filter", "10% unused data",
         "40% unused data", "80% unused data", "Med.", "Med.", "Med.",
         &makeFltr},
        {"SmCo", "Smaller Cores", "9x less area", "40x less area",
         "80x less area", "Low", "Low", "Low", &makeSmCo},
        {"LC", "Link Compress", "1.25x compr.", "2x compr.",
         "3.5x compr.", "High", "Med.", "Low", &makeLc},
        {"Sect", "Sectored Caches", "10% unused data",
         "40% unused data", "80% unused data", "Med.", "High", "Med.",
         &makeSect},
        {"CC/LC", "Cache+Link Compress", "1.25x compr.", "2x compr.",
         "3.5x compr.", "High", "High", "Low", &makeCcLc},
        {"SmCl", "Smaller Cache Lines", "10% unused data",
         "40% unused data", "80% unused data", "High", "High", "Med.",
         &makeSmCl},
    };
    return rows;
}

const TechniqueAssumption &
table2Row(const std::string &label)
{
    for (const TechniqueAssumption &row : table2Assumptions()) {
        if (row.label == label)
            return row;
    }
    fatal("unknown Table 2 technique label: ", label);
}

Technique
makeTechnique(const std::string &label, Assumption assumption)
{
    return table2Row(label).make(assumption);
}

} // namespace bwwall
