#include "model/batch_solver.hh"

#include <cmath>
#include <limits>
#include <optional>

#include "model/power_law.hh"
#include "util/fault.hh"
#include "util/logging.hh"

namespace bwwall {

namespace {

constexpr double kInfinity = std::numeric_limits<double>::infinity();

/** baseline.validate() as an initializer-friendly pass-through. */
const CmpConfig &
validatedBaseline(const CmpConfig &baseline)
{
    baseline.validate();
    return baseline;
}

/**
 * relativeCorePerformance() with the power-law exponent pre-negated;
 * checks, expressions, and messages mirror the scalar twin so the
 * fatal() behaviour and every produced bit line up.
 */
double
corePerf(const ThroughputModelParams &params, double neg_alpha,
         double cache_per_core_ratio)
{
    if (params.memoryStallShare < 0.0 ||
        params.memoryStallShare >= 1.0) {
        fatal("memory stall share must be in [0, 1)");
    }
    if (cache_per_core_ratio <= 0.0)
        fatal("cache-per-core ratio must be positive");
    const double k =
        params.memoryStallShare / (1.0 - params.memoryStallShare);
    return (1.0 + k) /
           (1.0 + k *
                powerLawTrafficScale(cache_per_core_ratio, neg_alpha));
}

} // namespace

ScalingScenario
BatchGrid::scenarioAt(std::size_t i) const
{
    ScalingScenario scenario;
    scenario.baseline = baseline;
    scenario.alpha = alpha[i];
    scenario.totalCeas = totalCeas[i];
    scenario.trafficBudget = trafficBudget[i];
    scenario.techniques = techniques;
    return scenario;
}

TrafficKernel::TrafficKernel(const CmpConfig &baseline,
                             const TechniqueEffects &effects)
    : effects_(effects), base_core_ceas_(baseline.coreCeas),
      s1_(baseline.cachePerCore())
{}

double
TrafficKernel::trafficAt(double total_ceas, double neg_alpha,
                         double cores) const
{
    // The one copy of the Eq. 5-14 traffic expression; the scalar
    // relativeTraffic() delegates here.  Operand order and
    // association are load-bearing: any expression change breaks the
    // bit-identity contract with historical results.
    const double core_area = cores * effects_.coreAreaFraction;
    if (core_area > total_ceas)
        return kInfinity; // cores do not fit on the die

    const double on_die_cache =
        (total_ceas - core_area) * effects_.cacheDensity;
    const double stacked_cache =
        effects_.stackedLayers * total_ceas * effects_.stackedDensity;
    const double cache_ceas = on_die_cache + stacked_cache;
    if (cache_ceas <= 0.0)
        return kInfinity; // no cache at all: unbounded traffic

    // Data sharing shrinks the number of independent traffic sources
    // (paper Eq. 14) and pools the shared cache (paper Eq. 13).
    const double effective_cores = effects_.sharedFraction >= 0.0
        ? effects_.sharedFraction +
              (1.0 - effects_.sharedFraction) * cores
        : cores;

    // With a pooled (shared) cache the per-thread capacity divides
    // by the traffic-equivalent cores; with private caches shared
    // lines replicate and each core keeps its plain share (paper
    // footnote 1).
    const double capacity_divisor =
        effects_.sharedFraction >= 0.0 && !effects_.sharingPoolsCache
            ? cores
            : effective_cores;
    const double effective_cache_per_core =
        cache_ceas * effects_.capacityFactor / capacity_divisor;

    const double capacity_ratio = effective_cache_per_core / s1_;
    if (capacity_ratio <= 0.0)
        fatal("PowerLaw::trafficScale requires a positive ratio");
    return (effective_cores / base_core_ceas_) *
           powerLawTrafficScale(capacity_ratio, neg_alpha) *
           effects_.directFactor;
}

BatchSolver::BatchSolver(const CmpConfig &baseline,
                         const std::vector<Technique> &techniques)
    : baseline_(baseline),
      kernel_(validatedBaseline(baseline_), combineEffects(techniques))
{}

void
BatchSolver::validatePoint(double alpha, double total_ceas,
                           double traffic_budget) const
{
    // baseline_.validate() held at construction; these mirror the
    // per-point half of validateScenario(), same order and messages.
    if (alpha <= 0.0)
        fatal("scenario requires alpha > 0");
    if (total_ceas <= 0.0)
        fatal("scenario requires a positive die area");
    if (traffic_budget <= 0.0)
        fatal("scenario requires a positive traffic budget");
}

double
BatchSolver::traffic(double alpha, double total_ceas,
                     double traffic_budget, double cores) const
{
    validatePoint(alpha, total_ceas, traffic_budget);
    if (cores <= 0.0)
        fatal("relativeTraffic requires a positive core count");
    return kernel_.trafficAt(total_ceas, -alpha, cores);
}

SolveResult
BatchSolver::solveSupportable(double alpha, double total_ceas,
                              double traffic_budget) const
{
    validatePoint(alpha, total_ceas, traffic_budget);
    const TechniqueEffects &effects = kernel_.effects();
    const double neg_alpha = -alpha;

    SolveResult result;
    const double max_cores = total_ceas / effects.coreAreaFraction;
    const int max_whole =
        static_cast<int>(std::floor(max_cores + 1e-9));
    if (max_whole < 1)
        return result;

    // traffic_lo tracks the traffic at the current integer lower
    // bound; relativeTraffic is pure, so reusing the bisection's last
    // within-budget evaluation equals the scalar recomputation.
    double traffic_lo = kernel_.trafficAt(total_ceas, neg_alpha, 1.0);
    if (traffic_lo > traffic_budget)
        return result; // even one core breaks the budget

    int lo = 1, hi = max_whole;
    while (lo < hi) {
        const int mid = lo + (hi - lo + 1) / 2;
        const double traffic = kernel_.trafficAt(
            total_ceas, neg_alpha, static_cast<double>(mid));
        if (traffic <= traffic_budget) {
            lo = mid;
            traffic_lo = traffic;
        } else {
            hi = mid - 1;
        }
    }
    result.supportableCores = lo;
    result.trafficAtSolution = traffic_lo;

    // Real-valued crossing.  The scalar loop always runs 100 halving
    // steps; once mid collides with an endpoint the invariants
    // (traffic(flo) <= budget < traffic(fhi)) pin every further
    // iteration to a no-op, so breaking there changes nothing.
    double flo = 1.0, fhi = max_cores;
    if (kernel_.trafficAt(total_ceas, neg_alpha, fhi) <=
        traffic_budget) {
        result.fractionalCores = fhi;
    } else {
        for (int iteration = 0; iteration < 100; ++iteration) {
            const double mid = 0.5 * (flo + fhi);
            if (mid == flo || mid == fhi)
                break;
            if (kernel_.trafficAt(total_ceas, neg_alpha, mid) <=
                traffic_budget) {
                flo = mid;
            } else {
                fhi = mid;
            }
        }
        result.fractionalCores = flo;
    }

    const double core_area =
        static_cast<double>(lo) * effects.coreAreaFraction;
    result.coreAreaFraction = core_area / total_ceas;
    result.cachePerCore =
        (total_ceas - core_area +
         effects.stackedLayers * total_ceas) /
        static_cast<double>(lo);
    return result;
}

ThroughputSolveResult
BatchSolver::solveThroughput(const ThroughputModelParams &params,
                             double alpha, double total_ceas,
                             double traffic_budget,
                             bool enforce_budget) const
{
    validatePoint(alpha, total_ceas, traffic_budget);
    const TechniqueEffects &effects = kernel_.effects();
    const double neg_alpha = -alpha;
    const double s1 = kernel_.baselineCachePerCore();
    const double max_cores = total_ceas / effects.coreAreaFraction;
    const int max_whole =
        static_cast<int>(std::floor(max_cores + 1e-9));

    ThroughputSolveResult best;
    if (max_whole < 1)
        return best;

    if (!enforce_budget) {
        // Unconstrained mode keeps the scalar scan shape (traffic is
        // needed at every count anyway for the isfinite gate).
        for (int cores = 1; cores <= max_whole; ++cores) {
            const double traffic = kernel_.trafficAt(
                total_ceas, neg_alpha, static_cast<double>(cores));
            if (!std::isfinite(traffic))
                continue;
            const double core_area =
                cores * effects.coreAreaFraction;
            const double cache_ceas =
                (total_ceas - core_area) * effects.cacheDensity +
                effects.stackedLayers * total_ceas *
                    effects.stackedDensity;
            if (cache_ceas <= 0.0)
                continue;
            const double ratio = cache_ceas *
                effects.capacityFactor /
                (static_cast<double>(cores) * s1);
            const double throughput = static_cast<double>(cores) *
                corePerf(params, neg_alpha, ratio);
            if (throughput > best.throughput) {
                best.cores = cores;
                best.throughput = throughput;
                best.traffic = traffic;
            }
        }
        return best;
    }

    // Budget-enforced mode: the scalar scan breaks at the first
    // finite over-budget core count, and infeasible (infinite
    // traffic) counts form a suffix, so the contributing counts are
    // exactly [1, cutoff] for the largest within-budget cutoff.
    // Finding it up front lets the scan below skip the per-core
    // traffic evaluation — and its std::pow — entirely.
    const double traffic_one =
        kernel_.trafficAt(total_ceas, neg_alpha, 1.0);
    if (!(std::isfinite(traffic_one) &&
          traffic_one <= traffic_budget)) {
        return best; // scalar: immediate break or all-infeasible
    }
    int scan_end = max_whole;
    const double traffic_max = kernel_.trafficAt(
        total_ceas, neg_alpha, static_cast<double>(max_whole));
    if (!(std::isfinite(traffic_max) &&
          traffic_max <= traffic_budget)) {
        // Budget binds somewhere inside (1, max_whole): bisect.
        int lo = 1, hi = max_whole;
        while (lo < hi) {
            const int mid = lo + (hi - lo + 1) / 2;
            const double traffic = kernel_.trafficAt(
                total_ceas, neg_alpha, static_cast<double>(mid));
            if (std::isfinite(traffic) && traffic <= traffic_budget)
                lo = mid;
            else
                hi = mid - 1;
        }
        scan_end = lo;
    }

    // The scan is non-empty and every count in it reaches the
    // per-core performance term, so the scalar twin's stall-share
    // check fires here on its first iteration too; hoisting it (and
    // the pure k constants) out of the loop is behaviour-identical.
    if (params.memoryStallShare < 0.0 ||
        params.memoryStallShare >= 1.0) {
        fatal("memory stall share must be in [0, 1)");
    }
    const double k =
        params.memoryStallShare / (1.0 - params.memoryStallShare);
    const double one_plus_k = 1.0 + k;

    for (int cores = 1; cores <= scan_end; ++cores) {
        const double core_area = cores * effects.coreAreaFraction;
        const double cache_ceas =
            (total_ceas - core_area) * effects.cacheDensity +
            effects.stackedLayers * total_ceas *
                effects.stackedDensity;
        if (cache_ceas <= 0.0)
            continue;
        const double ratio = cache_ceas * effects.capacityFactor /
            (static_cast<double>(cores) * s1);
        if (ratio <= 0.0)
            fatal("cache-per-core ratio must be positive");
        const double throughput = static_cast<double>(cores) *
            (one_plus_k /
             (1.0 + k * powerLawTrafficScale(ratio, neg_alpha)));
        if (throughput > best.throughput) {
            best.cores = cores;
            best.throughput = throughput;
        }
    }

    if (best.cores > 0) {
        // The scan above skipped the traffic column; recomputing at
        // the argmax is the scalar loop's tracked value (pure
        // function, identical argument).
        best.traffic = kernel_.trafficAt(
            total_ceas, neg_alpha, static_cast<double>(best.cores));
    }
    if (best.cores > 0 && best.cores < max_whole) {
        const double next_traffic = kernel_.trafficAt(
            total_ceas, neg_alpha,
            static_cast<double>(best.cores + 1));
        best.bandwidthLimited = next_traffic > traffic_budget;
    }
    return best;
}

void
evaluateTrafficBatch(const BatchGrid &grid, const double *cores,
                     double *traffic_out)
{
    const std::size_t count = grid.points();
    if (count == 0)
        return;
    const BatchSolver solver(grid.baseline, grid.techniques);
    for (std::size_t i = 0; i < count; ++i) {
        traffic_out[i] =
            solver.traffic(grid.alpha[i], grid.totalCeas[i],
                           grid.trafficBudget[i], cores[i]);
    }
}

void
solveSupportableBatch(const BatchGrid &grid,
                      const SupportableBatchOut &out)
{
    const std::size_t count = grid.points();
    if (count == 0)
        return;
    const BatchSolver solver(grid.baseline, grid.techniques);
    for (std::size_t i = 0; i < count; ++i) {
        const SolveResult result = solver.solveSupportable(
            grid.alpha[i], grid.totalCeas[i], grid.trafficBudget[i]);
        out.supportableCores[i] = result.supportableCores;
        out.fractionalCores[i] = result.fractionalCores;
        out.trafficAtSolution[i] = result.trafficAtSolution;
        out.coreAreaFraction[i] = result.coreAreaFraction;
        out.cachePerCore[i] = result.cachePerCore;
    }
}

namespace {

void
solveThroughputBatchImpl(const BatchGrid &grid,
                         const ThroughputModelParams &params,
                         const ThroughputBatchOut &out,
                         bool enforce_budget)
{
    const std::size_t count = grid.points();
    if (count == 0)
        return;
    const BatchSolver solver(grid.baseline, grid.techniques);
    for (std::size_t i = 0; i < count; ++i) {
        const ThroughputSolveResult result = solver.solveThroughput(
            params, grid.alpha[i], grid.totalCeas[i],
            grid.trafficBudget[i], enforce_budget);
        out.cores[i] = result.cores;
        out.throughput[i] = result.throughput;
        out.traffic[i] = result.traffic;
        out.bandwidthLimited[i] =
            result.bandwidthLimited ? std::uint8_t{1}
                                    : std::uint8_t{0};
    }
}

} // namespace

void
solveThroughputBatch(const BatchGrid &grid,
                     const ThroughputModelParams &params,
                     const ThroughputBatchOut &out)
{
    solveThroughputBatchImpl(grid, params, out, true);
}

void
solveThroughputUnconstrainedBatch(const BatchGrid &grid,
                                  const ThroughputModelParams &params,
                                  const ThroughputBatchOut &out)
{
    solveThroughputBatchImpl(grid, params, out, false);
}

std::size_t
trySolveSupportableBatch(const BatchGrid &grid,
                         const SupportableBatchOut &out,
                         const BatchPointStatus &status)
{
    const std::size_t count = grid.points();
    std::optional<BatchSolver> solver;
    std::size_t ok_count = 0;
    for (std::size_t i = 0; i < count; ++i) {
        // Classification, fault injection, and the inconsistency
        // check run per point in grid order, so an armed fault plan
        // sees the same model.solve hit sequence as a scalar loop of
        // trySolveSupportableCores() calls.
        std::optional<Error> bad = scenarioPointError(
            grid.baseline, grid.alpha[i], grid.totalCeas[i],
            grid.trafficBudget[i]);
        if (!bad && FAULT_POINT("model.solve")) {
            bad = Error{ErrorCategory::NonConvergence,
                        "solver failed to converge (injected fault "
                        "'model.solve')"};
        }
        if (bad) {
            status.ok[i] = 0;
            status.errors[i] = *bad;
            continue;
        }
        if (!solver)
            solver.emplace(grid.baseline, grid.techniques);
        const SolveResult result = solver->solveSupportable(
            grid.alpha[i], grid.totalCeas[i], grid.trafficBudget[i]);
        const bool inconsistent = result.supportableCores > 0 &&
            (!std::isfinite(result.trafficAtSolution) ||
             !std::isfinite(result.fractionalCores) ||
             result.trafficAtSolution >
                 grid.trafficBudget[i] * (1.0 + 1e-9));
        if (inconsistent) {
            status.ok[i] = 0;
            status.errors[i] =
                Error{ErrorCategory::NonConvergence,
                      "solver produced an inconsistent solution"};
            continue;
        }
        status.ok[i] = 1;
        out.supportableCores[i] = result.supportableCores;
        out.fractionalCores[i] = result.fractionalCores;
        out.trafficAtSolution[i] = result.trafficAtSolution;
        out.coreAreaFraction[i] = result.coreAreaFraction;
        out.cachePerCore[i] = result.cachePerCore;
        ++ok_count;
    }
    return ok_count;
}

std::size_t
trySolveThroughputBatch(const BatchGrid &grid,
                        const ThroughputModelParams &params,
                        const ThroughputBatchOut &out,
                        const BatchPointStatus &status)
{
    const std::size_t count = grid.points();
    std::optional<BatchSolver> solver;
    std::size_t ok_count = 0;
    for (std::size_t i = 0; i < count; ++i) {
        std::optional<Error> bad = scenarioPointError(
            grid.baseline, grid.alpha[i], grid.totalCeas[i],
            grid.trafficBudget[i]);
        if (!bad && !std::isfinite(params.memoryStallShare)) {
            bad = Error{ErrorCategory::NonFinite,
                        "memory stall share is not finite"};
        }
        if (!bad && (params.memoryStallShare < 0.0 ||
                     params.memoryStallShare >= 1.0)) {
            bad = Error{ErrorCategory::InvalidInput,
                        "memory stall share must be in [0, 1)"};
        }
        if (bad) {
            status.ok[i] = 0;
            status.errors[i] = *bad;
            continue;
        }
        if (!solver)
            solver.emplace(grid.baseline, grid.techniques);
        const ThroughputSolveResult result = solver->solveThroughput(
            params, grid.alpha[i], grid.totalCeas[i],
            grid.trafficBudget[i], true);
        if (result.cores > 0 && (!std::isfinite(result.throughput) ||
                                 !std::isfinite(result.traffic))) {
            status.ok[i] = 0;
            status.errors[i] =
                Error{ErrorCategory::NonConvergence,
                      "throughput search produced a non-finite "
                      "optimum"};
            continue;
        }
        status.ok[i] = 1;
        out.cores[i] = result.cores;
        out.throughput[i] = result.throughput;
        out.traffic[i] = result.traffic;
        out.bandwidthLimited[i] =
            result.bandwidthLimited ? std::uint8_t{1}
                                    : std::uint8_t{0};
        ++ok_count;
    }
    return ok_count;
}

} // namespace bwwall
