/**
 * @file
 * CMP die-area accounting in Core Equivalent Areas (paper Table 1).
 *
 * | symbol | meaning                                             |
 * |--------|-----------------------------------------------------|
 * | CEA    | die area of one core plus its L1 caches             |
 * | P      | CEAs spent on cores (= number of cores)             |
 * | C      | CEAs spent on on-chip cache                         |
 * | N      | P + C, the whole die in CEAs                        |
 * | S      | C / P, cache per core                                |
 */

#ifndef BWWALL_MODEL_CMP_CONFIG_HH
#define BWWALL_MODEL_CMP_CONFIG_HH

#include "util/logging.hh"

namespace bwwall {

/** One CMP die split between cores and cache. */
struct CmpConfig
{
    /** Total die area in CEAs (paper's N). */
    double totalCeas = 16.0;

    /** Area spent on cores (paper's P); cores are 1 CEA each. */
    double coreCeas = 8.0;

    /** Cache area in CEAs (paper's C = N - P). */
    double
    cacheCeas() const
    {
        return totalCeas - coreCeas;
    }

    /** Cache per core (paper's S = C / P). */
    double
    cachePerCore() const
    {
        if (coreCeas <= 0.0)
            fatal("cachePerCore requires at least a fraction of a core");
        return cacheCeas() / coreCeas;
    }

    /** Fraction of the die allocated to cores. */
    double
    coreAreaFraction() const
    {
        if (totalCeas <= 0.0)
            fatal("coreAreaFraction requires a positive die");
        return coreCeas / totalCeas;
    }

    /** Validates N > 0, 0 < P, C >= 0. */
    void
    validate() const
    {
        if (totalCeas <= 0.0)
            fatal("CmpConfig requires a positive die area");
        if (coreCeas <= 0.0)
            fatal("CmpConfig requires a positive core area");
        if (cacheCeas() < 0.0)
            fatal("CmpConfig core area exceeds the die");
    }
};

/**
 * The paper's baseline (Section 5.1): a balanced Niagara2-like CMP
 * with 8 cores and 8 CEAs (~4 MB) of L2 — N1 = 16, P1 = 8, S1 = 1.
 */
inline CmpConfig
niagara2Baseline()
{
    return CmpConfig{16.0, 8.0};
}

} // namespace bwwall

#endif // BWWALL_MODEL_CMP_CONFIG_HH
