/**
 * @file
 * The paper's Table 2: pessimistic / realistic / optimistic parameter
 * assumptions and qualitative ratings for every technique.
 */

#ifndef BWWALL_MODEL_ASSUMPTIONS_HH
#define BWWALL_MODEL_ASSUMPTIONS_HH

#include <string>
#include <vector>

#include "model/technique.hh"

namespace bwwall {

/** Which end of the assumption range to instantiate. */
enum class Assumption
{
    Pessimistic,
    Realistic,
    Optimistic,
};

/** Returns "pessimistic" / "realistic" / "optimistic". */
std::string assumptionName(Assumption assumption);

/** One Table 2 row: parameter range plus qualitative ratings. */
struct TechniqueAssumption
{
    /** Paper's technique label (CC, DRAM, 3D, ...). */
    std::string label;

    /** Full technique name. */
    std::string name;

    /** Human-readable parameter descriptions, per assumption. */
    std::string pessimistic;
    std::string realistic;
    std::string optimistic;

    /** Qualitative ratings from the paper's Table 2. */
    std::string effectiveness;
    std::string range;
    std::string complexity;

    /** Builds the technique at the given assumption level. */
    Technique (*make)(Assumption);
};

/**
 * All nine Table 2 rows, in the paper's order: CC, DRAM, 3D, Fltr,
 * SmCo, LC, Sect, CC/LC, SmCl.
 */
const std::vector<TechniqueAssumption> &table2Assumptions();

/** Looks a row up by its label; fatals when absent. */
const TechniqueAssumption &table2Row(const std::string &label);

/** Convenience: build a technique by label and assumption. */
Technique makeTechnique(const std::string &label,
                        Assumption assumption);

} // namespace bwwall

#endif // BWWALL_MODEL_ASSUMPTIONS_HH
