#include "model/bandwidth_wall.hh"

#include <cmath>

#include "model/batch_solver.hh"
#include "util/fault.hh"
#include "util/logging.hh"

namespace bwwall {

namespace {

void
validateScenario(const ScalingScenario &scenario)
{
    scenario.baseline.validate();
    if (scenario.alpha <= 0.0)
        fatal("scenario requires alpha > 0");
    if (scenario.totalCeas <= 0.0)
        fatal("scenario requires a positive die area");
    if (scenario.trafficBudget <= 0.0)
        fatal("scenario requires a positive traffic budget");
}

} // namespace

std::optional<Error>
scenarioPointError(const CmpConfig &baseline, double alpha,
                   double total_ceas, double traffic_budget)
{
    if (!std::isfinite(alpha) || !std::isfinite(total_ceas) ||
        !std::isfinite(traffic_budget) ||
        !std::isfinite(baseline.totalCeas) ||
        !std::isfinite(baseline.coreCeas)) {
        return Error{ErrorCategory::NonFinite,
                     "scenario contains a non-finite field"};
    }
    if (baseline.totalCeas <= 0.0)
        return Error{ErrorCategory::InvalidInput,
                     "baseline requires a positive die area"};
    if (baseline.coreCeas <= 0.0)
        return Error{ErrorCategory::InvalidInput,
                     "baseline requires a positive core area"};
    if (baseline.cacheCeas() < 0.0)
        return Error{ErrorCategory::InvalidInput,
                     "baseline core area exceeds the die"};
    if (alpha <= 0.0)
        return Error{ErrorCategory::InvalidInput,
                     "scenario requires alpha > 0"};
    if (total_ceas <= 0.0)
        return Error{ErrorCategory::InvalidInput,
                     "scenario requires a positive die area"};
    if (traffic_budget <= 0.0)
        return Error{ErrorCategory::InvalidInput,
                     "scenario requires a positive traffic budget"};
    return std::nullopt;
}

std::optional<Error>
scenarioError(const ScalingScenario &scenario)
{
    return scenarioPointError(scenario.baseline, scenario.alpha,
                              scenario.totalCeas,
                              scenario.trafficBudget);
}

Expected<SolveResult>
trySolveSupportableCores(const ScalingScenario &scenario)
{
    if (std::optional<Error> bad = scenarioError(scenario))
        return *bad;
    if (FAULT_POINT("model.solve")) {
        return Error{ErrorCategory::NonConvergence,
                     "solver failed to converge (injected fault "
                     "'model.solve')"};
    }
    SolveResult result = solveSupportableCores(scenario);
    const bool inconsistent = result.supportableCores > 0 &&
        (!std::isfinite(result.trafficAtSolution) ||
         !std::isfinite(result.fractionalCores) ||
         result.trafficAtSolution >
             scenario.trafficBudget * (1.0 + 1e-9));
    if (inconsistent) {
        return Error{ErrorCategory::NonConvergence,
                     "solver produced an inconsistent solution"};
    }
    return result;
}

double
relativeTraffic(const ScalingScenario &scenario, double cores)
{
    validateScenario(scenario);
    if (cores <= 0.0)
        fatal("relativeTraffic requires a positive core count");

    // The Eq. 5-14 math lives in TrafficKernel so the scalar and SoA
    // batch paths evaluate one shared expression; negating alpha for
    // the kernel's pre-negated exponent is exact, so this delegation
    // is bit-identical to the historical inline body.
    const TrafficKernel kernel(scenario.baseline,
                               combineEffects(scenario.techniques));
    return kernel.trafficAt(scenario.totalCeas, -scenario.alpha,
                            cores);
}

double
maxPlaceableCores(const ScalingScenario &scenario)
{
    validateScenario(scenario);
    const TechniqueEffects effects =
        combineEffects(scenario.techniques);
    return scenario.totalCeas / effects.coreAreaFraction;
}

SolveResult
solveSupportableCores(const ScalingScenario &scenario)
{
    validateScenario(scenario);
    const TechniqueEffects effects =
        combineEffects(scenario.techniques);

    SolveResult result;
    const double max_cores = maxPlaceableCores(scenario);
    const int max_whole =
        static_cast<int>(std::floor(max_cores + 1e-9));
    if (max_whole < 1)
        return result;

    if (relativeTraffic(scenario, 1.0) > scenario.trafficBudget)
        return result; // even one core breaks the budget

    // M(P) is monotone increasing in P: integer bisection for the
    // largest P within budget.
    int lo = 1, hi = max_whole;
    while (lo < hi) {
        const int mid = lo + (hi - lo + 1) / 2;
        if (relativeTraffic(scenario, mid) <= scenario.trafficBudget)
            lo = mid;
        else
            hi = mid - 1;
    }
    result.supportableCores = lo;
    result.trafficAtSolution =
        relativeTraffic(scenario, static_cast<double>(lo));

    // Real-valued crossing for smooth plots.
    double flo = 1.0, fhi = max_cores;
    if (relativeTraffic(scenario, fhi) <= scenario.trafficBudget) {
        result.fractionalCores = fhi;
    } else {
        for (int iteration = 0; iteration < 100; ++iteration) {
            const double mid = 0.5 * (flo + fhi);
            if (relativeTraffic(scenario, mid) <=
                scenario.trafficBudget) {
                flo = mid;
            } else {
                fhi = mid;
            }
        }
        result.fractionalCores = flo;
    }

    const double core_area =
        static_cast<double>(lo) * effects.coreAreaFraction;
    result.coreAreaFraction = core_area / scenario.totalCeas;
    result.cachePerCore =
        (scenario.totalCeas - core_area +
         effects.stackedLayers * scenario.totalCeas) /
        static_cast<double>(lo);
    return result;
}

double
requiredSharedFraction(const ScalingScenario &scenario, double cores)
{
    validateScenario(scenario);
    if (cores <= 0.0)
        fatal("requiredSharedFraction requires a positive core count");

    auto traffic_at = [&scenario, cores](double shared_fraction) {
        ScalingScenario shared = scenario;
        shared.techniques.push_back(dataSharing(shared_fraction));
        return relativeTraffic(shared, cores);
    };

    if (traffic_at(0.0) <= scenario.trafficBudget)
        return 0.0;
    if (traffic_at(1.0) > scenario.trafficBudget)
        return 2.0; // sentinel > 1: even full sharing is not enough

    double lo = 0.0, hi = 1.0; // traffic decreasing in the fraction
    for (int iteration = 0; iteration < 100; ++iteration) {
        const double mid = 0.5 * (lo + hi);
        if (traffic_at(mid) > scenario.trafficBudget)
            lo = mid;
        else
            hi = mid;
    }
    return hi;
}

} // namespace bwwall
