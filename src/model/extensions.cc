#include "model/extensions.hh"

#include <cmath>
#include <sstream>

#include "util/logging.hh"

namespace bwwall {

Technique
smtCores(unsigned threads_per_core, double marginal_traffic)
{
    if (threads_per_core == 0)
        fatal("SMT requires at least one thread per core");
    if (marginal_traffic <= 0.0 || marginal_traffic > 1.0)
        fatal("SMT marginal traffic must be in (0, 1]");

    // Per-core traffic rate relative to single-threaded: the first
    // thread counts fully, each further thread marginally.
    const double rate = 1.0 +
        marginal_traffic * static_cast<double>(threads_per_core - 1);

    TechniqueEffects effects;
    effects.directFactor = rate;

    std::ostringstream name;
    name << "SMT " << threads_per_core << "-way (x" << rate
         << " traffic)";
    return {name.str(), "SMT", effects};
}

Technique
smallerCoresWithInterconnect(double core_area_fraction,
                             double router_area_ceas)
{
    if (core_area_fraction <= 0.0 || core_area_fraction > 1.0)
        fatal("smaller cores require an area fraction in (0, 1]");
    if (router_area_ceas < 0.0)
        fatal("router area must be non-negative");

    TechniqueEffects effects;
    effects.coreAreaFraction = core_area_fraction + router_area_ceas;

    std::ostringstream name;
    name << "smaller cores " << 1.0 / core_area_fraction
         << "x smaller + " << router_area_ceas << " CEA interconnect";
    return {name.str(), "SmCo+NoC", effects};
}

BandwidthEnvelope
constantEnvelope()
{
    return {"constant", 1.0};
}

BandwidthEnvelope
itrsPinEnvelope()
{
    // 10% per year over a 1.5-year generation: 1.1^1.5.
    return {"itrs-pins", std::pow(1.1, 1.5)};
}

BandwidthEnvelope
optimisticEnvelope()
{
    return {"optimistic-1.5x", 1.5};
}

std::vector<GenerationResult>
runExtendedStudy(const ExtendedStudyParams &params)
{
    if (params.base.generations < 1)
        fatal("extended study requires at least one generation");
    if (params.drift.trafficGrowthPerGeneration <= 0.0)
        fatal("traffic growth per generation must be positive");
    if (params.envelope.growthPerGeneration <= 0.0)
        fatal("envelope growth per generation must be positive");

    std::vector<GenerationResult> results;
    results.reserve(
        static_cast<std::size_t>(params.base.generations));

    for (int generation = 1; generation <= params.base.generations;
         ++generation) {
        const double scale = std::pow(2.0, generation);

        ScalingScenario scenario;
        scenario.baseline = params.base.baseline;
        scenario.alpha = params.base.alpha +
            params.drift.alphaDriftPerGeneration * generation;
        if (scenario.alpha <= 0.0)
            fatal("alpha drifted non-positive at generation ",
                  generation);
        scenario.totalCeas = params.base.baseline.totalCeas * scale;
        scenario.techniques = params.base.techniques;

        // The budget is the envelope growth divided by the workload's
        // own traffic growth: a workload generating w-times the
        // traffic per unit of work shrinks the effective envelope.
        const double envelope = std::pow(
            params.envelope.growthPerGeneration, generation);
        const double workload_growth = std::pow(
            params.drift.trafficGrowthPerGeneration, generation);
        scenario.trafficBudget =
            std::pow(params.base.bandwidthGrowthPerGeneration,
                     generation) *
            envelope / workload_growth;

        const SolveResult solved = solveSupportableCores(scenario);

        GenerationResult result;
        result.scale = scale;
        result.totalCeas = scenario.totalCeas;
        result.cores = solved.supportableCores;
        result.coreAreaFraction = solved.coreAreaFraction;
        results.push_back(result);
    }
    return results;
}

} // namespace bwwall
