#include "server/server.hh"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <cmath>
#include <cstdlib>
#include <cstring>
#include <sstream>

#include "server/json.hh"
#include "server/model_service.hh"
#include "util/fault.hh"
#include "util/logging.hh"
#include "util/thread_pool.hh"

namespace bwwall {

namespace {

void
setReceiveTimeout(int fd, unsigned timeout_ms)
{
    if (timeout_ms == 0)
        return;
    timeval tv{};
    tv.tv_sec = timeout_ms / 1000;
    tv.tv_usec = static_cast<suseconds_t>(
        (timeout_ms % 1000) * 1000);
    ::setsockopt(fd, SOL_SOCKET, SO_RCVTIMEO, &tv, sizeof(tv));
}

double
secondsSince(std::chrono::steady_clock::time_point start)
{
    return std::chrono::duration<double>(
               std::chrono::steady_clock::now() - start)
        .count();
}

/** "2xx" / "4xx" / "5xx" classification for the counters. */
const char *
statusClass(int status)
{
    if (status < 300)
        return "2xx";
    if (status < 500)
        return "4xx";
    return "5xx";
}

} // namespace

BwwallServer::BwwallServer(ServerConfig config)
    : config_(std::move(config))
{
    ResultCacheConfig cache_config;
    cache_config.shardCount = config_.cacheShards;
    cache_config.maxBytes = config_.cacheBytes;
    cache_config.ttlSeconds = config_.cacheTtlSeconds;
    cache_config.staleSeconds = config_.cacheStaleSeconds;
    cache_ = std::make_unique<ResultCache>(cache_config,
                                           &metrics_);
    OverloadConfig overload_config;
    overload_config.maxInflight = config_.maxInflight;
    overload_config.shedP99Seconds = config_.shedP99Ms / 1000.0;
    overload_config.breakerThreshold = config_.breakerThreshold;
    overload_config.breakerCooldownSeconds =
        config_.breakerCooldownSeconds;
    overload_config.retryAfterSeconds = config_.retryAfterSeconds;
    overload_config.degradeSweeps = config_.degradeSweeps;
    overload_config.degradePressure = config_.degradePressure;
    overload_ = std::make_unique<OverloadController>(
        overload_config, &metrics_);
    if (config_.trace) {
        // Standby unless traceAll: only threads inside a
        // ScopedThreadTrace (the per-request opt-in) record.
        recorder_ = std::make_unique<TraceRecorder>();
        recorder_->install(config_.traceAll);
    }
}

BwwallServer::~BwwallServer()
{
    stop();
}

void
BwwallServer::start()
{
    if (started_.exchange(true))
        panic("BwwallServer::start called twice");

    listenFd_ = ::socket(AF_INET, SOCK_STREAM, 0);
    if (listenFd_ < 0)
        fatal("socket(): ", std::strerror(errno));
    const int enable = 1;
    ::setsockopt(listenFd_, SOL_SOCKET, SO_REUSEADDR, &enable,
                 sizeof(enable));

    sockaddr_in address{};
    address.sin_family = AF_INET;
    address.sin_port = htons(config_.port);
    if (::inet_pton(AF_INET, config_.bindAddress.c_str(),
                    &address.sin_addr) != 1)
        fatal("bad bind address '", config_.bindAddress, "'");
    if (::bind(listenFd_,
               reinterpret_cast<const sockaddr *>(&address),
               sizeof(address)) != 0)
        fatal("bind(", config_.bindAddress, ":", config_.port,
              "): ", std::strerror(errno));
    if (::listen(listenFd_, 128) != 0)
        fatal("listen(): ", std::strerror(errno));

    sockaddr_in bound{};
    socklen_t bound_len = sizeof(bound);
    if (::getsockname(listenFd_,
                      reinterpret_cast<sockaddr *>(&bound),
                      &bound_len) != 0)
        fatal("getsockname(): ", std::strerror(errno));
    boundPort_ = ntohs(bound.sin_port);

    if (::pipe(wakePipe_) != 0)
        fatal("pipe(): ", std::strerror(errno));

    const unsigned threads = resolveJobs(config_.threads);
    metrics_.setGauge("server.threads",
                      static_cast<double>(threads));
    pool_ = std::make_unique<ThreadPool>(threads);
    poolThread_ = std::thread([this, threads] {
        pool_->run(threads, [this](std::size_t) { workerLoop(); });
    });
    acceptThread_ = std::thread([this] { acceptLoop(); });
    inform("bwwalld listening on ", config_.bindAddress, ":",
           boundPort_, " (", threads, " worker",
           threads == 1 ? "" : "s", ")");
}

void
BwwallServer::acceptLoop()
{
    while (!stopping_.load(std::memory_order_acquire)) {
        pollfd fds[2];
        fds[0] = {listenFd_, POLLIN, 0};
        fds[1] = {wakePipe_[0], POLLIN, 0};
        const int ready = ::poll(fds, 2, -1);
        if (ready < 0) {
            if (errno == EINTR)
                continue;
            warn("accept poll(): ", std::strerror(errno));
            break;
        }
        if ((fds[1].revents & POLLIN) != 0)
            break; // woken by requestStop()
        if ((fds[0].revents & POLLIN) == 0)
            continue;
        const int fd = ::accept(listenFd_, nullptr, nullptr);
        if (fd < 0) {
            if (errno == EINTR || errno == ECONNABORTED)
                continue;
            if (stopping_.load(std::memory_order_acquire))
                break;
            warn("accept(): ", std::strerror(errno));
            continue;
        }
        metrics_.addCounter("server.connections");
        // The chaos harness's client that vanishes between accept
        // and service (connection reset at the doorstep).
        if (FAULT_POINT("server.accept")) {
            ::close(fd);
            continue;
        }
        setReceiveTimeout(fd, config_.idleTimeoutMs);

        // Admission control: shed beyond the in-flight limit with
        // an immediate 503 instead of queueing unbounded work.
        const unsigned inflight =
            inflight_.load(std::memory_order_relaxed);
        if (config_.maxInflight != 0 &&
            inflight >= config_.maxInflight) {
            metrics_.addCounter("server.shed");
            HttpConnection connection(
                fd, {16u << 10, config_.maxBodyBytes});
            HttpResponse response = httpErrorResponse(
                503, "server at capacity; retry later");
            response.headers["Retry-After"] =
                std::to_string(config_.retryAfterSeconds);
            response.close = true;
            connection.writeResponse(response);
            ::close(fd);
            continue;
        }
        inflight_.fetch_add(1, std::memory_order_relaxed);
        {
            std::lock_guard<std::mutex> lock(queueMutex_);
            queue_.push_back(fd);
        }
        queueCv_.notify_one();
    }
}

int
BwwallServer::popConnection()
{
    std::unique_lock<std::mutex> lock(queueMutex_);
    queueCv_.wait(lock, [this] {
        return stopping_.load(std::memory_order_acquire) ||
               !queue_.empty();
    });
    if (queue_.empty())
        return -1; // stopping and fully drained
    const int fd = queue_.front();
    queue_.pop_front();
    return fd;
}

void
BwwallServer::workerLoop()
{
    while (true) {
        const int fd = popConnection();
        if (fd < 0)
            return;
        try {
            serveConnection(fd);
        } catch (const std::exception &e) {
            // A worker must survive anything one connection does.
            warn("connection aborted: ", e.what());
            metrics_.addCounter("server.connection_errors");
        }
        ::close(fd);
        inflight_.fetch_sub(1, std::memory_order_relaxed);
    }
}

void
BwwallServer::serveConnection(int fd)
{
    HttpConnection connection(fd,
                              {16u << 10, config_.maxBodyBytes});
    while (true) {
        HttpRequest request;
        const HttpReadStatus status =
            connection.readRequest(&request);
        const Clock::time_point received = Clock::now();
        switch (status) {
          case HttpReadStatus::Ok:
            break;
          case HttpReadStatus::Closed:
            return;
          case HttpReadStatus::Timeout: {
            metrics_.addCounter("server.read_timeouts");
            HttpResponse timeout = httpErrorResponse(
                408, "timed out waiting for the request");
            timeout.close = true;
            connection.writeResponse(timeout);
            return;
          }
          case HttpReadStatus::TooLarge: {
            metrics_.addCounter("server.oversized_requests");
            HttpResponse too_large = httpErrorResponse(
                413, "request exceeds the configured size limit");
            too_large.close = true;
            connection.writeResponse(too_large);
            return;
          }
          case HttpReadStatus::Unsupported: {
            HttpResponse unsupported = httpErrorResponse(
                501, "transfer-encoding is not supported");
            unsupported.close = true;
            connection.writeResponse(unsupported);
            return;
          }
          case HttpReadStatus::Malformed: {
            metrics_.addCounter("server.malformed_requests");
            HttpResponse malformed = httpErrorResponse(
                400, "malformed HTTP request");
            malformed.close = true;
            connection.writeResponse(malformed);
            return;
          }
        }

        const ScopedThreadTrace trace_scope(requestTraced(request));
        Span request_span("server.request");
        HttpResponse response = dispatch(request, received);
        if (!request.keepAlive ||
            stopping_.load(std::memory_order_acquire))
            response.close = true;
        bool written;
        {
            Span serialize_span("server.serialize");
            written = connection.writeResponse(response);
        }
        if (!written)
            return;
        if (response.close)
            return;
    }
}

bool
BwwallServer::requestTraced(const HttpRequest &request) const
{
    if (recorder_ == nullptr)
        return false;
    if (config_.traceAll)
        return true;
    const auto header = request.headers.find("x-bwwall-trace");
    return header != request.headers.end() &&
           header->second != "0";
}

HttpResponse
BwwallServer::handleTrace() const
{
    if (recorder_ == nullptr) {
        return httpErrorResponse(
            404, "tracing is disabled; start bwwalld with --trace");
    }
    HttpResponse response;
    response.body = recorder_->chromeTraceJson();
    response.body += '\n';
    return response;
}

HttpResponse
BwwallServer::handleMetrics(const HttpRequest &request) const
{
    std::ostringstream oss;
    HttpResponse response;
    if (request.query.find("format=json") != std::string::npos) {
        metrics_.writeJson(oss);
    } else {
        metrics_.writeText(oss);
        response.contentType = "text/plain";
    }
    response.body = oss.str();
    return response;
}

HttpResponse
BwwallServer::handleModelQuery(const HttpRequest &request,
                               Clock::time_point received,
                               bool degraded)
{
    JsonValue body;
    std::string parse_error;
    bool parsed;
    {
        Span parse_span("server.parse");
        parsed = JsonValue::parse(request.body.empty()
                                      ? "{}"
                                      : request.body,
                                  &body, &parse_error);
    }
    if (!parsed)
        return httpErrorResponseFor(
            {ErrorCategory::InvalidInput,
             "malformed JSON body: " + parse_error});
    if (!body.isObject())
        return httpErrorResponseFor(
            {ErrorCategory::InvalidInput,
             "request body must be a JSON object"});

    bool was_degraded = false;
    if (degraded && request.path == "/v1/sweep") {
        // The transformed body is also the cache key, so degraded
        // and full-resolution answers never collide in the cache.
        was_degraded = degradeSweepRequest(&body);
        if (was_degraded)
            metrics_.addCounter("server.degraded");
    }

    // The effective deadline is the stricter of the server's
    // --deadline-ms and the client's X-BWWall-Deadline-Ms budget.
    double deadline =
        static_cast<double>(config_.deadlineMs) / 1000.0;
    bool has_deadline = config_.deadlineMs != 0;
    const auto budget =
        request.headers.find("x-bwwall-deadline-ms");
    if (budget != request.headers.end()) {
        char *end = nullptr;
        const double client_ms =
            std::strtod(budget->second.c_str(), &end);
        if (end != nullptr && *end == '\0' &&
            std::isfinite(client_ms) && client_ms > 0.0) {
            const double client = client_ms / 1000.0;
            if (!has_deadline || client < deadline) {
                deadline = client;
                has_deadline = true;
            }
        }
    }
    try {
        const std::string key =
            canonicalCacheKey(request.path, body);
        Span cache_span("server.cache");
        const ResultCache::Outcome outcome =
            cache_->getOrCompute(key, [&] {
                Span compute_span("server.compute");
                return executeModelQuery(request.path, body);
            });
        traceInstant(outcome.hit ? "server.cache_hit"
                                 : "server.cache_miss");

        if (has_deadline && secondsSince(received) > deadline) {
            // The answer is computed (and cached for the retry),
            // but this caller's deadline has already passed.
            metrics_.addCounter("server.deadline_exceeded");
            return httpErrorResponse(
                504, "deadline exceeded; result cached for retry");
        }
        HttpResponse response;
        response.status = outcome.response->status;
        response.contentType = outcome.response->contentType;
        response.body = outcome.response->body;
        if (outcome.stale) {
            metrics_.addCounter("server.stale_served");
            response.headers["X-BWWall-Stale"] = "1";
        }
        if (was_degraded)
            response.headers["X-BWWall-Degraded"] = "1";
        return response;
    } catch (const BadRequest &e) {
        return httpErrorResponseFor(
            {ErrorCategory::InvalidInput, e.what()});
    } catch (const Errored &e) {
        metrics_.addCounter("server.handler_errors");
        return httpErrorResponseFor(e.error());
    } catch (const std::exception &e) {
        metrics_.addCounter("server.handler_errors");
        return httpErrorResponseFor(
            {ErrorCategory::Faulted,
             std::string("internal error: ") + e.what()});
    }
}

HttpResponse
BwwallServer::dispatch(const HttpRequest &request,
                       Clock::time_point received)
{
    metrics_.addCounter("server.requests");
    requestCount_.fetch_add(1, std::memory_order_relaxed);

    HttpResponse response;
    if (request.path == "/healthz") {
        if (request.method != "GET" && request.method != "HEAD") {
            response = httpErrorResponse(405, "use GET /healthz");
        } else {
            JsonValue payload = JsonValue::makeObject();
            payload.set("status", JsonValue("ok"));
            response.body = payload.dump();
            response.body += '\n';
        }
    } else if (request.path == "/metrics") {
        response = request.method == "GET"
                       ? handleMetrics(request)
                       : httpErrorResponse(405, "use GET /metrics");
    } else if (request.path == "/v1/trace") {
        response = request.method == "GET"
                       ? handleTrace()
                       : httpErrorResponse(405, "use GET /v1/trace");
    } else if (isModelQueryPath(request.path)) {
        if (request.method != "POST") {
            response = httpErrorResponse(
                405, "model queries are POST requests");
        } else {
            const AdmitDecision decision = overload_->admit(
                request.path,
                inflight_.load(std::memory_order_relaxed));
            if (decision == AdmitDecision::Shed) {
                metrics_.addCounter("server.shed");
                response = httpErrorResponseFor(
                    {ErrorCategory::Overload,
                     "shed by overload control; retry later"});
                response.headers["Retry-After"] = std::to_string(
                    overload_->retryAfterSeconds());
            } else {
                response = handleModelQuery(
                    request, received,
                    decision == AdmitDecision::AdmitDegraded);
                // Sheds are not observed: only served requests
                // feed the latency window and the breakers.
                overload_->observe(request.path,
                                   secondsSince(received),
                                   response.status >= 500);
            }
        }
    } else {
        response = httpErrorResponse(
            404, "unknown path '" + request.path + "'");
    }

    const double elapsed = secondsSince(received);
    const std::string endpoint =
        "server.endpoint." + request.path;
    metrics_.addCounter(endpoint + ".requests");
    metrics_.observeHistogram(endpoint + ".latency_seconds",
                              elapsed);
    metrics_.addCounter(std::string("server.responses.") +
                        statusClass(response.status));
    if (config_.logRequests)
        inform(request.method, ' ', request.target, " -> ",
               response.status, " (",
               static_cast<int>(elapsed * 1e6), " us)");
    return response;
}

void
BwwallServer::requestStop()
{
    if (!started_.load(std::memory_order_acquire))
        return;
    if (stopping_.exchange(true))
        return;
    // Wake the accept poll; it exits without touching new clients.
    if (wakePipe_[1] >= 0) {
        const char byte = 'x';
        [[maybe_unused]] ssize_t ignored =
            ::write(wakePipe_[1], &byte, 1);
    }
    queueCv_.notify_all();
}

void
BwwallServer::join()
{
    if (!started_.load(std::memory_order_acquire))
        return;
    if (joined_.exchange(true))
        return;
    if (acceptThread_.joinable())
        acceptThread_.join();
    // Accepting has stopped; wake the workers so they drain the
    // queue and exit once it is empty.
    queueCv_.notify_all();
    if (poolThread_.joinable())
        poolThread_.join();
    if (listenFd_ >= 0) {
        ::close(listenFd_);
        listenFd_ = -1;
    }
    for (int &fd : wakePipe_) {
        if (fd >= 0) {
            ::close(fd);
            fd = -1;
        }
    }
    metrics_.setGauge("server.drained", 1.0);
    inform("bwwalld drained: served ", requestCount(),
           " request(s)");
}

void
BwwallServer::stop()
{
    requestStop();
    join();
}

} // namespace bwwall
