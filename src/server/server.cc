#include "server/server.hh"

#include <algorithm>
#include <cmath>
#include <cstdlib>
#include <sstream>

#include "server/json.hh"
#include "server/model_service.hh"
#include "server/routes.hh"
#include "util/logging.hh"
#include "util/thread_pool.hh"

namespace bwwall {

namespace {

double
secondsSince(std::chrono::steady_clock::time_point start)
{
    return std::chrono::duration<double>(
               std::chrono::steady_clock::now() - start)
        .count();
}

/** "2xx" / "4xx" / "5xx" classification for the counters. */
const char *
statusClass(int status)
{
    if (status < 300)
        return "2xx";
    if (status < 500)
        return "4xx";
    return "5xx";
}

/** Event-loop shards when --io-shards is 0: cores, capped at 8. */
unsigned
resolveIoShards(unsigned requested)
{
    if (requested != 0)
        return requested;
    return std::min(resolveJobs(0), 8u);
}

} // namespace

BwwallServer::BwwallServer(ServerConfig config)
    : config_(std::move(config))
{
    ResultCacheConfig cache_config;
    cache_config.shardCount = config_.cacheShards;
    cache_config.maxBytes = config_.cacheBytes;
    cache_config.ttlSeconds = config_.cacheTtlSeconds;
    cache_config.staleSeconds = config_.cacheStaleSeconds;
    cache_ = std::make_unique<ResultCache>(cache_config,
                                           &metrics_);
    if (!config_.cachePersistPath.empty()) {
        std::string error;
        if (!cache_->loadSnapshot(config_.cachePersistPath,
                                  &error)) {
            // A bad snapshot costs warmth, never availability.
            warn("bwwalld cache: discarded snapshot '",
                 config_.cachePersistPath, "': ", error);
        } else if (metrics_.counter("cache.persist.loaded") >
                   0) {
            inform("bwwalld cache: restored ",
                   metrics_.counter("cache.persist.loaded"),
                   " entr(ies) from '",
                   config_.cachePersistPath, "'");
        }
    }
    OverloadConfig overload_config;
    overload_config.maxInflight = config_.maxInflight;
    overload_config.shedP99Seconds = config_.shedP99Ms / 1000.0;
    overload_config.breakerThreshold = config_.breakerThreshold;
    overload_config.breakerCooldownSeconds =
        config_.breakerCooldownSeconds;
    overload_config.retryAfterSeconds = config_.retryAfterSeconds;
    overload_config.degradeSweeps = config_.degradeSweeps;
    overload_config.degradePressure = config_.degradePressure;
    overload_ = std::make_unique<OverloadController>(
        overload_config, &metrics_);
    IngestConfig ingest_config;
    ingest_config.maxSessions = config_.maxIngestSessions;
    ingest_config.maxSessionBytes = config_.maxSessionBytes;
    ingest_config.ttlSeconds = config_.ingestTtlSeconds;
    ingest_config.retryAfterSeconds = config_.retryAfterSeconds;
    ingest_ = std::make_unique<IngestSessionManager>(ingest_config,
                                                     &metrics_);
    if (config_.trace) {
        // Standby unless traceAll: only threads inside a
        // ScopedThreadTrace (the per-request opt-in) record.
        recorder_ = std::make_unique<TraceRecorder>();
        recorder_->install(config_.traceAll);
    }
    if (!config_.cluster.peers.empty())
        configureCluster(config_.cluster);
}

void
BwwallServer::configureCluster(ClusterConfig config)
{
    auto cluster =
        std::make_shared<Cluster>(std::move(config), &metrics_);
    std::lock_guard<std::mutex> lock(clusterMutex_);
    cluster_ = std::move(cluster);
}

BwwallServer::~BwwallServer()
{
    stop();
}

void
BwwallServer::start()
{
    if (started_.exchange(true))
        panic("BwwallServer::start called twice");

    const unsigned threads = resolveJobs(config_.threads);
    const unsigned shards = resolveIoShards(config_.ioShards);
    metrics_.setGauge("server.threads",
                      static_cast<double>(threads));
    metrics_.setGauge("server.io_shards",
                      static_cast<double>(shards));

    ReactorConfig reactor_config;
    reactor_config.bindAddress = config_.bindAddress;
    reactor_config.port = config_.port;
    reactor_config.ioShards = shards;
    reactor_config.computeThreads = threads;
    reactor_config.maxConnections = config_.maxConnections;
    reactor_config.maxInflight = config_.maxInflight;
    reactor_config.idleTimeoutMs = config_.idleTimeoutMs;
    reactor_config.maxBodyBytes = config_.maxBodyBytes;
    reactor_config.retryAfterSeconds = config_.retryAfterSeconds;
    reactor_ = std::make_unique<HttpReactor>(
        reactor_config, &metrics_,
        [this](const HttpRequest &request,
               Clock::time_point received, unsigned inflight) {
            return dispatch(request, received, inflight);
        },
        [this](const HttpRequest &request) {
            return requestTraced(request);
        },
        [](const HttpRequest &request) {
            // Only streaming-flagged routes' POST bodies stream;
            // everything else buffers as before.
            const Route *route = findRoute(request.path);
            return route != nullptr && route->streaming &&
                   request.method == "POST";
        },
        [this](const HttpRequest &request,
               HttpResponse *refusal) {
            // Shard-thread append admission: map lookups only.
            metrics_.addCounter("server.requests");
            requestCount_.fetch_add(1, std::memory_order_relaxed);
            const Route *route = findRoute(request.path);
            if (route == nullptr || !route->streaming) {
                *refusal = httpErrorResponse(
                    404, "unknown path '" + request.path + "'");
                return std::unique_ptr<HttpStreamSink>();
            }
            const std::string endpoint =
                std::string("server.endpoint.") + route->path;
            metrics_.addCounter(endpoint + ".requests");
            return ingest_->openAppend(
                routePathParam(*route, request.path), refusal);
        });
    reactor_->start();
    if (!config_.cachePersistPath.empty() &&
        config_.cachePersistIntervalS > 0.0)
        persistThread_ =
            std::thread([this] { persistLoop(); });
    inform("bwwalld listening on ", config_.bindAddress, ":",
           reactor_->port(), " (", threads, " worker",
           threads == 1 ? "" : "s", ")");
}

void
BwwallServer::persistCache()
{
    std::string error;
    if (!cache_->saveSnapshot(config_.cachePersistPath, &error))
        warn("bwwalld cache: snapshot failed: ", error);
}

void
BwwallServer::persistLoop()
{
    const auto interval =
        std::chrono::duration_cast<std::chrono::milliseconds>(
            std::chrono::duration<double>(
                config_.cachePersistIntervalS));
    std::unique_lock<std::mutex> lock(persistMutex_);
    while (!persistStop_) {
        if (persistCv_.wait_for(lock, interval,
                                [this] { return persistStop_; }))
            break; // the drain takes the final snapshot
        lock.unlock();
        persistCache();
        lock.lock();
    }
}

bool
BwwallServer::requestTraced(const HttpRequest &request) const
{
    if (recorder_ == nullptr)
        return false;
    if (config_.traceAll)
        return true;
    const auto header = request.headers.find("x-bwwall-trace");
    return header != request.headers.end() &&
           header->second != "0";
}

HttpResponse
BwwallServer::handleTrace() const
{
    if (recorder_ == nullptr) {
        return httpErrorResponse(
            404, "tracing is disabled; start bwwalld with --trace");
    }
    HttpResponse response;
    response.body = recorder_->chromeTraceJson();
    response.body += '\n';
    return response;
}

HttpResponse
BwwallServer::handleCluster() const
{
    HttpResponse response;
    const std::shared_ptr<Cluster> cluster = clusterSnapshot();
    if (cluster == nullptr) {
        JsonValue payload = JsonValue::makeObject();
        payload.set("kind", JsonValue("cluster"));
        payload.set("enabled", JsonValue(false));
        payload.set("nodes", JsonValue::makeArray());
        payload.set("node_count", JsonValue(0.0));
        response.body = payload.dump();
    } else {
        response.body = cluster->statusJson().dump();
    }
    response.body += '\n';
    return response;
}

HttpResponse
BwwallServer::handleMetrics(const HttpRequest &request) const
{
    std::ostringstream oss;
    HttpResponse response;
    if (request.query.find("format=json") != std::string::npos) {
        metrics_.writeJson(oss);
    } else {
        metrics_.writeText(oss);
        response.contentType = "text/plain";
    }
    response.body = oss.str();
    return response;
}

HttpResponse
BwwallServer::handleModelQuery(const HttpRequest &request,
                               Clock::time_point received,
                               bool degraded)
{
    JsonValue body;
    std::string parse_error;
    bool parsed;
    {
        Span parse_span("server.parse");
        parsed = JsonValue::parse(request.body.empty()
                                      ? "{}"
                                      : request.body,
                                  &body, &parse_error);
    }
    if (!parsed)
        return httpErrorResponseFor(
            {ErrorCategory::InvalidInput,
             "malformed JSON body: " + parse_error});
    if (!body.isObject())
        return httpErrorResponseFor(
            {ErrorCategory::InvalidInput,
             "request body must be a JSON object"});

    bool was_degraded = false;
    if (degraded && request.path == "/v1/sweep") {
        // The transformed body is also the cache key, so degraded
        // and full-resolution answers never collide in the cache.
        was_degraded = degradeSweepRequest(&body);
        if (was_degraded)
            metrics_.addCounter("server.degraded");
    }

    // The effective deadline is the stricter of the server's
    // --deadline-ms and the client's X-BWWall-Deadline-Ms budget.
    double deadline =
        static_cast<double>(config_.deadlineMs) / 1000.0;
    bool has_deadline = config_.deadlineMs != 0;
    const auto budget =
        request.headers.find("x-bwwall-deadline-ms");
    if (budget != request.headers.end()) {
        char *end = nullptr;
        const double client_ms =
            std::strtod(budget->second.c_str(), &end);
        if (end != nullptr && *end == '\0' &&
            std::isfinite(client_ms) && client_ms > 0.0) {
            const double client = client_ms / 1000.0;
            if (!has_deadline || client < deadline) {
                deadline = client;
                has_deadline = true;
            }
        }
    }
    try {
        const std::string key =
            canonicalCacheKey(request.path, body);

        // Cluster mode (docs/CLUSTER.md): on a local miss for a
        // key another node owns, ask the owner once before
        // computing.  The fill runs inside the single-flight
        // compute slot, so concurrent identical requests here
        // still collapse to one RPC, and the owner's own
        // single-flight makes the cluster-wide compute count one.
        // The loop-prevention rule: a request already marked
        // X-BWWall-Peer-Fill is answered locally, never
        // re-forwarded.
        const std::shared_ptr<Cluster> cluster =
            clusterSnapshot();
        const bool peer_fill_request =
            request.headers.count(kPeerFillHeaderLower) != 0;
        if (peer_fill_request)
            metrics_.addCounter("cluster.peer_fill.received");
        bool peer_filled = false;
        Span cache_span("server.cache");
        const ResultCache::Outcome outcome =
            cache_->getOrCompute(key, [&] {
                if (cluster != nullptr && cluster->enabled()) {
                    if (cluster->selfOwns(key)) {
                        // Counted whether the miss arrived
                        // directly or as a fill RPC, so
                        // owned + fallbacks is the exact
                        // cluster-wide compute count.
                        metrics_.addCounter(
                            "cluster.requests.owned");
                    } else if (peer_fill_request) {
                        // Loop prevention: a fill for a key we
                        // do not own (membership disagreement)
                        // computes locally, never re-forwards.
                        metrics_.addCounter(
                            "cluster.local_fallback_computes");
                    } else {
                        metrics_.addCounter(
                            "cluster.requests.remote");
                        Span fill_span("server.peer_fill");
                        HttpResponse filled;
                        const double remaining =
                            has_deadline
                                ? deadline -
                                      secondsSince(received)
                                : -1.0;
                        if (cluster->fillFromPeer(
                                cluster->owner(key),
                                request.path, body.dump(),
                                remaining, &filled)) {
                            peer_filled = true;
                            CachedResponse cached;
                            cached.status = filled.status;
                            cached.contentType =
                                filled.contentType;
                            cached.body = filled.body;
                            return cached;
                        }
                        metrics_.addCounter(
                            "cluster.local_fallback_computes");
                    }
                }
                Span compute_span("server.compute");
                return executeModelQuery(request.path, body);
            });
        traceInstant(outcome.hit ? "server.cache_hit"
                                 : "server.cache_miss");

        if (has_deadline && secondsSince(received) > deadline) {
            // The answer is computed (and cached for the retry),
            // but this caller's deadline has already passed.
            metrics_.addCounter("server.deadline_exceeded");
            return httpErrorResponse(
                504, "deadline exceeded; result cached for retry");
        }
        HttpResponse response;
        response.status = outcome.response->status;
        response.contentType = outcome.response->contentType;
        response.body = outcome.response->body;
        if (outcome.stale) {
            metrics_.addCounter("server.stale_served");
            response.headers["X-BWWall-Stale"] =
                std::string("1");
        }
        if (peer_filled)
            response.headers[kPeerFilledHeader] =
                std::string("1");
        if (was_degraded)
            response.headers["X-BWWall-Degraded"] =
                std::string("1");
        return response;
    } catch (const BadRequest &e) {
        return httpErrorResponseFor(
            {ErrorCategory::InvalidInput, e.what()});
    } catch (const Errored &e) {
        metrics_.addCounter("server.handler_errors");
        return httpErrorResponseFor(e.error());
    } catch (const std::exception &e) {
        metrics_.addCounter("server.handler_errors");
        return httpErrorResponseFor(
            {ErrorCategory::Faulted,
             std::string("internal error: ") + e.what()});
    }
}

HttpResponse
BwwallServer::handleIngestCreate(const HttpRequest &request)
{
    JsonValue body;
    std::string parse_error;
    if (!JsonValue::parse(request.body.empty() ? "{}"
                                               : request.body,
                          &body, &parse_error))
        return httpErrorResponseFor(
            {ErrorCategory::InvalidInput,
             "malformed JSON body: " + parse_error});
    if (!body.isObject())
        return httpErrorResponseFor(
            {ErrorCategory::InvalidInput,
             "request body must be a JSON object"});
    try {
        return ingest_->create(body);
    } catch (const BadRequest &e) {
        return httpErrorResponseFor(
            {ErrorCategory::InvalidInput, e.what()});
    } catch (const std::exception &e) {
        metrics_.addCounter("server.handler_errors");
        return httpErrorResponseFor(
            {ErrorCategory::Faulted,
             std::string("internal error: ") + e.what()});
    }
}

HttpResponse
BwwallServer::handleIngestSession(const HttpRequest &request,
                                  const Route &route,
                                  unsigned inflight)
{
    const std::string id = routePathParam(route, request.path);
    try {
        if (request.method == "DELETE")
            return ingest_->finalize(id);
        // GET/HEAD snapshots go through overload admission (keyed
        // by the route pattern, not the per-id path, to bound the
        // breaker map); degraded service drops curve resolution.
        const AdmitDecision decision =
            overload_->admit(route.path, inflight);
        if (decision == AdmitDecision::Shed) {
            metrics_.addCounter("server.shed");
            HttpResponse shed = httpErrorResponseFor(
                {ErrorCategory::Overload,
                 "shed by overload control; retry later"});
            shed.headers["Retry-After"] = std::to_string(
                overload_->retryAfterSeconds());
            return shed;
        }
        const bool degraded =
            decision == AdmitDecision::AdmitDegraded;
        const auto received = Clock::now();
        HttpResponse response = ingest_->snapshot(id, degraded);
        if (degraded && response.status == 200) {
            metrics_.addCounter("server.degraded");
            response.headers["X-BWWall-Degraded"] =
                std::string("1");
        }
        overload_->observe(route.path, secondsSince(received),
                           response.status >= 500);
        return response;
    } catch (const Errored &e) {
        metrics_.addCounter("server.handler_errors");
        return httpErrorResponseFor(e.error());
    } catch (const std::exception &e) {
        metrics_.addCounter("server.handler_errors");
        return httpErrorResponseFor(
            {ErrorCategory::Faulted,
             std::string("internal error: ") + e.what()});
    }
}

HttpResponse
BwwallServer::dispatch(const HttpRequest &request,
                       Clock::time_point received,
                       unsigned inflight)
{
    metrics_.addCounter("server.requests");
    requestCount_.fetch_add(1, std::memory_order_relaxed);

    HttpResponse response;
    const Route *route = findRoute(request.path);
    if (route == nullptr) {
        response = httpErrorResponse(
            404, "unknown path '" + request.path + "'");
    } else if (!routeAllowsMethod(*route, request.method)) {
        response = httpErrorResponse(405, route->methodHint);
    } else {
        switch (route->handler) {
          case RouteHandler::Health: {
            JsonValue payload = JsonValue::makeObject();
            payload.set("status", JsonValue("ok"));
            response.body = payload.dump();
            response.body += '\n';
            break;
          }
          case RouteHandler::Metrics:
            response = handleMetrics(request);
            break;
          case RouteHandler::Trace:
            response = handleTrace();
            break;
          case RouteHandler::Cluster:
            response = handleCluster();
            break;
          case RouteHandler::ModelQuery: {
            const AdmitDecision decision =
                overload_->admit(request.path, inflight);
            if (decision == AdmitDecision::Shed) {
                metrics_.addCounter("server.shed");
                response = httpErrorResponseFor(
                    {ErrorCategory::Overload,
                     "shed by overload control; retry later"});
                response.headers["Retry-After"] = std::to_string(
                    overload_->retryAfterSeconds());
            } else {
                response = handleModelQuery(
                    request, received,
                    decision == AdmitDecision::AdmitDegraded);
                // Sheds are not observed: only served requests
                // feed the latency window and the breakers.
                overload_->observe(request.path,
                                   secondsSince(received),
                                   response.status >= 500);
            }
            break;
          }
          case RouteHandler::IngestCreate:
            response = handleIngestCreate(request);
            break;
          case RouteHandler::IngestSession:
            response =
                handleIngestSession(request, *route, inflight);
            break;
        }
    }

    const double elapsed = secondsSince(received);
    // Pattern routes aggregate under the route's path so per-id
    // URLs cannot grow the registry without bound.
    const std::string endpoint =
        "server.endpoint." + (route != nullptr
                                  ? std::string(route->path)
                                  : request.path);
    metrics_.addCounter(endpoint + ".requests");
    metrics_.observeHistogram(endpoint + ".latency_seconds",
                              elapsed);
    metrics_.addCounter(std::string("server.responses.") +
                        statusClass(response.status));
    if (config_.logRequests)
        inform(request.method, ' ', request.target, " -> ",
               response.status, " (",
               static_cast<int>(elapsed * 1e6), " us)");
    return response;
}

void
BwwallServer::requestStop()
{
    if (reactor_ != nullptr)
        reactor_->requestStop();
}

void
BwwallServer::join()
{
    if (reactor_ == nullptr)
        return;
    reactor_->join();
    if (drained_.exchange(true))
        return;
    {
        std::lock_guard<std::mutex> lock(persistMutex_);
        persistStop_ = true;
    }
    persistCv_.notify_all();
    if (persistThread_.joinable())
        persistThread_.join();
    if (!config_.cachePersistPath.empty()) {
        // The drain-time snapshot is what makes a SIGTERM restart
        // warm: every entry the process ever cached is on disk
        // before the process exits.
        persistCache();
    }
    metrics_.setGauge("server.drained", 1.0);
    inform("bwwalld drained: served ", requestCount(),
           " request(s)");
}

void
BwwallServer::stop()
{
    requestStop();
    join();
}

} // namespace bwwall
