/**
 * @file
 * Tiny blocking HTTP/1.1 client for bwwalld.
 *
 * Shared by the bwwall_client example, the perf_server closed-loop
 * load generator, and the server tests, so every consumer talks to
 * the daemon through the same code path.  Keep-alive by default:
 * one HttpClient is one TCP connection, reconnecting transparently
 * when the server (or a Connection: close response) drops it.
 *
 * The API is one entry point: describe the exchange in a Request
 * (method, target, headers, body), tune the attempt in
 * RequestOptions (retry policy, per-call deadline), and call
 * perform().  The older method-per-shape overloads (request, get,
 * post, requestWithRetry) remain as thin wrappers over perform()
 * for one release; new code should call perform() directly.
 *
 * Robustness knobs:
 *  - setConnectTimeoutMs() bounds connect() (non-blocking connect +
 *    poll) so an unreachable server fails fast instead of hanging
 *    in the kernel's SYN retries;
 *  - setReadTimeoutMs() bounds reading one response, so a peer that
 *    accepts the connection but never answers (SIGSTOPped, wedged)
 *    cannot hang the caller;
 *  - RequestOptions::retry layers an idempotency-aware retry policy
 *    on the exchange: capped exponential backoff with deterministic
 *    jitter, a lifetime retry budget, Retry-After awareness, and a
 *    total deadline the server sees via X-BWWall-Deadline-Ms;
 *  - lastFailureKind() classifies transport failures (connection
 *    refused vs timed out vs other), and
 *    HttpRetryPolicy::failFastOnRefused turns an outright refusal
 *    into an immediate failure instead of a retried one — the
 *    cluster's peer-health layer keys off both.
 */

#ifndef BWWALL_SERVER_HTTP_CLIENT_HH
#define BWWALL_SERVER_HTTP_CLIENT_HH

#include <cstddef>
#include <cstdint>
#include <functional>
#include <map>
#include <string>

namespace bwwall {

/** One parsed client-side response. */
struct HttpClientResponse
{
    int status = 0;
    /** Header fields, names lowercased. */
    std::map<std::string, std::string> headers;
    std::string body;
};

/** Tuning of HttpClient::requestWithRetry(). */
struct HttpRetryPolicy
{
    /** Tries per request, the first included (1 = no retries). */
    unsigned maxAttempts = 3;

    /** Backoff before the first retry; doubles per attempt. */
    double initialBackoffMs = 50.0;

    /** Backoff cap (also caps honored Retry-After hints). */
    double maxBackoffMs = 1000.0;

    /** Jitter as a fraction of the backoff, in [0, 1]. */
    double jitter = 0.2;

    /** Deterministic jitter stream (clients are reproducible). */
    std::uint64_t seed = 1;

    /**
     * Lifetime retry budget across all requests on this client: a
     * struggling server gets at most this many extra requests, no
     * matter how many callers retry.
     */
    unsigned budget = 16;

    /**
     * Retry POSTs after transport errors.  Off by default: a POST
     * whose connection died mid-exchange may have been processed.
     * (503/429 responses are always safe to retry — the server
     * explicitly refused the work.)
     */
    bool retryPosts = false;

    /**
     * Total wall-clock deadline across attempts, milliseconds
     * (0 = none).  The remaining budget rides along as the
     * X-BWWall-Deadline-Ms request header, so the server's own
     * deadline tightens to what the client will actually wait for.
     */
    double totalDeadlineMs = 0.0;

    /**
     * Give up immediately on an outright connection refusal
     * instead of burning retry attempts on it: a closed port means
     * nobody is listening, and backing off cannot change that
     * within one call's budget.  The refusal is still reported as
     * a transport failure (FailureKind::ConnectRefused) so callers
     * can classify it.  Off by default — a server restarting
     * between attempts is exactly what retries are for.
     */
    bool failFastOnRefused = false;
};

/** One keep-alive connection to an HTTP server. */
class HttpClient
{
  public:
    /**
     * How the last perform() failed, for callers that react
     * differently to "nobody is listening" (connection refused —
     * the peer process is gone) than to "listening but not
     * answering" (timeouts — the peer may be wedged or slow).
     * None after a successful transport.
     */
    enum class FailureKind
    {
        None,
        ConnectRefused, ///< connect() answered ECONNREFUSED
        ConnectTimeout, ///< connect() outlived its bound
        ReadTimeout,    ///< the response outlived the read bound
        Other,          ///< resolve/send/parse/close failures
    };

    /** One exchange to perform(): the what of a request. */
    struct Request
    {
        std::string method = "GET";
        std::string target = "/";

        /**
         * Extra request headers ("X-BWWall-Trace" opts a bwwalld
         * request into span recording — docs/SERVER.md).
         */
        std::map<std::string, std::string> headers;

        std::string body;

        /**
         * When set, the request body streams with
         * Transfer-Encoding: chunked: the provider is called
         * repeatedly to fill up to @p cap bytes of @p buffer and
         * returns how many it wrote, with 0 ending the stream
         * (each non-empty fill is one wire chunk); `body` is then
         * ignored.  Streamed requests are sent exactly once — the
         * provider is consumed as it runs, so neither the stale
         * keep-alive resend nor RequestOptions::retry applies.
         */
        std::function<std::size_t(char *buffer, std::size_t cap)>
            bodyProvider;
    };

    /** The how of one perform() call. */
    struct RequestOptions
    {
        /**
         * Retry under the client's HttpRetryPolicy (idempotency
         * aware; see setRetryPolicy()).  Off, a transport failure
         * fails the call after the single built-in stale
         * keep-alive reconnect.
         */
        bool retry = false;

        /**
         * Policy override for this call only (implies retry);
         * null uses the client's configured policy.  Not owned;
         * must outlive the call.
         */
        const HttpRetryPolicy *policy = nullptr;

        /**
         * Total wall-clock deadline override for this call,
         * milliseconds; negative defers to the policy's
         * totalDeadlineMs, 0 disables the deadline.
         */
        double deadlineMs = -1.0;
    };

    HttpClient(std::string host, std::uint16_t port)
        : host_(std::move(host)), port_(port)
    {}

    ~HttpClient();

    HttpClient(const HttpClient &) = delete;
    HttpClient &operator=(const HttpClient &) = delete;

    /**
     * Sends one request and reads the full response, applying the
     * options.  Connects (or reconnects) as needed.  Returns false
     * with *error set on transport failure (or, with retry, once
     * the attempts, the budget, or the deadline are exhausted; *out
     * then holds the last response if any attempt transported).
     * HTTP error statuses are successful transports.
     */
    bool perform(const Request &request,
                 const RequestOptions &options,
                 HttpClientResponse *out,
                 std::string *error = nullptr);

    /** perform() with default options (no retry). */
    bool
    perform(const Request &request, HttpClientResponse *out,
            std::string *error = nullptr)
    {
        return perform(request, RequestOptions{}, out, error);
    }

    /** @name Deprecated wrappers (one release): use perform().
     *  @{ */
    bool
    request(const std::string &method, const std::string &target,
            const std::string &body, HttpClientResponse *out,
            std::string *error = nullptr)
    {
        return perform({method, target, {}, body, {}}, out, error);
    }

    bool
    request(const std::string &method, const std::string &target,
            const std::map<std::string, std::string> &headers,
            const std::string &body, HttpClientResponse *out,
            std::string *error = nullptr)
    {
        return perform({method, target, headers, body, {}}, out,
                       error);
    }

    bool
    get(const std::string &target, HttpClientResponse *out,
        std::string *error = nullptr)
    {
        return perform({"GET", target, {}, "", {}}, out, error);
    }

    bool
    post(const std::string &target, const std::string &body,
         HttpClientResponse *out, std::string *error = nullptr)
    {
        return perform({"POST", target, {}, body, {}}, out, error);
    }

    bool
    requestWithRetry(
        const std::string &method, const std::string &target,
        const std::map<std::string, std::string> &headers,
        const std::string &body, HttpClientResponse *out,
        std::string *error = nullptr)
    {
        RequestOptions options;
        options.retry = true;
        return perform({method, target, headers, body, {}}, options,
                       out, error);
    }
    /** @} */

    /** Connect timeout, milliseconds (0 = the OS default). */
    void setConnectTimeoutMs(unsigned ms)
    {
        connectTimeoutMs_ = ms;
    }

    /**
     * Bounds reading one response, milliseconds (0 = wait forever,
     * the historical behavior).  Without it a peer that accepts the
     * connection but never answers — a SIGSTOPped process, a
     * wedged event loop — hangs the caller indefinitely; with it
     * the read fails (FailureKind::ReadTimeout) and the connection
     * is dropped, since a half-read response is unusable.
     */
    void setReadTimeoutMs(unsigned ms) { readTimeoutMs_ = ms; }

    /** Classification of the last perform() transport failure. */
    FailureKind lastFailureKind() const
    {
        return lastFailure_;
    }

    void setRetryPolicy(const HttpRetryPolicy &policy)
    {
        retryPolicy_ = policy;
    }

    /** Retries consumed from the lifetime budget so far. */
    unsigned retriesUsed() const { return retriesUsed_; }

    bool connected() const { return fd_ >= 0; }

  private:
    bool connect(std::string *error);
    bool connectOne(int fd, const void *address,
                    unsigned addressLen, std::string *failure);
    void disconnect();
    bool sendAll(const std::string &wire, std::string *error);
    bool readResponse(HttpClientResponse *out,
                      std::string *error);

    /** One exchange, no retries (stale keep-alive reconnect only). */
    bool performOnce(const Request &request,
                     HttpClientResponse *out, std::string *error);

    /** The retry loop of perform() with options.retry. */
    bool retryLoop(const Request &request,
                   const HttpRetryPolicy &policy,
                   double deadline_ms, HttpClientResponse *out,
                   std::string *error);

    std::string host_;
    std::uint16_t port_;
    int fd_ = -1;
    unsigned connectTimeoutMs_ = 0;
    unsigned readTimeoutMs_ = 0;
    FailureKind lastFailure_ = FailureKind::None;
    HttpRetryPolicy retryPolicy_;
    unsigned retriesUsed_ = 0;
    std::uint64_t jitterState_ = 0;
    std::string buffer_;
};

} // namespace bwwall

#endif // BWWALL_SERVER_HTTP_CLIENT_HH
