/**
 * @file
 * Tiny blocking HTTP/1.1 client for bwwalld.
 *
 * Shared by the bwwall_client example, the perf_server closed-loop
 * load generator, and the server tests, so every consumer talks to
 * the daemon through the same code path.  Keep-alive by default:
 * one HttpClient is one TCP connection, reconnecting transparently
 * when the server (or a Connection: close response) drops it.
 */

#ifndef BWWALL_SERVER_HTTP_CLIENT_HH
#define BWWALL_SERVER_HTTP_CLIENT_HH

#include <cstdint>
#include <map>
#include <string>

namespace bwwall {

/** One parsed client-side response. */
struct HttpClientResponse
{
    int status = 0;
    /** Header fields, names lowercased. */
    std::map<std::string, std::string> headers;
    std::string body;
};

/** One keep-alive connection to an HTTP server. */
class HttpClient
{
  public:
    HttpClient(std::string host, std::uint16_t port)
        : host_(std::move(host)), port_(port)
    {}

    ~HttpClient();

    HttpClient(const HttpClient &) = delete;
    HttpClient &operator=(const HttpClient &) = delete;

    /**
     * Sends one request and reads the full response.  Connects (or
     * reconnects) as needed.  Returns false with *error set on
     * transport failure; HTTP error statuses are successful
     * transports.
     */
    bool request(const std::string &method,
                 const std::string &target,
                 const std::string &body, HttpClientResponse *out,
                 std::string *error = nullptr);

    /**
     * Like request(), with extra request headers ("X-BWWall-Trace"
     * opts a bwwalld request into span recording — docs/SERVER.md).
     */
    bool request(const std::string &method,
                 const std::string &target,
                 const std::map<std::string, std::string> &headers,
                 const std::string &body, HttpClientResponse *out,
                 std::string *error = nullptr);

    /** Convenience wrappers. */
    bool
    get(const std::string &target, HttpClientResponse *out,
        std::string *error = nullptr)
    {
        return request("GET", target, "", out, error);
    }

    bool
    post(const std::string &target, const std::string &body,
         HttpClientResponse *out, std::string *error = nullptr)
    {
        return request("POST", target, body, out, error);
    }

    bool connected() const { return fd_ >= 0; }

  private:
    bool connect(std::string *error);
    void disconnect();
    bool sendAll(const std::string &wire, std::string *error);
    bool readResponse(HttpClientResponse *out,
                      std::string *error);

    std::string host_;
    std::uint16_t port_;
    int fd_ = -1;
    std::string buffer_;
};

} // namespace bwwall

#endif // BWWALL_SERVER_HTTP_CLIENT_HH
