/**
 * @file
 * Minimal HTTP/1.1 framing for bwwalld — no third-party deps.
 *
 * Just enough of RFC 9112 for a JSON query API on loopback/LAN:
 * request-line + headers + Content-Length or chunked bodies,
 * keep-alive connections, and fixed responses.  Deliberately out of
 * scope: transfer codings other than chunked (rejected with 501),
 * multi-line header folding, and TLS.  All limits (header bytes,
 * body bytes) are enforced while parsing so a misbehaving client
 * cannot balloon server memory.
 *
 * Routes flagged `streaming` in the route table use the parser's
 * streaming-body mode: poll() returns Streaming as soon as the head
 * is complete, and the caller drains the decoded body incrementally
 * with takeBody() — a multi-megabyte upload crosses the server in
 * bounded chunks instead of buffering whole.  Streamed bodies are
 * exempt from maxBodyBytes (the ingest session's byte budget governs
 * them); buffered bodies, chunked or not, stay capped.
 *
 * The parser is incremental and socket-free: the reactor's event
 * loops feed whatever bytes arrived into HttpParser::append() and
 * poll() either produces a complete request or reports NeedMore, so
 * one non-blocking shard can interleave thousands of half-read
 * connections.  Serialization is likewise a pure function
 * (serializeHttpResponse) producing the exact wire bytes; the I/O
 * layer owns every send()/recv().
 */

#ifndef BWWALL_SERVER_HTTP_HH
#define BWWALL_SERVER_HTTP_HH

#include <cstddef>
#include <cstdint>
#include <functional>
#include <map>
#include <string>

#include "server/json.hh"
#include "util/error.hh"

namespace bwwall {

/** One parsed request. */
struct HttpRequest
{
    std::string method;           ///< "GET", "POST", ...
    std::string target;           ///< raw request target
    std::string path;             ///< target up to '?'
    std::string query;            ///< target after '?' (no '?')
    /** Header fields, names lowercased, values trimmed. */
    std::map<std::string, std::string> headers;
    std::string body;

    /** Whether the connection may serve another request after this. */
    bool keepAlive = true;
};

/** One response to serialize. */
struct HttpResponse
{
    int status = 200;
    std::string contentType = "application/json";
    std::string body;

    /**
     * Extra response headers (Retry-After, X-BWWall-Stale, ...),
     * serialized verbatim after the framing headers.
     */
    std::map<std::string, std::string> headers;

    /** Send "Connection: close" and stop serving the connection. */
    bool close = false;
};

/** Outcome of one HttpParser::poll(). */
enum class HttpParseStatus
{
    Ok,          ///< *out holds a complete request
    NeedMore,    ///< the buffered bytes are an incomplete request
    Malformed,   ///< unparseable framing; respond 400 and close
    TooLarge,    ///< header or body limit exceeded; respond 413
    Unsupported, ///< a transfer coding other than chunked; 501
    Streaming,   ///< *out holds the head; drain via takeBody()
};

/** Read-side limits of one connection. */
struct HttpLimits
{
    std::size_t maxHeaderBytes = 16u << 10;
    std::size_t maxBodyBytes = 1u << 20;
};

/**
 * Incremental request parser for one connection: append() raw bytes
 * as they arrive, poll() for complete requests.  Leftover bytes
 * (pipelined or half-read follow-up requests) stay buffered between
 * polls, so keep-alive costs nothing.
 */
class HttpParser
{
  public:
    /**
     * Decides, from the head alone, whether a request's body is
     * delivered incrementally (poll() returns Streaming) instead of
     * buffered into HttpRequest::body.
     */
    using StreamPredicate =
        std::function<bool(const HttpRequest &request)>;

    explicit HttpParser(HttpLimits limits) : limits_(limits) {}

    /** Routes with the `streaming` flag install this (reactor). */
    void
    setStreamPredicate(StreamPredicate predicate)
    {
        streamPredicate_ = std::move(predicate);
    }

    /** Buffers @p count raw socket bytes. */
    void
    append(const char *data, std::size_t count)
    {
        buffer_.append(data, count);
    }

    /**
     * Parses the next complete request out of the buffer (consuming
     * its bytes).  Error statuses are sticky decisions for the
     * caller to act on: the buffer is left as-is and the connection
     * should be answered and closed.  Streaming means *out holds the
     * parsed head and the body must be drained with takeBody().
     */
    HttpParseStatus poll(HttpRequest *out);

    /**
     * Streaming-body mode only: decodes whatever body bytes are
     * buffered, appending them to *out, and sets *done once the body
     * (Content-Length or chunked framing) is complete — after which
     * the parser is back in head mode for the next request.  Returns
     * Ok or Malformed (bad chunk framing; close the connection).
     */
    HttpParseStatus takeBody(std::string *out, bool *done);

    /** True while a streaming body is being drained. */
    bool streamingBody() const { return mode_ == Mode::StreamBody; }

    /** True when no unconsumed bytes are buffered. */
    bool empty() const { return buffer_.empty(); }

  private:
    enum class Mode
    {
        Head,        ///< parsing a request head
        BufferedBody,///< decoding a chunked body into pending_
        StreamBody,  ///< body handed out through takeBody()
    };

    enum class ChunkPhase
    {
        Size,    ///< reading a chunk-size line
        Data,    ///< inside chunk data
        DataEnd, ///< expecting the CRLF after chunk data
        Trailer, ///< reading (and discarding) trailer lines
    };

    /** Decodes buffered chunked-coding bytes into *out; false means
     * malformed framing. */
    bool decodeChunked(std::string *out, bool *done);

    HttpParseStatus continueBufferedBody(HttpRequest *out);

    HttpLimits limits_;
    StreamPredicate streamPredicate_;
    std::string buffer_;

    Mode mode_ = Mode::Head;
    bool chunked_ = false;
    /** Content-Length bytes still owed (non-chunked bodies). */
    std::uint64_t bodyRemaining_ = 0;
    std::uint64_t chunkRemaining_ = 0;
    ChunkPhase chunkPhase_ = ChunkPhase::Size;
    /** The request whose chunked body is being buffered. */
    HttpRequest pending_;
};

/**
 * The exact wire bytes of a response: status line, framing headers
 * (Content-Type/Length, Connection), extra headers, blank line,
 * body.  Byte-identical across runs for identical responses.
 */
std::string serializeHttpResponse(const HttpResponse &response);

/** Reason phrase for the handful of statuses the server emits. */
const char *httpStatusText(int status);

/** A canned {"error": message} JSON response. */
HttpResponse httpErrorResponse(int status,
                               const std::string &message);

/**
 * The {"error", "category", "status"} body of a classified Error —
 * the one rendering shared by whole-request error responses and
 * per-item errors inside a /v1/batch response.
 */
JsonValue httpErrorBody(const Error &error);

/**
 * The taxonomy rendering of an Error: status from httpStatusFor()
 * and the httpErrorBody() JSON, so every classified failure looks
 * the same on the wire (docs/SERVER.md tabulates the mapping).
 */
HttpResponse httpErrorResponseFor(const Error &error);

} // namespace bwwall

#endif // BWWALL_SERVER_HTTP_HH
