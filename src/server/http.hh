/**
 * @file
 * Minimal HTTP/1.1 framing for bwwalld — no third-party deps.
 *
 * Just enough of RFC 9112 for a JSON query API on loopback/LAN:
 * request-line + headers + Content-Length bodies, keep-alive
 * connections, and fixed responses.  Deliberately out of scope:
 * chunked transfer encoding (rejected with 501), multi-line header
 * folding, and TLS.  All limits (header bytes, body bytes) are
 * enforced while reading so a misbehaving client cannot balloon
 * server memory, and every read honours the socket receive timeout
 * so a stalled client cannot pin a worker forever.
 */

#ifndef BWWALL_SERVER_HTTP_HH
#define BWWALL_SERVER_HTTP_HH

#include <cstddef>
#include <map>
#include <string>

#include "util/error.hh"

namespace bwwall {

/** One parsed request. */
struct HttpRequest
{
    std::string method;           ///< "GET", "POST", ...
    std::string target;           ///< raw request target
    std::string path;             ///< target up to '?'
    std::string query;            ///< target after '?' (no '?')
    /** Header fields, names lowercased, values trimmed. */
    std::map<std::string, std::string> headers;
    std::string body;

    /** Whether the connection may serve another request after this. */
    bool keepAlive = true;
};

/** One response to serialize. */
struct HttpResponse
{
    int status = 200;
    std::string contentType = "application/json";
    std::string body;

    /**
     * Extra response headers (Retry-After, X-BWWall-Stale, ...),
     * serialized verbatim after the framing headers.
     */
    std::map<std::string, std::string> headers;

    /** Send "Connection: close" and stop serving the connection. */
    bool close = false;
};

/** Outcome of reading one request from a connection. */
enum class HttpReadStatus
{
    Ok,          ///< *out holds a complete request
    Closed,      ///< peer closed cleanly between requests
    Malformed,   ///< unparseable framing; respond 400 and close
    TooLarge,    ///< header or body limit exceeded; respond 413
    Timeout,     ///< socket receive timeout expired; close
    Unsupported, ///< valid HTTP this server refuses (chunked); 501
};

/** Read-side limits of one connection. */
struct HttpLimits
{
    std::size_t maxHeaderBytes = 16u << 10;
    std::size_t maxBodyBytes = 1u << 20;
};

/**
 * One accepted socket being served: buffers leftover bytes between
 * keep-alive requests.  Does not own the fd.
 */
class HttpConnection
{
  public:
    HttpConnection(int fd, HttpLimits limits)
        : fd_(fd), limits_(limits)
    {}

    /** Reads and parses the next request off the connection. */
    HttpReadStatus readRequest(HttpRequest *out);

    /**
     * Serializes and writes a response (headers + body in one
     * buffer); false when the peer is gone.
     */
    bool writeResponse(const HttpResponse &response);

    int fd() const { return fd_; }

  private:
    /** Appends more bytes from the socket; false on EOF/error. */
    enum class Fill
    {
        More,
        Eof,
        Timeout,
        Error,
    };
    Fill fillMore();

    int fd_;
    HttpLimits limits_;
    std::string buffer_;
};

/** Reason phrase for the handful of statuses the server emits. */
const char *httpStatusText(int status);

/** A canned {"error": message} JSON response. */
HttpResponse httpErrorResponse(int status,
                               const std::string &message);

/**
 * The taxonomy rendering of an Error: status from httpStatusFor()
 * and a {"error", "category", "status"} JSON body, so every
 * classified failure looks the same on the wire (docs/SERVER.md
 * tabulates the mapping).
 */
HttpResponse httpErrorResponseFor(const Error &error);

} // namespace bwwall

#endif // BWWALL_SERVER_HTTP_HH
