/**
 * @file
 * Minimal HTTP/1.1 framing for bwwalld — no third-party deps.
 *
 * Just enough of RFC 9112 for a JSON query API on loopback/LAN:
 * request-line + headers + Content-Length bodies, keep-alive
 * connections, and fixed responses.  Deliberately out of scope:
 * chunked transfer encoding (rejected with 501), multi-line header
 * folding, and TLS.  All limits (header bytes, body bytes) are
 * enforced while parsing so a misbehaving client cannot balloon
 * server memory.
 *
 * The parser is incremental and socket-free: the reactor's event
 * loops feed whatever bytes arrived into HttpParser::append() and
 * poll() either produces a complete request or reports NeedMore, so
 * one non-blocking shard can interleave thousands of half-read
 * connections.  Serialization is likewise a pure function
 * (serializeHttpResponse) producing the exact wire bytes; the I/O
 * layer owns every send()/recv().
 */

#ifndef BWWALL_SERVER_HTTP_HH
#define BWWALL_SERVER_HTTP_HH

#include <cstddef>
#include <map>
#include <string>

#include "server/json.hh"
#include "util/error.hh"

namespace bwwall {

/** One parsed request. */
struct HttpRequest
{
    std::string method;           ///< "GET", "POST", ...
    std::string target;           ///< raw request target
    std::string path;             ///< target up to '?'
    std::string query;            ///< target after '?' (no '?')
    /** Header fields, names lowercased, values trimmed. */
    std::map<std::string, std::string> headers;
    std::string body;

    /** Whether the connection may serve another request after this. */
    bool keepAlive = true;
};

/** One response to serialize. */
struct HttpResponse
{
    int status = 200;
    std::string contentType = "application/json";
    std::string body;

    /**
     * Extra response headers (Retry-After, X-BWWall-Stale, ...),
     * serialized verbatim after the framing headers.
     */
    std::map<std::string, std::string> headers;

    /** Send "Connection: close" and stop serving the connection. */
    bool close = false;
};

/** Outcome of one HttpParser::poll(). */
enum class HttpParseStatus
{
    Ok,          ///< *out holds a complete request
    NeedMore,    ///< the buffered bytes are an incomplete request
    Malformed,   ///< unparseable framing; respond 400 and close
    TooLarge,    ///< header or body limit exceeded; respond 413
    Unsupported, ///< valid HTTP this server refuses (chunked); 501
};

/** Read-side limits of one connection. */
struct HttpLimits
{
    std::size_t maxHeaderBytes = 16u << 10;
    std::size_t maxBodyBytes = 1u << 20;
};

/**
 * Incremental request parser for one connection: append() raw bytes
 * as they arrive, poll() for complete requests.  Leftover bytes
 * (pipelined or half-read follow-up requests) stay buffered between
 * polls, so keep-alive costs nothing.
 */
class HttpParser
{
  public:
    explicit HttpParser(HttpLimits limits) : limits_(limits) {}

    /** Buffers @p count raw socket bytes. */
    void
    append(const char *data, std::size_t count)
    {
        buffer_.append(data, count);
    }

    /**
     * Parses the next complete request out of the buffer (consuming
     * its bytes).  Error statuses are sticky decisions for the
     * caller to act on: the buffer is left as-is and the connection
     * should be answered and closed.
     */
    HttpParseStatus poll(HttpRequest *out);

    /** True when no unconsumed bytes are buffered. */
    bool empty() const { return buffer_.empty(); }

  private:
    HttpLimits limits_;
    std::string buffer_;
};

/**
 * The exact wire bytes of a response: status line, framing headers
 * (Content-Type/Length, Connection), extra headers, blank line,
 * body.  Byte-identical across runs for identical responses.
 */
std::string serializeHttpResponse(const HttpResponse &response);

/** Reason phrase for the handful of statuses the server emits. */
const char *httpStatusText(int status);

/** A canned {"error": message} JSON response. */
HttpResponse httpErrorResponse(int status,
                               const std::string &message);

/**
 * The {"error", "category", "status"} body of a classified Error —
 * the one rendering shared by whole-request error responses and
 * per-item errors inside a /v1/batch response.
 */
JsonValue httpErrorBody(const Error &error);

/**
 * The taxonomy rendering of an Error: status from httpStatusFor()
 * and the httpErrorBody() JSON, so every classified failure looks
 * the same on the wire (docs/SERVER.md tabulates the mapping).
 */
HttpResponse httpErrorResponseFor(const Error &error);

} // namespace bwwall

#endif // BWWALL_SERVER_HTTP_HH
