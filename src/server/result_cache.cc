#include "server/result_cache.hh"

#include <fcntl.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <cstdio>
#include <cstring>

#include "trace/hashing.hh"
#include "util/error.hh"
#include "util/fault.hh"
#include "util/metrics.hh"

namespace bwwall {

namespace {

/** Fixed accounting overhead per entry (map node, list node, ptr). */
constexpr std::size_t kEntryOverhead = 128;

/** Snapshot file magic (8 bytes) and format version. */
constexpr char kSnapshotMagic[8] = {'B', 'W', 'W', 'L',
                                    'C', 'A', 'C', 'H'};
constexpr std::uint32_t kSnapshotVersion = 1;

/** FNV-1a over @p bytes, finished with mix64 (the checksum). */
std::uint64_t
snapshotChecksum(const std::string &bytes)
{
    std::uint64_t h = 1469598103934665603ULL;
    for (const char c : bytes) {
        h ^= static_cast<unsigned char>(c);
        h *= 1099511628211ULL;
    }
    return mix64(h);
}

void
putU32(std::string *out, std::uint32_t value)
{
    char raw[sizeof value];
    std::memcpy(raw, &value, sizeof value);
    out->append(raw, sizeof value);
}

void
putU64(std::string *out, std::uint64_t value)
{
    char raw[sizeof value];
    std::memcpy(raw, &value, sizeof value);
    out->append(raw, sizeof value);
}

/** Bounds-checked little reader over a loaded snapshot payload. */
struct SnapshotReader
{
    const std::string &bytes;
    std::size_t at = 0;

    bool
    read(void *out, std::size_t n)
    {
        if (bytes.size() - at < n)
            return false;
        std::memcpy(out, bytes.data() + at, n);
        at += n;
        return true;
    }

    bool
    readU32(std::uint32_t *out)
    {
        return read(out, sizeof *out);
    }

    bool
    readU64(std::uint64_t *out)
    {
        return read(out, sizeof *out);
    }

    bool
    readString(std::string *out, std::size_t n)
    {
        if (bytes.size() - at < n)
            return false;
        out->assign(bytes.data() + at, n);
        at += n;
        return true;
    }
};

std::size_t
entryBytes(const std::string &key, const CachedResponse &response)
{
    return key.size() + response.body.size() +
           response.contentType.size() + kEntryOverhead;
}

std::uint64_t
hashKey(const std::string &key)
{
    // FNV-1a over the bytes, finished with the SplitMix64 mixer so
    // shard selection stays uniform even for near-identical keys.
    std::uint64_t h = 1469598103934665603ULL;
    for (const char c : key) {
        h ^= static_cast<unsigned char>(c);
        h *= 1099511628211ULL;
    }
    return mix64(h);
}

} // namespace

ResultCache::ResultCache(const ResultCacheConfig &config,
                         MetricsRegistry *metrics)
    : metrics_(metrics)
{
    const std::size_t shards = std::max<std::size_t>(
        config.shardCount, 1);
    shardBudget_ = config.maxBytes / shards;
    if (config.ttlSeconds > 0.0)
        ttl_ = std::chrono::duration_cast<std::chrono::nanoseconds>(
            std::chrono::duration<double>(config.ttlSeconds));
    if (config.staleSeconds > 0.0)
        stale_ =
            std::chrono::duration_cast<std::chrono::nanoseconds>(
                std::chrono::duration<double>(config.staleSeconds));
    shards_.reserve(shards);
    for (std::size_t i = 0; i < shards; ++i)
        shards_.push_back(std::make_unique<Shard>());
}

ResultCache::Shard &
ResultCache::shardFor(const std::string &key)
{
    return *shards_[hashKey(key) % shards_.size()];
}

void
ResultCache::eraseLocked(
    Shard &shard,
    std::unordered_map<std::string, Entry>::iterator it)
{
    shard.bytes -= it->second.bytes;
    shard.lru.erase(it->second.lruIt);
    shard.entries.erase(it);
}

void
ResultCache::insertLocked(
    Shard &shard, const std::string &key,
    std::shared_ptr<const CachedResponse> response)
{
    const std::size_t bytes = entryBytes(key, *response);
    if (shardBudget_ == 0 || bytes > shardBudget_)
        return; // would never fit; serve uncached
    // A revalidation replaces the stale entry it left in place.
    const auto existing = shard.entries.find(key);
    if (existing != shard.entries.end())
        eraseLocked(shard, existing);
    while (shard.bytes + bytes > shardBudget_ &&
           !shard.lru.empty()) {
        const auto victim = shard.entries.find(shard.lru.back());
        eraseLocked(shard, victim);
        if (metrics_ != nullptr)
            metrics_->addCounter("cache.evictions");
    }
    shard.lru.push_front(key);
    Entry entry;
    entry.response = std::move(response);
    entry.lruIt = shard.lru.begin();
    entry.bytes = bytes;
    if (ttl_.count() > 0)
        entry.expiry = Clock::now() + ttl_;
    shard.bytes += bytes;
    shard.entries.insert_or_assign(key, std::move(entry));
}

ResultCache::Outcome
ResultCache::getOrCompute(const std::string &key,
                          const Compute &compute)
{
    Shard &shard = shardFor(key);
    std::shared_ptr<Flight> flight;
    bool owner = false;
    {
        std::unique_lock<std::mutex> lock(shard.mutex);
        const auto it = shard.entries.find(key);
        if (it != shard.entries.end()) {
            const auto now = Clock::now();
            const bool expired =
                ttl_.count() > 0 && now >= it->second.expiry;
            if (!expired) {
                shard.lru.splice(shard.lru.begin(), shard.lru,
                                 it->second.lruIt);
                if (metrics_ != nullptr)
                    metrics_->addCounter("cache.hits");
                return {it->second.response, true, false, false};
            }
            const bool within_stale =
                stale_.count() > 0 &&
                now < it->second.expiry + stale_;
            if (!within_stale) {
                eraseLocked(shard, it);
                if (metrics_ != nullptr)
                    metrics_->addCounter("cache.expired");
            } else if (shard.flights.count(key) != 0) {
                // A revalidation is already in flight: serve the
                // expired entry instead of joining it.
                shard.lru.splice(shard.lru.begin(), shard.lru,
                                 it->second.lruIt);
                if (metrics_ != nullptr)
                    metrics_->addCounter("cache.stale_served");
                return {it->second.response, true, false, true};
            } else {
                // This caller becomes the revalidating flight; the
                // stale entry stays behind for concurrent callers.
                if (metrics_ != nullptr)
                    metrics_->addCounter("cache.revalidations");
            }
        }
        // The thread that registers the flight owns the compute;
        // everyone else joins it and waits for the result.
        const auto in_flight = shard.flights.find(key);
        if (in_flight != shard.flights.end()) {
            flight = in_flight->second;
        } else {
            flight = std::make_shared<Flight>();
            shard.flights.emplace(key, flight);
            owner = true;
        }
    }

    if (!owner) {
        std::unique_lock<std::mutex> lock(flight->mutex);
        flight->cv.wait(lock, [&] { return flight->done; });
        if (metrics_ != nullptr)
            metrics_->addCounter("cache.single_flight_joined");
        if (flight->error)
            std::rethrow_exception(flight->error);
        return {flight->response, false, true};
    }

    if (metrics_ != nullptr)
        metrics_->addCounter("cache.misses");

    std::shared_ptr<const CachedResponse> response;
    std::exception_ptr error;
    try {
        if (FAULT_POINT("cache.compute")) {
            throw Errored(ErrorCategory::Faulted,
                          "injected fault 'cache.compute'");
        }
        response =
            std::make_shared<const CachedResponse>(compute());
    } catch (...) {
        error = std::current_exception();
    }

    {
        std::lock_guard<std::mutex> lock(shard.mutex);
        shard.flights.erase(key);
        if (error == nullptr && response->status == 200)
            insertLocked(shard, key, response);
    }
    {
        std::lock_guard<std::mutex> lock(flight->mutex);
        flight->response = response;
        flight->error = error;
        flight->done = true;
    }
    flight->cv.notify_all();

    if (metrics_ != nullptr) {
        metrics_->setGauge("cache.bytes",
                           static_cast<double>(sizeBytes()));
        metrics_->setGauge("cache.entries",
                           static_cast<double>(entryCount()));
    }

    if (error)
        std::rethrow_exception(error);
    return {std::move(response), false, false};
}

std::size_t
ResultCache::sizeBytes() const
{
    std::size_t total = 0;
    for (const auto &shard : shards_) {
        std::lock_guard<std::mutex> lock(shard->mutex);
        total += shard->bytes;
    }
    return total;
}

std::size_t
ResultCache::entryCount() const
{
    std::size_t total = 0;
    for (const auto &shard : shards_) {
        std::lock_guard<std::mutex> lock(shard->mutex);
        total += shard->entries.size();
    }
    return total;
}

bool
ResultCache::saveSnapshot(const std::string &path,
                          std::string *error) const
{
    // Serialize least-recently-used first, so re-inserting in file
    // order on load rebuilds the same LRU ranking.
    std::string payload;
    std::uint64_t entries = 0;
    putU64(&payload, 0); // patched below
    for (const auto &shard : shards_) {
        std::lock_guard<std::mutex> lock(shard->mutex);
        for (auto it = shard->lru.rbegin();
             it != shard->lru.rend(); ++it) {
            const Entry &entry = shard->entries.at(*it);
            const CachedResponse &response = *entry.response;
            putU32(&payload,
                   static_cast<std::uint32_t>(it->size()));
            putU32(&payload,
                   static_cast<std::uint32_t>(response.status));
            putU32(&payload,
                   static_cast<std::uint32_t>(
                       response.contentType.size()));
            putU64(&payload, response.body.size());
            payload.append(*it);
            payload.append(response.contentType);
            payload.append(response.body);
            ++entries;
        }
    }
    std::memcpy(payload.data() + 0, &entries, sizeof entries);

    std::string wire(kSnapshotMagic, sizeof kSnapshotMagic);
    putU32(&wire, kSnapshotVersion);
    putU64(&wire, payload.size());
    putU64(&wire, snapshotChecksum(payload));
    wire.append(payload);

    // Atomic replace: a crash mid-write leaves the old snapshot.
    const std::string tmp = path + ".tmp";
    const int fd = ::open(tmp.c_str(),
                          O_WRONLY | O_CREAT | O_TRUNC, 0644);
    if (fd < 0) {
        if (error != nullptr)
            *error = "open '" + tmp +
                     "': " + std::strerror(errno);
        return false;
    }
    std::size_t written = 0;
    bool ok = true;
    while (ok && written < wire.size()) {
        const ssize_t n = ::write(fd, wire.data() + written,
                                  wire.size() - written);
        if (n < 0) {
            if (errno == EINTR)
                continue;
            if (error != nullptr)
                *error = "write '" + tmp +
                         "': " + std::strerror(errno);
            ok = false;
        } else {
            written += static_cast<std::size_t>(n);
        }
    }
    if (ok && ::fsync(fd) != 0) {
        if (error != nullptr)
            *error = "fsync '" + tmp +
                     "': " + std::strerror(errno);
        ok = false;
    }
    ::close(fd);
    if (ok && std::rename(tmp.c_str(), path.c_str()) != 0) {
        if (error != nullptr)
            *error = "rename '" + tmp + "' -> '" + path +
                     "': " + std::strerror(errno);
        ok = false;
    }
    if (!ok) {
        ::unlink(tmp.c_str());
        return false;
    }
    if (metrics_ != nullptr)
        metrics_->addCounter("cache.persist.saved", entries);
    return true;
}

bool
ResultCache::loadSnapshot(const std::string &path,
                          std::string *error)
{
    const auto discard = [&](const std::string &reason) {
        if (metrics_ != nullptr)
            metrics_->addCounter("cache.persist.discarded");
        if (error != nullptr)
            *error = reason;
        return false;
    };

    const int fd = ::open(path.c_str(), O_RDONLY);
    if (fd < 0) {
        if (errno == ENOENT)
            return true; // fresh boot: nothing to restore
        return discard("open '" + path +
                       "': " + std::strerror(errno));
    }
    std::string wire;
    char chunk[1 << 16];
    for (;;) {
        const ssize_t n = ::read(fd, chunk, sizeof chunk);
        if (n < 0) {
            if (errno == EINTR)
                continue;
            ::close(fd);
            return discard("read '" + path +
                           "': " + std::strerror(errno));
        }
        if (n == 0)
            break;
        wire.append(chunk, static_cast<std::size_t>(n));
    }
    ::close(fd);

    // Validate everything before trusting anything: header, then
    // declared size, then checksum, then a full structural parse.
    SnapshotReader header{wire};
    char magic[sizeof kSnapshotMagic];
    std::uint32_t version = 0;
    std::uint64_t payload_size = 0;
    std::uint64_t checksum = 0;
    if (!header.read(magic, sizeof magic) ||
        std::memcmp(magic, kSnapshotMagic, sizeof magic) != 0)
        return discard("not a cache snapshot (bad magic)");
    if (!header.readU32(&version) ||
        version != kSnapshotVersion)
        return discard("snapshot version " +
                       std::to_string(version) +
                       " != " + std::to_string(kSnapshotVersion));
    if (!header.readU64(&payload_size) ||
        !header.readU64(&checksum))
        return discard("truncated snapshot header");
    if (wire.size() - header.at != payload_size)
        return discard("truncated snapshot payload (" +
                       std::to_string(wire.size() - header.at) +
                       " of " + std::to_string(payload_size) +
                       " bytes)");
    const std::string payload = wire.substr(header.at);
    if (snapshotChecksum(payload) != checksum)
        return discard("snapshot checksum mismatch");

    SnapshotReader reader{payload};
    std::uint64_t entries = 0;
    if (!reader.readU64(&entries))
        return discard("truncated snapshot payload");
    struct Parsed
    {
        std::string key;
        std::shared_ptr<const CachedResponse> response;
    };
    std::vector<Parsed> parsed;
    for (std::uint64_t i = 0; i < entries; ++i) {
        std::uint32_t key_len = 0, status = 0, ct_len = 0;
        std::uint64_t body_len = 0;
        if (!reader.readU32(&key_len) ||
            !reader.readU32(&status) ||
            !reader.readU32(&ct_len) ||
            !reader.readU64(&body_len))
            return discard("truncated snapshot entry " +
                           std::to_string(i));
        if (status != 200) {
            // Only 200s are ever stored; anything else means the
            // payload is not what the checksum claims it is.
            return discard("snapshot entry " + std::to_string(i) +
                           " has status " +
                           std::to_string(status));
        }
        Parsed entry;
        auto response = std::make_shared<CachedResponse>();
        response->status = static_cast<int>(status);
        if (!reader.readString(&entry.key, key_len) ||
            !reader.readString(&response->contentType, ct_len) ||
            !reader.readString(&response->body,
                               static_cast<std::size_t>(
                                   body_len)))
            return discard("truncated snapshot entry " +
                           std::to_string(i));
        entry.response = std::move(response);
        parsed.push_back(std::move(entry));
    }
    if (reader.at != payload.size())
        return discard("trailing bytes after snapshot entries");

    std::uint64_t loaded = 0;
    for (Parsed &entry : parsed) {
        Shard &shard = shardFor(entry.key);
        std::lock_guard<std::mutex> lock(shard.mutex);
        insertLocked(shard, entry.key,
                     std::move(entry.response));
        ++loaded;
    }
    if (metrics_ != nullptr) {
        metrics_->addCounter("cache.persist.loaded", loaded);
        metrics_->setGauge("cache.bytes",
                           static_cast<double>(sizeBytes()));
        metrics_->setGauge("cache.entries",
                           static_cast<double>(entryCount()));
    }
    return true;
}

void
ResultCache::invalidateAll()
{
    for (const auto &shard : shards_) {
        std::lock_guard<std::mutex> lock(shard->mutex);
        shard->entries.clear();
        shard->lru.clear();
        shard->bytes = 0;
    }
}

} // namespace bwwall
