#include "server/result_cache.hh"

#include <algorithm>

#include "trace/hashing.hh"
#include "util/error.hh"
#include "util/fault.hh"
#include "util/metrics.hh"

namespace bwwall {

namespace {

/** Fixed accounting overhead per entry (map node, list node, ptr). */
constexpr std::size_t kEntryOverhead = 128;

std::size_t
entryBytes(const std::string &key, const CachedResponse &response)
{
    return key.size() + response.body.size() +
           response.contentType.size() + kEntryOverhead;
}

std::uint64_t
hashKey(const std::string &key)
{
    // FNV-1a over the bytes, finished with the SplitMix64 mixer so
    // shard selection stays uniform even for near-identical keys.
    std::uint64_t h = 1469598103934665603ULL;
    for (const char c : key) {
        h ^= static_cast<unsigned char>(c);
        h *= 1099511628211ULL;
    }
    return mix64(h);
}

} // namespace

ResultCache::ResultCache(const ResultCacheConfig &config,
                         MetricsRegistry *metrics)
    : metrics_(metrics)
{
    const std::size_t shards = std::max<std::size_t>(
        config.shardCount, 1);
    shardBudget_ = config.maxBytes / shards;
    if (config.ttlSeconds > 0.0)
        ttl_ = std::chrono::duration_cast<std::chrono::nanoseconds>(
            std::chrono::duration<double>(config.ttlSeconds));
    if (config.staleSeconds > 0.0)
        stale_ =
            std::chrono::duration_cast<std::chrono::nanoseconds>(
                std::chrono::duration<double>(config.staleSeconds));
    shards_.reserve(shards);
    for (std::size_t i = 0; i < shards; ++i)
        shards_.push_back(std::make_unique<Shard>());
}

ResultCache::Shard &
ResultCache::shardFor(const std::string &key)
{
    return *shards_[hashKey(key) % shards_.size()];
}

void
ResultCache::eraseLocked(
    Shard &shard,
    std::unordered_map<std::string, Entry>::iterator it)
{
    shard.bytes -= it->second.bytes;
    shard.lru.erase(it->second.lruIt);
    shard.entries.erase(it);
}

void
ResultCache::insertLocked(
    Shard &shard, const std::string &key,
    std::shared_ptr<const CachedResponse> response)
{
    const std::size_t bytes = entryBytes(key, *response);
    if (shardBudget_ == 0 || bytes > shardBudget_)
        return; // would never fit; serve uncached
    // A revalidation replaces the stale entry it left in place.
    const auto existing = shard.entries.find(key);
    if (existing != shard.entries.end())
        eraseLocked(shard, existing);
    while (shard.bytes + bytes > shardBudget_ &&
           !shard.lru.empty()) {
        const auto victim = shard.entries.find(shard.lru.back());
        eraseLocked(shard, victim);
        if (metrics_ != nullptr)
            metrics_->addCounter("cache.evictions");
    }
    shard.lru.push_front(key);
    Entry entry;
    entry.response = std::move(response);
    entry.lruIt = shard.lru.begin();
    entry.bytes = bytes;
    if (ttl_.count() > 0)
        entry.expiry = Clock::now() + ttl_;
    shard.bytes += bytes;
    shard.entries.insert_or_assign(key, std::move(entry));
}

ResultCache::Outcome
ResultCache::getOrCompute(const std::string &key,
                          const Compute &compute)
{
    Shard &shard = shardFor(key);
    std::shared_ptr<Flight> flight;
    bool owner = false;
    {
        std::unique_lock<std::mutex> lock(shard.mutex);
        const auto it = shard.entries.find(key);
        if (it != shard.entries.end()) {
            const auto now = Clock::now();
            const bool expired =
                ttl_.count() > 0 && now >= it->second.expiry;
            if (!expired) {
                shard.lru.splice(shard.lru.begin(), shard.lru,
                                 it->second.lruIt);
                if (metrics_ != nullptr)
                    metrics_->addCounter("cache.hits");
                return {it->second.response, true, false, false};
            }
            const bool within_stale =
                stale_.count() > 0 &&
                now < it->second.expiry + stale_;
            if (!within_stale) {
                eraseLocked(shard, it);
                if (metrics_ != nullptr)
                    metrics_->addCounter("cache.expired");
            } else if (shard.flights.count(key) != 0) {
                // A revalidation is already in flight: serve the
                // expired entry instead of joining it.
                shard.lru.splice(shard.lru.begin(), shard.lru,
                                 it->second.lruIt);
                if (metrics_ != nullptr)
                    metrics_->addCounter("cache.stale_served");
                return {it->second.response, true, false, true};
            } else {
                // This caller becomes the revalidating flight; the
                // stale entry stays behind for concurrent callers.
                if (metrics_ != nullptr)
                    metrics_->addCounter("cache.revalidations");
            }
        }
        // The thread that registers the flight owns the compute;
        // everyone else joins it and waits for the result.
        const auto in_flight = shard.flights.find(key);
        if (in_flight != shard.flights.end()) {
            flight = in_flight->second;
        } else {
            flight = std::make_shared<Flight>();
            shard.flights.emplace(key, flight);
            owner = true;
        }
    }

    if (!owner) {
        std::unique_lock<std::mutex> lock(flight->mutex);
        flight->cv.wait(lock, [&] { return flight->done; });
        if (metrics_ != nullptr)
            metrics_->addCounter("cache.single_flight_joined");
        if (flight->error)
            std::rethrow_exception(flight->error);
        return {flight->response, false, true};
    }

    if (metrics_ != nullptr)
        metrics_->addCounter("cache.misses");

    std::shared_ptr<const CachedResponse> response;
    std::exception_ptr error;
    try {
        if (FAULT_POINT("cache.compute")) {
            throw Errored(ErrorCategory::Faulted,
                          "injected fault 'cache.compute'");
        }
        response =
            std::make_shared<const CachedResponse>(compute());
    } catch (...) {
        error = std::current_exception();
    }

    {
        std::lock_guard<std::mutex> lock(shard.mutex);
        shard.flights.erase(key);
        if (error == nullptr && response->status == 200)
            insertLocked(shard, key, response);
    }
    {
        std::lock_guard<std::mutex> lock(flight->mutex);
        flight->response = response;
        flight->error = error;
        flight->done = true;
    }
    flight->cv.notify_all();

    if (metrics_ != nullptr) {
        metrics_->setGauge("cache.bytes",
                           static_cast<double>(sizeBytes()));
        metrics_->setGauge("cache.entries",
                           static_cast<double>(entryCount()));
    }

    if (error)
        std::rethrow_exception(error);
    return {std::move(response), false, false};
}

std::size_t
ResultCache::sizeBytes() const
{
    std::size_t total = 0;
    for (const auto &shard : shards_) {
        std::lock_guard<std::mutex> lock(shard->mutex);
        total += shard->bytes;
    }
    return total;
}

std::size_t
ResultCache::entryCount() const
{
    std::size_t total = 0;
    for (const auto &shard : shards_) {
        std::lock_guard<std::mutex> lock(shard->mutex);
        total += shard->entries.size();
    }
    return total;
}

void
ResultCache::invalidateAll()
{
    for (const auto &shard : shards_) {
        std::lock_guard<std::mutex> lock(shard->mutex);
        shard->entries.clear();
        shard->lru.clear();
        shard->bytes = 0;
    }
}

} // namespace bwwall
