/**
 * @file
 * The declarative route table shared by dispatch and overload
 * control.
 *
 * bwwalld's endpoints used to live in an if/else chain in server.cc
 * with the overload controller keeping its own idea of which paths
 * are expensive.  Both now read this one table: each route names its
 * path, the method it accepts, the handler that serves it, a cost
 * class (what the overload controller sheds first), and whether the
 * endpoint supports degraded (reduced-resolution) service.  Adding
 * an endpoint is one table row; the 405 hint, the admission policy,
 * and the dispatch switch all follow from it.
 */

#ifndef BWWALL_SERVER_ROUTES_HH
#define BWWALL_SERVER_ROUTES_HH

#include <cstddef>
#include <string>

namespace bwwall {

/** Which server code path serves a route. */
enum class RouteHandler
{
    Health,        ///< GET /healthz liveness probe
    Metrics,       ///< GET /metrics registry dump
    Trace,         ///< GET /v1/trace span export
    Cluster,       ///< GET /v1/cluster membership + shard stats
    ModelQuery,    ///< POST model-query endpoints (cache + overload)
    IngestCreate,  ///< POST /v1/trace/ingest session creation
    IngestSession, ///< per-session append / snapshot / finalize
};

/**
 * Admission cost class.  Control routes bypass overload admission
 * entirely, Cheap routes shed only in a full latency shed, and
 * Expensive routes give way first under pressure.
 */
enum class RouteCost
{
    Control,
    Cheap,
    Expensive,
};

/** One row of the table. */
struct Route
{
    /**
     * Either an exact path or a pattern whose final segment is the
     * literal "{id}" (e.g. "/v1/trace/ingest/{id}"), matching any
     * single non-empty segment there.
     */
    const char *path;

    /** Space-separated accepted methods ("POST", "POST GET DELETE"). */
    const char *method;

    bool allowHead; ///< also accept HEAD (health probes)
    RouteHandler handler;
    RouteCost cost;

    /**
     * Under pressure this route may be admitted at reduced
     * resolution instead of shed (/v1/sweep and ingest snapshots:
     * both have a well-defined cheaper form; batch bodies do not).
     */
    bool degradable;

    /**
     * POST bodies on this route are streamed: the reactor hands the
     * body to a stream sink chunk by chunk instead of buffering it,
     * and the per-request maxBodyBytes limit is replaced by the
     * sink's own byte budget (for ingest appends, the session's
     * --max-session-bytes — enforced with the same 413 taxonomy).
     */
    bool streaming;

    /** The 405 body for a wrong-method request. */
    const char *methodHint;
};

/** The table; terminated by count, not a sentinel. */
const Route *routeTable(std::size_t *count);

/** The route serving @p path, or nullptr (a 404). */
const Route *findRoute(const std::string &path);

/** True when @p method is acceptable for @p route. */
bool routeAllowsMethod(const Route &route,
                       const std::string &method);

/**
 * The concrete text matched by a pattern route's "{id}" segment
 * (empty for exact routes or a non-matching path).
 */
std::string routePathParam(const Route &route,
                           const std::string &path);

} // namespace bwwall

#endif // BWWALL_SERVER_ROUTES_HH
