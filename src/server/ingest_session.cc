#include "server/ingest_session.hh"

#include <utility>
#include <vector>

#include "cache/miss_curve.hh"
#include "model/bandwidth_wall.hh"
#include "server/model_service.hh"
#include "util/fault.hh"
#include "util/metrics.hh"
#include "util/units.hh"

namespace bwwall {

namespace {

const char *
stateName(int state)
{
    switch (state) {
      case 0: return "open";
      case 1: return "finalized";
      default: return "failed";
    }
}

} // namespace

/** One live session; its own lock serializes appends against
 * snapshots. */
struct IngestSessionManager::Session
{
    enum State { Open = 0, Finalized = 1, Failed = 2 };

    explicit Session(const StreamingEstimatorConfig &config,
                     StreamingTraceDecoder::Format format)
        : decoder(format), estimator(config)
    {
    }

    std::mutex mutex;
    std::string id;
    int state = Open;
    /** One append streams at a time; a second concurrent one is 409. */
    bool appendInProgress = false;

    StreamingTraceDecoder decoder;
    StreamingMissCurveEstimator estimator;

    std::uint64_t bytesAppended = 0;
    std::uint64_t appendCount = 0;

    /** Advisor scenario knobs fixed at create time. */
    double advisorTotalCeas = 32.0;
    double advisorTrafficBudget = 1.0;

    Clock::time_point lastTouched{};
};

/**
 * The per-append HttpStreamSink: feeds decoded chunks into the
 * session on the owning shard thread.  Destruction before
 * onComplete() is the reactor's abort signal; the session then
 * moves to Failed because an unknown prefix of the append was
 * applied.
 */
class IngestSessionManager::AppendSink : public HttpStreamSink
{
  public:
    AppendSink(IngestSessionManager *manager,
               std::shared_ptr<Session> session)
        : manager_(manager), session_(std::move(session))
    {
    }

    ~AppendSink() override
    {
        std::lock_guard<std::mutex> lock(session_->mutex);
        session_->appendInProgress = false;
        if (!completed_ && session_->state == Session::Open) {
            session_->state = Session::Failed;
            manager_->metrics_->addCounter("ingest.aborts");
        }
    }

    bool
    onData(const char *data, std::size_t count,
           HttpResponse *error) override
    {
        std::lock_guard<std::mutex> lock(session_->mutex);
        if (FAULT_POINT("ingest.append")) {
            session_->state = Session::Failed;
            *error = httpErrorResponseFor(
                {ErrorCategory::Faulted,
                 "injected fault: ingest.append"});
            return false;
        }
        const std::size_t budget = manager_->config_.maxSessionBytes;
        if (budget != 0 &&
            session_->bytesAppended + count > budget) {
            session_->state = Session::Failed;
            *error = httpErrorResponse(
                413, "session byte budget exceeded (" +
                         std::to_string(budget) +
                         " bytes); the session is failed");
            return false;
        }
        std::vector<MemoryAccess> records;
        const Expected<std::size_t> decoded =
            session_->decoder.feed(data, count, &records);
        if (!decoded.ok()) {
            session_->state = Session::Failed;
            *error = httpErrorResponseFor(decoded.error());
            return false;
        }
        session_->estimator.append(records);
        session_->bytesAppended += count;
        appendedBytes_ += count;
        manager_->metrics_->addCounter("ingest.records",
                                       records.size());
        manager_->metrics_->addCounter("ingest.bytes", count);
        return true;
    }

    HttpResponse
    onComplete() override
    {
        completed_ = true;
        std::lock_guard<std::mutex> lock(session_->mutex);
        session_->appendCount += 1;
        session_->lastTouched = Clock::now();
        manager_->metrics_->addCounter("ingest.appends");

        JsonValue payload = JsonValue::makeObject();
        payload.set("kind", JsonValue("ingest_append"));
        payload.set("id", JsonValue(session_->id));
        payload.set("state",
                    JsonValue(stateName(session_->state)));
        payload.set("appended_bytes",
                    JsonValue(static_cast<double>(appendedBytes_)));
        payload.set("records",
                    JsonValue(static_cast<double>(
                        session_->estimator.recordsSeen())));
        payload.set("bytes",
                    JsonValue(static_cast<double>(
                        session_->bytesAppended)));
        HttpResponse response;
        response.body = payload.dump();
        response.body += '\n';
        return response;
    }

  private:
    IngestSessionManager *manager_;
    std::shared_ptr<Session> session_;
    std::uint64_t appendedBytes_ = 0;
    bool completed_ = false;
};

IngestSessionManager::IngestSessionManager(IngestConfig config,
                                           MetricsRegistry *metrics)
    : config_(config), metrics_(metrics)
{
    publishActiveGauge(0);
}

IngestSessionManager::~IngestSessionManager() = default;

void
IngestSessionManager::publishActiveGauge(std::size_t count)
{
    metrics_->setGauge("ingest.active_sessions",
                       static_cast<double>(count));
}

void
IngestSessionManager::sweepExpired()
{
    if (config_.ttlSeconds <= 0.0)
        return;
    const Clock::time_point now = Clock::now();
    std::size_t swept = 0;
    {
        std::lock_guard<std::mutex> lock(mutex_);
        for (auto it = sessions_.begin();
             it != sessions_.end();) {
            const double idle =
                std::chrono::duration<double>(
                    now - it->second->lastTouched)
                    .count();
            if (idle > config_.ttlSeconds) {
                it = sessions_.erase(it);
                ++swept;
            } else {
                ++it;
            }
        }
        if (swept != 0)
            publishActiveGauge(sessions_.size());
    }
    if (swept != 0)
        metrics_->addCounter("ingest.sessions_expired", swept);
}

std::shared_ptr<IngestSessionManager::Session>
IngestSessionManager::find(const std::string &id)
{
    std::lock_guard<std::mutex> lock(mutex_);
    const auto it = sessions_.find(id);
    return it == sessions_.end() ? nullptr : it->second;
}

std::size_t
IngestSessionManager::activeSessions()
{
    sweepExpired();
    std::lock_guard<std::mutex> lock(mutex_);
    return sessions_.size();
}

HttpResponse
IngestSessionManager::create(const JsonValue &request)
{
    sweepExpired();

    requireKnownKeys(request,
                     {"size_kib", "line_bytes", "assoc", "warm",
                      "sample_rate", "max_sampled_lines", "seed",
                      "format", "total_ceas", "traffic_budget"},
                     "request");

    StreamingEstimatorConfig config;
    const std::uint64_t capacity_bytes =
        integerField(request, "size_kib", 256, 8, 64 * 1024) *
        kKiB;
    config.lineBytes = static_cast<std::uint32_t>(
        integerField(request, "line_bytes", 64, 8, 1024));
    config.associativity = static_cast<std::uint32_t>(
        integerField(request, "assoc", 8, 0, 64));
    config.capacities = capacityLadder(4 * kKiB, capacity_bytes);
    config.warmupAccesses =
        integerField(request, "warm", 0, 0, 5000000);
    config.sampleRate =
        numberField(request, "sample_rate", 0.1, 1e-4, 1.0);
    config.maxSampledLines = static_cast<std::size_t>(
        integerField(request, "max_sampled_lines", 0, 0,
                     1u << 24));
    config.seed = integerField(request, "seed", 1, 1,
                               ~std::uint64_t{0} >> 1);

    const std::string format_name =
        stringField(request, "format", "auto");
    StreamingTraceDecoder::Format format;
    if (format_name == "auto")
        format = StreamingTraceDecoder::Format::Auto;
    else if (format_name == "binary")
        format = StreamingTraceDecoder::Format::Binary;
    else if (format_name == "text")
        format = StreamingTraceDecoder::Format::Text;
    else
        throw BadRequest("unknown format '" + format_name +
                         "'; expected auto | binary | text");

    const double total_ceas =
        numberField(request, "total_ceas", 32.0, 1.0, 4096.0);
    const double traffic_budget =
        numberField(request, "traffic_budget", 1.0, 0.01, 100.0);

    std::shared_ptr<Session> session;
    std::string id;
    {
        std::lock_guard<std::mutex> lock(mutex_);
        if (config_.maxSessions != 0 &&
            sessions_.size() >= config_.maxSessions) {
            HttpResponse full = httpErrorResponseFor(
                {ErrorCategory::Overload,
                 "ingest session limit reached (" +
                     std::to_string(config_.maxSessions) +
                     "); finalize or retry later"});
            full.headers["Retry-After"] =
                std::to_string(config_.retryAfterSeconds);
            return full;
        }
        id = "ingest-" + std::to_string(nextId_++);
        session = std::make_shared<Session>(config, format);
        session->id = id;
        session->advisorTotalCeas = total_ceas;
        session->advisorTrafficBudget = traffic_budget;
        session->lastTouched = Clock::now();
        sessions_.emplace(id, session);
        publishActiveGauge(sessions_.size());
    }
    metrics_->addCounter("ingest.sessions_created");

    JsonValue payload = JsonValue::makeObject();
    payload.set("kind", JsonValue("ingest_session"));
    payload.set("id", JsonValue(id));
    payload.set("state", JsonValue("open"));
    payload.set("capacity_kib",
                JsonValue(static_cast<double>(capacity_bytes /
                                              kKiB)));
    payload.set("line_bytes",
                JsonValue(static_cast<double>(config.lineBytes)));
    payload.set("assoc", JsonValue(static_cast<double>(
                             config.associativity)));
    payload.set("warm", JsonValue(static_cast<double>(
                            config.warmupAccesses)));
    payload.set("sample_rate", JsonValue(config.sampleRate));
    payload.set("max_sampled_lines",
                JsonValue(static_cast<double>(
                    config.maxSampledLines)));
    payload.set("seed",
                JsonValue(static_cast<double>(config.seed)));
    payload.set("format", JsonValue(format_name));
    HttpResponse response;
    response.body = payload.dump();
    response.body += '\n';
    return response;
}

std::unique_ptr<HttpStreamSink>
IngestSessionManager::openAppend(const std::string &id,
                                 HttpResponse *refusal)
{
    sweepExpired();
    const std::shared_ptr<Session> session = find(id);
    if (session == nullptr) {
        *refusal = httpErrorResponse(
            404, "unknown ingest session '" + id + "'");
        return nullptr;
    }
    std::lock_guard<std::mutex> lock(session->mutex);
    if (session->state != Session::Open) {
        *refusal = httpErrorResponse(
            409, "ingest session '" + id + "' is " +
                     stateName(session->state) +
                     "; appends need an open session");
        return nullptr;
    }
    if (session->appendInProgress) {
        *refusal = httpErrorResponse(
            409, "another append to '" + id +
                     "' is in progress");
        return nullptr;
    }
    session->appendInProgress = true;
    session->lastTouched = Clock::now();
    return std::make_unique<AppendSink>(this, session);
}

namespace {

/**
 * The snapshot payload: the same point/alpha shape as a
 * /v1/sweep miss_curve answer plus the session's live counters and
 * (full-resolution snapshots with a valid fit) the bandwidth-wall
 * advisor verdict at the fitted alpha.
 */
JsonValue
snapshotPayload(const StreamingSnapshot &snapshot,
                const std::string &id, const char *state,
                std::uint64_t bytes, std::uint64_t appends,
                bool degraded, double total_ceas,
                double traffic_budget)
{
    // A degraded snapshot serves every other grid point but always
    // keeps the last (largest-capacity) one.
    const std::size_t stride = degraded ? 2 : 1;
    std::vector<std::size_t> kept;
    for (std::size_t i = 0; i < snapshot.points.size(); i += stride)
        kept.push_back(i);
    if (!snapshot.points.empty() &&
        (kept.empty() || kept.back() != snapshot.points.size() - 1))
        kept.push_back(snapshot.points.size() - 1);

    JsonValue points = JsonValue::makeArray();
    for (const std::size_t i : kept) {
        const StreamingCurvePoint &point = snapshot.points[i];
        JsonValue row = JsonValue::makeObject();
        row.set("capacity_kib",
                JsonValue(static_cast<double>(
                    point.capacityBytes / kKiB)));
        row.set("miss_rate", JsonValue(point.missRate));
        row.set("writeback_ratio",
                JsonValue(point.writebackRatio));
        row.set("traffic_bytes_per_access",
                JsonValue(point.trafficBytesPerAccess));
        points.append(std::move(row));
    }

    JsonValue payload = JsonValue::makeObject();
    payload.set("kind", JsonValue("ingest_snapshot"));
    payload.set("id", JsonValue(id));
    payload.set("state", JsonValue(state));
    payload.set("records", JsonValue(static_cast<double>(
                               snapshot.recordsSeen)));
    payload.set("bytes",
                JsonValue(static_cast<double>(bytes)));
    payload.set("appends",
                JsonValue(static_cast<double>(appends)));
    payload.set("profiled_accesses",
                JsonValue(static_cast<double>(
                    snapshot.profiledAccesses)));
    payload.set("sampled_accesses",
                JsonValue(static_cast<double>(
                    snapshot.sampledAccesses)));
    payload.set("sample_rate",
                JsonValue(snapshot.currentSampleRate));
    payload.set("points", std::move(points));
    payload.set("fit_valid", JsonValue(snapshot.fitValid));
    if (snapshot.fitValid) {
        payload.set("alpha", JsonValue(snapshot.alpha));
        payload.set("fit_r_squared",
                    JsonValue(snapshot.fitRSquared));
    }
    if (snapshot.fitValid && !degraded) {
        ScalingScenario scenario;
        scenario.alpha = snapshot.alpha;
        scenario.totalCeas = total_ceas;
        scenario.trafficBudget = traffic_budget;
        JsonValue advisor = JsonValue::makeObject();
        advisor.set("total_ceas", JsonValue(total_ceas));
        advisor.set("traffic_budget",
                    JsonValue(traffic_budget));
        const Expected<SolveResult> solved =
            trySolveSupportableCores(scenario);
        if (solved.ok()) {
            advisor.set("supportable_cores",
                        JsonValue(static_cast<double>(
                            solved.value().supportableCores)));
            advisor.set("traffic_at_solution",
                        JsonValue(
                            solved.value().trafficAtSolution));
            advisor.set("core_area_fraction",
                        JsonValue(
                            solved.value().coreAreaFraction));
            advisor.set("cache_per_core",
                        JsonValue(solved.value().cachePerCore));
        } else {
            advisor.set("error",
                        JsonValue(solved.error().message));
        }
        payload.set("advisor", std::move(advisor));
    }
    return payload;
}

} // namespace

HttpResponse
IngestSessionManager::snapshot(const std::string &id,
                               bool degraded)
{
    sweepExpired();
    const std::shared_ptr<Session> session = find(id);
    if (session == nullptr)
        return httpErrorResponse(
            404, "unknown ingest session '" + id + "'");
    if (FAULT_POINT("ingest.snapshot"))
        return httpErrorResponseFor(
            {ErrorCategory::Faulted,
             "injected fault: ingest.snapshot"});

    std::lock_guard<std::mutex> lock(session->mutex);
    session->lastTouched = Clock::now();
    metrics_->addCounter("ingest.snapshots");
    const StreamingSnapshot live = session->estimator.snapshot();
    JsonValue payload = snapshotPayload(
        live, session->id, stateName(session->state),
        session->bytesAppended, session->appendCount, degraded,
        session->advisorTotalCeas,
        session->advisorTrafficBudget);
    HttpResponse response;
    response.body = payload.dump();
    response.body += '\n';
    return response;
}

HttpResponse
IngestSessionManager::finalize(const std::string &id)
{
    sweepExpired();
    const std::shared_ptr<Session> session = find(id);
    if (session == nullptr)
        return httpErrorResponse(
            404, "unknown ingest session '" + id + "'");

    std::lock_guard<std::mutex> lock(session->mutex);
    if (session->state == Session::Finalized)
        return httpErrorResponse(
            409, "ingest session '" + id +
                     "' is already finalized");
    if (session->appendInProgress)
        return httpErrorResponse(
            409, "an append to '" + id +
                     "' is still in progress");

    if (session->state == Session::Open) {
        // Flush a trailing unterminated text line; a binary stream
        // cut mid-record fails the session instead of finalizing.
        std::vector<MemoryAccess> records;
        const Expected<std::size_t> flushed =
            session->decoder.finish(&records);
        if (!flushed.ok()) {
            session->state = Session::Failed;
            session->lastTouched = Clock::now();
            return httpErrorResponseFor(flushed.error());
        }
        session->estimator.append(records);
        session->state = Session::Finalized;
    } else {
        session->state = Session::Finalized;
    }
    session->lastTouched = Clock::now();
    metrics_->addCounter("ingest.sessions_finalized");

    const StreamingSnapshot live = session->estimator.snapshot();
    JsonValue payload = snapshotPayload(
        live, session->id, stateName(session->state),
        session->bytesAppended, session->appendCount, false,
        session->advisorTotalCeas,
        session->advisorTrafficBudget);
    HttpResponse response;
    response.body = payload.dump();
    response.body += '\n';
    return response;
}

} // namespace bwwall
