#include "server/cluster.hh"

#include <algorithm>
#include <cstdio>

#include "server/http_client.hh"
#include "server/json.hh"
#include "server/model_service.hh"
#include "util/fault.hh"
#include "util/metrics.hh"

namespace bwwall {

namespace {

/** Clients kept warm per peer; extra concurrent fills reconnect. */
constexpr std::size_t kPoolDepth = 4;

/** Splits "host:port"; false unless both halves are usable. */
bool
splitHostPort(const std::string &peer, std::string *host,
              std::uint16_t *port)
{
    const std::size_t colon = peer.rfind(':');
    if (colon == std::string::npos || colon == 0 ||
        colon + 1 == peer.size())
        return false;
    unsigned long value = 0;
    for (std::size_t i = colon + 1; i < peer.size(); ++i) {
        const char c = peer[i];
        if (c < '0' || c > '9')
            return false;
        value = value * 10 + static_cast<unsigned long>(c - '0');
        if (value > 65535)
            return false;
    }
    if (value == 0)
        return false;
    *host = peer.substr(0, colon);
    *port = static_cast<std::uint16_t>(value);
    return true;
}

} // namespace

bool
parsePeerList(const std::string &text,
              std::vector<std::string> *out, std::string *error)
{
    out->clear();
    std::size_t start = 0;
    while (start <= text.size()) {
        std::size_t end = text.find(',', start);
        if (end == std::string::npos)
            end = text.size();
        const std::string entry =
            text.substr(start, end - start);
        start = end + 1;
        if (entry.empty()) {
            if (text.empty() && out->empty())
                return true;
            *error = "empty peer entry in '" + text + "'";
            return false;
        }
        std::string host;
        std::uint16_t port = 0;
        if (!splitHostPort(entry, &host, &port)) {
            *error = "peer '" + entry +
                     "' is not host:port with a port in 1..65535";
            return false;
        }
        if (std::find(out->begin(), out->end(), entry) !=
            out->end()) {
            *error = "duplicate peer '" + entry + "'";
            return false;
        }
        out->push_back(entry);
        if (end == text.size())
            break;
    }
    return true;
}

Cluster::Cluster(ClusterConfig config, MetricsRegistry *metrics)
    : config_(std::move(config)), metrics_(metrics)
{
    if (config_.peerFailureThreshold == 0)
        config_.peerFailureThreshold = 1;
    healthConfig_.failureThreshold = config_.peerFailureThreshold;
    healthConfig_.cooldownSeconds = 1.0;
    healthConfig_.cooldownGrowth = 2.0;
    healthConfig_.maxCooldownSeconds = 30.0;
    // Jitter keeps a fleet of nodes from re-probing one dead peer
    // in lockstep; the stream is seeded from the shared map seed so
    // runs stay reproducible.
    healthConfig_.jitter = 0.1;
    healthConfig_.seed = rendezvousMix(config_.seed);
    nodes_ = config_.peers;
    std::sort(nodes_.begin(), nodes_.end());
    nodes_.erase(std::unique(nodes_.begin(), nodes_.end()),
                 nodes_.end());
    if (nodes_.empty())
        throw BadRequest("cluster peer list is empty");
    for (const std::string &node : nodes_) {
        std::string host;
        std::uint16_t port = 0;
        if (!splitHostPort(node, &host, &port))
            throw BadRequest("peer '" + node +
                             "' is not host:port");
    }
    if (!config_.self.empty() &&
        std::find(nodes_.begin(), nodes_.end(), config_.self) ==
            nodes_.end())
        throw BadRequest("--self '" + config_.self +
                         "' is not in the peer list");
    if (config_.peerAttempts == 0)
        config_.peerAttempts = 1;
    if (metrics_ != nullptr) {
        metrics_->setGauge(
            "cluster.nodes",
            static_cast<double>(nodes_.size()));
        metrics_->setGauge("cluster.enabled",
                           enabled() ? 1.0 : 0.0);
    }
    for (const std::string &node : nodes_)
        pools_.emplace_back(
            node, std::vector<std::unique_ptr<HttpClient>>());
    if (metrics_ != nullptr)
        metrics_->setGauge("cluster.health.peers_down", 0.0);
    bool has_remote = false;
    for (const std::string &node : nodes_)
        has_remote = has_remote || node != config_.self;
    if (config_.probeIntervalMs > 0 && has_remote)
        prober_ = std::thread(&Cluster::proberLoop, this);
}

Cluster::~Cluster()
{
    {
        std::lock_guard<std::mutex> lock(proberMutex_);
        proberStop_ = true;
    }
    proberCv_.notify_all();
    if (prober_.joinable())
        prober_.join();
}

void
Cluster::count(const char *name) const
{
    if (metrics_ != nullptr)
        metrics_->addCounter(name);
}

std::unique_ptr<HttpClient>
Cluster::acquireClient(const std::string &peer)
{
    std::uint64_t sequence = 0;
    {
        std::lock_guard<std::mutex> lock(poolMutex_);
        sequence = ++fillSequence_;
        for (auto &pool : pools_) {
            if (pool.first != peer)
                continue;
            if (!pool.second.empty()) {
                auto client = std::move(pool.second.back());
                pool.second.pop_back();
                return client;
            }
            break;
        }
    }
    std::string host;
    std::uint16_t port = 0;
    if (!splitHostPort(peer, &host, &port))
        return nullptr;
    auto client = std::make_unique<HttpClient>(host, port);
    client->setConnectTimeoutMs(config_.connectTimeoutMs);
    // Bound the read too: a SIGSTOPped peer accepts the connect
    // but never answers, and without this the fill would hold its
    // compute slot until the caller's client gave up.
    client->setReadTimeoutMs(config_.peerDeadlineMs);
    HttpRetryPolicy policy;
    policy.maxAttempts = config_.peerAttempts;
    policy.initialBackoffMs = 10.0;
    policy.maxBackoffMs = 100.0;
    // Deterministic per-client jitter stream; fills are few and
    // bounded, so the lifetime budget never throttles a storm.
    policy.seed = rendezvousMix(config_.seed ^ sequence);
    policy.budget = 1u << 20;
    // A fill POST is safe to retry: model queries are pure and the
    // owner's single-flight cache dedupes re-sent work.
    policy.retryPosts = true;
    // But a refused connect is not worth a second try within one
    // fill — the owner's process is gone; fall back to the local
    // compute and let the breaker/prober handle reinstatement.
    policy.failFastOnRefused = true;
    client->setRetryPolicy(policy);
    return client;
}

void
Cluster::releaseClient(const std::string &peer,
                       std::unique_ptr<HttpClient> client)
{
    std::lock_guard<std::mutex> lock(poolMutex_);
    for (auto &pool : pools_) {
        if (pool.first != peer)
            continue;
        if (pool.second.size() < kPoolDepth)
            pool.second.push_back(std::move(client));
        return;
    }
}

Breaker &
Cluster::healthFor(const std::string &peer)
{
    const auto it = health_.find(peer);
    if (it != health_.end())
        return it->second;
    BreakerConfig config = healthConfig_;
    config.seed = rendezvousMix(
        healthConfig_.seed ^ rendezvousHash(peer, config_.seed));
    return health_.try_emplace(peer, config).first->second;
}

void
Cluster::noteHealthEventLocked(BreakerEvent event)
{
    if (metrics_ == nullptr)
        return;
    switch (event) {
      case BreakerEvent::Opened:
      case BreakerEvent::Reopened:
        metrics_->addCounter("cluster.health.ejections");
        break;
      case BreakerEvent::Closed:
        metrics_->addCounter("cluster.health.reinstatements");
        break;
      case BreakerEvent::None:
        return;
    }
    double down = 0.0;
    for (const auto &entry : health_)
        if (entry.second.state() != BreakerState::Closed)
            down += 1.0;
    metrics_->setGauge("cluster.health.peers_down", down);
}

bool
Cluster::peerAvailable(const std::string &peer)
{
    std::lock_guard<std::mutex> lock(healthMutex_);
    Breaker &breaker = healthFor(peer);
    if (config_.probeIntervalMs > 0) {
        // The prober owns reinstatement: a down peer stays skipped
        // until a probe succeeds, so no request ever spends its
        // deadline rediscovering a known-dead peer.
        return breaker.state() == BreakerState::Closed;
    }
    // No prober: fills themselves drive recovery through the
    // breaker's own half-open trial.
    return breaker.allow(Breaker::Clock::now());
}

void
Cluster::notePeerSuccess(const std::string &peer)
{
    std::lock_guard<std::mutex> lock(healthMutex_);
    noteHealthEventLocked(healthFor(peer).recordSuccess(
        Breaker::Clock::now()));
}

void
Cluster::notePeerFailure(const std::string &peer)
{
    std::lock_guard<std::mutex> lock(healthMutex_);
    noteHealthEventLocked(healthFor(peer).recordFailure(
        Breaker::Clock::now()));
}

BreakerState
Cluster::peerState(const std::string &peer) const
{
    std::lock_guard<std::mutex> lock(healthMutex_);
    const auto it = health_.find(peer);
    return it == health_.end() ? BreakerState::Closed
                               : it->second.state();
}

void
Cluster::probePeersOnce()
{
    for (const std::string &node : nodes_) {
        if (node == config_.self)
            continue;
        std::string host;
        std::uint16_t port = 0;
        if (!splitHostPort(node, &host, &port))
            continue;
        // A fresh connection per probe: the point is to test the
        // peer's accept path now, not to reuse a socket that may
        // have been healthy a minute ago.
        HttpClient client(host, port);
        client.setConnectTimeoutMs(config_.probeTimeoutMs);
        client.setReadTimeoutMs(config_.probeTimeoutMs);
        count("cluster.health.probes");
        HttpClientResponse response;
        const bool healthy = client.get("/healthz", &response) &&
                             response.status == 200;
        if (!healthy)
            count("cluster.health.probe_failures");
        const auto now = Breaker::Clock::now();
        std::lock_guard<std::mutex> lock(healthMutex_);
        Breaker &breaker = healthFor(node);
        noteHealthEventLocked(healthy ? breaker.reset(now)
                                      : breaker.trip(now));
    }
}

void
Cluster::proberLoop()
{
    const auto interval =
        std::chrono::milliseconds(config_.probeIntervalMs);
    std::unique_lock<std::mutex> lock(proberMutex_);
    while (!proberStop_) {
        // Wait first: probing the instant the daemon boots would
        // eject peers that are a rolling restart behind us, only
        // to reinstate them one interval later.
        if (proberCv_.wait_for(lock, interval,
                               [this] { return proberStop_; }))
            break;
        lock.unlock();
        probePeersOnce();
        lock.lock();
    }
}

bool
Cluster::fillFromPeer(const std::string &peer,
                      const std::string &path,
                      const std::string &body,
                      double remainingSeconds, HttpResponse *out)
{
    count("cluster.peer_fill.attempts");
    if (!peerAvailable(peer)) {
        // Known-down owner: straight to the local compute without
        // burning any of the caller's remaining deadline.
        count("cluster.peer_fill.peer_down");
        return false;
    }
    double deadline_ms =
        static_cast<double>(config_.peerDeadlineMs);
    if (remainingSeconds >= 0.0)
        deadline_ms =
            std::min(deadline_ms, remainingSeconds * 1000.0);
    if (deadline_ms < 1.0) {
        // The caller's budget is already gone; computing locally
        // at least leaves the answer cached for its retry.
        count("cluster.peer_fill.skipped");
        return false;
    }
    if (FAULT_POINT("cluster.peer_fill")) {
        count("cluster.peer_fill.errors");
        return false;
    }

    auto client = acquireClient(peer);
    if (client == nullptr) {
        count("cluster.peer_fill.errors");
        return false;
    }
    HttpClient::Request request;
    request.method = "POST";
    request.target = path;
    request.headers[kPeerFillHeader] = std::string("1");
    request.body = body;
    HttpClient::RequestOptions options;
    options.retry = true;
    options.deadlineMs = deadline_ms;
    HttpClientResponse response;
    std::string error;
    const bool transported =
        client->perform(request, options, &response, &error);
    if (transported)
        notePeerSuccess(peer);
    else
        notePeerFailure(peer);
    if (transported)
        releaseClient(peer, std::move(client));
    if (!transported) {
        // An outright refusal means nobody is listening — a crash
        // or restart, not load — and perform() gave up without
        // burning a retry attempt (failFastOnRefused).
        count(client->lastFailureKind() ==
                      HttpClient::FailureKind::ConnectRefused
                  ? "cluster.peer_fill.refused"
                  : "cluster.peer_fill.errors");
        return false;
    }
    if (response.status != 200 ||
        response.headers.count("x-bwwall-degraded") != 0 ||
        response.headers.count("x-bwwall-stale") != 0) {
        // The owner refused (shed, breaker, deadline) or answered
        // in a form a direct solve would not produce; fall back to
        // a local compute rather than cache non-canonical bytes.
        count("cluster.peer_fill.rejected");
        return false;
    }
    count("cluster.peer_fill.hits");
    out->status = response.status;
    out->body = response.body;
    const auto type = response.headers.find("content-type");
    if (type != response.headers.end())
        out->contentType = type->second;
    out->headers[kPeerFilledHeader] = std::string("1");
    return true;
}

JsonValue
Cluster::statusJson() const
{
    JsonValue payload = JsonValue::makeObject();
    payload.set("kind", JsonValue("cluster"));
    payload.set("enabled", JsonValue(enabled()));
    payload.set("self", JsonValue(config_.self));
    char seed_hex[19];
    std::snprintf(seed_hex, sizeof(seed_hex), "0x%016llx",
                  static_cast<unsigned long long>(config_.seed));
    payload.set("seed", JsonValue(std::string(seed_hex)));
    JsonValue members = JsonValue::makeArray();
    for (const std::string &node : nodes_)
        members.append(JsonValue(node));
    payload.set("nodes", members);
    payload.set("node_count",
                JsonValue(static_cast<double>(nodes_.size())));
    payload.set(
        "peer_deadline_ms",
        JsonValue(static_cast<double>(config_.peerDeadlineMs)));
    payload.set(
        "peer_probe_interval_ms",
        JsonValue(static_cast<double>(config_.probeIntervalMs)));
    {
        JsonValue health = JsonValue::makeObject();
        std::lock_guard<std::mutex> lock(healthMutex_);
        for (const std::string &node : nodes_) {
            if (node == config_.self)
                continue;
            JsonValue entry = JsonValue::makeObject();
            const auto it = health_.find(node);
            const BreakerState state =
                it == health_.end() ? BreakerState::Closed
                                    : it->second.state();
            const unsigned failures =
                it == health_.end()
                    ? 0
                    : it->second.consecutiveFailures();
            entry.set("state",
                      JsonValue(std::string(
                          breakerStateName(state))));
            entry.set("consecutive_failures",
                      JsonValue(static_cast<double>(failures)));
            health.set(node, entry);
        }
        payload.set("health", health);
    }
    if (metrics_ != nullptr) {
        JsonValue stats = JsonValue::makeObject();
        static const char *const kStats[] = {
            "cluster.requests.owned",
            "cluster.requests.remote",
            "cluster.peer_fill.attempts",
            "cluster.peer_fill.hits",
            "cluster.peer_fill.rejected",
            "cluster.peer_fill.errors",
            "cluster.peer_fill.skipped",
            "cluster.peer_fill.received",
            "cluster.peer_fill.refused",
            "cluster.peer_fill.peer_down",
            "cluster.local_fallback_computes",
            "cluster.health.probes",
            "cluster.health.probe_failures",
            "cluster.health.ejections",
            "cluster.health.reinstatements",
        };
        for (const char *name : kStats)
            stats.set(name,
                      JsonValue(static_cast<double>(
                          metrics_->counter(name))));
        payload.set("stats", stats);
    }
    return payload;
}

} // namespace bwwall
