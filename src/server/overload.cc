#include "server/overload.hh"

#include <algorithm>
#include <cmath>

#include "server/routes.hh"
#include "util/metrics.hh"

namespace bwwall {

namespace {

/** Inflight fraction beyond which expensive work is pressed. */
constexpr double kExpensivePressure = 0.75;

} // namespace

OverloadController::OverloadController(OverloadConfig config,
                                       MetricsRegistry *metrics)
    : config_(config), metrics_(metrics)
{
    latencies_.resize(
        std::max<std::size_t>(config_.latencyWindow, 1));
    // Endpoint breakers keep their historical semantics: a fixed,
    // unjittered cooldown (tests drive the lifecycle with scripted
    // sleeps) and consecutive-failure counting only.
    breakerConfig_.failureThreshold = config_.breakerThreshold;
    breakerConfig_.cooldownSeconds =
        config_.breakerCooldownSeconds;
    breakerConfig_.cooldownGrowth = 1.0;
    breakerConfig_.jitter = 0.0;
}

Breaker &
OverloadController::breakerFor(const std::string &path)
{
    const auto it = breakers_.find(path);
    if (it != breakers_.end())
        return it->second;
    return breakers_.try_emplace(path, breakerConfig_)
        .first->second;
}

void
OverloadController::countEvent(BreakerEvent event)
{
    if (metrics_ == nullptr)
        return;
    switch (event) {
      case BreakerEvent::Opened:
        metrics_->addCounter("server.breaker_opened");
        break;
      case BreakerEvent::Reopened:
        metrics_->addCounter("server.breaker_reopened");
        break;
      case BreakerEvent::Closed:
        metrics_->addCounter("server.breaker_closed");
        break;
      case BreakerEvent::None:
        break;
    }
}

bool
OverloadController::isExpensive(const std::string &path)
{
    const Route *route = findRoute(path);
    return route != nullptr && route->cost == RouteCost::Expensive;
}

bool
OverloadController::isDegradable(const std::string &path)
{
    const Route *route = findRoute(path);
    return route != nullptr && route->degradable;
}

double
OverloadController::p99Locked(Clock::time_point now) const
{
    std::vector<double> sorted;
    sorted.reserve(latencyCount_);
    const auto horizon =
        std::chrono::duration<double>(
            config_.latencyHorizonSeconds);
    for (std::size_t i = 0; i < latencyCount_; ++i) {
        const Sample &sample = latencies_[i];
        if (now - sample.when <= horizon)
            sorted.push_back(sample.seconds);
    }
    if (sorted.empty())
        return 0.0;
    std::sort(sorted.begin(), sorted.end());
    // Nearest-rank p99, matching bench/perf_server's quantiles.
    const std::size_t rank = static_cast<std::size_t>(
        std::ceil(0.99 * static_cast<double>(sorted.size())));
    return sorted[std::min(rank == 0 ? 0 : rank - 1,
                           sorted.size() - 1)];
}

AdmitDecision
OverloadController::admit(const std::string &path, unsigned inflight)
{
    const bool expensive = isExpensive(path);
    // A batch body cannot be served at reduced resolution (its items
    // are the client's, verbatim), so only degradable routes trade
    // shedding for degradation.
    const bool degradable = isDegradable(path);
    std::lock_guard<std::mutex> lock(mutex_);

    // An open breaker sheds; after its cooldown allow() admits one
    // half-open probe, whose outcome (observe()) closes or re-opens.
    if (!breakerFor(path).allow(Clock::now()))
        return AdmitDecision::Shed;

    const double pressure = config_.maxInflight == 0
        ? 0.0
        : static_cast<double>(inflight) /
            static_cast<double>(config_.maxInflight);
    const double p99 = p99Locked(Clock::now());
    const bool latency_pressed =
        config_.shedP99Seconds > 0.0 && p99 > config_.shedP99Seconds;
    if (latency_pressed && p99 > 2.0 * config_.shedP99Seconds) {
        // Far past the latency target: shed even cheap work.
        return AdmitDecision::Shed;
    }
    if (expensive && (latency_pressed ||
                      pressure >= kExpensivePressure)) {
        return config_.degradeSweeps && degradable
                   ? AdmitDecision::AdmitDegraded
                   : AdmitDecision::Shed;
    }
    if (expensive && degradable && config_.degradeSweeps &&
        pressure >= config_.degradePressure) {
        return AdmitDecision::AdmitDegraded;
    }
    return AdmitDecision::Admit;
}

void
OverloadController::observe(const std::string &path, double seconds,
                            bool failure)
{
    std::lock_guard<std::mutex> lock(mutex_);
    latencies_[latencyNext_] = {Clock::now(), seconds};
    latencyNext_ = (latencyNext_ + 1) % latencies_.size();
    latencyCount_ = std::min(latencyCount_ + 1, latencies_.size());

    Breaker &breaker = breakerFor(path);
    countEvent(failure ? breaker.recordFailure(Clock::now())
                       : breaker.recordSuccess(Clock::now()));
}

unsigned
OverloadController::retryAfterSeconds() const
{
    return config_.retryAfterSeconds;
}

double
OverloadController::recentP99Seconds() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    return p99Locked(Clock::now());
}

bool
OverloadController::breakerOpen(const std::string &path) const
{
    std::lock_guard<std::mutex> lock(mutex_);
    const auto it = breakers_.find(path);
    return it != breakers_.end() &&
           it->second.state() != BreakerState::Closed;
}

} // namespace bwwall
