#include "server/overload.hh"

#include <algorithm>
#include <cmath>

#include "server/routes.hh"
#include "util/metrics.hh"

namespace bwwall {

namespace {

/** Inflight fraction beyond which expensive work is pressed. */
constexpr double kExpensivePressure = 0.75;

} // namespace

OverloadController::OverloadController(OverloadConfig config,
                                       MetricsRegistry *metrics)
    : config_(config), metrics_(metrics)
{
    latencies_.resize(
        std::max<std::size_t>(config_.latencyWindow, 1));
}

bool
OverloadController::isExpensive(const std::string &path)
{
    const Route *route = findRoute(path);
    return route != nullptr && route->cost == RouteCost::Expensive;
}

bool
OverloadController::isDegradable(const std::string &path)
{
    const Route *route = findRoute(path);
    return route != nullptr && route->degradable;
}

double
OverloadController::p99Locked(Clock::time_point now) const
{
    std::vector<double> sorted;
    sorted.reserve(latencyCount_);
    const auto horizon =
        std::chrono::duration<double>(
            config_.latencyHorizonSeconds);
    for (std::size_t i = 0; i < latencyCount_; ++i) {
        const Sample &sample = latencies_[i];
        if (now - sample.when <= horizon)
            sorted.push_back(sample.seconds);
    }
    if (sorted.empty())
        return 0.0;
    std::sort(sorted.begin(), sorted.end());
    // Nearest-rank p99, matching bench/perf_server's quantiles.
    const std::size_t rank = static_cast<std::size_t>(
        std::ceil(0.99 * static_cast<double>(sorted.size())));
    return sorted[std::min(rank == 0 ? 0 : rank - 1,
                           sorted.size() - 1)];
}

AdmitDecision
OverloadController::admit(const std::string &path, unsigned inflight)
{
    const bool expensive = isExpensive(path);
    // A batch body cannot be served at reduced resolution (its items
    // are the client's, verbatim), so only degradable routes trade
    // shedding for degradation.
    const bool degradable = isDegradable(path);
    std::lock_guard<std::mutex> lock(mutex_);

    Breaker &breaker = breakers_[path];
    if (breaker.open) {
        const double since =
            std::chrono::duration<double>(Clock::now() -
                                          breaker.openedAt)
                .count();
        if (since >= config_.breakerCooldownSeconds &&
            !breaker.probing) {
            // Half-open: admit one probe; its outcome (observe())
            // closes or re-opens the breaker.
            breaker.probing = true;
        } else {
            return AdmitDecision::Shed;
        }
    }

    const double pressure = config_.maxInflight == 0
        ? 0.0
        : static_cast<double>(inflight) /
            static_cast<double>(config_.maxInflight);
    const double p99 = p99Locked(Clock::now());
    const bool latency_pressed =
        config_.shedP99Seconds > 0.0 && p99 > config_.shedP99Seconds;
    if (latency_pressed && p99 > 2.0 * config_.shedP99Seconds) {
        // Far past the latency target: shed even cheap work.
        return AdmitDecision::Shed;
    }
    if (expensive && (latency_pressed ||
                      pressure >= kExpensivePressure)) {
        return config_.degradeSweeps && degradable
                   ? AdmitDecision::AdmitDegraded
                   : AdmitDecision::Shed;
    }
    if (expensive && degradable && config_.degradeSweeps &&
        pressure >= config_.degradePressure) {
        return AdmitDecision::AdmitDegraded;
    }
    return AdmitDecision::Admit;
}

void
OverloadController::observe(const std::string &path, double seconds,
                            bool failure)
{
    std::lock_guard<std::mutex> lock(mutex_);
    latencies_[latencyNext_] = {Clock::now(), seconds};
    latencyNext_ = (latencyNext_ + 1) % latencies_.size();
    latencyCount_ = std::min(latencyCount_ + 1, latencies_.size());

    Breaker &breaker = breakers_[path];
    if (failure) {
        ++breaker.consecutiveFailures;
        if (breaker.probing) {
            // Failed probe: re-open for another cooldown.
            breaker.probing = false;
            breaker.openedAt = Clock::now();
            if (metrics_ != nullptr)
                metrics_->addCounter("server.breaker_reopened");
        } else if (!breaker.open &&
                   breaker.consecutiveFailures >=
                       config_.breakerThreshold) {
            breaker.open = true;
            breaker.openedAt = Clock::now();
            if (metrics_ != nullptr)
                metrics_->addCounter("server.breaker_opened");
        }
    } else {
        breaker.consecutiveFailures = 0;
        if (breaker.open) {
            breaker.open = false;
            breaker.probing = false;
            if (metrics_ != nullptr)
                metrics_->addCounter("server.breaker_closed");
        }
    }
}

unsigned
OverloadController::retryAfterSeconds() const
{
    return config_.retryAfterSeconds;
}

double
OverloadController::recentP99Seconds() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    return p99Locked(Clock::now());
}

bool
OverloadController::breakerOpen(const std::string &path) const
{
    std::lock_guard<std::mutex> lock(mutex_);
    const auto it = breakers_.find(path);
    return it != breakers_.end() && it->second.open;
}

} // namespace bwwall
