#include "server/http_client.hh"

#include <netdb.h>
#include <sys/socket.h>
#include <sys/types.h>
#include <unistd.h>

#include <cerrno>
#include <cstdlib>
#include <cstring>

namespace bwwall {

namespace {

/** Lowercases ASCII in place (header names are case-insensitive). */
std::string
lowered(std::string text)
{
    for (char &c : text) {
        if (c >= 'A' && c <= 'Z')
            c = static_cast<char>(c - 'A' + 'a');
    }
    return text;
}

/** Trims leading/trailing spaces and tabs. */
std::string
trimmed(const std::string &text)
{
    std::size_t first = text.find_first_not_of(" \t");
    if (first == std::string::npos)
        return "";
    std::size_t last = text.find_last_not_of(" \t");
    return text.substr(first, last - first + 1);
}

} // namespace

HttpClient::~HttpClient()
{
    disconnect();
}

void
HttpClient::disconnect()
{
    if (fd_ >= 0) {
        ::close(fd_);
        fd_ = -1;
    }
    buffer_.clear();
}

bool
HttpClient::connect(std::string *error)
{
    disconnect();

    addrinfo hints{};
    hints.ai_family = AF_UNSPEC;
    hints.ai_socktype = SOCK_STREAM;
    addrinfo *results = nullptr;
    const std::string service = std::to_string(port_);
    int rc = ::getaddrinfo(host_.c_str(), service.c_str(), &hints,
                           &results);
    if (rc != 0) {
        if (error)
            *error = "resolve " + host_ + ": " + gai_strerror(rc);
        return false;
    }

    int last_errno = 0;
    for (addrinfo *entry = results; entry;
         entry = entry->ai_next) {
        int fd = ::socket(entry->ai_family, entry->ai_socktype,
                          entry->ai_protocol);
        if (fd < 0) {
            last_errno = errno;
            continue;
        }
        if (::connect(fd, entry->ai_addr, entry->ai_addrlen) ==
            0) {
            fd_ = fd;
            break;
        }
        last_errno = errno;
        ::close(fd);
    }
    ::freeaddrinfo(results);

    if (fd_ < 0) {
        if (error) {
            *error = "connect " + host_ + ":" + service + ": " +
                     std::strerror(last_errno);
        }
        return false;
    }
    return true;
}

bool
HttpClient::sendAll(const std::string &wire, std::string *error)
{
    std::size_t sent = 0;
    while (sent < wire.size()) {
        ssize_t n = ::send(fd_, wire.data() + sent,
                           wire.size() - sent, MSG_NOSIGNAL);
        if (n < 0) {
            if (errno == EINTR)
                continue;
            if (error)
                *error = std::string("send: ") +
                         std::strerror(errno);
            return false;
        }
        sent += static_cast<std::size_t>(n);
    }
    return true;
}

bool
HttpClient::readResponse(HttpClientResponse *out,
                         std::string *error)
{
    // Pull bytes until the header block is complete.
    std::size_t header_end;
    while ((header_end = buffer_.find("\r\n\r\n")) ==
           std::string::npos) {
        char chunk[4096];
        ssize_t n = ::recv(fd_, chunk, sizeof(chunk), 0);
        if (n < 0 && errno == EINTR)
            continue;
        if (n <= 0) {
            if (error)
                *error = n == 0 ? "connection closed mid-response"
                                : std::string("recv: ") +
                                      std::strerror(errno);
            return false;
        }
        buffer_.append(chunk, static_cast<std::size_t>(n));
    }

    const std::string header = buffer_.substr(0, header_end);
    buffer_.erase(0, header_end + 4);

    // Status line: "HTTP/1.1 200 OK".
    std::size_t line_end = header.find("\r\n");
    const std::string status_line = header.substr(0, line_end);
    std::size_t space = status_line.find(' ');
    if (space == std::string::npos ||
        status_line.compare(0, 5, "HTTP/") != 0) {
        if (error)
            *error = "malformed status line: " + status_line;
        return false;
    }
    out->status = std::atoi(status_line.c_str() + space + 1);
    out->headers.clear();
    out->body.clear();

    std::size_t cursor =
        line_end == std::string::npos ? header.size()
                                      : line_end + 2;
    while (cursor < header.size()) {
        std::size_t eol = header.find("\r\n", cursor);
        if (eol == std::string::npos)
            eol = header.size();
        const std::string line =
            header.substr(cursor, eol - cursor);
        cursor = eol + 2;
        std::size_t colon = line.find(':');
        if (colon == std::string::npos)
            continue;
        out->headers[lowered(trimmed(line.substr(0, colon)))] =
            trimmed(line.substr(colon + 1));
    }

    auto length_it = out->headers.find("content-length");
    std::size_t want =
        length_it == out->headers.end()
            ? 0
            : static_cast<std::size_t>(
                  std::strtoull(length_it->second.c_str(),
                                nullptr, 10));
    while (buffer_.size() < want) {
        char chunk[4096];
        ssize_t n = ::recv(fd_, chunk, sizeof(chunk), 0);
        if (n < 0 && errno == EINTR)
            continue;
        if (n <= 0) {
            if (error)
                *error = "connection closed mid-body";
            return false;
        }
        buffer_.append(chunk, static_cast<std::size_t>(n));
    }
    out->body = buffer_.substr(0, want);
    buffer_.erase(0, want);

    auto connection_it = out->headers.find("connection");
    if (connection_it != out->headers.end() &&
        lowered(connection_it->second) == "close") {
        disconnect();
    }
    return true;
}

bool
HttpClient::request(const std::string &method,
                    const std::string &target,
                    const std::string &body,
                    HttpClientResponse *out, std::string *error)
{
    return request(method, target, {}, body, out, error);
}

bool
HttpClient::request(
    const std::string &method, const std::string &target,
    const std::map<std::string, std::string> &headers,
    const std::string &body, HttpClientResponse *out,
    std::string *error)
{
    if (fd_ < 0 && !connect(error))
        return false;

    std::string wire;
    wire.reserve(target.size() + body.size() + 128);
    wire += method;
    wire += ' ';
    wire += target;
    wire += " HTTP/1.1\r\nHost: ";
    wire += host_;
    wire += "\r\nContent-Length: ";
    wire += std::to_string(body.size());
    wire += "\r\n";
    for (const auto &[name, value] : headers) {
        wire += name;
        wire += ": ";
        wire += value;
        wire += "\r\n";
    }
    wire += "\r\n";
    wire += body;

    if (!sendAll(wire, error) || !readResponse(out, error)) {
        // A stale keep-alive connection the server already closed
        // shows up as a transport error; retry once on a fresh one.
        if (!connect(error))
            return false;
        return sendAll(wire, error) && readResponse(out, error);
    }
    return true;
}

} // namespace bwwall
