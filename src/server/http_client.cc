#include "server/http_client.hh"

#include <fcntl.h>
#include <netdb.h>
#include <poll.h>
#include <sys/socket.h>
#include <sys/types.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <chrono>
#include <cmath>
#include <cstdlib>
#include <cstring>
#include <thread>

namespace bwwall {

namespace {

/** Lowercases ASCII in place (header names are case-insensitive). */
std::string
lowered(std::string text)
{
    for (char &c : text) {
        if (c >= 'A' && c <= 'Z')
            c = static_cast<char>(c - 'A' + 'a');
    }
    return text;
}

/** Trims leading/trailing spaces and tabs. */
std::string
trimmed(const std::string &text)
{
    std::size_t first = text.find_first_not_of(" \t");
    if (first == std::string::npos)
        return "";
    std::size_t last = text.find_last_not_of(" \t");
    return text.substr(first, last - first + 1);
}

} // namespace

HttpClient::~HttpClient()
{
    disconnect();
}

void
HttpClient::disconnect()
{
    if (fd_ >= 0) {
        ::close(fd_);
        fd_ = -1;
    }
    buffer_.clear();
}

bool
HttpClient::connectOne(int fd, const void *address,
                       unsigned addressLen, std::string *failure)
{
    const sockaddr *addr =
        static_cast<const sockaddr *>(address);
    const socklen_t len = static_cast<socklen_t>(addressLen);
    if (connectTimeoutMs_ == 0) {
        if (::connect(fd, addr, len) == 0)
            return true;
        lastFailure_ = errno == ECONNREFUSED
                           ? FailureKind::ConnectRefused
                           : FailureKind::Other;
        *failure = std::strerror(errno);
        return false;
    }

    // Bounded connect: go non-blocking, poll for writability, read
    // the outcome from SO_ERROR, then restore blocking mode.
    const int flags = ::fcntl(fd, F_GETFL, 0);
    if (flags < 0 || ::fcntl(fd, F_SETFL, flags | O_NONBLOCK) < 0) {
        *failure = std::strerror(errno);
        return false;
    }
    bool ok = false;
    if (::connect(fd, addr, len) == 0) {
        ok = true;
    } else if (errno != EINPROGRESS) {
        lastFailure_ = errno == ECONNREFUSED
                           ? FailureKind::ConnectRefused
                           : FailureKind::Other;
        *failure = std::strerror(errno);
    } else {
        pollfd pfd{fd, POLLOUT, 0};
        const int ready =
            ::poll(&pfd, 1, static_cast<int>(connectTimeoutMs_));
        if (ready == 0) {
            lastFailure_ = FailureKind::ConnectTimeout;
            *failure = "timed out after " +
                       std::to_string(connectTimeoutMs_) + " ms";
        } else if (ready < 0) {
            lastFailure_ = FailureKind::Other;
            *failure = std::strerror(errno);
        } else {
            int soerror = 0;
            socklen_t soerror_len = sizeof(soerror);
            ::getsockopt(fd, SOL_SOCKET, SO_ERROR, &soerror,
                         &soerror_len);
            if (soerror == 0) {
                ok = true;
            } else {
                lastFailure_ = soerror == ECONNREFUSED
                                   ? FailureKind::ConnectRefused
                                   : FailureKind::Other;
                *failure = std::strerror(soerror);
            }
        }
    }
    if (ok)
        ::fcntl(fd, F_SETFL, flags);
    return ok;
}

bool
HttpClient::connect(std::string *error)
{
    disconnect();

    addrinfo hints{};
    hints.ai_family = AF_UNSPEC;
    hints.ai_socktype = SOCK_STREAM;
    addrinfo *results = nullptr;
    const std::string service = std::to_string(port_);
    int rc = ::getaddrinfo(host_.c_str(), service.c_str(), &hints,
                           &results);
    if (rc != 0) {
        if (error)
            *error = "resolve " + host_ + ": " + gai_strerror(rc);
        return false;
    }

    std::string failure = "no usable addresses";
    for (addrinfo *entry = results; entry;
         entry = entry->ai_next) {
        int fd = ::socket(entry->ai_family, entry->ai_socktype,
                          entry->ai_protocol);
        if (fd < 0) {
            failure = std::strerror(errno);
            continue;
        }
        if (connectOne(fd, entry->ai_addr, entry->ai_addrlen,
                       &failure)) {
            fd_ = fd;
            break;
        }
        ::close(fd);
    }
    ::freeaddrinfo(results);

    if (fd_ < 0) {
        if (error) {
            *error = "connect " + host_ + ":" + service + ": " +
                     failure;
        }
        return false;
    }
    return true;
}

bool
HttpClient::sendAll(const std::string &wire, std::string *error)
{
    std::size_t sent = 0;
    while (sent < wire.size()) {
        ssize_t n = ::send(fd_, wire.data() + sent,
                           wire.size() - sent, MSG_NOSIGNAL);
        if (n < 0) {
            if (errno == EINTR)
                continue;
            lastFailure_ = FailureKind::Other;
            if (error)
                *error = std::string("send: ") +
                         std::strerror(errno);
            return false;
        }
        sent += static_cast<std::size_t>(n);
    }
    return true;
}

bool
HttpClient::readResponse(HttpClientResponse *out,
                         std::string *error)
{
    // The whole response (headers + body) shares one read bound; a
    // half-read response is useless, so a timeout also drops the
    // connection.
    const auto read_deadline =
        std::chrono::steady_clock::now() +
        std::chrono::milliseconds(readTimeoutMs_);
    const auto recv_some = [&](char *chunk, std::size_t cap,
                               ssize_t *n) -> bool {
        for (;;) {
            if (readTimeoutMs_ != 0) {
                const auto remaining =
                    std::chrono::duration_cast<
                        std::chrono::milliseconds>(
                        read_deadline -
                        std::chrono::steady_clock::now())
                        .count();
                pollfd pfd{fd_, POLLIN, 0};
                const int ready = remaining <= 0
                    ? 0
                    : ::poll(&pfd, 1,
                             static_cast<int>(remaining));
                if (ready == 0) {
                    lastFailure_ = FailureKind::ReadTimeout;
                    if (error)
                        *error =
                            "read timed out after " +
                            std::to_string(readTimeoutMs_) +
                            " ms";
                    disconnect();
                    return false;
                }
                if (ready < 0) {
                    if (errno == EINTR)
                        continue;
                    if (error)
                        *error = std::string("poll: ") +
                                 std::strerror(errno);
                    return false;
                }
            }
            *n = ::recv(fd_, chunk, cap, 0);
            if (*n < 0 && errno == EINTR)
                continue;
            if (*n <= 0) {
                if (error)
                    *error =
                        *n == 0
                            ? "connection closed mid-response"
                            : std::string("recv: ") +
                                  std::strerror(errno);
                return false;
            }
            return true;
        }
    };

    // Pull bytes until the header block is complete.
    std::size_t header_end;
    while ((header_end = buffer_.find("\r\n\r\n")) ==
           std::string::npos) {
        char chunk[4096];
        ssize_t n = 0;
        if (!recv_some(chunk, sizeof(chunk), &n))
            return false;
        buffer_.append(chunk, static_cast<std::size_t>(n));
    }

    const std::string header = buffer_.substr(0, header_end);
    buffer_.erase(0, header_end + 4);

    // Status line: "HTTP/1.1 200 OK".
    std::size_t line_end = header.find("\r\n");
    const std::string status_line = header.substr(0, line_end);
    std::size_t space = status_line.find(' ');
    if (space == std::string::npos ||
        status_line.compare(0, 5, "HTTP/") != 0) {
        if (error)
            *error = "malformed status line: " + status_line;
        return false;
    }
    out->status = std::atoi(status_line.c_str() + space + 1);
    out->headers.clear();
    out->body.clear();

    std::size_t cursor =
        line_end == std::string::npos ? header.size()
                                      : line_end + 2;
    while (cursor < header.size()) {
        std::size_t eol = header.find("\r\n", cursor);
        if (eol == std::string::npos)
            eol = header.size();
        const std::string line =
            header.substr(cursor, eol - cursor);
        cursor = eol + 2;
        std::size_t colon = line.find(':');
        if (colon == std::string::npos)
            continue;
        out->headers[lowered(trimmed(line.substr(0, colon)))] =
            trimmed(line.substr(colon + 1));
    }

    auto length_it = out->headers.find("content-length");
    std::size_t want =
        length_it == out->headers.end()
            ? 0
            : static_cast<std::size_t>(
                  std::strtoull(length_it->second.c_str(),
                                nullptr, 10));
    while (buffer_.size() < want) {
        char chunk[4096];
        ssize_t n = 0;
        if (!recv_some(chunk, sizeof(chunk), &n))
            return false;
        buffer_.append(chunk, static_cast<std::size_t>(n));
    }
    out->body = buffer_.substr(0, want);
    buffer_.erase(0, want);

    auto connection_it = out->headers.find("connection");
    if (connection_it != out->headers.end() &&
        lowered(connection_it->second) == "close") {
        disconnect();
    }
    return true;
}

bool
HttpClient::performOnce(const Request &request,
                        HttpClientResponse *out,
                        std::string *error)
{
    lastFailure_ = FailureKind::None;
    const bool reused = fd_ >= 0;
    if (!reused && !connect(error)) {
        if (lastFailure_ == FailureKind::None)
            lastFailure_ = FailureKind::Other;
        return false;
    }

    std::string wire;
    wire.reserve(request.target.size() + request.body.size() +
                 128);
    wire += request.method;
    wire += ' ';
    wire += request.target;
    wire += " HTTP/1.1\r\nHost: ";
    wire += host_;
    if (request.bodyProvider) {
        wire += "\r\nTransfer-Encoding: chunked\r\n";
    } else {
        wire += "\r\nContent-Length: ";
        wire += std::to_string(request.body.size());
        wire += "\r\n";
    }
    for (const auto &[name, value] : request.headers) {
        wire += name;
        wire += ": ";
        wire += value;
        wire += "\r\n";
    }
    wire += "\r\n";

    if (request.bodyProvider) {
        // The provider is consumed as it runs, so a streamed
        // request gets exactly one attempt: no stale keep-alive
        // resend, no retry loop.
        if (!sendAll(wire, error))
            return false;
        char buffer[64 << 10];
        for (;;) {
            const std::size_t count =
                request.bodyProvider(buffer, sizeof(buffer));
            if (count == 0)
                break;
            if (count > sizeof(buffer)) {
                if (error != nullptr)
                    *error = "body provider overran its buffer";
                disconnect();
                return false;
            }
            char size_line[32];
            std::snprintf(size_line, sizeof(size_line),
                          "%zx\r\n", count);
            std::string chunk(size_line);
            chunk.append(buffer, count);
            chunk += "\r\n";
            if (!sendAll(chunk, error))
                return false;
        }
        return sendAll("0\r\n\r\n", error) &&
               readResponse(out, error);
    }
    wire += request.body;

    bool ok = sendAll(wire, error) && readResponse(out, error);
    if (!ok && lastFailure_ != FailureKind::ReadTimeout) {
        // A connection the server dropped between our exchange's
        // send and read (a stale keep-alive socket, a shed accept)
        // shows up as a transport error; retry once on a fresh
        // one.  Not after a read timeout — the full bound was
        // already spent waiting, and re-sending would double it.
        lastFailure_ = FailureKind::None;
        ok = connect(error) && sendAll(wire, error) &&
             readResponse(out, error);
    }
    if (!ok && lastFailure_ == FailureKind::None)
        lastFailure_ = FailureKind::Other;
    return ok;
}

namespace {

/**
 * Statuses the server sends before doing any work, so retrying is
 * safe even for non-idempotent methods.
 */
bool
refusedWithoutWork(int status)
{
    return status == 503 || status == 429;
}

} // namespace

bool
HttpClient::retryLoop(const Request &request,
                      const HttpRetryPolicy &policy,
                      double deadline_ms, HttpClientResponse *out,
                      std::string *error)
{
    const auto start = std::chrono::steady_clock::now();
    if (jitterState_ == 0)
        jitterState_ = policy.seed | 1;
    const bool idempotent =
        request.method != "POST" || policy.retryPosts;
    double backoff_ms = policy.initialBackoffMs;
    std::string last_error;

    for (unsigned attempt = 1;; ++attempt) {
        Request attempt_request = request;
        if (deadline_ms > 0.0) {
            const double elapsed_ms =
                std::chrono::duration<double, std::milli>(
                    std::chrono::steady_clock::now() - start)
                    .count();
            const double remaining = deadline_ms - elapsed_ms;
            if (remaining <= 0.0) {
                if (error)
                    *error = "deadline exhausted after " +
                             std::to_string(attempt - 1) +
                             " attempt(s): " + last_error;
                return false;
            }
            attempt_request.headers["X-BWWall-Deadline-Ms"] =
                std::to_string(std::max(
                    1L, std::lround(remaining)));
        }

        std::string attempt_error;
        const bool transported =
            performOnce(attempt_request, out, &attempt_error);
        if (transported && !refusedWithoutWork(out->status))
            return true;

        double retry_after_ms = 0.0;
        if (transported) {
            last_error =
                "HTTP " + std::to_string(out->status) +
                " from " + request.target;
            const auto hint = out->headers.find("retry-after");
            if (hint != out->headers.end())
                retry_after_ms =
                    std::atof(hint->second.c_str()) * 1000.0;
        } else {
            last_error = attempt_error;
            if (!idempotent) {
                // The connection died mid-exchange; the server may
                // have processed this POST, so do not resend it.
                if (error)
                    *error = last_error +
                             " (not retried: non-idempotent)";
                return false;
            }
            if (policy.failFastOnRefused &&
                lastFailure_ == FailureKind::ConnectRefused) {
                // Nobody is listening: fail now, before this
                // refusal consumes a retry attempt or any backoff
                // sleep from the caller's budget.
                if (error)
                    *error = last_error +
                             " (not retried: connection refused)";
                return false;
            }
        }

        if (attempt >= policy.maxAttempts ||
            retriesUsed_ >= policy.budget) {
            if (error) {
                *error = last_error + " (after " +
                         std::to_string(attempt) + " attempt" +
                         (attempt == 1 ? "" : "s") +
                         (retriesUsed_ >= policy.budget
                              ? "; retry budget exhausted)"
                              : ")");
            }
            return false;
        }
        ++retriesUsed_;

        // Capped exponential backoff with deterministic jitter,
        // stretched to any Retry-After hint (itself capped).
        jitterState_ =
            jitterState_ * 6364136223846793005ULL +
            1442695040888963407ULL;
        const double unit =
            static_cast<double>(jitterState_ >> 11) * 0x1.0p-53;
        double wait_ms =
            std::min(backoff_ms, policy.maxBackoffMs) *
            (1.0 + policy.jitter * (2.0 * unit - 1.0));
        wait_ms = std::max(
            wait_ms, std::min(retry_after_ms,
                              policy.maxBackoffMs));
        if (deadline_ms > 0.0) {
            const double elapsed_ms =
                std::chrono::duration<double, std::milli>(
                    std::chrono::steady_clock::now() - start)
                    .count();
            wait_ms = std::min(wait_ms,
                               deadline_ms - elapsed_ms);
        }
        if (wait_ms > 0.0) {
            std::this_thread::sleep_for(
                std::chrono::duration<double, std::milli>(
                    wait_ms));
        }
        backoff_ms *= 2.0;
    }
}

bool
HttpClient::perform(const Request &request,
                    const RequestOptions &options,
                    HttpClientResponse *out, std::string *error)
{
    const bool retry = options.retry || options.policy != nullptr;
    if (request.bodyProvider) // streamed: single attempt, always
        return performOnce(request, out, error);
    if (!retry && options.deadlineMs < 0.0)
        return performOnce(request, out, error);
    const HttpRetryPolicy &policy =
        options.policy != nullptr ? *options.policy
                                  : retryPolicy_;
    const double deadline_ms = options.deadlineMs >= 0.0
                                   ? options.deadlineMs
                                   : policy.totalDeadlineMs;
    if (!retry) {
        // Deadline without retry: one attempt under a one-shot
        // policy so the X-BWWall-Deadline-Ms header still rides
        // along.
        HttpRetryPolicy single = policy;
        single.maxAttempts = 1;
        return retryLoop(request, single, deadline_ms, out,
                         error);
    }
    return retryLoop(request, policy, deadline_ms, out, error);
}

} // namespace bwwall
