/**
 * @file
 * The model-query service: JSON requests in, JSON answers out.
 *
 * This is the bridge between the HTTP layer and the bandwidth-wall
 * library: each POST endpoint's body is parsed into model structures
 * (strictly — unknown keys, wrong types, and out-of-range values are
 * BadRequest, never silently ignored), evaluated through the same
 * entry points the batch binaries use (relativeTraffic,
 * solveSupportableCores, runScalingStudy, figure15Study,
 * estimateMissCurve), and serialized back canonically so responses
 * are byte-identical across runs, processes, and cache hits.
 *
 * Endpoints:
 *  - POST /v1/traffic  relative traffic of one configuration
 *  - POST /v1/solve    supportable core count under a budget
 *  - POST /v1/sweep    scaling study / technique comparison /
 *                      miss-curve estimation
 *  - POST /v1/batch    up to 64 of the above in one body; solve and
 *                      traffic items sharing a (baseline,
 *                      techniques) pair dispatch through the SoA
 *                      batch solver in contiguous buffers, and each
 *                      embedded response body is byte-identical to
 *                      the single-request endpoint's answer
 */

#ifndef BWWALL_SERVER_MODEL_SERVICE_HH
#define BWWALL_SERVER_MODEL_SERVICE_HH

#include <cstdint>
#include <set>
#include <stdexcept>
#include <string>

#include "server/json.hh"
#include "server/result_cache.hh"

namespace bwwall {

/** A client error in the request body; becomes an HTTP 400. */
class BadRequest : public std::runtime_error
{
  public:
    using std::runtime_error::runtime_error;
};

/**
 * Strict request-field access shared by the model-query and ingest
 * parsers: unknown keys, wrong types, and out-of-range values throw
 * BadRequest, never get silently ignored.
 */
void requireKnownKeys(const JsonValue &object,
                      const std::set<std::string> &known,
                      const std::string &where);

double numberField(const JsonValue &object, const std::string &key,
                   double fallback, double min, double max);

std::uint64_t integerField(const JsonValue &object,
                           const std::string &key,
                           std::uint64_t fallback,
                           std::uint64_t min, std::uint64_t max);

std::string stringField(const JsonValue &object,
                        const std::string &key,
                        const std::string &fallback);

/** True for the cacheable POST model-query paths (/v1/...). */
bool isModelQueryPath(const std::string &path);

/**
 * The result-cache key of a request: the path plus the canonical
 * dump of the parsed body, so key order and whitespace in the
 * client's JSON never cause duplicate cache entries.
 */
std::string canonicalCacheKey(const std::string &path,
                              const JsonValue &request);

/**
 * Rewrites a /v1/sweep request body to a cheaper, lower-resolution
 * variant (fewer generations, fewer simulated accesses) for
 * degraded service under overload.  Returns true when the body
 * changed; a changed body also changes canonicalCacheKey, so
 * degraded and full answers never collide in the cache.  Leaves
 * malformed bodies untouched (strict validation rejects them
 * later).
 */
bool degradeSweepRequest(JsonValue *request);

/**
 * Evaluates one model query.  Deterministic: equal (path, request)
 * pairs produce byte-identical bodies.  Throws BadRequest for
 * semantic errors in the request and Errored (see util/error.hh)
 * when the model itself fails.
 */
CachedResponse executeModelQuery(const std::string &path,
                                 const JsonValue &request);

} // namespace bwwall

#endif // BWWALL_SERVER_MODEL_SERVICE_HH
