#include "server/model_service.hh"

#include <algorithm>
#include <cmath>
#include <map>
#include <memory>
#include <set>
#include <vector>

#include "cache/miss_curve_estimator.hh"
#include "model/assumptions.hh"
#include "model/bandwidth_wall.hh"
#include "model/batch_solver.hh"
#include "model/scaling_study.hh"
#include "server/http.hh"
#include "trace/profiles.hh"
#include "util/error.hh"
#include "util/units.hh"

namespace bwwall {

// ---------------------------------------------------------------
// Strict request-field access (shared with server/ingest_session.cc).

void
requireKnownKeys(const JsonValue &object,
                 const std::set<std::string> &known,
                 const std::string &where)
{
    if (!object.isObject())
        throw BadRequest(where + " must be a JSON object");
    for (const auto &[key, value] : object.members()) {
        if (known.count(key) == 0)
            throw BadRequest("unknown key '" + key + "' in " +
                             where);
    }
}

double
numberField(const JsonValue &object, const std::string &key,
            double fallback, double min, double max)
{
    const JsonValue *value = object.find(key);
    if (value == nullptr)
        return fallback;
    if (!value->isNumber())
        throw BadRequest("'" + key + "' must be a number");
    const double parsed = value->asNumber();
    if (!(parsed >= min && parsed <= max))
        throw BadRequest("'" + key + "' out of range [" +
                         jsonNumberText(min) + ", " +
                         jsonNumberText(max) + "]");
    return parsed;
}

std::uint64_t
integerField(const JsonValue &object, const std::string &key,
             std::uint64_t fallback, std::uint64_t min,
             std::uint64_t max)
{
    const double parsed = numberField(
        object, key, static_cast<double>(fallback),
        static_cast<double>(min), static_cast<double>(max));
    if (parsed != std::floor(parsed))
        throw BadRequest("'" + key + "' must be an integer");
    return static_cast<std::uint64_t>(parsed);
}

std::string
stringField(const JsonValue &object, const std::string &key,
            const std::string &fallback)
{
    const JsonValue *value = object.find(key);
    if (value == nullptr)
        return fallback;
    if (!value->isString())
        throw BadRequest("'" + key + "' must be a string");
    return value->asString();
}

namespace {

bool
boolField(const JsonValue &object, const std::string &key,
          bool fallback)
{
    const JsonValue *value = object.find(key);
    if (value == nullptr)
        return fallback;
    if (!value->isBool())
        throw BadRequest("'" + key + "' must be a boolean");
    return value->asBool();
}

// ---------------------------------------------------------------
// Model-structure parsing.

Assumption
parseAssumption(const std::string &name)
{
    if (name == "pessimistic")
        return Assumption::Pessimistic;
    if (name == "realistic")
        return Assumption::Realistic;
    if (name == "optimistic")
        return Assumption::Optimistic;
    throw BadRequest("unknown assumption '" + name +
                     "'; expected pessimistic | realistic | "
                     "optimistic");
}

Technique
parseTechnique(const JsonValue &item)
{
    if (!item.isObject())
        throw BadRequest("each technique must be a JSON object");
    if (item.find("label") != nullptr) {
        requireKnownKeys(item, {"label", "assumption"},
                         "technique");
        const std::string label = stringField(item, "label", "");
        const Assumption assumption = parseAssumption(
            stringField(item, "assumption", "realistic"));
        for (const TechniqueAssumption &row : table2Assumptions()) {
            if (row.label == label)
                return row.make(assumption);
        }
        throw BadRequest("unknown technique label '" + label + "'");
    }

    const std::string type = stringField(item, "type", "");
    if (type.empty())
        throw BadRequest(
            "technique needs either a Table 2 'label' or a 'type'");
    if (type == "cache_compression") {
        requireKnownKeys(item, {"type", "ratio"}, "technique");
        return cacheCompression(
            numberField(item, "ratio", 2.0, 1.0, 64.0));
    }
    if (type == "dram_cache") {
        requireKnownKeys(item, {"type", "density"}, "technique");
        return dramCache(
            numberField(item, "density", 8.0, 1.0, 128.0));
    }
    if (type == "stacked_cache") {
        requireKnownKeys(item, {"type", "density", "layers"},
                         "technique");
        return stackedCache(
            numberField(item, "density", 1.0, 1.0, 128.0),
            numberField(item, "layers", 1.0, 0.0, 8.0));
    }
    if (type == "unused_data_filter") {
        requireKnownKeys(item, {"type", "unused_fraction"},
                         "technique");
        return unusedDataFilter(
            numberField(item, "unused_fraction", 0.4, 0.0, 1.0));
    }
    if (type == "smaller_cores") {
        requireKnownKeys(item, {"type", "area_fraction"},
                         "technique");
        return smallerCores(
            numberField(item, "area_fraction", 0.5, 0.01, 1.0));
    }
    if (type == "link_compression") {
        requireKnownKeys(item, {"type", "ratio"}, "technique");
        return linkCompression(
            numberField(item, "ratio", 2.0, 1.0, 64.0));
    }
    if (type == "sectored_cache") {
        requireKnownKeys(item, {"type", "unused_fraction"},
                         "technique");
        return sectoredCache(
            numberField(item, "unused_fraction", 0.4, 0.0, 1.0));
    }
    if (type == "small_cache_lines") {
        requireKnownKeys(item, {"type", "unused_fraction"},
                         "technique");
        return smallCacheLines(
            numberField(item, "unused_fraction", 0.4, 0.0, 1.0));
    }
    if (type == "cache_link_compression") {
        requireKnownKeys(item, {"type", "ratio"}, "technique");
        return cacheLinkCompression(
            numberField(item, "ratio", 2.0, 1.0, 64.0));
    }
    if (type == "data_sharing") {
        requireKnownKeys(item,
                         {"type", "shared_fraction", "pooled"},
                         "technique");
        const double fraction =
            numberField(item, "shared_fraction", 0.5, 0.0, 1.0);
        return boolField(item, "pooled", true)
                   ? dataSharing(fraction)
                   : dataSharingPrivateCaches(fraction);
    }
    throw BadRequest("unknown technique type '" + type + "'");
}

std::vector<Technique>
parseTechniques(const JsonValue &request)
{
    std::vector<Technique> techniques;
    const JsonValue *list = request.find("techniques");
    if (list == nullptr)
        return techniques;
    if (!list->isArray())
        throw BadRequest("'techniques' must be an array");
    if (list->items().size() > 16)
        throw BadRequest("at most 16 techniques per request");
    for (const JsonValue &item : list->items())
        techniques.push_back(parseTechnique(item));
    return techniques;
}

CmpConfig
parseBaseline(const JsonValue &request)
{
    const JsonValue *baseline = request.find("baseline");
    if (baseline == nullptr)
        return niagara2Baseline();
    requireKnownKeys(*baseline, {"total_ceas", "core_ceas"},
                     "'baseline'");
    CmpConfig config;
    config.totalCeas =
        numberField(*baseline, "total_ceas", 16.0, 0.25, 65536.0);
    config.coreCeas = numberField(*baseline, "core_ceas", 8.0,
                                  0.0625, config.totalCeas);
    return config;
}

/** The shared scenario keys of /v1/traffic and /v1/solve. */
const std::set<std::string> kScenarioKeys = {
    "baseline", "alpha", "total_ceas", "traffic_budget",
    "techniques",
};

ScalingScenario
parseScenario(const JsonValue &request)
{
    ScalingScenario scenario;
    scenario.baseline = parseBaseline(request);
    scenario.alpha =
        numberField(request, "alpha", 0.5, 0.01, 2.0);
    scenario.totalCeas =
        numberField(request, "total_ceas", 32.0, 1.0, 1.0e6);
    scenario.trafficBudget =
        numberField(request, "traffic_budget", 1.0, 0.01, 1000.0);
    scenario.techniques = parseTechniques(request);
    return scenario;
}

// ---------------------------------------------------------------
// Response building.

JsonValue
baselineJson(const CmpConfig &config)
{
    JsonValue value = JsonValue::makeObject();
    value.set("total_ceas", JsonValue(config.totalCeas));
    value.set("core_ceas", JsonValue(config.coreCeas));
    return value;
}

JsonValue
generationsJson(const std::vector<GenerationResult> &results)
{
    JsonValue list = JsonValue::makeArray();
    for (const GenerationResult &result : results) {
        JsonValue row = JsonValue::makeObject();
        row.set("scale", JsonValue(result.scale));
        row.set("total_ceas", JsonValue(result.totalCeas));
        row.set("cores",
                JsonValue(static_cast<double>(result.cores)));
        row.set("core_area_fraction",
                JsonValue(result.coreAreaFraction));
        list.append(std::move(row));
    }
    return list;
}

CachedResponse
jsonResponse(const JsonValue &payload)
{
    CachedResponse response;
    response.body = payload.dump();
    response.body += '\n';
    return response;
}

// ---------------------------------------------------------------
// Endpoint handlers.

/**
 * The /v1/traffic payload for one evaluated point — shared by the
 * single-request handler and /v1/batch so the two are
 * byte-identical for identical inputs.
 */
JsonValue
trafficResultPayload(const ScalingScenario &scenario, double cores,
                     double traffic)
{
    JsonValue payload = JsonValue::makeObject();
    payload.set("cores", JsonValue(cores));
    payload.set("alpha", JsonValue(scenario.alpha));
    payload.set("total_ceas", JsonValue(scenario.totalCeas));
    payload.set("baseline", baselineJson(scenario.baseline));
    payload.set("relative_traffic",
                std::isfinite(traffic) ? JsonValue(traffic)
                                       : JsonValue());
    payload.set("feasible", JsonValue(std::isfinite(traffic)));
    payload.set("within_budget",
                JsonValue(std::isfinite(traffic) &&
                          traffic <= scenario.trafficBudget));
    payload.set("max_placeable_cores",
                JsonValue(maxPlaceableCores(scenario)));
    return payload;
}

/** The /v1/solve payload for one solved point (see above). */
JsonValue
solveResultPayload(const ScalingScenario &scenario,
                   const SolveResult &result)
{
    JsonValue payload = JsonValue::makeObject();
    payload.set("alpha", JsonValue(scenario.alpha));
    payload.set("total_ceas", JsonValue(scenario.totalCeas));
    payload.set("traffic_budget",
                JsonValue(scenario.trafficBudget));
    payload.set("baseline", baselineJson(scenario.baseline));
    payload.set("supportable_cores",
                JsonValue(
                    static_cast<double>(result.supportableCores)));
    payload.set("fractional_cores",
                JsonValue(result.fractionalCores));
    payload.set("traffic_at_solution",
                JsonValue(result.trafficAtSolution));
    payload.set("core_area_fraction",
                JsonValue(result.coreAreaFraction));
    payload.set("cache_per_core", JsonValue(result.cachePerCore));
    return payload;
}

/** Validates a /v1/traffic body and parses its scenario + cores. */
ScalingScenario
parseTrafficRequest(const JsonValue &request, double *cores)
{
    std::set<std::string> known = kScenarioKeys;
    known.insert("cores");
    requireKnownKeys(request, known, "request");
    if (request.find("cores") == nullptr)
        throw BadRequest("'cores' is required");
    *cores = numberField(request, "cores", 1.0, 0.0625, 1.0e6);
    return parseScenario(request);
}

CachedResponse
handleTraffic(const JsonValue &request)
{
    double cores = 1.0;
    const ScalingScenario scenario =
        parseTrafficRequest(request, &cores);
    const double traffic = relativeTraffic(scenario, cores);
    return jsonResponse(
        trafficResultPayload(scenario, cores, traffic));
}

CachedResponse
handleSolve(const JsonValue &request)
{
    requireKnownKeys(request, kScenarioKeys, "request");
    const ScalingScenario scenario = parseScenario(request);
    Expected<SolveResult> solved =
        trySolveSupportableCores(scenario);
    if (!solved.ok())
        throw Errored(solved.error());
    return jsonResponse(
        solveResultPayload(scenario, solved.value()));
}

JsonValue
scalingSweepPayload(const JsonValue &request)
{
    ScalingStudyParams params;
    params.baseline = parseBaseline(request);
    params.alpha = numberField(request, "alpha", 0.5, 0.01, 2.0);
    params.generations = static_cast<int>(
        integerField(request, "generations", 4, 1, 12));
    params.bandwidthGrowthPerGeneration = numberField(
        request, "bandwidth_growth", 1.0, 0.25, 8.0);
    params.techniques = parseTechniques(request);
    params.jobs = 1; // request-level parallelism only

    JsonValue payload = JsonValue::makeObject();
    payload.set("kind", JsonValue("scaling"));
    payload.set("alpha", JsonValue(params.alpha));
    payload.set("generations", generationsJson(
                                   runScalingStudy(params)));
    if (boolField(request, "include_ideal", true))
        payload.set("ideal",
                    generationsJson(idealScaling(
                        params.baseline, params.generations)));
    return payload;
}

JsonValue
figure15SweepPayload(const JsonValue &request)
{
    ScalingStudyParams params;
    params.baseline = parseBaseline(request);
    params.alpha = numberField(request, "alpha", 0.5, 0.01, 2.0);
    params.generations = static_cast<int>(
        integerField(request, "generations", 4, 1, 12));
    params.bandwidthGrowthPerGeneration = numberField(
        request, "bandwidth_growth", 1.0, 0.25, 8.0);
    params.jobs = 1;

    JsonValue candles = JsonValue::makeArray();
    for (const TechniqueCandle &candle : figure15Study(params)) {
        JsonValue row = JsonValue::makeObject();
        row.set("label", JsonValue(candle.label));
        row.set("pessimistic",
                generationsJson(candle.pessimistic));
        row.set("realistic", generationsJson(candle.realistic));
        row.set("optimistic", generationsJson(candle.optimistic));
        candles.append(std::move(row));
    }
    JsonValue payload = JsonValue::makeObject();
    payload.set("kind", JsonValue("figure15"));
    payload.set("alpha", JsonValue(params.alpha));
    payload.set("techniques", std::move(candles));
    return payload;
}

const WorkloadProfileSpec &
profileByName(const std::string &name)
{
    static const std::vector<WorkloadProfileSpec> profiles =
        figure1Profiles();
    for (const WorkloadProfileSpec &profile : profiles) {
        if (profile.name == name)
            return profile;
    }
    throw BadRequest("unknown profile '" + name + "'");
}

JsonValue
missCurveSweepPayload(const JsonValue &request)
{
    MissCurveSpec spec;
    spec.cache.capacityBytes =
        integerField(request, "size_kib", 256, 8, 64 * 1024) *
        kKiB;
    spec.cache.lineBytes = static_cast<std::uint32_t>(
        integerField(request, "line_bytes", 64, 8, 1024));
    spec.cache.associativity = static_cast<std::uint32_t>(
        integerField(request, "assoc", 8, 0, 64));
    spec.capacities =
        capacityLadder(4 * kKiB, spec.cache.capacityBytes);
    spec.warmupAccesses =
        integerField(request, "warm", 100000, 0, 5000000);
    spec.measuredAccesses =
        integerField(request, "accesses", 200000, 1000, 10000000);
    spec.sampleRate =
        numberField(request, "sample_rate", 0.1, 1e-4, 1.0);
    spec.seed = integerField(request, "seed", 1, 1,
                             ~std::uint64_t{0} >> 1);
    const std::string estimator =
        stringField(request, "estimator", "stack");
    if (!parseMissCurveEstimatorKind(estimator, &spec.kind))
        throw BadRequest("unknown estimator '" + estimator +
                         "'; expected exact | stack | sampled");

    const WorkloadProfileSpec &profile =
        profileByName(stringField(request, "profile", "OLTP-2"));
    const std::unique_ptr<TraceSource> trace =
        makeProfileTrace(profile, spec.seed,
                         spec.cache.lineBytes);
    const MissCurve curve = estimateMissCurve(*trace, spec);

    JsonValue points = JsonValue::makeArray();
    for (const MissCurvePoint &point : curve.points) {
        JsonValue row = JsonValue::makeObject();
        row.set("capacity_kib",
                JsonValue(static_cast<double>(
                    point.capacityBytes / kKiB)));
        row.set("miss_rate", JsonValue(point.missRate));
        row.set("writeback_ratio",
                JsonValue(point.writebackRatio));
        row.set("traffic_bytes_per_access",
                JsonValue(point.trafficBytesPerAccess));
        points.append(std::move(row));
    }
    const PowerLawFit fit = curve.fit();
    JsonValue payload = JsonValue::makeObject();
    payload.set("kind", JsonValue("miss_curve"));
    payload.set("profile", JsonValue(profile.name));
    payload.set("estimator", JsonValue(curve.estimator));
    payload.set("trace_passes",
                JsonValue(static_cast<double>(curve.tracePasses)));
    payload.set("points", std::move(points));
    payload.set("alpha", JsonValue(-fit.exponent));
    payload.set("fit_r_squared", JsonValue(fit.rSquared));
    return payload;
}

JsonValue
sweepPayload(const JsonValue &request)
{
    const std::string kind =
        stringField(request, "kind", "scaling");
    if (kind == "scaling") {
        requireKnownKeys(request,
                         {"kind", "baseline", "alpha",
                          "generations", "bandwidth_growth",
                          "techniques", "include_ideal"},
                         "request");
        return scalingSweepPayload(request);
    }
    if (kind == "figure15") {
        requireKnownKeys(request,
                         {"kind", "baseline", "alpha",
                          "generations", "bandwidth_growth"},
                         "request");
        return figure15SweepPayload(request);
    }
    if (kind == "miss_curve") {
        requireKnownKeys(request,
                         {"kind", "profile", "estimator",
                          "size_kib", "line_bytes", "assoc",
                          "warm", "accesses", "sample_rate",
                          "seed"},
                         "request");
        return missCurveSweepPayload(request);
    }
    throw BadRequest("unknown sweep kind '" + kind +
                     "'; expected scaling | figure15 | "
                     "miss_curve");
}

CachedResponse
handleSweep(const JsonValue &request)
{
    return jsonResponse(sweepPayload(request));
}

// ---------------------------------------------------------------
// POST /v1/batch: many model queries in one body, one parse, one
// contiguous dispatch through the SoA batch solver.

/**
 * Groups /v1/solve and /v1/traffic batch items that share a
 * (baseline, techniques) pair into one BatchGrid, so the SoA solver
 * binds the grid invariants once and evaluates every point of the
 * group in contiguous buffers.
 */
struct BatchGroup
{
    BatchGrid grid;
    /** Indices into the batch's item array, one per grid point. */
    std::vector<std::size_t> members;
    /** Per-point scenarios for payload building. */
    std::vector<ScalingScenario> scenarios;
    /** Per-point core counts (traffic groups only). */
    std::vector<double> cores;
};

/**
 * The grouping key of one parsed item: the canonical baseline plus
 * the raw techniques spec.  Items with equal keys share grid
 * invariants by construction.
 */
std::string
batchGroupKey(const ScalingScenario &scenario,
              const JsonValue &body)
{
    const JsonValue *techniques = body.find("techniques");
    return baselineJson(scenario.baseline).dump() + '\n' +
           (techniques == nullptr ? std::string()
                                  : techniques->dump());
}

/** One item of a batch on its way to a response entry. */
struct BatchItem
{
    std::string path;
    const JsonValue *body = nullptr;
    JsonValue result;
    int status = 200;
    bool done = false;
};

/**
 * Renders a per-item failure into the item's response slot — the
 * same {"error", "category", "status"} body the single-request
 * endpoint would have answered.  Faulted errors abort the whole
 * batch instead (rethrown as Errored) so a fault-injected answer is
 * never embedded in a cacheable 200.
 */
void
embedItemError(BatchItem *item, const Error &error)
{
    if (error.category == ErrorCategory::Faulted)
        throw Errored(error);
    item->result = httpErrorBody(error);
    item->status = httpStatusFor(error.category);
    item->done = true;
}

CachedResponse
handleBatch(const JsonValue &request)
{
    requireKnownKeys(request, {"requests"}, "request");
    const JsonValue *list = request.find("requests");
    if (list == nullptr)
        throw BadRequest("'requests' is required");
    if (!list->isArray())
        throw BadRequest("'requests' must be an array");
    const std::size_t count = list->items().size();
    if (count == 0)
        throw BadRequest("'requests' must not be empty");
    if (count > 64)
        throw BadRequest("at most 64 requests per batch");

    // Envelope validation is strict and batch-fatal; per-item
    // semantic errors below degrade to per-item error entries.
    const JsonValue empty_body = JsonValue::makeObject();
    std::vector<BatchItem> items(count);
    for (std::size_t i = 0; i < count; ++i) {
        const JsonValue &entry = list->items()[i];
        const std::string where =
            "requests[" + std::to_string(i) + "]";
        requireKnownKeys(entry, {"path", "body"}, where);
        const JsonValue *path_value = entry.find("path");
        if (path_value == nullptr || !path_value->isString())
            throw BadRequest(where +
                             " needs a string 'path'");
        const std::string path = path_value->asString();
        if (path == "/v1/batch")
            throw BadRequest(where +
                             ": batches do not nest");
        if (!isModelQueryPath(path))
            throw BadRequest(where + ": unknown path '" + path +
                             "'");
        const JsonValue *body = entry.find("body");
        if (body != nullptr && !body->isObject())
            throw BadRequest(where +
                             ": 'body' must be a JSON object");
        items[i].path = path;
        items[i].body = body == nullptr ? &empty_body : body;
    }

    // Parse phase: sweeps evaluate per item; solve and traffic
    // items accumulate into SoA grids keyed by shared invariants.
    std::map<std::string, BatchGroup> solve_groups;
    std::map<std::string, BatchGroup> traffic_groups;
    for (std::size_t i = 0; i < count; ++i) {
        BatchItem &item = items[i];
        try {
            if (item.path == "/v1/sweep") {
                item.result = sweepPayload(*item.body);
                item.done = true;
                continue;
            }
            if (item.path == "/v1/traffic") {
                double cores = 1.0;
                ScalingScenario scenario =
                    parseTrafficRequest(*item.body, &cores);
                BatchGroup &group = traffic_groups[batchGroupKey(
                    scenario, *item.body)];
                if (group.members.empty()) {
                    group.grid.baseline = scenario.baseline;
                    group.grid.techniques = scenario.techniques;
                }
                group.grid.push(scenario.alpha,
                                scenario.totalCeas,
                                scenario.trafficBudget);
                group.members.push_back(i);
                group.cores.push_back(cores);
                group.scenarios.push_back(std::move(scenario));
                continue;
            }
            requireKnownKeys(*item.body, kScenarioKeys,
                             "request");
            ScalingScenario scenario = parseScenario(*item.body);
            BatchGroup &group = solve_groups[batchGroupKey(
                scenario, *item.body)];
            if (group.members.empty()) {
                group.grid.baseline = scenario.baseline;
                group.grid.techniques = scenario.techniques;
            }
            group.grid.push(scenario.alpha, scenario.totalCeas,
                            scenario.trafficBudget);
            group.members.push_back(i);
            group.scenarios.push_back(std::move(scenario));
        } catch (const BadRequest &e) {
            embedItemError(&item,
                           {ErrorCategory::InvalidInput,
                            e.what()});
        } catch (const Errored &e) {
            embedItemError(&item, e.error());
        }
    }

    // Dispatch phase: one contiguous batch-solver call per group.
    for (auto &[key, group] : traffic_groups) {
        std::vector<double> traffic(group.grid.points());
        evaluateTrafficBatch(group.grid, group.cores.data(),
                             traffic.data());
        for (std::size_t j = 0; j < group.members.size(); ++j) {
            BatchItem &item = items[group.members[j]];
            item.result = trafficResultPayload(
                group.scenarios[j], group.cores[j], traffic[j]);
            item.done = true;
        }
    }
    for (auto &[key, group] : solve_groups) {
        const std::size_t points = group.grid.points();
        std::vector<int> supportable(points);
        std::vector<double> fractional(points);
        std::vector<double> traffic_at(points);
        std::vector<double> core_area(points);
        std::vector<double> cache_per(points);
        std::vector<std::uint8_t> ok(points);
        std::vector<Error> errors(points);
        SupportableBatchOut out;
        out.supportableCores = supportable.data();
        out.fractionalCores = fractional.data();
        out.trafficAtSolution = traffic_at.data();
        out.coreAreaFraction = core_area.data();
        out.cachePerCore = cache_per.data();
        BatchPointStatus status{ok.data(), errors.data()};
        trySolveSupportableBatch(group.grid, out, status);
        for (std::size_t j = 0; j < group.members.size(); ++j) {
            BatchItem &item = items[group.members[j]];
            if (ok[j] == 0) {
                embedItemError(&item, errors[j]);
                continue;
            }
            SolveResult result;
            result.supportableCores = supportable[j];
            result.fractionalCores = fractional[j];
            result.trafficAtSolution = traffic_at[j];
            result.coreAreaFraction = core_area[j];
            result.cachePerCore = cache_per[j];
            item.result = solveResultPayload(group.scenarios[j],
                                             result);
            item.done = true;
        }
    }

    // One canonical response array, original order preserved.
    JsonValue responses = JsonValue::makeArray();
    for (BatchItem &item : items) {
        JsonValue row = JsonValue::makeObject();
        row.set("body", std::move(item.result));
        row.set("status",
                JsonValue(static_cast<double>(item.status)));
        responses.append(std::move(row));
    }
    JsonValue payload = JsonValue::makeObject();
    payload.set("count",
                JsonValue(static_cast<double>(count)));
    payload.set("kind", JsonValue("batch"));
    payload.set("responses", std::move(responses));
    return jsonResponse(payload);
}

} // namespace

bool
isModelQueryPath(const std::string &path)
{
    return path == "/v1/traffic" || path == "/v1/solve" ||
           path == "/v1/sweep" || path == "/v1/batch";
}

std::string
canonicalCacheKey(const std::string &path,
                  const JsonValue &request)
{
    return path + '\n' + request.dump();
}

bool
degradeSweepRequest(JsonValue *request)
{
    if (request == nullptr || !request->isObject())
        return false;
    const JsonValue *kind_value = request->find("kind");
    if (kind_value != nullptr && !kind_value->isString())
        return false;
    const std::string kind = kind_value == nullptr
                                 ? "scaling"
                                 : kind_value->asString();
    bool changed = false;
    const auto reduceNumber = [&](const char *key, double fallback,
                                  double divisor, double floor) {
        const JsonValue *value = request->find(key);
        const double current =
            value != nullptr && value->isNumber() ? value->asNumber()
                                                  : fallback;
        const double reduced = std::max(
            floor, std::floor(current / divisor));
        if (reduced < current) {
            request->set(key, JsonValue(reduced));
            changed = true;
        }
    };
    if (kind == "miss_curve") {
        // An eighth of the simulated accesses keeps the power-law
        // fit usable while cutting compute by roughly 8x.
        reduceNumber("accesses", 200000.0, 8.0, 1000.0);
        reduceNumber("warm", 100000.0, 8.0, 0.0);
    } else if (kind == "scaling" || kind == "figure15") {
        reduceNumber("generations", 4.0, 2.0, 1.0);
    }
    return changed;
}

CachedResponse
executeModelQuery(const std::string &path,
                  const JsonValue &request)
{
    if (path == "/v1/traffic")
        return handleTraffic(request);
    if (path == "/v1/solve")
        return handleSolve(request);
    if (path == "/v1/sweep")
        return handleSweep(request);
    if (path == "/v1/batch")
        return handleBatch(request);
    throw BadRequest("unknown model-query path '" + path + "'");
}

} // namespace bwwall
