/**
 * @file
 * Sharded memoization cache for model-query responses.
 *
 * Every bwwalld endpoint is a pure function of its canonicalized
 * request, so the serving hot path is a lookup: requests hash to one
 * of N independently locked shards, each shard keeps an LRU list
 * under a byte budget with optional TTL expiry, and *single-flight*
 * deduplication guarantees that concurrent identical requests
 * compute the answer exactly once — late arrivals block on the
 * in-flight computation and share its result instead of piling onto
 * the thread pool with duplicate sweeps.
 *
 * Only status-200 responses are cached; errors are shared with the
 * waiters of the flight that produced them but never stored.
 *
 * Stale-while-revalidate: with a staleSeconds grace window, an entry
 * past its TTL is not dropped immediately — the first caller to see
 * it becomes the revalidating flight and recomputes, while
 * concurrent callers are served the expired entry (Outcome.stale; the
 * server adds an X-BWWall-Stale header) instead of piling onto the
 * flight.  If the revalidation fails, the stale entry survives for
 * the next attempt, so a transient compute fault degrades freshness
 * instead of availability.
 */

#ifndef BWWALL_SERVER_RESULT_CACHE_HH
#define BWWALL_SERVER_RESULT_CACHE_HH

#include <cstddef>
#include <cstdint>
#include <chrono>
#include <condition_variable>
#include <functional>
#include <list>
#include <memory>
#include <mutex>
#include <string>
#include <unordered_map>
#include <vector>

namespace bwwall {

class MetricsRegistry;

/** One cacheable response body. */
struct CachedResponse
{
    /** HTTP status; only 200 responses are stored. */
    int status = 200;

    std::string contentType = "application/json";
    std::string body;
};

/** Sizing and expiry of a ResultCache. */
struct ResultCacheConfig
{
    /** Independently locked shards (rounded up to at least 1). */
    std::size_t shardCount = 16;

    /** Total byte budget across shards (0 disables storage). */
    std::size_t maxBytes = 64u << 20;

    /** Seconds before an entry expires; 0 = never. */
    double ttlSeconds = 0.0;

    /**
     * Grace window after expiry during which a stale entry may
     * still be served while one flight revalidates; 0 disables
     * stale serving.  Only meaningful with a TTL.
     */
    double staleSeconds = 0.0;
};

/** Sharded LRU + TTL + single-flight response cache. */
class ResultCache
{
  public:
    using Compute = std::function<CachedResponse()>;

    /**
     * @param config Sizing; the byte budget is split evenly across
     *               shards.
     * @param metrics Optional sink for "cache.*" counters/gauges.
     */
    explicit ResultCache(const ResultCacheConfig &config,
                         MetricsRegistry *metrics = nullptr);

    /** How a response was obtained. */
    struct Outcome
    {
        std::shared_ptr<const CachedResponse> response;

        /** Served from the cache without computing. */
        bool hit = false;

        /** Joined another request's in-flight computation. */
        bool sharedFlight = false;

        /**
         * Served an expired entry inside the stale window while a
         * concurrent flight revalidates it.
         */
        bool stale = false;
    };

    /**
     * Returns the cached response for `key`, or computes it.  When
     * an identical request is already computing, blocks until that
     * flight finishes and shares its result (exactly one compute()
     * runs per key at a time).  Exceptions from compute() propagate
     * to the computing caller and every waiter; nothing is cached.
     */
    Outcome getOrCompute(const std::string &key,
                         const Compute &compute);

    /** Cached bytes across all shards. */
    std::size_t sizeBytes() const;

    /** Cached entries across all shards. */
    std::size_t entryCount() const;

    /** Drops every cached entry (in-flight computations finish). */
    void invalidateAll();

    std::size_t shardCount() const { return shards_.size(); }

    /** @name Crash-safe warm restart
     * A snapshot is one versioned, checksummed binary file of
     * every cached entry (docs/SERVER.md).  Saves are atomic
     * (write to "<path>.tmp", fsync, rename) so a crash mid-save
     * leaves the previous snapshot intact; loads are all-or-
     * nothing — a truncated, corrupt, or version-mismatched file
     * is discarded with a reason rather than half-trusted, and
     * reloaded entries restart their TTL (wall-clock expiry does
     * not survive a restart).  Counters: cache.persist.saved /
     * .loaded (entries) and cache.persist.discarded (files).
     *  @{ */

    /**
     * Writes every cached entry to @p path, LRU order preserved.
     * Returns false with *error set on I/O failure.
     */
    bool saveSnapshot(const std::string &path,
                      std::string *error = nullptr) const;

    /**
     * Restores entries from @p path into the (typically empty)
     * cache, under the normal byte budget.  A missing file is a
     * fresh boot: success with nothing loaded.  Returns false with
     * *error naming the defect when the file is discarded.
     */
    bool loadSnapshot(const std::string &path,
                      std::string *error = nullptr);
    /** @} */

  private:
    using Clock = std::chrono::steady_clock;

    /** One request's in-progress computation. */
    struct Flight
    {
        std::mutex mutex;
        std::condition_variable cv;
        bool done = false;
        std::shared_ptr<const CachedResponse> response;
        std::exception_ptr error;
    };

    struct Entry
    {
        std::shared_ptr<const CachedResponse> response;
        std::list<std::string>::iterator lruIt;
        Clock::time_point expiry{};
        std::size_t bytes = 0;
    };

    struct Shard
    {
        mutable std::mutex mutex;
        std::unordered_map<std::string, Entry> entries;
        /** Front = most recently used key. */
        std::list<std::string> lru;
        std::unordered_map<std::string, std::shared_ptr<Flight>>
            flights;
        std::size_t bytes = 0;
    };

    Shard &shardFor(const std::string &key);

    /** Inserts under the shard lock, evicting LRU entries as needed. */
    void insertLocked(Shard &shard, const std::string &key,
                      std::shared_ptr<const CachedResponse> response);

    /** Removes one entry under the shard lock. */
    void eraseLocked(Shard &shard,
                     std::unordered_map<std::string,
                                        Entry>::iterator it);

    std::size_t shardBudget_ = 0;
    std::chrono::nanoseconds ttl_{0};
    std::chrono::nanoseconds stale_{0};
    std::vector<std::unique_ptr<Shard>> shards_;
    MetricsRegistry *metrics_ = nullptr;
};

} // namespace bwwall

#endif // BWWALL_SERVER_RESULT_CACHE_HH
