/**
 * @file
 * Admission control, per-endpoint breakers, and degradation policy.
 *
 * bwwalld's reactor already sheds whole connections past
 * --max-connections and parsed requests past --max-inflight; this
 * controller adds the request-level layer that makes shedding
 * *selective*: endpoints the route table (server/routes.hh) marks
 * Expensive (/v1/sweep, /v1/batch) give way before cheap ones
 * (/v1/traffic), a sliding-window p99 latency threshold sheds
 * before queues grow unbounded, and a per-endpoint circuit breaker
 * (util/breaker.hh — the same component that tracks cluster peer
 * health) stops hammering a handler that keeps failing.  Every shed
 * is a 503 with
 * a Retry-After hint; with degradation enabled, routes the table
 * marks degradable (/v1/sweep) are admitted under pressure at
 * reduced resolution instead of shed (the server marks them
 * X-BWWall-Degraded).
 *
 * Decisions are deterministic functions of the observed history —
 * no randomness — so a test can drive the breaker open and closed
 * with a scripted request sequence.
 */

#ifndef BWWALL_SERVER_OVERLOAD_HH
#define BWWALL_SERVER_OVERLOAD_HH

#include <chrono>
#include <cstddef>
#include <map>
#include <mutex>
#include <string>
#include <vector>

#include "util/breaker.hh"

namespace bwwall {

class MetricsRegistry;

/** Tuning of the request-level overload policy. */
struct OverloadConfig
{
    /** Mirrors ServerConfig::maxInflight (the 100 % pressure mark). */
    unsigned maxInflight = 256;

    /**
     * Shed expensive endpoints once the recent p99 latency exceeds
     * this many seconds (0 disables latency-based admission);
     * everything sheds beyond twice this threshold.
     */
    double shedP99Seconds = 0.0;

    /** Completions in the sliding latency window. */
    std::size_t latencyWindow = 128;

    /**
     * Latency samples older than this many seconds stop counting
     * toward the p99, so a full latency shed (which starves the
     * window of new samples) clears itself instead of sticking
     * forever.
     */
    double latencyHorizonSeconds = 1.0;

    /** Consecutive 5xx responses that open an endpoint's breaker. */
    unsigned breakerThreshold = 5;

    /** Seconds an open breaker sheds before probing again. */
    double breakerCooldownSeconds = 1.0;

    /** The Retry-After hint attached to every shed response. */
    unsigned retryAfterSeconds = 1;

    /** Admit expensive work degraded (not shed) when pressed. */
    bool degradeSweeps = false;

    /**
     * Inflight fraction of maxInflight beyond which admitted sweeps
     * are degraded (with degradeSweeps; 0 degrades every sweep).
     */
    double degradePressure = 0.5;
};

/** What to do with one arriving model query. */
enum class AdmitDecision
{
    Admit,         ///< serve normally
    AdmitDegraded, ///< serve at reduced resolution (sweeps only)
    Shed,          ///< 503 + Retry-After
};

/**
 * The server consults admit() before dispatching each model query
 * and reports every completion through observe(); both are cheap
 * (one small critical section) relative to any model computation.
 */
class OverloadController
{
  public:
    explicit OverloadController(OverloadConfig config,
                                MetricsRegistry *metrics = nullptr);

    /**
     * True for routes in the Expensive cost class of the route
     * table (/v1/sweep, /v1/batch).
     */
    static bool isExpensive(const std::string &path);

    /**
     * True for routes the table marks degradable (/v1/sweep): the
     * ones degradeSweeps may admit at reduced resolution instead of
     * shedding.
     */
    static bool isDegradable(const std::string &path);

    /**
     * Decides one arriving request given the server's current
     * inflight connection count.
     */
    AdmitDecision admit(const std::string &path, unsigned inflight);

    /**
     * Records one completed request: latency feeds the p99 window,
     * and server-side failures (5xx) feed the endpoint's breaker.
     */
    void observe(const std::string &path, double seconds,
                 bool failure);

    /** The Retry-After value for shed responses, in seconds. */
    unsigned retryAfterSeconds() const;

    /** The p99 over the sliding window (0 until it has samples). */
    double recentP99Seconds() const;

    /** True while @p path's breaker sheds (tests/metrics). */
    bool breakerOpen(const std::string &path) const;

  private:
    using Clock = std::chrono::steady_clock;

    struct Sample
    {
        Clock::time_point when{};
        double seconds = 0.0;
    };

    double p99Locked(Clock::time_point now) const;

    /** The endpoint's breaker, created closed on first touch. */
    Breaker &breakerFor(const std::string &path);

    /** Counts a breaker transition into the server.* namespace. */
    void countEvent(BreakerEvent event);

    OverloadConfig config_;
    /** Per-endpoint breaker tuning derived from config_. */
    BreakerConfig breakerConfig_;
    MetricsRegistry *metrics_;
    mutable std::mutex mutex_;
    /** Ring buffer of recent request latencies. */
    std::vector<Sample> latencies_;
    std::size_t latencyNext_ = 0;
    std::size_t latencyCount_ = 0;
    std::map<std::string, Breaker> breakers_;
};

} // namespace bwwall

#endif // BWWALL_SERVER_OVERLOAD_HH
