#include "server/routes.hh"

namespace bwwall {

namespace {

const Route kRoutes[] = {
    {"/healthz", "GET", true, RouteHandler::Health,
     RouteCost::Control, false, "use GET /healthz"},
    {"/metrics", "GET", false, RouteHandler::Metrics,
     RouteCost::Control, false, "use GET /metrics"},
    {"/v1/trace", "GET", false, RouteHandler::Trace,
     RouteCost::Control, false, "use GET /v1/trace"},
    {"/v1/traffic", "POST", false, RouteHandler::ModelQuery,
     RouteCost::Cheap, false, "model queries are POST requests"},
    {"/v1/solve", "POST", false, RouteHandler::ModelQuery,
     RouteCost::Cheap, false, "model queries are POST requests"},
    {"/v1/sweep", "POST", false, RouteHandler::ModelQuery,
     RouteCost::Expensive, true,
     "model queries are POST requests"},
    {"/v1/batch", "POST", false, RouteHandler::ModelQuery,
     RouteCost::Expensive, false,
     "model queries are POST requests"},
};

} // namespace

const Route *
routeTable(std::size_t *count)
{
    *count = sizeof(kRoutes) / sizeof(kRoutes[0]);
    return kRoutes;
}

const Route *
findRoute(const std::string &path)
{
    for (const Route &route : kRoutes) {
        if (path == route.path)
            return &route;
    }
    return nullptr;
}

bool
routeAllowsMethod(const Route &route, const std::string &method)
{
    if (method == route.method)
        return true;
    return route.allowHead && method == "HEAD";
}

} // namespace bwwall
