#include "server/routes.hh"

#include <cstring>

namespace bwwall {

namespace {

const Route kRoutes[] = {
    {"/healthz", "GET", true, RouteHandler::Health,
     RouteCost::Control, false, false, "use GET /healthz"},
    {"/metrics", "GET", false, RouteHandler::Metrics,
     RouteCost::Control, false, false, "use GET /metrics"},
    {"/v1/trace", "GET", false, RouteHandler::Trace,
     RouteCost::Control, false, false, "use GET /v1/trace"},
    {"/v1/cluster", "GET", false, RouteHandler::Cluster,
     RouteCost::Control, false, false, "use GET /v1/cluster"},
    {"/v1/traffic", "POST", false, RouteHandler::ModelQuery,
     RouteCost::Cheap, false, false,
     "model queries are POST requests"},
    {"/v1/solve", "POST", false, RouteHandler::ModelQuery,
     RouteCost::Cheap, false, false,
     "model queries are POST requests"},
    {"/v1/sweep", "POST", false, RouteHandler::ModelQuery,
     RouteCost::Expensive, true, false,
     "model queries are POST requests"},
    {"/v1/batch", "POST", false, RouteHandler::ModelQuery,
     RouteCost::Expensive, false, false,
     "model queries are POST requests"},
    {"/v1/trace/ingest", "POST", false, RouteHandler::IngestCreate,
     RouteCost::Control, false, false,
     "create ingest sessions with POST /v1/trace/ingest"},
    // Appends stream on the shard threads and bypass admission
    // entirely; the Expensive class governs only GET snapshots,
    // which degrade (reduced-resolution curve) under pressure.
    {"/v1/trace/ingest/{id}", "POST GET DELETE", false,
     RouteHandler::IngestSession, RouteCost::Expensive, true, true,
     "use POST (append records), GET (snapshot), or DELETE "
     "(finalize) on an ingest session"},
};

/** Offset of the "{id}" placeholder in @p route, or npos. */
std::size_t
patternBrace(const Route &route)
{
    const char *brace = std::strstr(route.path, "{id}");
    return brace == nullptr
               ? std::string::npos
               : static_cast<std::size_t>(brace - route.path);
}

/** True when @p path matches @p route (exact or "{id}" pattern). */
bool
routeMatches(const Route &route, const std::string &path)
{
    const std::size_t brace = patternBrace(route);
    if (brace == std::string::npos)
        return path == route.path;
    // Pattern: literal prefix + one non-empty final segment.
    if (path.size() <= brace ||
        path.compare(0, brace, route.path, 0, brace) != 0)
        return false;
    return path.find('/', brace) == std::string::npos;
}

} // namespace

const Route *
routeTable(std::size_t *count)
{
    *count = sizeof(kRoutes) / sizeof(kRoutes[0]);
    return kRoutes;
}

const Route *
findRoute(const std::string &path)
{
    for (const Route &route : kRoutes) {
        if (routeMatches(route, path))
            return &route;
    }
    return nullptr;
}

bool
routeAllowsMethod(const Route &route, const std::string &method)
{
    if (route.allowHead && method == "HEAD")
        return true;
    // The method field is a space-separated token list.
    const char *cursor = route.method;
    while (*cursor != '\0') {
        const char *end = cursor;
        while (*end != '\0' && *end != ' ')
            ++end;
        if (method.compare(0, std::string::npos, cursor,
                           static_cast<std::size_t>(end - cursor)) ==
            0)
            return true;
        cursor = *end == ' ' ? end + 1 : end;
    }
    return false;
}

std::string
routePathParam(const Route &route, const std::string &path)
{
    const std::size_t brace = patternBrace(route);
    if (brace == std::string::npos || !routeMatches(route, path))
        return std::string();
    return path.substr(brace);
}

} // namespace bwwall
