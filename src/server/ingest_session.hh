/**
 * @file
 * Streaming trace-ingestion sessions: live miss curves as a service.
 *
 * A client creates a session (POST /v1/trace/ingest with the
 * estimator configuration), streams access records into it in as
 * many appends as it likes (POST /v1/trace/ingest/{id}, binary BWTR
 * or text format, chunked or Content-Length framed), reads the live
 * curve and fitted alpha at any point (GET), and finalizes when done
 * (DELETE).  Appends run entirely on the reactor's shard threads
 * through the HttpStreamSink interface — they never occupy a compute
 * thread and never count toward --max-inflight, so ingestion is
 * shed-resistant by construction while snapshots stay subject to
 * normal overload admission.
 *
 * Resource bounds, all enforced here:
 *  - session count: creates beyond --max-sessions answer 503;
 *  - per-session bytes: appends that would exceed
 *    --max-session-bytes answer 413 and fail the session (the body
 *    framing is unrecoverable mid-stream);
 *  - idle lifetime: sessions untouched for --ingest-ttl-seconds are
 *    swept (lazily, on the next manager operation).
 *
 * Session state machine: Open -> (append | snapshot)* -> Finalized
 * (DELETE; snapshots still served) -> swept by TTL.  A decode error,
 * budget overflow, injected fault, or client abort mid-append moves
 * the session to Failed: appends then answer 409, snapshots still
 * report the last consistent curve.  Unknown ids answer 404.
 *
 * Chaos points: ingest.append (fails an append chunk with 500) and
 * ingest.snapshot (fails a snapshot with 500).
 */

#ifndef BWWALL_SERVER_INGEST_SESSION_HH
#define BWWALL_SERVER_INGEST_SESSION_HH

#include <chrono>
#include <cstddef>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>

#include "server/http.hh"
#include "server/json.hh"
#include "server/reactor.hh"
#include "trace/streaming_estimator.hh"
#include "trace/trace_io.hh"

namespace bwwall {

class MetricsRegistry;

/** The ingestion slice of ServerConfig. */
struct IngestConfig
{
    /** Concurrent (live) sessions before create answers 503. */
    std::size_t maxSessions = 64;

    /** Per-session appended-byte budget before 413 (0 = unlimited). */
    std::size_t maxSessionBytes = 64u << 20;

    /** Idle seconds before a session is swept (0 = never). */
    double ttlSeconds = 300.0;

    /** The Retry-After hint on session-count 503s, seconds. */
    unsigned retryAfterSeconds = 1;
};

/**
 * Owns every live ingest session.  Thread-safe: creates, appends
 * (shard threads), snapshots and finalizes (compute threads) may all
 * run concurrently; the manager lock covers only map operations and
 * each session carries its own lock.
 */
class IngestSessionManager
{
  public:
    IngestSessionManager(IngestConfig config,
                         MetricsRegistry *metrics);

    ~IngestSessionManager();

    IngestSessionManager(const IngestSessionManager &) = delete;
    IngestSessionManager &
    operator=(const IngestSessionManager &) = delete;

    /**
     * POST /v1/trace/ingest: parses the estimator configuration out
     * of @p request (strict: unknown keys are 400) and opens a
     * session.  503 when maxSessions are live.
     */
    HttpResponse create(const JsonValue &request);

    /**
     * Opens the streaming sink for one append (the reactor's
     * StreamOpenFn).  Returns nullptr and fills *refusal on 404
     * (unknown id), 409 (finalized / failed / concurrent append).
     * Runs on a shard thread; only takes the map and session locks.
     */
    std::unique_ptr<HttpStreamSink>
    openAppend(const std::string &id, HttpResponse *refusal);

    /**
     * GET /v1/trace/ingest/{id}: the live curve, fit, and advisor
     * verdict.  @p degraded serves a reduced-resolution curve
     * (every other grid point, no advisor solve) under overload.
     */
    HttpResponse snapshot(const std::string &id, bool degraded);

    /**
     * DELETE /v1/trace/ingest/{id}: flushes the decoder, marks the
     * session Finalized, and returns the final snapshot.  The
     * session stays readable until the TTL sweeps it; 409 on a
     * second DELETE.
     */
    HttpResponse finalize(const std::string &id);

    /** Live sessions right now (post-sweep; tests and metrics). */
    std::size_t activeSessions();

  private:
    struct Session;
    class AppendSink;

    using Clock = std::chrono::steady_clock;

    /** Drops sessions idle past the TTL; callers hold no locks. */
    void sweepExpired();

    std::shared_ptr<Session> find(const std::string &id);

    void publishActiveGauge(std::size_t count);

    IngestConfig config_;
    MetricsRegistry *metrics_;

    std::mutex mutex_;
    std::map<std::string, std::shared_ptr<Session>> sessions_;
    std::uint64_t nextId_ = 1;
};

} // namespace bwwall

#endif // BWWALL_SERVER_INGEST_SESSION_HH
