/**
 * @file
 * The epoll reactor under bwwalld: C10k I/O for the model service.
 *
 * The blocking thread-per-connection layer capped bwwalld at one
 * keep-alive connection per worker thread — an idle client pinned a
 * whole worker.  The reactor decouples connections from threads:
 *
 *  - One accept thread blocks in poll()/accept() and deals accepted
 *    sockets round-robin to a small fixed pool of event-loop
 *    *shards* (one epoll instance + thread each, sized to cores).
 *  - Each shard owns its connections outright: non-blocking reads
 *    feed an incremental HttpParser, complete requests are handed to
 *    a compute pool over a lock-free MPMC queue (an eventfd
 *    semaphore carries the wakeups, one token per item), and
 *    finished responses come back through a per-shard completion
 *    queue drained on an eventfd wake.
 *  - Write-back is a per-connection output buffer flushed as far as
 *    the socket allows; EPOLLOUT is armed only while bytes remain,
 *    so a slow reader costs a buffer, not a thread.
 *
 * One request is in flight per connection at a time (EPOLLIN is
 * disarmed while its request computes), which preserves the blocking
 * server's serial per-connection semantics — and therefore its
 * byte-exact response ordering — while tens of thousands of idle
 * keep-alive connections cost only their sockets.
 *
 * Admission is two-layered: a connection cap (maxConnections) sheds
 * at accept, and a request cap (maxInflight, counting parsed
 * requests queued or computing) sheds at parse time; both answer
 * 503 + Retry-After.  The request-level overload policy (breakers,
 * selective shedding, degraded sweeps) stays in the handler, which
 * runs on the compute pool.
 *
 * Chaos parity: the PR 5 fault points fire in the same places as on
 * the blocking server — server.accept after the connection counter,
 * http.read per read-readiness, http.write once per response flush,
 * http.write.short capping each send() at one byte.
 */

#ifndef BWWALL_SERVER_REACTOR_HH
#define BWWALL_SERVER_REACTOR_HH

#include <atomic>
#include <chrono>
#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <thread>
#include <unordered_map>
#include <vector>

#include "server/http.hh"
#include "util/mpmc_queue.hh"

namespace bwwall {

class MetricsRegistry;

/** The I/O-layer slice of ServerConfig. */
struct ReactorConfig
{
    std::string bindAddress = "127.0.0.1";
    std::uint16_t port = 0;

    /** Event-loop shards; resolved by the caller (>= 1). */
    unsigned ioShards = 1;

    /** Compute-pool threads; resolved by the caller (>= 1). */
    unsigned computeThreads = 1;

    /** Open-connection cap before accept-time 503 (0 = unlimited). */
    unsigned maxConnections = 16384;

    /**
     * Parsed requests queued or computing before parse-time 503
     * (0 = unlimited).
     */
    unsigned maxInflight = 256;

    /** Connections idle this long answer 408 and close (0 = never). */
    unsigned idleTimeoutMs = 5000;

    std::size_t maxBodyBytes = 1u << 20;

    /** The Retry-After hint on shed responses, seconds. */
    unsigned retryAfterSeconds = 1;
};

/**
 * Receives one streamed request body, chunk by chunk, on the shard
 * thread that owns the connection — a streaming upload therefore
 * never occupies a compute thread between chunks and never counts
 * toward maxInflight.  Contract: if the sink is destroyed before
 * onComplete() was called, the stream was aborted (peer vanished,
 * fault, drain); implementations treat destruction-without-complete
 * as the abort notification.
 */
class HttpStreamSink
{
  public:
    virtual ~HttpStreamSink() = default;

    /**
     * Consumes one decoded body chunk.  Returning false fails the
     * stream: *error is sent and the connection closes (the body
     * framing is out of sync once a chunk is refused).
     */
    virtual bool onData(const char *data, std::size_t count,
                        HttpResponse *error) = 0;

    /** The body completed; produce the response. */
    virtual HttpResponse onComplete() = 0;
};

/**
 * The event-loop core.  The owner supplies the request handler
 * (invoked on a compute thread; must not throw) and an optional
 * trace predicate deciding which requests record spans.
 */
class HttpReactor
{
  public:
    using Clock = std::chrono::steady_clock;

    /**
     * Serves one request.  `received` is when the request finished
     * parsing; `inflight` is the request-level inflight count for
     * overload pressure.
     */
    using Handler = std::function<HttpResponse(
        const HttpRequest &request, Clock::time_point received,
        unsigned inflight)>;

    using TracePredicate =
        std::function<bool(const HttpRequest &request)>;

    /**
     * Decides from the head whether a request body streams (see
     * HttpParser::StreamPredicate; the server derives this from the
     * route table's streaming flag).
     */
    using StreamPredicate = HttpParser::StreamPredicate;

    /**
     * Opens a sink for a streaming request, or returns nullptr and
     * fills *refusal (e.g. 404 unknown session, 413 budget).  Runs
     * on the shard thread; must be fast and must not block.
     */
    using StreamOpenFn = std::function<std::unique_ptr<HttpStreamSink>(
        const HttpRequest &request, HttpResponse *refusal)>;

    HttpReactor(ReactorConfig config, MetricsRegistry *metrics,
                Handler handler,
                TracePredicate traced = nullptr,
                StreamPredicate streamed = nullptr,
                StreamOpenFn streamOpen = nullptr);

    /** Drains and joins if still running. */
    ~HttpReactor();

    HttpReactor(const HttpReactor &) = delete;
    HttpReactor &operator=(const HttpReactor &) = delete;

    /**
     * Binds, listens, and spawns the accept thread, the shards, and
     * the compute pool.  Fatal on unusable bind configuration.
     */
    void start();

    /** The bound port (resolves port 0 after start()). */
    std::uint16_t port() const { return boundPort_; }

    /**
     * Begins a graceful drain: stop accepting, close idle
     * connections immediately, finish queued and computing
     * requests.  Safe to call from any thread, more than once.
     */
    void requestStop();

    /** Blocks until the drain completes and every thread is joined. */
    void join();

    bool
    stopping() const
    {
        return stopping_.load(std::memory_order_acquire);
    }

    /** Parsed requests currently queued or computing. */
    unsigned
    inflight() const
    {
        return inflight_.load(std::memory_order_relaxed);
    }

  private:
    struct Conn;
    struct Shard;

    /** One parsed request on its way to the compute pool. */
    struct WorkItem
    {
        unsigned shard = 0;
        std::uint64_t connId = 0;
        HttpRequest request;
        Clock::time_point received{};
    };

    /** One serialized response on its way back to a shard. */
    struct Completion
    {
        std::uint64_t connId = 0;
        std::string wire;
        bool close = false;
    };

    void acceptLoop();
    void shardLoop(unsigned index);
    void computeLoop();

    void adoptConnections(Shard &shard);
    void handleReadable(Shard &shard, Conn *conn);

    /** Parses buffered bytes into requests until blocked. */
    void pumpRequests(Shard &shard, Conn *conn, bool eof);

    /** Feeds buffered streaming-body bytes into the open sink. */
    void pumpStreamBody(Shard &shard, Conn *conn, bool eof);

    void processCompletions(Shard &shard);
    void sweepIdle(Shard &shard);

    /**
     * Serializes + enqueues a response (evaluating the http.write
     * fault) and flushes; false when the connection was closed.
     */
    bool respond(Shard &shard, Conn *conn, std::string wire,
                 bool close_after);

    /** Flushes pending output; false when the connection was closed. */
    bool flushOutput(Shard &shard, Conn *conn);

    void shedRequest(Shard &shard, Conn *conn);
    void updateInterest(Shard &shard, Conn *conn);
    void closeConn(Shard &shard, Conn *conn);

    ReactorConfig config_;
    MetricsRegistry *metrics_;
    Handler handler_;
    TracePredicate traced_;
    StreamPredicate streamed_;
    StreamOpenFn streamOpen_;

    int listenFd_ = -1;
    /** Self-pipe waking the accept poll() on requestStop(). */
    int wakePipe_[2] = {-1, -1};
    std::uint16_t boundPort_ = 0;

    std::vector<std::unique_ptr<Shard>> shards_;
    std::vector<std::thread> computeThreads_;
    std::thread acceptThread_;

    std::unique_ptr<MpmcQueue<WorkItem>> computeQueue_;
    /** EFD_SEMAPHORE eventfd: one token per queued item (or stop). */
    int computeSem_ = -1;

    std::atomic<bool> started_{false};
    std::atomic<bool> stopping_{false};
    std::atomic<bool> joined_{false};
    std::atomic<unsigned> connCount_{0};
    std::atomic<unsigned> inflight_{0};
    std::atomic<std::uint64_t> nextConnId_{1};
    std::atomic<unsigned> nextShard_{0};
};

/**
 * Raises RLIMIT_NOFILE's soft limit to its hard limit (tens of
 * thousands of sockets need more than the usual 1024 default) and
 * returns the resulting soft limit.  Used by the reactor at start()
 * and by load generators opening large connection fleets.
 */
unsigned raiseOpenFileLimit();

} // namespace bwwall

#endif // BWWALL_SERVER_REACTOR_HH
