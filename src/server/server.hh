/**
 * @file
 * bwwalld: the concurrent model-query server.
 *
 * Architecture: an HttpReactor (server/reactor.hh) owns all I/O —
 * an accept thread deals non-blocking keep-alive sockets to a small
 * pool of epoll event-loop shards, parsed requests cross a
 * lock-free queue to a compute pool, and responses come back
 * through per-shard completion queues — so one daemon holds tens of
 * thousands of concurrent connections instead of one per worker
 * thread.  This layer owns the policy on top: the route table
 * (server/routes.hh) mapping method + path to a handler and a cost
 * class, the model-service handlers, the result cache, and the
 * overload controller.
 *
 * Robustness is first-class:
 *  - admission control: beyond --max-connections open sockets or
 *    --max-inflight parsed requests in flight, new arrivals get an
 *    immediate 503 (with a Retry-After hint) and close;
 *  - selective shedding: an OverloadController sheds expensive
 *    endpoints (/v1/sweep, /v1/batch) first under inflight or
 *    p99-latency pressure, with per-endpoint circuit breakers, and
 *    can serve sweeps at reduced resolution (X-BWWall-Degraded)
 *    instead;
 *  - stale-while-revalidate: expired cache entries are served
 *    (X-BWWall-Stale) while one request recomputes them;
 *  - error taxonomy: handler failures map through bwwall::Error
 *    categories to structured JSON bodies and precise statuses;
 *  - per-request deadline: requests that overrun --deadline-ms
 *    answer 504 (the computed result still lands in the cache, so
 *    a retry is a hit);
 *  - bounded request bodies (413) and header blocks;
 *  - malformed JSON and bad model parameters become structured
 *    400s, never daemon exits;
 *  - graceful drain: requestStop() stops accepting, closes idle
 *    connections, lets queued and in-flight requests finish, then
 *    joins every thread.
 *
 * All answers flow through the sharded single-flight ResultCache,
 * and everything observable lands in a MetricsRegistry served by
 * GET /metrics.
 */

#ifndef BWWALL_SERVER_SERVER_HH
#define BWWALL_SERVER_SERVER_HH

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <thread>

#include "server/cluster.hh"
#include "server/http.hh"
#include "server/ingest_session.hh"
#include "server/overload.hh"
#include "server/reactor.hh"
#include "server/result_cache.hh"
#include "util/metrics.hh"
#include "util/trace_span.hh"

namespace bwwall {

struct Route;

/** Everything tunable about one bwwalld instance. */
struct ServerConfig
{
    /** Listen address; loopback by default. */
    std::string bindAddress = "127.0.0.1";

    /** TCP port; 0 asks the kernel for an ephemeral port. */
    std::uint16_t port = 0;

    /** Compute-pool threads (0 = BWWALL_JOBS / hardware). */
    unsigned threads = 0;

    /** Event-loop shards (0 = hardware, capped at 8). */
    unsigned ioShards = 0;

    /** Open-connection cap before accept-time 503 (0 = unlimited). */
    unsigned maxConnections = 16384;

    /** Result-cache byte budget. */
    std::size_t cacheBytes = 64u << 20;

    /** Result-cache shards. */
    std::size_t cacheShards = 16;

    /** Result-cache TTL in seconds (0 = entries never expire). */
    double cacheTtlSeconds = 0.0;

    /**
     * Stale-while-revalidate grace after TTL expiry, seconds: an
     * expired entry may still be served (marked X-BWWall-Stale)
     * while one request recomputes it.  0 disables stale serving.
     */
    double cacheStaleSeconds = 0.0;

    /**
     * Warm-restart snapshot of the result cache (empty = off).
     * Loaded on construction (a truncated, corrupt, or
     * version-mismatched file is discarded with a logged reason),
     * saved on graceful drain and every cachePersistIntervalS.
     */
    std::string cachePersistPath;

    /** Seconds between periodic snapshots (0 = drain-time only). */
    double cachePersistIntervalS = 0.0;

    /** Per-request deadline in milliseconds (0 = none). */
    unsigned deadlineMs = 10000;

    /** Connections idle this long answer 408 and close (0 = never). */
    unsigned idleTimeoutMs = 5000;

    /** Admission limit: parsed requests queued + computing before 503. */
    unsigned maxInflight = 256;

    /**
     * Shed expensive endpoints once the recent p99 latency exceeds
     * this many milliseconds (0 disables latency-based shedding);
     * everything sheds beyond twice the threshold.
     */
    double shedP99Ms = 0.0;

    /** Serve pressed sweeps at reduced resolution instead of 503. */
    bool degradeSweeps = false;

    /**
     * Inflight fraction of maxInflight beyond which admitted sweeps
     * are degraded (with degradeSweeps; 0 degrades every sweep).
     */
    double degradePressure = 0.5;

    /** Consecutive 5xx that open an endpoint's circuit breaker. */
    unsigned breakerThreshold = 5;

    /** Seconds an open breaker sheds before probing again. */
    double breakerCooldownSeconds = 1.0;

    /** The Retry-After hint on shed responses, seconds. */
    unsigned retryAfterSeconds = 1;

    /** Largest accepted request body. */
    std::size_t maxBodyBytes = 1u << 20;

    /** Concurrent ingest sessions before create answers 503. */
    std::size_t maxIngestSessions = 64;

    /**
     * Per-ingest-session appended-byte budget; streamed append
     * bodies are exempt from maxBodyBytes and capped by this
     * instead (413; 0 = unlimited).
     */
    std::size_t maxSessionBytes = 64u << 20;

    /** Seconds an idle ingest session lives before being swept. */
    double ingestTtlSeconds = 300.0;

    /** inform() one line per served request. */
    bool logRequests = false;

    /**
     * Own a TraceRecorder and serve GET /v1/trace.  Requests carrying
     * an X-BWWall-Trace header record their lifecycle spans (parse →
     * cache → compute → serialize); everything else stays untraced.
     */
    bool trace = false;

    /** With trace: record every request, opt-in header or not. */
    bool traceAll = false;

    /**
     * Cluster membership (docs/CLUSTER.md): peers + self + the
     * peer-fill budget.  An empty peer list is single-node mode;
     * configureCluster() can also (re)install membership after
     * start, for harnesses whose ports are only known then.
     */
    ClusterConfig cluster;
};

/** The daemon: listen, serve, drain. */
class BwwallServer
{
  public:
    explicit BwwallServer(ServerConfig config);

    /** Drains and joins if still running. */
    ~BwwallServer();

    BwwallServer(const BwwallServer &) = delete;
    BwwallServer &operator=(const BwwallServer &) = delete;

    /**
     * Binds, listens, and spawns the reactor (accept thread, epoll
     * shards, compute pool).  Fatal on unusable bind configuration
     * (that is a user error, not a runtime condition).
     */
    void start();

    /** The bound port (resolves port 0 after start()). */
    std::uint16_t
    port() const
    {
        return reactor_ == nullptr ? 0 : reactor_->port();
    }

    /**
     * Begins a graceful drain: stop accepting, close idle
     * connections, finish queued and in-flight requests.  Safe to
     * call from any thread, more than once.  (Not async-signal-safe:
     * call it from a normal thread after observing a signal flag,
     * not from the handler itself.)
     */
    void requestStop();

    /** Blocks until the drain completes and every thread is joined. */
    void join();

    /** requestStop() + join(). */
    void stop();

    MetricsRegistry &metrics() { return metrics_; }
    ResultCache &cache() { return *cache_; }
    OverloadController &overload() { return *overload_; }
    IngestSessionManager &ingest() { return *ingest_; }

    /**
     * Installs (or replaces) cluster membership.  Thread-safe:
     * in-flight requests finish on the snapshot they started with.
     * Throws BadRequest on an unusable configuration.
     */
    void configureCluster(ClusterConfig config);

    /** The live membership snapshot; null in single-node mode. */
    std::shared_ptr<Cluster> clusterSnapshot() const
    {
        std::lock_guard<std::mutex> lock(clusterMutex_);
        return cluster_;
    }

    /** The owned recorder; null unless config.trace. */
    TraceRecorder *traceRecorder() { return recorder_.get(); }

    /** Served requests so far (for tests and the load generator). */
    std::uint64_t requestCount() const
    {
        return requestCount_.load(std::memory_order_relaxed);
    }

  private:
    using Clock = std::chrono::steady_clock;

    /** Routes one request via the route table; never throws. */
    HttpResponse dispatch(const HttpRequest &request,
                          Clock::time_point received,
                          unsigned inflight);

    /** POST /v1/trace/ingest: parse the body, open a session. */
    HttpResponse handleIngestCreate(const HttpRequest &request);

    /** GET/DELETE on /v1/trace/ingest/{id}. */
    HttpResponse handleIngestSession(const HttpRequest &request,
                                     const Route &route,
                                     unsigned inflight);

    /** @param degraded Serve this sweep at reduced resolution. */
    HttpResponse handleModelQuery(const HttpRequest &request,
                                  Clock::time_point received,
                                  bool degraded);

    HttpResponse handleMetrics(const HttpRequest &request) const;

    HttpResponse handleTrace() const;

    /** GET /v1/cluster: membership + per-node peer-fill stats. */
    HttpResponse handleCluster() const;

    /** True when this request opted into (or is forced into) tracing. */
    bool requestTraced(const HttpRequest &request) const;

    /** One cache snapshot to the configured path (logs failures). */
    void persistCache();

    /** The periodic snapshot thread body. */
    void persistLoop();

    ServerConfig config_;
    MetricsRegistry metrics_;
    std::unique_ptr<ResultCache> cache_;
    std::unique_ptr<OverloadController> overload_;
    std::unique_ptr<IngestSessionManager> ingest_;
    std::unique_ptr<TraceRecorder> recorder_;
    std::unique_ptr<HttpReactor> reactor_;

    mutable std::mutex clusterMutex_;
    std::shared_ptr<Cluster> cluster_;

    std::thread persistThread_;
    std::mutex persistMutex_;
    std::condition_variable persistCv_;
    bool persistStop_ = false;

    std::atomic<bool> started_{false};
    std::atomic<bool> drained_{false};
    std::atomic<std::uint64_t> requestCount_{0};
};

} // namespace bwwall

#endif // BWWALL_SERVER_SERVER_HH
