#include "server/reactor.hh"

#include <arpa/inet.h>
#include <fcntl.h>
#include <netinet/in.h>
#include <poll.h>
#include <sys/epoll.h>
#include <sys/eventfd.h>
#include <sys/resource.h>
#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <cstring>

#include "util/fault.hh"
#include "util/logging.hh"
#include "util/metrics.hh"
#include "util/trace_span.hh"

namespace bwwall {

namespace {

constexpr std::size_t kReadChunk = 8192;

/** Sweep cadence for idle-connection timeouts. */
constexpr auto kSweepPeriod = std::chrono::milliseconds(250);

void
setNonBlocking(int fd)
{
    const int flags = ::fcntl(fd, F_GETFL, 0);
    if (flags >= 0)
        ::fcntl(fd, F_SETFL, flags | O_NONBLOCK);
}

void
wakeEventFd(int fd, std::uint64_t count = 1)
{
    [[maybe_unused]] ssize_t ignored =
        ::write(fd, &count, sizeof(count));
}

} // namespace

unsigned
raiseOpenFileLimit()
{
    rlimit limit{};
    if (::getrlimit(RLIMIT_NOFILE, &limit) != 0)
        return 1024;
    if (limit.rlim_cur < limit.rlim_max) {
        rlimit raised = limit;
        raised.rlim_cur = limit.rlim_max;
        if (::setrlimit(RLIMIT_NOFILE, &raised) == 0)
            limit = raised;
    }
    const rlim_t cap = 1u << 20;
    return static_cast<unsigned>(std::min(limit.rlim_cur, cap));
}

/** One connection, owned by exactly one shard thread. */
struct HttpReactor::Conn
{
    int fd;
    std::uint64_t id;
    HttpParser parser;

    /** Response bytes not yet accepted by the socket. */
    std::string out;
    std::size_t outOffset = 0;

    /** A request from this connection is queued or computing. */
    bool computing = false;

    /**
     * Open sink of an in-progress streaming upload.  Destroying the
     * Conn (closeConn, drain) destroys the sink, which by contract
     * is the abort notification.
     */
    std::unique_ptr<HttpStreamSink> sink;

    /** keepAlive of the streaming request being drained. */
    bool streamKeepAlive = true;

    bool closeAfterWrite = false;

    /** EPOLLOUT is armed (pending output met EAGAIN). */
    bool wantWrite = false;

    Clock::time_point lastActivity;

    Conn(int fd_in, std::uint64_t id_in, HttpLimits limits,
         Clock::time_point now)
        : fd(fd_in), id(id_in), parser(limits), lastActivity(now)
    {}
};

/** One event loop: an epoll set plus everything only it touches. */
struct HttpReactor::Shard
{
    unsigned index = 0;
    int epollFd = -1;

    /** eventfd waking the loop for inbox/completions (data.u64 0). */
    int wakeFd = -1;

    /** Accepted fds from the accept thread. */
    MpmcQueue<int> inbox{1024};

    /** Serialized responses from the compute pool. */
    MpmcQueue<Completion> completions;

    std::unordered_map<std::uint64_t, std::unique_ptr<Conn>> conns;

    /** Requests from this shard queued or computing (shard-only). */
    unsigned outstanding = 0;

    std::thread thread;

    explicit Shard(std::size_t completion_capacity)
        : completions(completion_capacity)
    {}
};

HttpReactor::HttpReactor(ReactorConfig config,
                         MetricsRegistry *metrics, Handler handler,
                         TracePredicate traced,
                         StreamPredicate streamed,
                         StreamOpenFn streamOpen)
    : config_(std::move(config)), metrics_(metrics),
      handler_(std::move(handler)), traced_(std::move(traced)),
      streamed_(std::move(streamed)),
      streamOpen_(std::move(streamOpen))
{}

HttpReactor::~HttpReactor()
{
    requestStop();
    join();
}

void
HttpReactor::start()
{
    if (started_.exchange(true))
        panic("HttpReactor::start called twice");
    raiseOpenFileLimit();

    listenFd_ = ::socket(AF_INET, SOCK_STREAM, 0);
    if (listenFd_ < 0)
        fatal("socket(): ", std::strerror(errno));
    const int enable = 1;
    ::setsockopt(listenFd_, SOL_SOCKET, SO_REUSEADDR, &enable,
                 sizeof(enable));

    sockaddr_in address{};
    address.sin_family = AF_INET;
    address.sin_port = htons(config_.port);
    if (::inet_pton(AF_INET, config_.bindAddress.c_str(),
                    &address.sin_addr) != 1)
        fatal("bad bind address '", config_.bindAddress, "'");
    if (::bind(listenFd_,
               reinterpret_cast<const sockaddr *>(&address),
               sizeof(address)) != 0)
        fatal("bind(", config_.bindAddress, ":", config_.port,
              "): ", std::strerror(errno));
    if (::listen(listenFd_, SOMAXCONN) != 0)
        fatal("listen(): ", std::strerror(errno));

    sockaddr_in bound{};
    socklen_t bound_len = sizeof(bound);
    if (::getsockname(listenFd_,
                      reinterpret_cast<sockaddr *>(&bound),
                      &bound_len) != 0)
        fatal("getsockname(): ", std::strerror(errno));
    boundPort_ = ntohs(bound.sin_port);

    if (::pipe(wakePipe_) != 0)
        fatal("pipe(): ", std::strerror(errno));

    computeSem_ = ::eventfd(0, EFD_SEMAPHORE | EFD_CLOEXEC);
    if (computeSem_ < 0)
        fatal("eventfd(): ", std::strerror(errno));
    const std::size_t queue_capacity = std::max<std::size_t>(
        1024, config_.maxInflight);
    computeQueue_ =
        std::make_unique<MpmcQueue<WorkItem>>(queue_capacity);

    shards_.reserve(config_.ioShards);
    for (unsigned i = 0; i < config_.ioShards; ++i) {
        auto shard = std::make_unique<Shard>(queue_capacity);
        shard->index = i;
        shard->epollFd = ::epoll_create1(EPOLL_CLOEXEC);
        if (shard->epollFd < 0)
            fatal("epoll_create1(): ", std::strerror(errno));
        shard->wakeFd =
            ::eventfd(0, EFD_NONBLOCK | EFD_CLOEXEC);
        if (shard->wakeFd < 0)
            fatal("eventfd(): ", std::strerror(errno));
        epoll_event wake{};
        wake.events = EPOLLIN;
        wake.data.u64 = 0; // the wake sentinel
        ::epoll_ctl(shard->epollFd, EPOLL_CTL_ADD, shard->wakeFd,
                    &wake);
        shards_.push_back(std::move(shard));
    }
    for (unsigned i = 0; i < config_.ioShards; ++i) {
        shards_[i]->thread =
            std::thread([this, i] { shardLoop(i); });
    }
    computeThreads_.reserve(config_.computeThreads);
    for (unsigned i = 0; i < config_.computeThreads; ++i)
        computeThreads_.emplace_back([this] { computeLoop(); });
    acceptThread_ = std::thread([this] { acceptLoop(); });
}

void
HttpReactor::acceptLoop()
{
    while (!stopping()) {
        pollfd fds[2];
        fds[0] = {listenFd_, POLLIN, 0};
        fds[1] = {wakePipe_[0], POLLIN, 0};
        const int ready = ::poll(fds, 2, -1);
        if (ready < 0) {
            if (errno == EINTR)
                continue;
            warn("accept poll(): ", std::strerror(errno));
            break;
        }
        if ((fds[1].revents & POLLIN) != 0)
            break; // woken by requestStop()
        if ((fds[0].revents & POLLIN) == 0)
            continue;
        const int fd = ::accept(listenFd_, nullptr, nullptr);
        if (fd < 0) {
            if (errno == EINTR || errno == ECONNABORTED)
                continue;
            if (stopping())
                break;
            warn("accept(): ", std::strerror(errno));
            continue;
        }
        metrics_->addCounter("server.connections");
        // The chaos harness's client that vanishes between accept
        // and service (connection reset at the doorstep).
        if (FAULT_POINT("server.accept")) {
            ::close(fd);
            continue;
        }

        // Connection-level admission: past the cap, answer 503 on
        // the still-blocking fd and close.
        if (config_.maxConnections != 0 &&
            connCount_.load(std::memory_order_relaxed) >=
                config_.maxConnections) {
            metrics_->addCounter("server.shed");
            HttpResponse response = httpErrorResponse(
                503, "server at capacity; retry later");
            response.headers["Retry-After"] =
                std::to_string(config_.retryAfterSeconds);
            response.close = true;
            const std::string wire =
                serializeHttpResponse(response);
            [[maybe_unused]] ssize_t ignored = ::send(
                fd, wire.data(), wire.size(), MSG_NOSIGNAL);
            ::close(fd);
            continue;
        }

        setNonBlocking(fd);
        connCount_.fetch_add(1, std::memory_order_relaxed);
        Shard &shard =
            *shards_[nextShard_.fetch_add(
                         1, std::memory_order_relaxed) %
                     shards_.size()];
        int pending = fd;
        while (!shard.inbox.tryPush(std::move(pending))) {
            wakeEventFd(shard.wakeFd);
            std::this_thread::yield();
            pending = fd;
        }
        wakeEventFd(shard.wakeFd);
    }
}

void
HttpReactor::adoptConnections(Shard &shard)
{
    int fd = -1;
    while (shard.inbox.tryPop(&fd)) {
        if (stopping()) {
            ::close(fd);
            connCount_.fetch_sub(1, std::memory_order_relaxed);
            continue;
        }
        const std::uint64_t id =
            nextConnId_.fetch_add(1, std::memory_order_relaxed);
        auto conn = std::make_unique<Conn>(
            fd, id, HttpLimits{16u << 10, config_.maxBodyBytes},
            Clock::now());
        if (streamed_ != nullptr)
            conn->parser.setStreamPredicate(streamed_);
        epoll_event event{};
        event.events = EPOLLIN;
        event.data.u64 = id;
        if (::epoll_ctl(shard.epollFd, EPOLL_CTL_ADD, fd,
                        &event) != 0) {
            warn("epoll_ctl(add): ", std::strerror(errno));
            ::close(fd);
            connCount_.fetch_sub(1, std::memory_order_relaxed);
            continue;
        }
        shard.conns.emplace(id, std::move(conn));
    }
}

void
HttpReactor::updateInterest(Shard &shard, Conn *conn)
{
    epoll_event event{};
    event.events = (conn->computing ? 0u : unsigned(EPOLLIN)) |
                   (conn->wantWrite ? unsigned(EPOLLOUT) : 0u);
    event.data.u64 = conn->id;
    ::epoll_ctl(shard.epollFd, EPOLL_CTL_MOD, conn->fd, &event);
}

void
HttpReactor::closeConn(Shard &shard, Conn *conn)
{
    ::epoll_ctl(shard.epollFd, EPOLL_CTL_DEL, conn->fd, nullptr);
    ::close(conn->fd);
    shard.conns.erase(conn->id);
    connCount_.fetch_sub(1, std::memory_order_relaxed);
}

bool
HttpReactor::flushOutput(Shard &shard, Conn *conn)
{
    while (conn->outOffset < conn->out.size()) {
        const std::size_t remaining =
            conn->out.size() - conn->outOffset;
        // A firing "http.write.short" caps this send at one byte,
        // forcing the loop through its partial-write continuation —
        // exactly what a full socket buffer does.
        const std::size_t chunk =
            FAULT_POINT("http.write.short") ? 1 : remaining;
        const ssize_t wrote =
            ::send(conn->fd, conn->out.data() + conn->outOffset,
                   chunk, MSG_NOSIGNAL);
        if (wrote < 0) {
            if (errno == EINTR)
                continue;
            if (errno == EAGAIN || errno == EWOULDBLOCK) {
                if (!conn->wantWrite) {
                    conn->wantWrite = true;
                    updateInterest(shard, conn);
                }
                return true; // EPOLLOUT resumes the flush
            }
            closeConn(shard, conn);
            return false;
        }
        conn->outOffset += static_cast<std::size_t>(wrote);
    }
    conn->out.clear();
    conn->outOffset = 0;
    if (conn->wantWrite) {
        conn->wantWrite = false;
        updateInterest(shard, conn);
    }
    if (conn->closeAfterWrite) {
        closeConn(shard, conn);
        return false;
    }
    return true;
}

bool
HttpReactor::respond(Shard &shard, Conn *conn, std::string wire,
                     bool close_after)
{
    // The chaos harness's peer reset mid-response: the whole
    // response is dropped, exactly as on the blocking server.
    if (FAULT_POINT("http.write")) {
        closeConn(shard, conn);
        return false;
    }
    if (conn->out.empty())
        conn->out = std::move(wire);
    else
        conn->out += wire;
    if (close_after)
        conn->closeAfterWrite = true;
    return flushOutput(shard, conn);
}

void
HttpReactor::shedRequest(Shard &shard, Conn *conn)
{
    metrics_->addCounter("server.shed");
    HttpResponse response = httpErrorResponse(
        503, "server at capacity; retry later");
    response.headers["Retry-After"] =
        std::to_string(config_.retryAfterSeconds);
    response.close = true;
    respond(shard, conn, serializeHttpResponse(response), true);
}

void
HttpReactor::pumpStreamBody(Shard &shard, Conn *conn, bool eof)
{
    std::string body;
    bool done = false;
    if (conn->parser.takeBody(&body, &done) !=
        HttpParseStatus::Ok) {
        metrics_->addCounter("server.malformed_requests");
        HttpResponse malformed = httpErrorResponse(
            400, "malformed chunked body");
        malformed.close = true;
        conn->sink.reset(); // destroyed-before-complete == abort
        respond(shard, conn, serializeHttpResponse(malformed),
                true);
        return;
    }
    if (!body.empty()) {
        HttpResponse error;
        if (!conn->sink->onData(body.data(), body.size(),
                                &error)) {
            // The refused chunk desynchronized the body framing:
            // answer and close.
            conn->sink.reset();
            error.close = true;
            respond(shard, conn, serializeHttpResponse(error),
                    true);
            return;
        }
    }
    if (done) {
        HttpResponse response = conn->sink->onComplete();
        conn->sink.reset();
        if (!conn->streamKeepAlive || stopping())
            response.close = true;
        if (!respond(shard, conn, serializeHttpResponse(response),
                     response.close))
            return;
        if (!response.close)
            pumpRequests(shard, conn, eof);
        return;
    }
    if (eof) {
        // Peer vanished mid-stream; the sink's destructor records
        // the abort.
        closeConn(shard, conn);
    }
}

void
HttpReactor::pumpRequests(Shard &shard, Conn *conn, bool eof)
{
    if (conn->sink != nullptr) {
        pumpStreamBody(shard, conn, eof);
        return;
    }
    if (conn->computing)
        return; // strictly one request in flight per connection
    HttpRequest request;
    switch (conn->parser.poll(&request)) {
      case HttpParseStatus::Ok: {
        const Clock::time_point received = Clock::now();
        if (config_.maxInflight != 0 &&
            inflight_.load(std::memory_order_relaxed) >=
                config_.maxInflight) {
            shedRequest(shard, conn);
            return;
        }
        WorkItem item;
        item.shard = shard.index;
        item.connId = conn->id;
        item.request = std::move(request);
        item.received = received;
        inflight_.fetch_add(1, std::memory_order_relaxed);
        conn->computing = true;
        shard.outstanding += 1;
        if (!computeQueue_->tryPush(std::move(item))) {
            // The compute queue itself is the capacity backstop.
            inflight_.fetch_sub(1, std::memory_order_relaxed);
            conn->computing = false;
            shard.outstanding -= 1;
            shedRequest(shard, conn);
            return;
        }
        wakeEventFd(computeSem_);
        updateInterest(shard, conn); // reads wait for the answer
        return;
      }
      case HttpParseStatus::NeedMore: {
        if (!eof)
            return;
        if (conn->parser.empty()) {
            closeConn(shard, conn); // clean close between requests
            return;
        }
        metrics_->addCounter("server.malformed_requests");
        HttpResponse malformed = httpErrorResponse(
            400, "malformed HTTP request");
        malformed.close = true;
        respond(shard, conn, serializeHttpResponse(malformed),
                true);
        return;
      }
      case HttpParseStatus::Malformed: {
        metrics_->addCounter("server.malformed_requests");
        HttpResponse malformed = httpErrorResponse(
            400, "malformed HTTP request");
        malformed.close = true;
        respond(shard, conn, serializeHttpResponse(malformed),
                true);
        return;
      }
      case HttpParseStatus::TooLarge: {
        metrics_->addCounter("server.oversized_requests");
        HttpResponse too_large = httpErrorResponse(
            413, "request exceeds the configured size limit");
        too_large.close = true;
        respond(shard, conn, serializeHttpResponse(too_large),
                true);
        return;
      }
      case HttpParseStatus::Unsupported: {
        HttpResponse unsupported = httpErrorResponse(
            501, "only chunked transfer-encoding is supported");
        unsupported.close = true;
        respond(shard, conn, serializeHttpResponse(unsupported),
                true);
        return;
      }
      case HttpParseStatus::Streaming: {
        HttpResponse refusal = httpErrorResponse(
            404, "no handler for the streamed request");
        std::unique_ptr<HttpStreamSink> sink;
        if (streamOpen_ != nullptr)
            sink = streamOpen_(request, &refusal);
        if (sink == nullptr) {
            // The unread body desynchronizes the connection: close.
            refusal.close = true;
            respond(shard, conn, serializeHttpResponse(refusal),
                    true);
            return;
        }
        conn->sink = std::move(sink);
        conn->streamKeepAlive = request.keepAlive;
        pumpStreamBody(shard, conn, eof);
        return;
      }
    }
}

void
HttpReactor::handleReadable(Shard &shard, Conn *conn)
{
    // The chaos harness's short read / peer reset.
    if (FAULT_POINT("http.read")) {
        metrics_->addCounter("server.malformed_requests");
        HttpResponse malformed = httpErrorResponse(
            400, "malformed HTTP request");
        malformed.close = true;
        respond(shard, conn, serializeHttpResponse(malformed),
                true);
        return;
    }
    bool eof = false;
    char chunk[kReadChunk];
    for (;;) {
        const ssize_t got =
            ::recv(conn->fd, chunk, sizeof(chunk), 0);
        if (got > 0) {
            conn->parser.append(
                chunk, static_cast<std::size_t>(got));
            conn->lastActivity = Clock::now();
            continue;
        }
        if (got == 0) {
            eof = true;
            break;
        }
        if (errno == EINTR)
            continue;
        if (errno == EAGAIN || errno == EWOULDBLOCK)
            break;
        // Peer reset mid-request: same rendering as a read error
        // on the blocking server.
        metrics_->addCounter("server.malformed_requests");
        HttpResponse malformed = httpErrorResponse(
            400, "malformed HTTP request");
        malformed.close = true;
        respond(shard, conn, serializeHttpResponse(malformed),
                true);
        return;
    }
    pumpRequests(shard, conn, eof);
}

void
HttpReactor::processCompletions(Shard &shard)
{
    Completion completion;
    while (shard.completions.tryPop(&completion)) {
        shard.outstanding -= 1;
        inflight_.fetch_sub(1, std::memory_order_relaxed);
        const auto it = shard.conns.find(completion.connId);
        if (it == shard.conns.end())
            continue; // the connection died while computing
        Conn *conn = it->second.get();
        conn->computing = false;
        conn->lastActivity = Clock::now();
        if (!respond(shard, conn, std::move(completion.wire),
                     completion.close))
            continue; // closed (error, or close-after-write done)
        if (conn->closeAfterWrite)
            continue; // close resumes once EPOLLOUT drains it
        if (stopping()) {
            // Drain: no further requests on this connection.
            if (conn->out.empty())
                closeConn(shard, conn);
            else
                conn->closeAfterWrite = true;
            continue;
        }
        updateInterest(shard, conn); // re-arm reads
        pumpRequests(shard, conn, false); // pipelined follow-ups
    }
}

void
HttpReactor::sweepIdle(Shard &shard)
{
    if (config_.idleTimeoutMs == 0)
        return;
    const Clock::time_point now = Clock::now();
    const auto limit =
        std::chrono::milliseconds(config_.idleTimeoutMs);
    std::vector<std::uint64_t> idle;
    for (const auto &[id, conn] : shard.conns) {
        if (!conn->computing && now - conn->lastActivity > limit)
            idle.push_back(id);
    }
    for (const std::uint64_t id : idle) {
        const auto it = shard.conns.find(id);
        if (it == shard.conns.end())
            continue;
        Conn *conn = it->second.get();
        if (!conn->out.empty()) {
            // A writer that stopped reading: just drop it.
            closeConn(shard, conn);
            continue;
        }
        metrics_->addCounter("server.read_timeouts");
        HttpResponse timeout = httpErrorResponse(
            408, "timed out waiting for the request");
        timeout.close = true;
        respond(shard, conn, serializeHttpResponse(timeout), true);
    }
}

void
HttpReactor::shardLoop(unsigned index)
{
    Shard &shard = *shards_[index];
    epoll_event events[128];
    Clock::time_point last_sweep = Clock::now();
    bool drained_idle = false;
    for (;;) {
        if (stopping()) {
            if (!drained_idle) {
                // Close idle connections right away; computing
                // ones finish through their completions.
                std::vector<std::uint64_t> open;
                open.reserve(shard.conns.size());
                for (const auto &[id, conn] : shard.conns)
                    open.push_back(id);
                for (const std::uint64_t id : open) {
                    const auto it = shard.conns.find(id);
                    if (it == shard.conns.end())
                        continue;
                    Conn *conn = it->second.get();
                    if (conn->computing)
                        continue;
                    if (!conn->out.empty()) {
                        conn->closeAfterWrite = true;
                        continue;
                    }
                    closeConn(shard, conn);
                }
                drained_idle = true;
            }
            if (shard.conns.empty() && shard.outstanding == 0)
                break;
        }
        const int ready = ::epoll_wait(shard.epollFd, events, 128,
                                       250);
        if (ready < 0) {
            if (errno == EINTR)
                continue;
            warn("epoll_wait(): ", std::strerror(errno));
            continue;
        }
        adoptConnections(shard);
        for (int i = 0; i < ready; ++i) {
            const epoll_event &event = events[i];
            if (event.data.u64 == 0) {
                std::uint64_t drained = 0;
                [[maybe_unused]] ssize_t ignored =
                    ::read(shard.wakeFd, &drained,
                           sizeof(drained));
                continue;
            }
            const auto it = shard.conns.find(event.data.u64);
            if (it == shard.conns.end())
                continue; // closed earlier in this batch
            Conn *conn = it->second.get();
            if ((event.events & (EPOLLERR | EPOLLHUP)) != 0) {
                closeConn(shard, conn);
                continue;
            }
            if ((event.events & EPOLLOUT) != 0) {
                if (!flushOutput(shard, conn))
                    continue;
            }
            if ((event.events & EPOLLIN) != 0)
                handleReadable(shard, conn);
        }
        processCompletions(shard);
        const Clock::time_point now = Clock::now();
        if (now - last_sweep >= kSweepPeriod) {
            sweepIdle(shard);
            last_sweep = now;
        }
    }
}

void
HttpReactor::computeLoop()
{
    for (;;) {
        std::uint64_t token = 0;
        const ssize_t got =
            ::read(computeSem_, &token, sizeof(token));
        if (got < 0) {
            if (errno == EINTR)
                continue;
            return; // the semaphore is gone; we are shutting down
        }
        WorkItem item;
        if (!computeQueue_->tryPop(&item)) {
            if (stopping())
                return; // a stop token
            continue;
        }

        std::string wire;
        bool close = false;
        {
            const bool traced =
                traced_ != nullptr && traced_(item.request);
            const ScopedThreadTrace trace_scope(traced);
            Span request_span("server.request");
            HttpResponse response;
            try {
                response = handler_(
                    item.request, item.received,
                    inflight_.load(std::memory_order_relaxed));
            } catch (const std::exception &e) {
                // The handler contract is no-throw; survive a
                // violation the way a worker survived a bad
                // connection.
                warn("request aborted: ", e.what());
                metrics_->addCounter("server.connection_errors");
                response = httpErrorResponseFor(
                    {ErrorCategory::Faulted,
                     std::string("internal error: ") + e.what()});
            }
            if (!item.request.keepAlive || stopping())
                response.close = true;
            close = response.close;
            Span serialize_span("server.serialize");
            wire = serializeHttpResponse(response);
        }

        Shard &shard = *shards_[item.shard];
        Completion completion{item.connId, std::move(wire), close};
        while (!shard.completions.tryPush(std::move(completion)))
            std::this_thread::yield();
        wakeEventFd(shard.wakeFd);
    }
}

void
HttpReactor::requestStop()
{
    if (!started_.load(std::memory_order_acquire))
        return;
    if (stopping_.exchange(true))
        return;
    // Wake the accept poll; it exits without touching new clients.
    if (wakePipe_[1] >= 0) {
        const char byte = 'x';
        [[maybe_unused]] ssize_t ignored =
            ::write(wakePipe_[1], &byte, 1);
    }
    for (const auto &shard : shards_)
        wakeEventFd(shard->wakeFd);
    // One stop token per compute worker.
    if (computeSem_ >= 0)
        wakeEventFd(computeSem_, computeThreads_.size());
}

void
HttpReactor::join()
{
    if (!started_.load(std::memory_order_acquire))
        return;
    if (joined_.exchange(true))
        return;
    if (acceptThread_.joinable())
        acceptThread_.join();
    for (std::thread &thread : computeThreads_) {
        if (thread.joinable())
            thread.join();
    }
    for (const auto &shard : shards_) {
        if (shard->thread.joinable())
            shard->thread.join();
    }
    for (const auto &shard : shards_) {
        if (shard->epollFd >= 0)
            ::close(shard->epollFd);
        if (shard->wakeFd >= 0)
            ::close(shard->wakeFd);
    }
    if (computeSem_ >= 0) {
        ::close(computeSem_);
        computeSem_ = -1;
    }
    if (listenFd_ >= 0) {
        ::close(listenFd_);
        listenFd_ = -1;
    }
    for (int &fd : wakePipe_) {
        if (fd >= 0) {
            ::close(fd);
            fd = -1;
        }
    }
}

} // namespace bwwall
