#include "server/json.hh"

#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <iomanip>
#include <sstream>

#include "util/logging.hh"

namespace bwwall {

namespace {

constexpr int kMaxDepth = 64;

/** Cursor over the input text with positioned error reporting. */
struct Parser
{
    const std::string &text;
    std::size_t pos = 0;
    std::string error;

    bool
    fail(const std::string &message)
    {
        if (error.empty()) {
            std::ostringstream oss;
            oss << message << " at byte " << pos;
            error = oss.str();
        }
        return false;
    }

    bool atEnd() const { return pos >= text.size(); }

    char peek() const { return atEnd() ? '\0' : text[pos]; }

    void
    skipSpace()
    {
        while (!atEnd()) {
            const char c = text[pos];
            if (c != ' ' && c != '\t' && c != '\n' && c != '\r')
                break;
            ++pos;
        }
    }

    bool
    consume(char expected)
    {
        if (peek() != expected)
            return fail(std::string("expected '") + expected + "'");
        ++pos;
        return true;
    }

    bool
    consumeWord(const char *word)
    {
        for (const char *c = word; *c != '\0'; ++c, ++pos) {
            if (atEnd() || text[pos] != *c)
                return fail(std::string("bad literal; expected '") +
                            word + "'");
        }
        return true;
    }

    bool parseValue(JsonValue *out, int depth);
    bool parseString(std::string *out);
    bool parseNumber(JsonValue *out);
};

void
appendUtf8(std::string *out, std::uint32_t code)
{
    if (code < 0x80) {
        *out += static_cast<char>(code);
    } else if (code < 0x800) {
        *out += static_cast<char>(0xc0 | (code >> 6));
        *out += static_cast<char>(0x80 | (code & 0x3f));
    } else if (code < 0x10000) {
        *out += static_cast<char>(0xe0 | (code >> 12));
        *out += static_cast<char>(0x80 | ((code >> 6) & 0x3f));
        *out += static_cast<char>(0x80 | (code & 0x3f));
    } else {
        *out += static_cast<char>(0xf0 | (code >> 18));
        *out += static_cast<char>(0x80 | ((code >> 12) & 0x3f));
        *out += static_cast<char>(0x80 | ((code >> 6) & 0x3f));
        *out += static_cast<char>(0x80 | (code & 0x3f));
    }
}

bool
parseHex4(Parser &p, std::uint32_t *out)
{
    std::uint32_t value = 0;
    for (int i = 0; i < 4; ++i) {
        if (p.atEnd())
            return p.fail("truncated \\u escape");
        const char c = p.text[p.pos];
        value <<= 4;
        if (c >= '0' && c <= '9')
            value |= static_cast<std::uint32_t>(c - '0');
        else if (c >= 'a' && c <= 'f')
            value |= static_cast<std::uint32_t>(c - 'a' + 10);
        else if (c >= 'A' && c <= 'F')
            value |= static_cast<std::uint32_t>(c - 'A' + 10);
        else
            return p.fail("bad hex digit in \\u escape");
        ++p.pos;
    }
    *out = value;
    return true;
}

bool
Parser::parseString(std::string *out)
{
    if (!consume('"'))
        return false;
    out->clear();
    while (true) {
        if (atEnd())
            return fail("unterminated string");
        const char c = text[pos];
        if (c == '"') {
            ++pos;
            return true;
        }
        if (static_cast<unsigned char>(c) < 0x20)
            return fail("unescaped control character in string");
        if (c != '\\') {
            *out += c;
            ++pos;
            continue;
        }
        ++pos; // the backslash
        if (atEnd())
            return fail("truncated escape");
        const char esc = text[pos];
        ++pos;
        switch (esc) {
          case '"':
            *out += '"';
            break;
          case '\\':
            *out += '\\';
            break;
          case '/':
            *out += '/';
            break;
          case 'b':
            *out += '\b';
            break;
          case 'f':
            *out += '\f';
            break;
          case 'n':
            *out += '\n';
            break;
          case 'r':
            *out += '\r';
            break;
          case 't':
            *out += '\t';
            break;
          case 'u': {
            std::uint32_t code = 0;
            if (!parseHex4(*this, &code))
                return false;
            if (code >= 0xd800 && code <= 0xdbff) {
                // High surrogate: a \uXXXX low surrogate must follow.
                if (pos + 1 >= text.size() || text[pos] != '\\' ||
                    text[pos + 1] != 'u')
                    return fail("unpaired high surrogate");
                pos += 2;
                std::uint32_t low = 0;
                if (!parseHex4(*this, &low))
                    return false;
                if (low < 0xdc00 || low > 0xdfff)
                    return fail("bad low surrogate");
                code = 0x10000 + ((code - 0xd800) << 10) +
                       (low - 0xdc00);
            } else if (code >= 0xdc00 && code <= 0xdfff) {
                return fail("unpaired low surrogate");
            }
            appendUtf8(out, code);
            break;
          }
          default:
            return fail("unknown escape");
        }
    }
}

bool
Parser::parseNumber(JsonValue *out)
{
    const std::size_t start = pos;
    if (peek() == '-')
        ++pos;
    if (atEnd() || text[pos] < '0' || text[pos] > '9')
        return fail("bad number");
    // JSON forbids leading zeros: 0 stands alone before . or e.
    if (text[pos] == '0' && pos + 1 < text.size() &&
        text[pos + 1] >= '0' && text[pos + 1] <= '9') {
        return fail("leading zero");
    }
    while (!atEnd() && text[pos] >= '0' && text[pos] <= '9')
        ++pos;
    if (!atEnd() && text[pos] == '.') {
        ++pos;
        if (atEnd() || text[pos] < '0' || text[pos] > '9')
            return fail("bad fraction");
        while (!atEnd() && text[pos] >= '0' && text[pos] <= '9')
            ++pos;
    }
    if (!atEnd() && (text[pos] == 'e' || text[pos] == 'E')) {
        ++pos;
        if (!atEnd() && (text[pos] == '+' || text[pos] == '-'))
            ++pos;
        if (atEnd() || text[pos] < '0' || text[pos] > '9')
            return fail("bad exponent");
        while (!atEnd() && text[pos] >= '0' && text[pos] <= '9')
            ++pos;
    }
    const std::string token = text.substr(start, pos - start);
    char *end = nullptr;
    const double value = std::strtod(token.c_str(), &end);
    if (end == nullptr || *end != '\0' || !std::isfinite(value)) {
        pos = start;
        return fail("unrepresentable number");
    }
    *out = JsonValue(value);
    return true;
}

bool
Parser::parseValue(JsonValue *out, int depth)
{
    if (depth > kMaxDepth)
        return fail("nesting too deep");
    skipSpace();
    if (atEnd())
        return fail("unexpected end of input");
    switch (peek()) {
      case 'n':
        if (!consumeWord("null"))
            return false;
        *out = JsonValue();
        return true;
      case 't':
        if (!consumeWord("true"))
            return false;
        *out = JsonValue(true);
        return true;
      case 'f':
        if (!consumeWord("false"))
            return false;
        *out = JsonValue(false);
        return true;
      case '"': {
        std::string value;
        if (!parseString(&value))
            return false;
        *out = JsonValue(std::move(value));
        return true;
      }
      case '[': {
        ++pos;
        *out = JsonValue::makeArray();
        skipSpace();
        if (peek() == ']') {
            ++pos;
            return true;
        }
        while (true) {
            JsonValue element;
            if (!parseValue(&element, depth + 1))
                return false;
            out->append(std::move(element));
            skipSpace();
            if (peek() == ',') {
                ++pos;
                continue;
            }
            return consume(']');
        }
      }
      case '{': {
        ++pos;
        *out = JsonValue::makeObject();
        skipSpace();
        if (peek() == '}') {
            ++pos;
            return true;
        }
        while (true) {
            skipSpace();
            std::string key;
            if (!parseString(&key))
                return false;
            skipSpace();
            if (!consume(':'))
                return false;
            JsonValue element;
            if (!parseValue(&element, depth + 1))
                return false;
            out->set(key, std::move(element));
            skipSpace();
            if (peek() == ',') {
                ++pos;
                continue;
            }
            return consume('}');
        }
      }
      default:
        return parseNumber(out);
    }
}

void
dumpTo(const JsonValue &value, std::string *out)
{
    switch (value.kind()) {
      case JsonValue::Kind::Null:
        *out += "null";
        break;
      case JsonValue::Kind::Bool:
        *out += value.asBool() ? "true" : "false";
        break;
      case JsonValue::Kind::Number:
        *out += jsonNumberText(value.asNumber());
        break;
      case JsonValue::Kind::String:
        *out += '"';
        *out += jsonEscapeText(value.asString());
        *out += '"';
        break;
      case JsonValue::Kind::Array: {
        *out += '[';
        bool first = true;
        for (const JsonValue &element : value.items()) {
            if (!first)
                *out += ',';
            dumpTo(element, out);
            first = false;
        }
        *out += ']';
        break;
      }
      case JsonValue::Kind::Object: {
        *out += '{';
        bool first = true;
        for (const auto &[key, element] : value.members()) {
            if (!first)
                *out += ',';
            *out += '"';
            *out += jsonEscapeText(key);
            *out += "\":";
            dumpTo(element, out);
            first = false;
        }
        *out += '}';
        break;
      }
    }
}

} // namespace

JsonValue
JsonValue::makeArray()
{
    JsonValue value;
    value.kind_ = Kind::Array;
    return value;
}

JsonValue
JsonValue::makeObject()
{
    JsonValue value;
    value.kind_ = Kind::Object;
    return value;
}

bool
JsonValue::asBool() const
{
    if (kind_ != Kind::Bool)
        panic("JsonValue::asBool on a non-bool");
    return bool_;
}

double
JsonValue::asNumber() const
{
    if (kind_ != Kind::Number)
        panic("JsonValue::asNumber on a non-number");
    return number_;
}

const std::string &
JsonValue::asString() const
{
    if (kind_ != Kind::String)
        panic("JsonValue::asString on a non-string");
    return string_;
}

const std::vector<JsonValue> &
JsonValue::items() const
{
    if (kind_ != Kind::Array)
        panic("JsonValue::items on a non-array");
    return array_;
}

const std::map<std::string, JsonValue> &
JsonValue::members() const
{
    if (kind_ != Kind::Object)
        panic("JsonValue::members on a non-object");
    return object_;
}

const JsonValue *
JsonValue::find(const std::string &key) const
{
    if (kind_ != Kind::Object)
        return nullptr;
    const auto it = object_.find(key);
    return it == object_.end() ? nullptr : &it->second;
}

void
JsonValue::set(const std::string &key, JsonValue value)
{
    if (kind_ == Kind::Null)
        kind_ = Kind::Object;
    if (kind_ != Kind::Object)
        panic("JsonValue::set on a non-object");
    object_.insert_or_assign(key, std::move(value));
}

void
JsonValue::append(JsonValue value)
{
    if (kind_ == Kind::Null)
        kind_ = Kind::Array;
    if (kind_ != Kind::Array)
        panic("JsonValue::append on a non-array");
    array_.push_back(std::move(value));
}

std::string
JsonValue::dump() const
{
    std::string out;
    dumpTo(*this, &out);
    return out;
}

bool
JsonValue::parse(const std::string &text, JsonValue *out,
                 std::string *error)
{
    Parser parser{text, 0, {}};
    JsonValue value;
    if (!parser.parseValue(&value, 0)) {
        if (error != nullptr)
            *error = parser.error;
        return false;
    }
    parser.skipSpace();
    if (!parser.atEnd()) {
        parser.fail("trailing characters after value");
        if (error != nullptr)
            *error = parser.error;
        return false;
    }
    *out = std::move(value);
    return true;
}

std::string
jsonNumberText(double value)
{
    // Integer-valued doubles inside the exactly representable range
    // print as integers; everything else round-trips through
    // precision 17.  Fixed formatting keeps responses byte-stable.
    if (std::isfinite(value) && value == std::floor(value) &&
        std::fabs(value) < 9.007199254740992e15) {
        char buffer[32];
        std::snprintf(buffer, sizeof(buffer), "%.0f", value);
        return buffer;
    }
    std::ostringstream oss;
    oss << std::setprecision(17) << value;
    const std::string text = oss.str();
    if (text.find("inf") != std::string::npos ||
        text.find("nan") != std::string::npos)
        return "null";
    return text;
}

std::string
jsonEscapeText(const std::string &text)
{
    std::string out;
    out.reserve(text.size());
    for (const char c : text) {
        switch (c) {
          case '"':
            out += "\\\"";
            break;
          case '\\':
            out += "\\\\";
            break;
          case '\n':
            out += "\\n";
            break;
          case '\r':
            out += "\\r";
            break;
          case '\t':
            out += "\\t";
            break;
          default:
            if (static_cast<unsigned char>(c) < 0x20) {
                char buffer[8];
                std::snprintf(buffer, sizeof(buffer), "\\u%04x",
                              static_cast<int>(c));
                out += buffer;
            } else {
                out += c;
            }
        }
    }
    return out;
}

} // namespace bwwall
