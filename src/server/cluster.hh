/**
 * @file
 * bwwalld cluster mode: the consistent-hash shard map and the
 * bounded peer-fill RPC (docs/CLUSTER.md).
 *
 * N bwwalld instances share one rendezvous map
 * (util/rendezvous.hh) over canonical request keys — the exact
 * strings that key the ResultCache — so every member (and the thin
 * examples/bwwall_router) computes the same owner for every
 * request without coordination.  A node that misses its local
 * cache on a key it does not own asks the owner once (POST, the
 * original body, the X-BWWall-Peer-Fill marker, a bounded deadline
 * and retry budget through HttpClient::perform) before computing
 * locally.  Because the owner serves the fill through its own
 * single-flight cache, a storm of identical requests across the
 * whole cluster collapses to one compute; because every fill
 * response is the owner's canonical bytes, cluster answers stay
 * byte-identical to a single-node solve.
 *
 * Loop prevention is one rule: a request carrying
 * X-BWWall-Peer-Fill is answered locally, never re-forwarded, no
 * matter what the receiver's map says.  A fill is therefore at
 * most one hop even when members briefly disagree about
 * membership, and any fill failure (owner down, slow, shedding,
 * degraded, stale) falls back to a local compute — the cluster
 * degrades to N independent caches, never to an error.
 */

#ifndef BWWALL_SERVER_CLUSTER_HH
#define BWWALL_SERVER_CLUSTER_HH

#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>
#include <thread>
#include <vector>

#include "server/http.hh"
#include "util/breaker.hh"
#include "util/rendezvous.hh"

namespace bwwall {

class HttpClient;
class JsonValue;
class MetricsRegistry;

/**
 * The peer-fill marker.  Outbound fills send it; a request
 * carrying it is served locally (the loop-prevention rule).  The
 * response echoes X-BWWall-Peer-Filled when the answer came from a
 * peer, purely for observability — bodies never differ.
 */
inline constexpr const char *kPeerFillHeader =
    "X-BWWall-Peer-Fill";

/** kPeerFillHeader as the parser lowercases it. */
inline constexpr const char *kPeerFillHeaderLower =
    "x-bwwall-peer-fill";

/** Response marker: this answer was filled from a peer. */
inline constexpr const char *kPeerFilledHeader =
    "X-BWWall-Peer-Filled";

/** Everything tunable about one node's view of the cluster. */
struct ClusterConfig
{
    /**
     * This node's advertised "host:port", exactly as it is spelled
     * in every member's peer list (string identity, not address
     * identity).  Empty for a pure router, which owns no shard.
     */
    std::string self;

    /** Full membership, self included.  Order does not matter. */
    std::vector<std::string> peers;

    /** Wall-clock budget of one peer fill, milliseconds. */
    unsigned peerDeadlineMs = 1000;

    /** Attempts per fill, the first included (1 = no retry). */
    unsigned peerAttempts = 2;

    /** connect() bound per attempt, milliseconds. */
    unsigned connectTimeoutMs = 250;

    /**
     * Cadence of the background /healthz prober, milliseconds
     * (0 — the default — disables it).  With the prober running,
     * a peer whose probe fails is ejected (fills to it skipped
     * instantly) and reinstated by the next successful probe, so
     * ejection and recovery both land within one interval.
     * Without it, peer health is driven purely by fill outcomes
     * and the breaker's own half-open cooldown.
     */
    unsigned probeIntervalMs = 0;

    /** Bound on one probe's connect and read, milliseconds. */
    unsigned probeTimeoutMs = 250;

    /**
     * Consecutive fill transport failures that mark a peer down
     * even between probes (a dead peer stops burning deadlines
     * after this many fills, not after the next probe tick).
     */
    unsigned peerFailureThreshold = 3;

    /** Shard-map seed; every member must agree (docs/CLUSTER.md). */
    std::uint64_t seed = kRendezvousSeed;
};

/**
 * Parses a "host:port[,host:port...]" peer list.  Duplicates are
 * rejected (the map would double-weight the node); each entry must
 * contain a host and a decimal port.  Returns false with *error
 * set on the first bad entry.
 */
bool parsePeerList(const std::string &text,
                   std::vector<std::string> *out,
                   std::string *error);

/**
 * One node's (or the router's) cluster brain: the shard map plus
 * the peer-fill client pool.  Query methods are pure and
 * lock-free; fillFromPeer() is thread-safe and internally pools
 * one keep-alive HttpClient per peer per concurrent fill.
 */
class Cluster
{
  public:
    /**
     * Validates and adopts @p config: peers parsed and non-empty,
     * self (when set) a member.  Throws BadRequest on an unusable
     * configuration — cluster wiring is a start-time user error,
     * not a runtime condition.  @p metrics (optional) receives the
     * cluster.* counters.
     */
    explicit Cluster(ClusterConfig config,
                     MetricsRegistry *metrics = nullptr);

    ~Cluster();

    Cluster(const Cluster &) = delete;
    Cluster &operator=(const Cluster &) = delete;

    /** Membership, deduplicated and sorted (the canonical order). */
    const std::vector<std::string> &nodes() const
    {
        return nodes_;
    }

    std::size_t nodeCount() const { return nodes_.size(); }

    const std::string &self() const { return config_.self; }

    /** True when peer fill can ever apply: 2+ nodes and a self. */
    bool
    enabled() const
    {
        return nodes_.size() >= 2 && !config_.self.empty();
    }

    /** Index of the owner of @p key in nodes(). */
    std::size_t
    ownerIndex(std::string_view key) const
    {
        return rendezvousOwner(nodes_, key, config_.seed);
    }

    /** The owning node's "host:port". */
    const std::string &
    owner(std::string_view key) const
    {
        return nodes_[ownerIndex(key)];
    }

    /** True when this node owns @p key (routers own nothing). */
    bool
    selfOwns(std::string_view key) const
    {
        return !config_.self.empty() &&
               owner(key) == config_.self;
    }

    /** Failover order over nodes() for @p key (owner first). */
    std::vector<std::size_t>
    preferenceOrder(std::string_view key) const
    {
        return rendezvousOrder(nodes_, key, config_.seed);
    }

    /**
     * One bounded peer-fill RPC: POST @p body to @p peer at
     * @p path, marked with kPeerFillHeader, under the stricter of
     * the configured peer deadline and @p remainingSeconds
     * (negative = no caller bound).  Returns true only for a
     * fresh, full-resolution 200 — degraded (X-BWWall-Degraded)
     * and stale (X-BWWall-Stale) answers are rejected so the local
     * cache never adopts bytes a direct solve would not produce.
     * On success *out holds the peer's canonical response with the
     * kPeerFilledHeader marker added.
     */
    bool fillFromPeer(const std::string &peer,
                      const std::string &path,
                      const std::string &body,
                      double remainingSeconds, HttpResponse *out);

    /** @name Peer health
     * One util/breaker.hh Breaker per non-self peer, fed by fill
     * outcomes (and by the router's forward outcomes) and — when
     * probeIntervalMs > 0 — driven authoritatively by the
     * background /healthz prober: a failed probe trips the
     * breaker, a successful one resets it.  A down peer is
     * skipped instantly (cluster.peer_fill.peer_down) instead of
     * burning the request's remaining deadline on a doomed RPC.
     *  @{ */

    /**
     * True when a fill/forward to @p peer may proceed.  With the
     * prober running, only a closed breaker admits — reinstatement
     * is the prober's job.  Without it, an open breaker admits one
     * half-open trial per cooldown, so fills themselves drive
     * recovery.
     */
    bool peerAvailable(const std::string &peer);

    /** Reports one fill/forward success on @p peer. */
    void notePeerSuccess(const std::string &peer);

    /** Reports one fill/forward transport failure on @p peer. */
    void notePeerFailure(const std::string &peer);

    /** @p peer's breaker state (Closed = fillable). */
    BreakerState peerState(const std::string &peer) const;

    /** Runs one probe pass over every non-self peer, now. */
    void probePeersOnce();
    /** @} */

    /**
     * The /v1/cluster payload: kind, enabled, self, seed (hex),
     * the node list with per-peer health, the probe interval, and
     * the cluster.* stat counters.
     */
    JsonValue statusJson() const;

    const ClusterConfig &config() const { return config_; }

  private:
    /** A pooled keep-alive client for @p peer (pop or create). */
    std::unique_ptr<HttpClient>
    acquireClient(const std::string &peer);

    /** Returns @p client to @p peer's pool (bounded; else drop). */
    void releaseClient(const std::string &peer,
                       std::unique_ptr<HttpClient> client);

    void count(const char *name) const;

    /** @p peer's breaker, created closed on first touch. */
    Breaker &healthFor(const std::string &peer);

    /**
     * Counts a breaker transition (cluster.health.ejections /
     * .reinstatements) and refreshes the peers_down gauge.
     * Callers hold healthMutex_.
     */
    void noteHealthEventLocked(BreakerEvent event);

    /** The prober thread body: probe, sleep, repeat. */
    void proberLoop();

    ClusterConfig config_;
    std::vector<std::string> nodes_;
    MetricsRegistry *metrics_;

    mutable std::mutex poolMutex_;
    std::vector<
        std::pair<std::string,
                  std::vector<std::unique_ptr<HttpClient>>>>
        pools_;
    std::uint64_t fillSequence_ = 0;

    mutable std::mutex healthMutex_;
    std::map<std::string, Breaker> health_;
    BreakerConfig healthConfig_;

    std::thread prober_;
    std::mutex proberMutex_;
    std::condition_variable proberCv_;
    bool proberStop_ = false;
};

} // namespace bwwall

#endif // BWWALL_SERVER_CLUSTER_HH
