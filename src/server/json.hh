/**
 * @file
 * Minimal JSON values for the model-query server.
 *
 * bwwalld speaks JSON on the wire with no third-party dependencies,
 * so this header supplies the whole round trip: a recursive-descent
 * parser that rejects malformed input with a positioned error
 * message (never exits — bad request bodies must become HTTP 400s,
 * not daemon deaths), and a canonical writer.  Canonical means
 * object keys sorted (std::map storage), no insignificant
 * whitespace, and integer-valued doubles printed without an
 * exponent — so two semantically identical requests serialize to
 * identical bytes, which is exactly what the result cache hashes.
 */

#ifndef BWWALL_SERVER_JSON_HH
#define BWWALL_SERVER_JSON_HH

#include <cstdint>
#include <map>
#include <string>
#include <vector>

namespace bwwall {

/** One JSON value: null, bool, number, string, array, or object. */
class JsonValue
{
  public:
    enum class Kind : std::uint8_t
    {
        Null,
        Bool,
        Number,
        String,
        Array,
        Object,
    };

    JsonValue() = default;
    explicit JsonValue(bool value) : kind_(Kind::Bool), bool_(value)
    {}
    explicit JsonValue(double value)
        : kind_(Kind::Number), number_(value)
    {}
    explicit JsonValue(const char *value)
        : kind_(Kind::String), string_(value)
    {}
    explicit JsonValue(std::string value)
        : kind_(Kind::String), string_(std::move(value))
    {}

    /** Empty array / object factories. */
    static JsonValue makeArray();
    static JsonValue makeObject();

    Kind kind() const { return kind_; }
    bool isNull() const { return kind_ == Kind::Null; }
    bool isBool() const { return kind_ == Kind::Bool; }
    bool isNumber() const { return kind_ == Kind::Number; }
    bool isString() const { return kind_ == Kind::String; }
    bool isArray() const { return kind_ == Kind::Array; }
    bool isObject() const { return kind_ == Kind::Object; }

    /** Typed accessors; panic on kind mismatch (caller checks). */
    bool asBool() const;
    double asNumber() const;
    const std::string &asString() const;
    const std::vector<JsonValue> &items() const;
    const std::map<std::string, JsonValue> &members() const;

    /** Object lookup; nullptr when absent (or not an object). */
    const JsonValue *find(const std::string &key) const;

    /** Object insertion (makes this an object when Null). */
    void set(const std::string &key, JsonValue value);

    /** Array append (makes this an array when Null). */
    void append(JsonValue value);

    /** Canonical compact serialization (sorted keys, no spaces). */
    std::string dump() const;

    /**
     * Parses `text` into *out.  On failure returns false and, when
     * error is non-null, stores a human-readable diagnostic with the
     * byte offset.  Rejects trailing garbage and nesting deeper than
     * 64 levels.
     */
    static bool parse(const std::string &text, JsonValue *out,
                      std::string *error = nullptr);

  private:
    Kind kind_ = Kind::Null;
    bool bool_ = false;
    double number_ = 0.0;
    std::string string_;
    std::vector<JsonValue> array_;
    std::map<std::string, JsonValue> object_;
};

/** Canonical number formatting shared with dump() (and tests). */
std::string jsonNumberText(double value);

/** Escapes a string for inclusion in a JSON string literal. */
std::string jsonEscapeText(const std::string &text);

} // namespace bwwall

#endif // BWWALL_SERVER_JSON_HH
