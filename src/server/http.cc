#include "server/http.hh"

#include <algorithm>
#include <cctype>
#include <cstdlib>

namespace bwwall {

namespace {

std::string
toLower(std::string text)
{
    std::transform(text.begin(), text.end(), text.begin(),
                   [](unsigned char c) {
                       return static_cast<char>(std::tolower(c));
                   });
    return text;
}

std::string
trim(const std::string &text)
{
    std::size_t begin = 0;
    std::size_t end = text.size();
    while (begin < end && (text[begin] == ' ' || text[begin] == '\t'))
        ++begin;
    while (end > begin &&
           (text[end - 1] == ' ' || text[end - 1] == '\t'))
        --end;
    return text.substr(begin, end - begin);
}

/** Splits the request head into lines on CRLF (tolerating bare LF). */
bool
nextLine(const std::string &head, std::size_t *cursor,
         std::string *line)
{
    if (*cursor >= head.size())
        return false;
    const std::size_t eol = head.find('\n', *cursor);
    std::size_t end = eol == std::string::npos ? head.size() : eol;
    std::size_t next = eol == std::string::npos ? head.size()
                                                : eol + 1;
    if (end > *cursor && head[end - 1] == '\r')
        --end;
    *line = head.substr(*cursor, end - *cursor);
    *cursor = next;
    return true;
}

} // namespace

HttpParseStatus
HttpParser::poll(HttpRequest *out)
{
    if (mode_ == Mode::StreamBody)
        return HttpParseStatus::NeedMore; // drain via takeBody()
    if (mode_ == Mode::BufferedBody)
        return continueBufferedBody(out);

    // Find the blank line ending the header block.
    std::size_t head_end = buffer_.find("\r\n\r\n");
    std::size_t separator = 4;
    if (head_end == std::string::npos) {
        head_end = buffer_.find("\n\n");
        separator = 2;
    }
    if (head_end == std::string::npos) {
        return buffer_.size() > limits_.maxHeaderBytes
                   ? HttpParseStatus::TooLarge
                   : HttpParseStatus::NeedMore;
    }
    head_end += separator;
    if (head_end > limits_.maxHeaderBytes)
        return HttpParseStatus::TooLarge;

    const std::string head = buffer_.substr(0, head_end);
    std::size_t cursor = 0;
    std::string line;
    if (!nextLine(head, &cursor, &line) || line.empty())
        return HttpParseStatus::Malformed;

    // Request line: METHOD SP TARGET SP VERSION.
    HttpRequest request;
    const std::size_t sp1 = line.find(' ');
    const std::size_t sp2 =
        sp1 == std::string::npos ? std::string::npos
                                 : line.find(' ', sp1 + 1);
    if (sp1 == std::string::npos || sp2 == std::string::npos)
        return HttpParseStatus::Malformed;
    request.method = line.substr(0, sp1);
    request.target = line.substr(sp1 + 1, sp2 - sp1 - 1);
    const std::string version = line.substr(sp2 + 1);
    if (request.method.empty() || request.target.empty())
        return HttpParseStatus::Malformed;
    if (version != "HTTP/1.1" && version != "HTTP/1.0")
        return HttpParseStatus::Malformed;
    request.keepAlive = version == "HTTP/1.1";

    const std::size_t question = request.target.find('?');
    if (question == std::string::npos) {
        request.path = request.target;
    } else {
        request.path = request.target.substr(0, question);
        request.query = request.target.substr(question + 1);
    }

    // Header fields.
    while (nextLine(head, &cursor, &line)) {
        if (line.empty())
            break;
        const std::size_t colon = line.find(':');
        if (colon == std::string::npos)
            return HttpParseStatus::Malformed;
        request.headers[toLower(line.substr(0, colon))] =
            trim(line.substr(colon + 1));
    }

    const auto connection = request.headers.find("connection");
    if (connection != request.headers.end()) {
        const std::string value = toLower(connection->second);
        if (value == "close")
            request.keepAlive = false;
        else if (value == "keep-alive")
            request.keepAlive = true;
    }

    const auto transfer = request.headers.find("transfer-encoding");
    const bool chunked_body =
        transfer != request.headers.end() &&
        toLower(trim(transfer->second)) == "chunked";
    if (transfer != request.headers.end() && !chunked_body)
        return HttpParseStatus::Unsupported;
    // Both framings at once is a request-smuggling vector.
    if (chunked_body &&
        request.headers.count("content-length") != 0)
        return HttpParseStatus::Malformed;

    // Body: Content-Length bytes (0 when absent).
    std::uint64_t body_bytes = 0;
    const auto length = request.headers.find("content-length");
    if (length != request.headers.end()) {
        const std::string &text = length->second;
        if (text.empty() ||
            text.find_first_not_of("0123456789") !=
                std::string::npos)
            return HttpParseStatus::Malformed;
        char *end = nullptr;
        const unsigned long long parsed =
            std::strtoull(text.c_str(), &end, 10);
        if (end == nullptr || *end != '\0')
            return HttpParseStatus::Malformed;
        body_bytes = parsed;
    }

    const bool streamed = streamPredicate_ != nullptr &&
                          streamPredicate_(request);
    if (streamed) {
        // Hand out the head; the body crosses takeBody() in bounded
        // chunks, so maxBodyBytes does not apply (the stream's own
        // byte budget does).
        buffer_.erase(0, head_end);
        mode_ = Mode::StreamBody;
        chunked_ = chunked_body;
        bodyRemaining_ = body_bytes;
        chunkPhase_ = ChunkPhase::Size;
        *out = std::move(request);
        return HttpParseStatus::Streaming;
    }

    if (chunked_body) {
        buffer_.erase(0, head_end);
        mode_ = Mode::BufferedBody;
        chunked_ = true;
        chunkPhase_ = ChunkPhase::Size;
        pending_ = std::move(request);
        return continueBufferedBody(out);
    }

    if (body_bytes > limits_.maxBodyBytes)
        return HttpParseStatus::TooLarge;
    if (buffer_.size() < head_end + body_bytes)
        return HttpParseStatus::NeedMore;
    request.body = buffer_.substr(
        head_end, static_cast<std::size_t>(body_bytes));
    buffer_.erase(
        0, head_end + static_cast<std::size_t>(body_bytes));
    *out = std::move(request);
    return HttpParseStatus::Ok;
}

HttpParseStatus
HttpParser::continueBufferedBody(HttpRequest *out)
{
    bool done = false;
    if (!decodeChunked(&pending_.body, &done))
        return HttpParseStatus::Malformed;
    if (pending_.body.size() > limits_.maxBodyBytes)
        return HttpParseStatus::TooLarge;
    if (!done)
        return HttpParseStatus::NeedMore;
    mode_ = Mode::Head;
    *out = std::move(pending_);
    pending_ = HttpRequest{};
    return HttpParseStatus::Ok;
}

HttpParseStatus
HttpParser::takeBody(std::string *out, bool *done)
{
    *done = false;
    if (mode_ != Mode::StreamBody)
        return HttpParseStatus::Malformed;
    if (chunked_) {
        if (!decodeChunked(out, done))
            return HttpParseStatus::Malformed;
    } else {
        const std::size_t take = static_cast<std::size_t>(
            std::min<std::uint64_t>(buffer_.size(),
                                    bodyRemaining_));
        out->append(buffer_, 0, take);
        buffer_.erase(0, take);
        bodyRemaining_ -= take;
        *done = bodyRemaining_ == 0;
    }
    if (*done)
        mode_ = Mode::Head;
    return HttpParseStatus::Ok;
}

bool
HttpParser::decodeChunked(std::string *out, bool *done)
{
    *done = false;
    for (;;) {
        switch (chunkPhase_) {
          case ChunkPhase::Size: {
            const std::size_t eol = buffer_.find('\n');
            if (eol == std::string::npos) {
                // A size line cannot legitimately get this long.
                return buffer_.size() <= 1024;
            }
            std::string line = buffer_.substr(0, eol);
            if (!line.empty() && line.back() == '\r')
                line.pop_back();
            const std::size_t semi = line.find(';');
            if (semi != std::string::npos)
                line = line.substr(0, semi); // drop chunk extensions
            line = trim(line);
            if (line.empty() || line.size() > 16 ||
                line.find_first_not_of("0123456789abcdefABCDEF") !=
                    std::string::npos)
                return false;
            chunkRemaining_ =
                std::strtoull(line.c_str(), nullptr, 16);
            buffer_.erase(0, eol + 1);
            chunkPhase_ = chunkRemaining_ == 0
                              ? ChunkPhase::Trailer
                              : ChunkPhase::Data;
            break;
          }
          case ChunkPhase::Data: {
            if (buffer_.empty())
                return true;
            const std::size_t take = static_cast<std::size_t>(
                std::min<std::uint64_t>(buffer_.size(),
                                        chunkRemaining_));
            out->append(buffer_, 0, take);
            buffer_.erase(0, take);
            chunkRemaining_ -= take;
            if (chunkRemaining_ != 0)
                return true;
            chunkPhase_ = ChunkPhase::DataEnd;
            break;
          }
          case ChunkPhase::DataEnd: {
            if (buffer_.empty())
                return true;
            if (buffer_[0] == '\n') {
                buffer_.erase(0, 1);
            } else if (buffer_[0] == '\r') {
                if (buffer_.size() < 2)
                    return true;
                if (buffer_[1] != '\n')
                    return false;
                buffer_.erase(0, 2);
            } else {
                return false;
            }
            chunkPhase_ = ChunkPhase::Size;
            break;
          }
          case ChunkPhase::Trailer: {
            const std::size_t eol = buffer_.find('\n');
            if (eol == std::string::npos)
                return buffer_.size() <= limits_.maxHeaderBytes;
            std::string line = buffer_.substr(0, eol);
            if (!line.empty() && line.back() == '\r')
                line.pop_back();
            buffer_.erase(0, eol + 1);
            if (line.empty()) {
                *done = true;
                chunkPhase_ = ChunkPhase::Size;
                return true;
            }
            break; // trailer fields are ignored
          }
        }
    }
}

std::string
serializeHttpResponse(const HttpResponse &response)
{
    std::string wire;
    wire.reserve(response.body.size() + 160);
    wire += "HTTP/1.1 ";
    wire += std::to_string(response.status);
    wire += ' ';
    wire += httpStatusText(response.status);
    wire += "\r\nContent-Type: ";
    wire += response.contentType;
    wire += "\r\nContent-Length: ";
    wire += std::to_string(response.body.size());
    wire += "\r\nConnection: ";
    wire += response.close ? "close" : "keep-alive";
    for (const auto &[name, value] : response.headers) {
        wire += "\r\n";
        wire += name;
        wire += ": ";
        wire += value;
    }
    wire += "\r\n\r\n";
    wire += response.body;
    return wire;
}

const char *
httpStatusText(int status)
{
    switch (status) {
      case 200:
        return "OK";
      case 400:
        return "Bad Request";
      case 404:
        return "Not Found";
      case 405:
        return "Method Not Allowed";
      case 408:
        return "Request Timeout";
      case 409:
        return "Conflict";
      case 413:
        return "Payload Too Large";
      case 422:
        return "Unprocessable Content";
      case 424:
        return "Failed Dependency";
      case 429:
        return "Too Many Requests";
      case 500:
        return "Internal Server Error";
      case 501:
        return "Not Implemented";
      case 502:
        return "Bad Gateway";
      case 503:
        return "Service Unavailable";
      case 504:
        return "Gateway Timeout";
      default:
        return "Unknown";
    }
}

HttpResponse
httpErrorResponse(int status, const std::string &message)
{
    JsonValue body = JsonValue::makeObject();
    body.set("error", JsonValue(message));
    body.set("status", JsonValue(static_cast<double>(status)));
    HttpResponse response;
    response.status = status;
    response.body = body.dump();
    response.body += '\n';
    return response;
}

JsonValue
httpErrorBody(const Error &error)
{
    const int status = httpStatusFor(error.category);
    JsonValue body = JsonValue::makeObject();
    body.set("error", JsonValue(error.message));
    body.set("category",
             JsonValue(std::string(
                 errorCategoryName(error.category))));
    body.set("status", JsonValue(static_cast<double>(status)));
    return body;
}

HttpResponse
httpErrorResponseFor(const Error &error)
{
    HttpResponse response;
    response.status = httpStatusFor(error.category);
    response.body = httpErrorBody(error).dump();
    response.body += '\n';
    return response;
}

} // namespace bwwall
