#include "server/http.hh"

#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <cctype>
#include <cerrno>
#include <cstdlib>

#include "server/json.hh"
#include "util/fault.hh"

namespace bwwall {

namespace {

constexpr std::size_t kReadChunk = 8192;

std::string
toLower(std::string text)
{
    std::transform(text.begin(), text.end(), text.begin(),
                   [](unsigned char c) {
                       return static_cast<char>(std::tolower(c));
                   });
    return text;
}

std::string
trim(const std::string &text)
{
    std::size_t begin = 0;
    std::size_t end = text.size();
    while (begin < end && (text[begin] == ' ' || text[begin] == '\t'))
        ++begin;
    while (end > begin &&
           (text[end - 1] == ' ' || text[end - 1] == '\t'))
        --end;
    return text.substr(begin, end - begin);
}

/** Splits the request head into lines on CRLF (tolerating bare LF). */
bool
nextLine(const std::string &head, std::size_t *cursor,
         std::string *line)
{
    if (*cursor >= head.size())
        return false;
    const std::size_t eol = head.find('\n', *cursor);
    std::size_t end = eol == std::string::npos ? head.size() : eol;
    std::size_t next = eol == std::string::npos ? head.size()
                                                : eol + 1;
    if (end > *cursor && head[end - 1] == '\r')
        --end;
    *line = head.substr(*cursor, end - *cursor);
    *cursor = next;
    return true;
}

} // namespace

HttpConnection::Fill
HttpConnection::fillMore()
{
    // The chaos harness's short read / peer reset.
    if (FAULT_POINT("http.read"))
        return Fill::Error;
    char chunk[kReadChunk];
    while (true) {
        const ssize_t got = ::recv(fd_, chunk, sizeof(chunk), 0);
        if (got > 0) {
            buffer_.append(chunk, static_cast<std::size_t>(got));
            return Fill::More;
        }
        if (got == 0)
            return Fill::Eof;
        if (errno == EINTR)
            continue;
        if (errno == EAGAIN || errno == EWOULDBLOCK)
            return Fill::Timeout;
        return Fill::Error;
    }
}

HttpReadStatus
HttpConnection::readRequest(HttpRequest *out)
{
    // Accumulate until the blank line ending the header block.
    std::size_t head_end;
    while (true) {
        head_end = buffer_.find("\r\n\r\n");
        std::size_t separator = 4;
        if (head_end == std::string::npos) {
            head_end = buffer_.find("\n\n");
            separator = 2;
        }
        if (head_end != std::string::npos) {
            head_end += separator;
            break;
        }
        if (buffer_.size() > limits_.maxHeaderBytes)
            return HttpReadStatus::TooLarge;
        switch (fillMore()) {
          case Fill::More:
            continue;
          case Fill::Eof:
            return buffer_.empty() ? HttpReadStatus::Closed
                                   : HttpReadStatus::Malformed;
          case Fill::Timeout:
            return HttpReadStatus::Timeout;
          case Fill::Error:
            return HttpReadStatus::Malformed;
        }
    }
    if (head_end > limits_.maxHeaderBytes)
        return HttpReadStatus::TooLarge;

    const std::string head = buffer_.substr(0, head_end);
    std::size_t cursor = 0;
    std::string line;
    if (!nextLine(head, &cursor, &line) || line.empty())
        return HttpReadStatus::Malformed;

    // Request line: METHOD SP TARGET SP VERSION.
    HttpRequest request;
    const std::size_t sp1 = line.find(' ');
    const std::size_t sp2 =
        sp1 == std::string::npos ? std::string::npos
                                 : line.find(' ', sp1 + 1);
    if (sp1 == std::string::npos || sp2 == std::string::npos)
        return HttpReadStatus::Malformed;
    request.method = line.substr(0, sp1);
    request.target = line.substr(sp1 + 1, sp2 - sp1 - 1);
    const std::string version = line.substr(sp2 + 1);
    if (request.method.empty() || request.target.empty())
        return HttpReadStatus::Malformed;
    if (version != "HTTP/1.1" && version != "HTTP/1.0")
        return HttpReadStatus::Malformed;
    request.keepAlive = version == "HTTP/1.1";

    const std::size_t question = request.target.find('?');
    if (question == std::string::npos) {
        request.path = request.target;
    } else {
        request.path = request.target.substr(0, question);
        request.query = request.target.substr(question + 1);
    }

    // Header fields.
    while (nextLine(head, &cursor, &line)) {
        if (line.empty())
            break;
        const std::size_t colon = line.find(':');
        if (colon == std::string::npos)
            return HttpReadStatus::Malformed;
        request.headers[toLower(line.substr(0, colon))] =
            trim(line.substr(colon + 1));
    }

    const auto connection = request.headers.find("connection");
    if (connection != request.headers.end()) {
        const std::string value = toLower(connection->second);
        if (value == "close")
            request.keepAlive = false;
        else if (value == "keep-alive")
            request.keepAlive = true;
    }

    if (request.headers.count("transfer-encoding") != 0)
        return HttpReadStatus::Unsupported;

    // Body: Content-Length bytes (0 when absent).
    std::size_t body_bytes = 0;
    const auto length = request.headers.find("content-length");
    if (length != request.headers.end()) {
        const std::string &text = length->second;
        if (text.empty() ||
            text.find_first_not_of("0123456789") !=
                std::string::npos)
            return HttpReadStatus::Malformed;
        char *end = nullptr;
        const unsigned long long parsed =
            std::strtoull(text.c_str(), &end, 10);
        if (end == nullptr || *end != '\0')
            return HttpReadStatus::Malformed;
        body_bytes = static_cast<std::size_t>(parsed);
    }
    if (body_bytes > limits_.maxBodyBytes)
        return HttpReadStatus::TooLarge;

    while (buffer_.size() < head_end + body_bytes) {
        switch (fillMore()) {
          case Fill::More:
            continue;
          case Fill::Eof:
            return HttpReadStatus::Malformed;
          case Fill::Timeout:
            return HttpReadStatus::Timeout;
          case Fill::Error:
            return HttpReadStatus::Malformed;
        }
    }
    request.body = buffer_.substr(head_end, body_bytes);
    buffer_.erase(0, head_end + body_bytes);
    *out = std::move(request);
    return HttpReadStatus::Ok;
}

bool
HttpConnection::writeResponse(const HttpResponse &response)
{
    std::string wire;
    wire.reserve(response.body.size() + 160);
    wire += "HTTP/1.1 ";
    wire += std::to_string(response.status);
    wire += ' ';
    wire += httpStatusText(response.status);
    wire += "\r\nContent-Type: ";
    wire += response.contentType;
    wire += "\r\nContent-Length: ";
    wire += std::to_string(response.body.size());
    wire += "\r\nConnection: ";
    wire += response.close ? "close" : "keep-alive";
    for (const auto &[name, value] : response.headers) {
        wire += "\r\n";
        wire += name;
        wire += ": ";
        wire += value;
    }
    wire += "\r\n\r\n";
    wire += response.body;

    // The chaos harness's peer reset mid-response.
    if (FAULT_POINT("http.write"))
        return false;

    const char *data = wire.data();
    std::size_t remaining = wire.size();
    while (remaining > 0) {
        // A firing "http.write.short" caps this send at one byte,
        // forcing the loop through its partial-write continuation —
        // exactly what a full socket buffer does.
        const std::size_t chunk =
            FAULT_POINT("http.write.short") ? 1 : remaining;
        const ssize_t wrote =
            ::send(fd_, data, chunk, MSG_NOSIGNAL);
        if (wrote < 0) {
            if (errno == EINTR)
                continue;
            return false;
        }
        data += wrote;
        remaining -= static_cast<std::size_t>(wrote);
    }
    return true;
}

const char *
httpStatusText(int status)
{
    switch (status) {
      case 200:
        return "OK";
      case 400:
        return "Bad Request";
      case 404:
        return "Not Found";
      case 405:
        return "Method Not Allowed";
      case 408:
        return "Request Timeout";
      case 413:
        return "Payload Too Large";
      case 422:
        return "Unprocessable Content";
      case 424:
        return "Failed Dependency";
      case 429:
        return "Too Many Requests";
      case 500:
        return "Internal Server Error";
      case 501:
        return "Not Implemented";
      case 502:
        return "Bad Gateway";
      case 503:
        return "Service Unavailable";
      case 504:
        return "Gateway Timeout";
      default:
        return "Unknown";
    }
}

HttpResponse
httpErrorResponse(int status, const std::string &message)
{
    JsonValue body = JsonValue::makeObject();
    body.set("error", JsonValue(message));
    body.set("status", JsonValue(static_cast<double>(status)));
    HttpResponse response;
    response.status = status;
    response.body = body.dump();
    response.body += '\n';
    return response;
}

HttpResponse
httpErrorResponseFor(const Error &error)
{
    const int status = httpStatusFor(error.category);
    JsonValue body = JsonValue::makeObject();
    body.set("error", JsonValue(error.message));
    body.set("category",
             JsonValue(std::string(
                 errorCategoryName(error.category))));
    body.set("status", JsonValue(static_cast<double>(status)));
    HttpResponse response;
    response.status = status;
    response.body = body.dump();
    response.body += '\n';
    return response;
}

} // namespace bwwall
