#include "mem/dram.hh"

#include <algorithm>

#include "util/logging.hh"
#include "util/units.hh"

namespace bwwall {

DramChannel::DramChannel(EventQueue &events, const DramConfig &config)
    : events_(events), config_(config)
{
    if (config_.banks == 0)
        fatal("DRAM channel requires at least one bank");
    if (!isPowerOfTwo(config_.banks))
        fatal("DRAM bank count must be a power of two");
    if (!isPowerOfTwo(config_.rowBytes) ||
        !isPowerOfTwo(config_.lineBytes) ||
        config_.lineBytes > config_.rowBytes) {
        fatal("DRAM row/line sizes must be powers of two with "
              "line <= row");
    }
    if (config_.tBurst == 0)
        fatal("DRAM burst time must be positive");
    if (config_.queueCapacity == 0)
        fatal("DRAM queue capacity must be positive");
    banks_.assign(config_.banks, Bank{});
}

unsigned
DramChannel::bankOf(Address address) const
{
    // Banks interleave at row granularity so sequential rows spread.
    return static_cast<unsigned>(
        (address / config_.rowBytes) & (config_.banks - 1));
}

std::uint64_t
DramChannel::rowOf(Address address) const
{
    return (address / config_.rowBytes) / config_.banks;
}

bool
DramChannel::request(Address address, EventQueue::Callback on_complete)
{
    if (queue_.size() >= config_.queueCapacity)
        return false;
    if (!on_complete)
        fatal("DRAM request without a completion callback");
    queue_.push_back(
        Request{address, events_.now(), std::move(on_complete)});
    tryDispatch();
    return true;
}

std::size_t
DramChannel::pickNext() const
{
    if (config_.scheduling == DramScheduling::FrFcfs) {
        for (std::size_t i = 0; i < queue_.size(); ++i) {
            const unsigned bank = bankOf(queue_[i].address);
            if (banks_[bank].rowOpen &&
                banks_[bank].openRow == rowOf(queue_[i].address)) {
                return i;
            }
        }
    }
    return 0; // oldest
}

void
DramChannel::tryDispatch()
{
    if (dispatchScheduled_ || queue_.empty())
        return;

    const std::size_t index = pickNext();
    Request request = std::move(queue_[index]);
    queue_.erase(queue_.begin() +
                 static_cast<std::ptrdiff_t>(index));

    Bank &bank = banks_[bankOf(request.address)];
    const std::uint64_t row = rowOf(request.address);

    // Row preparation (precharge/activate) serialises on the bank;
    // the CAS-to-data latency pipelines with bus transfers and only
    // delays the *completion*, not the bus (real DDR column commands
    // overlap in-flight bursts, so open-row hits stream burst-to-
    // burst at peak bandwidth).
    Tick prep;
    if (bank.rowOpen && bank.openRow == row) {
        ++stats_.rowHits;
        prep = 0;
    } else if (!bank.rowOpen) {
        ++stats_.rowMisses;
        prep = config_.tRcd;
    } else {
        ++stats_.rowConflicts;
        prep = config_.tRp + config_.tRcd;
    }

    const Tick now = events_.now();
    const Tick bank_data_ready = std::max(now, bank.readyAt) + prep;
    const Tick data_start = std::max(bank_data_ready, busFreeAt_);
    const Tick data_done = data_start + config_.tBurst;
    const Tick completion = data_done + config_.tCas;

    bank.rowOpen = true;
    bank.openRow = row;
    bank.readyAt = data_done;
    busFreeAt_ = data_done;

    ++stats_.requests;
    stats_.bytesTransferred += config_.lineBytes;
    stats_.busBusyCycles += config_.tBurst;
    stats_.totalServiceCycles += completion - request.arrival;

    events_.schedule(completion, std::move(request.onComplete));

    // The next scheduling decision happens when this transfer's data
    // phase begins, letting the chosen bank's preparation overlap the
    // current burst.
    dispatchScheduled_ = true;
    events_.schedule(std::max(data_start, now), [this] {
        dispatchScheduled_ = false;
        tryDispatch();
    });
}

double
DramChannel::achievedBandwidth() const
{
    const Tick elapsed = events_.now();
    if (elapsed == 0)
        return 0.0;
    return static_cast<double>(stats_.bytesTransferred) /
           static_cast<double>(elapsed);
}

double
DramChannel::peakBandwidth() const
{
    return static_cast<double>(config_.lineBytes) /
           static_cast<double>(config_.tBurst);
}

} // namespace bwwall
