/**
 * @file
 * Full-system multicore simulation: N trace-driven cores with
 * private caches sharing a multi-channel DRAM system.
 *
 * This is the integration layer that ties the repository's
 * substrates together — synthetic workloads, the cache model, and
 * the bank/row DRAM — into the experiment the paper's introduction
 * describes: adding cores to a chip whose off-chip memory cannot
 * keep up.
 */

#ifndef BWWALL_MEM_MULTICORE_SYSTEM_HH
#define BWWALL_MEM_MULTICORE_SYSTEM_HH

#include <functional>
#include <memory>
#include <vector>

#include "cache/set_assoc_cache.hh"
#include "mem/core_model.hh"
#include "mem/dram_system.hh"
#include "trace/trace_source.hh"

namespace bwwall {

/** One trace-driven core whose misses go to a shared DramSystem. */
class DramTraceCore
{
  public:
    /**
     * @param config Reuses TraceDrivenCoreConfig (the optional
     * second level applies before the DRAM).
     */
    DramTraceCore(EventQueue &events, DramSystem &dram,
                  std::unique_ptr<TraceSource> trace,
                  const TraceDrivenCoreConfig &config);

    /** Replays accesses through the caches only (no time). */
    void warm(std::uint64_t accesses);

    /** Schedules the core's first access. */
    void start();

    const CoreStats &stats() const { return stats_; }
    const SetAssociativeCache &cache() const { return *cache_; }

  private:
    void step();
    void finishAfter(Tick delay);
    void issuePending();
    void onTransferComplete();

    EventQueue &events_;
    DramSystem &dram_;
    std::unique_ptr<TraceSource> trace_;
    TraceDrivenCoreConfig config_;
    std::unique_ptr<SetAssociativeCache> cache_;
    std::unique_ptr<SetAssociativeCache> l2_;
    std::vector<Address> dirtyVictims_;
    std::vector<Address> pendingTransfers_;
    unsigned inFlight_ = 0;
    Tick issueTick_ = 0;
    Tick extraLatency_ = 0;
    CoreStats stats_;
};

/** Static parameters of a MulticoreSystem. */
struct MulticoreSystemConfig
{
    unsigned cores = 8;

    /** Per-core cache/latency configuration. */
    TraceDrivenCoreConfig core;

    /** Shared memory system. */
    DramSystemConfig dram;
};

/** Builds one core's trace; called with the core index. */
using TraceFactory =
    std::function<std::unique_ptr<TraceSource>(unsigned core)>;

/** N cores over a shared DRAM system. */
class MulticoreSystem
{
  public:
    MulticoreSystem(EventQueue &events,
                    const MulticoreSystemConfig &config,
                    const TraceFactory &trace_factory);

    /** Warms every core's caches. */
    void warm(std::uint64_t accesses_per_core);

    /** Starts every core. */
    void start();

    unsigned cores() const
    {
        return static_cast<unsigned>(cores_.size());
    }

    const DramTraceCore &core(unsigned index) const;
    DramSystem &dram() { return *dram_; }
    const DramSystem &dram() const { return *dram_; }

    /** Sum of completed accesses over all cores. */
    std::uint64_t totalCompletedAccesses() const;

  private:
    std::unique_ptr<DramSystem> dram_;
    std::vector<std::unique_ptr<DramTraceCore>> cores_;
};

} // namespace bwwall

#endif // BWWALL_MEM_MULTICORE_SYSTEM_HH
