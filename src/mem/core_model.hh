/**
 * @file
 * Closed-loop core models that drive the memory channel.
 *
 * SimpleCore abstracts a core as alternating compute bursts and
 * line-sized memory requests (the analytic workload used by the
 * bandwidth-saturation demonstration).  TraceDrivenCore instead runs
 * a synthetic trace through a private cache, so its request stream to
 * the channel carries the full power-law structure.
 */

#ifndef BWWALL_MEM_CORE_MODEL_HH
#define BWWALL_MEM_CORE_MODEL_HH

#include <cstdint>
#include <memory>
#include <vector>

#include "cache/set_assoc_cache.hh"
#include "mem/memory_channel.hh"
#include "trace/trace_source.hh"
#include "util/rng.hh"

namespace bwwall {

/** Progress counters common to the core models. */
struct CoreStats
{
    /** Completed compute+memory iterations (units of work). */
    std::uint64_t completedRequests = 0;
    /** Cycles spent blocked on memory (queueing + service). */
    std::uint64_t stallCycles = 0;
};

/** Parameters of a SimpleCore. */
struct SimpleCoreConfig
{
    /** Mean compute cycles between memory requests. */
    double meanComputeCycles = 200.0;

    /** Bytes per memory request (one cache line). */
    std::uint64_t requestBytes = 64;

    /**
     * Memory-level parallelism: independent compute/request loops
     * the core keeps in flight (MSHR-style overlap).  1 models a
     * fully blocking core.
     */
    unsigned outstandingRequests = 1;

    /** Seed for the compute-burst jitter. */
    std::uint64_t seed = 1;
};

/** Compute/request/stall loop core. */
class SimpleCore
{
  public:
    SimpleCore(EventQueue &events, MemoryChannel &channel,
               const SimpleCoreConfig &config);

    /** Schedules the core's first compute burst. */
    void start();

    const CoreStats &stats() const { return stats_; }

  private:
    void beginCompute();
    void issueRequest();

    EventQueue &events_;
    MemoryChannel &channel_;
    SimpleCoreConfig config_;
    Rng rng_;
    CoreStats stats_;
};

/** Parameters of a TraceDrivenCore. */
struct TraceDrivenCoreConfig
{
    /** Cycles consumed by a cache hit (and by issuing the access). */
    Tick hitCycles = 1;

    /** Private cache configuration. */
    CacheConfig cache;

    /**
     * Optional second-level cache between the private cache and the
     * channel — e.g. a large, slower DRAM cache (the paper's Section
     * 6.1 notes "possible access latency increases" as the cost of
     * DRAM caches; this models that trade-off).
     */
    bool l2Enabled = false;

    /** Second-level cache configuration. */
    CacheConfig l2;

    /** Latency of reaching the second-level cache, in cycles. */
    Tick l2HitCycles = 30;
};

/**
 * Core that replays a trace through a private cache (optionally
 * backed by a second-level cache); only the traffic that escapes the
 * last level travels to the channel, each transfer blocking the core.
 */
class TraceDrivenCore
{
  public:
    TraceDrivenCore(EventQueue &events, MemoryChannel &channel,
                    std::unique_ptr<TraceSource> trace,
                    const TraceDrivenCoreConfig &config);

    /**
     * Replays `accesses` trace references through the caches without
     * consuming simulated time or channel bandwidth, then clears the
     * cache statistics — standard warm-up before a timed run.
     */
    void warm(std::uint64_t accesses);

    /** Schedules the core's first access. */
    void start();

    const CoreStats &stats() const { return stats_; }
    const SetAssociativeCache &cache() const { return *cache_; }

    /** The second-level cache (must be enabled). */
    const SetAssociativeCache &l2() const;

  private:
    void step();
    void finishAfter(Tick delay);

    EventQueue &events_;
    MemoryChannel &channel_;
    std::unique_ptr<TraceSource> trace_;
    TraceDrivenCoreConfig config_;
    std::unique_ptr<SetAssociativeCache> cache_;
    std::unique_ptr<SetAssociativeCache> l2_;
    std::vector<Address> dirtyVictims_;
    CoreStats stats_;
};

} // namespace bwwall

#endif // BWWALL_MEM_CORE_MODEL_HH
