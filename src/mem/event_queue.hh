/**
 * @file
 * Minimal discrete-event simulation kernel.
 *
 * Events are (tick, callback) pairs executed in time order; ties run
 * in scheduling order so simulations are fully deterministic.
 */

#ifndef BWWALL_MEM_EVENT_QUEUE_HH
#define BWWALL_MEM_EVENT_QUEUE_HH

#include <cstdint>
#include <functional>
#include <queue>
#include <vector>

namespace bwwall {

/** Simulated time in cycles. */
using Tick = std::uint64_t;

/** Deterministic discrete-event scheduler. */
class EventQueue
{
  public:
    using Callback = std::function<void()>;

    /** Current simulated time. */
    Tick now() const { return now_; }

    /** Schedules a callback at an absolute tick >= now(). */
    void schedule(Tick when, Callback callback);

    /** Schedules a callback `delay` ticks from now. */
    void scheduleAfter(Tick delay, Callback callback);

    /** True when no events are pending. */
    bool empty() const { return events_.empty(); }

    std::size_t pendingEvents() const { return events_.size(); }

    /**
     * Runs the earliest event; returns false when none are pending.
     */
    bool runOne();

    /**
     * Runs events with tick <= limit; afterwards now() == limit
     * (unless the queue drained earlier, which leaves now() at the
     * last executed event).
     */
    void runUntil(Tick limit);

    /** Runs everything to completion. */
    void runAll();

  private:
    struct Event
    {
        Tick when;
        std::uint64_t sequence;
        Callback callback;
    };

    struct Later
    {
        bool
        operator()(const Event &a, const Event &b) const
        {
            if (a.when != b.when)
                return a.when > b.when;
            return a.sequence > b.sequence;
        }
    };

    Tick now_ = 0;
    std::uint64_t nextSequence_ = 0;
    std::priority_queue<Event, std::vector<Event>, Later> events_;
};

} // namespace bwwall

#endif // BWWALL_MEM_EVENT_QUEUE_HH
