#include "mem/event_queue.hh"

#include "util/error.hh"
#include "util/fault.hh"
#include "util/logging.hh"

namespace bwwall {

void
EventQueue::schedule(Tick when, Callback callback)
{
    if (when < now_)
        panic("event scheduled in the past: ", when, " < ", now_);
    if (!callback)
        panic("event scheduled without a callback");
    events_.push(Event{when, nextSequence_++, std::move(callback)});
}

void
EventQueue::scheduleAfter(Tick delay, Callback callback)
{
    schedule(now_ + delay, std::move(callback));
}

bool
EventQueue::runOne()
{
    if (events_.empty())
        return false;
    // Copy out before popping: the callback may schedule new events.
    Event event = events_.top();
    events_.pop();
    now_ = event.when;
    // The event is consumed (popped, clock advanced) but its work is
    // lost — the chaos harness's model of a dropped timer interrupt.
    if (FAULT_POINT("mem.event_dispatch")) {
        throw Errored(ErrorCategory::Faulted,
                      "injected fault 'mem.event_dispatch' at tick " +
                          std::to_string(event.when));
    }
    event.callback();
    return true;
}

void
EventQueue::runUntil(Tick limit)
{
    while (!events_.empty() && events_.top().when <= limit)
        runOne();
    if (now_ < limit)
        now_ = limit;
}

void
EventQueue::runAll()
{
    while (runOne()) {
    }
}

} // namespace bwwall
