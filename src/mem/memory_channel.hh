/**
 * @file
 * Off-chip memory channel with finite bandwidth and FIFO queueing.
 *
 * Models the paper's Section 1 argument quantitatively: once the rate
 * of memory requests exceeds what the channel can service, queueing
 * delay grows and per-core performance falls until the request rate
 * matches the available bandwidth.
 */

#ifndef BWWALL_MEM_MEMORY_CHANNEL_HH
#define BWWALL_MEM_MEMORY_CHANNEL_HH

#include <cstdint>

#include "mem/event_queue.hh"

namespace bwwall {

/** Static parameters of a MemoryChannel. */
struct MemoryChannelConfig
{
    /**
     * Peak transfer bandwidth in bytes per cycle.  A 64-byte line at
     * 4 bytes/cycle occupies the channel for 16 cycles.
     */
    double bytesPerCycle = 4.0;

    /** Fixed access latency added to every request (DRAM + wires). */
    Tick fixedLatencyCycles = 100;
};

/** Aggregate channel statistics. */
struct MemoryChannelStats
{
    std::uint64_t requests = 0;
    std::uint64_t bytesTransferred = 0;
    /** Cycles requests spent waiting for the channel (not service). */
    std::uint64_t totalQueueingCycles = 0;
    /** Cycles the channel spent actively transferring. */
    std::uint64_t busyCycles = 0;

    double
    averageQueueingDelay() const
    {
        return requests == 0
                   ? 0.0
                   : static_cast<double>(totalQueueingCycles) /
                         static_cast<double>(requests);
    }
};

/** FIFO-serviced bandwidth-limited memory channel. */
class MemoryChannel
{
  public:
    MemoryChannel(EventQueue &events, const MemoryChannelConfig &config);

    /**
     * Enqueues a transfer of `bytes` and invokes on_complete when the
     * data has fully arrived (service + fixed latency).
     */
    void request(std::uint64_t bytes, EventQueue::Callback on_complete);

    const MemoryChannelConfig &config() const { return config_; }
    const MemoryChannelStats &stats() const { return stats_; }

    /** Fraction of elapsed time the channel was busy. */
    double utilization() const;

    /** Tick at which the channel next becomes free. */
    Tick nextFreeTick() const { return nextFree_; }

  private:
    EventQueue &events_;
    MemoryChannelConfig config_;
    MemoryChannelStats stats_;
    Tick nextFree_ = 0;
};

} // namespace bwwall

#endif // BWWALL_MEM_MEMORY_CHANNEL_HH
