#include "mem/system_sim.hh"

#include <algorithm>
#include <chrono>
#include <memory>

#include "util/logging.hh"
#include "util/metrics.hh"
#include "util/thread_pool.hh"
#include "util/trace_span.hh"

namespace bwwall {

namespace {

/** Simulates one core-count point; fully self-contained. */
SaturationPoint
simulatePoint(const SaturationSweepParams &params, unsigned cores)
{
    Span span("saturation.point", cores);
    EventQueue events;
    MemoryChannel channel(events, params.channel);
    std::vector<std::unique_ptr<SimpleCore>> core_models;
    core_models.reserve(cores);
    for (unsigned core = 0; core < cores; ++core) {
        SimpleCoreConfig config = params.coreTemplate;
        config.seed = params.coreTemplate.seed + core * 7919 + 1;
        core_models.push_back(std::make_unique<SimpleCore>(
            events, channel, config));
        core_models.back()->start();
    }
    events.runUntil(params.simulatedCycles);

    std::uint64_t completed = 0;
    for (const auto &core : core_models)
        completed += core->stats().completedRequests;

    SaturationPoint point;
    point.cores = cores;
    point.aggregateThroughput =
        static_cast<double>(completed) * 1000.0 /
        static_cast<double>(params.simulatedCycles);
    point.perCoreThroughput =
        point.aggregateThroughput / static_cast<double>(cores);
    point.channelUtilization = channel.utilization();
    point.averageQueueingDelay =
        channel.stats().averageQueueingDelay();
    return point;
}

} // namespace

std::vector<SaturationPoint>
runSaturationSweep(const SaturationSweepParams &params)
{
    if (params.coreCounts.empty())
        fatal("saturation sweep requires at least one core count");
    for (const unsigned cores : params.coreCounts) {
        if (cores == 0)
            fatal("core count must be positive");
    }

    Span span("saturation.sweep");
    const auto start = std::chrono::steady_clock::now();
    // One task per core-count point.  Each point builds its own
    // event queue, channel, and cores from per-point seeds, so the
    // parallel sweep is bit-identical to the serial one.
    std::vector<SaturationPoint> points = parallelMap(
        params.coreCounts.size(), params.jobs,
        [&params](std::size_t i) {
            return simulatePoint(params, params.coreCounts[i]);
        });
    const double wall = std::chrono::duration<double>(
        std::chrono::steady_clock::now() - start).count();

    if (params.metrics != nullptr) {
        MetricsRegistry &metrics = *params.metrics;
        metrics.addCounter("saturation.points", points.size());
        metrics.observeTimer("saturation.sweep", wall);
        const double simulated =
            static_cast<double>(params.simulatedCycles) *
            static_cast<double>(points.size());
        if (wall > 0.0)
            metrics.setGauge("saturation.sim_cycles_per_second",
                             simulated / wall);
        double peak_throughput = 0.0;
        double peak_utilization = 0.0;
        double peak_delay = 0.0;
        for (const SaturationPoint &point : points) {
            peak_throughput = std::max(peak_throughput,
                                       point.aggregateThroughput);
            peak_utilization = std::max(peak_utilization,
                                        point.channelUtilization);
            peak_delay = std::max(peak_delay,
                                  point.averageQueueingDelay);
        }
        metrics.setGauge("saturation.peak_aggregate_throughput",
                         peak_throughput);
        metrics.setGauge("saturation.peak_channel_utilization",
                         peak_utilization);
        metrics.setGauge("saturation.peak_queueing_delay",
                         peak_delay);
    }
    return points;
}

void
runSaturationSweepInto(const SaturationSweepParams &params,
                       const SaturationBatchOut &out)
{
    const std::vector<SaturationPoint> points =
        runSaturationSweep(params);
    for (std::size_t i = 0; i < points.size(); ++i) {
        out.cores[i] = points[i].cores;
        out.aggregateThroughput[i] = points[i].aggregateThroughput;
        out.perCoreThroughput[i] = points[i].perCoreThroughput;
        out.channelUtilization[i] = points[i].channelUtilization;
        out.averageQueueingDelay[i] = points[i].averageQueueingDelay;
    }
}

double
channelSaturationThroughput(const MemoryChannelConfig &channel,
                            std::uint64_t request_bytes)
{
    if (request_bytes == 0)
        fatal("request size must be positive");
    return channel.bytesPerCycle * 1000.0 /
           static_cast<double>(request_bytes);
}

} // namespace bwwall
