#include "mem/system_sim.hh"

#include <memory>

#include "util/logging.hh"

namespace bwwall {

std::vector<SaturationPoint>
runSaturationSweep(const SaturationSweepParams &params)
{
    if (params.coreCounts.empty())
        fatal("saturation sweep requires at least one core count");

    std::vector<SaturationPoint> points;
    points.reserve(params.coreCounts.size());

    for (const unsigned cores : params.coreCounts) {
        if (cores == 0)
            fatal("core count must be positive");

        EventQueue events;
        MemoryChannel channel(events, params.channel);
        std::vector<std::unique_ptr<SimpleCore>> core_models;
        core_models.reserve(cores);
        for (unsigned core = 0; core < cores; ++core) {
            SimpleCoreConfig config = params.coreTemplate;
            config.seed = params.coreTemplate.seed + core * 7919 + 1;
            core_models.push_back(std::make_unique<SimpleCore>(
                events, channel, config));
            core_models.back()->start();
        }
        events.runUntil(params.simulatedCycles);

        std::uint64_t completed = 0;
        for (const auto &core : core_models)
            completed += core->stats().completedRequests;

        SaturationPoint point;
        point.cores = cores;
        point.aggregateThroughput =
            static_cast<double>(completed) * 1000.0 /
            static_cast<double>(params.simulatedCycles);
        point.perCoreThroughput =
            point.aggregateThroughput / static_cast<double>(cores);
        point.channelUtilization = channel.utilization();
        point.averageQueueingDelay =
            channel.stats().averageQueueingDelay();
        points.push_back(point);
    }
    return points;
}

double
channelSaturationThroughput(const MemoryChannelConfig &channel,
                            std::uint64_t request_bytes)
{
    if (request_bytes == 0)
        fatal("request size must be positive");
    return channel.bytesPerCycle * 1000.0 /
           static_cast<double>(request_bytes);
}

} // namespace bwwall
