#include "mem/multicore_system.hh"

#include "util/logging.hh"

namespace bwwall {

namespace {

/** Retry interval when a DRAM controller queue refuses a request. */
constexpr Tick kRetryCycles = 16;

} // namespace

DramTraceCore::DramTraceCore(EventQueue &events, DramSystem &dram,
                             std::unique_ptr<TraceSource> trace,
                             const TraceDrivenCoreConfig &config)
    : events_(events), dram_(dram), trace_(std::move(trace)),
      config_(config)
{
    if (!trace_)
        fatal("DRAM trace core requires a trace");
    cache_ = std::make_unique<SetAssociativeCache>(config_.cache);
    if (config_.l2Enabled)
        l2_ = std::make_unique<SetAssociativeCache>(config_.l2);
    cache_->setEvictionCallback(
        [this](const EvictionRecord &record) {
            if (record.dirty)
                dirtyVictims_.push_back(record.lineAddress);
        });
}

void
DramTraceCore::warm(std::uint64_t accesses)
{
    for (std::uint64_t i = 0; i < accesses; ++i) {
        const MemoryAccess access = trace_->next();
        dirtyVictims_.clear();
        const AccessOutcome outcome = cache_->access(access);
        if (!l2_)
            continue;
        for (const Address victim : dirtyVictims_)
            l2_->access({victim, AccessType::Write, access.thread});
        if (outcome.bytesFetched > 0) {
            MemoryAccess fill = access;
            fill.type = AccessType::Read;
            l2_->access(fill);
        }
    }
    cache_->resetStats();
    if (l2_)
        l2_->resetStats();
}

void
DramTraceCore::start()
{
    events_.scheduleAfter(config_.hitCycles, [this] { step(); });
}

void
DramTraceCore::finishAfter(Tick delay)
{
    ++stats_.completedRequests;
    events_.scheduleAfter(delay, [this] { step(); });
}

void
DramTraceCore::step()
{
    const MemoryAccess access = trace_->next();
    dirtyVictims_.clear();
    const AccessOutcome outcome = cache_->access(access);
    if (outcome.bytesFetched + outcome.bytesWrittenBack == 0) {
        // Pure first-level hit: no lower level is touched.
        finishAfter(config_.hitCycles);
        return;
    }

    // Collect the line transfers this access caused.
    pendingTransfers_.clear();
    extraLatency_ = 0;
    const Address line_mask = ~Address{config_.cache.lineBytes - 1};
    if (l2_) {
        extraLatency_ = config_.l2HitCycles;
        for (const Address victim : dirtyVictims_) {
            std::vector<Address> l2_victims;
            l2_->setEvictionCallback(
                [&l2_victims](const EvictionRecord &record) {
                    if (record.dirty)
                        l2_victims.push_back(record.lineAddress);
                });
            l2_->access({victim, AccessType::Write, access.thread});
            l2_->setEvictionCallback(nullptr);
            for (const Address l2_victim : l2_victims)
                pendingTransfers_.push_back(l2_victim);
        }
        if (outcome.bytesFetched > 0) {
            std::vector<Address> l2_victims;
            l2_->setEvictionCallback(
                [&l2_victims](const EvictionRecord &record) {
                    if (record.dirty)
                        l2_victims.push_back(record.lineAddress);
                });
            MemoryAccess fill = access;
            fill.type = AccessType::Read;
            const AccessOutcome l2_outcome = l2_->access(fill);
            l2_->setEvictionCallback(nullptr);
            for (const Address l2_victim : l2_victims)
                pendingTransfers_.push_back(l2_victim);
            if (l2_outcome.bytesFetched > 0)
                pendingTransfers_.push_back(access.address &
                                            line_mask);
        }
    } else {
        for (const Address victim : dirtyVictims_)
            pendingTransfers_.push_back(victim);
        if (outcome.bytesFetched > 0)
            pendingTransfers_.push_back(access.address & line_mask);
    }

    if (pendingTransfers_.empty()) {
        // The second level absorbed every transfer: pay its latency.
        stats_.stallCycles += extraLatency_;
        finishAfter(config_.hitCycles + extraLatency_);
        return;
    }

    issueTick_ = events_.now();
    inFlight_ = 0;
    issuePending();
}

void
DramTraceCore::issuePending()
{
    while (!pendingTransfers_.empty()) {
        const Address address = pendingTransfers_.back();
        const bool accepted = dram_.request(
            address, [this] { onTransferComplete(); });
        if (!accepted) {
            // Controller queue full: retry shortly.
            events_.scheduleAfter(kRetryCycles,
                                  [this] { issuePending(); });
            return;
        }
        pendingTransfers_.pop_back();
        ++inFlight_;
    }
}

void
DramTraceCore::onTransferComplete()
{
    if (inFlight_ == 0)
        panic("transfer completion without an in-flight request");
    --inFlight_;
    if (inFlight_ == 0 && pendingTransfers_.empty()) {
        stats_.stallCycles +=
            events_.now() - issueTick_ + extraLatency_;
        finishAfter(config_.hitCycles + extraLatency_);
    }
}

MulticoreSystem::MulticoreSystem(EventQueue &events,
                                 const MulticoreSystemConfig &config,
                                 const TraceFactory &trace_factory)
{
    if (config.cores == 0)
        fatal("multicore system requires at least one core");
    if (!trace_factory)
        fatal("multicore system requires a trace factory");

    dram_ = std::make_unique<DramSystem>(events, config.dram);
    for (unsigned index = 0; index < config.cores; ++index) {
        auto trace = trace_factory(index);
        if (!trace)
            fatal("trace factory returned no trace for core ", index);
        cores_.push_back(std::make_unique<DramTraceCore>(
            events, *dram_, std::move(trace), config.core));
    }
}

void
MulticoreSystem::warm(std::uint64_t accesses_per_core)
{
    for (const auto &core_ptr : cores_)
        core_ptr->warm(accesses_per_core);
}

void
MulticoreSystem::start()
{
    for (const auto &core_ptr : cores_)
        core_ptr->start();
}

const DramTraceCore &
MulticoreSystem::core(unsigned index) const
{
    if (index >= cores_.size())
        fatal("core index out of range: ", index);
    return *cores_[index];
}

std::uint64_t
MulticoreSystem::totalCompletedAccesses() const
{
    std::uint64_t total = 0;
    for (const auto &core_ptr : cores_)
        total += core_ptr->stats().completedRequests;
    return total;
}

} // namespace bwwall
