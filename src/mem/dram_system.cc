#include "mem/dram_system.hh"

#include "util/logging.hh"
#include "util/units.hh"

namespace bwwall {

DramSystem::DramSystem(EventQueue &events,
                       const DramSystemConfig &config)
    : config_(config)
{
    if (config_.channels == 0 || !isPowerOfTwo(config_.channels))
        fatal("DRAM system needs a power-of-two channel count");
    if (!isPowerOfTwo(config_.interleaveBytes) ||
        config_.interleaveBytes < config_.channel.lineBytes) {
        fatal("interleave granularity must be a power of two >= the "
              "line size");
    }
    interleaveShift_ = floorLog2(config_.interleaveBytes);
    for (unsigned i = 0; i < config_.channels; ++i) {
        channels_.push_back(
            std::make_unique<DramChannel>(events, config_.channel));
    }
}

unsigned
DramSystem::channelOf(Address address) const
{
    return static_cast<unsigned>((address >> interleaveShift_) &
                                 (channels_.size() - 1));
}

bool
DramSystem::request(Address address, EventQueue::Callback on_complete)
{
    return channels_[channelOf(address)]->request(
        address, std::move(on_complete));
}

const DramChannel &
DramSystem::channel(unsigned index) const
{
    if (index >= channels_.size())
        fatal("DRAM channel index out of range: ", index);
    return *channels_[index];
}

DramStats
DramSystem::aggregateStats() const
{
    DramStats total;
    for (const auto &channel_ptr : channels_) {
        const DramStats &stats = channel_ptr->stats();
        total.requests += stats.requests;
        total.rowHits += stats.rowHits;
        total.rowMisses += stats.rowMisses;
        total.rowConflicts += stats.rowConflicts;
        total.bytesTransferred += stats.bytesTransferred;
        total.busBusyCycles += stats.busBusyCycles;
        total.totalServiceCycles += stats.totalServiceCycles;
    }
    return total;
}

double
DramSystem::achievedBandwidth() const
{
    double total = 0.0;
    for (const auto &channel_ptr : channels_)
        total += channel_ptr->achievedBandwidth();
    return total;
}

double
DramSystem::peakBandwidth() const
{
    double total = 0.0;
    for (const auto &channel_ptr : channels_)
        total += channel_ptr->peakBandwidth();
    return total;
}

} // namespace bwwall
