/**
 * @file
 * Bank- and row-aware DRAM channel model.
 *
 * The paper's bandwidth envelope is a *peak* number; real memory
 * systems deliver an access-pattern-dependent fraction of it because
 * row misses serialise precharge/activate latencies behind the data
 * bus.  This model adds the structure needed to study that gap:
 * banks with open rows, DDR-style timing (tRP/tRCD/tCAS/burst), and
 * either FCFS or FR-FCFS (row-hit-first) scheduling.
 *
 * Simplifications (documented, tested): the data bus is the only
 * shared resource modelled between banks — bank preparation overlaps
 * other banks' transfers, as in real parts, but command-bus and
 * refresh slots are ignored; all requests move whole lines.
 */

#ifndef BWWALL_MEM_DRAM_HH
#define BWWALL_MEM_DRAM_HH

#include <cstdint>
#include <deque>
#include <vector>

#include "mem/event_queue.hh"
#include "trace/access.hh"

namespace bwwall {

/** Scheduling policy of the DRAM controller. */
enum class DramScheduling : std::uint8_t
{
    Fcfs,   ///< strictly oldest-first
    FrFcfs, ///< row hits first, then oldest-first
};

/** Static parameters of a DramChannel. */
struct DramConfig
{
    /** Row-precharge latency, cycles. */
    Tick tRp = 14;

    /** Row-activate (RAS-to-CAS) latency, cycles. */
    Tick tRcd = 14;

    /** Column-access latency, cycles. */
    Tick tCas = 14;

    /** Data-bus occupancy of one line transfer, cycles. */
    Tick tBurst = 8;

    /** Number of banks. */
    unsigned banks = 8;

    /** Row (page) size in bytes. */
    std::uint32_t rowBytes = 8192;

    /** Line size in bytes (one request = one line). */
    std::uint32_t lineBytes = 64;

    DramScheduling scheduling = DramScheduling::FrFcfs;

    /** Maximum queued requests before request() refuses. */
    std::size_t queueCapacity = 64;
};

/** Aggregate DRAM statistics. */
struct DramStats
{
    std::uint64_t requests = 0;
    std::uint64_t rowHits = 0;
    std::uint64_t rowMisses = 0;    ///< bank idle/closed row
    std::uint64_t rowConflicts = 0; ///< different row was open
    std::uint64_t bytesTransferred = 0;
    std::uint64_t busBusyCycles = 0;
    std::uint64_t totalServiceCycles = 0; ///< arrival -> data done

    double
    rowHitRate() const
    {
        return requests == 0 ? 0.0
                             : static_cast<double>(rowHits) /
                                   static_cast<double>(requests);
    }

    double
    averageServiceCycles() const
    {
        return requests == 0
                   ? 0.0
                   : static_cast<double>(totalServiceCycles) /
                         static_cast<double>(requests);
    }
};

/** Event-driven single-channel DRAM with open-row banks. */
class DramChannel
{
  public:
    DramChannel(EventQueue &events, const DramConfig &config);

    /**
     * Enqueues a line read/write; on_complete fires when the data
     * transfer finishes.  Returns false (and does nothing) when the
     * controller queue is full — callers should retry after a
     * completion.
     */
    bool request(Address address, EventQueue::Callback on_complete);

    const DramConfig &config() const { return config_; }
    const DramStats &stats() const { return stats_; }

    /** Pending (not yet dispatched) requests. */
    std::size_t queuedRequests() const { return queue_.size(); }

    /** Achieved bus bandwidth in bytes/cycle since construction. */
    double achievedBandwidth() const;

    /** Peak bus bandwidth in bytes/cycle (line / burst). */
    double peakBandwidth() const;

    /** Bank and row of an address (exposed for tests). */
    unsigned bankOf(Address address) const;
    std::uint64_t rowOf(Address address) const;

  private:
    struct Request
    {
        Address address;
        Tick arrival;
        EventQueue::Callback onComplete;
    };

    struct Bank
    {
        bool rowOpen = false;
        std::uint64_t openRow = 0;
        Tick readyAt = 0; ///< earliest tick a new CAS may issue
    };

    void tryDispatch();
    std::size_t pickNext() const;

    EventQueue &events_;
    DramConfig config_;
    DramStats stats_;
    std::vector<Bank> banks_;
    std::deque<Request> queue_;
    Tick busFreeAt_ = 0;
    bool dispatchScheduled_ = false;
};

} // namespace bwwall

#endif // BWWALL_MEM_DRAM_HH
