#include "mem/memory_channel.hh"

#include <algorithm>
#include <cmath>

#include "util/logging.hh"

namespace bwwall {

MemoryChannel::MemoryChannel(EventQueue &events,
                             const MemoryChannelConfig &config)
    : events_(events), config_(config)
{
    if (config_.bytesPerCycle <= 0.0)
        fatal("memory channel bandwidth must be positive");
}

void
MemoryChannel::request(std::uint64_t bytes,
                       EventQueue::Callback on_complete)
{
    if (bytes == 0)
        fatal("memory channel request of zero bytes");

    const auto service = static_cast<Tick>(std::ceil(
        static_cast<double>(bytes) / config_.bytesPerCycle));
    const Tick start = std::max(events_.now(), nextFree_);
    const Tick done = start + service;

    ++stats_.requests;
    stats_.bytesTransferred += bytes;
    stats_.totalQueueingCycles += start - events_.now();
    stats_.busyCycles += service;
    nextFree_ = done;

    events_.schedule(done + config_.fixedLatencyCycles,
                     std::move(on_complete));
}

double
MemoryChannel::utilization() const
{
    const Tick elapsed = events_.now();
    if (elapsed == 0)
        return 0.0;
    return std::min(1.0, static_cast<double>(stats_.busyCycles) /
                             static_cast<double>(elapsed));
}

} // namespace bwwall
