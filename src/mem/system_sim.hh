/**
 * @file
 * Whole-system throughput simulation: N cores sharing one memory
 * channel, swept over the core count to expose the bandwidth wall.
 */

#ifndef BWWALL_MEM_SYSTEM_SIM_HH
#define BWWALL_MEM_SYSTEM_SIM_HH

#include <cstdint>
#include <vector>

#include "mem/core_model.hh"

namespace bwwall {

class MetricsRegistry;

/** Parameters of a saturation sweep. */
struct SaturationSweepParams
{
    /** Core counts to simulate. */
    std::vector<unsigned> coreCounts = {1, 2, 4, 8, 16, 32, 64};

    /** Per-core behaviour template (seed is varied per core). */
    SimpleCoreConfig coreTemplate;

    /** Shared channel parameters. */
    MemoryChannelConfig channel;

    /** Simulated duration per point, in cycles. */
    Tick simulatedCycles = 2000000;

    /**
     * Worker threads simulating points concurrently; 0 defers to
     * BWWALL_JOBS / hardware_concurrency().  Every point is an
     * independent simulation with its own seeds, so the results are
     * bit-identical for any job count.
     */
    unsigned jobs = 0;

    /** Optional sink for run metrics ("saturation.*"); may be null. */
    MetricsRegistry *metrics = nullptr;
};

/** Result of one core-count point. */
struct SaturationPoint
{
    unsigned cores = 0;
    /** Work units completed per 1000 cycles, summed over cores. */
    double aggregateThroughput = 0.0;
    /** Work units per 1000 cycles per core. */
    double perCoreThroughput = 0.0;
    /** Fraction of time the channel was transferring. */
    double channelUtilization = 0.0;
    /** Mean cycles a request waited before service began. */
    double averageQueueingDelay = 0.0;
};

/**
 * Runs the sweep.  Each point builds a fresh event queue, channel,
 * and cores, then simulates for the configured duration.
 */
std::vector<SaturationPoint> runSaturationSweep(
    const SaturationSweepParams &params);

/**
 * Caller-owned output columns of a saturation sweep, one entry per
 * params.coreCounts element; field meanings match SaturationPoint
 * member for member.  The SoA twin of the sweep for contiguous-buffer
 * consumers (benches, the batch-model regression gates).
 */
struct SaturationBatchOut
{
    unsigned *cores = nullptr;
    double *aggregateThroughput = nullptr;
    double *perCoreThroughput = nullptr;
    double *channelUtilization = nullptr;
    double *averageQueueingDelay = nullptr;
};

/**
 * runSaturationSweep() scattered into caller-owned columns.  Results
 * and metrics are bit-identical to the vector form; every pointer in
 * `out` must reference at least params.coreCounts.size() elements.
 */
void runSaturationSweepInto(const SaturationSweepParams &params,
                            const SaturationBatchOut &out);

/**
 * Analytic saturation throughput of the channel, in work units per
 * 1000 cycles: bandwidth divided by bytes per work unit.
 */
double channelSaturationThroughput(const MemoryChannelConfig &channel,
                                   std::uint64_t request_bytes);

} // namespace bwwall

#endif // BWWALL_MEM_SYSTEM_SIM_HH
