/**
 * @file
 * Multi-channel DRAM system.
 *
 * The paper's Section 6.2 lists the industry's two levers for raw
 * bandwidth: faster interfaces and *more channels* (Power6 doubled
 * its memory controllers; Niagara2 moved to FB-DIMM).  This wraps N
 * independent DramChannels behind line-granular address interleaving
 * so channel-count studies are one parameter.
 */

#ifndef BWWALL_MEM_DRAM_SYSTEM_HH
#define BWWALL_MEM_DRAM_SYSTEM_HH

#include <memory>
#include <vector>

#include "mem/dram.hh"

namespace bwwall {

/** Static parameters of a DramSystem. */
struct DramSystemConfig
{
    /** Number of channels (power of two). */
    unsigned channels = 2;

    /** Per-channel configuration. */
    DramConfig channel;

    /**
     * Interleave granularity in bytes (power of two, >= line size).
     * Line-granular interleaving spreads streams across channels;
     * row-granular preserves row locality per channel.
     */
    std::uint32_t interleaveBytes = 64;
};

/** Address-interleaved bundle of DRAM channels. */
class DramSystem
{
  public:
    DramSystem(EventQueue &events, const DramSystemConfig &config);

    /**
     * Routes the line to its channel; false when that channel's
     * queue is full.
     */
    bool request(Address address, EventQueue::Callback on_complete);

    const DramSystemConfig &config() const { return config_; }

    unsigned channels() const
    {
        return static_cast<unsigned>(channels_.size());
    }

    /** Which channel services the address (exposed for tests). */
    unsigned channelOf(Address address) const;

    const DramChannel &channel(unsigned index) const;

    /** Sums of the per-channel statistics. */
    DramStats aggregateStats() const;

    /** Achieved bandwidth summed over channels, bytes/cycle. */
    double achievedBandwidth() const;

    /** Peak bandwidth summed over channels, bytes/cycle. */
    double peakBandwidth() const;

  private:
    DramSystemConfig config_;
    std::vector<std::unique_ptr<DramChannel>> channels_;
    unsigned interleaveShift_;
};

} // namespace bwwall

#endif // BWWALL_MEM_DRAM_SYSTEM_HH
