#include "mem/core_model.hh"

#include <cmath>

#include "util/logging.hh"

namespace bwwall {

SimpleCore::SimpleCore(EventQueue &events, MemoryChannel &channel,
                       const SimpleCoreConfig &config)
    : events_(events), channel_(channel), config_(config),
      rng_(config.seed)
{
    if (config_.meanComputeCycles < 0.0)
        fatal("mean compute cycles must be non-negative");
    if (config_.requestBytes == 0)
        fatal("request size must be positive");
    if (config_.outstandingRequests == 0)
        fatal("a core needs at least one outstanding request slot");
}

void
SimpleCore::start()
{
    // Each MSHR-style slot runs its own compute/request loop; they
    // only interact through channel contention.
    for (unsigned slot = 0; slot < config_.outstandingRequests; ++slot)
        beginCompute();
}

void
SimpleCore::beginCompute()
{
    // Exponential-ish jitter around the mean keeps cores out of
    // lockstep without changing the average rate.
    const double jitter = 0.5 + rng_.nextDouble();
    const auto burst = static_cast<Tick>(
        std::llround(config_.meanComputeCycles * jitter));
    events_.scheduleAfter(burst, [this] { issueRequest(); });
}

void
SimpleCore::issueRequest()
{
    const Tick issued = events_.now();
    channel_.request(config_.requestBytes, [this, issued] {
        ++stats_.completedRequests;
        stats_.stallCycles += events_.now() - issued;
        beginCompute();
    });
}

TraceDrivenCore::TraceDrivenCore(EventQueue &events,
                                 MemoryChannel &channel,
                                 std::unique_ptr<TraceSource> trace,
                                 const TraceDrivenCoreConfig &config)
    : events_(events), channel_(channel), trace_(std::move(trace)),
      config_(config)
{
    if (!trace_)
        fatal("trace-driven core requires a trace");
    cache_ = std::make_unique<SetAssociativeCache>(config_.cache);
    if (config_.l2Enabled) {
        l2_ = std::make_unique<SetAssociativeCache>(config_.l2);
        // Dirty first-level victims become second-level writes at
        // the *victim's* address.
        cache_->setEvictionCallback(
            [this](const EvictionRecord &record) {
                if (record.dirty)
                    dirtyVictims_.push_back(record.lineAddress);
            });
    }
}

const SetAssociativeCache &
TraceDrivenCore::l2() const
{
    if (!l2_)
        fatal("trace-driven core has no second-level cache");
    return *l2_;
}

void
TraceDrivenCore::warm(std::uint64_t accesses)
{
    for (std::uint64_t i = 0; i < accesses; ++i) {
        const MemoryAccess access = trace_->next();
        dirtyVictims_.clear();
        const AccessOutcome outcome = cache_->access(access);
        if (!l2_)
            continue;
        for (const Address victim : dirtyVictims_)
            l2_->access({victim, AccessType::Write, access.thread});
        if (outcome.bytesFetched > 0) {
            MemoryAccess fill = access;
            fill.type = AccessType::Read;
            l2_->access(fill);
        }
    }
    cache_->resetStats();
    if (l2_)
        l2_->resetStats();
}

void
TraceDrivenCore::start()
{
    events_.scheduleAfter(config_.hitCycles, [this] { step(); });
}

void
TraceDrivenCore::finishAfter(Tick delay)
{
    ++stats_.completedRequests;
    events_.scheduleAfter(delay, [this] { step(); });
}

void
TraceDrivenCore::step()
{
    const MemoryAccess access = trace_->next();
    dirtyVictims_.clear();
    const AccessOutcome outcome = cache_->access(access);
    std::uint64_t bytes =
        outcome.bytesFetched + outcome.bytesWrittenBack;
    if (bytes == 0) {
        // Pure first-level hit: continue after the hit latency.
        finishAfter(config_.hitCycles);
        return;
    }

    Tick level_latency = 0;
    if (l2_) {
        // The first-level traffic is serviced by the second level;
        // only what escapes it reaches the channel.
        level_latency = config_.l2HitCycles;
        std::uint64_t l2_bytes = 0;
        for (const Address victim : dirtyVictims_) {
            const AccessOutcome wb = l2_->access(
                {victim, AccessType::Write, access.thread});
            l2_bytes += wb.bytesFetched + wb.bytesWrittenBack;
        }
        if (outcome.bytesFetched > 0) {
            MemoryAccess fill = access;
            fill.type = AccessType::Read;
            const AccessOutcome l2_outcome = l2_->access(fill);
            l2_bytes +=
                l2_outcome.bytesFetched + l2_outcome.bytesWrittenBack;
        }
        bytes = l2_bytes;
        if (bytes == 0) {
            // Second-level hit: pay its latency, no channel traffic.
            stats_.stallCycles += level_latency;
            finishAfter(config_.hitCycles + level_latency);
            return;
        }
    }

    const Tick issued = events_.now();
    channel_.request(bytes, [this, issued, level_latency] {
        stats_.stallCycles += events_.now() - issued + level_latency;
        finishAfter(config_.hitCycles + level_latency);
    });
}

} // namespace bwwall
