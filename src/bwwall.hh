/**
 * @file
 * Umbrella header: the whole bwwall public API.
 *
 * Fine-grained headers (e.g. "model/bandwidth_wall.hh") keep builds
 * lean; include this one for exploratory code and examples.
 *
 * 2.0 removed the pre-2.0 MissCurveSweepParams / measureMissCurve
 * shims; use the MissCurveSpec / estimateMissCurve engine in
 * cache/miss_curve_estimator.hh.  The HttpClient method-per-shape
 * overloads remain for one release as wrappers over perform().
 */

#ifndef BWWALL_BWWALL_HH
#define BWWALL_BWWALL_HH

// Library version.
#define BWWALL_VERSION_MAJOR 2
#define BWWALL_VERSION_MINOR 0
#define BWWALL_VERSION_PATCH 0

#include "cache/coherent_system.hh"
#include "cache/compressed_cache.hh"
#include "cache/hierarchy.hh"
#include "cache/miss_curve.hh"
#include "cache/miss_curve_estimator.hh"
#include "cache/prefetcher.hh"
#include "cache/set_assoc_cache.hh"
#include "cache/trace_sim.hh"
#include "compress/bdi.hh"
#include "compress/fpc.hh"
#include "compress/link.hh"
#include "mem/core_model.hh"
#include "mem/dram.hh"
#include "mem/dram_system.hh"
#include "mem/event_queue.hh"
#include "mem/memory_channel.hh"
#include "mem/multicore_system.hh"
#include "mem/system_sim.hh"
#include "model/assumptions.hh"
#include "model/bandwidth_wall.hh"
#include "model/batch_solver.hh"
#include "model/cmp_config.hh"
#include "model/extensions.hh"
#include "model/heterogeneous.hh"
#include "model/power_law.hh"
#include "model/scaling_study.hh"
#include "model/technique.hh"
#include "model/throughput.hh"
#include "server/cluster.hh"
#include "server/http.hh"
#include "server/http_client.hh"
#include "server/json.hh"
#include "server/model_service.hh"
#include "server/overload.hh"
#include "server/reactor.hh"
#include "server/result_cache.hh"
#include "server/routes.hh"
#include "server/server.hh"
#include "trace/power_law_trace.hh"
#include "trace/profiles.hh"
#include "trace/reuse_analyzer.hh"
#include "trace/shared_trace.hh"
#include "trace/stack_distance.hh"
#include "trace/trace_io.hh"
#include "trace/trace_source.hh"
#include "trace/value_pattern.hh"
#include "trace/working_set_trace.hh"
#include "util/cli.hh"
#include "util/config.hh"
#include "util/distributions.hh"
#include "util/error.hh"
#include "util/fault.hh"
#include "util/linear_fit.hh"
#include "util/metrics.hh"
#include "util/mpmc_queue.hh"
#include "util/rendezvous.hh"
#include "util/rng.hh"
#include "util/stats.hh"
#include "util/table.hh"
#include "util/thread_pool.hh"
#include "util/trace_span.hh"
#include "util/units.hh"

#endif // BWWALL_BWWALL_HH
