#include "cache/compressed_cache.hh"

#include <algorithm>

#include "util/logging.hh"
#include "util/units.hh"

namespace bwwall {

CompressedCache::CompressedCache(const CompressedCacheConfig &config,
                                 SizeFunction size_function)
    : config_(config), sizeFunction_(std::move(size_function))
{
    if (!isPowerOfTwo(config_.lineBytes))
        fatal("compressed cache line size must be a power of two");
    if (!isPowerOfTwo(config_.segmentBytes) ||
        config_.segmentBytes > config_.lineBytes) {
        fatal("segment size must be a power of two no larger than the "
              "line");
    }
    if (config_.baseWays == 0 || config_.tagFactor == 0)
        fatal("compressed cache needs positive ways and tag factor");
    if (!sizeFunction_)
        fatal("compressed cache requires a size function");

    const std::uint64_t total_lines =
        config_.capacityBytes / config_.lineBytes;
    if (total_lines == 0 || total_lines % config_.baseWays != 0)
        fatal("baseWays must divide the uncompressed line count");
    numSets_ = total_lines / config_.baseWays;
    if (!isPowerOfTwo(numSets_))
        fatal("compressed cache must have a power-of-two set count");

    tagsPerSet_ = config_.baseWays * config_.tagFactor;
    setBudgetBytes_ =
        std::uint64_t{config_.baseWays} * config_.lineBytes;
    lineShift_ = floorLog2(config_.lineBytes);
    entries_.assign(numSets_ * tagsPerSet_, Entry{});
}

std::uint64_t
CompressedCache::setIndex(Address line_number) const
{
    return line_number & (numSets_ - 1);
}

Address
CompressedCache::tagOf(Address line_number) const
{
    return line_number / numSets_;
}

std::uint32_t
CompressedCache::segmentRounded(std::uint32_t bytes) const
{
    if (bytes == 0)
        bytes = 1;
    if (bytes > config_.lineBytes)
        bytes = config_.lineBytes;
    const std::uint32_t segments =
        (bytes + config_.segmentBytes - 1) / config_.segmentBytes;
    return segments * config_.segmentBytes;
}

std::uint64_t
CompressedCache::setUsedBytes(std::uint64_t set) const
{
    std::uint64_t used = 0;
    for (std::uint32_t slot = 0; slot < tagsPerSet_; ++slot) {
        const Entry &entry = entries_[set * tagsPerSet_ + slot];
        if (entry.valid)
            used += entry.storedBytes;
    }
    return used;
}

CompressedCache::Entry *
CompressedCache::findEntry(std::uint64_t set, Address tag)
{
    for (std::uint32_t slot = 0; slot < tagsPerSet_; ++slot) {
        Entry &entry = entries_[set * tagsPerSet_ + slot];
        if (entry.valid && entry.tag == tag)
            return &entry;
    }
    return nullptr;
}

void
CompressedCache::evictLru(std::uint64_t set)
{
    Entry *victim = nullptr;
    for (std::uint32_t slot = 0; slot < tagsPerSet_; ++slot) {
        Entry &entry = entries_[set * tagsPerSet_ + slot];
        if (!entry.valid)
            continue;
        if (victim == nullptr || entry.lastUse < victim->lastUse)
            victim = &entry;
    }
    if (victim == nullptr)
        panic("evictLru called on an empty set");
    ++stats_.evictions;
    if (victim->dirty) {
        ++stats_.writebacks;
        stats_.bytesWrittenBack += config_.compressedLink
            ? victim->storedBytes
            : config_.lineBytes;
    }
    *victim = Entry{};
}

AccessOutcome
CompressedCache::access(const MemoryAccess &request)
{
    AccessOutcome outcome;
    ++stats_.accesses;
    if (isWrite(request))
        ++stats_.writes;
    else
        ++stats_.reads;

    const Address line_number = request.address >> lineShift_;
    const std::uint64_t set = setIndex(line_number);
    const Address tag = tagOf(line_number);

    if (Entry *entry = findEntry(set, tag)) {
        outcome.hit = true;
        ++stats_.hits;
        entry->lastUse = ++clock_;
        if (isWrite(request))
            entry->dirty = true;
        return outcome;
    }

    ++stats_.misses;
    const Address line_address = line_number << lineShift_;
    const std::uint32_t stored =
        segmentRounded(sizeFunction_(line_address));

    // Make room: need a free tag slot and enough data segments.
    const std::uint64_t fetched_before = stats_.bytesWrittenBack;
    for (;;) {
        Entry *free_slot = nullptr;
        for (std::uint32_t slot = 0; slot < tagsPerSet_; ++slot) {
            Entry &entry = entries_[set * tagsPerSet_ + slot];
            if (!entry.valid) {
                free_slot = &entry;
                break;
            }
        }
        if (free_slot != nullptr &&
            setUsedBytes(set) + stored <= setBudgetBytes_) {
            free_slot->valid = true;
            free_slot->tag = tag;
            free_slot->dirty = isWrite(request);
            free_slot->storedBytes = stored;
            free_slot->lastUse = ++clock_;
            break;
        }
        evictLru(set);
    }
    outcome.bytesWrittenBack =
        stats_.bytesWrittenBack - fetched_before;
    outcome.bytesFetched = config_.compressedLink
        ? stored
        : config_.lineBytes;
    stats_.bytesFetched += outcome.bytesFetched;
    return outcome;
}

bool
CompressedCache::contains(Address address) const
{
    const Address line_number = address >> lineShift_;
    const std::uint64_t set = setIndex(line_number);
    const Address tag = tagOf(line_number);
    for (std::uint32_t slot = 0; slot < tagsPerSet_; ++slot) {
        const Entry &entry = entries_[set * tagsPerSet_ + slot];
        if (entry.valid && entry.tag == tag)
            return true;
    }
    return false;
}

std::uint64_t
CompressedCache::residentLines() const
{
    std::uint64_t count = 0;
    for (const Entry &entry : entries_)
        count += entry.valid;
    return count;
}

std::uint64_t
CompressedCache::maxSetUsedBytes() const
{
    std::uint64_t worst = 0;
    for (std::uint64_t set = 0; set < numSets_; ++set)
        worst = std::max(worst, setUsedBytes(set));
    return worst;
}

double
CompressedCache::residentCompressionRatio() const
{
    std::uint64_t stored = 0, uncompressed = 0;
    for (const Entry &entry : entries_) {
        if (entry.valid) {
            stored += entry.storedBytes;
            uncompressed += config_.lineBytes;
        }
    }
    return stored == 0 ? 1.0
                       : static_cast<double>(uncompressed) /
                             static_cast<double>(stored);
}

} // namespace bwwall
