/**
 * @file
 * Snooping MSI coherence over private per-core caches.
 *
 * The paper's model ignores coherence: with private caches it simply
 * assumes threads do not share data (its Section 3), and its
 * data-sharing study switches to a shared cache.  Real private-cache
 * CMPs pay coherence traffic — write upgrades invalidate remote
 * copies, and remote dirty lines must be written back (or forwarded)
 * before another core may read them.  This substrate quantifies that
 * cost so the model's no-sharing assumption can be checked.
 *
 * Protocol (line granularity, write-back, write-allocate):
 *  - a dirty resident line is Modified, a clean one Shared;
 *  - read miss: a remote Modified copy is downgraded to Shared and
 *    its data written back (counted as coherence write-back); the
 *    reader then fetches the line;
 *  - write (hit or miss): every remote copy is invalidated (remote
 *    Modified ones write back first); a Shared local hit counts an
 *    upgrade.
 */

#ifndef BWWALL_CACHE_COHERENT_SYSTEM_HH
#define BWWALL_CACHE_COHERENT_SYSTEM_HH

#include <cstdint>
#include <memory>
#include <vector>

#include "cache/set_assoc_cache.hh"
#include "trace/access.hh"

namespace bwwall {

/** Coherence-event counters. */
struct CoherenceStats
{
    /** Remote copies invalidated by writes. */
    std::uint64_t invalidations = 0;

    /** Local Shared lines upgraded by a write hit. */
    std::uint64_t upgrades = 0;

    /** Remote Modified lines downgraded by a read. */
    std::uint64_t downgrades = 0;

    /** Write backs forced by coherence (not capacity). */
    std::uint64_t coherenceWritebacks = 0;

    /** Bytes of coherence-induced off-chip traffic. */
    std::uint64_t coherenceBytes = 0;
};

/** N private write-back caches kept coherent by snooping MSI. */
class CoherentCacheSystem
{
  public:
    /**
     * @param cores Number of private caches.
     * @param cache_config Per-core cache parameters.
     */
    CoherentCacheSystem(unsigned cores,
                        const CacheConfig &cache_config);

    /** Routes one access (by its thread id) through the protocol. */
    AccessOutcome access(const MemoryAccess &request);

    unsigned cores() const
    {
        return static_cast<unsigned>(caches_.size());
    }

    SetAssociativeCache &cache(unsigned core);
    const SetAssociativeCache &cache(unsigned core) const;

    const CoherenceStats &coherenceStats() const { return stats_; }

    /**
     * Total off-chip traffic: per-cache fills and capacity write
     * backs plus coherence write backs.
     */
    std::uint64_t memoryTrafficBytes() const;

    /** Zeroes cache and coherence statistics (contents kept). */
    void resetStats();

  private:
    std::uint32_t lineBytes_;
    std::vector<std::unique_ptr<SetAssociativeCache>> caches_;
    CoherenceStats stats_;
};

} // namespace bwwall

#endif // BWWALL_CACHE_COHERENT_SYSTEM_HH
