#include "cache/replacement.hh"

#include <algorithm>

#include "util/logging.hh"
#include "util/units.hh"

namespace bwwall {

std::string
replacementKindName(ReplacementKind kind)
{
    switch (kind) {
      case ReplacementKind::LRU:
        return "lru";
      case ReplacementKind::TreePLRU:
        return "tree-plru";
      case ReplacementKind::FIFO:
        return "fifo";
      case ReplacementKind::Random:
        return "random";
    }
    panic("unknown replacement kind");
}

namespace {

/** Exact LRU via per-way timestamps. */
class LruPolicy : public ReplacementPolicy
{
  public:
    explicit LruPolicy(unsigned ways) : lastUse_(ways, 0) {}

    void onInsert(unsigned way) override { lastUse_[way] = ++clock_; }
    void onAccess(unsigned way) override { lastUse_[way] = ++clock_; }

    unsigned
    victimWay() override
    {
        unsigned victim = 0;
        for (unsigned way = 1; way < lastUse_.size(); ++way) {
            if (lastUse_[way] < lastUse_[victim])
                victim = way;
        }
        return victim;
    }

  private:
    std::vector<std::uint64_t> lastUse_;
    std::uint64_t clock_ = 0;
};

/**
 * Binary-tree pseudo-LRU.  Requires a power-of-two way count; each
 * internal node bit points away from the most recent traversal.
 */
class TreePlruPolicy : public ReplacementPolicy
{
  public:
    explicit TreePlruPolicy(unsigned ways)
        : ways_(ways), bits_(ways, false)
    {
        if (!isPowerOfTwo(ways))
            fatal("tree-plru requires power-of-two associativity, got ",
                  ways);
    }

    void onInsert(unsigned way) override { markRecent(way); }
    void onAccess(unsigned way) override { markRecent(way); }

    unsigned
    victimWay() override
    {
        // Follow the plru bits from the root to a leaf.
        unsigned node = 1;
        while (node < ways_)
            node = node * 2 + (bits_[node] ? 1 : 0);
        return node - ways_;
    }

  private:
    void
    markRecent(unsigned way)
    {
        // Flip each ancestor to point away from this leaf.
        unsigned node = way + ways_;
        while (node > 1) {
            const unsigned parent = node / 2;
            bits_[parent] = (node % 2 == 0);
            node = parent;
        }
    }

    unsigned ways_;
    std::vector<bool> bits_; // heap-indexed internal nodes [1, ways)
};

/** FIFO: victim rotates through ways in insertion order. */
class FifoPolicy : public ReplacementPolicy
{
  public:
    explicit FifoPolicy(unsigned ways) : inserted_(ways, 0) {}

    void onInsert(unsigned way) override { inserted_[way] = ++clock_; }
    void onAccess(unsigned) override {}

    unsigned
    victimWay() override
    {
        unsigned victim = 0;
        for (unsigned way = 1; way < inserted_.size(); ++way) {
            if (inserted_[way] < inserted_[victim])
                victim = way;
        }
        return victim;
    }

  private:
    std::vector<std::uint64_t> inserted_;
    std::uint64_t clock_ = 0;
};

/** Uniform random victim. */
class RandomPolicy : public ReplacementPolicy
{
  public:
    RandomPolicy(unsigned ways, Rng &rng) : ways_(ways), rng_(rng) {}

    void onInsert(unsigned) override {}
    void onAccess(unsigned) override {}

    unsigned
    victimWay() override
    {
        return static_cast<unsigned>(rng_.nextBounded(ways_));
    }

  private:
    unsigned ways_;
    Rng &rng_;
};

} // namespace

std::unique_ptr<ReplacementPolicy>
makeReplacementPolicy(ReplacementKind kind, unsigned ways, Rng &rng)
{
    if (ways == 0)
        fatal("replacement policy requires at least one way");
    switch (kind) {
      case ReplacementKind::LRU:
        return std::make_unique<LruPolicy>(ways);
      case ReplacementKind::TreePLRU:
        return std::make_unique<TreePlruPolicy>(ways);
      case ReplacementKind::FIFO:
        return std::make_unique<FifoPolicy>(ways);
      case ReplacementKind::Random:
        return std::make_unique<RandomPolicy>(ways, rng);
    }
    panic("unknown replacement kind");
}

} // namespace bwwall
