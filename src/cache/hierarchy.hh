/**
 * @file
 * Multi-core cache hierarchy: optional private L1s in front of a
 * shared or private L2, with off-chip traffic accounting.
 *
 * The paper's base configuration is private per-core L2s with no data
 * sharing (its Section 3); the data-sharing study (its Section 6.3 and
 * Figure 14) uses a shared L2.  Both arrangements are supported.
 */

#ifndef BWWALL_CACHE_HIERARCHY_HH
#define BWWALL_CACHE_HIERARCHY_HH

#include <cstdint>
#include <memory>
#include <vector>

#include "cache/set_assoc_cache.hh"
#include "trace/access.hh"

namespace bwwall {

/** Static parameters of a CacheHierarchy. */
struct HierarchyConfig
{
    /** Number of cores; accesses route by their thread id. */
    unsigned cores = 1;

    /** Whether each core has a private L1 in front of the L2. */
    bool l1Enabled = false;

    /** Per-core L1 parameters (used when l1Enabled). */
    CacheConfig l1;

    /** Whether the L2 is shared by all cores (else one per core). */
    bool sharedL2 = true;

    /**
     * L2 parameters.  For private L2s this is the *per-core* cache;
     * for a shared L2 it is the whole cache.
     */
    CacheConfig l2;
};

/** What one hierarchy access did, summed over all levels. */
struct HierarchyOutcome
{
    bool l1Hit = false;
    bool l2Hit = false;
    /** Bytes moved from memory by this access (fills + writebacks). */
    std::uint64_t memoryBytes = 0;
};

/** Two-level multi-core cache hierarchy. */
class CacheHierarchy
{
  public:
    explicit CacheHierarchy(const HierarchyConfig &config);

    /** Routes one access through the hierarchy. */
    HierarchyOutcome access(const MemoryAccess &request);

    const HierarchyConfig &config() const { return config_; }

    /** Per-core L1 (must be enabled). */
    SetAssociativeCache &l1(unsigned core);

    /** The shared L2, or core's private L2. */
    SetAssociativeCache &l2(unsigned core = 0);
    const SetAssociativeCache &l2(unsigned core = 0) const;

    /** Total bytes fetched from off-chip memory. */
    std::uint64_t memoryBytesFetched() const;

    /** Total bytes written back to off-chip memory. */
    std::uint64_t memoryBytesWrittenBack() const;

    /** Total off-chip traffic (fetched + written back). */
    std::uint64_t memoryTrafficBytes() const;

    /** Zeroes statistics at every level (contents stay warm). */
    void resetStats();

  private:
    SetAssociativeCache &l2ForThread(ThreadId thread);

    HierarchyConfig config_;
    std::vector<std::unique_ptr<SetAssociativeCache>> l1s_;
    std::vector<std::unique_ptr<SetAssociativeCache>> l2s_;
};

} // namespace bwwall

#endif // BWWALL_CACHE_HIERARCHY_HH
