/**
 * @file
 * Per-set replacement policies for the set-associative cache model.
 */

#ifndef BWWALL_CACHE_REPLACEMENT_HH
#define BWWALL_CACHE_REPLACEMENT_HH

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "util/rng.hh"

namespace bwwall {

/** Available replacement policies. */
enum class ReplacementKind : std::uint8_t
{
    LRU,      ///< exact least-recently-used
    TreePLRU, ///< binary-tree pseudo-LRU
    FIFO,     ///< first-in first-out (insertion order)
    Random,   ///< uniform random victim
};

/** Returns the canonical short name of a policy. */
std::string replacementKindName(ReplacementKind kind);

/**
 * Replacement state for one cache set.
 *
 * The cache calls onInsert when a way is (re)filled, onAccess on every
 * hit, and victimWay when it needs a way to evict.  Implementations
 * are small fixed-size structures; one instance exists per set.
 */
class ReplacementPolicy
{
  public:
    virtual ~ReplacementPolicy() = default;

    /** Notes that the way was just filled with a new line. */
    virtual void onInsert(unsigned way) = 0;

    /** Notes a hit on the way. */
    virtual void onAccess(unsigned way) = 0;

    /** Chooses the way to evict next. */
    virtual unsigned victimWay() = 0;
};

/**
 * Creates a policy instance for one set.
 *
 * @param kind Which policy.
 * @param ways Set associativity (>= 1).
 * @param rng Shared generator used by the Random policy; must outlive
 * the returned object.
 */
std::unique_ptr<ReplacementPolicy> makeReplacementPolicy(
    ReplacementKind kind, unsigned ways, Rng &rng);

} // namespace bwwall

#endif // BWWALL_CACHE_REPLACEMENT_HH
