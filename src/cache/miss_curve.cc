#include "cache/miss_curve.hh"

#include "cache/set_assoc_cache.hh"
#include "util/logging.hh"

namespace bwwall {

std::vector<MissCurvePoint>
measureMissCurve(TraceSource &trace, const MissCurveSweepParams &params)
{
    if (params.capacities.empty())
        fatal("miss-curve sweep requires at least one capacity");

    std::vector<MissCurvePoint> points;
    points.reserve(params.capacities.size());
    for (const std::uint64_t capacity : params.capacities) {
        CacheConfig config = params.cacheTemplate;
        config.capacityBytes = capacity;
        SetAssociativeCache cache(config);

        trace.reset();
        for (std::uint64_t i = 0; i < params.warmupAccesses; ++i)
            cache.access(trace.next());
        cache.resetStats();
        for (std::uint64_t i = 0; i < params.measuredAccesses; ++i)
            cache.access(trace.next());

        MissCurvePoint point;
        point.capacityBytes = capacity;
        point.missRate = cache.stats().missRate();
        point.writebackRatio = cache.stats().writebackRatio();
        point.trafficBytesPerAccess =
            cache.stats().trafficBytesPerAccess();
        points.push_back(point);
    }
    return points;
}

PowerLawFit
fitMissCurve(const std::vector<MissCurvePoint> &points)
{
    std::vector<double> sizes, rates;
    sizes.reserve(points.size());
    rates.reserve(points.size());
    for (const MissCurvePoint &point : points) {
        sizes.push_back(static_cast<double>(point.capacityBytes));
        rates.push_back(point.missRate);
    }
    return fitPowerLaw(sizes, rates);
}

std::vector<std::uint64_t>
capacityLadder(std::uint64_t from, std::uint64_t to)
{
    if (from == 0 || from > to)
        fatal("capacityLadder requires 0 < from <= to");
    std::vector<std::uint64_t> ladder;
    for (std::uint64_t capacity = from; capacity <= to; capacity *= 2)
        ladder.push_back(capacity);
    return ladder;
}

} // namespace bwwall
