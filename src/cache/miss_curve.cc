#include "cache/miss_curve.hh"

#include "util/logging.hh"

namespace bwwall {

PowerLawFit
fitMissCurve(const std::vector<MissCurvePoint> &points)
{
    std::vector<double> sizes, rates;
    sizes.reserve(points.size());
    rates.reserve(points.size());
    for (const MissCurvePoint &point : points) {
        sizes.push_back(static_cast<double>(point.capacityBytes));
        rates.push_back(point.missRate);
    }
    return fitPowerLaw(sizes, rates);
}

std::vector<std::uint64_t>
capacityLadder(std::uint64_t from, std::uint64_t to)
{
    if (from == 0 || from > to)
        fatal("capacityLadder requires 0 < from <= to");
    std::vector<std::uint64_t> ladder;
    for (std::uint64_t capacity = from; capacity <= to; capacity *= 2)
        ladder.push_back(capacity);
    return ladder;
}

} // namespace bwwall
