#include "cache/miss_curve.hh"

#include "cache/miss_curve_estimator.hh"
#include "util/logging.hh"

namespace bwwall {

#pragma GCC diagnostic push
#pragma GCC diagnostic ignored "-Wdeprecated-declarations"

std::vector<MissCurvePoint>
measureMissCurve(TraceSource &trace, const MissCurveSweepParams &params)
{
    // Compatibility shim: forwards to the exact estimator of the
    // unified engine, preserving the old bit-exact behaviour.
    MissCurveSpec spec;
    spec.cache = params.cacheTemplate;
    spec.capacities = params.capacities;
    spec.warmupAccesses = params.warmupAccesses;
    spec.measuredAccesses = params.measuredAccesses;
    spec.kind = MissCurveEstimatorKind::ExactSim;
    return estimateMissCurve(trace, spec).points;
}

#pragma GCC diagnostic pop

PowerLawFit
fitMissCurve(const std::vector<MissCurvePoint> &points)
{
    std::vector<double> sizes, rates;
    sizes.reserve(points.size());
    rates.reserve(points.size());
    for (const MissCurvePoint &point : points) {
        sizes.push_back(static_cast<double>(point.capacityBytes));
        rates.push_back(point.missRate);
    }
    return fitPowerLaw(sizes, rates);
}

std::vector<std::uint64_t>
capacityLadder(std::uint64_t from, std::uint64_t to)
{
    if (from == 0 || from > to)
        fatal("capacityLadder requires 0 < from <= to");
    std::vector<std::uint64_t> ladder;
    for (std::uint64_t capacity = from; capacity <= to; capacity *= 2)
        ladder.push_back(capacity);
    return ladder;
}

} // namespace bwwall
