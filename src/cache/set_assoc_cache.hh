/**
 * @file
 * Trace-driven set-associative write-back cache model.
 *
 * This is the simulation substrate behind the paper's empirical
 * inputs: the Figure 1 miss-rate-vs-size curves, the write-back-ratio
 * constancy claim of Section 4.2, the sectored-cache traffic model of
 * Section 6.2, and (with the per-line sharer mask) the Figure 14
 * shared-cache measurement.  It models tags, state, and traffic —
 * data values live only in the compression experiments, which have
 * their own machinery.
 */

#ifndef BWWALL_CACHE_SET_ASSOC_CACHE_HH
#define BWWALL_CACHE_SET_ASSOC_CACHE_HH

#include <cstdint>
#include <functional>
#include <memory>
#include <vector>

#include "cache/cache_config.hh"
#include "trace/access.hh"
#include "util/rng.hh"

namespace bwwall {

/** Details of an evicted line, delivered to the eviction callback. */
struct EvictionRecord
{
    /** Address of the first byte of the line. */
    Address lineAddress = 0;
    bool dirty = false;
    /** Number of distinct threads that touched the line while resident. */
    unsigned sharerCount = 0;
};

/** Set-associative cache with write-back, write-allocate semantics. */
class SetAssociativeCache
{
  public:
    using EvictionCallback = std::function<void(const EvictionRecord &)>;

    explicit SetAssociativeCache(const CacheConfig &config);

    /** Performs one access and updates statistics. */
    AccessOutcome access(const MemoryAccess &request);

    /**
     * Installs the line containing the address as a (clean, whole-
     * line) prefetch, evicting a victim if needed.  Counts the fill
     * and its traffic separately from demand misses; a no-op when
     * the line is already resident.  Returns the bytes fetched.
     */
    std::uint64_t insertPrefetch(Address address);

    const CacheConfig &config() const { return config_; }
    const CacheStats &stats() const { return stats_; }

    /** Zeroes the statistics (cache contents are kept — warm). */
    void resetStats() { stats_.reset(); }

    /** Registers a callback fired at each eviction (and on flush). */
    void setEvictionCallback(EvictionCallback callback);

    /** True when the line containing the address is resident. */
    bool contains(Address address) const;

    /** True when the line is resident and dirty (modified). */
    bool isDirty(Address address) const;

    /**
     * Removes the line without firing the eviction callback or
     * counting an eviction — a coherence invalidation.  Returns
     * whether the line was present and dirty (the caller decides
     * what happens to the dirty data).
     */
    bool invalidate(Address address);

    /**
     * Clears the line's dirty bits, keeping it resident — a
     * coherence downgrade (Modified -> Shared).  Returns whether it
     * was dirty.
     */
    bool downgrade(Address address);

    /** Number of currently valid lines. */
    std::uint64_t residentLines() const;

    /**
     * Evicts every valid line, firing callbacks and counting
     * writebacks, leaving the cache empty.
     */
    void flush();

    std::uint64_t sets() const { return numSets_; }
    std::uint32_t ways() const { return ways_; }

  private:
    /** Per-line tag/state entry. */
    struct LineState
    {
        Address tag = 0;
        bool valid = false;
        std::uint32_t sectorValidMask = 0;
        std::uint32_t sectorDirtyMask = 0;
        std::uint64_t sharerMask = 0;
        bool prefetched = false; ///< installed but not yet used
    };

    std::uint64_t setIndex(Address line_number) const;
    Address tagOf(Address line_number) const;
    LineState &line(std::uint64_t set, unsigned way);
    const LineState &line(std::uint64_t set, unsigned way) const;
    void evict(std::uint64_t set, unsigned way);
    std::uint32_t sectorBit(Address address) const;

    CacheConfig config_;
    std::uint64_t numSets_;
    std::uint32_t ways_;
    unsigned lineShift_;
    unsigned sectorsPerLine_;
    std::uint32_t fullSectorMask_;
    Rng rng_;
    std::vector<LineState> lines_;
    std::vector<std::unique_ptr<ReplacementPolicy>> replacement_;
    CacheStats stats_;
    EvictionCallback evictionCallback_;
};

} // namespace bwwall

#endif // BWWALL_CACHE_SET_ASSOC_CACHE_HH
