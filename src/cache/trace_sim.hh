/**
 * @file
 * Parallel trace-driven cache simulation.
 *
 * Bulk design-space evaluation (many workloads through one cache
 * configuration) is embarrassingly parallel: each workload's
 * synthetic reference stream is split into independent shards, every
 * shard draws its whole trace from its own deterministically derived
 * RNG seed and simulates its own cache, and shard statistics merge
 * in index order — so the parallel result is bit-identical to the
 * serial one for any job count.
 */

#ifndef BWWALL_CACHE_TRACE_SIM_HH
#define BWWALL_CACHE_TRACE_SIM_HH

#include <cstdint>
#include <string>
#include <vector>

#include "cache/cache_config.hh"
#include "cache/miss_curve_estimator.hh"
#include "trace/profiles.hh"

namespace bwwall {

class MetricsRegistry;

/** One workload in a trace-driven cache sweep. */
struct TraceCacheWorkload
{
    /** Synthetic profile generating the reference stream. */
    WorkloadProfileSpec profile;

    /**
     * Unmeasured accesses warming each shard's cache, applied **per
     * shard**, not split across them: a workload with S shards replays
     * S * warmAccesses unmeasured accesses in total.  Each shard owns
     * a private cold cache, so each needs its own full warm-up before
     * its statistics are meaningful; raising the shard count therefore
     * buys parallelism at the price of proportionally more warm-up
     * work.  The total is reported as the
     * `trace_sim.warm_accesses_total` metric.
     */
    std::uint64_t warmAccesses = 100000;

    /** Measured accesses, divided across the workload's shards. */
    std::uint64_t measuredAccesses = 400000;

    /**
     * Independent shards sampling the workload.  Each shard owns a
     * private cache and RNG stream; more shards expose more
     * parallelism at the cost of per-shard warm-up.
     */
    unsigned shards = 1;
};

/** Parameters of a trace-driven cache sweep. */
struct TraceCacheSweepParams
{
    std::vector<TraceCacheWorkload> workloads;

    /** Cache configuration applied to every shard. */
    CacheConfig cache;

    /** Base seed; per-shard seeds are derived deterministically. */
    std::uint64_t seed = 1;

    /**
     * Worker threads simulating shards concurrently; 0 defers to
     * BWWALL_JOBS / hardware_concurrency().
     */
    unsigned jobs = 0;

    /** Optional sink for run metrics ("trace_sim.*"); may be null. */
    MetricsRegistry *metrics = nullptr;
};

/** Merged outcome of one workload. */
struct TraceCacheResult
{
    std::string workload;

    /** Shard statistics summed in shard order. */
    CacheStats stats;
};

/**
 * Deterministic per-shard seed, independent of thread count or
 * execution order (SplitMix64 over the workload/shard coordinates).
 */
std::uint64_t shardSeed(std::uint64_t base, std::size_t workload,
                        unsigned shard);

/**
 * Runs every workload's shards (in parallel when params.jobs allows)
 * and returns one merged result per workload, in workload order.
 */
std::vector<TraceCacheResult> runTraceCacheSweep(
    const TraceCacheSweepParams &params);

/** Parameters of a sharded multi-workload miss-curve sweep. */
struct TraceMissCurveSweepParams
{
    /** Workloads whose miss curves are estimated independently. */
    std::vector<WorkloadProfileSpec> workloads;

    /**
     * Estimator selection, cache template, size grid, and trace
     * windows shared by every workload; spec.seed is the base from
     * which per-workload trace seeds are derived.
     */
    MissCurveSpec spec;

    /** Worker threads (0 defers to BWWALL_JOBS / auto). */
    unsigned jobs = 0;

    /** Optional sink for run metrics ("miss_curve.*"); may be null. */
    MetricsRegistry *metrics = nullptr;
};

/** One workload's estimated miss curve. */
struct TraceMissCurveResult
{
    std::string workload;
    MissCurve curve;
};

/**
 * Estimates every workload's miss curve over the shared size grid,
 * one workload per parallel task, all routed through the
 * MissCurveEstimator selected by params.spec.kind.  Per-workload
 * trace seeds derive deterministically from spec.seed, so results are
 * independent of the job count.
 */
std::vector<TraceMissCurveResult> runTraceMissCurveSweep(
    const TraceMissCurveSweepParams &params);

} // namespace bwwall

#endif // BWWALL_CACHE_TRACE_SIM_HH
