/**
 * @file
 * Configuration and statistics for the cache models.
 */

#ifndef BWWALL_CACHE_CACHE_CONFIG_HH
#define BWWALL_CACHE_CACHE_CONFIG_HH

#include <cstdint>

#include "cache/replacement.hh"

namespace bwwall {

/** Write-miss allocation behaviour. */
enum class WriteAllocate : std::uint8_t
{
    Allocate,   ///< write-allocate (fetch the line, then dirty it)
    NoAllocate, ///< write around: misses write straight to memory
};

/** Static parameters of one cache. */
struct CacheConfig
{
    /** Total data capacity in bytes; must be a multiple of one set. */
    std::uint64_t capacityBytes = 4ULL * 1024 * 1024;

    /** Line (block) size in bytes; power of two. */
    std::uint32_t lineBytes = 64;

    /**
     * Ways per set; 0 requests full associativity (a single set
     * spanning the whole cache).
     */
    std::uint32_t associativity = 8;

    ReplacementKind replacement = ReplacementKind::LRU;
    WriteAllocate writeAllocate = WriteAllocate::Allocate;

    /**
     * When true the cache is sectored: lines are allocated whole but
     * filled sector-by-sector on demand, so only referenced sectors
     * consume off-chip traffic (paper Section 6.2).
     */
    bool sectored = false;

    /** Sector size in bytes; power of two, divides lineBytes. */
    std::uint32_t sectorBytes = 16;

    /** Seed for stochastic replacement policies. */
    std::uint64_t seed = 1;

    /** Derived: number of sets (validated by the cache). */
    std::uint64_t lines() const { return capacityBytes / lineBytes; }
};

/** What one access did. */
struct AccessOutcome
{
    /** The line was resident (sector misses still count as hits). */
    bool hit = false;
    /** The requested sector had to be fetched (sectored caches). */
    bool sectorFill = false;
    /** Bytes fetched from the next level by this access. */
    std::uint64_t bytesFetched = 0;
    /** Bytes written back to the next level by this access. */
    std::uint64_t bytesWrittenBack = 0;
};

/** Event counters of one cache. */
struct CacheStats
{
    std::uint64_t accesses = 0;
    std::uint64_t reads = 0;
    std::uint64_t writes = 0;
    std::uint64_t hits = 0;
    std::uint64_t misses = 0;
    /** Hits on a resident line whose requested sector was absent. */
    std::uint64_t sectorMisses = 0;
    std::uint64_t evictions = 0;
    std::uint64_t writebacks = 0;
    /** Bytes fetched from the next level / memory. */
    std::uint64_t bytesFetched = 0;
    /** Bytes written back to the next level / memory. */
    std::uint64_t bytesWrittenBack = 0;
    /** Lines installed by a prefetcher. */
    std::uint64_t prefetchFills = 0;
    /** Prefetched lines that served at least one demand hit. */
    std::uint64_t usefulPrefetches = 0;
    /** Prefetched lines evicted without ever being used. */
    std::uint64_t uselessPrefetches = 0;

    /** Line miss rate (sector misses are not line misses). */
    double
    missRate() const
    {
        return accesses == 0
                   ? 0.0
                   : static_cast<double>(misses) /
                         static_cast<double>(accesses);
    }

    /** Write backs per line miss — the paper's rwb (Section 4.2). */
    double
    writebackRatio() const
    {
        return misses == 0 ? 0.0
                           : static_cast<double>(writebacks) /
                                 static_cast<double>(misses);
    }

    /** Fraction of prefetched lines that were used before eviction. */
    double
    prefetchAccuracy() const
    {
        const std::uint64_t resolved =
            usefulPrefetches + uselessPrefetches;
        return resolved == 0
                   ? 0.0
                   : static_cast<double>(usefulPrefetches) /
                         static_cast<double>(resolved);
    }

    /** Total off-chip traffic per access, in bytes. */
    double
    trafficBytesPerAccess() const
    {
        return accesses == 0
                   ? 0.0
                   : static_cast<double>(bytesFetched +
                                         bytesWrittenBack) /
                         static_cast<double>(accesses);
    }

    /** Clears every counter. */
    void reset() { *this = CacheStats(); }
};

} // namespace bwwall

#endif // BWWALL_CACHE_CACHE_CONFIG_HH
