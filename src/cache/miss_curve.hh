/**
 * @file
 * Miss-curve data types and power-law fitting.
 *
 * The sweep machinery that used to live here (MissCurveSweepParams /
 * measureMissCurve) is superseded by the MissCurveEstimator API in
 * cache/miss_curve_estimator.hh, which adds single-pass stack-distance
 * estimation next to the per-size replay; the old entry points remain
 * as deprecated shims for one release.
 */

#ifndef BWWALL_CACHE_MISS_CURVE_HH
#define BWWALL_CACHE_MISS_CURVE_HH

#include <cstdint>
#include <vector>

#include "cache/cache_config.hh"
#include "trace/trace_source.hh"
#include "util/linear_fit.hh"

namespace bwwall {

/** One measured point of a miss curve. */
struct MissCurvePoint
{
    std::uint64_t capacityBytes = 0;
    double missRate = 0.0;
    /** Write backs per miss at this size (paper's rwb). */
    double writebackRatio = 0.0;
    /** Off-chip bytes per access at this size. */
    double trafficBytesPerAccess = 0.0;
};

#pragma GCC diagnostic push
#pragma GCC diagnostic ignored "-Wdeprecated-declarations"

/**
 * Parameters of a miss-curve sweep.
 * @deprecated Use MissCurveSpec (cache/miss_curve_estimator.hh); it
 * holds one CacheConfig plus the size grid instead of duplicating the
 * fields, and selects between exact and single-pass estimators.
 */
struct [[deprecated("use MissCurveSpec from "
                    "cache/miss_curve_estimator.hh")]]
MissCurveSweepParams
{
    /** Cache sizes to measure, in bytes. */
    std::vector<std::uint64_t> capacities;

    /** Template for every cache (capacityBytes is overwritten). */
    CacheConfig cacheTemplate;

    /** Accesses replayed to warm each cache before measuring. */
    std::uint64_t warmupAccesses = 400000;

    /** Accesses measured after warm-up. */
    std::uint64_t measuredAccesses = 1200000;
};

/**
 * Measures the miss curve of a trace.  The trace is reset before each
 * cache size so every size observes the byte-identical reference
 * stream.
 * @deprecated Use estimateMissCurve with
 * MissCurveEstimatorKind::ExactSim; this shim forwards there.
 */
[[deprecated("use estimateMissCurve from "
             "cache/miss_curve_estimator.hh")]]
std::vector<MissCurvePoint> measureMissCurve(
    TraceSource &trace, const MissCurveSweepParams &params);

#pragma GCC diagnostic pop

/**
 * Fits miss rate = c * capacity^-alpha over the measured points;
 * `-fit.exponent` is the paper's alpha.
 */
PowerLawFit fitMissCurve(const std::vector<MissCurvePoint> &points);

/** Geometric ladder of capacities: from, from*2, ..., to (inclusive). */
std::vector<std::uint64_t> capacityLadder(std::uint64_t from,
                                          std::uint64_t to);

} // namespace bwwall

#endif // BWWALL_CACHE_MISS_CURVE_HH
