/**
 * @file
 * Miss-curve data types and power-law fitting.
 *
 * Sweeps are driven by the MissCurveEstimator API in
 * cache/miss_curve_estimator.hh (MissCurveSpec + estimateMissCurve),
 * which pairs per-size replay with single-pass stack-distance
 * estimation.  (The pre-2.0 MissCurveSweepParams / measureMissCurve
 * shims are gone.)
 */

#ifndef BWWALL_CACHE_MISS_CURVE_HH
#define BWWALL_CACHE_MISS_CURVE_HH

#include <cstdint>
#include <vector>

#include "cache/cache_config.hh"
#include "trace/trace_source.hh"
#include "util/linear_fit.hh"

namespace bwwall {

/** One measured point of a miss curve. */
struct MissCurvePoint
{
    std::uint64_t capacityBytes = 0;
    double missRate = 0.0;
    /** Write backs per miss at this size (paper's rwb). */
    double writebackRatio = 0.0;
    /** Off-chip bytes per access at this size. */
    double trafficBytesPerAccess = 0.0;
};

/**
 * Fits miss rate = c * capacity^-alpha over the measured points;
 * `-fit.exponent` is the paper's alpha.
 */
PowerLawFit fitMissCurve(const std::vector<MissCurvePoint> &points);

/** Geometric ladder of capacities: from, from*2, ..., to (inclusive). */
std::vector<std::uint64_t> capacityLadder(std::uint64_t from,
                                          std::uint64_t to);

} // namespace bwwall

#endif // BWWALL_CACHE_MISS_CURVE_HH
