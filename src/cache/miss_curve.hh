/**
 * @file
 * Miss-curve measurement: replays one trace against a ladder of cache
 * sizes and fits the power law of cache misses, reproducing the
 * methodology behind the paper's Figure 1.
 */

#ifndef BWWALL_CACHE_MISS_CURVE_HH
#define BWWALL_CACHE_MISS_CURVE_HH

#include <cstdint>
#include <vector>

#include "cache/cache_config.hh"
#include "trace/trace_source.hh"
#include "util/linear_fit.hh"

namespace bwwall {

/** One measured point of a miss curve. */
struct MissCurvePoint
{
    std::uint64_t capacityBytes = 0;
    double missRate = 0.0;
    /** Write backs per miss at this size (paper's rwb). */
    double writebackRatio = 0.0;
    /** Off-chip bytes per access at this size. */
    double trafficBytesPerAccess = 0.0;
};

/** Parameters of a miss-curve sweep. */
struct MissCurveSweepParams
{
    /** Cache sizes to measure, in bytes. */
    std::vector<std::uint64_t> capacities;

    /** Template for every cache (capacityBytes is overwritten). */
    CacheConfig cacheTemplate;

    /** Accesses replayed to warm each cache before measuring. */
    std::uint64_t warmupAccesses = 400000;

    /** Accesses measured after warm-up. */
    std::uint64_t measuredAccesses = 1200000;
};

/**
 * Measures the miss curve of a trace.  The trace is reset before each
 * cache size so every size observes the byte-identical reference
 * stream.
 */
std::vector<MissCurvePoint> measureMissCurve(
    TraceSource &trace, const MissCurveSweepParams &params);

/**
 * Fits miss rate = c * capacity^-alpha over the measured points;
 * `-fit.exponent` is the paper's alpha.
 */
PowerLawFit fitMissCurve(const std::vector<MissCurvePoint> &points);

/** Geometric ladder of capacities: from, from*2, ..., to (inclusive). */
std::vector<std::uint64_t> capacityLadder(std::uint64_t from,
                                          std::uint64_t to);

} // namespace bwwall

#endif // BWWALL_CACHE_MISS_CURVE_HH
