/**
 * @file
 * Compressed cache model with a segmented data array.
 *
 * Follows the organisation of Alameldeen's compressed L2 (the paper's
 * cache-compression citation [1]): each set keeps its uncompressed
 * byte budget but can track up to tagFactor times more tags, and lines
 * occupy only ceil(size / segment) segments of the data array.  The
 * caller supplies each line's compressed size (measured, e.g., by the
 * FPC compressor over synthetic contents), keeping the storage model
 * independent of any particular compression algorithm.
 *
 * With compressedLink set, fetches and write backs also move only the
 * compressed bytes — the paper's combined cache+link compression
 * (Section 6.3); otherwise traffic moves whole lines and compression
 * helps only by reducing the miss count (Section 6.1).
 */

#ifndef BWWALL_CACHE_COMPRESSED_CACHE_HH
#define BWWALL_CACHE_COMPRESSED_CACHE_HH

#include <cstdint>
#include <functional>
#include <vector>

#include "cache/cache_config.hh"
#include "trace/access.hh"

namespace bwwall {

/** Static parameters of a CompressedCache. */
struct CompressedCacheConfig
{
    /** Uncompressed data capacity in bytes. */
    std::uint64_t capacityBytes = 4ULL * 1024 * 1024;

    /** Line size in bytes; power of two. */
    std::uint32_t lineBytes = 64;

    /** Data-array segment granularity in bytes. */
    std::uint32_t segmentBytes = 8;

    /** Uncompressed ways per set (sets the per-set byte budget). */
    std::uint32_t baseWays = 8;

    /** Tag entries per set = baseWays * tagFactor. */
    std::uint32_t tagFactor = 2;

    /** When true, traffic moves compressed bytes (cache+link). */
    bool compressedLink = false;
};

/** LRU compressed cache over caller-provided compressed sizes. */
class CompressedCache
{
  public:
    /** Returns a line's compressed size in bytes, <= lineBytes. */
    using SizeFunction = std::function<std::uint32_t(Address)>;

    CompressedCache(const CompressedCacheConfig &config,
                    SizeFunction size_function);

    /** Performs one access. */
    AccessOutcome access(const MemoryAccess &request);

    const CompressedCacheConfig &config() const { return config_; }
    const CacheStats &stats() const { return stats_; }
    void resetStats() { stats_.reset(); }

    /** True when the line containing the address is resident. */
    bool contains(Address address) const;

    /** Valid tag entries currently held. */
    std::uint64_t residentLines() const;

    /**
     * Mean resident compression ratio: uncompressed bytes of resident
     * lines divided by their stored (segment-rounded) bytes.
     */
    double residentCompressionRatio() const;

    /** Data-array byte budget of one set. */
    std::uint64_t setBudgetBytes() const { return setBudgetBytes_; }

    /** Tag entries per set. */
    std::uint32_t tagsPerSet() const { return tagsPerSet_; }

    std::uint64_t sets() const { return numSets_; }

    /** Stored bytes currently occupied in the fullest set. */
    std::uint64_t maxSetUsedBytes() const;

  private:
    struct Entry
    {
        Address tag = 0;
        bool valid = false;
        bool dirty = false;
        std::uint32_t storedBytes = 0;
        std::uint64_t lastUse = 0;
    };

    std::uint64_t setIndex(Address line_number) const;
    Address tagOf(Address line_number) const;
    std::uint32_t segmentRounded(std::uint32_t bytes) const;
    std::uint64_t setUsedBytes(std::uint64_t set) const;
    void evictLru(std::uint64_t set);
    Entry *findEntry(std::uint64_t set, Address tag);

    CompressedCacheConfig config_;
    SizeFunction sizeFunction_;
    std::uint64_t numSets_;
    std::uint32_t tagsPerSet_;
    std::uint64_t setBudgetBytes_;
    unsigned lineShift_;
    std::uint64_t clock_ = 0;
    std::vector<Entry> entries_;
    CacheStats stats_;
};

} // namespace bwwall

#endif // BWWALL_CACHE_COMPRESSED_CACHE_HH
