#include "cache/coherent_system.hh"

#include "util/logging.hh"

namespace bwwall {

CoherentCacheSystem::CoherentCacheSystem(unsigned cores,
                                         const CacheConfig &cache_config)
    : lineBytes_(cache_config.lineBytes)
{
    if (cores == 0)
        fatal("coherent system requires at least one core");
    for (unsigned core = 0; core < cores; ++core) {
        CacheConfig config = cache_config;
        config.seed = cache_config.seed + core;
        caches_.push_back(
            std::make_unique<SetAssociativeCache>(config));
    }
}

SetAssociativeCache &
CoherentCacheSystem::cache(unsigned core)
{
    if (core >= caches_.size())
        fatal("coherent system core index out of range: ", core);
    return *caches_[core];
}

const SetAssociativeCache &
CoherentCacheSystem::cache(unsigned core) const
{
    if (core >= caches_.size())
        fatal("coherent system core index out of range: ", core);
    return *caches_[core];
}

AccessOutcome
CoherentCacheSystem::access(const MemoryAccess &request)
{
    const unsigned owner = request.thread % cores();
    SetAssociativeCache &local = *caches_[owner];

    if (isWrite(request)) {
        // Invalidate every remote copy; remote Modified data must
        // reach memory first (no dirty forwarding modelled).
        for (unsigned core = 0; core < cores(); ++core) {
            if (core == owner)
                continue;
            SetAssociativeCache &remote = *caches_[core];
            if (!remote.contains(request.address))
                continue;
            const bool was_dirty = remote.invalidate(request.address);
            ++stats_.invalidations;
            if (was_dirty) {
                ++stats_.coherenceWritebacks;
                stats_.coherenceBytes += lineBytes_;
            }
        }
        // A clean local hit is a Shared line being upgraded.
        if (local.contains(request.address) &&
            !local.isDirty(request.address)) {
            ++stats_.upgrades;
        }
    } else {
        // A remote Modified copy must be made visible before the
        // read: downgrade it to Shared with a write back.
        for (unsigned core = 0; core < cores(); ++core) {
            if (core == owner)
                continue;
            SetAssociativeCache &remote = *caches_[core];
            if (remote.isDirty(request.address)) {
                remote.downgrade(request.address);
                ++stats_.downgrades;
                ++stats_.coherenceWritebacks;
                stats_.coherenceBytes += lineBytes_;
                break; // at most one Modified copy can exist
            }
        }
    }

    return local.access(request);
}

std::uint64_t
CoherentCacheSystem::memoryTrafficBytes() const
{
    std::uint64_t total = stats_.coherenceBytes;
    for (const auto &cache_ptr : caches_) {
        total += cache_ptr->stats().bytesFetched +
            cache_ptr->stats().bytesWrittenBack;
    }
    return total;
}

void
CoherentCacheSystem::resetStats()
{
    stats_ = CoherenceStats{};
    for (const auto &cache_ptr : caches_)
        cache_ptr->resetStats();
}

} // namespace bwwall
