#include "cache/prefetcher.hh"

#include "trace/hashing.hh"
#include "util/logging.hh"

namespace bwwall {

Prefetcher::Prefetcher(SetAssociativeCache &cache,
                       const PrefetcherConfig &config)
    : cache_(cache), config_(config)
{
    if (config_.degree == 0)
        fatal("prefetcher requires a positive degree");
    if (config_.kind == PrefetcherKind::Stride) {
        if (config_.strideTableEntries == 0)
            fatal("stride prefetcher requires table entries");
        strideTable_.assign(config_.strideTableEntries,
                            StrideEntry{});
    }
}

void
Prefetcher::issueAt(Address line_address)
{
    ++stats_.issued;
    stats_.bytesFetched += cache_.insertPrefetch(line_address);
}

void
Prefetcher::triggerNextLine(Address address)
{
    const std::uint32_t line_bytes = cache_.config().lineBytes;
    const Address line = address & ~Address{line_bytes - 1};
    for (unsigned i = 1; i <= config_.degree; ++i)
        issueAt(line + Address{i} * line_bytes);
}

void
Prefetcher::triggerStride(Address address)
{
    // Streams are tracked per 4 KiB region (no PCs in the traces).
    const Address region = address >> 12;
    const std::size_t index = static_cast<std::size_t>(
        mix64(region) % strideTable_.size());
    StrideEntry &entry = strideTable_[index];
    ++useClock_;

    if (!entry.valid) {
        entry.valid = true;
        entry.lastAddress = address;
        entry.stride = 0;
        entry.confidence = 0;
        entry.lastUse = useClock_;
        return;
    }

    const auto stride = static_cast<std::int64_t>(address) -
        static_cast<std::int64_t>(entry.lastAddress);
    if (stride != 0 && stride == entry.stride) {
        if (entry.confidence < config_.strideConfidence)
            ++entry.confidence;
    } else {
        entry.stride = stride;
        entry.confidence = 0;
    }
    entry.lastAddress = address;
    entry.lastUse = useClock_;

    if (entry.confidence < config_.strideConfidence ||
        entry.stride == 0) {
        return;
    }
    const std::uint32_t line_bytes = cache_.config().lineBytes;
    for (unsigned i = 1; i <= config_.degree; ++i) {
        const auto target = static_cast<std::int64_t>(address) +
            entry.stride * static_cast<std::int64_t>(i);
        if (target < 0)
            break;
        issueAt(static_cast<Address>(target) &
                ~Address{line_bytes - 1});
    }
}

void
Prefetcher::observe(const MemoryAccess &access,
                    const AccessOutcome &outcome)
{
    // Trigger on demand misses (the usual miss-driven designs).
    if (outcome.hit)
        return;
    ++stats_.triggers;
    switch (config_.kind) {
      case PrefetcherKind::NextLine:
        triggerNextLine(access.address);
        break;
      case PrefetcherKind::Stride:
        triggerStride(access.address);
        break;
    }
}

} // namespace bwwall
