#include "cache/hierarchy.hh"

#include "util/logging.hh"

namespace bwwall {

CacheHierarchy::CacheHierarchy(const HierarchyConfig &config)
    : config_(config)
{
    if (config_.cores == 0)
        fatal("hierarchy requires at least one core");

    if (config_.l1Enabled) {
        for (unsigned core = 0; core < config_.cores; ++core) {
            CacheConfig l1_config = config_.l1;
            l1_config.seed = config_.l1.seed + core;
            l1s_.push_back(
                std::make_unique<SetAssociativeCache>(l1_config));
        }
    }

    const unsigned l2_count = config_.sharedL2 ? 1 : config_.cores;
    for (unsigned index = 0; index < l2_count; ++index) {
        CacheConfig l2_config = config_.l2;
        l2_config.seed = config_.l2.seed + index;
        l2s_.push_back(
            std::make_unique<SetAssociativeCache>(l2_config));
    }
}

SetAssociativeCache &
CacheHierarchy::l1(unsigned core)
{
    if (!config_.l1Enabled)
        fatal("hierarchy has no L1 caches");
    if (core >= l1s_.size())
        fatal("L1 core index out of range: ", core);
    return *l1s_[core];
}

SetAssociativeCache &
CacheHierarchy::l2(unsigned core)
{
    if (config_.sharedL2)
        return *l2s_[0];
    if (core >= l2s_.size())
        fatal("L2 core index out of range: ", core);
    return *l2s_[core];
}

const SetAssociativeCache &
CacheHierarchy::l2(unsigned core) const
{
    if (config_.sharedL2)
        return *l2s_[0];
    if (core >= l2s_.size())
        fatal("L2 core index out of range: ", core);
    return *l2s_[core];
}

SetAssociativeCache &
CacheHierarchy::l2ForThread(ThreadId thread)
{
    return l2(config_.sharedL2 ? 0u : thread % config_.cores);
}

HierarchyOutcome
CacheHierarchy::access(const MemoryAccess &request)
{
    HierarchyOutcome outcome;
    SetAssociativeCache &l2_cache = l2ForThread(request.thread);

    bool need_l2_fill = true;
    if (config_.l1Enabled) {
        SetAssociativeCache &l1_cache =
            l1(request.thread % config_.cores);

        // Collect dirty L1 victims to forward to the L2 as writes.
        std::vector<Address> dirty_victims;
        l1_cache.setEvictionCallback(
            [&dirty_victims](const EvictionRecord &record) {
                if (record.dirty)
                    dirty_victims.push_back(record.lineAddress);
            });
        const AccessOutcome l1_outcome = l1_cache.access(request);
        l1_cache.setEvictionCallback(nullptr);

        outcome.l1Hit = l1_outcome.hit;
        need_l2_fill = !l1_outcome.hit;

        for (const Address victim : dirty_victims) {
            MemoryAccess writeback;
            writeback.address = victim;
            writeback.type = AccessType::Write;
            writeback.thread = request.thread;
            l2_cache.access(writeback);
        }
    }

    if (need_l2_fill) {
        // With a write-allocate L1 in front, the store data stays in
        // the L1; the L2 only services a fill read.
        MemoryAccess fill = request;
        if (config_.l1Enabled)
            fill.type = AccessType::Read;
        const AccessOutcome l2_outcome = l2_cache.access(fill);
        outcome.l2Hit = l2_outcome.hit;
        outcome.memoryBytes =
            l2_outcome.bytesFetched + l2_outcome.bytesWrittenBack;
    }
    return outcome;
}

std::uint64_t
CacheHierarchy::memoryBytesFetched() const
{
    std::uint64_t total = 0;
    for (const auto &cache : l2s_)
        total += cache->stats().bytesFetched;
    return total;
}

std::uint64_t
CacheHierarchy::memoryBytesWrittenBack() const
{
    std::uint64_t total = 0;
    for (const auto &cache : l2s_)
        total += cache->stats().bytesWrittenBack;
    return total;
}

std::uint64_t
CacheHierarchy::memoryTrafficBytes() const
{
    return memoryBytesFetched() + memoryBytesWrittenBack();
}

void
CacheHierarchy::resetStats()
{
    for (const auto &cache : l1s_)
        cache->resetStats();
    for (const auto &cache : l2s_)
        cache->resetStats();
}

} // namespace bwwall
