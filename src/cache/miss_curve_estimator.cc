#include "cache/miss_curve_estimator.hh"

#include <algorithm>
#include <cmath>

#include "cache/set_assoc_cache.hh"
#include "trace/stack_distance.hh"
#include "util/logging.hh"
#include "util/trace_span.hh"

namespace bwwall {

namespace {

void
validateSpec(const MissCurveSpec &spec)
{
    if (spec.capacities.empty())
        fatal("miss-curve spec requires at least one capacity");
    if (spec.measuredAccesses == 0)
        fatal("miss-curve spec requires measured accesses");
    for (const std::uint64_t capacity : spec.capacities) {
        if (capacity < spec.cache.lineBytes ||
            capacity % spec.cache.lineBytes != 0) {
            fatal("miss-curve capacity ", capacity,
                  " is not a multiple of the ", spec.cache.lineBytes,
                  "-byte line size");
        }
    }
}

/** The stack estimators model LRU write-allocate unsectored caches. */
void
requireStackModelable(const MissCurveSpec &spec,
                      const std::string &estimator)
{
    if (spec.cache.replacement != ReplacementKind::LRU)
        fatal(estimator, " models LRU only; use the exact estimator "
                         "for other replacement policies");
    if (spec.cache.writeAllocate != WriteAllocate::Allocate)
        fatal(estimator, " models write-allocate caches only; use "
                         "the exact estimator for write-around");
    if (spec.cache.sectored)
        fatal(estimator, " does not model sectored caches; use the "
                         "exact estimator");
    if (spec.kind == MissCurveEstimatorKind::SampledStackDistance &&
        (spec.sampleRate <= 0.0 || spec.sampleRate > 1.0))
        fatal(estimator, " requires a sample rate in (0, 1], got ",
              spec.sampleRate);
}

/**
 * Per-capacity miss and write-back mass from the profiler's weighted
 * histograms, with the binomial set-conflict correction.
 *
 * An access with stack distance d sees d-1 distinct intervening
 * lines.  With S sets and uniformly hashed addresses each intervener
 * lands in the access's set with probability 1/S, so under LRU the
 * access misses with probability P(Binomial(d-1, 1/S) >= A).  For a
 * fully associative cache (S == 1) this degenerates to the exact
 * threshold d > capacity, keeping the estimator bit-exact against
 * the simulator there.  The same eviction probability weights the
 * write-back windows.
 */
struct CorrectedMass
{
    double misses = 0.0;
    double writebacks = 0.0;
};

CorrectedMass
correctedMass(const StackDistanceProfiler &profiler,
              const CacheConfig &config, std::uint64_t capacity_lines)
{
    const std::vector<double> &dist = profiler.distanceWeights();
    const std::vector<double> &wb = profiler.writebackWeights();

    CorrectedMass mass;
    mass.misses = profiler.coldWeight();
    mass.writebacks = profiler.coldWritebackWeight();

    std::uint64_t ways = config.associativity == 0
                             ? capacity_lines
                             : std::min<std::uint64_t>(
                                   config.associativity,
                                   capacity_lines);
    ways = std::max<std::uint64_t>(ways, 1);
    const std::uint64_t sets = std::max<std::uint64_t>(
        capacity_lines / ways, 1);

    if (sets == 1) {
        // Fully associative: exact LRU threshold at the capacity.
        for (std::size_t d = static_cast<std::size_t>(capacity_lines) + 1;
             d < dist.size(); ++d)
            mass.misses += dist[d];
        for (std::size_t g = static_cast<std::size_t>(capacity_lines) + 1;
             g < wb.size(); ++g)
            mass.writebacks += wb[g];
        return mass;
    }

    // Suffix sums let the scan stop once the miss probability has
    // saturated without losing the histogram tails.
    const std::size_t length = std::max(dist.size(), wb.size());
    std::vector<double> dist_suffix(length + 1, 0.0);
    std::vector<double> wb_suffix(length + 1, 0.0);
    for (std::size_t d = length; d > 0; --d) {
        dist_suffix[d - 1] =
            dist_suffix[d] + (d - 1 < dist.size() ? dist[d - 1] : 0.0);
        wb_suffix[d - 1] =
            wb_suffix[d] + (d - 1 < wb.size() ? wb[d - 1] : 0.0);
    }

    const double p = 1.0 / static_cast<double>(sets);
    // pmf[k] = P(Binomial(d-1, p) == k) for k < ways, maintained
    // incrementally as d grows; the miss probability is 1 - sum(pmf).
    std::vector<double> pmf(static_cast<std::size_t>(ways), 0.0);
    pmf[0] = 1.0;
    double hit_probability = 1.0;

    for (std::size_t d = 1; d < length; ++d) {
        const double miss_probability = 1.0 - hit_probability;
        if (miss_probability > 1.0 - 1e-12) {
            mass.misses += dist_suffix[d];
            mass.writebacks += wb_suffix[d];
            return mass;
        }
        if (d < dist.size())
            mass.misses += dist[d] * miss_probability;
        if (d < wb.size())
            mass.writebacks += wb[d] * miss_probability;

        // Advance the binomial from d-1 to d intervening lines.
        for (std::size_t k = pmf.size(); k-- > 1;)
            pmf[k] = pmf[k] * (1.0 - p) + pmf[k - 1] * p;
        pmf[0] *= 1.0 - p;
        hit_probability = 0.0;
        for (const double mass_k : pmf)
            hit_probability += mass_k;
    }
    return mass;
}

/** Shared implementation of the two stack-based estimators. */
MissCurve
stackEstimate(TraceSource &trace, const MissCurveSpec &spec,
              const std::string &estimator_name, double sample_rate,
              std::size_t max_sampled_lines)
{
    validateSpec(spec);
    requireStackModelable(spec, estimator_name);

    std::uint64_t max_capacity_lines = 0;
    for (const std::uint64_t capacity : spec.capacities)
        max_capacity_lines = std::max(max_capacity_lines,
                                      capacity / spec.cache.lineBytes);

    StackDistanceProfilerConfig profiler_config;
    profiler_config.lineBytes = spec.cache.lineBytes;
    // Distances past 4x the largest grid capacity saturate the miss
    // probability at every grid point, so lumping them with the
    // compulsory misses loses nothing and bounds memory.
    profiler_config.maxTrackedDistance = std::max<std::size_t>(
        static_cast<std::size_t>(max_capacity_lines) * 4, 1024);
    profiler_config.sampleRate = sample_rate;
    profiler_config.maxSampledLines = max_sampled_lines;
    profiler_config.seed = spec.seed;
    StackDistanceProfiler profiler(profiler_config);

    trace.reset();
    {
        Span warmup_span("miss_curve.warmup");
        for (std::uint64_t i = 0; i < spec.warmupAccesses; ++i)
            profiler.observe(trace.next());
    }
    profiler.resetCounters();
    {
        Span profile_span("miss_curve.profile");
        for (std::uint64_t i = 0; i < spec.measuredAccesses; ++i)
            profiler.observe(trace.next());
    }

    // SHARDS_adj note: dividing the estimated miss mass by the exact
    // access count N (known, not estimated) is equivalent to the
    // paper's first-bucket adjustment — distance-1 accesses can never
    // miss, so topping that bucket up to N only fixes the
    // denominator, which using N directly already does.
    const auto accesses =
        static_cast<double>(profiler.totalAccesses());

    Span readout_span("miss_curve.readout");
    MissCurve curve;
    curve.estimator = estimator_name;
    curve.tracePasses = 1;
    curve.profiledAccesses = profiler.totalAccesses();
    curve.sampledAccesses = profiler.sampledAccesses();
    curve.points.reserve(spec.capacities.size());
    for (const std::uint64_t capacity : spec.capacities) {
        const CorrectedMass mass = correctedMass(
            profiler, spec.cache, capacity / spec.cache.lineBytes);
        MissCurvePoint point;
        point.capacityBytes = capacity;
        point.missRate = accesses == 0.0 ? 0.0
                                         : mass.misses / accesses;
        point.writebackRatio =
            mass.misses == 0.0 ? 0.0 : mass.writebacks / mass.misses;
        point.trafficBytesPerAccess =
            accesses == 0.0
                ? 0.0
                : (mass.misses + mass.writebacks) *
                      static_cast<double>(spec.cache.lineBytes) /
                      accesses;
        curve.points.push_back(point);
    }
    return curve;
}

} // namespace

const char *
missCurveEstimatorKindName(MissCurveEstimatorKind kind)
{
    switch (kind) {
      case MissCurveEstimatorKind::ExactSim:
        return "exact";
      case MissCurveEstimatorKind::StackDistance:
        return "stack";
      case MissCurveEstimatorKind::SampledStackDistance:
        return "sampled";
    }
    return "unknown";
}

bool
parseMissCurveEstimatorKind(const std::string &name,
                            MissCurveEstimatorKind *kind)
{
    if (name == "exact" || name == "exact-sim") {
        *kind = MissCurveEstimatorKind::ExactSim;
        return true;
    }
    if (name == "stack" || name == "stack-distance" ||
        name == "mattson") {
        *kind = MissCurveEstimatorKind::StackDistance;
        return true;
    }
    if (name == "sampled" || name == "shards" ||
        name == "sampled-stack-distance") {
        *kind = MissCurveEstimatorKind::SampledStackDistance;
        return true;
    }
    return false;
}

PowerLawFit
MissCurve::fit() const
{
    return fitMissCurve(points);
}

std::string
ExactSimEstimator::name() const
{
    return "exact";
}

MissCurve
ExactSimEstimator::estimate(TraceSource &trace,
                            const MissCurveSpec &spec) const
{
    validateSpec(spec);

    MissCurve curve;
    curve.estimator = name();
    curve.points.reserve(spec.capacities.size());
    for (const std::uint64_t capacity : spec.capacities) {
        Span replay_span("miss_curve.exact_replay", capacity);
        CacheConfig config = spec.cache;
        config.capacityBytes = capacity;
        SetAssociativeCache cache(config);

        trace.reset();
        for (std::uint64_t i = 0; i < spec.warmupAccesses; ++i)
            cache.access(trace.next());
        cache.resetStats();
        for (std::uint64_t i = 0; i < spec.measuredAccesses; ++i)
            cache.access(trace.next());

        MissCurvePoint point;
        point.capacityBytes = capacity;
        point.missRate = cache.stats().missRate();
        point.writebackRatio = cache.stats().writebackRatio();
        point.trafficBytesPerAccess =
            cache.stats().trafficBytesPerAccess();
        curve.points.push_back(point);

        ++curve.tracePasses;
        curve.profiledAccesses += spec.measuredAccesses;
        curve.sampledAccesses += spec.measuredAccesses;
    }
    return curve;
}

std::string
StackDistanceEstimator::name() const
{
    return "stack";
}

MissCurve
StackDistanceEstimator::estimate(TraceSource &trace,
                                 const MissCurveSpec &spec) const
{
    return stackEstimate(trace, spec, name(), 1.0, 0);
}

std::string
SampledStackDistanceEstimator::name() const
{
    return "sampled";
}

MissCurve
SampledStackDistanceEstimator::estimate(TraceSource &trace,
                                        const MissCurveSpec &spec) const
{
    return stackEstimate(trace, spec, name(), spec.sampleRate,
                         spec.maxSampledLines);
}

std::unique_ptr<MissCurveEstimator>
makeMissCurveEstimator(MissCurveEstimatorKind kind)
{
    switch (kind) {
      case MissCurveEstimatorKind::ExactSim:
        return std::make_unique<ExactSimEstimator>();
      case MissCurveEstimatorKind::StackDistance:
        return std::make_unique<StackDistanceEstimator>();
      case MissCurveEstimatorKind::SampledStackDistance:
        return std::make_unique<SampledStackDistanceEstimator>();
    }
    fatal("unknown miss-curve estimator kind");
}

MissCurve
estimateMissCurve(TraceSource &trace, const MissCurveSpec &spec)
{
    Span span("miss_curve.estimate");
    return makeMissCurveEstimator(spec.kind)->estimate(trace, spec);
}

} // namespace bwwall
