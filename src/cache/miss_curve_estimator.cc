#include "cache/miss_curve_estimator.hh"

#include <algorithm>
#include <cmath>

#include "cache/set_assoc_cache.hh"
#include "trace/stack_distance.hh"
#include "trace/streaming_estimator.hh"
#include "util/logging.hh"
#include "util/trace_span.hh"

namespace bwwall {

namespace {

void
validateSpec(const MissCurveSpec &spec)
{
    if (spec.capacities.empty())
        fatal("miss-curve spec requires at least one capacity");
    if (spec.measuredAccesses == 0)
        fatal("miss-curve spec requires measured accesses");
    for (const std::uint64_t capacity : spec.capacities) {
        if (capacity < spec.cache.lineBytes ||
            capacity % spec.cache.lineBytes != 0) {
            fatal("miss-curve capacity ", capacity,
                  " is not a multiple of the ", spec.cache.lineBytes,
                  "-byte line size");
        }
    }
}

/** The stack estimators model LRU write-allocate unsectored caches. */
void
requireStackModelable(const MissCurveSpec &spec,
                      const std::string &estimator)
{
    if (spec.cache.replacement != ReplacementKind::LRU)
        fatal(estimator, " models LRU only; use the exact estimator "
                         "for other replacement policies");
    if (spec.cache.writeAllocate != WriteAllocate::Allocate)
        fatal(estimator, " models write-allocate caches only; use "
                         "the exact estimator for write-around");
    if (spec.cache.sectored)
        fatal(estimator, " does not model sectored caches; use the "
                         "exact estimator");
    if (spec.kind == MissCurveEstimatorKind::SampledStackDistance &&
        (spec.sampleRate <= 0.0 || spec.sampleRate > 1.0))
        fatal(estimator, " requires a sample rate in (0, 1], got ",
              spec.sampleRate);
}

/** Shared implementation of the two stack-based estimators. */
MissCurve
stackEstimate(TraceSource &trace, const MissCurveSpec &spec,
              const std::string &estimator_name, double sample_rate,
              std::size_t max_sampled_lines)
{
    validateSpec(spec);
    requireStackModelable(spec, estimator_name);

    std::uint64_t max_capacity_lines = 0;
    for (const std::uint64_t capacity : spec.capacities)
        max_capacity_lines = std::max(max_capacity_lines,
                                      capacity / spec.cache.lineBytes);

    // Same derivation the streaming estimator uses, so the two paths
    // stay bit-identical (trace/streaming_estimator.hh).
    StackDistanceProfiler profiler(streamingProfilerConfig(
        spec.cache.lineBytes, max_capacity_lines, sample_rate,
        max_sampled_lines, spec.seed));

    trace.reset();
    {
        Span warmup_span("miss_curve.warmup");
        for (std::uint64_t i = 0; i < spec.warmupAccesses; ++i)
            profiler.observe(trace.next());
    }
    profiler.resetCounters();
    {
        Span profile_span("miss_curve.profile");
        for (std::uint64_t i = 0; i < spec.measuredAccesses; ++i)
            profiler.observe(trace.next());
    }

    // SHARDS_adj note: dividing the estimated miss mass by the exact
    // access count N (known, not estimated) is equivalent to the
    // paper's first-bucket adjustment — distance-1 accesses can never
    // miss, so topping that bucket up to N only fixes the
    // denominator, which using N directly already does.
    const auto accesses =
        static_cast<double>(profiler.totalAccesses());

    Span readout_span("miss_curve.readout");
    MissCurve curve;
    curve.estimator = estimator_name;
    curve.tracePasses = 1;
    curve.profiledAccesses = profiler.totalAccesses();
    curve.sampledAccesses = profiler.sampledAccesses();
    curve.points.reserve(spec.capacities.size());
    for (const std::uint64_t capacity : spec.capacities) {
        const StackCurveMass mass = correctedStackMass(
            profiler, capacity / spec.cache.lineBytes,
            spec.cache.associativity);
        MissCurvePoint point;
        point.capacityBytes = capacity;
        point.missRate = accesses == 0.0 ? 0.0
                                         : mass.misses / accesses;
        point.writebackRatio =
            mass.misses == 0.0 ? 0.0 : mass.writebacks / mass.misses;
        point.trafficBytesPerAccess =
            accesses == 0.0
                ? 0.0
                : (mass.misses + mass.writebacks) *
                      static_cast<double>(spec.cache.lineBytes) /
                      accesses;
        curve.points.push_back(point);
    }
    return curve;
}

} // namespace

const char *
missCurveEstimatorKindName(MissCurveEstimatorKind kind)
{
    switch (kind) {
      case MissCurveEstimatorKind::ExactSim:
        return "exact";
      case MissCurveEstimatorKind::StackDistance:
        return "stack";
      case MissCurveEstimatorKind::SampledStackDistance:
        return "sampled";
    }
    return "unknown";
}

bool
parseMissCurveEstimatorKind(const std::string &name,
                            MissCurveEstimatorKind *kind)
{
    if (name == "exact" || name == "exact-sim") {
        *kind = MissCurveEstimatorKind::ExactSim;
        return true;
    }
    if (name == "stack" || name == "stack-distance" ||
        name == "mattson") {
        *kind = MissCurveEstimatorKind::StackDistance;
        return true;
    }
    if (name == "sampled" || name == "shards" ||
        name == "sampled-stack-distance") {
        *kind = MissCurveEstimatorKind::SampledStackDistance;
        return true;
    }
    return false;
}

PowerLawFit
MissCurve::fit() const
{
    return fitMissCurve(points);
}

std::string
ExactSimEstimator::name() const
{
    return "exact";
}

MissCurve
ExactSimEstimator::estimate(TraceSource &trace,
                            const MissCurveSpec &spec) const
{
    validateSpec(spec);

    MissCurve curve;
    curve.estimator = name();
    curve.points.reserve(spec.capacities.size());
    for (const std::uint64_t capacity : spec.capacities) {
        Span replay_span("miss_curve.exact_replay", capacity);
        CacheConfig config = spec.cache;
        config.capacityBytes = capacity;
        SetAssociativeCache cache(config);

        trace.reset();
        for (std::uint64_t i = 0; i < spec.warmupAccesses; ++i)
            cache.access(trace.next());
        cache.resetStats();
        for (std::uint64_t i = 0; i < spec.measuredAccesses; ++i)
            cache.access(trace.next());

        MissCurvePoint point;
        point.capacityBytes = capacity;
        point.missRate = cache.stats().missRate();
        point.writebackRatio = cache.stats().writebackRatio();
        point.trafficBytesPerAccess =
            cache.stats().trafficBytesPerAccess();
        curve.points.push_back(point);

        ++curve.tracePasses;
        curve.profiledAccesses += spec.measuredAccesses;
        curve.sampledAccesses += spec.measuredAccesses;
    }
    return curve;
}

std::string
StackDistanceEstimator::name() const
{
    return "stack";
}

MissCurve
StackDistanceEstimator::estimate(TraceSource &trace,
                                 const MissCurveSpec &spec) const
{
    return stackEstimate(trace, spec, name(), 1.0, 0);
}

std::string
SampledStackDistanceEstimator::name() const
{
    return "sampled";
}

MissCurve
SampledStackDistanceEstimator::estimate(TraceSource &trace,
                                        const MissCurveSpec &spec) const
{
    return stackEstimate(trace, spec, name(), spec.sampleRate,
                         spec.maxSampledLines);
}

std::unique_ptr<MissCurveEstimator>
makeMissCurveEstimator(MissCurveEstimatorKind kind)
{
    switch (kind) {
      case MissCurveEstimatorKind::ExactSim:
        return std::make_unique<ExactSimEstimator>();
      case MissCurveEstimatorKind::StackDistance:
        return std::make_unique<StackDistanceEstimator>();
      case MissCurveEstimatorKind::SampledStackDistance:
        return std::make_unique<SampledStackDistanceEstimator>();
    }
    fatal("unknown miss-curve estimator kind");
}

MissCurve
estimateMissCurve(TraceSource &trace, const MissCurveSpec &spec)
{
    Span span("miss_curve.estimate");
    return makeMissCurveEstimator(spec.kind)->estimate(trace, spec);
}

} // namespace bwwall
