#include "cache/set_assoc_cache.hh"

#include <bit>

#include "util/logging.hh"
#include "util/units.hh"

namespace bwwall {

SetAssociativeCache::SetAssociativeCache(const CacheConfig &config)
    : config_(config), rng_(config.seed)
{
    if (!isPowerOfTwo(config_.lineBytes))
        fatal("cache line size must be a power of two, got ",
              config_.lineBytes);
    if (config_.capacityBytes == 0 ||
        config_.capacityBytes % config_.lineBytes != 0) {
        fatal("cache capacity must be a positive multiple of the line "
              "size");
    }
    lineShift_ = floorLog2(config_.lineBytes);

    const std::uint64_t total_lines = config_.lines();
    ways_ = config_.associativity == 0
                ? static_cast<std::uint32_t>(total_lines)
                : config_.associativity;
    if (ways_ == 0 || total_lines % ways_ != 0)
        fatal("associativity must divide the line count");
    numSets_ = total_lines / ways_;
    if (!isPowerOfTwo(numSets_))
        fatal("cache must have a power-of-two set count, got ",
              numSets_);

    if (config_.sectored) {
        if (!isPowerOfTwo(config_.sectorBytes) ||
            config_.sectorBytes > config_.lineBytes) {
            fatal("sector size must be a power of two no larger than "
                  "the line");
        }
        sectorsPerLine_ = config_.lineBytes / config_.sectorBytes;
        if (sectorsPerLine_ > 32)
            fatal("at most 32 sectors per line are supported");
    } else {
        sectorsPerLine_ = 1;
    }
    fullSectorMask_ = sectorsPerLine_ >= 32
                          ? ~std::uint32_t{0}
                          : ((std::uint32_t{1} << sectorsPerLine_) - 1);

    lines_.assign(numSets_ * ways_, LineState{});
    replacement_.reserve(numSets_);
    for (std::uint64_t set = 0; set < numSets_; ++set) {
        replacement_.push_back(
            makeReplacementPolicy(config_.replacement, ways_, rng_));
    }
}

std::uint64_t
SetAssociativeCache::setIndex(Address line_number) const
{
    return line_number & (numSets_ - 1);
}

Address
SetAssociativeCache::tagOf(Address line_number) const
{
    return line_number / numSets_;
}

SetAssociativeCache::LineState &
SetAssociativeCache::line(std::uint64_t set, unsigned way)
{
    return lines_[set * ways_ + way];
}

const SetAssociativeCache::LineState &
SetAssociativeCache::line(std::uint64_t set, unsigned way) const
{
    return lines_[set * ways_ + way];
}

std::uint32_t
SetAssociativeCache::sectorBit(Address address) const
{
    if (!config_.sectored)
        return 1;
    const Address offset = address & (config_.lineBytes - 1);
    return std::uint32_t{1} << (offset / config_.sectorBytes);
}

void
SetAssociativeCache::setEvictionCallback(EvictionCallback callback)
{
    evictionCallback_ = std::move(callback);
}

void
SetAssociativeCache::evict(std::uint64_t set, unsigned way)
{
    LineState &state = line(set, way);
    if (!state.valid)
        return;
    const bool dirty = state.sectorDirtyMask != 0;
    if (state.prefetched)
        ++stats_.uselessPrefetches; // never touched by a demand hit
    ++stats_.evictions;
    if (dirty) {
        ++stats_.writebacks;
        // Only dirty sectors travel back; whole line when unsectored.
        const auto dirty_sectors = static_cast<std::uint64_t>(
            std::popcount(state.sectorDirtyMask));
        stats_.bytesWrittenBack += config_.sectored
            ? dirty_sectors * config_.sectorBytes
            : config_.lineBytes;
    }
    if (evictionCallback_) {
        EvictionRecord record;
        record.lineAddress =
            ((state.tag * numSets_) | set) << lineShift_;
        record.dirty = dirty;
        record.sharerCount = static_cast<unsigned>(
            std::popcount(state.sharerMask));
        evictionCallback_(record);
    }
    state = LineState{};
}

AccessOutcome
SetAssociativeCache::access(const MemoryAccess &request)
{
    AccessOutcome outcome;
    ++stats_.accesses;
    if (isWrite(request))
        ++stats_.writes;
    else
        ++stats_.reads;

    const Address line_number = request.address >> lineShift_;
    const std::uint64_t set = setIndex(line_number);
    const Address tag = tagOf(line_number);
    const std::uint32_t sector = sectorBit(request.address);
    const std::uint64_t sharer_bit =
        std::uint64_t{1} << (request.thread & 63);

    // Hit check.
    for (unsigned way = 0; way < ways_; ++way) {
        LineState &state = line(set, way);
        if (!state.valid || state.tag != tag)
            continue;
        outcome.hit = true;
        ++stats_.hits;
        replacement_[set]->onAccess(way);
        state.sharerMask |= sharer_bit;
        if (state.prefetched) {
            state.prefetched = false;
            ++stats_.usefulPrefetches;
        }
        if ((state.sectorValidMask & sector) == 0) {
            // Resident line, absent sector: fetch just the sector.
            ++stats_.sectorMisses;
            outcome.sectorFill = true;
            outcome.bytesFetched = config_.sectorBytes;
            stats_.bytesFetched += config_.sectorBytes;
            state.sectorValidMask |= sector;
        }
        if (isWrite(request))
            state.sectorDirtyMask |= sector;
        return outcome;
    }

    // Miss.
    ++stats_.misses;
    if (isWrite(request) &&
        config_.writeAllocate == WriteAllocate::NoAllocate) {
        // Write-around: the store goes straight to the next level.
        constexpr std::uint64_t store_bytes = 8;
        outcome.bytesWrittenBack = store_bytes;
        stats_.bytesWrittenBack += store_bytes;
        return outcome;
    }

    // Choose a way: an invalid one if available, else the victim.
    unsigned fill_way = ways_;
    for (unsigned way = 0; way < ways_; ++way) {
        if (!line(set, way).valid) {
            fill_way = way;
            break;
        }
    }
    if (fill_way == ways_) {
        fill_way = replacement_[set]->victimWay();
        const std::uint64_t written_before = stats_.bytesWrittenBack;
        evict(set, fill_way);
        outcome.bytesWrittenBack =
            stats_.bytesWrittenBack - written_before;
    }

    LineState &state = line(set, fill_way);
    state.valid = true;
    state.tag = tag;
    state.sharerMask = sharer_bit;
    if (config_.sectored) {
        state.sectorValidMask = sector;
        outcome.bytesFetched = config_.sectorBytes;
    } else {
        state.sectorValidMask = fullSectorMask_;
        outcome.bytesFetched = config_.lineBytes;
    }
    state.sectorDirtyMask = isWrite(request) ? sector : 0;
    stats_.bytesFetched += outcome.bytesFetched;
    replacement_[set]->onInsert(fill_way);
    return outcome;
}

std::uint64_t
SetAssociativeCache::insertPrefetch(Address address)
{
    const Address line_number = address >> lineShift_;
    const std::uint64_t set = setIndex(line_number);
    const Address tag = tagOf(line_number);

    for (unsigned way = 0; way < ways_; ++way) {
        if (line(set, way).valid && line(set, way).tag == tag)
            return 0; // already resident: nothing to do
    }

    unsigned fill_way = ways_;
    for (unsigned way = 0; way < ways_; ++way) {
        if (!line(set, way).valid) {
            fill_way = way;
            break;
        }
    }
    if (fill_way == ways_) {
        fill_way = replacement_[set]->victimWay();
        evict(set, fill_way);
    }

    LineState &state = line(set, fill_way);
    state.valid = true;
    state.tag = tag;
    state.sectorValidMask = fullSectorMask_;
    state.sectorDirtyMask = 0;
    state.sharerMask = 0;
    state.prefetched = true;
    replacement_[set]->onInsert(fill_way);

    ++stats_.prefetchFills;
    stats_.bytesFetched += config_.lineBytes;
    return config_.lineBytes;
}

bool
SetAssociativeCache::contains(Address address) const
{
    const Address line_number = address >> lineShift_;
    const std::uint64_t set = setIndex(line_number);
    const Address tag = tagOf(line_number);
    for (unsigned way = 0; way < ways_; ++way) {
        const LineState &state = line(set, way);
        if (state.valid && state.tag == tag)
            return true;
    }
    return false;
}

bool
SetAssociativeCache::isDirty(Address address) const
{
    const Address line_number = address >> lineShift_;
    const std::uint64_t set = setIndex(line_number);
    const Address tag = tagOf(line_number);
    for (unsigned way = 0; way < ways_; ++way) {
        const LineState &state = line(set, way);
        if (state.valid && state.tag == tag)
            return state.sectorDirtyMask != 0;
    }
    return false;
}

bool
SetAssociativeCache::invalidate(Address address)
{
    const Address line_number = address >> lineShift_;
    const std::uint64_t set = setIndex(line_number);
    const Address tag = tagOf(line_number);
    for (unsigned way = 0; way < ways_; ++way) {
        LineState &state = line(set, way);
        if (state.valid && state.tag == tag) {
            const bool was_dirty = state.sectorDirtyMask != 0;
            state = LineState{};
            return was_dirty;
        }
    }
    return false;
}

bool
SetAssociativeCache::downgrade(Address address)
{
    const Address line_number = address >> lineShift_;
    const std::uint64_t set = setIndex(line_number);
    const Address tag = tagOf(line_number);
    for (unsigned way = 0; way < ways_; ++way) {
        LineState &state = line(set, way);
        if (state.valid && state.tag == tag) {
            const bool was_dirty = state.sectorDirtyMask != 0;
            state.sectorDirtyMask = 0;
            return was_dirty;
        }
    }
    return false;
}

std::uint64_t
SetAssociativeCache::residentLines() const
{
    std::uint64_t count = 0;
    for (const LineState &state : lines_)
        count += state.valid;
    return count;
}

void
SetAssociativeCache::flush()
{
    for (std::uint64_t set = 0; set < numSets_; ++set)
        for (unsigned way = 0; way < ways_; ++way)
            evict(set, way);
}

} // namespace bwwall
