/**
 * @file
 * Hardware prefetchers for the cache model.
 *
 * Prefetching is the classic bandwidth *consumer*: it trades off-chip
 * traffic for latency, which is exactly the currency the bandwidth
 * wall rations.  Two standard designs are provided — a next-N-line
 * prefetcher and a stride prefetcher keyed by access history — so the
 * accuracy/traffic trade-off can be measured against the wall
 * (`bench/ext_prefetch_traffic`).
 */

#ifndef BWWALL_CACHE_PREFETCHER_HH
#define BWWALL_CACHE_PREFETCHER_HH

#include <cstdint>
#include <vector>

#include "cache/set_assoc_cache.hh"

namespace bwwall {

/** Which prefetch pattern generator to use. */
enum class PrefetcherKind : std::uint8_t
{
    NextLine, ///< fetch the next `degree` sequential lines on a miss
    Stride,   ///< detect constant strides in the miss stream
};

/** Static parameters of a Prefetcher. */
struct PrefetcherConfig
{
    PrefetcherKind kind = PrefetcherKind::NextLine;

    /** Lines prefetched per trigger. */
    unsigned degree = 2;

    /** Stride table entries (stride prefetcher only). */
    unsigned strideTableEntries = 16;

    /** Confirmations before a stride starts prefetching. */
    unsigned strideConfidence = 2;
};

/** Prefetcher statistics (issuance side; see CacheStats for use). */
struct PrefetcherStats
{
    /** Demand misses that triggered the prefetcher. */
    std::uint64_t triggers = 0;

    /** Prefetches issued (including already-resident no-ops). */
    std::uint64_t issued = 0;

    /** Bytes the prefetcher pulled from the next level. */
    std::uint64_t bytesFetched = 0;
};

/**
 * Drives a SetAssociativeCache's insertPrefetch from its demand
 * stream.  Call observe() after every demand access.
 */
class Prefetcher
{
  public:
    Prefetcher(SetAssociativeCache &cache,
               const PrefetcherConfig &config);

    /**
     * Feeds one demand access and its outcome; misses trigger
     * pattern detection and prefetch issue.
     */
    void observe(const MemoryAccess &access,
                 const AccessOutcome &outcome);

    const PrefetcherConfig &config() const { return config_; }
    const PrefetcherStats &stats() const { return stats_; }

    void resetStats() { stats_ = PrefetcherStats{}; }

  private:
    void issueAt(Address line_address);
    void triggerNextLine(Address address);
    void triggerStride(Address address);

    struct StrideEntry
    {
        bool valid = false;
        Address lastAddress = 0;
        std::int64_t stride = 0;
        unsigned confidence = 0;
        std::uint64_t lastUse = 0;
    };

    SetAssociativeCache &cache_;
    PrefetcherConfig config_;
    PrefetcherStats stats_;
    std::vector<StrideEntry> strideTable_;
    std::uint64_t useClock_ = 0;
};

} // namespace bwwall

#endif // BWWALL_CACHE_PREFETCHER_HH
