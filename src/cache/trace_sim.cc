#include "cache/trace_sim.hh"

#include <chrono>
#include <memory>

#include "cache/set_assoc_cache.hh"
#include "util/logging.hh"
#include "util/metrics.hh"
#include "util/thread_pool.hh"
#include "util/trace_span.hh"

namespace bwwall {

namespace {

/** Flat task coordinates: one task per (workload, shard) pair. */
struct ShardTask
{
    std::size_t workload = 0;
    unsigned shard = 0;
};

/** Accesses measured by one shard (remainder goes to shard 0). */
std::uint64_t
shardAccesses(const TraceCacheWorkload &workload, unsigned shard)
{
    const std::uint64_t share =
        workload.measuredAccesses / workload.shards;
    return shard == 0
               ? share + workload.measuredAccesses % workload.shards
               : share;
}

/** Simulates one shard; fully self-contained. */
CacheStats
simulateShard(const TraceCacheSweepParams &params,
              const ShardTask &task)
{
    Span span("trace_sim.shard", task.shard);
    const TraceCacheWorkload &workload =
        params.workloads[task.workload];
    const std::uint64_t seed =
        shardSeed(params.seed, task.workload, task.shard);

    CacheConfig config = params.cache;
    config.seed = seed;
    SetAssociativeCache cache(config);

    const std::unique_ptr<TraceSource> trace = makeProfileTrace(
        workload.profile, seed, config.lineBytes);

    for (std::uint64_t i = 0; i < workload.warmAccesses; ++i)
        cache.access(trace->next());
    cache.resetStats();
    const std::uint64_t measured = shardAccesses(workload,
                                                 task.shard);
    for (std::uint64_t i = 0; i < measured; ++i)
        cache.access(trace->next());
    return cache.stats();
}

/** Sums the second stats block into the first, field by field. */
void
mergeStats(CacheStats &into, const CacheStats &from)
{
    into.accesses += from.accesses;
    into.reads += from.reads;
    into.writes += from.writes;
    into.hits += from.hits;
    into.misses += from.misses;
    into.sectorMisses += from.sectorMisses;
    into.evictions += from.evictions;
    into.writebacks += from.writebacks;
    into.bytesFetched += from.bytesFetched;
    into.bytesWrittenBack += from.bytesWrittenBack;
    into.prefetchFills += from.prefetchFills;
    into.usefulPrefetches += from.usefulPrefetches;
    into.uselessPrefetches += from.uselessPrefetches;
}

} // namespace

std::uint64_t
shardSeed(std::uint64_t base, std::size_t workload, unsigned shard)
{
    // SplitMix64 over the (workload, shard) coordinates: distinct
    // coordinates land in distinct, well-mixed streams.
    std::uint64_t z = base +
                      0x9e3779b97f4a7c15ULL *
                          (static_cast<std::uint64_t>(workload) *
                               0x10001ULL +
                           shard + 1);
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    return z ^ (z >> 31);
}

std::vector<TraceCacheResult>
runTraceCacheSweep(const TraceCacheSweepParams &params)
{
    if (params.workloads.empty())
        fatal("trace cache sweep requires at least one workload");

    std::vector<ShardTask> tasks;
    for (std::size_t w = 0; w < params.workloads.size(); ++w) {
        if (params.workloads[w].shards == 0)
            fatal("workload '", params.workloads[w].profile.name,
                  "' must have at least one shard");
        for (unsigned s = 0; s < params.workloads[w].shards; ++s)
            tasks.push_back({w, s});
    }

    Span span("trace_sim.sweep");
    const auto start = std::chrono::steady_clock::now();
    // One task per shard; every shard derives its whole trace and
    // cache from shardSeed(), so the parallel sweep is bit-identical
    // to the serial one.
    const std::vector<CacheStats> shard_stats = parallelMap(
        tasks.size(), params.jobs,
        [&params, &tasks](std::size_t i) {
            return simulateShard(params, tasks[i]);
        });
    const double wall = std::chrono::duration<double>(
        std::chrono::steady_clock::now() - start).count();

    std::vector<TraceCacheResult> results(params.workloads.size());
    for (std::size_t w = 0; w < params.workloads.size(); ++w)
        results[w].workload = params.workloads[w].profile.name;
    for (std::size_t i = 0; i < tasks.size(); ++i)
        mergeStats(results[tasks[i].workload].stats, shard_stats[i]);

    if (params.metrics != nullptr) {
        MetricsRegistry &metrics = *params.metrics;
        metrics.addCounter("trace_sim.workloads",
                           params.workloads.size());
        metrics.addCounter("trace_sim.shards", tasks.size());
        std::uint64_t accesses = 0;
        for (const TraceCacheResult &result : results)
            accesses += result.stats.accesses;
        metrics.addCounter("trace_sim.accesses", accesses);
        // Warm-up runs per shard (see TraceCacheWorkload), so the
        // total unmeasured work scales with the shard count.
        std::uint64_t warm_total = 0;
        for (const TraceCacheWorkload &workload : params.workloads)
            warm_total += workload.warmAccesses * workload.shards;
        metrics.addCounter("trace_sim.warm_accesses_total",
                           warm_total);
        metrics.observeTimer("trace_sim.sweep", wall);
        if (wall > 0.0)
            metrics.setGauge("trace_sim.accesses_per_second",
                             static_cast<double>(accesses) / wall);
    }
    return results;
}

std::vector<TraceMissCurveResult>
runTraceMissCurveSweep(const TraceMissCurveSweepParams &params)
{
    if (params.workloads.empty())
        fatal("miss-curve sweep requires at least one workload");

    Span span("miss_curve.sweep");
    const auto start = std::chrono::steady_clock::now();
    // One task per workload; each derives its trace seed from the
    // base spec seed, so the parallel sweep is deterministic.
    const std::vector<TraceMissCurveResult> results = parallelMap(
        params.workloads.size(), params.jobs,
        [&params](std::size_t w) {
            Span workload_span("miss_curve.workload", w);
            MissCurveSpec spec = params.spec;
            spec.seed = shardSeed(params.spec.seed, w, 0);
            const std::unique_ptr<TraceSource> trace =
                makeProfileTrace(params.workloads[w], spec.seed,
                                 spec.cache.lineBytes);
            TraceMissCurveResult result;
            result.workload = params.workloads[w].name;
            result.curve = estimateMissCurve(*trace, spec);
            return result;
        });
    const double wall = std::chrono::duration<double>(
        std::chrono::steady_clock::now() - start).count();

    if (params.metrics != nullptr) {
        MetricsRegistry &metrics = *params.metrics;
        metrics.addCounter("miss_curve.workloads",
                           params.workloads.size());
        metrics.addCounter("miss_curve.grid_points",
                           params.spec.capacities.size());
        std::uint64_t passes = 0, profiled = 0, sampled = 0;
        for (const TraceMissCurveResult &result : results) {
            passes += result.curve.tracePasses;
            profiled += result.curve.profiledAccesses;
            sampled += result.curve.sampledAccesses;
        }
        metrics.addCounter("miss_curve.trace_passes", passes);
        metrics.addCounter("miss_curve.profiled_accesses", profiled);
        metrics.addCounter("miss_curve.sampled_accesses", sampled);
        metrics.observeTimer("miss_curve.sweep", wall);
    }
    return results;
}

} // namespace bwwall
