/**
 * @file
 * The miss-curve engine: one API, three estimators.
 *
 * Every power-law artifact in the paper needs miss ratios at many
 * cache sizes.  A MissCurveEstimator turns one reference stream plus
 * a MissCurveSpec (cache template, size grid, estimator kind,
 * sampling parameters) into a MissCurve over the whole grid:
 *
 *  - **ExactSimEstimator** replays the trace through the real
 *    SetAssociativeCache once per size — O(sizes x accesses), any
 *    replacement policy, sectoring, write-no-allocate; the ground
 *    truth oracle.
 *  - **StackDistanceEstimator** makes a single Mattson pass
 *    (trace/stack_distance.hh) and reads every size off the
 *    stack-distance histogram — O(accesses), bit-exact against the
 *    exact simulation for fully-associative LRU, and within a small
 *    model error for set-associative LRU via a binomial
 *    set-conflict correction.
 *  - **SampledStackDistanceEstimator** adds SHARDS spatial sampling
 *    to that single pass — O(accesses x R) stack work with bounded
 *    error, the configuration the CI speed/accuracy gate runs.
 *
 * The stack-based estimators model LRU, write-allocate,
 * non-sectored caches; request anything else and they refuse with a
 * pointer at the exact oracle.
 */

#ifndef BWWALL_CACHE_MISS_CURVE_ESTIMATOR_HH
#define BWWALL_CACHE_MISS_CURVE_ESTIMATOR_HH

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "cache/cache_config.hh"
#include "cache/miss_curve.hh"
#include "trace/trace_source.hh"
#include "util/linear_fit.hh"

namespace bwwall {

/** Which estimator a MissCurveSpec selects. */
enum class MissCurveEstimatorKind : std::uint8_t
{
    ExactSim,             ///< per-size replay through the simulator
    StackDistance,        ///< single-pass exact Mattson profiling
    SampledStackDistance, ///< single-pass SHARDS-sampled profiling
};

/** Canonical name of an estimator kind ("exact" / "stack" / ...). */
const char *missCurveEstimatorKindName(MissCurveEstimatorKind kind);

/**
 * Parses an estimator name; accepts the canonical names and common
 * aliases ("exact-sim", "mattson", "shards").  Returns false and
 * leaves *kind untouched on an unknown name.
 */
bool parseMissCurveEstimatorKind(const std::string &name,
                                 MissCurveEstimatorKind *kind);

/**
 * Everything a miss-curve measurement needs: one cache
 * configuration (capacityBytes is overridden by the grid), the size
 * grid, the trace window, and the estimator selection.
 */
struct MissCurveSpec
{
    /** Template for every size point; capacityBytes is overwritten. */
    CacheConfig cache;

    /** Cache sizes to estimate, in bytes. */
    std::vector<std::uint64_t> capacities;

    /** Accesses replayed to warm state before measuring. */
    std::uint64_t warmupAccesses = 400000;

    /** Accesses measured after warm-up. */
    std::uint64_t measuredAccesses = 1200000;

    /** Selected estimator. */
    MissCurveEstimatorKind kind =
        MissCurveEstimatorKind::StackDistance;

    /** SHARDS fixed-rate sampling rate in (0, 1] (sampled kind). */
    double sampleRate = 0.1;

    /**
     * When non-zero: SHARDS fixed-size mode, keeping at most this
     * many sampled lines resident (R_max variant; the rate then
     * decays below sampleRate as the footprint grows).
     */
    std::size_t maxSampledLines = 0;

    /** Salt of the spatial sampling hash. */
    std::uint64_t seed = 1;
};

/** A measured miss curve plus how it was produced. */
struct MissCurve
{
    /** One point per spec capacity, in grid order. */
    std::vector<MissCurvePoint> points;

    /** Name of the estimator that produced the curve. */
    std::string estimator;

    /** Full passes over the trace (1 for the stack estimators). */
    std::uint64_t tracePasses = 0;

    /** Measured-window accesses observed, summed over passes. */
    std::uint64_t profiledAccesses = 0;

    /** Accesses that passed the spatial filter (== profiled when
     * unsampled). */
    std::uint64_t sampledAccesses = 0;

    /** Power-law fit over the points; alpha is -fit().exponent. */
    PowerLawFit fit() const;
};

/** Interface shared by the three estimators. */
class MissCurveEstimator
{
  public:
    virtual ~MissCurveEstimator() = default;

    /** Canonical kind name, also stamped into MissCurve::estimator. */
    virtual std::string name() const = 0;

    /**
     * Estimates the miss curve of the trace over spec.capacities.
     * The trace is reset() first, so repeated calls see the
     * byte-identical stream.
     */
    virtual MissCurve estimate(TraceSource &trace,
                               const MissCurveSpec &spec) const = 0;
};

/** Ground-truth per-size replay through SetAssociativeCache. */
class ExactSimEstimator : public MissCurveEstimator
{
  public:
    std::string name() const override;
    MissCurve estimate(TraceSource &trace,
                       const MissCurveSpec &spec) const override;
};

/** Single-pass exact Mattson stack-distance estimator. */
class StackDistanceEstimator : public MissCurveEstimator
{
  public:
    std::string name() const override;
    MissCurve estimate(TraceSource &trace,
                       const MissCurveSpec &spec) const override;
};

/** Single-pass SHARDS-sampled stack-distance estimator. */
class SampledStackDistanceEstimator : public MissCurveEstimator
{
  public:
    std::string name() const override;
    MissCurve estimate(TraceSource &trace,
                       const MissCurveSpec &spec) const override;
};

/** Builds the estimator for a kind. */
std::unique_ptr<MissCurveEstimator>
makeMissCurveEstimator(MissCurveEstimatorKind kind);

/**
 * The one entry point: builds the estimator spec.kind selects and
 * runs it over the trace.
 */
MissCurve estimateMissCurve(TraceSource &trace,
                            const MissCurveSpec &spec);

} // namespace bwwall

#endif // BWWALL_CACHE_MISS_CURVE_ESTIMATOR_HH
