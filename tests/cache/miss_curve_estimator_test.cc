/**
 * @file
 * Cross-validation of the three MissCurveEstimator implementations:
 * the single-pass stack estimator must be bit-exact against the
 * per-size replay on fully-associative LRU, within tight tolerance on
 * set-associative LRU, and the SHARDS-sampled estimator must stay
 * within the CI error bound across many sampling seeds.
 */

#include <gtest/gtest.h>

#include <cmath>

#include "cache/miss_curve_estimator.hh"
#include "cache/trace_sim.hh"
#include "trace/power_law_trace.hh"
#include "util/metrics.hh"
#include "util/units.hh"

namespace bwwall {
namespace {

PowerLawTrace
makeTrace(double alpha, std::uint64_t seed)
{
    PowerLawTraceParams params;
    params.alpha = alpha;
    params.writeLineFraction = 0.3;
    params.seed = seed;
    params.warmLines = 1 << 15;
    params.maxResidentLines = 1 << 16;
    return PowerLawTrace(params);
}

MissCurveSpec
makeSpec(MissCurveEstimatorKind kind)
{
    MissCurveSpec spec;
    spec.kind = kind;
    spec.capacities = capacityLadder(8 * kKiB, 256 * kKiB);
    spec.warmupAccesses = 100000;
    spec.measuredAccesses = 300000;
    return spec;
}

TEST(MissCurveEstimatorKindTest, NameParseRoundTrip)
{
    for (const auto kind : {MissCurveEstimatorKind::ExactSim,
                            MissCurveEstimatorKind::StackDistance,
                            MissCurveEstimatorKind::SampledStackDistance}) {
        MissCurveEstimatorKind parsed =
            MissCurveEstimatorKind::ExactSim;
        ASSERT_TRUE(parseMissCurveEstimatorKind(
            missCurveEstimatorKindName(kind), &parsed));
        EXPECT_EQ(parsed, kind);
        EXPECT_EQ(makeMissCurveEstimator(kind)->name(),
                  missCurveEstimatorKindName(kind));
    }
}

TEST(MissCurveEstimatorKindTest, AliasesAndRejects)
{
    MissCurveEstimatorKind kind = MissCurveEstimatorKind::ExactSim;
    EXPECT_TRUE(parseMissCurveEstimatorKind("mattson", &kind));
    EXPECT_EQ(kind, MissCurveEstimatorKind::StackDistance);
    EXPECT_TRUE(parseMissCurveEstimatorKind("shards", &kind));
    EXPECT_EQ(kind, MissCurveEstimatorKind::SampledStackDistance);
    EXPECT_TRUE(parseMissCurveEstimatorKind("exact-sim", &kind));
    EXPECT_EQ(kind, MissCurveEstimatorKind::ExactSim);
    EXPECT_FALSE(parseMissCurveEstimatorKind("psel", &kind));
}

/**
 * Property: on a fully-associative LRU cache the Mattson profile is
 * not an approximation — the single-pass estimator must reproduce the
 * per-size replay's miss rates bit for bit, on every trace.
 */
class StackExactnessTest
    : public ::testing::TestWithParam<std::uint64_t>
{};

TEST_P(StackExactnessTest, BitExactOnFullyAssociativeLru)
{
    PowerLawTrace trace = makeTrace(0.5, GetParam());

    MissCurveSpec spec = makeSpec(MissCurveEstimatorKind::ExactSim);
    spec.cache.associativity = 0; // fully associative
    const MissCurve exact = estimateMissCurve(trace, spec);

    spec.kind = MissCurveEstimatorKind::StackDistance;
    const MissCurve stack = estimateMissCurve(trace, spec);

    ASSERT_EQ(exact.points.size(), stack.points.size());
    for (std::size_t i = 0; i < exact.points.size(); ++i) {
        EXPECT_EQ(exact.points[i].missRate, stack.points[i].missRate)
            << "at capacity " << exact.points[i].capacityBytes;
    }
    EXPECT_EQ(stack.tracePasses, 1u);
    EXPECT_EQ(exact.tracePasses, spec.capacities.size());
    EXPECT_EQ(stack.sampledAccesses, stack.profiledAccesses);
}

INSTANTIATE_TEST_SUITE_P(RandomTraces, StackExactnessTest,
                         ::testing::Values(3, 17, 291, 4242, 99991));

/**
 * The write-back model predicts evictions from dirty windows instead
 * of observing them, so it is not bit-exact — the replay only counts
 * a write back once the dirty line is actually evicted, which lags
 * the write by up to a full cache capacity of misses.  Over a window
 * long relative to the largest capacity the two must agree closely.
 */
TEST(StackEstimatorTest, WritebackRatioTracksExactReplay)
{
    PowerLawTrace trace = makeTrace(0.5, 71);

    MissCurveSpec spec = makeSpec(MissCurveEstimatorKind::ExactSim);
    spec.cache.associativity = 0;
    spec.measuredAccesses = 1200000;
    const MissCurve exact = estimateMissCurve(trace, spec);

    spec.kind = MissCurveEstimatorKind::StackDistance;
    const MissCurve stack = estimateMissCurve(trace, spec);

    for (std::size_t i = 0; i < exact.points.size(); ++i) {
        EXPECT_NEAR(stack.points[i].writebackRatio,
                    exact.points[i].writebackRatio, 0.05)
            << "at capacity " << exact.points[i].capacityBytes;
    }
}

/**
 * On a set-associative cache the binomial conflict correction is a
 * model; its error against the replay must stay within the CI bound.
 */
TEST(StackEstimatorTest, SetAssociativeCorrectionWithinTolerance)
{
    PowerLawTrace trace = makeTrace(0.5, 13);

    MissCurveSpec spec = makeSpec(MissCurveEstimatorKind::ExactSim);
    spec.cache.associativity = 8;
    const MissCurve exact = estimateMissCurve(trace, spec);

    spec.kind = MissCurveEstimatorKind::StackDistance;
    const MissCurve stack = estimateMissCurve(trace, spec);

    for (std::size_t i = 0; i < exact.points.size(); ++i) {
        EXPECT_NEAR(stack.points[i].missRate,
                    exact.points[i].missRate, 0.02)
            << "at capacity " << exact.points[i].capacityBytes;
    }
    EXPECT_NEAR(-stack.fit().exponent, -exact.fit().exponent, 0.05);
}

/**
 * Statistical bound: across 20 sampling seeds the SHARDS estimator's
 * worst-case miss-rate error against the exact replay must stay
 * within the CI gate's 0.02 bound at the default 10% rate.
 */
TEST(SampledEstimatorTest, ErrorBoundAcrossTwentySeeds)
{
    PowerLawTrace trace = makeTrace(0.5, 47);

    MissCurveSpec spec = makeSpec(MissCurveEstimatorKind::ExactSim);
    spec.cache.associativity = 8;
    const MissCurve exact = estimateMissCurve(trace, spec);

    spec.kind = MissCurveEstimatorKind::SampledStackDistance;
    spec.sampleRate = 0.1;
    double worst = 0.0;
    for (std::uint64_t seed = 1; seed <= 20; ++seed) {
        spec.seed = seed;
        const MissCurve sampled = estimateMissCurve(trace, spec);
        ASSERT_EQ(sampled.points.size(), exact.points.size());
        // Sampling must actually drop accesses (rate well below 1).
        EXPECT_LT(sampled.sampledAccesses,
                  sampled.profiledAccesses / 5);
        for (std::size_t i = 0; i < exact.points.size(); ++i) {
            worst = std::max(worst,
                             std::abs(sampled.points[i].missRate -
                                      exact.points[i].missRate));
        }
        EXPECT_NEAR(-sampled.fit().exponent, -exact.fit().exponent,
                    0.05)
            << "seed " << seed;
    }
    EXPECT_LE(worst, 0.02);
}

/** Fixed-size (R_max) mode must bound memory yet stay accurate. */
TEST(SampledEstimatorTest, FixedSizeModeTracksExact)
{
    PowerLawTrace trace = makeTrace(0.5, 53);

    MissCurveSpec spec = makeSpec(MissCurveEstimatorKind::ExactSim);
    spec.cache.associativity = 0;
    const MissCurve exact = estimateMissCurve(trace, spec);

    spec.kind = MissCurveEstimatorKind::SampledStackDistance;
    spec.sampleRate = 1.0; // rate decays as the threshold drops
    spec.maxSampledLines = 4096;
    const MissCurve sampled = estimateMissCurve(trace, spec);

    for (std::size_t i = 0; i < exact.points.size(); ++i) {
        EXPECT_NEAR(sampled.points[i].missRate,
                    exact.points[i].missRate, 0.03)
            << "at capacity " << exact.points[i].capacityBytes;
    }
}

TEST(StackEstimatorTest, RefusesNonLruReplacement)
{
    PowerLawTrace trace = makeTrace(0.5, 5);
    MissCurveSpec spec = makeSpec(MissCurveEstimatorKind::StackDistance);
    spec.cache.replacement = ReplacementKind::Random;
    EXPECT_EXIT(estimateMissCurve(trace, spec),
                ::testing::ExitedWithCode(1), "LRU");
}

TEST(StackEstimatorTest, RefusesWriteNoAllocate)
{
    PowerLawTrace trace = makeTrace(0.5, 5);
    MissCurveSpec spec = makeSpec(MissCurveEstimatorKind::StackDistance);
    spec.cache.writeAllocate = WriteAllocate::NoAllocate;
    EXPECT_EXIT(estimateMissCurve(trace, spec),
                ::testing::ExitedWithCode(1), "write-allocate");
}

TEST(StackEstimatorTest, RefusesSectoredCaches)
{
    PowerLawTrace trace = makeTrace(0.5, 5);
    MissCurveSpec spec = makeSpec(MissCurveEstimatorKind::StackDistance);
    spec.cache.sectored = true;
    EXPECT_EXIT(estimateMissCurve(trace, spec),
                ::testing::ExitedWithCode(1), "sectored");
}

/** The sharded multi-workload sweep routes through the estimator. */
TEST(TraceMissCurveSweepTest, SweepsWorkloadsThroughOneEstimator)
{
    TraceMissCurveSweepParams params;
    params.workloads = {commercialAverageProfile(),
                        spec2006AverageProfile()};
    params.spec = makeSpec(MissCurveEstimatorKind::StackDistance);
    params.spec.warmupAccesses = 50000;
    params.spec.measuredAccesses = 150000;
    MetricsRegistry metrics;
    params.metrics = &metrics;

    const auto results = runTraceMissCurveSweep(params);
    ASSERT_EQ(results.size(), 2u);
    for (const TraceMissCurveResult &result : results) {
        EXPECT_EQ(result.curve.tracePasses, 1u);
        EXPECT_EQ(result.curve.points.size(),
                  params.spec.capacities.size());
    }
    // Commercial-average decays faster with size (alpha 0.48) than
    // the SPEC 2006 average (alpha 0.25).
    EXPECT_GT(-results[0].curve.fit().exponent,
              -results[1].curve.fit().exponent);

    EXPECT_EQ(metrics.counter("miss_curve.workloads"), 2u);
    EXPECT_EQ(metrics.counter("miss_curve.trace_passes"), 2u);
}

} // namespace
} // namespace bwwall
