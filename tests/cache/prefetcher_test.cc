/**
 * @file
 * Unit tests for prefetch insertion and the prefetcher designs.
 */

#include <gtest/gtest.h>

#include "cache/prefetcher.hh"
#include "trace/power_law_trace.hh"
#include "util/units.hh"

namespace bwwall {
namespace {

MemoryAccess
read(Address address)
{
    return MemoryAccess{address, AccessType::Read, 0};
}

CacheConfig
smallCache()
{
    CacheConfig config;
    config.capacityBytes = 4096;
    config.associativity = 4;
    return config;
}

TEST(InsertPrefetchTest, InstallsCleanLineAndCountsTraffic)
{
    SetAssociativeCache cache(smallCache());
    EXPECT_EQ(cache.insertPrefetch(0), 64u);
    EXPECT_TRUE(cache.contains(0));
    EXPECT_FALSE(cache.isDirty(0));
    EXPECT_EQ(cache.stats().prefetchFills, 1u);
    EXPECT_EQ(cache.stats().bytesFetched, 64u);
    EXPECT_EQ(cache.stats().misses, 0u); // not a demand miss
}

TEST(InsertPrefetchTest, ResidentLineIsNoOp)
{
    SetAssociativeCache cache(smallCache());
    cache.access(read(0));
    EXPECT_EQ(cache.insertPrefetch(0), 0u);
    EXPECT_EQ(cache.stats().prefetchFills, 0u);
}

TEST(InsertPrefetchTest, UsefulAndUselessAccounting)
{
    SetAssociativeCache cache(smallCache());
    cache.insertPrefetch(0);
    cache.insertPrefetch(64);
    // Line 0 gets used; line 64 is flushed untouched.
    EXPECT_TRUE(cache.access(read(8)).hit);
    cache.flush();
    EXPECT_EQ(cache.stats().usefulPrefetches, 1u);
    EXPECT_EQ(cache.stats().uselessPrefetches, 1u);
    EXPECT_DOUBLE_EQ(cache.stats().prefetchAccuracy(), 0.5);
}

TEST(InsertPrefetchTest, UsefulCountedOnceNotPerHit)
{
    SetAssociativeCache cache(smallCache());
    cache.insertPrefetch(0);
    cache.access(read(0));
    cache.access(read(8));
    EXPECT_EQ(cache.stats().usefulPrefetches, 1u);
}

TEST(NextLinePrefetcherTest, SequentialStreamHitsAfterFirstMiss)
{
    SetAssociativeCache cache(smallCache());
    PrefetcherConfig config;
    config.degree = 2;
    Prefetcher prefetcher(cache, config);

    int demand_misses = 0;
    for (Address line = 0; line < 32; ++line) {
        const MemoryAccess access = read(line * 64);
        const AccessOutcome outcome = cache.access(access);
        demand_misses += !outcome.hit;
        prefetcher.observe(access, outcome);
    }
    // Degree-2 next-line on a pure stream: roughly every other line
    // misses (each miss prefetches the next two lines).
    EXPECT_LT(demand_misses, 16);
    EXPECT_GT(cache.stats().usefulPrefetches, 10u);
    EXPECT_GT(prefetcher.stats().issued, 0u);
}

TEST(NextLinePrefetcherTest, HitsDoNotTrigger)
{
    SetAssociativeCache cache(smallCache());
    Prefetcher prefetcher(cache, PrefetcherConfig{});
    const MemoryAccess access = read(0);
    const AccessOutcome miss = cache.access(access);
    prefetcher.observe(access, miss);
    const auto issued_after_miss = prefetcher.stats().issued;
    const AccessOutcome hit = cache.access(access);
    prefetcher.observe(access, hit);
    EXPECT_EQ(prefetcher.stats().issued, issued_after_miss);
    EXPECT_EQ(prefetcher.stats().triggers, 1u);
}

TEST(StridePrefetcherTest, DetectsConstantStride)
{
    SetAssociativeCache cache(smallCache());
    PrefetcherConfig config;
    config.kind = PrefetcherKind::Stride;
    config.degree = 1;
    config.strideConfidence = 2;
    Prefetcher prefetcher(cache, config);

    // Misses at a constant 128-byte stride within one 4 KiB region.
    int demand_misses = 0;
    for (Address i = 0; i < 30; ++i) {
        const MemoryAccess access = read(i * 128);
        const AccessOutcome outcome = cache.access(access);
        demand_misses += !outcome.hit;
        prefetcher.observe(access, outcome);
    }
    // After confidence builds, subsequent strided lines are covered.
    EXPECT_LT(demand_misses, 30);
    EXPECT_GT(cache.stats().usefulPrefetches, 5u);
}

TEST(StridePrefetcherTest, RandomStreamStaysQuiet)
{
    SetAssociativeCache cache(smallCache());
    PrefetcherConfig config;
    config.kind = PrefetcherKind::Stride;
    config.strideConfidence = 2;
    Prefetcher prefetcher(cache, config);

    PowerLawTraceParams params;
    params.alpha = 0.5;
    params.seed = 3;
    params.warmLines = 256;
    params.maxResidentLines = 512;
    PowerLawTrace trace(params);
    for (int i = 0; i < 20000; ++i) {
        const MemoryAccess access = trace.next();
        const AccessOutcome outcome = cache.access(access);
        prefetcher.observe(access, outcome);
    }
    // Scrambled addresses: almost no confident strides form.
    EXPECT_LT(static_cast<double>(prefetcher.stats().issued),
              0.1 * static_cast<double>(prefetcher.stats().triggers));
}

TEST(NextLinePrefetcherTest, UselessOnRandomStreamWastesTraffic)
{
    // The bandwidth-wall-relevant property: an aggressive next-line
    // prefetcher on a no-locality stream adds traffic with low
    // accuracy.
    SetAssociativeCache plain(smallCache());
    SetAssociativeCache prefetched(smallCache());
    PrefetcherConfig config;
    config.degree = 4;
    Prefetcher prefetcher(prefetched, config);

    PowerLawTraceParams params;
    params.alpha = 0.5;
    params.seed = 5;
    params.warmLines = 4096;
    params.maxResidentLines = 8192;
    PowerLawTrace trace(params);
    for (int i = 0; i < 30000; ++i) {
        const MemoryAccess access = trace.next();
        plain.access(access);
        const AccessOutcome outcome = prefetched.access(access);
        prefetcher.observe(access, outcome);
    }
    EXPECT_GT(prefetched.stats().bytesFetched,
              2 * plain.stats().bytesFetched);
    prefetched.flush();
    EXPECT_LT(prefetched.stats().prefetchAccuracy(), 0.2);
}

TEST(PrefetcherTest, RejectsZeroDegree)
{
    SetAssociativeCache cache(smallCache());
    PrefetcherConfig config;
    config.degree = 0;
    EXPECT_EXIT((Prefetcher{cache, config}),
                ::testing::ExitedWithCode(1), "degree");
}

} // namespace
} // namespace bwwall
