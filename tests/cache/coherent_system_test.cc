/**
 * @file
 * Unit tests for the snooping MSI coherent cache system, plus the
 * new invalidate/downgrade primitives on the base cache.
 */

#include <gtest/gtest.h>

#include "cache/coherent_system.hh"
#include "trace/shared_trace.hh"
#include "util/units.hh"

namespace bwwall {
namespace {

MemoryAccess
read(Address address, ThreadId thread)
{
    return MemoryAccess{address, AccessType::Read, thread};
}

MemoryAccess
write(Address address, ThreadId thread)
{
    return MemoryAccess{address, AccessType::Write, thread};
}

CacheConfig
smallCache()
{
    CacheConfig config;
    config.capacityBytes = 4096;
    config.associativity = 4;
    return config;
}

TEST(CachePrimitivesTest, InvalidateRemovesLine)
{
    SetAssociativeCache cache(smallCache());
    cache.access(write(0, 0));
    EXPECT_TRUE(cache.isDirty(0));
    EXPECT_TRUE(cache.invalidate(0)); // was dirty
    EXPECT_FALSE(cache.contains(0));
    EXPECT_FALSE(cache.invalidate(0)); // already gone
    // Invalidation is not an eviction and produces no write back.
    EXPECT_EQ(cache.stats().evictions, 0u);
    EXPECT_EQ(cache.stats().writebacks, 0u);
}

TEST(CachePrimitivesTest, DowngradeClearsDirty)
{
    SetAssociativeCache cache(smallCache());
    cache.access(write(0, 0));
    EXPECT_TRUE(cache.downgrade(0));
    EXPECT_TRUE(cache.contains(0));
    EXPECT_FALSE(cache.isDirty(0));
    EXPECT_FALSE(cache.downgrade(0)); // already clean
    // A clean line evicts silently later.
    cache.flush();
    EXPECT_EQ(cache.stats().writebacks, 0u);
}

TEST(CoherentSystemTest, PrivateDataHasNoCoherenceEvents)
{
    CoherentCacheSystem system(4, smallCache());
    // Each core touches its own region only.
    for (int round = 0; round < 1000; ++round) {
        for (ThreadId thread = 0; thread < 4; ++thread) {
            const Address address =
                (Address(thread) << 20) + (round % 16) * 64;
            system.access(round % 3 == 0 ? write(address, thread)
                                         : read(address, thread));
        }
    }
    EXPECT_EQ(system.coherenceStats().invalidations, 0u);
    EXPECT_EQ(system.coherenceStats().downgrades, 0u);
    EXPECT_EQ(system.coherenceStats().coherenceBytes, 0u);
}

TEST(CoherentSystemTest, WriteInvalidatesRemoteCopies)
{
    CoherentCacheSystem system(4, smallCache());
    // All four cores read the line: four copies.
    for (ThreadId thread = 0; thread < 4; ++thread)
        system.access(read(0, thread));
    EXPECT_TRUE(system.cache(3).contains(0));
    // Core 0 writes: the three remote copies are invalidated.
    system.access(write(0, 0));
    EXPECT_EQ(system.coherenceStats().invalidations, 3u);
    EXPECT_FALSE(system.cache(1).contains(0));
    EXPECT_FALSE(system.cache(2).contains(0));
    EXPECT_FALSE(system.cache(3).contains(0));
    EXPECT_TRUE(system.cache(0).isDirty(0));
}

TEST(CoherentSystemTest, SharedWriteHitCountsUpgrade)
{
    CoherentCacheSystem system(2, smallCache());
    system.access(read(0, 0)); // Shared in cache 0
    system.access(write(0, 0));
    EXPECT_EQ(system.coherenceStats().upgrades, 1u);
    // Writing again (now Modified) is not another upgrade.
    system.access(write(0, 0));
    EXPECT_EQ(system.coherenceStats().upgrades, 1u);
}

TEST(CoherentSystemTest, ReadDowngradesRemoteModified)
{
    CoherentCacheSystem system(2, smallCache());
    system.access(write(0, 0)); // Modified in cache 0
    system.access(read(0, 1));  // core 1 reads
    EXPECT_EQ(system.coherenceStats().downgrades, 1u);
    EXPECT_EQ(system.coherenceStats().coherenceWritebacks, 1u);
    EXPECT_EQ(system.coherenceStats().coherenceBytes, 64u);
    // Both copies now Shared (clean).
    EXPECT_FALSE(system.cache(0).isDirty(0));
    EXPECT_TRUE(system.cache(0).contains(0));
    EXPECT_TRUE(system.cache(1).contains(0));
}

TEST(CoherentSystemTest, WritePingPongGeneratesTraffic)
{
    CoherentCacheSystem system(2, smallCache());
    // Warm: both sides touch the line once.
    system.access(write(0, 0));
    system.access(write(0, 1));
    system.resetStats();

    const int rounds = 100;
    for (int i = 0; i < rounds; ++i) {
        system.access(write(0, 0));
        system.access(write(0, 1));
    }
    // Every write invalidates the other side's Modified copy: one
    // coherence write back plus one refill per write.
    EXPECT_EQ(system.coherenceStats().invalidations,
              static_cast<std::uint64_t>(2 * rounds));
    EXPECT_EQ(system.coherenceStats().coherenceWritebacks,
              static_cast<std::uint64_t>(2 * rounds));
    EXPECT_GT(system.memoryTrafficBytes(),
              static_cast<std::uint64_t>(2 * rounds) * 64);
}

TEST(CoherentSystemTest, ReadSharingIsCheapAfterDowngrade)
{
    CoherentCacheSystem system(4, smallCache());
    system.access(write(0, 0));
    for (ThreadId thread = 1; thread < 4; ++thread)
        system.access(read(0, thread));
    system.resetStats();
    // Steady-state read sharing: no further coherence events.
    for (int i = 0; i < 100; ++i)
        for (ThreadId thread = 0; thread < 4; ++thread)
            system.access(read(0, thread));
    EXPECT_EQ(system.coherenceStats().downgrades, 0u);
    EXPECT_EQ(system.memoryTrafficBytes(), 0u);
}

TEST(CoherentSystemTest, SharedWorkloadRunsCoherently)
{
    // Integration: the multithreaded generator over the coherent
    // private caches; sharing must produce coherence activity.
    SharedWorkloadTraceParams params;
    params.threads = 4;
    params.sharedLines = 256;
    params.sharedAccessFraction = 0.4;
    params.privateMaxResidentLines = 1 << 12;
    params.seed = 9;
    SharedWorkloadTrace trace(params);

    CacheConfig config;
    config.capacityBytes = 64 * kKiB;
    CoherentCacheSystem system(4, config);
    for (int i = 0; i < 200000; ++i)
        system.access(trace.next());
    EXPECT_GT(system.coherenceStats().invalidations, 100u);
    EXPECT_GT(system.coherenceStats().downgrades, 100u);
}

TEST(CoherentSystemTest, RejectsZeroCores)
{
    EXPECT_EXIT((CoherentCacheSystem{0, smallCache()}),
                ::testing::ExitedWithCode(1), "at least one core");
}

} // namespace
} // namespace bwwall
