/**
 * @file
 * Unit tests for the set-associative cache model.
 */

#include <gtest/gtest.h>

#include <vector>

#include "cache/set_assoc_cache.hh"

namespace bwwall {
namespace {

MemoryAccess
read(Address address, ThreadId thread = 0)
{
    return MemoryAccess{address, AccessType::Read, thread};
}

MemoryAccess
write(Address address, ThreadId thread = 0)
{
    return MemoryAccess{address, AccessType::Write, thread};
}

CacheConfig
smallCache()
{
    CacheConfig config;
    config.capacityBytes = 4096; // 64 lines
    config.lineBytes = 64;
    config.associativity = 4; // 16 sets
    return config;
}

TEST(SetAssocCacheTest, GeometryDerivation)
{
    SetAssociativeCache cache(smallCache());
    EXPECT_EQ(cache.sets(), 16u);
    EXPECT_EQ(cache.ways(), 4u);
}

TEST(SetAssocCacheTest, FullyAssociativeGeometry)
{
    CacheConfig config = smallCache();
    config.associativity = 0;
    SetAssociativeCache cache(config);
    EXPECT_EQ(cache.sets(), 1u);
    EXPECT_EQ(cache.ways(), 64u);
}

TEST(SetAssocCacheTest, ColdMissThenHit)
{
    SetAssociativeCache cache(smallCache());
    EXPECT_FALSE(cache.access(read(0)).hit);
    EXPECT_TRUE(cache.access(read(0)).hit);
    EXPECT_TRUE(cache.access(read(32)).hit); // same line
    EXPECT_FALSE(cache.access(read(64)).hit); // next line
    EXPECT_EQ(cache.stats().misses, 2u);
    EXPECT_EQ(cache.stats().hits, 2u);
}

TEST(SetAssocCacheTest, MissFetchesWholeLine)
{
    SetAssociativeCache cache(smallCache());
    const AccessOutcome outcome = cache.access(read(0));
    EXPECT_EQ(outcome.bytesFetched, 64u);
    EXPECT_EQ(cache.stats().bytesFetched, 64u);
}

TEST(SetAssocCacheTest, LruEvictionWithinSet)
{
    SetAssociativeCache cache(smallCache());
    // Fill one set: lines mapping to set 0 are multiples of 16 lines.
    const Address stride = 16 * 64; // set count * line size
    for (Address i = 0; i < 4; ++i)
        cache.access(read(i * stride));
    // Touch line 0 so line 1 is LRU, then force an eviction.
    cache.access(read(0));
    cache.access(read(4 * stride));
    EXPECT_TRUE(cache.contains(0));
    EXPECT_FALSE(cache.contains(1 * stride));
    EXPECT_TRUE(cache.contains(2 * stride));
}

TEST(SetAssocCacheTest, DirtyEvictionWritesBack)
{
    SetAssociativeCache cache(smallCache());
    const Address stride = 16 * 64;
    cache.access(write(0));
    for (Address i = 1; i <= 4; ++i)
        cache.access(read(i * stride));
    // Line 0 was dirty and is evicted by the 5th fill.
    EXPECT_EQ(cache.stats().writebacks, 1u);
    EXPECT_EQ(cache.stats().bytesWrittenBack, 64u);
}

TEST(SetAssocCacheTest, CleanEvictionHasNoWriteback)
{
    SetAssociativeCache cache(smallCache());
    const Address stride = 16 * 64;
    for (Address i = 0; i <= 4; ++i)
        cache.access(read(i * stride));
    EXPECT_EQ(cache.stats().evictions, 1u);
    EXPECT_EQ(cache.stats().writebacks, 0u);
}

TEST(SetAssocCacheTest, WriteAllocateFetchesLine)
{
    SetAssociativeCache cache(smallCache());
    const AccessOutcome outcome = cache.access(write(0));
    EXPECT_FALSE(outcome.hit);
    EXPECT_EQ(outcome.bytesFetched, 64u);
    EXPECT_TRUE(cache.contains(0));
}

TEST(SetAssocCacheTest, NoAllocateWritesAround)
{
    CacheConfig config = smallCache();
    config.writeAllocate = WriteAllocate::NoAllocate;
    SetAssociativeCache cache(config);
    const AccessOutcome outcome = cache.access(write(0));
    EXPECT_FALSE(outcome.hit);
    EXPECT_EQ(outcome.bytesFetched, 0u);
    EXPECT_GT(outcome.bytesWrittenBack, 0u);
    EXPECT_FALSE(cache.contains(0));
    // Read misses still allocate.
    cache.access(read(64));
    EXPECT_TRUE(cache.contains(64));
}

TEST(SetAssocCacheTest, EvictionCallbackFires)
{
    SetAssociativeCache cache(smallCache());
    std::vector<EvictionRecord> records;
    cache.setEvictionCallback([&records](const EvictionRecord &record) {
        records.push_back(record);
    });
    const Address stride = 16 * 64;
    cache.access(write(0));
    for (Address i = 1; i <= 4; ++i)
        cache.access(read(i * stride));
    ASSERT_EQ(records.size(), 1u);
    EXPECT_EQ(records[0].lineAddress, 0u);
    EXPECT_TRUE(records[0].dirty);
    EXPECT_EQ(records[0].sharerCount, 1u);
}

TEST(SetAssocCacheTest, SharerMaskCountsThreads)
{
    SetAssociativeCache cache(smallCache());
    std::vector<EvictionRecord> records;
    cache.setEvictionCallback([&records](const EvictionRecord &record) {
        records.push_back(record);
    });
    cache.access(read(0, 0));
    cache.access(read(8, 1));
    cache.access(read(16, 2)); // three threads touch line 0
    cache.flush();
    ASSERT_EQ(records.size(), 1u);
    EXPECT_EQ(records[0].sharerCount, 3u);
}

TEST(SetAssocCacheTest, FlushEmptiesCache)
{
    SetAssociativeCache cache(smallCache());
    cache.access(write(0));
    cache.access(read(64));
    EXPECT_EQ(cache.residentLines(), 2u);
    cache.flush();
    EXPECT_EQ(cache.residentLines(), 0u);
    EXPECT_EQ(cache.stats().writebacks, 1u); // the dirty line
    EXPECT_EQ(cache.stats().evictions, 2u);
}

TEST(SetAssocCacheTest, ResetStatsKeepsContents)
{
    SetAssociativeCache cache(smallCache());
    cache.access(read(0));
    cache.resetStats();
    EXPECT_EQ(cache.stats().accesses, 0u);
    EXPECT_TRUE(cache.access(read(0)).hit); // still warm
}

TEST(SetAssocCacheTest, SectoredFetchesOnlySectors)
{
    CacheConfig config = smallCache();
    config.sectored = true;
    config.sectorBytes = 16;
    SetAssociativeCache cache(config);

    // Line miss: only the accessed 16-byte sector is fetched.
    AccessOutcome outcome = cache.access(read(0));
    EXPECT_FALSE(outcome.hit);
    EXPECT_EQ(outcome.bytesFetched, 16u);

    // Another sector of the same line: line hit + sector fill.
    outcome = cache.access(read(32));
    EXPECT_TRUE(outcome.hit);
    EXPECT_TRUE(outcome.sectorFill);
    EXPECT_EQ(outcome.bytesFetched, 16u);
    EXPECT_EQ(cache.stats().sectorMisses, 1u);

    // Same sector again: pure hit, no traffic.
    outcome = cache.access(read(40));
    EXPECT_TRUE(outcome.hit);
    EXPECT_FALSE(outcome.sectorFill);
    EXPECT_EQ(outcome.bytesFetched, 0u);
}

TEST(SetAssocCacheTest, SectoredWritebackOnlyDirtySectors)
{
    CacheConfig config = smallCache();
    config.sectored = true;
    config.sectorBytes = 16;
    SetAssociativeCache cache(config);
    cache.access(write(0));  // sector 0 dirty
    cache.access(read(16));  // sector 1 clean
    cache.flush();
    EXPECT_EQ(cache.stats().bytesWrittenBack, 16u);
}

TEST(SetAssocCacheTest, SectoredTrafficLowerThanUnsectored)
{
    // A stream touching one word per line: a sectored cache moves a
    // quarter of the bytes of a 64-byte-line cache at 16-byte sectors.
    CacheConfig plain = smallCache();
    CacheConfig sectored = smallCache();
    sectored.sectored = true;
    sectored.sectorBytes = 16;
    SetAssociativeCache plain_cache(plain);
    SetAssociativeCache sectored_cache(sectored);
    for (Address line = 0; line < 1000; ++line) {
        plain_cache.access(read(line * 64));
        sectored_cache.access(read(line * 64));
    }
    EXPECT_EQ(sectored_cache.stats().bytesFetched * 4,
              plain_cache.stats().bytesFetched);
}

TEST(SetAssocCacheTest, StatsDerivedMetrics)
{
    SetAssociativeCache cache(smallCache());
    cache.access(read(0));
    cache.access(read(0));
    cache.access(read(64));
    cache.access(read(64));
    const CacheStats &stats = cache.stats();
    EXPECT_DOUBLE_EQ(stats.missRate(), 0.5);
    EXPECT_DOUBLE_EQ(stats.trafficBytesPerAccess(), 32.0);
}

TEST(SetAssocCacheTest, RejectsBadGeometry)
{
    CacheConfig config = smallCache();
    config.lineBytes = 48;
    EXPECT_EXIT(SetAssociativeCache{config},
                ::testing::ExitedWithCode(1), "power of two");

    config = smallCache();
    config.capacityBytes = 100;
    EXPECT_EXIT(SetAssociativeCache{config},
                ::testing::ExitedWithCode(1), "multiple");

    config = smallCache();
    config.associativity = 3;
    EXPECT_EXIT(SetAssociativeCache{config},
                ::testing::ExitedWithCode(1), "divide");
}

} // namespace
} // namespace bwwall
