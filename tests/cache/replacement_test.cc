/**
 * @file
 * Unit tests for the replacement policies.
 */

#include <gtest/gtest.h>

#include <set>

#include "cache/replacement.hh"

namespace bwwall {
namespace {

TEST(ReplacementTest, KindNames)
{
    EXPECT_EQ(replacementKindName(ReplacementKind::LRU), "lru");
    EXPECT_EQ(replacementKindName(ReplacementKind::TreePLRU),
              "tree-plru");
    EXPECT_EQ(replacementKindName(ReplacementKind::FIFO), "fifo");
    EXPECT_EQ(replacementKindName(ReplacementKind::Random), "random");
}

TEST(LruPolicyTest, EvictsLeastRecentlyUsed)
{
    Rng rng(1);
    auto policy = makeReplacementPolicy(ReplacementKind::LRU, 4, rng);
    for (unsigned way = 0; way < 4; ++way)
        policy->onInsert(way);
    policy->onAccess(0); // 1 is now the least recent
    EXPECT_EQ(policy->victimWay(), 1u);
    policy->onAccess(1);
    EXPECT_EQ(policy->victimWay(), 2u);
}

TEST(LruPolicyTest, InsertCountsAsUse)
{
    Rng rng(2);
    auto policy = makeReplacementPolicy(ReplacementKind::LRU, 2, rng);
    policy->onInsert(0);
    policy->onInsert(1);
    EXPECT_EQ(policy->victimWay(), 0u);
}

TEST(FifoPolicyTest, IgnoresAccesses)
{
    Rng rng(3);
    auto policy = makeReplacementPolicy(ReplacementKind::FIFO, 4, rng);
    for (unsigned way = 0; way < 4; ++way)
        policy->onInsert(way);
    policy->onAccess(0);
    policy->onAccess(0);
    EXPECT_EQ(policy->victimWay(), 0u); // still the oldest insert
    policy->onInsert(0);
    EXPECT_EQ(policy->victimWay(), 1u);
}

TEST(TreePlruTest, VictimIsNotTheMostRecent)
{
    Rng rng(4);
    auto policy =
        makeReplacementPolicy(ReplacementKind::TreePLRU, 8, rng);
    for (unsigned way = 0; way < 8; ++way)
        policy->onInsert(way);
    for (int round = 0; round < 50; ++round) {
        const unsigned touched =
            static_cast<unsigned>(rng.nextBounded(8));
        policy->onAccess(touched);
        EXPECT_NE(policy->victimWay(), touched);
    }
}

TEST(TreePlruTest, SequentialFillVictimRotation)
{
    Rng rng(5);
    auto policy =
        makeReplacementPolicy(ReplacementKind::TreePLRU, 4, rng);
    // Insert into each way in turn; the victim then cannot be the way
    // touched last and must be a valid way index.
    for (unsigned way = 0; way < 4; ++way)
        policy->onInsert(way);
    const unsigned victim = policy->victimWay();
    EXPECT_LT(victim, 4u);
    EXPECT_NE(victim, 3u);
}

TEST(TreePlruTest, RequiresPowerOfTwoWays)
{
    Rng rng(6);
    EXPECT_EXIT(makeReplacementPolicy(ReplacementKind::TreePLRU, 6, rng),
                ::testing::ExitedWithCode(1), "power-of-two");
}

TEST(RandomPolicyTest, CoversAllWays)
{
    Rng rng(7);
    auto policy =
        makeReplacementPolicy(ReplacementKind::Random, 8, rng);
    std::set<unsigned> victims;
    for (int i = 0; i < 500; ++i)
        victims.insert(policy->victimWay());
    EXPECT_EQ(victims.size(), 8u);
}

TEST(ReplacementTest, RejectsZeroWays)
{
    Rng rng(8);
    EXPECT_EXIT(makeReplacementPolicy(ReplacementKind::LRU, 0, rng),
                ::testing::ExitedWithCode(1), "at least one way");
}

} // namespace
} // namespace bwwall
