/**
 * @file
 * Unit tests for the parallel trace-driven cache sweep: per-shard
 * seed determinism, shard merging, serial-versus-parallel
 * bit-identity, and metrics reporting.
 */

#include <gtest/gtest.h>

#include <set>

#include "cache/trace_sim.hh"
#include "util/metrics.hh"

namespace bwwall {
namespace {

TraceCacheSweepParams
smallSweepParams(unsigned jobs)
{
    TraceCacheSweepParams params;
    params.cache.capacityBytes = 64 * 1024;
    params.jobs = jobs;
    for (const WorkloadProfileSpec &spec :
         {commercialAverageProfile(), spec2006AverageProfile()}) {
        TraceCacheWorkload workload;
        workload.profile = spec;
        workload.warmAccesses = 5000;
        workload.measuredAccesses = 20000;
        workload.shards = 4;
        params.workloads.push_back(workload);
    }
    return params;
}

void
expectIdentical(const std::vector<TraceCacheResult> &a,
                const std::vector<TraceCacheResult> &b)
{
    ASSERT_EQ(a.size(), b.size());
    for (std::size_t i = 0; i < a.size(); ++i) {
        EXPECT_EQ(a[i].workload, b[i].workload);
        EXPECT_EQ(a[i].stats.accesses, b[i].stats.accesses);
        EXPECT_EQ(a[i].stats.reads, b[i].stats.reads);
        EXPECT_EQ(a[i].stats.writes, b[i].stats.writes);
        EXPECT_EQ(a[i].stats.hits, b[i].stats.hits);
        EXPECT_EQ(a[i].stats.misses, b[i].stats.misses);
        EXPECT_EQ(a[i].stats.evictions, b[i].stats.evictions);
        EXPECT_EQ(a[i].stats.writebacks, b[i].stats.writebacks);
        EXPECT_EQ(a[i].stats.bytesFetched, b[i].stats.bytesFetched);
        EXPECT_EQ(a[i].stats.bytesWrittenBack,
                  b[i].stats.bytesWrittenBack);
    }
}

TEST(ShardSeedTest, DeterministicAndDistinct)
{
    EXPECT_EQ(shardSeed(1, 0, 0), shardSeed(1, 0, 0));
    std::set<std::uint64_t> seeds;
    for (std::size_t workload = 0; workload < 8; ++workload)
        for (unsigned shard = 0; shard < 8; ++shard)
            seeds.insert(shardSeed(1, workload, shard));
    // All (workload, shard) coordinates draw distinct seeds.
    EXPECT_EQ(seeds.size(), 64u);
    // The base seed perturbs every derived seed.
    EXPECT_NE(shardSeed(1, 0, 0), shardSeed(2, 0, 0));
}

TEST(TraceCacheSweepTest, RunsEveryWorkload)
{
    const auto results = runTraceCacheSweep(smallSweepParams(1));
    ASSERT_EQ(results.size(), 2u);
    EXPECT_EQ(results[0].workload, "Commercial-AVG");
    EXPECT_EQ(results[1].workload, "SPEC2006-AVG");
    for (const TraceCacheResult &result : results) {
        // Four shards of (5000 warm discarded +) 20000 measured.
        EXPECT_EQ(result.stats.accesses, 20000u);
        EXPECT_GT(result.stats.misses, 0u);
    }
}

TEST(TraceCacheSweepTest, ParallelMatchesSerial)
{
    const auto serial = runTraceCacheSweep(smallSweepParams(1));
    for (const unsigned jobs : {2u, 4u, 8u}) {
        const auto parallel =
            runTraceCacheSweep(smallSweepParams(jobs));
        expectIdentical(serial, parallel);
    }
}

TEST(TraceCacheSweepTest, ShardCountChangesSampling)
{
    // Different shard counts sample different trace streams; the
    // sweep must not silently collapse shards into one stream.
    TraceCacheSweepParams one_shard = smallSweepParams(1);
    for (TraceCacheWorkload &workload : one_shard.workloads)
        workload.shards = 1;
    const auto merged = runTraceCacheSweep(one_shard);
    const auto sharded = runTraceCacheSweep(smallSweepParams(1));
    ASSERT_EQ(merged.size(), sharded.size());
    EXPECT_EQ(merged[0].stats.accesses, sharded[0].stats.accesses);
    EXPECT_NE(merged[0].stats.misses, sharded[0].stats.misses);
}

TEST(TraceCacheSweepTest, SeedChangesResults)
{
    TraceCacheSweepParams params = smallSweepParams(1);
    const auto base = runTraceCacheSweep(params);
    params.seed = 99;
    const auto reseeded = runTraceCacheSweep(params);
    EXPECT_NE(base[0].stats.misses, reseeded[0].stats.misses);
}

TEST(TraceCacheSweepTest, PopulatesMetrics)
{
    MetricsRegistry metrics;
    TraceCacheSweepParams params = smallSweepParams(2);
    params.metrics = &metrics;
    const auto results = runTraceCacheSweep(params);
    EXPECT_EQ(metrics.counter("trace_sim.workloads"),
              results.size());
    EXPECT_EQ(metrics.counter("trace_sim.shards"), 8u);
    EXPECT_GT(metrics.counter("trace_sim.accesses"), 0u);
    EXPECT_EQ(metrics.timerCount("trace_sim.sweep"), 1u);
}

} // namespace
} // namespace bwwall
