/**
 * @file
 * Unit tests for the compressed cache model.
 */

#include <gtest/gtest.h>

#include "cache/compressed_cache.hh"

namespace bwwall {
namespace {

MemoryAccess
read(Address address)
{
    return MemoryAccess{address, AccessType::Read, 0};
}

MemoryAccess
write(Address address)
{
    return MemoryAccess{address, AccessType::Write, 0};
}

CompressedCacheConfig
smallConfig()
{
    CompressedCacheConfig config;
    config.capacityBytes = 4096; // 64 uncompressed lines
    config.lineBytes = 64;
    config.baseWays = 4; // 16 sets, 256 B data per set
    config.tagFactor = 2;
    return config;
}

/** Every line compresses to half size. */
std::uint32_t
halfSize(Address)
{
    return 32;
}

/** Incompressible lines. */
std::uint32_t
fullSize(Address)
{
    return 64;
}

TEST(CompressedCacheTest, HitAfterMiss)
{
    CompressedCache cache(smallConfig(), halfSize);
    EXPECT_FALSE(cache.access(read(0)).hit);
    EXPECT_TRUE(cache.access(read(0)).hit);
}

TEST(CompressedCacheTest, TwoXCompressionDoublesResidentLines)
{
    // One set receives lines at stride sets*lineBytes; with 4 base
    // ways and 2x compression, 8 lines fit.
    CompressedCache cache(smallConfig(), halfSize);
    const Address stride = 16 * 64;
    for (Address i = 0; i < 8; ++i)
        cache.access(read(i * stride));
    for (Address i = 0; i < 8; ++i)
        EXPECT_TRUE(cache.contains(i * stride)) << i;
    EXPECT_EQ(cache.stats().evictions, 0u);
    // A ninth line exceeds the tag budget and evicts.
    cache.access(read(8 * stride));
    EXPECT_EQ(cache.stats().evictions, 1u);
}

TEST(CompressedCacheTest, IncompressibleBehavesLikeBaseCache)
{
    CompressedCache cache(smallConfig(), fullSize);
    const Address stride = 16 * 64;
    for (Address i = 0; i < 4; ++i)
        cache.access(read(i * stride));
    EXPECT_EQ(cache.stats().evictions, 0u);
    cache.access(read(4 * stride)); // data budget exhausted at 4 lines
    EXPECT_EQ(cache.stats().evictions, 1u);
    EXPECT_FALSE(cache.contains(0));
}

TEST(CompressedCacheTest, LruVictimSelection)
{
    CompressedCache cache(smallConfig(), fullSize);
    const Address stride = 16 * 64;
    for (Address i = 0; i < 4; ++i)
        cache.access(read(i * stride));
    cache.access(read(0)); // protect line 0
    cache.access(read(4 * stride));
    EXPECT_TRUE(cache.contains(0));
    EXPECT_FALSE(cache.contains(1 * stride));
}

TEST(CompressedCacheTest, SegmentRoundingLimitsPacking)
{
    // 20-byte lines round to 24 bytes (8-byte segments): a 256-byte
    // set fits floor(256/24) = 10, but the 8-entry tag array caps it.
    CompressedCacheConfig config = smallConfig();
    CompressedCache cache(config, [](Address) { return 20u; });
    const Address stride = 16 * 64;
    for (Address i = 0; i < 9; ++i)
        cache.access(read(i * stride));
    EXPECT_EQ(cache.stats().evictions, 1u); // tag-limited at 8
}

TEST(CompressedCacheTest, UncompressedLinkMovesWholeLines)
{
    CompressedCacheConfig config = smallConfig();
    config.compressedLink = false;
    CompressedCache cache(config, halfSize);
    EXPECT_EQ(cache.access(read(0)).bytesFetched, 64u);
}

TEST(CompressedCacheTest, CompressedLinkMovesCompressedBytes)
{
    CompressedCacheConfig config = smallConfig();
    config.compressedLink = true;
    CompressedCache cache(config, halfSize);
    EXPECT_EQ(cache.access(read(0)).bytesFetched, 32u);
    // Dirty eviction also moves compressed bytes.
    const Address stride = 16 * 64;
    cache.access(write(0));
    for (Address i = 1; i <= 8; ++i)
        cache.access(read(i * stride));
    EXPECT_EQ(cache.stats().bytesWrittenBack, 32u);
}

TEST(CompressedCacheTest, ResidentCompressionRatio)
{
    CompressedCache cache(smallConfig(), halfSize);
    cache.access(read(0));
    cache.access(read(64));
    EXPECT_DOUBLE_EQ(cache.residentCompressionRatio(), 2.0);
    EXPECT_EQ(cache.residentLines(), 2u);
}

TEST(CompressedCacheTest, MixedSizesPackByBudget)
{
    // Alternate 16- and 48-byte lines: pairs cost 64 bytes, so a
    // 256-byte set fits 8 lines exactly when tag factor is 2.
    CompressedCacheConfig config = smallConfig();
    CompressedCache cache(config, [](Address address) {
        return (address / (16 * 64)) % 2 == 0 ? 16u : 48u;
    });
    const Address stride = 16 * 64;
    for (Address i = 0; i < 8; ++i)
        cache.access(read(i * stride));
    EXPECT_EQ(cache.stats().evictions, 0u);
    EXPECT_EQ(cache.residentLines(), 8u);
}

TEST(CompressedCacheTest, RejectsMissingSizeFunction)
{
    EXPECT_EXIT(CompressedCache(smallConfig(), nullptr),
                ::testing::ExitedWithCode(1), "size function");
}

} // namespace
} // namespace bwwall
