/**
 * @file
 * Unit tests for the multi-core cache hierarchy.
 */

#include <gtest/gtest.h>

#include "cache/hierarchy.hh"

namespace bwwall {
namespace {

MemoryAccess
read(Address address, ThreadId thread = 0)
{
    return MemoryAccess{address, AccessType::Read, thread};
}

MemoryAccess
write(Address address, ThreadId thread = 0)
{
    return MemoryAccess{address, AccessType::Write, thread};
}

HierarchyConfig
twoLevelConfig(unsigned cores, bool shared_l2)
{
    HierarchyConfig config;
    config.cores = cores;
    config.l1Enabled = true;
    config.l1.capacityBytes = 1024; // 16 lines
    config.l1.lineBytes = 64;
    config.l1.associativity = 2;
    config.sharedL2 = shared_l2;
    config.l2.capacityBytes = 16384; // 256 lines
    config.l2.lineBytes = 64;
    config.l2.associativity = 8;
    return config;
}

TEST(HierarchyTest, L1HitShieldsL2)
{
    CacheHierarchy hierarchy(twoLevelConfig(1, true));
    hierarchy.access(read(0));
    const HierarchyOutcome outcome = hierarchy.access(read(0));
    EXPECT_TRUE(outcome.l1Hit);
    EXPECT_EQ(hierarchy.l2().stats().accesses, 1u); // only the fill
}

TEST(HierarchyTest, L1MissFillsBothLevels)
{
    CacheHierarchy hierarchy(twoLevelConfig(1, true));
    const HierarchyOutcome outcome = hierarchy.access(read(0));
    EXPECT_FALSE(outcome.l1Hit);
    EXPECT_FALSE(outcome.l2Hit);
    EXPECT_EQ(outcome.memoryBytes, 64u);
    EXPECT_TRUE(hierarchy.l1(0).contains(0));
    EXPECT_TRUE(hierarchy.l2().contains(0));
}

TEST(HierarchyTest, L2HitAvoidsMemoryTraffic)
{
    CacheHierarchy hierarchy(twoLevelConfig(1, true));
    hierarchy.access(read(0));
    // Evict line 0 from the tiny L1 by filling its set (8 sets:
    // stride 8*64 = 512 bytes).
    hierarchy.access(read(512));
    hierarchy.access(read(1024));
    const HierarchyOutcome outcome = hierarchy.access(read(0));
    EXPECT_FALSE(outcome.l1Hit);
    EXPECT_TRUE(outcome.l2Hit);
    EXPECT_EQ(outcome.memoryBytes, 0u);
}

TEST(HierarchyTest, DirtyL1VictimReachesL2)
{
    CacheHierarchy hierarchy(twoLevelConfig(1, true));
    hierarchy.access(write(0));
    hierarchy.access(read(512));
    hierarchy.access(read(1024)); // evicts dirty line 0 from L1
    // L2 saw: fill(0), fill(512), fill(1024), writeback-write(0).
    EXPECT_EQ(hierarchy.l2().stats().accesses, 4u);
    EXPECT_EQ(hierarchy.l2().stats().writes, 1u);
    // A later L2 eviction of line 0 must write back to memory.
    EXPECT_FALSE(hierarchy.l1(0).contains(0));
    EXPECT_TRUE(hierarchy.l2().contains(0));
}

TEST(HierarchyTest, NoL1RoutesDirectlyToL2)
{
    HierarchyConfig config = twoLevelConfig(1, true);
    config.l1Enabled = false;
    CacheHierarchy hierarchy(config);
    hierarchy.access(read(0));
    EXPECT_EQ(hierarchy.l2().stats().accesses, 1u);
    EXPECT_EXIT(hierarchy.l1(0), ::testing::ExitedWithCode(1),
                "no L1");
}

TEST(HierarchyTest, PrivateL2PerCore)
{
    HierarchyConfig config = twoLevelConfig(2, false);
    config.l1Enabled = false;
    CacheHierarchy hierarchy(config);
    hierarchy.access(read(0, 0));
    hierarchy.access(read(0, 1));
    // Each core misses separately in its own L2.
    EXPECT_EQ(hierarchy.l2(0).stats().misses, 1u);
    EXPECT_EQ(hierarchy.l2(1).stats().misses, 1u);
    EXPECT_EQ(hierarchy.memoryBytesFetched(), 128u);
}

TEST(HierarchyTest, SharedL2DeduplicatesSharedLine)
{
    HierarchyConfig config = twoLevelConfig(2, true);
    config.l1Enabled = false;
    CacheHierarchy hierarchy(config);
    hierarchy.access(read(0, 0));
    hierarchy.access(read(0, 1)); // second core hits the shared copy
    EXPECT_EQ(hierarchy.l2().stats().misses, 1u);
    EXPECT_EQ(hierarchy.memoryBytesFetched(), 64u);
}

TEST(HierarchyTest, MemoryTrafficTotals)
{
    HierarchyConfig config = twoLevelConfig(1, true);
    config.l1Enabled = false;
    config.l2.capacityBytes = 1024; // 16 lines, 2 sets at assoc 8
    CacheHierarchy hierarchy(config);
    // Dirty a line, then stream far past capacity to force it out.
    hierarchy.access(write(0));
    for (Address line = 1; line <= 32; ++line)
        hierarchy.access(read(line * 64));
    EXPECT_GT(hierarchy.memoryBytesWrittenBack(), 0u);
    EXPECT_EQ(hierarchy.memoryTrafficBytes(),
              hierarchy.memoryBytesFetched() +
                  hierarchy.memoryBytesWrittenBack());
}

TEST(HierarchyTest, ResetStatsKeepsWarmContents)
{
    CacheHierarchy hierarchy(twoLevelConfig(1, true));
    hierarchy.access(read(0));
    hierarchy.resetStats();
    EXPECT_EQ(hierarchy.l2().stats().accesses, 0u);
    const HierarchyOutcome outcome = hierarchy.access(read(0));
    EXPECT_TRUE(outcome.l1Hit);
}

TEST(HierarchyTest, RejectsZeroCores)
{
    HierarchyConfig config;
    config.cores = 0;
    EXPECT_EXIT(CacheHierarchy{config}, ::testing::ExitedWithCode(1),
                "at least one core");
}

} // namespace
} // namespace bwwall
