/**
 * @file
 * Integration tests: trace generators driven through the real cache
 * simulator, validating the power law of cache misses end to end and
 * the paper's Section 4.2 write-back-ratio claim.
 */

#include <gtest/gtest.h>

#include "cache/miss_curve.hh"
#include "trace/power_law_trace.hh"
#include "trace/working_set_trace.hh"
#include "util/units.hh"

namespace bwwall {
namespace {

TEST(CapacityLadderTest, GeometricSeries)
{
    const auto ladder = capacityLadder(8 * kKiB, 64 * kKiB);
    ASSERT_EQ(ladder.size(), 4u);
    EXPECT_EQ(ladder[0], 8 * kKiB);
    EXPECT_EQ(ladder[3], 64 * kKiB);
}

TEST(CapacityLadderTest, SinglePoint)
{
    const auto ladder = capacityLadder(1024, 1024);
    ASSERT_EQ(ladder.size(), 1u);
    EXPECT_EQ(ladder[0], 1024u);
}

TEST(MissCurveTest, MonotoneDecreasingMissRate)
{
    PowerLawTraceParams params;
    params.alpha = 0.5;
    params.seed = 5;
    params.warmLines = 1 << 15;
    params.maxResidentLines = 1 << 16;
    PowerLawTrace trace(params);

    MissCurveSweepParams sweep;
    sweep.capacities = capacityLadder(8 * kKiB, 256 * kKiB);
    sweep.warmupAccesses = 100000;
    sweep.measuredAccesses = 200000;
    const auto points = measureMissCurve(trace, sweep);

    ASSERT_EQ(points.size(), 6u);
    for (std::size_t i = 1; i < points.size(); ++i)
        EXPECT_LT(points[i].missRate, points[i - 1].missRate);
}

/**
 * End-to-end power-law validation on the set-associative simulator —
 * the core of the paper's Figure 1 methodology.
 */
class MissCurveAlphaTest : public ::testing::TestWithParam<double>
{};

TEST_P(MissCurveAlphaTest, SimulatedCurveRecoversAlpha)
{
    const double alpha = GetParam();
    PowerLawTraceParams params;
    params.alpha = alpha;
    params.seed = 11;
    params.warmLines = 1 << 16;
    params.maxResidentLines = 1 << 17;
    PowerLawTrace trace(params);

    MissCurveSweepParams sweep;
    sweep.capacities = capacityLadder(8 * kKiB, 256 * kKiB);
    sweep.cacheTemplate.associativity = 8;
    sweep.warmupAccesses = 300000;
    sweep.measuredAccesses = 700000;
    const auto points = measureMissCurve(trace, sweep);

    const PowerLawFit fit = fitMissCurve(points);
    EXPECT_NEAR(-fit.exponent, alpha, 0.07);
    EXPECT_GT(fit.rSquared, 0.97);
}

INSTANTIATE_TEST_SUITE_P(PaperAlphas, MissCurveAlphaTest,
                         ::testing::Values(0.25, 0.5, 0.62));

/**
 * Paper Section 4.2: "the number of write backs tends to be an
 * application-specific constant fraction of its number of cache
 * misses, across different cache sizes."
 */
TEST(MissCurveTest, WritebackRatioConstantAcrossSizes)
{
    PowerLawTraceParams params;
    params.alpha = 0.5;
    params.writeLineFraction = 0.3;
    params.seed = 17;
    params.warmLines = 1 << 15;
    params.maxResidentLines = 1 << 16;
    PowerLawTrace trace(params);

    MissCurveSweepParams sweep;
    sweep.capacities = capacityLadder(8 * kKiB, 256 * kKiB);
    sweep.warmupAccesses = 200000;
    sweep.measuredAccesses = 400000;
    const auto points = measureMissCurve(trace, sweep);

    for (const MissCurvePoint &point : points) {
        EXPECT_NEAR(point.writebackRatio, 0.3, 0.06)
            << "at capacity " << point.capacityBytes;
    }
}

TEST(MissCurveTest, WorkingSetTraceShowsStaircase)
{
    WorkingSetTraceParams params;
    // 512-line (32 KiB) hot region plus a 4096-line (256 KiB) region.
    params.regions = {{512, 0.6, 0.0}, {4096, 0.4, 0.0}};
    params.seed = 23;
    WorkingSetTrace trace(params);

    MissCurveSweepParams sweep;
    sweep.capacities = capacityLadder(8 * kKiB, 1024 * kKiB);
    sweep.warmupAccesses = 100000;
    sweep.measuredAccesses = 200000;
    const auto points = measureMissCurve(trace, sweep);

    // Above the total footprint the miss rate collapses to ~0; below
    // the hot region it stays near 1.  The power-law fit quality of a
    // staircase is poor — exactly the paper's observation about
    // individual SPEC 2006 applications.
    EXPECT_GT(points.front().missRate, 0.5);
    EXPECT_LT(points.back().missRate, 0.01);
}

TEST(MissCurveTest, SectoredTemplateReducesTraffic)
{
    PowerLawTraceParams params;
    params.alpha = 0.5;
    params.usedWordFraction = 0.25;
    params.seed = 29;
    params.warmLines = 1 << 14;
    params.maxResidentLines = 1 << 15;
    PowerLawTrace trace(params);

    MissCurveSweepParams plain;
    plain.capacities = {64 * kKiB};
    plain.warmupAccesses = 100000;
    plain.measuredAccesses = 200000;

    MissCurveSweepParams sectored = plain;
    sectored.cacheTemplate.sectored = true;
    sectored.cacheTemplate.sectorBytes = 8;

    const auto plain_points = measureMissCurve(trace, plain);
    const auto sectored_points = measureMissCurve(trace, sectored);
    // With 2 of 8 words used, sector fetches cut traffic severalfold.
    EXPECT_LT(sectored_points[0].trafficBytesPerAccess * 2.0,
              plain_points[0].trafficBytesPerAccess);
}

} // namespace
} // namespace bwwall
