/**
 * @file
 * Integration tests: trace generators driven through the real cache
 * simulator, validating the power law of cache misses end to end and
 * the paper's Section 4.2 write-back-ratio claim.  All measurements
 * route through the unified MissCurveEstimator API with the exact
 * estimator; the estimator cross-validation lives in
 * miss_curve_estimator_test.cc.
 */

#include <gtest/gtest.h>

#include "cache/miss_curve.hh"
#include "cache/miss_curve_estimator.hh"
#include "trace/power_law_trace.hh"
#include "trace/working_set_trace.hh"
#include "util/units.hh"

namespace bwwall {
namespace {

TEST(CapacityLadderTest, GeometricSeries)
{
    const auto ladder = capacityLadder(8 * kKiB, 64 * kKiB);
    ASSERT_EQ(ladder.size(), 4u);
    EXPECT_EQ(ladder[0], 8 * kKiB);
    EXPECT_EQ(ladder[3], 64 * kKiB);
}

TEST(CapacityLadderTest, SinglePoint)
{
    const auto ladder = capacityLadder(1024, 1024);
    ASSERT_EQ(ladder.size(), 1u);
    EXPECT_EQ(ladder[0], 1024u);
}

TEST(MissCurveTest, MonotoneDecreasingMissRate)
{
    PowerLawTraceParams params;
    params.alpha = 0.5;
    params.seed = 5;
    params.warmLines = 1 << 15;
    params.maxResidentLines = 1 << 16;
    PowerLawTrace trace(params);

    MissCurveSpec spec;
    spec.kind = MissCurveEstimatorKind::ExactSim;
    spec.capacities = capacityLadder(8 * kKiB, 256 * kKiB);
    spec.warmupAccesses = 100000;
    spec.measuredAccesses = 200000;
    const auto points = estimateMissCurve(trace, spec).points;

    ASSERT_EQ(points.size(), 6u);
    for (std::size_t i = 1; i < points.size(); ++i)
        EXPECT_LT(points[i].missRate, points[i - 1].missRate);
}

/**
 * End-to-end power-law validation on the set-associative simulator —
 * the core of the paper's Figure 1 methodology.
 */
class MissCurveAlphaTest : public ::testing::TestWithParam<double>
{};

TEST_P(MissCurveAlphaTest, SimulatedCurveRecoversAlpha)
{
    const double alpha = GetParam();
    PowerLawTraceParams params;
    params.alpha = alpha;
    params.seed = 11;
    params.warmLines = 1 << 16;
    params.maxResidentLines = 1 << 17;
    PowerLawTrace trace(params);

    MissCurveSpec spec;
    spec.kind = MissCurveEstimatorKind::ExactSim;
    spec.capacities = capacityLadder(8 * kKiB, 256 * kKiB);
    spec.cache.associativity = 8;
    spec.warmupAccesses = 300000;
    spec.measuredAccesses = 700000;
    const MissCurve curve = estimateMissCurve(trace, spec);

    const PowerLawFit fit = curve.fit();
    EXPECT_NEAR(-fit.exponent, alpha, 0.07);
    EXPECT_GT(fit.rSquared, 0.97);
    // The exact estimator replays the trace once per grid point.
    EXPECT_EQ(curve.tracePasses, spec.capacities.size());
}

INSTANTIATE_TEST_SUITE_P(PaperAlphas, MissCurveAlphaTest,
                         ::testing::Values(0.25, 0.5, 0.62));

/**
 * Paper Section 4.2: "the number of write backs tends to be an
 * application-specific constant fraction of its number of cache
 * misses, across different cache sizes."
 */
TEST(MissCurveTest, WritebackRatioConstantAcrossSizes)
{
    PowerLawTraceParams params;
    params.alpha = 0.5;
    params.writeLineFraction = 0.3;
    params.seed = 17;
    params.warmLines = 1 << 15;
    params.maxResidentLines = 1 << 16;
    PowerLawTrace trace(params);

    MissCurveSpec spec;
    spec.kind = MissCurveEstimatorKind::ExactSim;
    spec.capacities = capacityLadder(8 * kKiB, 256 * kKiB);
    spec.warmupAccesses = 200000;
    spec.measuredAccesses = 400000;
    const auto points = estimateMissCurve(trace, spec).points;

    for (const MissCurvePoint &point : points) {
        EXPECT_NEAR(point.writebackRatio, 0.3, 0.06)
            << "at capacity " << point.capacityBytes;
    }
}

TEST(MissCurveTest, WorkingSetTraceShowsStaircase)
{
    WorkingSetTraceParams params;
    // 512-line (32 KiB) hot region plus a 4096-line (256 KiB) region.
    params.regions = {{512, 0.6, 0.0}, {4096, 0.4, 0.0}};
    params.seed = 23;
    WorkingSetTrace trace(params);

    MissCurveSpec spec;
    spec.kind = MissCurveEstimatorKind::ExactSim;
    spec.capacities = capacityLadder(8 * kKiB, 1024 * kKiB);
    spec.warmupAccesses = 100000;
    spec.measuredAccesses = 200000;
    const auto points = estimateMissCurve(trace, spec).points;

    // Above the total footprint the miss rate collapses to ~0; below
    // the hot region it stays near 1.  The power-law fit quality of a
    // staircase is poor — exactly the paper's observation about
    // individual SPEC 2006 applications.
    EXPECT_GT(points.front().missRate, 0.5);
    EXPECT_LT(points.back().missRate, 0.01);
}

TEST(MissCurveTest, SectoredTemplateReducesTraffic)
{
    PowerLawTraceParams params;
    params.alpha = 0.5;
    params.usedWordFraction = 0.25;
    params.seed = 29;
    params.warmLines = 1 << 14;
    params.maxResidentLines = 1 << 15;
    PowerLawTrace trace(params);

    MissCurveSpec plain;
    plain.kind = MissCurveEstimatorKind::ExactSim;
    plain.capacities = {64 * kKiB};
    plain.warmupAccesses = 100000;
    plain.measuredAccesses = 200000;

    MissCurveSpec sectored = plain;
    sectored.cache.sectored = true;
    sectored.cache.sectorBytes = 8;

    const auto plain_points = estimateMissCurve(trace, plain).points;
    const auto sectored_points =
        estimateMissCurve(trace, sectored).points;
    // With 2 of 8 words used, sector fetches cut traffic severalfold.
    EXPECT_LT(sectored_points[0].trafficBytesPerAccess * 2.0,
              plain_points[0].trafficBytesPerAccess);
}

} // namespace
} // namespace bwwall
