/**
 * @file
 * Calibration tests: the multi-generation studies must reproduce the
 * core-count numbers the paper reports in its text and figures.
 */

#include <gtest/gtest.h>

#include "model/scaling_study.hh"

namespace bwwall {
namespace {

ScalingStudyParams
paperBase()
{
    return ScalingStudyParams{}; // Niagara2-like, alpha 0.5, 4 gens
}

std::vector<int>
coresOf(const std::vector<GenerationResult> &results)
{
    std::vector<int> cores;
    for (const GenerationResult &result : results)
        cores.push_back(result.cores);
    return cores;
}

TEST(ScalingStudyTest, IdealScalingDoublesCores)
{
    const auto ideal = idealScaling(niagara2Baseline(), 4);
    EXPECT_EQ(coresOf(ideal), (std::vector<int>{16, 32, 64, 128}));
    for (const GenerationResult &result : ideal)
        EXPECT_DOUBLE_EQ(result.coreAreaFraction, 0.5);
}

TEST(ScalingStudyTest, BaseCaseMatchesPaper)
{
    // No techniques: 11 cores next generation, 24 at 16x (paper
    // abstract and Figure 15's BASE series).
    const auto base = runScalingStudy(paperBase());
    EXPECT_EQ(coresOf(base), (std::vector<int>{11, 14, 19, 24}));
    // "the allocation for caches must grow to 90%".
    EXPECT_NEAR(base.back().coreAreaFraction, 0.10, 0.01);
}

TEST(ScalingStudyTest, DramCacheMatchesPaper)
{
    // Paper: DRAM caches allow 47 cores in four generations; 18 in
    // the next generation at 8x density (Figure 5).
    ScalingStudyParams params = paperBase();
    params.techniques = {dramCache(8.0)};
    const auto results = runScalingStudy(params);
    EXPECT_EQ(results.front().cores, 18);
    EXPECT_EQ(results.back().cores, 47);
}

TEST(ScalingStudyTest, LinkCompressionMatchesPaper)
{
    // Paper: link compression enables 38 cores at 16x; 16 at 2x.
    ScalingStudyParams params = paperBase();
    params.techniques = {linkCompression(2.0)};
    const auto results = runScalingStudy(params);
    EXPECT_EQ(results.front().cores, 16);
    EXPECT_EQ(results.back().cores, 38);
}

TEST(ScalingStudyTest, CacheCompressionMatchesPaper)
{
    // Paper: cache compression enables only 30 at 16x (13 at 2x).
    ScalingStudyParams params = paperBase();
    params.techniques = {cacheCompression(2.0)};
    const auto results = runScalingStudy(params);
    EXPECT_EQ(results.front().cores, 13);
    EXPECT_EQ(results.back().cores, 30);
}

TEST(ScalingStudyTest, DirectBeatsIndirectAtEqualFactor)
{
    // The paper's central insight: the -alpha exponent dampens
    // indirect techniques, so LC(2x) > CC(2x) at every generation.
    ScalingStudyParams lc = paperBase();
    lc.techniques = {linkCompression(2.0)};
    ScalingStudyParams cc = paperBase();
    cc.techniques = {cacheCompression(2.0)};
    const auto lc_results = runScalingStudy(lc);
    const auto cc_results = runScalingStudy(cc);
    for (std::size_t g = 0; g < lc_results.size(); ++g)
        EXPECT_GT(lc_results[g].cores, cc_results[g].cores);
}

TEST(ScalingStudyTest, BandwidthGrowthRaisesCores)
{
    ScalingStudyParams params = paperBase();
    params.bandwidthGrowthPerGeneration = 1.5;
    const auto results = runScalingStudy(params);
    // 50% budget growth in the first future generation: 13 cores.
    EXPECT_EQ(results.front().cores, 13);
    const auto constant = runScalingStudy(paperBase());
    for (std::size_t g = 0; g < results.size(); ++g)
        EXPECT_GT(results[g].cores, constant[g].cores);
}

TEST(Figure15Test, NineCandlesOrderedAsTable2)
{
    const auto candles = figure15Study(paperBase());
    ASSERT_EQ(candles.size(), 9u);
    EXPECT_EQ(candles[0].label, "CC");
    EXPECT_EQ(candles[1].label, "DRAM");
    EXPECT_EQ(candles[8].label, "SmCl");
    for (const TechniqueCandle &candle : candles) {
        ASSERT_EQ(candle.realistic.size(), 4u);
        for (std::size_t g = 0; g < 4; ++g) {
            EXPECT_LE(candle.pessimistic[g].cores,
                      candle.realistic[g].cores)
                << candle.label;
            EXPECT_LE(candle.realistic[g].cores,
                      candle.optimistic[g].cores)
                << candle.label;
        }
    }
}

TEST(Figure15Test, PaperFigure4CompressionSweep)
{
    // Figure 4: compression 1.3/1.7/2.0/2.5/3.0x -> 11/12/13/14/14
    // cores in the 32-CEA generation.
    const double ratios[] = {1.3, 1.7, 2.0, 2.5, 3.0};
    const int expected[] = {11, 12, 13, 14, 14};
    for (int i = 0; i < 5; ++i) {
        ScalingScenario scenario;
        scenario.totalCeas = 32.0;
        scenario.techniques = {cacheCompression(ratios[i])};
        EXPECT_EQ(solveSupportableCores(scenario).supportableCores,
                  expected[i])
            << "ratio " << ratios[i];
    }
}

TEST(Figure15Test, PaperFigure5DramSweep)
{
    // Figure 5: DRAM 4x/8x/16x -> 16/18/21 cores (32 CEAs).
    const double densities[] = {4.0, 8.0, 16.0};
    const int expected[] = {16, 18, 21};
    for (int i = 0; i < 3; ++i) {
        ScalingScenario scenario;
        scenario.totalCeas = 32.0;
        scenario.techniques = {dramCache(densities[i])};
        EXPECT_EQ(solveSupportableCores(scenario).supportableCores,
                  expected[i]);
    }
}

TEST(Figure15Test, PaperFigure6StackedSweep)
{
    // Figure 6: 3D SRAM -> 14; 3D DRAM 8x -> 25; 16x -> 32.
    struct Case
    {
        double density;
        int expected;
    };
    for (const Case &c :
         {Case{1.0, 14}, Case{8.0, 25}, Case{16.0, 32}}) {
        ScalingScenario scenario;
        scenario.totalCeas = 32.0;
        scenario.techniques = {stackedCache(c.density)};
        EXPECT_EQ(solveSupportableCores(scenario).supportableCores,
                  c.expected)
            << "density " << c.density;
    }
}

TEST(Figure15Test, PaperFigure7FilterSweep)
{
    // Figure 7: 40% unused -> 12 cores (one more than base); 80% ->
    // 16 (proportional scaling).
    ScalingScenario scenario;
    scenario.totalCeas = 32.0;
    scenario.techniques = {unusedDataFilter(0.4)};
    EXPECT_EQ(solveSupportableCores(scenario).supportableCores, 12);
    scenario.techniques = {unusedDataFilter(0.8)};
    EXPECT_EQ(solveSupportableCores(scenario).supportableCores, 16);
}

TEST(Figure15Test, PaperFigure8SmallerCoresAsymptote)
{
    // Figure 8: even infinitesimal cores cap near 12 — cache per core
    // only doubles while proportional scaling needs 4x.
    ScalingScenario scenario;
    scenario.totalCeas = 32.0;
    scenario.techniques = {smallerCores(1.0 / 80.0)};
    const int cores = solveSupportableCores(scenario).supportableCores;
    EXPECT_GE(cores, 12);
    EXPECT_LE(cores, 13);
}

TEST(Figure15Test, PaperFigure11SmallLines)
{
    // Figure 11: 40% unused with word-sized lines -> proportional
    // scaling (16 cores).
    ScalingScenario scenario;
    scenario.totalCeas = 32.0;
    scenario.techniques = {smallCacheLines(0.4)};
    EXPECT_EQ(solveSupportableCores(scenario).supportableCores, 16);
}

TEST(Figure15Test, PaperFigure12CacheLinkCompression)
{
    // Figure 12: 2x cache+link compression -> 18 cores.
    ScalingScenario scenario;
    scenario.totalCeas = 32.0;
    scenario.techniques = {cacheLinkCompression(2.0)};
    EXPECT_EQ(solveSupportableCores(scenario).supportableCores, 18);
}

TEST(Figure16Test, CombinationListMatchesPaperAxis)
{
    const auto &combinations = figure16Combinations();
    ASSERT_EQ(combinations.size(), 15u);
    EXPECT_EQ(combinations.front().name, "CC + DRAM + 3D");
    EXPECT_EQ(combinations.back().name,
              "CC/LC + DRAM + 3D + SmCl");
}

TEST(Figure16Test, AllCombinedReaches183Cores)
{
    // The paper's headline: CC/LC + DRAM + 3D + SmCl at realistic
    // assumptions supports 183 cores (71% of the die) at 16x.
    ScalingStudyParams params = paperBase();
    params.techniques =
        makeCombination(figure16Combinations().back(),
                        Assumption::Realistic);
    const auto results = runScalingStudy(params);
    EXPECT_EQ(results.back().cores, 183);
    EXPECT_NEAR(results.back().coreAreaFraction, 0.71, 0.01);
}

TEST(Figure16Test, SuperProportionalScalingAllGenerations)
{
    // The combined techniques exceed IDEAL at every generation.
    ScalingStudyParams params = paperBase();
    params.techniques =
        makeCombination(figure16Combinations().back(),
                        Assumption::Realistic);
    const auto combined = runScalingStudy(params);
    const auto ideal = idealScaling(niagara2Baseline(), 4);
    for (std::size_t g = 0; g < combined.size(); ++g)
        EXPECT_GT(combined[g].cores, ideal[g].cores);
}

TEST(Figure17Test, AlphaSensitivity)
{
    // Figure 17: large alpha (0.62) supports roughly twice the cores
    // of small alpha (0.25) in the base case, and the gap widens with
    // techniques applied.
    ScalingStudyParams small_alpha = paperBase();
    small_alpha.alpha = 0.25;
    ScalingStudyParams large_alpha = paperBase();
    large_alpha.alpha = 0.62;

    const auto small_base = runScalingStudy(small_alpha);
    const auto large_base = runScalingStudy(large_alpha);
    EXPECT_NEAR(static_cast<double>(large_base.back().cores) /
                    static_cast<double>(small_base.back().cores),
                2.0, 0.5);

    small_alpha.techniques = {dramCache(8.0)};
    large_alpha.techniques = {dramCache(8.0)};
    const auto small_dram = runScalingStudy(small_alpha);
    const auto large_dram = runScalingStudy(large_alpha);
    const int base_gap =
        large_base.back().cores - small_base.back().cores;
    const int dram_gap =
        large_dram.back().cores - small_dram.back().cores;
    EXPECT_GT(dram_gap, base_gap);
}

TEST(Table2Test, RowsAndLookup)
{
    ASSERT_EQ(table2Assumptions().size(), 9u);
    EXPECT_EQ(table2Row("DRAM").effectiveness, "High");
    EXPECT_EQ(table2Row("SmCo").effectiveness, "Low");
    EXPECT_EQ(table2Row("3D").complexity, "High");
    EXPECT_EXIT(table2Row("nope"), ::testing::ExitedWithCode(1),
                "unknown");
}

TEST(Table2Test, AssumptionNames)
{
    EXPECT_EQ(assumptionName(Assumption::Pessimistic), "pessimistic");
    EXPECT_EQ(assumptionName(Assumption::Realistic), "realistic");
    EXPECT_EQ(assumptionName(Assumption::Optimistic), "optimistic");
}

TEST(Table2Test, MakeTechniqueByLabel)
{
    const Technique cc =
        makeTechnique("CC", Assumption::Realistic);
    EXPECT_DOUBLE_EQ(cc.effects().capacityFactor, 2.0);
    const Technique lc =
        makeTechnique("LC", Assumption::Optimistic);
    EXPECT_NEAR(lc.effects().directFactor, 1.0 / 3.5, 1e-12);
}

} // namespace
} // namespace bwwall
