/**
 * @file
 * Unit tests for the PowerLaw and CmpConfig primitives.
 */

#include <gtest/gtest.h>

#include <cmath>

#include "model/cmp_config.hh"
#include "model/power_law.hh"

namespace bwwall {
namespace {

TEST(PowerLawModelTest, MissRateAtReferenceIsM0)
{
    const PowerLaw law(0.5);
    EXPECT_DOUBLE_EQ(law.missRate(0.1, 1024, 1024), 0.1);
}

TEST(PowerLawModelTest, Sqrt2Rule)
{
    // alpha = 0.5: doubling the cache divides misses by sqrt(2).
    const PowerLaw law(0.5);
    const double m1 = law.missRate(0.1, 1024, 2048);
    EXPECT_NEAR(0.1 / m1, std::sqrt(2.0), 1e-12);
}

TEST(PowerLawModelTest, TrafficScaleIdentity)
{
    const PowerLaw law(0.62);
    EXPECT_DOUBLE_EQ(law.trafficScale(1.0), 1.0);
    EXPECT_NEAR(law.trafficScale(4.0), std::pow(4.0, -0.62), 1e-12);
}

TEST(PowerLawModelTest, CapacityRatioInvertsTrafficScale)
{
    const PowerLaw law(0.36);
    for (double target : {0.25, 0.5, 0.9, 1.5}) {
        const double ratio = law.capacityRatioForTraffic(target);
        EXPECT_NEAR(law.trafficScale(ratio), target, 1e-12);
    }
}

TEST(PowerLawModelTest, PaperDampeningExample)
{
    // Paper Section 6.1: with alpha = 0.9 the cache must grow 2.16x to
    // halve traffic; with alpha = 0.5 it must grow 4x.
    EXPECT_NEAR(PowerLaw(0.9).capacityRatioForTraffic(0.5), 2.16,
                0.01);
    EXPECT_NEAR(PowerLaw(0.5).capacityRatioForTraffic(0.5), 4.0,
                1e-9);
}

TEST(PowerLawModelTest, RejectsNonPositiveAlpha)
{
    EXPECT_EXIT(PowerLaw{0.0}, ::testing::ExitedWithCode(1), "alpha");
    EXPECT_EXIT(PowerLaw{-0.5}, ::testing::ExitedWithCode(1), "alpha");
}

TEST(CmpConfigTest, Table1Accounting)
{
    const CmpConfig config{16.0, 8.0};
    EXPECT_DOUBLE_EQ(config.cacheCeas(), 8.0);
    EXPECT_DOUBLE_EQ(config.cachePerCore(), 1.0);
    EXPECT_DOUBLE_EQ(config.coreAreaFraction(), 0.5);
}

TEST(CmpConfigTest, BaselineMatchesPaperSection51)
{
    const CmpConfig baseline = niagara2Baseline();
    EXPECT_DOUBLE_EQ(baseline.totalCeas, 16.0);
    EXPECT_DOUBLE_EQ(baseline.coreCeas, 8.0);
    EXPECT_DOUBLE_EQ(baseline.cachePerCore(), 1.0);
    baseline.validate();
}

TEST(CmpConfigTest, ValidationRejectsOversizedCores)
{
    const CmpConfig config{16.0, 17.0};
    EXPECT_EXIT(config.validate(), ::testing::ExitedWithCode(1),
                "exceeds");
}

} // namespace
} // namespace bwwall
