/**
 * @file
 * Unit tests for the technique effect parameters and composition.
 */

#include <gtest/gtest.h>

#include "model/technique.hh"

namespace bwwall {
namespace {

TEST(TechniqueTest, CacheCompressionIsPureCapacity)
{
    const Technique technique = cacheCompression(2.0);
    EXPECT_EQ(technique.label(), "CC");
    EXPECT_DOUBLE_EQ(technique.effects().capacityFactor, 2.0);
    EXPECT_DOUBLE_EQ(technique.effects().directFactor, 1.0);
}

TEST(TechniqueTest, DramCacheIsDensity)
{
    const Technique technique = dramCache(8.0);
    EXPECT_DOUBLE_EQ(technique.effects().cacheDensity, 8.0);
    EXPECT_DOUBLE_EQ(technique.effects().capacityFactor, 1.0);
}

TEST(TechniqueTest, StackedCacheAddsOneLayer)
{
    const Technique technique = stackedCache(1.0);
    EXPECT_DOUBLE_EQ(technique.effects().stackedLayers, 1.0);
    EXPECT_DOUBLE_EQ(technique.effects().stackedDensity, 1.0);

    const Technique dram_layer = stackedCache(8.0);
    EXPECT_DOUBLE_EQ(dram_layer.effects().stackedDensity, 8.0);
}

TEST(TechniqueTest, FilterCapacityFromUnusedFraction)
{
    // 40% unused words -> 1/(1-0.4) = 1.667x effective capacity.
    const Technique technique = unusedDataFilter(0.4);
    EXPECT_NEAR(technique.effects().capacityFactor, 1.0 / 0.6, 1e-12);
    // 80% unused -> the paper's "5x effective increase".
    EXPECT_NEAR(unusedDataFilter(0.8).effects().capacityFactor, 5.0,
                1e-12);
}

TEST(TechniqueTest, LinkCompressionIsPureDirect)
{
    const Technique technique = linkCompression(2.0);
    EXPECT_DOUBLE_EQ(technique.effects().directFactor, 0.5);
    EXPECT_DOUBLE_EQ(technique.effects().capacityFactor, 1.0);
}

TEST(TechniqueTest, SectoredCacheIsPureDirect)
{
    const Technique technique = sectoredCache(0.4);
    EXPECT_DOUBLE_EQ(technique.effects().directFactor, 0.6);
    EXPECT_DOUBLE_EQ(technique.effects().capacityFactor, 1.0);
}

TEST(TechniqueTest, SmallLinesAreDual)
{
    const Technique technique = smallCacheLines(0.4);
    EXPECT_NEAR(technique.effects().capacityFactor, 1.0 / 0.6, 1e-12);
    EXPECT_DOUBLE_EQ(technique.effects().directFactor, 0.6);
}

TEST(TechniqueTest, CacheLinkCompressionIsDual)
{
    const Technique technique = cacheLinkCompression(2.0);
    EXPECT_DOUBLE_EQ(technique.effects().capacityFactor, 2.0);
    EXPECT_DOUBLE_EQ(technique.effects().directFactor, 0.5);
}

TEST(TechniqueTest, SmallerCoresShrinkCoreArea)
{
    const Technique technique = smallerCores(1.0 / 40.0);
    EXPECT_NEAR(technique.effects().coreAreaFraction, 0.025, 1e-12);
}

TEST(CombineTest, FactorsMultiply)
{
    const TechniqueEffects combined = combineEffects(
        {cacheCompression(2.0), unusedDataFilter(0.4),
         linkCompression(2.0), sectoredCache(0.5)});
    EXPECT_NEAR(combined.capacityFactor, 2.0 / 0.6, 1e-12);
    EXPECT_NEAR(combined.directFactor, 0.25, 1e-12);
}

TEST(CombineTest, StackedLayerInheritsDramDensity)
{
    // Paper composition: DRAM + 3D puts DRAM on both dies.
    const TechniqueEffects combined =
        combineEffects({dramCache(8.0), stackedCache(1.0)});
    EXPECT_DOUBLE_EQ(combined.cacheDensity, 8.0);
    EXPECT_DOUBLE_EQ(combined.stackedDensity, 8.0);
    EXPECT_DOUBLE_EQ(combined.stackedLayers, 1.0);
}

TEST(CombineTest, StandaloneStackKeepsOwnDensity)
{
    const TechniqueEffects combined =
        combineEffects({stackedCache(16.0)});
    EXPECT_DOUBLE_EQ(combined.cacheDensity, 1.0); // on-die SRAM
    EXPECT_DOUBLE_EQ(combined.stackedDensity, 16.0);
}

TEST(CombineTest, EmptySetIsIdentity)
{
    const TechniqueEffects combined = combineEffects({});
    EXPECT_DOUBLE_EQ(combined.capacityFactor, 1.0);
    EXPECT_DOUBLE_EQ(combined.directFactor, 1.0);
    EXPECT_DOUBLE_EQ(combined.cacheDensity, 1.0);
    EXPECT_DOUBLE_EQ(combined.stackedLayers, 0.0);
    EXPECT_DOUBLE_EQ(combined.coreAreaFraction, 1.0);
    EXPECT_LT(combined.sharedFraction, 0.0);
}

TEST(CombineTest, PaperCombinedCapacityClaim)
{
    // Paper Section 6.4: "3D-stacked DRAM cache, cache compression,
    // and small cache lines can increase the effective cache capacity
    // by 53x" — 8 (DRAM) * 2 (CC) * 1.667 (SmCl) * 2 (extra die).
    const TechniqueEffects combined = combineEffects(
        {cacheLinkCompression(2.0), dramCache(8.0), stackedCache(1.0),
         smallCacheLines(0.4)});
    const double capacity_gain = combined.cacheDensity *
        combined.capacityFactor * 2.0; // 2 = both dies vs one
    EXPECT_NEAR(capacity_gain, 53.3, 0.5);
    // "link compression and small cache lines alone can directly
    // reduce memory traffic by 70%".
    EXPECT_NEAR(combined.directFactor, 0.3, 1e-9);
}

TEST(CombineTest, RejectsTwoSharingTechniques)
{
    EXPECT_EXIT(combineEffects({dataSharing(0.3), dataSharing(0.4)}),
                ::testing::ExitedWithCode(1), "data-sharing");
}

TEST(TechniqueTest, RejectsInvalidParameters)
{
    EXPECT_EXIT(cacheCompression(0.9), ::testing::ExitedWithCode(1),
                "ratio");
    EXPECT_EXIT(unusedDataFilter(1.0), ::testing::ExitedWithCode(1),
                "fraction");
    EXPECT_EXIT(smallerCores(0.0), ::testing::ExitedWithCode(1),
                "area fraction");
    EXPECT_EXIT(dataSharing(1.5), ::testing::ExitedWithCode(1),
                "fraction");
}

} // namespace
} // namespace bwwall
