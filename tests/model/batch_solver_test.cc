/**
 * @file
 * Property tests for the SoA batch solver: every batch entry point
 * must be *bit-identical* to its scalar twin (PR 3's
 * byte-identical-response and cache-key invariants ride on this),
 * and the try* variants must classify per-point failures exactly as
 * the scalar Expected<T> paths do.
 */

#include <gtest/gtest.h>

#include <bit>
#include <cmath>
#include <cstdint>
#include <limits>
#include <vector>

#include "model/batch_solver.hh"
#include "util/fault.hh"
#include "util/rng.hh"

namespace bwwall {
namespace {

/** Bitwise equality — the only comparison these tests accept. */
bool
bitEqual(double a, double b)
{
    return std::bit_cast<std::uint64_t>(a) ==
           std::bit_cast<std::uint64_t>(b);
}

/** Builds a random technique set (possibly empty). */
std::vector<Technique>
randomTechniques(Rng &rng)
{
    std::vector<Technique> techniques;
    if (rng.nextBernoulli(0.5))
        techniques.push_back(cacheCompression(
            1.0 + rng.nextDouble() * 2.5));
    if (rng.nextBernoulli(0.3))
        techniques.push_back(dramCache(2.0 + rng.nextDouble() * 14.0));
    if (rng.nextBernoulli(0.3))
        techniques.push_back(stackedCache(
            rng.nextBernoulli(0.5) ? 1.0
                                   : 2.0 + rng.nextDouble() * 14.0));
    if (rng.nextBernoulli(0.3))
        techniques.push_back(unusedDataFilter(rng.nextDouble() * 0.8));
    if (rng.nextBernoulli(0.3))
        techniques.push_back(smallerCores(
            0.0125 + rng.nextDouble() * 0.9));
    if (rng.nextBernoulli(0.5))
        techniques.push_back(linkCompression(
            1.0 + rng.nextDouble() * 2.5));
    if (rng.nextBernoulli(0.3))
        techniques.push_back(sectoredCache(rng.nextDouble() * 0.8));
    if (rng.nextBernoulli(0.3))
        techniques.push_back(smallCacheLines(rng.nextDouble() * 0.8));
    // At most one data-sharing flavour may be combined.
    if (rng.nextBernoulli(0.2))
        techniques.push_back(dataSharing(rng.nextDouble()));
    else if (rng.nextBernoulli(0.2))
        techniques.push_back(dataSharingPrivateCaches(
            rng.nextDouble()));
    return techniques;
}

/** A random grid with valid points over the fuzz tests' ranges. */
BatchGrid
randomGrid(Rng &rng, std::size_t count)
{
    BatchGrid grid;
    grid.techniques = randomTechniques(rng);
    grid.reserve(count);
    for (std::size_t i = 0; i < count; ++i) {
        grid.push(0.2 + rng.nextDouble() * 0.7,
                  16.0 * std::pow(2.0, rng.nextBounded(7)),
                  0.5 + rng.nextDouble() * 2.5);
    }
    return grid;
}

/** Caller-owned columns sized for one grid. */
struct SupportableColumns
{
    explicit SupportableColumns(std::size_t count)
        : supportableCores(count, -1), fractionalCores(count, -1.0),
          trafficAtSolution(count, -1.0),
          coreAreaFraction(count, -1.0), cachePerCore(count, -1.0)
    {}

    SupportableBatchOut
    out()
    {
        return {supportableCores.data(), fractionalCores.data(),
                trafficAtSolution.data(), coreAreaFraction.data(),
                cachePerCore.data()};
    }

    std::vector<int> supportableCores;
    std::vector<double> fractionalCores;
    std::vector<double> trafficAtSolution;
    std::vector<double> coreAreaFraction;
    std::vector<double> cachePerCore;
};

struct ThroughputColumns
{
    explicit ThroughputColumns(std::size_t count)
        : cores(count, -1), throughput(count, -1.0),
          traffic(count, -1.0), bandwidthLimited(count, 255)
    {}

    ThroughputBatchOut
    out()
    {
        return {cores.data(), throughput.data(), traffic.data(),
                bandwidthLimited.data()};
    }

    std::vector<int> cores;
    std::vector<double> throughput;
    std::vector<double> traffic;
    std::vector<std::uint8_t> bandwidthLimited;
};

struct StatusColumns
{
    explicit StatusColumns(std::size_t count)
        : ok(count, 255), errors(count)
    {}

    BatchPointStatus
    status()
    {
        return {ok.data(), errors.data()};
    }

    std::vector<std::uint8_t> ok;
    std::vector<Error> errors;
};

void
expectSupportableBits(const SolveResult &scalar,
                      const SupportableColumns &batch, std::size_t i)
{
    EXPECT_EQ(scalar.supportableCores, batch.supportableCores[i]);
    EXPECT_TRUE(bitEqual(scalar.fractionalCores,
                         batch.fractionalCores[i]));
    EXPECT_TRUE(bitEqual(scalar.trafficAtSolution,
                         batch.trafficAtSolution[i]));
    EXPECT_TRUE(bitEqual(scalar.coreAreaFraction,
                         batch.coreAreaFraction[i]));
    EXPECT_TRUE(bitEqual(scalar.cachePerCore, batch.cachePerCore[i]));
}

void
expectThroughputBits(const ThroughputSolveResult &scalar,
                     const ThroughputColumns &batch, std::size_t i)
{
    EXPECT_EQ(scalar.cores, batch.cores[i]);
    EXPECT_TRUE(bitEqual(scalar.throughput, batch.throughput[i]));
    EXPECT_TRUE(bitEqual(scalar.traffic, batch.traffic[i]));
    EXPECT_EQ(scalar.bandwidthLimited ? 1 : 0,
              static_cast<int>(batch.bandwidthLimited[i]));
}

class BatchSolverFuzzTest
    : public ::testing::TestWithParam<std::uint64_t>
{};

TEST_P(BatchSolverFuzzTest, SupportableMatchesScalarBitForBit)
{
    Rng rng(GetParam());
    for (int round = 0; round < 25; ++round) {
        const BatchGrid grid =
            randomGrid(rng, 1 + rng.nextBounded(24));
        SupportableColumns batch(grid.points());
        solveSupportableBatch(grid, batch.out());
        for (std::size_t i = 0; i < grid.points(); ++i) {
            const SolveResult scalar =
                solveSupportableCores(grid.scenarioAt(i));
            expectSupportableBits(scalar, batch, i);
        }
    }
}

TEST_P(BatchSolverFuzzTest, ThroughputMatchesScalarBitForBit)
{
    Rng rng(GetParam() + 500);
    for (int round = 0; round < 20; ++round) {
        const BatchGrid grid =
            randomGrid(rng, 1 + rng.nextBounded(16));
        ThroughputModelParams params;
        params.memoryStallShare = rng.nextDouble() * 0.9;

        ThroughputColumns constrained(grid.points());
        solveThroughputBatch(grid, params, constrained.out());
        ThroughputColumns unconstrained(grid.points());
        solveThroughputUnconstrainedBatch(grid, params,
                                          unconstrained.out());
        for (std::size_t i = 0; i < grid.points(); ++i) {
            const ScalingScenario scenario = grid.scenarioAt(i);
            expectThroughputBits(
                solveThroughputOptimal(scenario, params), constrained,
                i);
            expectThroughputBits(
                solveThroughputUnconstrained(scenario, params),
                unconstrained, i);
        }
    }
}

TEST_P(BatchSolverFuzzTest, TrafficSurfaceMatchesScalarBitForBit)
{
    Rng rng(GetParam() + 1000);
    for (int round = 0; round < 25; ++round) {
        const BatchGrid grid =
            randomGrid(rng, 1 + rng.nextBounded(24));
        std::vector<double> cores(grid.points());
        for (double &count : cores)
            count = 1.0 + rng.nextDouble() * 255.0;

        std::vector<double> traffic(grid.points(), -1.0);
        evaluateTrafficBatch(grid, cores.data(), traffic.data());
        for (std::size_t i = 0; i < grid.points(); ++i) {
            EXPECT_TRUE(bitEqual(
                relativeTraffic(grid.scenarioAt(i), cores[i]),
                traffic[i]));
        }
    }
}

TEST_P(BatchSolverFuzzTest, TryVariantsMatchScalarOnHealthyGrids)
{
    Rng rng(GetParam() + 2000);
    for (int round = 0; round < 10; ++round) {
        const BatchGrid grid =
            randomGrid(rng, 1 + rng.nextBounded(12));
        ThroughputModelParams params;
        params.memoryStallShare = rng.nextDouble() * 0.9;

        SupportableColumns supportable(grid.points());
        StatusColumns supportable_status(grid.points());
        ASSERT_EQ(grid.points(),
                  trySolveSupportableBatch(grid, supportable.out(),
                                           supportable_status.status()));
        ThroughputColumns throughput(grid.points());
        StatusColumns throughput_status(grid.points());
        ASSERT_EQ(grid.points(),
                  trySolveThroughputBatch(grid, params,
                                          throughput.out(),
                                          throughput_status.status()));
        for (std::size_t i = 0; i < grid.points(); ++i) {
            EXPECT_EQ(1, supportable_status.ok[i]);
            EXPECT_EQ(1, throughput_status.ok[i]);
            const ScalingScenario scenario = grid.scenarioAt(i);
            const Expected<SolveResult> scalar =
                trySolveSupportableCores(scenario);
            ASSERT_TRUE(scalar.ok());
            expectSupportableBits(scalar.value(), supportable, i);
            const Expected<ThroughputSolveResult> scalar_throughput =
                trySolveThroughputOptimal(scenario, params);
            ASSERT_TRUE(scalar_throughput.ok());
            expectThroughputBits(scalar_throughput.value(),
                                 throughput, i);
        }
    }
}

INSTANTIATE_TEST_SUITE_P(Seeds, BatchSolverFuzzTest,
                         ::testing::Values(1u, 2u, 3u));

TEST(BatchSolverTest, EmptyGridIsANoOp)
{
    const BatchGrid grid;
    ASSERT_EQ(0u, grid.points());
    // Null output columns must not be touched when there is nothing
    // to solve.
    solveSupportableBatch(grid, SupportableBatchOut{});
    solveThroughputBatch(grid, ThroughputModelParams{},
                         ThroughputBatchOut{});
    solveThroughputUnconstrainedBatch(grid, ThroughputModelParams{},
                                      ThroughputBatchOut{});
    evaluateTrafficBatch(grid, nullptr, nullptr);
    EXPECT_EQ(0u, trySolveSupportableBatch(grid, SupportableBatchOut{},
                                           BatchPointStatus{}));
    EXPECT_EQ(0u,
              trySolveThroughputBatch(grid, ThroughputModelParams{},
                                      ThroughputBatchOut{},
                                      BatchPointStatus{}));
}

TEST(BatchSolverTest, SinglePointGridMatchesScalar)
{
    BatchGrid grid;
    grid.techniques = {cacheCompression(2.0), dramCache(8.0)};
    grid.push(0.5, 64.0, 1.0);

    SupportableColumns supportable(1);
    solveSupportableBatch(grid, supportable.out());
    expectSupportableBits(solveSupportableCores(grid.scenarioAt(0)),
                          supportable, 0);

    ThroughputColumns throughput(1);
    const ThroughputModelParams params;
    solveThroughputBatch(grid, params, throughput.out());
    expectThroughputBits(
        solveThroughputOptimal(grid.scenarioAt(0), params),
        throughput, 0);
}

TEST(BatchSolverTest, BatchSolverPointApiMatchesScalar)
{
    const BatchGrid grid = [] {
        BatchGrid g;
        g.techniques = {stackedCache(1.0), linkCompression(2.0)};
        g.push(0.4, 128.0, 1.5);
        return g;
    }();
    const BatchSolver solver(grid.baseline, grid.techniques);
    const ScalingScenario scenario = grid.scenarioAt(0);

    const SolveResult scalar = solveSupportableCores(scenario);
    const SolveResult point = solver.solveSupportable(
        grid.alpha[0], grid.totalCeas[0], grid.trafficBudget[0]);
    EXPECT_EQ(scalar.supportableCores, point.supportableCores);
    EXPECT_TRUE(bitEqual(scalar.fractionalCores,
                         point.fractionalCores));
    EXPECT_TRUE(bitEqual(scalar.trafficAtSolution,
                         point.trafficAtSolution));
    EXPECT_TRUE(bitEqual(scalar.cachePerCore, point.cachePerCore));

    EXPECT_TRUE(bitEqual(
        relativeTraffic(scenario, 7.0),
        solver.traffic(grid.alpha[0], grid.totalCeas[0],
                       grid.trafficBudget[0], 7.0)));
}

/**
 * Per-point classification: bad points must come back with exactly
 * the category and message the scalar try* twin returns, good points
 * must still solve, and outputs must only be written for ok points.
 */
TEST(BatchSolverTest, TryBatchClassifiesBadPointsLikeScalar)
{
    BatchGrid grid;
    grid.techniques = {cacheCompression(2.0)};
    grid.push(0.5, 64.0, 1.0);  // good
    grid.push(std::numeric_limits<double>::quiet_NaN(), 64.0,
              1.0);             // NonFinite scenario
    grid.push(-0.5, 64.0, 1.0); // alpha out of range
    grid.push(0.5, -4.0, 1.0);  // non-positive die
    grid.push(0.5, 64.0, 0.0);  // non-positive budget
    grid.push(0.6, 256.0, 2.0); // good

    SupportableColumns batch(grid.points());
    StatusColumns status(grid.points());
    EXPECT_EQ(2u, trySolveSupportableBatch(grid, batch.out(),
                                           status.status()));

    for (std::size_t i = 0; i < grid.points(); ++i) {
        const Expected<SolveResult> scalar =
            trySolveSupportableCores(grid.scenarioAt(i));
        ASSERT_EQ(scalar.ok(), status.ok[i] == 1) << "point " << i;
        if (scalar.ok()) {
            expectSupportableBits(scalar.value(), batch, i);
        } else {
            EXPECT_EQ(scalar.error().category,
                      status.errors[i].category) << "point " << i;
            EXPECT_EQ(scalar.error().message,
                      status.errors[i].message) << "point " << i;
            // Failed points must leave the output columns untouched.
            EXPECT_EQ(-1, batch.supportableCores[i]);
            EXPECT_TRUE(bitEqual(-1.0, batch.fractionalCores[i]));
            EXPECT_TRUE(bitEqual(-1.0, batch.trafficAtSolution[i]));
        }
    }
    EXPECT_EQ(ErrorCategory::NonFinite, status.errors[1].category);
    EXPECT_EQ("scenario contains a non-finite field",
              status.errors[1].message);
    EXPECT_EQ(ErrorCategory::InvalidInput, status.errors[4].category);
    EXPECT_EQ("scenario requires a positive traffic budget",
              status.errors[4].message);
}

TEST(BatchSolverTest, TryThroughputBatchClassifiesBadStallShare)
{
    BatchGrid grid;
    grid.push(0.5, 64.0, 1.0);
    grid.push(0.6, 128.0, 1.5);

    ThroughputModelParams params;
    params.memoryStallShare =
        std::numeric_limits<double>::quiet_NaN();
    ThroughputColumns batch(grid.points());
    StatusColumns status(grid.points());
    EXPECT_EQ(0u, trySolveThroughputBatch(grid, params, batch.out(),
                                          status.status()));
    for (std::size_t i = 0; i < grid.points(); ++i) {
        EXPECT_EQ(0, status.ok[i]);
        EXPECT_EQ(ErrorCategory::NonFinite,
                  status.errors[i].category);
        EXPECT_EQ("memory stall share is not finite",
                  status.errors[i].message);
        EXPECT_EQ(-1, batch.cores[i]);
    }

    params.memoryStallShare = 1.5;
    EXPECT_EQ(0u, trySolveThroughputBatch(grid, params, batch.out(),
                                          status.status()));
    for (std::size_t i = 0; i < grid.points(); ++i) {
        EXPECT_EQ(0, status.ok[i]);
        EXPECT_EQ(ErrorCategory::InvalidInput,
                  status.errors[i].category);
        EXPECT_EQ("memory stall share must be in [0, 1)",
                  status.errors[i].message);
    }
}

/**
 * The batch try path must hit FAULT_POINT("model.solve") once per
 * otherwise-healthy point, in grid order — the same hit sequence as
 * a scalar try loop — so a deterministic plan fails the same points.
 */
TEST(BatchSolverTest, FaultInjectionFailsSamePointsAsScalarLoop)
{
    BatchGrid grid;
    for (int i = 0; i < 6; ++i)
        grid.push(0.4 + 0.05 * i, 64.0, 1.0 + 0.1 * i);

    std::vector<bool> batch_ok;
    {
        ScopedFaultInjection faults("model.solve=sched:2,5");
        SupportableColumns batch(grid.points());
        StatusColumns status(grid.points());
        EXPECT_EQ(4u, trySolveSupportableBatch(grid, batch.out(),
                                               status.status()));
        for (std::size_t i = 0; i < grid.points(); ++i) {
            batch_ok.push_back(status.ok[i] == 1);
            if (status.ok[i] == 0) {
                EXPECT_EQ(ErrorCategory::NonConvergence,
                          status.errors[i].category);
                EXPECT_EQ("solver failed to converge (injected fault "
                          "'model.solve')",
                          status.errors[i].message);
            }
        }
    }
    {
        ScopedFaultInjection faults("model.solve=sched:2,5");
        for (std::size_t i = 0; i < grid.points(); ++i) {
            EXPECT_EQ(trySolveSupportableCores(grid.scenarioAt(i)).ok(),
                      batch_ok[i]) << "point " << i;
        }
    }
}

} // namespace
} // namespace bwwall
