/**
 * @file
 * Tests for the throughput-oriented allocation extension.
 */

#include <gtest/gtest.h>

#include <cmath>

#include "model/throughput.hh"

namespace bwwall {
namespace {

TEST(CorePerformanceTest, BaselineIsUnity)
{
    const ThroughputModelParams params;
    EXPECT_DOUBLE_EQ(relativeCorePerformance(params, 0.5, 1.0), 1.0);
}

TEST(CorePerformanceTest, MoreCacheFasterCore)
{
    const ThroughputModelParams params;
    const double at1 = relativeCorePerformance(params, 0.5, 1.0);
    const double at4 = relativeCorePerformance(params, 0.5, 4.0);
    const double at_quarter =
        relativeCorePerformance(params, 0.5, 0.25);
    EXPECT_GT(at4, at1);
    EXPECT_LT(at_quarter, at1);
}

TEST(CorePerformanceTest, BoundedByComputeLimit)
{
    // Infinite cache removes all stalls: speedup = 1/(1-k).
    ThroughputModelParams params;
    params.memoryStallShare = 0.3;
    const double limit = 1.0 / 0.7;
    EXPECT_LT(relativeCorePerformance(params, 0.5, 1e9), limit);
    EXPECT_NEAR(relativeCorePerformance(params, 0.5, 1e9), limit,
                0.01);
}

TEST(CorePerformanceTest, ZeroStallShareIsFlat)
{
    ThroughputModelParams params;
    params.memoryStallShare = 0.0;
    EXPECT_DOUBLE_EQ(relativeCorePerformance(params, 0.5, 0.1), 1.0);
    EXPECT_DOUBLE_EQ(relativeCorePerformance(params, 0.5, 10.0), 1.0);
}

TEST(ThroughputSolverTest, ConstrainedNeverExceedsUnconstrained)
{
    ScalingScenario scenario;
    scenario.totalCeas = 256.0;
    const ThroughputModelParams params;
    const auto constrained =
        solveThroughputOptimal(scenario, params);
    const auto unconstrained =
        solveThroughputUnconstrained(scenario, params);
    EXPECT_LE(constrained.throughput,
              unconstrained.throughput + 1e-12);
    EXPECT_LE(constrained.cores, unconstrained.cores);
    EXPECT_LE(constrained.traffic, scenario.trafficBudget + 1e-12);
}

TEST(ThroughputSolverTest, WallIsBindingAtConstantBudget)
{
    // At 16x with a constant envelope the budget, not the perf
    // curve, limits the design.
    ScalingScenario scenario;
    scenario.totalCeas = 256.0;
    const auto result = solveThroughputOptimal(
        scenario, ThroughputModelParams{});
    EXPECT_TRUE(result.bandwidthLimited);
    // Core-count-maximal and throughput-maximal coincide when the
    // wall binds.
    EXPECT_EQ(result.cores,
              solveSupportableCores(scenario).supportableCores);
}

TEST(ThroughputSolverTest, UnconstrainedHasInteriorOptimum)
{
    // Without a budget the optimum is far below the die capacity:
    // the last cores cost more in per-core slowdown than they add.
    ScalingScenario scenario;
    scenario.totalCeas = 64.0;
    ThroughputModelParams params;
    params.memoryStallShare = 0.5; // strongly memory-bound workload
    const auto result =
        solveThroughputUnconstrained(scenario, params);
    EXPECT_GT(result.cores, 0);
    EXPECT_LT(result.cores, 63);
}

TEST(ThroughputSolverTest, TechniquesRaiseConstrainedThroughput)
{
    ScalingScenario plain;
    plain.totalCeas = 256.0;
    ScalingScenario boosted = plain;
    boosted.techniques = {cacheLinkCompression(2.0), dramCache(8.0)};
    const ThroughputModelParams params;
    EXPECT_GT(solveThroughputOptimal(boosted, params).throughput,
              solveThroughputOptimal(plain, params).throughput);
}

TEST(ThroughputSolverTest, RejectsBadStallShare)
{
    ThroughputModelParams params;
    params.memoryStallShare = 1.0;
    EXPECT_EXIT(relativeCorePerformance(params, 0.5, 1.0),
                ::testing::ExitedWithCode(1), "stall share");
}

} // namespace
} // namespace bwwall
